// Command esed is the estimation daemon: an HTTP/JSON service over the
// same job specs the CLI front ends build from flags. Clients POST
// estimation or TLM jobs to /v1/jobs and receive estimates, simulation
// results, attribution profiles and structured diagnostics; concurrent
// identical jobs coalesce onto one execution, and every job shares one
// process-wide content-addressed schedule/estimate cache.
//
// Usage:
//
//	esed [flags]
//
//	-addr HOST:PORT    listen address (default localhost:8372)
//	-workers N         concurrently executing jobs (default GOMAXPROCS)
//	-queue N           jobs admitted beyond the executing ones (default 64)
//	-tenant-max N      per-tenant active-job bound, keyed by the X-Tenant
//	                   header (0 = unlimited)
//	-job-timeout D     default wall-clock bound for jobs whose spec sets
//	                   none (default 2m, 0 = unbounded)
//	-cache-limit N     shared cache bound, entries per side (0 = unbounded)
//
// Endpoints: POST /v1/jobs, GET|DELETE /v1/jobs/{fingerprint},
// GET /v1/jobs/{fingerprint}/events (SSE), /healthz, /metrics
// (?format=prom), /debug/pprof. See README.md for the HTTP API and the
// error→status mapping.
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, in-flight
// jobs are canceled and answered with 499, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ese/internal/cli"
	"ese/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8372", "listen address")
	workers := flag.Int("workers", 0, "concurrently executing jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "jobs admitted beyond the executing ones")
	tenantMax := flag.Int("tenant-max", 0, "per-tenant active-job bound (0 = unlimited)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "default job timeout when the spec sets none (0 = unbounded)")
	cacheLimit := flag.Int("cache-limit", 0, "shared cache bound, entries per side (0 = unbounded)")
	drainWait := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight jobs to unwind")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: esed [flags]")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	cli.Fail("esed", run(*addr, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		TenantMax:      *tenantMax,
		DefaultTimeout: *jobTimeout,
		CacheLimit:     *cacheLimit,
	}, *drainWait))
}

func run(addr string, cfg server.Config, drainWait time.Duration) error {
	if cfg.QueueDepth < 0 || cfg.TenantMax < 0 || cfg.CacheLimit < 0 || cfg.DefaultTimeout < 0 {
		return cli.Input(errors.New("negative sizing flag"))
	}
	s := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "esed: listening on http://%s (POST /v1/jobs)\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal — bad address, port in use.
		return cli.Input(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "esed: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain order: cancel the jobs first so waiting request handlers
	// unblock (with 499s), then close the listener once they have written
	// their responses.
	derr := s.Shutdown(dctx)
	herr := httpSrv.Shutdown(dctx)
	if derr != nil {
		return derr
	}
	return herr
}
