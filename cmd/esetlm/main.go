// Command esetlm generates and simulates transaction-level models of the
// built-in MP3 decoder designs (the paper's §5 evaluation platforms).
//
// Usage:
//
//	esetlm -design SW+2 [flags]
//
//	-design SW|SW+1|SW+2|SW+4   mapping (default SW)
//	-frames N                   MP3 frames to decode (default 2)
//	-icache/-dcache N           cache sizes in bytes
//	-engine functional|timed|board   simulation engine (default timed)
//	-calibrate                  calibrate the PUM on the training workload
//	-verify                     statically verify the design (IR, PE
//	                            models, channels) before running (exit 2
//	                            on findings)
//	-Werror                     with -verify, treat warnings as errors
//	-graph                      print the process/channel structure (Fig. 6)
//	-gen                        emit the standalone Go TLM source and exit
//	-vcd FILE                   write a VCD activity waveform (timed engine)
//	-trace-json FILE            write a Chrome trace_event timeline
//	                            (Perfetto-loadable; timed engine)
//	-profile                    print the ranked cycle-attribution report
//	                            (timed engine)
//	-profile-json FILE          write the attribution report as JSON
//	-top N                      rows shown by -profile (default 20)
//	-timeout D                  wall-clock watchdog for the simulation
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. Diagnostics go to stderr, results to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ese"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/profile"
	"ese/internal/tlm"
	"ese/internal/trace"
)

func main() {
	design := flag.String("design", "SW", "design name (SW, SW+1, SW+2, SW+4)")
	frames := flag.Int("frames", 2, "MP3 frames to decode")
	icache := flag.Int("icache", 8192, "i-cache bytes (0 = uncached)")
	dcache := flag.Int("dcache", 4096, "d-cache bytes (0 = uncached)")
	engine := flag.String("engine", "timed", "functional | timed | board")
	calibrate := flag.Bool("calibrate", true, "calibrate the PUM on the training workload")
	verifyFlag := flag.Bool("verify", false, "statically verify the design before running")
	werror := flag.Bool("Werror", false, "treat verification warnings as errors")
	graph := flag.Bool("graph", false, "print the process graph and exit")
	gen := flag.Bool("gen", false, "emit the standalone TLM source and exit")
	vcd := flag.String("vcd", "", "write a VCD activity waveform to this file (timed engine)")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace_event timeline to this file (timed engine)")
	profileFlag := flag.Bool("profile", false, "print the cycle-attribution report (timed engine)")
	profileJSON := flag.String("profile-json", "", "write the attribution report as JSON to this file (\"-\" = stdout)")
	top := flag.Int("top", 20, "rows shown by -profile (0 = all)")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog for the simulation (0 = none)")
	execEngine := flag.String("exec", "auto", "IR execution engine: auto | compiled | tree")
	flag.Parse()

	cli.Fail("esetlm", run(runCfg{
		design: *design, frames: *frames, icache: *icache, dcache: *dcache,
		engine: *engine, calibrate: *calibrate, graph: *graph, gen: *gen,
		verify: *verifyFlag, werror: *werror,
		vcdPath: *vcd, traceJSON: *traceJSON,
		profile: *profileFlag, profileJSON: *profileJSON, top: *top,
		timeout: *timeout, exec: *execEngine,
	}))
}

// runCfg bundles the flag values.
type runCfg struct {
	design         string
	frames         int
	icache, dcache int
	engine         string
	calibrate      bool
	verify, werror bool
	graph, gen     bool
	vcdPath        string
	traceJSON      string
	profile        bool
	profileJSON    string
	top            int
	timeout        time.Duration
	exec           string
}

func run(cfgFlags runCfg) error {
	design, frames, icache, dcache := cfgFlags.design, cfgFlags.frames, cfgFlags.icache, cfgFlags.dcache
	engine, calibrate, graph, gen := cfgFlags.engine, cfgFlags.calibrate, cfgFlags.graph, cfgFlags.gen
	vcdPath, timeout := cfgFlags.vcdPath, cfgFlags.timeout
	execKind, err := interp.ParseEngineKind(cfgFlags.exec)
	if err != nil {
		return cli.Input(err)
	}
	cfg := ese.MP3Config{Frames: frames, Seed: 0xC0FFEE}
	mb := ese.MicroBlazePUM()
	if calibrate {
		trainSrc, err := ese.MP3Source("SW", ese.MP3Config{Frames: 1, Seed: 0x5EED})
		if err != nil {
			return err
		}
		trainProg, err := ese.CompileC("train.c", trainSrc)
		if err != nil {
			return err
		}
		mb, err = ese.Calibrate(mb, trainProg, "main")
		if err != nil {
			return err
		}
	}
	d, err := ese.MP3Design(design, cfg, mb, ese.CacheCfg{ISize: icache, DSize: dcache})
	if err != nil {
		return cli.Input(err)
	}
	if cfgFlags.verify {
		// One explicit design-level verification covers every engine path,
		// including -graph/-gen/board which bypass the pipeline.
		ds := ese.VerifyDesign(d)
		for _, dg := range ds {
			fmt.Fprintf(os.Stderr, "esetlm: %s\n", dg)
		}
		if dg, bad := ese.VerifyFailure(ds, cfgFlags.werror); bad {
			return dg
		}
	}
	if graph {
		fmt.Print(d.Graph())
		return nil
	}
	if gen {
		src, err := ese.GenerateTLM(d)
		if err != nil {
			return err
		}
		fmt.Print(src)
		return nil
	}
	switch engine {
	case "functional":
		pl := ese.NewPipeline(ese.PipelineOptions{Timeout: timeout, Engine: execKind})
		defer cli.PrintDiags("esetlm", pl.Diagnostics())
		res, err := pl.RunFunctional(d)
		if err != nil {
			return err
		}
		printTLM(res, d)
	case "timed":
		pl := ese.NewPipeline(ese.PipelineOptions{Timeout: timeout, Engine: execKind})
		defer cli.PrintDiags("esetlm", pl.Diagnostics())
		doProfile := cfgFlags.profile || cfgFlags.profileJSON != ""
		opts := tlm.Options{
			Timed:    true,
			WaitMode: tlm.WaitAtTransactions,
			Detail:   core.FullDetail,
			Profile:  doProfile,
		}
		var v *trace.VCD
		if vcdPath != "" {
			v = trace.New()
			opts.Trace = v
		}
		var ev *trace.Events
		if cfgFlags.traceJSON != "" {
			ev = trace.NewEvents()
			opts.Events = ev
		}
		res, err := pl.Simulate(d, opts)
		if err != nil {
			return err
		}
		if v != nil {
			if werr := os.WriteFile(vcdPath, []byte(v.Render()), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("wrote waveform to %s\n", vcdPath)
		}
		if ev != nil {
			data, jerr := ev.RenderJSON()
			if jerr != nil {
				return jerr
			}
			if werr := os.WriteFile(cfgFlags.traceJSON, append(data, '\n'), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("wrote trace timeline to %s (%d events)\n", cfgFlags.traceJSON, ev.Len())
		}
		fmt.Printf("annotation time: %v\n", res.AnnoTime.Round(time.Microsecond))
		printTLM(res, d)
		if doProfile {
			if err := writeProfile(pl, d, res, cfgFlags); err != nil {
				return err
			}
		}
	case "board":
		res, err := ese.RunBoard(d)
		if err != nil {
			return err
		}
		fmt.Printf("design %s on cycle-accurate board: %v wall\n", d.Name, res.Wall.Round(time.Millisecond))
		fmt.Printf("total time: %d bus cycles (%.3f ms simulated)\n",
			res.EndCycles(d.Bus.ClockHz), float64(res.EndPs)/1e9)
		for _, pe := range d.PEs {
			r := res.PEs[pe.Name]
			fmt.Printf("  PE %-10s %12d cycles  %10d instrs", r.Name, r.Cycles, r.Steps)
			if pe.Kind == ese.Processor {
				fmt.Printf("  ihit=%.4f dhit=%.4f brmiss=%.3f",
					r.Mem.IHitRate, r.Mem.DHitRate, r.BranchMiss)
			}
			fmt.Println()
		}
	default:
		return cli.Input(fmt.Errorf("unknown engine %q", engine))
	}
	return nil
}

// writeProfile joins the timed run's per-process block execution counts
// with each PE's annotation into the ranked cycle-attribution report.
// The annotations go through the pipeline's cache, so they are the very
// estimates the run was timed with — the report totals reconcile bit for
// bit with the simulated per-PE cycle counts.
func writeProfile(pl *ese.Pipeline, d *ese.Design, res *ese.TLMResult, cfgFlags runCfg) error {
	est := make(map[string]map[*cdfg.Block]core.Estimate, len(d.PEs))
	for _, pe := range d.PEs {
		a, err := pl.AnnotateDetailCtx(context.Background(), d.Program, pe.PUM, core.FullDetail)
		if err != nil {
			return err
		}
		est[pe.Name] = a.Est
	}
	rep, err := profile.Build(d.Name, d.Program, res.BlockCountsByPE, est)
	if err != nil {
		return err
	}
	if cfgFlags.profileJSON != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if cfgFlags.profileJSON == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(cfgFlags.profileJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if cfgFlags.profile {
		fmt.Print(rep.Text(cfgFlags.top))
	}
	return nil
}

func printTLM(res *ese.TLMResult, d *ese.Design) {
	fmt.Printf("design %s: %v wall, %d IR instructions\n", res.Design, res.Wall.Round(time.Millisecond), res.Steps)
	if res.EndPs > 0 {
		fmt.Printf("total time: %d bus cycles (%.3f ms simulated)\n",
			res.EndCycles(d.Bus.ClockHz), float64(res.EndPs)/1e9)
	}
	for _, pe := range d.PEs {
		fmt.Printf("  PE %-10s %12d cycles\n", pe.Name, res.CyclesByPE[pe.Name])
	}
	outs := res.OutByPE["mb"]
	if n := len(outs); n >= 2 {
		fmt.Printf("decode checksums: L=%d R=%d (%d samples emitted)\n",
			outs[n-2], outs[n-1], n-2)
	}
}
