// Command esetlm generates and simulates transaction-level models of the
// built-in MP3 decoder designs (the paper's §5 evaluation platforms).
//
// Usage:
//
//	esetlm -design SW+2 [flags]
//
//	-design SW|SW+1|SW+2|SW+4   mapping (default SW)
//	-frames N                   MP3 frames to decode (default 2)
//	-icache/-dcache N           cache sizes in bytes
//	-engine functional|timed|board   simulation engine (default timed)
//	-calibrate                  calibrate the PUM on the training workload
//	-verify                     statically verify the design (IR, PE
//	                            models, channels) before running (exit 2
//	                            on findings)
//	-Werror                     with -verify, treat warnings as errors
//	-graph                      print the process/channel structure (Fig. 6)
//	-gen                        emit the standalone Go TLM source and exit
//	-json                       print the canonical {cycles_by_pe,
//	                            out_by_pe, steps} JSON summary (matches a
//	                            standalone esegen binary byte for byte)
//	-vcd FILE                   write a VCD activity waveform (timed engine)
//	-trace-json FILE            write a Chrome trace_event timeline
//	                            (Perfetto-loadable; timed engine)
//	-profile                    print the ranked cycle-attribution report
//	                            (timed engine)
//	-profile-json FILE          write the attribution report as JSON
//	-top N                      rows shown by -profile (default 20)
//	-timeout D                  wall-clock watchdog for the simulation
//
// The flag→options wiring lives in internal/jobspec, shared with eseest,
// esebench and the esed daemon: this command is one front end over the
// same job spec the HTTP API accepts.
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. Diagnostics go to stderr, results to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ese"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/jobspec"
	"ese/internal/profile"
	"ese/internal/tlm"
	"ese/internal/trace"
)

// outputs bundles the presentation-only flag values that stay outside the
// shared job spec.
type outputs struct {
	graph, gen  bool
	jsonOut     bool
	vcdPath     string
	traceJSON   string
	profile     bool
	profileJSON string
	top         int
}

func main() {
	spec := jobspec.DefaultTLM()
	var o outputs
	spec.BindWorkload(flag.CommandLine)
	spec.BindCache(flag.CommandLine)
	spec.BindVerify(flag.CommandLine)
	spec.BindRun(flag.CommandLine)
	flag.BoolVar(&o.graph, "graph", false, "print the process graph and exit")
	flag.BoolVar(&o.gen, "gen", false, "emit the standalone TLM source and exit")
	flag.BoolVar(&o.jsonOut, "json", false, "print the canonical {cycles_by_pe, out_by_pe, steps} JSON summary instead of text")
	flag.StringVar(&o.vcdPath, "vcd", "", "write a VCD activity waveform to this file (timed engine)")
	flag.StringVar(&o.traceJSON, "trace-json", "", "write a Chrome trace_event timeline to this file (timed engine)")
	flag.BoolVar(&o.profile, "profile", false, "print the cycle-attribution report (timed engine)")
	flag.StringVar(&o.profileJSON, "profile-json", "", "write the attribution report as JSON to this file (\"-\" = stdout)")
	flag.IntVar(&o.top, "top", 20, "rows shown by -profile (0 = all)")
	flag.Parse()

	cli.Fail("esetlm", run(&spec, o))
}

func run(spec *jobspec.Spec, o outputs) error {
	if err := spec.Validate(); err != nil {
		return cli.Input(err)
	}
	opts, err := spec.Options()
	if err != nil {
		return cli.Input(err)
	}
	d, err := spec.BuildDesign()
	if err != nil {
		return err
	}
	if spec.Verify {
		// One explicit design-level verification covers every engine path,
		// including -graph/-gen/board which bypass the pipeline.
		ds := ese.VerifyDesign(d)
		for _, dg := range ds {
			fmt.Fprintf(os.Stderr, "esetlm: %s\n", dg)
		}
		if dg, bad := ese.VerifyFailure(ds, spec.Werror); bad {
			return dg
		}
	}
	if o.graph {
		fmt.Print(d.Graph())
		return nil
	}
	if o.gen {
		src, err := ese.GenerateTLM(d)
		if err != nil {
			return err
		}
		fmt.Print(src)
		return nil
	}
	switch spec.Engine {
	case jobspec.EngineFunctional:
		pl := ese.NewPipeline(opts)
		defer cli.PrintDiags("esetlm", pl.Diagnostics())
		res, err := pl.RunFunctional(d)
		if err != nil {
			return err
		}
		if o.jsonOut {
			return printJSON(res)
		}
		printTLM(res, d)
	case jobspec.EngineTimed:
		pl := ese.NewPipeline(opts)
		defer cli.PrintDiags("esetlm", pl.Diagnostics())
		doProfile := o.profile || o.profileJSON != ""
		simOpts := tlm.Options{
			Timed:    true,
			WaitMode: tlm.WaitAtTransactions,
			Detail:   core.FullDetail,
			Profile:  doProfile,
		}
		var v *trace.VCD
		if o.vcdPath != "" {
			v = trace.New()
			simOpts.Trace = v
		}
		var ev *trace.Events
		if o.traceJSON != "" {
			ev = trace.NewEvents()
			simOpts.Events = ev
		}
		res, err := pl.Simulate(d, simOpts)
		if err != nil {
			return err
		}
		if v != nil {
			if werr := os.WriteFile(o.vcdPath, []byte(v.Render()), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("wrote waveform to %s\n", o.vcdPath)
		}
		if ev != nil {
			data, jerr := ev.RenderJSON()
			if jerr != nil {
				return jerr
			}
			if werr := os.WriteFile(o.traceJSON, append(data, '\n'), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("wrote trace timeline to %s (%d events)\n", o.traceJSON, ev.Len())
		}
		if o.jsonOut {
			if err := printJSON(res); err != nil {
				return err
			}
		} else {
			fmt.Printf("annotation time: %v\n", res.AnnoTime.Round(time.Microsecond))
			printTLM(res, d)
		}
		if doProfile {
			if err := writeProfile(pl, d, res, o); err != nil {
				return err
			}
		}
	case jobspec.EngineBoard:
		if o.jsonOut {
			return cli.Input(fmt.Errorf("-json is only supported with the functional and timed engines"))
		}
		res, err := ese.RunBoard(d)
		if err != nil {
			return err
		}
		fmt.Printf("design %s on cycle-accurate board: %v wall\n", d.Name, res.Wall.Round(time.Millisecond))
		fmt.Printf("total time: %d bus cycles (%.3f ms simulated)\n",
			res.EndCycles(d.Bus.ClockHz), float64(res.EndPs)/1e9)
		for _, pe := range d.PEs {
			r := res.PEs[pe.Name]
			fmt.Printf("  PE %-10s %12d cycles  %10d instrs", r.Name, r.Cycles, r.Steps)
			if pe.Kind == ese.Processor {
				fmt.Printf("  ihit=%.4f dhit=%.4f brmiss=%.3f",
					r.Mem.IHitRate, r.Mem.DHitRate, r.BranchMiss)
			}
			fmt.Println()
		}
	default:
		return cli.Input(fmt.Errorf("unknown engine %q", spec.Engine))
	}
	return nil
}

// writeProfile joins the timed run's per-process block execution counts
// with each PE's annotation into the ranked cycle-attribution report.
// The annotations go through the pipeline's cache, so they are the very
// estimates the run was timed with — the report totals reconcile bit for
// bit with the simulated per-PE cycle counts.
func writeProfile(pl *ese.Pipeline, d *ese.Design, res *ese.TLMResult, o outputs) error {
	est := make(map[string]map[*cdfg.Block]core.Estimate, len(d.PEs))
	for _, pe := range d.PEs {
		a, err := pl.AnnotateDetailCtx(context.Background(), d.Program, pe.PUM, core.FullDetail)
		if err != nil {
			return err
		}
		est[pe.Name] = a.Est
	}
	rep, err := profile.Build(d.Name, d.Program, res.BlockCountsByPE, est)
	if err != nil {
		return err
	}
	if o.profileJSON != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if o.profileJSON == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(o.profileJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.profile {
		fmt.Print(rep.Text(o.top))
	}
	return nil
}

// printJSON emits the canonical {cycles_by_pe, out_by_pe, steps} summary —
// the same object (byte for byte) a standalone esegen-emitted TLM binary
// prints for an identical spec, which is what the CI codegen job diffs.
func printJSON(res *ese.TLMResult) error {
	outByPE := make(map[string][]int32, len(res.OutByPE))
	for key, outs := range res.OutByPE {
		if outs == nil {
			outs = []int32{}
		}
		outByPE[key] = outs
	}
	sum := struct {
		CyclesByPE map[string]uint64  `json:"cycles_by_pe"`
		OutByPE    map[string][]int32 `json:"out_by_pe"`
		Steps      uint64             `json:"steps"`
	}{res.CyclesByPE, outByPE, res.Steps}
	data, err := json.Marshal(&sum)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func printTLM(res *ese.TLMResult, d *ese.Design) {
	fmt.Printf("design %s: %v wall, %d IR instructions\n", res.Design, res.Wall.Round(time.Millisecond), res.Steps)
	if res.EndPs > 0 {
		fmt.Printf("total time: %d bus cycles (%.3f ms simulated)\n",
			res.EndCycles(d.Bus.ClockHz), float64(res.EndPs)/1e9)
	}
	for _, pe := range d.PEs {
		fmt.Printf("  PE %-10s %12d cycles\n", pe.Name, res.CyclesByPE[pe.Name])
	}
	outs := res.OutByPE["mb"]
	if n := len(outs); n >= 2 {
		fmt.Printf("decode checksums: L=%d R=%d (%d samples emitted)\n",
			outs[n-2], outs[n-1], n-2)
	}
}
