// Command eseest is the estimation front end: it compiles a C-subset
// source file, annotates every basic block against a processing unit model
// (Algorithms 1 and 2 of the paper), and prints the annotation summary,
// the generated timed source, or the cycle-attribution profile.
//
// Usage:
//
//	eseest [flags] app.c
//
//	-pum name|file.json   PE model: "microblaze", "customhw", "dualissue",
//	                      or a JSON PUM description (default microblaze)
//	-icache/-dcache N     cache sizes in bytes for the statistical model
//	-emit-c               print the delay-annotated C-like source
//	-emit-go              print the generated timed Go process
//	-blocks               print the per-block estimate table
//	-profile              execute the program and print the ranked
//	                      cycle-attribution report (where the estimated
//	                      cycles go); requires a self-contained entry
//	-profile-json FILE    write the full attribution report as JSON
//	                      ("-" for stdout)
//	-entry NAME           entry function for -profile (default main)
//	-top N                rows shown by -profile (default 20, 0 = all)
//	-dump                 print the CDFG IR
//	-strict               fail (exit 1) when the PE model does not map an
//	                      op class the program uses
//	-verify               statically verify the compiled IR and lint the
//	                      PE model before estimating (exit 2 on findings)
//	-Werror               with -verify, treat warnings (e.g. op-mapping
//	                      coverage gaps) as errors
//	-fallback N           cycles charged to unmapped op classes when not
//	                      strict (graceful degradation)
//	-timeout D            wall-clock watchdog for the whole run
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. Diagnostics go to stderr, results to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ese"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/iss"
	"ese/internal/profile"
)

// options bundles the flag values.
type options struct {
	pum            string
	icache, dcache int
	emitC, emitGo  bool
	blocks, dump   bool
	dotCFG, dotDFG string
	disasm         bool
	strict         bool
	verify         bool
	werror         bool
	fallback       int
	timeout        time.Duration
	profile        bool
	profileJSON    string
	entry          string
	top            int
	steps          uint64
	exec           string
}

func main() {
	var o options
	flag.StringVar(&o.pum, "pum", "microblaze", "PE model name or JSON file")
	flag.IntVar(&o.icache, "icache", 8192, "i-cache size in bytes (0 = uncached)")
	flag.IntVar(&o.dcache, "dcache", 4096, "d-cache size in bytes (0 = uncached)")
	flag.BoolVar(&o.emitC, "emit-c", false, "emit delay-annotated C-like source")
	flag.BoolVar(&o.emitGo, "emit-go", false, "emit generated timed Go source")
	flag.BoolVar(&o.blocks, "blocks", false, "print per-block estimates")
	flag.BoolVar(&o.dump, "dump", false, "print the CDFG IR")
	flag.StringVar(&o.dotCFG, "dot-cfg", "", "print the dot CFG of the named function")
	flag.StringVar(&o.dotDFG, "dot-dfg", "", "print the dot DFGs of the named function's blocks")
	flag.BoolVar(&o.disasm, "disasm", false, "print the generated virtual-ISA assembly")
	flag.BoolVar(&o.strict, "strict", false, "reject PE models that do not map every op class used")
	flag.BoolVar(&o.verify, "verify", false, "statically verify the IR and lint the PE model")
	flag.BoolVar(&o.werror, "Werror", false, "treat verification warnings as errors (implies nothing without -verify)")
	flag.IntVar(&o.fallback, "fallback", core.DefaultFallbackCycles, "fallback cycles for unmapped op classes")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock watchdog for the run (0 = none)")
	flag.BoolVar(&o.profile, "profile", false, "execute and print the cycle-attribution profile")
	flag.StringVar(&o.profileJSON, "profile-json", "", "write the attribution report as JSON to FILE (\"-\" = stdout)")
	flag.StringVar(&o.entry, "entry", "main", "entry function for -profile")
	flag.IntVar(&o.top, "top", 20, "rows shown by -profile (0 = all)")
	flag.Uint64Var(&o.steps, "steps", 0, "dynamic step limit for -profile (0 = none)")
	flag.StringVar(&o.exec, "exec", "auto", "execution engine for -profile: auto | compiled | tree")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eseest [flags] app.c")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	cli.Fail("eseest", run(flag.Arg(0), o))
}

func loadPUM(name string) (*ese.PUM, error) {
	switch name {
	case "microblaze":
		return ese.MicroBlazePUM(), nil
	case "customhw":
		return ese.CustomHWPUM("customhw", 100_000_000), nil
	case "dualissue":
		return ese.DualIssuePUM(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, cli.Input(err)
	}
	p, err := ese.LoadPUM(data)
	if err != nil {
		return nil, cli.Input(err)
	}
	return p, nil
}

func run(file string, o options) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return cli.Input(err)
	}
	pl := ese.NewPipeline(ese.PipelineOptions{
		Strict:         o.strict,
		FallbackCycles: o.fallback,
		Timeout:        o.timeout,
		Verify:         o.verify,
		Werror:         o.werror,
	})
	defer cli.PrintDiags("eseest", pl.Diagnostics())
	prog, err := pl.Compile(file, string(src))
	if err != nil {
		return err
	}
	if o.dump {
		fmt.Print(prog.Dump())
		return nil
	}
	if o.dotCFG != "" {
		fn := prog.Func(o.dotCFG)
		if fn == nil {
			return fmt.Errorf("no function %q", o.dotCFG)
		}
		fmt.Print(fn.DotCFG())
		return nil
	}
	if o.dotDFG != "" {
		fn := prog.Func(o.dotDFG)
		if fn == nil {
			return fmt.Errorf("no function %q", o.dotDFG)
		}
		for _, b := range fn.Blocks {
			fmt.Print(cdfg.DotDFG(b))
		}
		return nil
	}
	if o.disasm {
		isa, err := iss.Generate(prog)
		if err != nil {
			return err
		}
		fmt.Print(iss.Disassemble(isa))
		return nil
	}
	model, err := loadPUM(o.pum)
	if err != nil {
		return err
	}
	if model.Mem.HasICache || model.Mem.HasDCache || o.icache == 0 {
		model, err = model.WithCache(ese.CacheCfg{ISize: o.icache, DSize: o.dcache})
		if err != nil {
			return err
		}
	}
	a, err := pl.AnnotateCtx(context.Background(), prog, model)
	if err != nil {
		return err
	}
	switch {
	case o.profile || o.profileJSON != "":
		return runProfile(prog, model.Name, a.Est, o)
	case o.emitC:
		fmt.Print(a.EmitTimedC())
	case o.emitGo:
		fmt.Print(a.EmitTimedGo("timed"))
	case o.blocks:
		for _, fn := range prog.Funcs {
			fmt.Printf("func %s\n", fn.Name)
			for _, b := range fn.Blocks {
				e := a.Est[b]
				degraded := ""
				if e.Degraded() {
					degraded = fmt.Sprintf("  DEGRADED(%d ops)", e.Unmapped)
				}
				fmt.Printf("  bb%-3d ops=%-4d operands=%-4d sched=%-5d br=%-6.2f imem=%-8.2f dmem=%-8.2f total=%d%s\n",
					b.ID, e.Ops, e.Operands, e.Sched, e.BranchPen, e.IDelay, e.DDelay, int64(e.Total), degraded)
			}
		}
	default:
		fmt.Print(a.Summary())
	}
	return nil
}

// runProfile executes the program's entry on the IR interpreter, counting
// block executions, and joins the counts with the annotation into the
// ranked cycle-attribution report. The dynamic total is the program's
// estimated cycle count on the model (identical, bit for bit, to what the
// timed TLM would accumulate for a lone PE without communication stalls).
func runProfile(prog *ese.Program, model string, est map[*cdfg.Block]core.Estimate, o options) error {
	kind, err := interp.ParseEngineKind(o.exec)
	if err != nil {
		return err
	}
	m, err := interp.NewEngine(prog, kind)
	if err != nil {
		return err
	}
	m.EnableProfile()
	m.SetLimit(o.steps)
	if o.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
		m.SetContext(ctx)
	}
	if err := m.Run(o.entry); err != nil {
		return fmt.Errorf("profile run: %w", err)
	}
	rep, err := profile.Build("", prog,
		map[string]map[*cdfg.Block]uint64{model: m.BlockCountsMap()},
		map[string]map[*cdfg.Block]core.Estimate{model: est})
	if err != nil {
		return err
	}
	if o.profileJSON != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if o.profileJSON == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(o.profileJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.profile {
		fmt.Print(rep.Text(o.top))
	}
	return nil
}
