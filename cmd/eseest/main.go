// Command eseest is the estimation front end: it compiles a C-subset
// source file, annotates every basic block against a processing unit model
// (Algorithms 1 and 2 of the paper), and prints the annotation summary,
// the generated timed source, or the cycle-attribution profile.
//
// Usage:
//
//	eseest [flags] app.c
//
//	-pum name|file.json   PE model: "microblaze", "customhw", "dualissue",
//	                      or a JSON PUM description (default microblaze)
//	-icache/-dcache N     cache sizes in bytes for the statistical model
//	-emit-c               print the delay-annotated C-like source
//	-emit-go              print the generated timed Go process
//	-blocks               print the per-block estimate table
//	-profile              execute the program and print the ranked
//	                      cycle-attribution report (where the estimated
//	                      cycles go); requires a self-contained entry
//	-profile-json FILE    write the full attribution report as JSON
//	                      ("-" for stdout)
//	-entry NAME           entry function for -profile (default main)
//	-top N                rows shown by -profile (default 20, 0 = all)
//	-dump                 print the CDFG IR
//	-strict               fail (exit 1) when the PE model does not map an
//	                      op class the program uses
//	-verify               statically verify the compiled IR and lint the
//	                      PE model before estimating (exit 2 on findings)
//	-Werror               with -verify, treat warnings (e.g. op-mapping
//	                      coverage gaps) as errors
//	-fallback N           cycles charged to unmapped op classes when not
//	                      strict (graceful degradation)
//	-timeout D            wall-clock watchdog for the whole run
//
// The flag→options wiring lives in internal/jobspec, shared with esetlm,
// esebench and the esed daemon: this command is one front end over the
// same job spec the HTTP API accepts.
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. Diagnostics go to stderr, results to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ese"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/iss"
	"ese/internal/jobspec"
	"ese/internal/profile"
)

// outputs bundles the presentation-only flag values that stay outside the
// shared job spec.
type outputs struct {
	emitC, emitGo  bool
	blocks, dump   bool
	dotCFG, dotDFG string
	disasm         bool
	profile        bool
	profileJSON    string
	pumArg         string
}

func main() {
	spec := jobspec.Default()
	var o outputs
	spec.BindCache(flag.CommandLine)
	spec.BindStrict(flag.CommandLine)
	spec.BindVerify(flag.CommandLine)
	spec.BindRun(flag.CommandLine)
	spec.BindProfile(flag.CommandLine)
	flag.StringVar(&o.pumArg, "pum", "microblaze", "PE model name or JSON file")
	flag.BoolVar(&o.emitC, "emit-c", false, "emit delay-annotated C-like source")
	flag.BoolVar(&o.emitGo, "emit-go", false, "emit generated timed Go source")
	flag.BoolVar(&o.blocks, "blocks", false, "print per-block estimates")
	flag.BoolVar(&o.dump, "dump", false, "print the CDFG IR")
	flag.StringVar(&o.dotCFG, "dot-cfg", "", "print the dot CFG of the named function")
	flag.StringVar(&o.dotDFG, "dot-dfg", "", "print the dot DFGs of the named function's blocks")
	flag.BoolVar(&o.disasm, "disasm", false, "print the generated virtual-ISA assembly")
	flag.BoolVar(&o.profile, "profile", false, "execute and print the cycle-attribution profile")
	flag.StringVar(&o.profileJSON, "profile-json", "", "write the attribution report as JSON to FILE (\"-\" = stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eseest [flags] app.c")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	cli.Fail("eseest", run(flag.Arg(0), &spec, o))
}

func run(file string, spec *jobspec.Spec, o outputs) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return cli.Input(err)
	}
	spec.Source = jobspec.Source{Name: file, Code: string(src)}
	opts, err := spec.Options()
	if err != nil {
		return cli.Input(err)
	}
	pl := ese.NewPipeline(opts)
	defer cli.PrintDiags("eseest", pl.Diagnostics())
	prog, err := pl.Compile(file, string(src))
	if err != nil {
		return err
	}
	if o.dump {
		fmt.Print(prog.Dump())
		return nil
	}
	if o.dotCFG != "" {
		fn := prog.Func(o.dotCFG)
		if fn == nil {
			return fmt.Errorf("no function %q", o.dotCFG)
		}
		fmt.Print(fn.DotCFG())
		return nil
	}
	if o.dotDFG != "" {
		fn := prog.Func(o.dotDFG)
		if fn == nil {
			return fmt.Errorf("no function %q", o.dotDFG)
		}
		for _, b := range fn.Blocks {
			fmt.Print(cdfg.DotDFG(b))
		}
		return nil
	}
	if o.disasm {
		isa, err := iss.Generate(prog)
		if err != nil {
			return err
		}
		fmt.Print(iss.Disassemble(isa))
		return nil
	}
	if err := spec.LoadModelArg(o.pumArg); err != nil {
		return cli.Input(err)
	}
	model, err := spec.ResolveModel()
	if err != nil {
		return cli.Input(err)
	}
	if model, err = spec.ApplyCache(model); err != nil {
		return err
	}
	a, err := pl.AnnotateCtx(context.Background(), prog, model)
	if err != nil {
		return err
	}
	switch {
	case o.profile || o.profileJSON != "":
		return runProfile(prog, model.Name, a.Est, spec, o)
	case o.emitC:
		fmt.Print(a.EmitTimedC())
	case o.emitGo:
		fmt.Print(a.EmitTimedGo("timed"))
	case o.blocks:
		for _, fn := range prog.Funcs {
			fmt.Printf("func %s\n", fn.Name)
			for _, b := range fn.Blocks {
				e := a.Est[b]
				degraded := ""
				if e.Degraded() {
					degraded = fmt.Sprintf("  DEGRADED(%d ops)", e.Unmapped)
				}
				fmt.Printf("  bb%-3d ops=%-4d operands=%-4d sched=%-5d br=%-6.2f imem=%-8.2f dmem=%-8.2f total=%d%s\n",
					b.ID, e.Ops, e.Operands, e.Sched, e.BranchPen, e.IDelay, e.DDelay, int64(e.Total), degraded)
			}
		}
	default:
		fmt.Print(a.Summary())
	}
	return nil
}

// runProfile executes the program's entry on the IR interpreter, counting
// block executions, and joins the counts with the annotation into the
// ranked cycle-attribution report. The dynamic total is the program's
// estimated cycle count on the model (identical, bit for bit, to what the
// timed TLM would accumulate for a lone PE without communication stalls).
func runProfile(prog *ese.Program, model string, est map[*cdfg.Block]core.Estimate, spec *jobspec.Spec, o outputs) error {
	kind, err := spec.ExecKind()
	if err != nil {
		return err
	}
	m, err := interp.NewEngine(prog, kind)
	if err != nil {
		return err
	}
	m.EnableProfile()
	m.SetLimit(spec.Steps)
	if spec.Timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(spec.Timeout))
		defer cancel()
		m.SetContext(ctx)
	}
	if err := m.Run(spec.Entry); err != nil {
		return fmt.Errorf("profile run: %w", err)
	}
	rep, err := profile.Build("", prog,
		map[string]map[*cdfg.Block]uint64{model: m.BlockCountsMap()},
		map[string]map[*cdfg.Block]core.Estimate{model: est})
	if err != nil {
		return err
	}
	if o.profileJSON != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if o.profileJSON == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(o.profileJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.profile {
		fmt.Print(rep.Text(spec.Top))
	}
	return nil
}
