// Command eseest is the estimation front end: it compiles a C-subset
// source file, annotates every basic block against a processing unit model
// (Algorithms 1 and 2 of the paper), and prints the annotation summary or
// the generated timed source.
//
// Usage:
//
//	eseest [flags] app.c
//
//	-pum name|file.json   PE model: "microblaze", "customhw", "dualissue",
//	                      or a JSON PUM description (default microblaze)
//	-icache/-dcache N     cache sizes in bytes for the statistical model
//	-emit-c               print the delay-annotated C-like source
//	-emit-go              print the generated timed Go process
//	-blocks               print the per-block estimate table
//	-dump                 print the CDFG IR
//	-strict               fail (exit 1) when the PE model does not map an
//	                      op class the program uses
//	-fallback N           cycles charged to unmapped op classes when not
//	                      strict (graceful degradation)
//	-timeout D            wall-clock watchdog for the whole run
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. Diagnostics go to stderr, results to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ese"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/iss"
)

func main() {
	pumFlag := flag.String("pum", "microblaze", "PE model name or JSON file")
	icache := flag.Int("icache", 8192, "i-cache size in bytes (0 = uncached)")
	dcache := flag.Int("dcache", 4096, "d-cache size in bytes (0 = uncached)")
	emitC := flag.Bool("emit-c", false, "emit delay-annotated C-like source")
	emitGo := flag.Bool("emit-go", false, "emit generated timed Go source")
	blocks := flag.Bool("blocks", false, "print per-block estimates")
	dump := flag.Bool("dump", false, "print the CDFG IR")
	dotCFG := flag.String("dot-cfg", "", "print the dot CFG of the named function")
	dotDFG := flag.String("dot-dfg", "", "print the dot DFGs of the named function's blocks")
	disasm := flag.Bool("disasm", false, "print the generated virtual-ISA assembly")
	strict := flag.Bool("strict", false, "reject PE models that do not map every op class used")
	fallback := flag.Int("fallback", core.DefaultFallbackCycles, "fallback cycles for unmapped op classes")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog for the run (0 = none)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eseest [flags] app.c")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	cli.Fail("eseest", run(flag.Arg(0), *pumFlag, *icache, *dcache, *emitC, *emitGo, *blocks, *dump, *dotCFG, *dotDFG, *disasm, *strict, *fallback, *timeout))
}

func loadPUM(name string) (*ese.PUM, error) {
	switch name {
	case "microblaze":
		return ese.MicroBlazePUM(), nil
	case "customhw":
		return ese.CustomHWPUM("customhw", 100_000_000), nil
	case "dualissue":
		return ese.DualIssuePUM(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, cli.Input(err)
	}
	p, err := ese.LoadPUM(data)
	if err != nil {
		return nil, cli.Input(err)
	}
	return p, nil
}

func run(file, pumName string, icache, dcache int, emitC, emitGo, blocks, dump bool, dotCFG, dotDFG string, disasm bool, strict bool, fallback int, timeout time.Duration) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return cli.Input(err)
	}
	pl := ese.NewPipeline(ese.PipelineOptions{
		Strict:         strict,
		FallbackCycles: fallback,
		Timeout:        timeout,
	})
	defer cli.PrintDiags("eseest", pl.Diagnostics())
	prog, err := pl.Compile(file, string(src))
	if err != nil {
		return err
	}
	if dump {
		fmt.Print(prog.Dump())
		return nil
	}
	if dotCFG != "" {
		fn := prog.Func(dotCFG)
		if fn == nil {
			return fmt.Errorf("no function %q", dotCFG)
		}
		fmt.Print(fn.DotCFG())
		return nil
	}
	if dotDFG != "" {
		fn := prog.Func(dotDFG)
		if fn == nil {
			return fmt.Errorf("no function %q", dotDFG)
		}
		for _, b := range fn.Blocks {
			fmt.Print(cdfg.DotDFG(b))
		}
		return nil
	}
	if disasm {
		isa, err := iss.Generate(prog)
		if err != nil {
			return err
		}
		fmt.Print(iss.Disassemble(isa))
		return nil
	}
	model, err := loadPUM(pumName)
	if err != nil {
		return err
	}
	if model.Mem.HasICache || model.Mem.HasDCache || icache == 0 {
		model, err = model.WithCache(ese.CacheCfg{ISize: icache, DSize: dcache})
		if err != nil {
			return err
		}
	}
	a, err := pl.AnnotateCtx(context.Background(), prog, model)
	if err != nil {
		return err
	}
	switch {
	case emitC:
		fmt.Print(a.EmitTimedC())
	case emitGo:
		fmt.Print(a.EmitTimedGo("timed"))
	case blocks:
		for _, fn := range prog.Funcs {
			fmt.Printf("func %s\n", fn.Name)
			for _, b := range fn.Blocks {
				e := a.Est[b]
				degraded := ""
				if e.Degraded() {
					degraded = fmt.Sprintf("  DEGRADED(%d ops)", e.Unmapped)
				}
				fmt.Printf("  bb%-3d ops=%-4d operands=%-4d sched=%-5d br=%-6.2f imem=%-8.2f dmem=%-8.2f total=%d%s\n",
					b.ID, e.Ops, e.Operands, e.Sched, e.BranchPen, e.IDelay, e.DDelay, int64(e.Total), degraded)
			}
		}
	default:
		fmt.Print(a.Summary())
	}
	return nil
}
