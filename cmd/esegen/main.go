// Command esegen is the ahead-of-time Go code generator of the estimation
// flow: it transpiles annotated CDFG programs to real Go source, the
// third (fastest) execution tier behind -exec=gen.
//
// Standalone mode (default) emits a self-contained `go build`-able
// timed-TLM package for one built-in design spec:
//
//	esegen -design SW+1 -o /tmp/tlm_sw1
//
//	-app mp3|jpeg        application corpus (default mp3)
//	-design NAME         design name (mp3: SW, SW+1, SW+2, SW+4; jpeg: SW, SW+DCT)
//	-frames N            workload size (default 2)
//	-calibrate           calibrate the PUM on the training workload (default true)
//	-icache/-dcache N    cache sizes in bytes
//	-o DIR               output directory (required; created if missing)
//	-module NAME         module name of the emitted go.mod (default from design)
//
// The emitted binary prints the canonical {cycles_by_pe, out_by_pe,
// steps} JSON that `esetlm -json` prints for the same spec — byte for
// byte, which is what the CI codegen job asserts.
//
// Registry mode regenerates the pre-generated in-process engines that
// back `-exec=gen` without plugin support:
//
//	esegen -registry [-dir internal/codegen/registry]
//
// It emits one generated engine per example design and per codegen
// self-test program, registered under the program's code fingerprint;
// the output is deterministic, so CI can regenerate and `git diff
// --exit-code` the directory.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/cli"
	"ese/internal/codegen"
	"ese/internal/core"
	"ese/internal/jobspec"
)

func main() {
	spec := jobspec.DefaultTLM()
	var (
		registry bool
		dir      string
		outDir   string
		module   string
	)
	spec.BindWorkload(flag.CommandLine)
	spec.BindCache(flag.CommandLine)
	flag.BoolVar(&registry, "registry", false, "regenerate the in-process generated-engine registry and exit")
	flag.StringVar(&dir, "dir", "internal/codegen/registry", "registry directory (-registry mode)")
	flag.StringVar(&outDir, "o", "", "output directory for the standalone package")
	flag.StringVar(&module, "module", "", "module name of the emitted go.mod (default derived from the design)")
	flag.Parse()

	if registry {
		cli.Fail("esegen", runRegistry(dir))
		return
	}
	cli.Fail("esegen", runStandalone(&spec, outDir, module))
}

// runStandalone emits the `go build`-able timed-TLM package for one spec.
func runStandalone(spec *jobspec.Spec, outDir, module string) error {
	if outDir == "" {
		return cli.Input(fmt.Errorf("esegen: -o DIR is required (output directory for the generated package)"))
	}
	if err := spec.Validate(); err != nil {
		return cli.Input(err)
	}
	if spec.Engine != jobspec.EngineTimed {
		return cli.Input(fmt.Errorf("esegen: only the timed engine has a standalone form (got -engine %s)", spec.Engine))
	}
	d, err := spec.BuildDesign()
	if err != nil {
		return err
	}
	if module == "" {
		module = "esegen_" + sanitize(spec.App+"_"+spec.Design)
	}
	files, err := codegen.StandaloneFiles(d, core.FullDetail, module)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(files[name]))
	}
	fmt.Printf("standalone timed TLM for design %s: `go build` in %s\n", d.Name, outDir)
	return nil
}

// registryEntry is one program the registry covers.
type registryEntry struct {
	file string // gen_<file>.go
	sym  string // gen<sym> type name
	prog *cdfg.Program
}

// registryPrograms builds the deterministic program list the registry is
// generated from: the six example designs plus the codegen self-test
// corpus.
func registryPrograms() ([]registryEntry, error) {
	var entries []registryEntry
	mp3Syms := map[string]string{"SW": "MP3SW", "SW+1": "MP3SW1", "SW+2": "MP3SW2", "SW+4": "MP3SW4"}
	for _, design := range []string{"SW", "SW+1", "SW+2", "SW+4"} {
		prog, err := apps.CompileMP3(design, apps.DefaultMP3)
		if err != nil {
			return nil, fmt.Errorf("mp3 %s: %w", design, err)
		}
		entries = append(entries, registryEntry{
			file: "mp3_" + sanitize(design), sym: mp3Syms[design], prog: prog,
		})
	}
	jpegSyms := map[string]string{"SW": "JPEGSW", "SW+DCT": "JPEGSWDCT"}
	for _, design := range []string{"SW", "SW+DCT"} {
		var src string
		if design == "SW" {
			src = apps.JPEGSource(apps.DefaultJPEG)
		} else {
			src = apps.JPEGSourceDCTHW(apps.DefaultJPEG)
		}
		prog, err := apps.Compile("jpeg_"+design+".c", src)
		if err != nil {
			return nil, fmt.Errorf("jpeg %s: %w", design, err)
		}
		entries = append(entries, registryEntry{
			file: "jpeg_" + sanitize(design), sym: jpegSyms[design], prog: prog,
		})
	}
	for _, sp := range codegen.SelfTest {
		prog, err := codegen.CompileSelfTest(sp.Name)
		if err != nil {
			return nil, fmt.Errorf("selftest %s: %w", sp.Name, err)
		}
		entries = append(entries, registryEntry{
			file: "selftest_" + sanitize(sp.Name),
			sym:  "ST" + strings.ToUpper(sp.Name[:1]) + sp.Name[1:],
			prog: prog,
		})
	}
	return entries, nil
}

// runRegistry regenerates dir: one gen_*.go per unique program
// fingerprint, stale generated files removed, byte-deterministic output.
func runRegistry(dir string) error {
	entries, err := registryPrograms()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seen := make(map[cdfg.Fingerprint]string)
	keep := make(map[string]bool)
	for _, e := range entries {
		fp := e.prog.CodeFingerprint()
		if prev, dup := seen[fp]; dup {
			fmt.Printf("skip %s: same code fingerprint as %s\n", e.file, prev)
			continue
		}
		seen[fp] = e.file
		src, err := codegen.EngineSource(e.prog, "registry", e.sym)
		if err != nil {
			return fmt.Errorf("%s: %w", e.file, err)
		}
		name := "gen_" + e.file + ".go"
		keep[name] = true
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, fp %s)\n", path, len(src), fp)
	}
	// Drop generated files for programs no longer in the list.
	old, err := filepath.Glob(filepath.Join(dir, "gen_*.go"))
	if err != nil {
		return err
	}
	for _, path := range old {
		if keep[filepath.Base(path)] {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		fmt.Printf("removed stale %s\n", path)
	}
	fmt.Printf("registry: %d engines in %s\n", len(keep), dir)
	return nil
}

// sanitize maps a design/app name onto a file/identifier fragment.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == '+':
			// "SW+1" reads better as sw1 than sw_1.
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
