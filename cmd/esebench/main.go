// Command esebench reproduces the paper's evaluation: Table 1
// (scalability), Table 2 (SW-only accuracy vs ISS and board), Table 3
// (accuracy of the hardware-accelerated designs), and the three ablations
// documented in DESIGN.md.
//
// Usage:
//
//	esebench [-frames N] [-table 1|2|3] [-ablation sensitivity|granularity|pumdetail] [-all]
//
//	-validate     run the cross-model validation suite instead of the
//	              experiments: static verification and the
//	              tree/compiled/board differential over every example
//	              design, the metamorphic estimator invariants, and the
//	              seeded-mutation corpus (every corruption must be caught)
//	-dse FILE     run the design-space sweep described in FILE (see
//	              DESIGN.md) and print its Pareto front; the esedse
//	              command adds sharding, checkpoint/resume and file
//	              outputs
//	-metrics      print the pipeline's internal metrics snapshot at exit
//	-pprof ADDR   serve net/http/pprof on ADDR (e.g. localhost:6060) for
//	              the duration of the run
//
// Exit codes: 0 success, 1 runtime failure (including timeout), 2 usage or
// input error. For -bench-compare and -accuracy-compare specifically: 0
// within tolerance, 1 a genuine regression, 2 a baseline that is missing,
// truncated, or from a different design set/matrix. Diagnostics go to
// stderr, results to stdout.
//
// The accuracy scoreboard (-accuracy FILE, -accuracy-compare FILE,
// -accuracy-tolerance PTS) calibrates the statistical PUM models per
// training set and scores the timed TLM against the cycle-accurate board
// over the application × design × cache matrix — MAPE and Pearson r per
// row, cross-validation rows included (see internal/calib).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"ese"
	"ese/internal/apps"
	"ese/internal/calib"
	"ese/internal/cli"
	"ese/internal/dse"
	"ese/internal/engine"
	"ese/internal/experiments"
	"ese/internal/jobspec"
	"ese/internal/pum"
)

func main() {
	// The run-shaped options (-frames, -exec, -timeout) live in the shared
	// job spec; everything else here selects which experiments to print.
	spec := jobspec.DefaultTLM()
	spec.Calibrate = true
	spec.BindRun(flag.CommandLine)
	flag.IntVar(&spec.Frames, "frames", spec.Frames, "MP3 frames per run")
	table := flag.Int("table", 0, "reproduce one table (1, 2 or 3)")
	ablation := flag.String("ablation", "", "run one ablation: sensitivity, granularity, pumdetail, rtos, overlap")
	all := flag.Bool("all", false, "run every table and ablation")
	validate := flag.Bool("validate", false, "run the cross-model validation suite and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON lines instead of tables")
	showMetrics := flag.Bool("metrics", false, "print the pipeline metrics snapshot at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	dseSpec := flag.String("dse", "", "run the design-space sweep described in FILE and print its Pareto front")
	benchJSON := flag.String("bench-json", "", "measure the engine perf trajectory and write it as JSON to FILE (\"-\" = stdout)")
	benchCompare := flag.String("bench-compare", "", "measure the engine perf trajectory and compare it against the baseline JSON in FILE")
	benchReps := flag.Int("bench-reps", 5, "repetitions per design for -bench-json/-bench-compare (min is recorded)")
	benchTol := flag.Float64("bench-tolerance", 0.30, "allowed relative speedup regression for -bench-compare")
	accJSON := flag.String("accuracy", "", "run the calibration accuracy scoreboard and write it as JSON to FILE (\"-\" = stdout)")
	accCompare := flag.String("accuracy-compare", "", "run the accuracy scoreboard and compare it against the baseline JSON in FILE")
	accTol := flag.Float64("accuracy-tolerance", 1.0, "allowed per-row MAPE drift in percentage points for -accuracy-compare")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import; the server lives for the process lifetime.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "esebench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "esebench: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *validate {
		cli.Fail("esebench", ese.ValidationSuite(os.Stdout, spec.Frames))
		return
	}
	if *dseSpec != "" {
		cli.Fail("esebench", runDSE(*dseSpec, *jsonOut))
		return
	}
	cli.Fail("esebench", run(&spec, *table, *ablation, *all, *jsonOut, *showMetrics, benchCfg{
		json: *benchJSON, compare: *benchCompare,
		reps: *benchReps, tol: *benchTol,
	}, accCfg{
		json: *accJSON, compare: *accCompare, tol: *accTol,
	}))
}

// accCfg bundles the accuracy-scoreboard flag values.
type accCfg struct {
	json, compare string
	tol           float64
}

// benchCfg bundles the engine-benchmark flag values.
type benchCfg struct {
	json, compare string
	reps          int
	tol           float64
}

func run(spec *jobspec.Spec, table int, ablation string, all, jsonOut, showMetrics bool, bench benchCfg, acc accCfg) error {
	if err := spec.Validate(); err != nil {
		return cli.Input(err)
	}
	opts, err := spec.Options()
	if err != nil {
		return cli.Input(err)
	}
	if acc.json != "" || acc.compare != "" {
		// The scoreboard performs its own per-training-set calibrations;
		// the shared MP3-only setup below would be redundant work.
		return runAccuracy(spec.Frames, opts, acc)
	}
	eval := apps.MP3Config{Frames: spec.Frames, Seed: apps.DefaultMP3.Seed}
	if !jsonOut {
		fmt.Printf("workload: MP3-like decode, %d frames (eval seed 0x%X, train seed 0x%X)\n",
			spec.Frames, eval.Seed, apps.TrainMP3.Seed)
		fmt.Println("calibrating statistical PUM models on the training workload...")
	}
	s, err := experiments.NewSetupWith(eval, apps.TrainMP3, opts)
	if err != nil {
		return err
	}
	defer cli.PrintDiags("esebench", s.Pipe.Diagnostics())
	if bench.json != "" || bench.compare != "" {
		return runBench(s, bench)
	}
	emit := func(v any) {
		if jsonOut {
			data, err := json.Marshal(v)
			if err != nil {
				fmt.Println(`{"error":"marshal failed"}`)
				return
			}
			fmt.Println(string(data))
			return
		}
		fmt.Println(v)
	}
	_ = emit
	if !jsonOut {
		fmt.Printf("calibrated branch misprediction ratio: %.3f\n\n", s.MB.Branch.MissRate)
	}

	if all || table == 0 && ablation == "" {
		all = true
	}
	if all || table == 1 {
		t1, err := experiments.RunTable1(s)
		if err != nil {
			return err
		}
		emit(t1)
	}
	if all || table == 2 {
		t2, err := experiments.RunTable2(s)
		if err != nil {
			return err
		}
		emit(t2)
	}
	if all || table == 3 {
		t3, err := experiments.RunTable3(s)
		if err != nil {
			return err
		}
		emit(t3)
	}
	if all || ablation == "sensitivity" {
		sens, err := experiments.RunSensitivity(s, pum.CacheCfg{ISize: 2048, DSize: 2048},
			[]float64{-0.5, -0.25, 0, 0.25, 0.5})
		if err != nil {
			return err
		}
		emit(sens)
	}
	if all || ablation == "granularity" {
		g, err := experiments.RunGranularity(s, "SW+4")
		if err != nil {
			return err
		}
		emit(g)
	}
	if all || ablation == "pumdetail" {
		p, err := experiments.RunPUMDetail(s, pum.CacheCfg{ISize: 2048, DSize: 2048})
		if err != nil {
			return err
		}
		emit(p)
	}
	if all || ablation == "rtos" {
		study, err := experiments.RunRTOSStudy(s)
		if err != nil {
			return err
		}
		emit(study)
	}
	if all || ablation == "overlap" {
		study, err := experiments.RunOverlapStudy(s)
		if err != nil {
			return err
		}
		emit(study)
	}
	if all || ablation == "blocksize" {
		study, err := experiments.RunBlockSizeStudy(s)
		if err != nil {
			return err
		}
		emit(study)
	}
	if !jsonOut {
		cs := s.Pipe.Stats()
		fmt.Printf("\nestimation cache: %d schedule hits / %d misses, %d estimate hits / %d misses\n",
			cs.SchedHits, cs.SchedMisses, cs.EstHits, cs.EstMisses)
		if cs.DegradedBlocks > 0 {
			fmt.Printf("degraded estimation: %d ops in %d blocks used fallback latency (unmapped op classes)\n",
				cs.UnmappedOps, cs.DegradedBlocks)
		}
	}
	if showMetrics {
		fmt.Printf("\npipeline metrics:\n%s", s.Pipe.MetricsSnapshot())
	}
	return nil
}

// runDSE runs a declarative design-space sweep and prints its Pareto
// front — the quick-look mode; the esedse command adds sharded
// checkpointing, resume and file outputs for real sweeps.
func runDSE(path string, jsonOut bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return cli.Input(err)
	}
	sweep, err := dse.ParseSweep(data)
	if err != nil {
		return cli.Input(err)
	}
	res, err := dse.Run(context.Background(), sweep, dse.Options{})
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	s := res.Summary
	fmt.Printf("design-space sweep: %d points, %d on the Pareto front, cache hit rate %.1f%%\n",
		s.Points, len(res.Pareto), 100*s.CacheHitRate)
	return dse.WriteCSV(os.Stdout, res.Pareto)
}

// runAccuracy runs the calibration accuracy scoreboard and either records
// it (-accuracy) or checks it against a committed baseline
// (-accuracy-compare).
func runAccuracy(frames int, opts engine.Options, acc accCfg) error {
	cur, err := calib.RunScoreboard(calib.Options{Frames: frames, Engine: opts})
	if err != nil {
		return err
	}
	fmt.Print(cur)
	if acc.json != "" {
		data, err := cur.ToJSON()
		if err != nil {
			return err
		}
		if acc.json == "-" {
			fmt.Print(string(data))
		} else if err := os.WriteFile(acc.json, data, 0o644); err != nil {
			return err
		} else {
			fmt.Printf("wrote accuracy scoreboard to %s\n", acc.json)
		}
	}
	if acc.compare != "" {
		// A missing, truncated or wrong-matrix baseline is an input error
		// (exit 2); only genuine accuracy drift exits 1.
		base, err := calib.LoadScoreboard(acc.compare)
		if err != nil {
			return err
		}
		if violations := cur.Compare(base, acc.tol); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "esebench: accuracy regression: %s\n", v)
			}
			return fmt.Errorf("%d accuracy regression(s) against %s", len(violations), acc.compare)
		}
		fmt.Printf("accuracy within tolerance of %s (%.2f pt MAPE drift)\n", acc.compare, acc.tol)
	}
	return nil
}

// runBench measures the engine perf trajectory and either records it
// (-bench-json) or checks it against a committed baseline (-bench-compare).
func runBench(s *experiments.Setup, bench benchCfg) error {
	cur, err := experiments.RunPerfBench(s, bench.reps)
	if err != nil {
		return err
	}
	fmt.Print(cur)
	if bench.json != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if bench.json == "-" {
			fmt.Print(string(data))
		} else if err := os.WriteFile(bench.json, data, 0o644); err != nil {
			return err
		} else {
			fmt.Printf("wrote benchmark trajectory to %s\n", bench.json)
		}
	}
	if bench.compare != "" {
		// A missing, truncated or wrong-design-set baseline is an input
		// error (exit 2); only a genuine regression of the measurement
		// exits 1.
		base, err := experiments.LoadBaseline(bench.compare)
		if err != nil {
			return err
		}
		if violations := cur.Compare(base, bench.tol); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "esebench: bench regression: %s\n", v)
			}
			return fmt.Errorf("%d benchmark regression(s) against %s", len(violations), bench.compare)
		}
		fmt.Printf("benchmark within tolerance of %s (%.0f%%)\n", bench.compare, 100*bench.tol)
	}
	return nil
}
