// Command esedse expands and runs a design-space exploration sweep: a
// declarative JSON description of axes over application, PE design,
// pipeline depth and issue width, FU mix, cache geometry and branch
// model is lowered to one job spec per point, executed through the
// shared estimation pipeline against one content-addressed cache, and
// collected into deterministic row tables plus the Pareto front over
// (end time, FU-area proxy, estimation steps).
//
// Usage:
//
//	esedse -spec sweep.json [flags]
//
//	-spec FILE       sweep description ("-" = stdin); see DESIGN.md for
//	                 the schema
//	-out DIR         write rows.csv, rows.json, pareto.csv, pareto.json
//	                 and summary.json into DIR (default: print the Pareto
//	                 front as CSV on stdout)
//	-state DIR       checkpoint directory: completed points are appended
//	                 per shard and a rerun with the same sweep resumes
//	                 instead of re-simulating (kill-safe)
//	-shards N        checkpoint/progress granularity (default 8)
//	-workers N       parallel point executions (default GOMAXPROCS)
//	-cache-limit N   bound the schedule/estimate cache, entries per side
//	                 (default unbounded)
//	-halt-after N    stop (exit 1) after N newly executed points — the
//	                 kill/resume test hook used by CI
//	-timeout D       wall-clock bound for the whole sweep
//	-progress        print per-point completion lines to stderr
//
// Row tables and the Pareto front contain only deterministic columns:
// rerunning a sweep — interrupted or not — produces byte-identical
// files. Host-dependent measurements (wall clock, cache hit rates) stay
// in summary.json.
//
// Exit codes: 0 success, 1 runtime failure (including timeout and
// -halt-after), 2 usage or input error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/dse"
	"ese/internal/jobspec"
)

func main() {
	spec := flag.String("spec", "", "sweep description JSON (\"-\" = stdin)")
	out := flag.String("out", "", "output directory for rows/pareto/summary files")
	state := flag.String("state", "", "checkpoint directory for kill-safe resume")
	shards := flag.Int("shards", 8, "checkpoint/progress shards")
	workers := flag.Int("workers", 0, "parallel point executions (0 = GOMAXPROCS)")
	cacheLimit := flag.Int("cache-limit", 0, "bound the schedule/estimate cache, entries per side (0 = unbounded)")
	haltAfter := flag.Int("halt-after", 0, "halt after N newly executed points (kill/resume test hook)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole sweep")
	progress := flag.Bool("progress", false, "print per-point completion lines to stderr")
	flag.Parse()
	cli.Fail("esedse", run(*spec, *out, *state, *shards, *workers, *cacheLimit, *haltAfter, *timeout, *progress))
}

func run(specPath, outDir, stateDir string, shards, workers, cacheLimit, haltAfter int, timeout time.Duration, progress bool) error {
	if specPath == "" {
		return cli.Input(fmt.Errorf("esedse: -spec is required (\"-\" reads stdin)"))
	}
	if flag.NArg() > 0 {
		return cli.Input(fmt.Errorf("esedse: unexpected arguments %v", flag.Args()))
	}
	var data []byte
	var err error
	if specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(specPath)
	}
	if err != nil {
		return cli.Input(err)
	}
	sweep, err := dse.ParseSweep(data)
	if err != nil {
		return cli.Input(err)
	}
	if shards < 1 {
		return cli.Input(fmt.Errorf("esedse: -shards must be at least 1"))
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts := dse.Options{
		Shards:    shards,
		Workers:   workers,
		StateDir:  stateDir,
		HaltAfter: haltAfter,
		Runner:    &jobspec.Runner{Cache: core.NewCacheLimit(cacheLimit)},
	}
	if progress {
		opts.Progress = func(p dse.Progress) {
			tag := ""
			if p.Resumed {
				tag = " (resumed)"
			}
			fmt.Fprintf(os.Stderr, "esedse: point %d done, %d/%d, shard %d%s\n",
				p.Index, p.Done, p.Total, p.Shard, tag)
		}
	}
	res, err := dse.Run(ctx, sweep, opts)
	if err != nil {
		return err
	}

	if outDir == "" {
		if err := dse.WriteCSV(os.Stdout, res.Pareto); err != nil {
			return err
		}
	} else {
		if err := writeOutputs(outDir, res); err != nil {
			return err
		}
	}
	s := res.Summary
	fmt.Fprintf(os.Stderr,
		"esedse: %d points (%d resumed, %d ran) in %s, %d on the Pareto front, cache hit rate %.1f%%\n",
		s.Points, s.Resumed, s.Ran, time.Duration(s.WallNs).Round(time.Millisecond),
		len(res.Pareto), 100*s.CacheHitRate)
	return nil
}

// writeOutputs materializes the result tables. The CSV/JSON row files
// are deterministic; only summary.json carries host-dependent numbers.
func writeOutputs(dir string, res *dse.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, emit func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("esedse: writing %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write("rows.csv", func(w io.Writer) error { return dse.WriteCSV(w, res.Rows) }); err != nil {
		return err
	}
	if err := write("rows.json", func(w io.Writer) error { return dse.WriteJSON(w, res.Rows) }); err != nil {
		return err
	}
	if err := write("pareto.csv", func(w io.Writer) error { return dse.WriteCSV(w, res.Pareto) }); err != nil {
		return err
	}
	if err := write("pareto.json", func(w io.Writer) error { return dse.WriteJSON(w, res.Pareto) }); err != nil {
		return err
	}
	return write("summary.json", func(w io.Writer) error {
		data, err := json.MarshalIndent(res.Summary, "", "  ")
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	})
}
