package profile

import (
	"encoding/json"
	"strings"
	"testing"

	"ese/internal/annotate"
	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtos"
	"ese/internal/tlm"
)

func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

const pingPongSrc = `
int buf[8];
int res[8];
void main() {
  int r;
  for (r = 0; r < 3; r++) {
    int i;
    for (i = 0; i < 8; i++) buf[i] = r * 10 + i;
    send(0, buf, 8);
    recv(1, res, 8);
    out(res[0]);
  }
}
void worker() {
  int w[8];
  int r;
  for (r = 0; r < 3; r++) {
    int i;
    recv(0, w, 8);
    for (i = 0; i < 8; i++) w[i] = w[i] * 2;
    send(1, w, 8);
  }
}
`

// TestReportReconcilesWithSimulation is the tentpole invariant: the
// profiler's per-process cycle totals equal the timed TLM's simulated
// cycle counters bit-for-bit, and each row's term columns sum exactly to
// its cycle column.
func TestReportReconcilesWithSimulation(t *testing.T) {
	prog := compile(t, pingPongSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	hw := pum.CustomHW("acc", 100_000_000)
	d := &platform.Design{
		Name:    "pingpong",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{
			{Name: "cpu", Kind: platform.Processor, Entry: "main", PUM: mb},
			{Name: "acc", Kind: platform.HWUnit, Entry: "worker", PUM: hw},
		},
	}
	res, err := tlm.Run(d, tlm.Options{
		Timed:    true,
		WaitMode: tlm.WaitAtTransactions,
		Detail:   core.FullDetail,
		Profile:  true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est := map[string]map[*cdfg.Block]core.Estimate{
		"cpu": annotate.Annotate(prog, mb, core.FullDetail).Est,
		"acc": annotate.Annotate(prog, hw, core.FullDetail).Est,
	}
	r, err := Build(d.Name, prog, res.BlockCountsByPE, est)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("empty report")
	}
	var total float64
	for key, sub := range r.ByPE {
		if got, want := sub, float64(res.CyclesByPE[key]); got != want {
			t.Errorf("ByPE[%q] = %v, want exactly %v (simulated)", key, got, want)
		}
		total += sub
	}
	if r.TotalCycles != total {
		t.Errorf("TotalCycles = %v, want %v", r.TotalCycles, total)
	}
	for _, row := range r.Rows {
		if sum := row.Sched + row.Branch + row.IMem + row.DMem + row.Round; sum != row.Cycles {
			t.Errorf("%s %s/bb%d: terms sum %v != cycles %v", row.PE, row.Func, row.Block, sum, row.Cycles)
		}
		if row.Cycles != float64(row.Count)*row.PerExec {
			t.Errorf("%s %s/bb%d: cycles %v != count*perexec", row.PE, row.Func, row.Block, row.Cycles)
		}
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Cycles > r.Rows[i-1].Cycles {
			t.Fatalf("rows not sorted by cycles descending at %d", i)
		}
	}
}

// TestReportRTOSTaskKeys checks the "pe/task" fallback join and the
// reconciliation on an RTOS-arbitrated PE.
func TestReportRTOSTaskKeys(t *testing.T) {
	prog := compile(t, pingPongSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d := &platform.Design{
		Name:    "rtos",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{{
			Name: "cpu", Kind: platform.Processor, PUM: mb,
			RTOS: rtos.Config{Policy: rtos.Cooperative},
			Tasks: []platform.SWTask{
				{Name: "t0", Entry: "main"},
				{Name: "t1", Entry: "worker"},
			},
		}},
	}
	res, err := tlm.Run(d, tlm.Options{
		Timed:    true,
		WaitMode: tlm.WaitAtTransactions,
		Detail:   core.FullDetail,
		Profile:  true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est := map[string]map[*cdfg.Block]core.Estimate{
		"cpu": annotate.Annotate(prog, mb, core.FullDetail).Est,
	}
	r, err := Build(d.Name, prog, res.BlockCountsByPE, est)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, key := range []string{"cpu/t0", "cpu/t1"} {
		if got, want := r.ByPE[key], float64(res.CyclesByPE[key]); got != want {
			t.Errorf("ByPE[%q] = %v, want exactly %v", key, got, want)
		}
	}
	if got, want := r.TotalCycles, float64(res.CyclesByPE["cpu"]); got != want {
		t.Errorf("TotalCycles = %v, want PE sum %v", got, want)
	}
}

func TestReportTextAndJSON(t *testing.T) {
	prog := compile(t, `
int acc;
void main() {
  int i;
  for (i = 0; i < 10; i++) acc = acc + i;
  out(acc);
}
`)
	mb := pum.MicroBlaze()
	a := annotate.Annotate(prog, mb, core.FullDetail)
	// Functional profile: run the interpreter directly (the eseest path).
	counts := map[string]map[*cdfg.Block]uint64{"microblaze": countRun(t, prog)}
	r, err := Build("", prog, counts, map[string]map[*cdfg.Block]core.Estimate{"microblaze": a.Est})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	txt := r.Text(2)
	if !strings.Contains(txt, "cycle attribution") || !strings.Contains(txt, "main/bb") {
		t.Fatalf("unexpected text report:\n%s", txt)
	}
	if !strings.Contains(txt, "more blocks") {
		t.Fatalf("top-N truncation missing:\n%s", txt)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.TotalCycles != r.TotalCycles || len(back.Rows) != len(r.Rows) {
		t.Fatal("JSON round-trip mismatch")
	}
	// The loop body must dominate: its row comes first and runs 10 times.
	if r.Rows[0].Count < 10 {
		t.Errorf("top row count = %d, want the loop body (>= 10)", r.Rows[0].Count)
	}
}

func countRun(t *testing.T, prog *cdfg.Program) map[*cdfg.Block]uint64 {
	t.Helper()
	m := interp.New(prog)
	m.EnableProfile()
	if err := m.Run("main"); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return m.BlockCounts
}

// TestReportReconcilesUnderBothEngines pins the PR 3 invariant to each
// execution engine explicitly: under the tree-walker AND the compiled
// flat engine, the profiler totals must equal the simulated per-PE cycle
// counters bit-for-bit.
func TestReportReconcilesUnderBothEngines(t *testing.T) {
	prog := compile(t, pingPongSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	hw := pum.CustomHW("acc", 100_000_000)
	est := map[string]map[*cdfg.Block]core.Estimate{
		"cpu": annotate.Annotate(prog, mb, core.FullDetail).Est,
		"acc": annotate.Annotate(prog, hw, core.FullDetail).Est,
	}
	for _, kind := range []interp.EngineKind{interp.EngineTree, interp.EngineCompiled} {
		d := &platform.Design{
			Name:    "pingpong-" + kind.String(),
			Program: prog,
			Bus:     platform.DefaultBus(),
			PEs: []*platform.PE{
				{Name: "cpu", Kind: platform.Processor, Entry: "main", PUM: mb},
				{Name: "acc", Kind: platform.HWUnit, Entry: "worker", PUM: hw},
			},
		}
		res, err := tlm.Run(d, tlm.Options{
			Timed:    true,
			WaitMode: tlm.WaitAtTransactions,
			Detail:   core.FullDetail,
			Profile:  true,
			Engine:   kind,
		})
		if err != nil {
			t.Fatalf("%v: Run: %v", kind, err)
		}
		r, err := Build(d.Name, prog, res.BlockCountsByPE, est)
		if err != nil {
			t.Fatalf("%v: Build: %v", kind, err)
		}
		for _, key := range []string{"cpu", "acc"} {
			if got, want := r.ByPE[key], float64(res.CyclesByPE[key]); got != want {
				t.Errorf("%v: ByPE[%q] = %v, want exactly %v (simulated)", kind, key, got, want)
			}
		}
	}
}
