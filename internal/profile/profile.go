// Package profile implements the cycle-attribution profiler: it joins the
// per-block execution counts of a (timed or functional) TLM run with each
// block's statistical estimate breakdown (Algorithm 2's schedule, branch
// penalty, i-cache and d-cache terms) into a ranked "where do the estimated
// cycles go" report.
//
// The join is exact. Every block's Estimate.Total is an integral float64
// (core.ComposeEstimate rounds it), execution counts are integers, and all
// products and sums stay far below 2^53, so dynamic cycles here are
// computed bit-for-bit identically to the simulation's own accumulation:
// the per-PE totals reconcile exactly with tlm.Result.CyclesByPE. The four
// statistical terms are real-valued, so each row carries a rounding
// residual column (Total − (Sched+Branch+IMem+DMem), scaled by the count)
// that makes the term columns sum exactly to the cycle column.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ese/internal/cdfg"
	"ese/internal/core"
)

// Row is the attribution of one (process, basic block) pair.
type Row struct {
	PE    string `json:"pe"`    // process key ("pe" or "pe/task")
	Func  string `json:"func"`  // function containing the block
	Block int    `json:"block"` // basic-block id within the function
	Count uint64 `json:"count"` // dynamic executions
	// PerExec is the block's estimated cycles per execution
	// (Estimate.Total, integral).
	PerExec float64 `json:"cycles_per_exec"`
	// Cycles is Count × PerExec, the block's share of the simulated time.
	Cycles float64 `json:"cycles"`
	// Attribution of Cycles over the estimate's terms (each is Count × the
	// per-execution term); Round is the rounding residual that makes
	// Sched+Branch+IMem+DMem+Round == Cycles exactly.
	Sched  float64 `json:"sched"`
	Branch float64 `json:"branch"`
	IMem   float64 `json:"imem"`
	DMem   float64 `json:"dmem"`
	Round  float64 `json:"round"`
	// Pct is Cycles as a percentage of the report's total.
	Pct float64 `json:"pct"`
}

// Report is the full attribution of one run.
type Report struct {
	Design string `json:"design,omitempty"`
	// TotalCycles is the sum of every row's Cycles; for a timed TLM run it
	// equals the sum of tlm.Result.CyclesByPE bit-for-bit.
	TotalCycles float64 `json:"total_cycles"`
	// ByPE is the per-process-key subtotal (same keys as Rows' PE).
	ByPE map[string]float64 `json:"cycles_by_pe"`
	// Rows are sorted by Cycles descending (ties: PE, Func, Block).
	Rows []Row `json:"rows"`
}

// Build joins execution counts with block estimates. counts is keyed by
// process key ("pe" or "pe/task", as in tlm.Result.BlockCountsByPE); est is
// keyed by PE name (RTOS task keys fall back to their PE's entry). Blocks
// that never executed are omitted.
func Build(design string, prog *cdfg.Program, counts map[string]map[*cdfg.Block]uint64,
	est map[string]map[*cdfg.Block]core.Estimate) (*Report, error) {
	blockFunc := make(map[*cdfg.Block]string)
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			blockFunc[b] = fn.Name
		}
	}
	r := &Report{Design: design, ByPE: make(map[string]float64)}
	for key, cm := range counts {
		em, ok := est[key]
		if !ok {
			// RTOS task key "pe/task": attribution uses the PE's estimates.
			if i := strings.IndexByte(key, '/'); i > 0 {
				em, ok = est[key[:i]]
			}
			if !ok {
				return nil, fmt.Errorf("profile: no estimates for process %q", key)
			}
		}
		var sub float64
		for b, n := range cm {
			if n == 0 {
				continue
			}
			e, ok := em[b]
			if !ok {
				return nil, fmt.Errorf("profile: process %q executed un-estimated block %s/bb%d",
					key, blockFunc[b], b.ID)
			}
			cnt := float64(n)
			row := Row{
				PE:      key,
				Func:    blockFunc[b],
				Block:   b.ID,
				Count:   n,
				PerExec: e.Total,
				Cycles:  cnt * e.Total,
				Sched:   cnt * float64(e.Sched),
				Branch:  cnt * e.BranchPen,
				IMem:    cnt * e.IDelay,
				DMem:    cnt * e.DDelay,
			}
			row.Round = row.Cycles - (row.Sched + row.Branch + row.IMem + row.DMem)
			r.Rows = append(r.Rows, row)
			sub += row.Cycles
		}
		r.ByPE[key] = sub
		r.TotalCycles += sub
	}
	for i := range r.Rows {
		if r.TotalCycles > 0 {
			r.Rows[i].Pct = 100 * r.Rows[i].Cycles / r.TotalCycles
		}
	}
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := &r.Rows[i], &r.Rows[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Block < b.Block
	})
	return r, nil
}

// Text renders the top rows as an aligned table; top <= 0 renders all.
func (r *Report) Text(top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle attribution")
	if r.Design != "" {
		fmt.Fprintf(&sb, " for %s", r.Design)
	}
	fmt.Fprintf(&sb, ": %d cycles total\n", int64(r.TotalCycles))
	keys := make([]string, 0, len(r.ByPE))
	for k := range r.ByPE {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-14s %14d cycles\n", k, int64(r.ByPE[k]))
	}
	n := len(r.Rows)
	if top > 0 && top < n {
		n = top
	}
	sb.WriteString("  PE             FUNC/BLOCK                COUNT       CYCLES    %      SCHED     BRANCH       IMEM       DMEM\n")
	for _, row := range r.Rows[:n] {
		fmt.Fprintf(&sb, "  %-14s %-22s %8d %12d %5.1f %10.0f %10.1f %10.1f %10.1f\n",
			row.PE, fmt.Sprintf("%s/bb%d", row.Func, row.Block), row.Count,
			int64(row.Cycles), row.Pct, row.Sched, row.Branch, row.IMem, row.DMem)
	}
	if n < len(r.Rows) {
		var rest float64
		for _, row := range r.Rows[n:] {
			rest += row.Cycles
		}
		fmt.Fprintf(&sb, "  ... %d more blocks (%d cycles)\n", len(r.Rows)-n, int64(rest))
	}
	return sb.String()
}

// JSON renders the full report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
