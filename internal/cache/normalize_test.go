package cache

import (
	"testing"
	"testing/quick"
)

// TestNewNormalizesDegenerateConfigs pins the normalization contract of
// New: the allocated geometry never exceeds the configured size, lines are
// always a power of two (so the lineBits shift agrees with the capacity
// division), and every degenerate input yields a usable cache. The
// "undersized" and "non-pow2 line" rows fail on the pre-normalization
// code: Size < LineBytes*Assoc silently allocated a 1-set × Assoc-way
// cache larger than configured, and a non-power-of-two LineBytes made the
// line shift disagree with Size/LineBytes.
func TestNewNormalizesDegenerateConfigs(t *testing.T) {
	tests := []struct {
		name     string
		cfg      Config
		wantCfg  Config // effective config after normalization
		wantSets int
	}{
		{
			name:     "well-formed",
			cfg:      Config{Size: 1024, LineBytes: 16, Assoc: 2},
			wantCfg:  Config{Size: 1024, LineBytes: 16, Assoc: 2},
			wantSets: 32,
		},
		{
			name: "undersized for assoc",
			// 64B with 16B lines holds 4 lines; 8 ways cannot fit — clamp
			// to fully associative over the 4 real lines.
			cfg:      Config{Size: 64, LineBytes: 16, Assoc: 8},
			wantCfg:  Config{Size: 64, LineBytes: 16, Assoc: 4},
			wantSets: 1,
		},
		{
			name: "size smaller than one line",
			// 8B budget with 16B lines: shrink the line to fit the budget.
			cfg:      Config{Size: 8, LineBytes: 16, Assoc: 1},
			wantCfg:  Config{Size: 8, LineBytes: 8, Assoc: 1},
			wantSets: 1,
		},
		{
			name: "non-power-of-two line",
			// 24B lines round down to 16B so the shift and the division
			// agree.
			cfg:      Config{Size: 256, LineBytes: 24, Assoc: 1},
			wantCfg:  Config{Size: 256, LineBytes: 16, Assoc: 1},
			wantSets: 16,
		},
		{
			name:     "zero line and assoc",
			cfg:      Config{Size: 256, LineBytes: 0, Assoc: 0},
			wantCfg:  Config{Size: 256, LineBytes: DefaultLine, Assoc: 1},
			wantSets: 16,
		},
		{
			name:     "negative line and assoc",
			cfg:      Config{Size: 256, LineBytes: -8, Assoc: -3},
			wantCfg:  Config{Size: 256, LineBytes: DefaultLine, Assoc: 1},
			wantSets: 16,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := New(tt.cfg)
			if got := c.Config(); got != tt.wantCfg {
				t.Errorf("Config() = %+v, want %+v", got, tt.wantCfg)
			}
			if c.sets != tt.wantSets {
				t.Errorf("sets = %d, want %d", c.sets, tt.wantSets)
			}
			if cap := c.Capacity(); cap > tt.cfg.Size {
				t.Errorf("capacity %dB exceeds configured %dB", cap, tt.cfg.Size)
			}
			if !c.Enabled() {
				t.Error("normalized cache not enabled")
			}
			// The cache must behave: repeat access hits.
			c.Access(0x40)
			if !c.Access(0x40) {
				t.Error("repeat access missed after normalization")
			}
		})
	}
}

func TestNewDisabledConfigs(t *testing.T) {
	for _, cfg := range []Config{{}, {Size: -64, LineBytes: 16, Assoc: 2}} {
		c := New(cfg)
		if c.Enabled() {
			t.Errorf("New(%+v) enabled, want disabled", cfg)
		}
		if c.Access(0x10) {
			t.Errorf("New(%+v): access hit in disabled cache", cfg)
		}
		if c.Capacity() != 0 {
			t.Errorf("New(%+v): capacity = %d, want 0", cfg, c.Capacity())
		}
	}
}

// TestPropertyNormalizedGeometry checks the normalization invariants over
// arbitrary configurations: capacity within budget, power-of-two line
// size, shift/capacity agreement, and no panic on any input.
func TestPropertyNormalizedGeometry(t *testing.T) {
	f := func(size int16, line int8, assoc int8) bool {
		cfg := Config{Size: int(size), LineBytes: int(line), Assoc: int(assoc)}
		c := New(cfg)
		if cfg.Size <= 0 {
			return !c.Enabled()
		}
		eff := c.Config()
		// Line size is a power of two within the budget.
		if eff.LineBytes < 1 || eff.LineBytes&(eff.LineBytes-1) != 0 || eff.LineBytes > eff.Size {
			return false
		}
		// The shift agrees with the line size.
		if 1<<c.lineBits != eff.LineBytes {
			return false
		}
		// Allocated capacity never exceeds the configured size.
		if c.Capacity() > cfg.Size || c.Capacity() < 1 {
			return false
		}
		// Determinism of the decomposition: repeat access hits.
		c.Access(0xDEAD)
		return c.Access(0xDEAD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
