package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Size: 1024, LineBytes: 16, Assoc: 1})
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("second access missed")
	}
	// Same line, different word.
	if !c.Access(0x104) {
		t.Fatal("same-line access missed")
	}
	// Different line.
	if c.Access(0x200) {
		t.Fatal("different line hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("stats = %d/%d, want 4/2", c.Accesses, c.Misses)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 256B direct-mapped, 16B lines -> 16 sets. Addresses 0 and 256 map to
	// the same set and evict each other.
	c := New(Config{Size: 256, LineBytes: 16, Assoc: 1})
	c.Access(0)
	c.Access(256)
	if c.Access(0) {
		t.Fatal("conflicting line survived in direct-mapped cache")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	// Same trace with 2-way: both lines fit.
	c := New(Config{Size: 256, LineBytes: 16, Assoc: 2})
	c.Access(0)
	c.Access(128) // 8 sets now: 0 and 128 conflict in set 0
	if !c.Access(0) {
		t.Fatal("2-way cache evicted line that should fit")
	}
	if !c.Access(128) {
		t.Fatal("second way lost")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 32B, 16B lines -> 1 set, 2 ways.
	c := New(Config{Size: 32, LineBytes: 16, Assoc: 2})
	c.Access(0)  // miss, way A
	c.Access(16) // miss, way B
	c.Access(0)  // hit, A is MRU
	c.Access(32) // miss, evicts LRU = line 16
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(16) {
		t.Fatal("LRU line not evicted")
	}
}

func TestUncachedAlwaysMisses(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 10; i++ {
		if c.Access(uint32(i * 4)) {
			t.Fatal("uncached access hit")
		}
	}
	if c.HitRate() != 0 {
		t.Fatalf("hit rate = %v, want 0", c.HitRate())
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := New(Config{Size: 1024, LineBytes: 16, Assoc: 2})
	c.Access(0)
	c.Access(0)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Access(0) {
		t.Fatal("contents lost on ResetStats")
	}
	c.Flush()
	if c.Access(0) {
		t.Fatal("contents survived Flush")
	}
}

func TestHitRateSequentialSweep(t *testing.T) {
	// Sequential word accesses over 4KB with 16B lines: 1 miss per 4
	// accesses -> 75% hit rate.
	c := New(Config{Size: 8 * 1024, LineBytes: 16, Assoc: 2})
	for a := uint32(0); a < 4096; a += 4 {
		c.Access(a)
	}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("sequential hit rate = %v, want 0.75", got)
	}
}

func TestPropertyHitAfterAccess(t *testing.T) {
	// Property: immediately repeating any access hits, for any cache shape.
	f := func(addrs []uint32, szSel, assocSel uint8) bool {
		sizes := []int{256, 1024, 4096}
		assocs := []int{1, 2, 4}
		c := New(Config{
			Size:      sizes[int(szSel)%len(sizes)],
			LineBytes: 16,
			Assoc:     assocs[int(assocSel)%len(assocs)],
		})
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMissesNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{Size: 512, LineBytes: 16, Assoc: 2})
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Misses <= c.Accesses && c.HitRate() >= 0 && c.HitRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBiggerCacheNeverWorseOnRepeatTrace(t *testing.T) {
	// Property (for repeated loops): doubling the size with equal assoc
	// should not increase misses on a loop-shaped trace.
	trace := make([]uint32, 0, 4096)
	for rep := 0; rep < 8; rep++ {
		for a := uint32(0); a < 2048; a += 4 {
			trace = append(trace, a)
		}
	}
	small := New(Config{Size: 1024, LineBytes: 16, Assoc: 2})
	big := New(Config{Size: 4096, LineBytes: 16, Assoc: 2})
	for _, a := range trace {
		small.Access(a)
		big.Access(a)
	}
	if big.Misses > small.Misses {
		t.Fatalf("bigger cache missed more: %d > %d", big.Misses, small.Misses)
	}
}
