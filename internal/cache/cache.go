// Package cache implements a set-associative, write-allocate, LRU cache
// simulator. It is the memory-hierarchy substrate of the cycle-accurate
// board model and of PUM calibration: the statistical hit rates in the
// processing unit model are profiled against these caches.
package cache

// Config describes one cache.
type Config struct {
	Size      int // total bytes; 0 disables the cache (every access misses)
	LineBytes int // line size in bytes
	Assoc     int // ways per set
}

// DefaultLine is the line size used across the board model.
const DefaultLine = 16

// Cache is one direct-mapped or set-associative cache with true LRU
// replacement.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	tags     [][]uint32 // [set][way] tag (tag 0 means empty via valid bit)
	valid    [][]bool
	lru      [][]uint8 // lower value = more recently used

	Accesses uint64
	Misses   uint64
}

// New builds a cache; a zero-size config returns a cache where every
// access misses (the uncached configuration).
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg}
	if cfg.Size == 0 {
		return c
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = DefaultLine
		c.cfg.LineBytes = DefaultLine
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 1
		c.cfg.Assoc = 1
	}
	lines := cfg.Size / cfg.LineBytes
	c.sets = lines / cfg.Assoc
	if c.sets == 0 {
		c.sets = 1
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.tags = make([][]uint32, c.sets)
	c.valid = make([][]bool, c.sets)
	c.lru = make([][]uint8, c.sets)
	for s := 0; s < c.sets; s++ {
		c.tags[s] = make([]uint32, cfg.Assoc)
		c.valid[s] = make([]bool, cfg.Assoc)
		c.lru[s] = make([]uint8, cfg.Assoc)
	}
	return c
}

// Enabled reports whether the cache holds any lines.
func (c *Cache) Enabled() bool { return c.sets > 0 }

// Access simulates one access to the byte address and reports whether it
// hit. Misses allocate the line (write-allocate for stores as well).
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	if c.sets == 0 {
		c.Misses++
		return false
	}
	line := addr >> c.lineBits
	set := int(line) % c.sets
	tag := line / uint32(c.sets)
	ways := c.cfg.Assoc
	for w := 0; w < ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.touch(set, w)
			return true
		}
	}
	c.Misses++
	// Choose victim: first invalid way, else LRU (highest counter).
	victim := -1
	for w := 0; w < ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		worst := uint8(0)
		victim = 0
		for w := 0; w < ways; w++ {
			if c.lru[set][w] >= worst {
				worst = c.lru[set][w]
				victim = w
			}
		}
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.touch(set, victim)
	return false
}

// touch marks the way most-recently-used.
func (c *Cache) touch(set, way int) {
	cur := c.lru[set][way]
	for w := range c.lru[set] {
		if c.lru[set][w] < cur {
			c.lru[set][w]++
		}
	}
	c.lru[set][way] = 0
}

// HitRate returns the observed hit rate (1.0 when no accesses were made,
// matching the optimistic default of an idle statistics source).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 1.0
	}
	return 1.0 - float64(c.Misses)/float64(c.Accesses)
}

// ResetStats clears the counters but keeps cache contents.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Misses = 0
}

// Flush invalidates all lines and clears statistics.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.lru[s][w] = 0
			c.tags[s][w] = 0
		}
	}
	c.ResetStats()
}
