// Package cache implements a set-associative, write-allocate, LRU cache
// simulator. It is the memory-hierarchy substrate of the cycle-accurate
// board model and of PUM calibration: the statistical hit rates in the
// processing unit model are profiled against these caches.
package cache

// Config describes one cache.
type Config struct {
	Size      int // total bytes; 0 disables the cache (every access misses)
	LineBytes int // line size in bytes
	Assoc     int // ways per set
}

// DefaultLine is the line size used across the board model.
const DefaultLine = 16

// Cache is one direct-mapped or set-associative cache with true LRU
// replacement.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	tags     [][]uint32 // [set][way] tag (tag 0 means empty via valid bit)
	valid    [][]bool
	lru      [][]uint8 // lower value = more recently used

	Accesses uint64
	Misses   uint64
}

// New builds a cache; a non-positive size returns a cache where every
// access misses (the uncached configuration).
//
// Degenerate configurations are normalized rather than trusted verbatim,
// so the allocated geometry never exceeds the configured size and the
// address decomposition always agrees with the capacity math:
//
//   - a non-positive or non-power-of-two LineBytes is replaced by
//     DefaultLine / rounded down to the previous power of two (the line
//     shift `lineBits` and the Size/LineBytes capacity division would
//     otherwise disagree, aliasing distinct lines onto one set+tag);
//   - LineBytes is clamped to at most the previous power of two of Size,
//     so even a tiny cache holds at least one full line within budget;
//   - a non-positive Assoc becomes direct-mapped (1), and Assoc is
//     clamped to the total line count — a Size smaller than
//     LineBytes*Assoc used to silently allocate a 1-set × Assoc-way
//     cache *larger* than configured.
//
// The effective geometry is readable via Config().
func New(cfg Config) *Cache {
	if cfg.Size <= 0 {
		return &Cache{cfg: Config{Size: 0, LineBytes: 0, Assoc: 0}}
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = DefaultLine
	}
	cfg.LineBytes = prevPow2(cfg.LineBytes)
	if cfg.LineBytes > cfg.Size {
		cfg.LineBytes = prevPow2(cfg.Size)
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	lines := cfg.Size / cfg.LineBytes // >= 1 after the clamps above
	if cfg.Assoc > lines {
		cfg.Assoc = lines
	}
	c := &Cache{cfg: cfg}
	c.sets = lines / cfg.Assoc
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.tags = make([][]uint32, c.sets)
	c.valid = make([][]bool, c.sets)
	c.lru = make([][]uint8, c.sets)
	for s := 0; s < c.sets; s++ {
		c.tags[s] = make([]uint32, cfg.Assoc)
		c.valid[s] = make([]bool, cfg.Assoc)
		c.lru[s] = make([]uint8, cfg.Assoc)
	}
	return c
}

// prevPow2 returns the largest power of two <= v (v must be >= 1).
func prevPow2(v int) int {
	p := 1
	for p <= v/2 {
		p <<= 1
	}
	return p
}

// Config returns the effective (normalized) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Capacity returns the allocated capacity in bytes (sets × ways × line).
func (c *Cache) Capacity() int { return c.sets * c.cfg.Assoc * c.cfg.LineBytes }

// Enabled reports whether the cache holds any lines.
func (c *Cache) Enabled() bool { return c.sets > 0 }

// Access simulates one access to the byte address and reports whether it
// hit. Misses allocate the line (write-allocate for stores as well).
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	if c.sets == 0 {
		c.Misses++
		return false
	}
	line := addr >> c.lineBits
	set := int(line) % c.sets
	tag := line / uint32(c.sets)
	ways := c.cfg.Assoc
	for w := 0; w < ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.touch(set, w)
			return true
		}
	}
	c.Misses++
	// Choose victim: first invalid way, else LRU (highest counter).
	victim := -1
	for w := 0; w < ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		worst := uint8(0)
		victim = 0
		for w := 0; w < ways; w++ {
			if c.lru[set][w] >= worst {
				worst = c.lru[set][w]
				victim = w
			}
		}
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.touch(set, victim)
	return false
}

// touch marks the way most-recently-used.
func (c *Cache) touch(set, way int) {
	cur := c.lru[set][way]
	for w := range c.lru[set] {
		if c.lru[set][w] < cur {
			c.lru[set][w]++
		}
	}
	c.lru[set][way] = 0
}

// HitRate returns the observed hit rate (1.0 when no accesses were made,
// matching the optimistic default of an idle statistics source).
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 1.0
	}
	return 1.0 - float64(c.Misses)/float64(c.Accesses)
}

// ResetStats clears the counters but keeps cache contents.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Misses = 0
}

// Flush invalidates all lines and clears statistics.
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.lru[s][w] = 0
			c.tags[s][w] = 0
		}
	}
	c.ResetStats()
}
