package iss

import (
	"fmt"
	"strings"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/interp"
)

// progGen generates random (but always valid and terminating) programs of
// the C subset, for differential testing of the execution engines. All
// loops are bounded counted loops; all array indices are masked into
// range; recursion is excluded. Any divergence between the IR interpreter
// and the ISA machine on a generated program is a real bug in one of them.
type progGen struct {
	rng     uint32
	sb      strings.Builder
	nglob   int
	garrs   []int // sizes of global arrays
	depth   int
	funcIdx int
}

func (g *progGen) next() uint32 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 17
	g.rng ^= g.rng << 5
	return g.rng
}

func (g *progGen) pick(n int) int { return int(g.next() % uint32(n)) }

// expr emits a random int expression over the names in scope.
func (g *progGen) expr(scope []string, depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(4) {
		case 0:
			return fmt.Sprintf("%d", int32(g.next()%2001)-1000)
		case 1:
			if len(scope) > 0 {
				return scope[g.pick(len(scope))]
			}
			return "7"
		case 2:
			if g.nglob > 0 {
				return fmt.Sprintf("g%d", g.pick(g.nglob))
			}
			return "3"
		default:
			if len(g.garrs) > 0 {
				a := g.pick(len(g.garrs))
				return fmt.Sprintf("arr%d[(%s) & %d]", a, g.expr(scope, 0), g.garrs[a]-1)
			}
			return "11"
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	op := ops[g.pick(len(ops))]
	l := g.expr(scope, depth-1)
	r := g.expr(scope, depth-1)
	if op == "<<" || op == ">>" {
		r = fmt.Sprintf("((%s) & 15)", r)
	}
	if g.pick(6) == 0 {
		return fmt.Sprintf("(%s %s %s ? %s : %s)", l, op, r,
			g.expr(scope, depth-1), g.expr(scope, depth-1))
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

// stmt emits a random statement. scope is readable; wscope is the subset
// that may be written (loop induction variables are read-only so loops
// stay bounded).
func (g *progGen) stmt(scope, wscope []string, indent string, depth int) {
	switch g.pick(7) {
	case 0, 1: // assignment to a scope var or array element
		if len(g.garrs) > 0 && g.pick(2) == 0 {
			a := g.pick(len(g.garrs))
			fmt.Fprintf(&g.sb, "%sarr%d[(%s) & %d] = %s;\n", indent,
				a, g.expr(scope, 1), g.garrs[a]-1, g.expr(scope, 2))
			return
		}
		if len(wscope) > 0 {
			v := wscope[g.pick(len(wscope))]
			compound := []string{"=", "+=", "-=", "*=", "^=", "|=", "&="}
			fmt.Fprintf(&g.sb, "%s%s %s %s;\n", indent, v,
				compound[g.pick(len(compound))], g.expr(scope, 2))
			return
		}
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(scope, 2))
	case 2: // out
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(scope, 2))
	case 3: // if/else
		if depth <= 0 {
			fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(scope, 1))
			return
		}
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", indent, g.expr(scope, 2))
		g.stmt(scope, wscope, indent+"  ", depth-1)
		if g.pick(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", indent)
			g.stmt(scope, wscope, indent+"  ", depth-1)
		}
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case 4: // bounded for loop with a fresh induction variable
		if depth <= 0 {
			fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(scope, 1))
			return
		}
		iv := fmt.Sprintf("i%d_%d", g.depth, g.pick(1000))
		g.depth++
		n := 2 + g.pick(6)
		fmt.Fprintf(&g.sb, "%sfor (int %s = 0; %s < %d; %s++) {\n", indent, iv, iv, n, iv)
		g.stmt(append(scope, iv), wscope, indent+"  ", depth-1)
		fmt.Fprintf(&g.sb, "%s}\n", indent)
		g.depth--
	case 5: // local declaration + use
		v := fmt.Sprintf("v%d_%d", g.depth, g.pick(1000))
		fmt.Fprintf(&g.sb, "%s{\n%s  int %s = %s;\n", indent, indent, v, g.expr(scope, 2))
		g.stmt(append(scope, v), append(wscope, v), indent+"  ", depth-1)
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	default: // inc/dec
		if len(wscope) > 0 {
			v := wscope[g.pick(len(wscope))]
			if g.pick(2) == 0 {
				fmt.Fprintf(&g.sb, "%s%s++;\n", indent, v)
			} else {
				fmt.Fprintf(&g.sb, "%s%s--;\n", indent, v)
			}
			return
		}
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(scope, 1))
	}
}

// generate builds a whole program with helper functions and a main.
func (g *progGen) generate() string {
	g.sb.Reset()
	g.nglob = 1 + g.pick(4)
	for i := 0; i < g.nglob; i++ {
		fmt.Fprintf(&g.sb, "int g%d = %d;\n", i, int32(g.next()%100)-50)
	}
	narr := 1 + g.pick(3)
	g.garrs = nil
	for i := 0; i < narr; i++ {
		size := []int{4, 8, 16, 32}[g.pick(4)]
		g.garrs = append(g.garrs, size)
		fmt.Fprintf(&g.sb, "int arr%d[%d];\n", i, size)
	}
	// A couple of helper functions with scalar and array params.
	nfun := 1 + g.pick(3)
	var helpers []string
	for i := 0; i < nfun; i++ {
		name := fmt.Sprintf("helper%d", i)
		helpers = append(helpers, name)
		fmt.Fprintf(&g.sb, "int %s(int a, int b) {\n", name)
		g.stmt([]string{"a", "b"}, []string{"a", "b"}, "  ", 2)
		fmt.Fprintf(&g.sb, "  return %s;\n}\n", g.expr([]string{"a", "b"}, 2))
	}
	g.sb.WriteString("void main() {\n  int x = 1;\n  int y = 2;\n")
	for s := 0; s < 4+g.pick(6); s++ {
		if g.pick(4) == 0 {
			h := helpers[g.pick(len(helpers))]
			fmt.Fprintf(&g.sb, "  x = %s(%s, %s);\n", h,
				g.expr([]string{"x", "y"}, 1), g.expr([]string{"x", "y"}, 1))
			continue
		}
		g.stmt([]string{"x", "y"}, []string{"x", "y"}, "  ", 3)
	}
	g.sb.WriteString("  out(x);\n  out(y);\n")
	for i := 0; i < g.nglob; i++ {
		fmt.Fprintf(&g.sb, "  out(g%d);\n", i)
	}
	g.sb.WriteString("}\n")
	return g.sb.String()
}

// TestDifferentialInterpVsMachine generates random programs and checks that
// the IR interpreter and the ISA machine produce identical out() streams
// and identical dynamic step counts.
func TestDifferentialInterpVsMachine(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 25
	}
	for seed := 1; seed <= iters; seed++ {
		g := &progGen{rng: uint32(seed) * 2654435761}
		if g.rng == 0 {
			g.rng = 1
		}
		src := g.generate()
		ir, mp := func() (*interp.Machine, *Machine) {
			prog := compile(t, src)
			isa, err := Generate(prog)
			if err != nil {
				t.Fatalf("seed %d: Generate: %v\n%s", seed, err, src)
			}
			im := interp.New(prog)
			im.Limit = 10_000_000
			if err := im.Run("main"); err != nil {
				t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
			}
			mm := NewMachine(isa)
			if err := mm.Start("main"); err != nil {
				t.Fatalf("seed %d: Start: %v", seed, err)
			}
			if err := mm.Run(10_000_000); err != nil {
				t.Fatalf("seed %d: machine: %v\n%s", seed, err, src)
			}
			return im, mm
		}()
		if len(ir.Out) != len(mp.Out) {
			t.Fatalf("seed %d: out lengths differ (%d vs %d)\n%s",
				seed, len(ir.Out), len(mp.Out), src)
		}
		for i := range ir.Out {
			if ir.Out[i] != mp.Out[i] {
				t.Fatalf("seed %d: out[%d] = %d vs %d\n%s",
					seed, i, ir.Out[i], mp.Out[i], src)
			}
		}
		if ir.Steps != mp.Steps {
			t.Fatalf("seed %d: steps differ (%d vs %d)\n%s",
				seed, ir.Steps, mp.Steps, src)
		}
	}
}

// TestDifferentialTimingModelsAgreeOnOrder checks, on random programs, the
// cross-model sanity property that richer memory latency never makes the
// ISS faster.
func TestDifferentialISSMonotoneInLatency(t *testing.T) {
	for seed := 1; seed <= 20; seed++ {
		g := &progGen{rng: uint32(seed) * 40503}
		if g.rng == 0 {
			g.rng = 1
		}
		src := g.generate()
		prog := compile(t, src)
		isa, err := Generate(prog)
		if err != nil {
			t.Fatal(err)
		}
		run := func(lat uint64) uint64 {
			m := NewMachine(isa)
			if err := m.Start("main"); err != nil {
				t.Fatal(err)
			}
			cfg := DefaultTiming(0, 0)
			cfg.UncachedLatency = lat
			s := NewISS(m, cfg)
			if err := s.Run(10_000_000); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return s.Cycles
		}
		if run(2) > run(8) {
			t.Fatalf("seed %d: ISS cycles not monotone in memory latency\n%s", seed, src)
		}
	}
}

// TestDifferentialSimplifyPreservesSemantics: the CFG simplification pass
// must never change program behavior — checked on random programs by
// running the original and simplified IR on both engines.
func TestDifferentialSimplifyPreservesSemantics(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 20
	}
	for seed := 1; seed <= iters; seed++ {
		g := &progGen{rng: uint32(seed) * 747796405}
		if g.rng == 0 {
			g.rng = 1
		}
		src := g.generate()

		ref := compile(t, src)
		im := interp.New(ref)
		im.Limit = 10_000_000
		if err := im.Run("main"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		opt := compile(t, src)
		cdfg.SimplifyProgram(opt)
		om := interp.New(opt)
		om.Limit = 10_000_000
		if err := om.Run("main"); err != nil {
			t.Fatalf("seed %d simplified: %v\n%s", seed, err, src)
		}
		if len(im.Out) != len(om.Out) {
			t.Fatalf("seed %d: simplify changed output length\n%s", seed, src)
		}
		for i := range im.Out {
			if im.Out[i] != om.Out[i] {
				t.Fatalf("seed %d: simplify changed out[%d]\n%s", seed, i, src)
			}
		}
		// The simplified program also runs identically on the ISA machine.
		isa, err := Generate(opt)
		if err != nil {
			t.Fatalf("seed %d: Generate simplified: %v", seed, err)
		}
		mm := NewMachine(isa)
		if err := mm.Start("main"); err != nil {
			t.Fatal(err)
		}
		if err := mm.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: machine on simplified IR: %v\n%s", seed, err, src)
		}
		for i := range im.Out {
			if im.Out[i] != mm.Out[i] {
				t.Fatalf("seed %d: machine diverges on simplified IR at %d\n%s", seed, i, src)
			}
		}
	}
}
