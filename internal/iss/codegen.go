package iss

import (
	"fmt"

	"ese/internal/cdfg"
)

// Generate lowers a CDFG program to the virtual ISA. Every IR operation
// becomes exactly one instruction; branch targets are patched after layout.
func Generate(prog *cdfg.Program) (*Program, error) {
	g := &generator{
		src: prog,
		out: &Program{ByName: make(map[string]int)},
	}
	g.layoutGlobals()
	// Assign function IDs first so calls can reference forward functions.
	for i, fn := range prog.Funcs {
		g.out.Funcs = append(g.out.Funcs, FuncInfo{
			Name:       fn.Name,
			ID:         i,
			ReturnsInt: fn.ReturnsInt,
			NumParams:  len(fn.Params),
		})
		g.out.ByName[fn.Name] = i
	}
	for i, fn := range prog.Funcs {
		if err := g.genFunc(i, fn); err != nil {
			return nil, err
		}
	}
	return g.out, nil
}

type generator struct {
	src *cdfg.Program
	out *Program

	// Per-function state.
	fn       *cdfg.Function
	slotReg  []int   // scalar slot / array-param slot -> register
	slotOff  []int32 // local array slot -> frame word offset
	tempBase int
	blockIdx map[*cdfg.Block]int // block -> first instruction index
	fixups   []fixup
}

type fixup struct {
	inst   int
	then   *cdfg.Block
	els    *cdfg.Block
	target *cdfg.Block
}

// layoutGlobals assigns addresses in the global segment and builds the
// initial memory image.
func (g *generator) layoutGlobals() {
	var image []int32
	for _, gl := range g.src.Globals {
		addr := GlobalBase + uint32(len(image))*4
		g.out.GlobalAddrs = append(g.out.GlobalAddrs, addr)
		buf := make([]int32, gl.Size)
		copy(buf, gl.Init)
		image = append(image, buf...)
	}
	g.out.Globals = image
}

// genFunc lowers one function: registers for scalars and temps, frame
// offsets for local arrays, then instruction selection per block.
func (g *generator) genFunc(id int, fn *cdfg.Function) error {
	g.fn = fn
	g.slotReg = make([]int, len(fn.Slots))
	g.slotOff = make([]int32, len(fn.Slots))
	nregs := 0
	frame := int32(0)
	for i, s := range fn.Slots {
		switch {
		case s.IsArray && !s.IsParam:
			g.slotOff[i] = frame
			g.slotReg[i] = -1
			frame += s.Size
		default:
			// Scalars and array params (address value) live in registers.
			g.slotReg[i] = nregs
			nregs++
		}
	}
	g.tempBase = nregs
	nregs += fn.NTemps

	fi := &g.out.Funcs[id]
	fi.Entry = len(g.out.Instrs)
	fi.NRegs = nregs
	fi.FrameWords = int(frame)

	g.blockIdx = make(map[*cdfg.Block]int, len(fn.Blocks))
	g.fixups = g.fixups[:0]
	for _, b := range fn.Blocks {
		g.blockIdx[b] = len(g.out.Instrs)
		for i := range b.Instrs {
			if err := g.genInstr(&b.Instrs[i]); err != nil {
				return fmt.Errorf("%s: %w", fn.Name, err)
			}
		}
	}
	// Patch branch targets now that every block has an address.
	for _, fx := range g.fixups {
		in := &g.out.Instrs[fx.inst]
		if fx.target != nil {
			in.Target = g.blockIdx[fx.target]
		}
		if fx.then != nil {
			in.Target = g.blockIdx[fx.then]
		}
		if fx.els != nil {
			in.Else = g.blockIdx[fx.els]
		}
	}
	return nil
}

// operand converts an IR value ref.
func (g *generator) operand(r cdfg.Ref) Operand {
	switch r.Kind {
	case cdfg.RefConst:
		return Operand{Kind: OpdImm, Imm: r.Val}
	case cdfg.RefTemp:
		return Operand{Kind: OpdReg, Reg: g.tempBase + r.Idx}
	case cdfg.RefSlot:
		return Operand{Kind: OpdReg, Reg: g.slotReg[r.Idx]}
	case cdfg.RefGlobal:
		return Operand{Kind: OpdGlob, Addr: g.out.GlobalAddrs[r.Idx]}
	}
	return Operand{Kind: OpdNone}
}

// dest converts an IR destination ref.
func (g *generator) dest(r cdfg.Ref) Dest {
	switch r.Kind {
	case cdfg.RefTemp:
		return Dest{Kind: DstReg, Reg: g.tempBase + r.Idx}
	case cdfg.RefSlot:
		return Dest{Kind: DstReg, Reg: g.slotReg[r.Idx]}
	case cdfg.RefGlobal:
		return Dest{Kind: DstGlob, Addr: g.out.GlobalAddrs[r.Idx]}
	}
	return Dest{Kind: DstNone}
}

// arrayBase converts an IR array base ref into base addressing fields.
func (g *generator) arrayBase(in *Inst, r cdfg.Ref) {
	if r.Kind == cdfg.RefGlobal {
		in.Base = BaseGlob
		in.BaseAddr = g.out.GlobalAddrs[r.Idx]
		return
	}
	s := g.fn.Slots[r.Idx]
	if s.IsParam && s.IsArray {
		in.Base = BaseReg
		in.BaseReg = g.slotReg[r.Idx]
		return
	}
	in.Base = BaseFrame
	in.BaseOff = g.slotOff[r.Idx]
}

// addrOperand builds an address-of operand for an array call argument.
func (g *generator) addrOperand(r cdfg.Ref) Operand {
	if r.Kind == cdfg.RefGlobal {
		return Operand{Kind: OpdAddrImm, Addr: g.out.GlobalAddrs[r.Idx]}
	}
	s := g.fn.Slots[r.Idx]
	if s.IsParam && s.IsArray {
		return Operand{Kind: OpdAddrReg, Reg: g.slotReg[r.Idx]}
	}
	return Operand{Kind: OpdAddrFrame, Imm: g.slotOff[r.Idx]}
}

func (g *generator) genInstr(ir *cdfg.Instr) error {
	in := Inst{Op: ir.Op}
	switch ir.Op {
	case cdfg.OpLoad:
		in.Dst = g.dest(ir.Dst)
		in.A = g.operand(ir.A)
		g.arrayBase(&in, ir.Arr)
	case cdfg.OpStore:
		in.A = g.operand(ir.A)
		in.B = g.operand(ir.B)
		g.arrayBase(&in, ir.Arr)
	case cdfg.OpBr:
		in.A = g.operand(ir.A)
		g.fixups = append(g.fixups, fixup{inst: len(g.out.Instrs), then: ir.Then, els: ir.Else})
	case cdfg.OpJmp:
		g.fixups = append(g.fixups, fixup{inst: len(g.out.Instrs), target: ir.Target})
	case cdfg.OpRet:
		if ir.A.Kind != cdfg.RefNone {
			in.A = g.operand(ir.A)
		}
	case cdfg.OpCall:
		callee := g.out.ByName[ir.Callee.Name]
		in.FnID = callee
		in.Dst = g.dest(ir.Dst)
		for ai, ar := range ir.Args {
			if ai < len(ir.Callee.Params) && ir.Callee.Params[ai].IsArray {
				in.Args = append(in.Args, g.addrOperand(ar))
			} else {
				in.Args = append(in.Args, g.operand(ar))
			}
		}
	case cdfg.OpSend, cdfg.OpRecv:
		in.A = g.operand(ir.A) // word count
		in.Chan = ir.Chan
		g.arrayBase(&in, ir.Arr)
	case cdfg.OpOut:
		in.A = g.operand(ir.A)
	case cdfg.OpNop:
		// Encoded as-is; executes as a no-op.
	default:
		// Arithmetic, logic, compares, mov.
		in.Dst = g.dest(ir.Dst)
		in.A = g.operand(ir.A)
		if ir.Op != cdfg.OpMov && ir.Op != cdfg.OpNeg && ir.Op != cdfg.OpNot {
			in.B = g.operand(ir.B)
		}
	}
	g.out.Instrs = append(g.out.Instrs, in)
	return nil
}
