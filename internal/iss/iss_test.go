package iss

import (
	"strings"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/interp"
)

func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

func generate(t *testing.T, src string) (*cdfg.Program, *Program) {
	t.Helper()
	ir := compile(t, src)
	mp, err := Generate(ir)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ir, mp
}

// runBoth executes the program on the IR interpreter and the ISA machine
// and asserts identical out() streams — the cross-engine functional
// equivalence invariant of the repo.
func runBoth(t *testing.T, src string) (*interp.Machine, *Machine) {
	t.Helper()
	ir, mp := generate(t, src)
	im := interp.New(ir)
	im.Limit = 100_000_000
	if err := im.Run("main"); err != nil {
		t.Fatalf("interp: %v", err)
	}
	mm := NewMachine(mp)
	if err := mm.Start("main"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := mm.Run(100_000_000); err != nil {
		t.Fatalf("machine: %v", err)
	}
	if len(im.Out) != len(mm.Out) {
		t.Fatalf("out length differs: interp %v vs machine %v", im.Out, mm.Out)
	}
	for i := range im.Out {
		if im.Out[i] != mm.Out[i] {
			t.Fatalf("out[%d]: interp %d vs machine %d", i, im.Out[i], mm.Out[i])
		}
	}
	return im, mm
}

func TestMachineMatchesInterp(t *testing.T) {
	srcs := map[string]string{
		"arith": `
void main() {
  int x = 6;
  out(x * 7); out(x - 10); out(x / 4); out(x % 4); out(-x); out(~x);
  out(x << 2); out(x >> 1); out(x & 3); out(x | 9); out(x ^ 5);
  out(5 / 0); out(5 % 0);
}`,
		"globals": `
int g = 10;
int tab[4] = {1, 2, 3, 4};
void main() {
  g += tab[2];
  tab[0] = g * 2;
  out(g); out(tab[0]);
}`,
		"loops": `
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 20; i++) { if (i % 3 == 0) continue; s += i; if (i > 15) break; }
  out(s);
}`,
		"calls": `
int sq(int x) { return x * x; }
int sumsq(int a[], int n) {
  int i; int s = 0;
  for (i = 0; i < n; i++) s += sq(a[i]);
  return s;
}
int buf[5] = {1, 2, 3, 4, 5};
void main() {
  out(sumsq(buf, 5));
  int loc[3] = {7, 8, 9};
  out(sumsq(loc, 3));
}`,
		"recursion": `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
void main() { out(fib(15)); }`,
		"localarrays": `
void fill(int a[], int n, int k) { int i; for (i = 0; i < n; i++) a[i] = k + i; }
void main() {
  int a[8];
  int b[8];
  fill(a, 8, 100);
  fill(b, 8, 200);
  int i; int s = 0;
  for (i = 0; i < 8; i++) s += a[i] - b[i];
  out(s);
}`,
		"shortcircuit": `
int c;
int bump() { c += 1; return 1; }
void main() {
  if (0 && bump()) out(1);
  if (1 || bump()) out(2);
  out(c);
}`,
		"wraparound": `
void main() {
  int big = 2147483647;
  out(big + 1);
  int m = -2147483647 - 1;
  out(m / -1);
  out(m % -1);
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) { runBoth(t, src) })
	}
}

func TestOneInstrPerIROp(t *testing.T) {
	ir, mp := generate(t, `
int a[4];
int f(int x) { return x + 1; }
void main() { a[0] = f(3); out(a[0]); }`)
	if len(mp.Instrs) != ir.NumInstrs() {
		t.Fatalf("ISA instrs = %d, IR instrs = %d (must be 1:1)",
			len(mp.Instrs), ir.NumInstrs())
	}
}

func TestDynamicStepCountsMatch(t *testing.T) {
	// Dynamic ISA instruction count must equal the interpreter's dynamic
	// IR step count: that is what makes block-level and instruction-level
	// timing comparable.
	src := `
int t[16];
void main() {
  int i;
  for (i = 0; i < 16; i++) t[i] = i * i;
  int s = 0;
  for (i = 15; i >= 0; i -= 2) s += t[i];
  out(s);
}`
	im, mm := runBoth(t, src)
	if im.Steps != mm.Steps {
		t.Fatalf("dynamic steps differ: interp %d vs machine %d", im.Steps, mm.Steps)
	}
}

func TestTraceMemOperandsMatchStaticCount(t *testing.T) {
	// The number of data addresses the machine touches per instruction
	// must equal cdfg.MemOperands of the corresponding IR instruction.
	ir, mp := generate(t, `
int g;
int a[4];
void main() {
  int x = 1;
  g = x;
  x = g;
  a[0] = x;
  x = a[1];
  g = a[g];
  out(x);
}`)
	m := NewMachine(mp)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	// Collect IR instructions in layout order for main.
	var irInstrs []*cdfg.Instr
	for _, fn := range ir.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				irInstrs = append(irInstrs, &b.Instrs[i])
			}
		}
	}
	var tr Trace
	for !m.Done() {
		if err := m.Step(&tr); err != nil {
			t.Fatal(err)
		}
		if tr.Done {
			break
		}
		want := cdfg.MemOperands(irInstrs[tr.PC])
		if len(tr.DAddrs) != want {
			t.Fatalf("pc %d (%v): %d data accesses, MemOperands says %d",
				tr.PC, tr.Op, len(tr.DAddrs), want)
		}
	}
}

func TestGlobalAddressing(t *testing.T) {
	_, mp := generate(t, `
int a;
int b[3] = {7, 8, 9};
int c = 5;
void main() { out(b[2] + c); }`)
	if mp.GlobalAddrs[0] != GlobalBase {
		t.Fatalf("first global at 0x%x", mp.GlobalAddrs[0])
	}
	if mp.GlobalAddrs[1] != GlobalBase+4 {
		t.Fatalf("array after scalar at 0x%x", mp.GlobalAddrs[1])
	}
	if mp.GlobalAddrs[2] != GlobalBase+16 {
		t.Fatalf("scalar after 3-word array at 0x%x", mp.GlobalAddrs[2])
	}
	if mp.Globals[1] != 7 || mp.Globals[3] != 9 || mp.Globals[4] != 5 {
		t.Fatalf("global image wrong: %v", mp.Globals)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	_, mp := generate(t, `
int deep(int n) {
  int pad[4096];
  pad[0] = n;
  if (n <= 0) return pad[0];
  return deep(n - 1);
}
void main() { out(deep(1000)); }`)
	m := NewMachine(mp)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	err := m.Run(0)
	if err == nil {
		t.Fatal("expected stack overflow")
	}
}

func TestMachineReset(t *testing.T) {
	_, mp := generate(t, `
int g;
void main() { g += 1; out(g); }`)
	m := NewMachine(mp)
	for round := 0; round < 3; round++ {
		m.Reset()
		if err := m.Start("main"); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		if len(m.Out) != 1 || m.Out[0] != 1 {
			t.Fatalf("round %d: out = %v, want [1]", round, m.Out)
		}
	}
}

func TestISSTimingCachedVsUncached(t *testing.T) {
	src := `
int a[256];
void main() {
  int i;
  int s = 0;
  int r;
  for (r = 0; r < 4; r++) {
    for (i = 0; i < 256; i++) { a[i] = i; s += a[i]; }
  }
  out(s);
}`
	_, mp := generate(t, src)

	run := func(iSize, dSize int) uint64 {
		m := NewMachine(mp)
		if err := m.Start("main"); err != nil {
			t.Fatal(err)
		}
		s := NewISS(m, DefaultTiming(iSize, dSize))
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return s.Cycles
	}
	uncached := run(0, 0)
	cached := run(8*1024, 8*1024)
	if cached >= uncached {
		t.Fatalf("cached (%d) not faster than uncached (%d)", cached, uncached)
	}
	// Uncached pays the uncached latency on every fetch: at least
	// steps * (1 + UncachedLatency).
	m := NewMachine(mp)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	minUncached := m.Steps * (1 + DefaultTiming(0, 0).UncachedLatency)
	if uncached < minUncached {
		t.Fatalf("uncached cycles %d below floor %d", uncached, minUncached)
	}
}

func TestISSDeterministic(t *testing.T) {
	_, mp := generate(t, `
int a[64];
void main() {
  int i;
  for (i = 0; i < 64; i++) a[i] = (i * 37) % 19;
  int s = 0;
  for (i = 0; i < 64; i++) s += a[i];
  out(s);
}`)
	var first uint64
	for round := 0; round < 3; round++ {
		m := NewMachine(mp)
		if err := m.Start("main"); err != nil {
			t.Fatal(err)
		}
		s := NewISS(m, DefaultTiming(2048, 2048))
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			first = s.Cycles
		} else if s.Cycles != first {
			t.Fatalf("nondeterministic ISS cycles: %d vs %d", s.Cycles, first)
		}
	}
}

func TestManyCallArguments(t *testing.T) {
	// More arguments than the machine's inline arg buffer (16).
	runBoth(t, `
int f(int a0,int a1,int a2,int a3,int a4,int a5,int a6,int a7,int a8,int a9,
      int b0,int b1,int b2,int b3,int b4,int b5,int b6,int b7,int b8,int b9) {
  return a0+a1+a2+a3+a4+a5+a6+a7+a8+a9+b0*2+b1*2+b2*2+b3*2+b4*2+b5*2+b6*2+b7*2+b8*2+b9*2;
}
void main() {
  out(f(1,2,3,4,5,6,7,8,9,10,1,2,3,4,5,6,7,8,9,10));
}`)
}

func TestArrayArgumentAliasing(t *testing.T) {
	// The same array passed as both parameters: both engines must observe
	// the aliasing identically.
	runBoth(t, `
int buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void mix(int a[], int b[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = a[i] + b[n - 1 - i];
  }
}
void main() {
  mix(buf, buf, 8);
  int i;
  for (i = 0; i < 8; i++) out(buf[i]);
}`)
}

func TestSendRecvTraceFields(t *testing.T) {
	_, mp := generate(t, `
int buf[4] = {9, 8, 7, 6};
void main() {
  send(3, buf, 4);
  recv(5, buf, 2);
  out(buf[0]);
}`)
	m := NewMachine(mp)
	m.Send = func(ch int, data []int32) error { return nil }
	m.Recv = func(ch int, buf []int32) error {
		for i := range buf {
			buf[i] = 42
		}
		return nil
	}
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	var sendTr, recvTr Trace
	var tr Trace
	for !m.Done() {
		if err := m.Step(&tr); err != nil {
			t.Fatal(err)
		}
		switch tr.Op {
		case cdfg.OpSend:
			sendTr = tr
			sendTr.DAddrs = append([]uint32(nil), tr.DAddrs...)
		case cdfg.OpRecv:
			recvTr = tr
		}
	}
	if !sendTr.IsSend || sendTr.Bus != 4 || sendTr.Chan != 3 {
		t.Fatalf("send trace: %+v", sendTr)
	}
	if recvTr.IsSend || recvTr.Bus != 2 || recvTr.Chan != 5 {
		t.Fatalf("recv trace: %+v", recvTr)
	}
	if m.Out[0] != 42 {
		t.Fatalf("recv did not write memory: %v", m.Out)
	}
}

func TestNopExecutes(t *testing.T) {
	mp := &Program{
		Instrs: []Inst{
			{Op: cdfg.OpNop},
			{Op: cdfg.OpRet},
		},
		Funcs:  []FuncInfo{{Name: "main", Entry: 0}},
		ByName: map[string]int{"main": 0},
	}
	m := NewMachine(mp)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Steps != 2 {
		t.Fatalf("steps = %d, want 2", m.Steps)
	}
}

func TestBadAddressFaults(t *testing.T) {
	// A send with a base address outside any segment must fail cleanly.
	mp := &Program{
		Instrs: []Inst{
			{Op: cdfg.OpSend, Base: BaseGlob, BaseAddr: 0xDEAD0000,
				A: Operand{Kind: OpdImm, Imm: 4}, Chan: 0},
			{Op: cdfg.OpRet},
		},
		Funcs:  []FuncInfo{{Name: "main", Entry: 0}},
		ByName: map[string]int{"main": 0},
	}
	m := NewMachine(mp)
	m.Send = func(ch int, data []int32) error { return nil }
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil {
		t.Fatal("expected bad-address error")
	}
}

func TestDisassembleCoversProgram(t *testing.T) {
	_, mp := generate(t, `
int g = 3;
int a[4];
int f(int x, int y) { return x * y + g; }
void main() {
  a[0] = f(2, 3);
  send(1, a, 4);
  recv(2, a, 4);
  out(a[0]);
}`)
	asm := Disassemble(mp)
	// One line per instruction plus function headers.
	for _, want := range []string{"main:", "f:", "call", "mul", "send  ch1",
		"recv  ch2", "out", "ret", "ld", "st"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
	lines := strings.Count(asm, "\n")
	if lines < len(mp.Instrs) {
		t.Fatalf("disassembly too short: %d lines for %d instrs", lines, len(mp.Instrs))
	}
}
