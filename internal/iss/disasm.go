package iss

import (
	"fmt"
	"strings"

	"ese/internal/cdfg"
)

// operandString renders an operand in assembly-ish syntax.
func operandString(o Operand) string {
	switch o.Kind {
	case OpdImm:
		return fmt.Sprintf("#%d", o.Imm)
	case OpdReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OpdGlob:
		return fmt.Sprintf("[0x%x]", o.Addr)
	case OpdAddrImm:
		return fmt.Sprintf("&0x%x", o.Addr)
	case OpdAddrFrame:
		return fmt.Sprintf("&fp+%d", o.Imm*4)
	case OpdAddrReg:
		return fmt.Sprintf("&r%d", o.Reg)
	}
	return "_"
}

func destString(d Dest) string {
	switch d.Kind {
	case DstReg:
		return fmt.Sprintf("r%d", d.Reg)
	case DstGlob:
		return fmt.Sprintf("[0x%x]", d.Addr)
	}
	return "_"
}

func baseString(in *Inst) string {
	switch in.Base {
	case BaseGlob:
		return fmt.Sprintf("0x%x", in.BaseAddr)
	case BaseFrame:
		return fmt.Sprintf("fp+%d", in.BaseOff*4)
	case BaseReg:
		return fmt.Sprintf("r%d", in.BaseReg)
	}
	return "?"
}

// DisasmInst renders one instruction.
func DisasmInst(p *Program, idx int) string {
	in := &p.Instrs[idx]
	switch in.Op {
	case cdfg.OpLoad:
		return fmt.Sprintf("ld    %s, %s[%s]", destString(in.Dst), baseString(in), operandString(in.A))
	case cdfg.OpStore:
		return fmt.Sprintf("st    %s[%s], %s", baseString(in), operandString(in.A), operandString(in.B))
	case cdfg.OpBr:
		return fmt.Sprintf("br    %s, @%d, @%d", operandString(in.A), in.Target, in.Else)
	case cdfg.OpJmp:
		return fmt.Sprintf("jmp   @%d", in.Target)
	case cdfg.OpRet:
		if in.A.Kind == OpdNone {
			return "ret"
		}
		return fmt.Sprintf("ret   %s", operandString(in.A))
	case cdfg.OpCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, operandString(a))
		}
		callee := "?"
		if in.FnID >= 0 && in.FnID < len(p.Funcs) {
			callee = p.Funcs[in.FnID].Name
		}
		dst := ""
		if in.Dst.Kind != DstNone {
			dst = destString(in.Dst) + ", "
		}
		return fmt.Sprintf("call  %s%s(%s)", dst, callee, strings.Join(args, ", "))
	case cdfg.OpSend:
		return fmt.Sprintf("send  ch%d, %s, %s", in.Chan, baseString(in), operandString(in.A))
	case cdfg.OpRecv:
		return fmt.Sprintf("recv  ch%d, %s, %s", in.Chan, baseString(in), operandString(in.A))
	case cdfg.OpOut:
		return fmt.Sprintf("out   %s", operandString(in.A))
	case cdfg.OpMov:
		return fmt.Sprintf("mov   %s, %s", destString(in.Dst), operandString(in.A))
	case cdfg.OpNeg, cdfg.OpNot:
		return fmt.Sprintf("%-5s %s, %s", in.Op, destString(in.Dst), operandString(in.A))
	case cdfg.OpNop:
		return "nop"
	default:
		return fmt.Sprintf("%-5s %s, %s, %s", in.Op, destString(in.Dst),
			operandString(in.A), operandString(in.B))
	}
}

// Disassemble renders the whole program with function headers and
// instruction addresses.
func Disassemble(p *Program) string {
	byEntry := make(map[int]*FuncInfo, len(p.Funcs))
	for i := range p.Funcs {
		byEntry[p.Funcs[i].Entry] = &p.Funcs[i]
	}
	var sb strings.Builder
	for i := range p.Instrs {
		if fi, ok := byEntry[i]; ok {
			fmt.Fprintf(&sb, "\n%s:  ; regs=%d frame=%d words\n", fi.Name, fi.NRegs, fi.FrameWords)
		}
		fmt.Fprintf(&sb, "  %4d  %s\n", i, DisasmInst(p, i))
	}
	return sb.String()
}
