package iss

import (
	"ese/internal/cache"
	"ese/internal/cdfg"
)

// TimingConfig is the ISS's interpretation of the target's timing. The
// paper observes that the vendor MicroBlaze ISS "did not model memory
// access accurately enough", making it *less* accurate than the timed TLM
// (Table 2). This config reproduces that: the ISS charges its own latency
// constants, which by default disagree with the board (optimistic uncached
// latency, pessimistic miss penalty, undersized direct-mapped caches), so
// the ISS underestimates the uncached design and overestimates the heavily
// cached ones — the error shape of the paper.
type TimingConfig struct {
	MulCycles  int
	DivCycles  int
	CallCycles int

	UncachedLatency uint64 // per access when the cache is absent
	MissPenalty     uint64 // per modeled cache miss
	ICache          cache.Config
	DCache          cache.Config
}

// DefaultTiming returns the coarse ISS timing for the given real cache
// sizes: the modeled caches are direct-mapped with short lines regardless
// of the board's true organization.
func DefaultTiming(iSize, dSize int) TimingConfig {
	return TimingConfig{
		MulCycles:       3,
		DivCycles:       32,
		CallCycles:      2,
		UncachedLatency: 4,  // optimistic vs the board's 8
		MissPenalty:     12, // pessimistic vs the board's 8
		ICache:          cache.Config{Size: iSize, LineBytes: 8, Assoc: 1},
		DCache:          cache.Config{Size: dSize, LineBytes: 8, Assoc: 1},
	}
}

// ISS is the interpreted instruction-set simulator baseline: it steps the
// functional machine one instruction at a time and accrues cycles per
// instruction — the slow, interpreted dynamic estimation approach the
// paper compares against.
type ISS struct {
	M      *Machine
	Cfg    TimingConfig
	ICache *cache.Cache
	DCache *cache.Cache
	Cycles uint64
	trace  Trace
}

// NewISS wraps a machine with the timing model.
func NewISS(m *Machine, cfg TimingConfig) *ISS {
	return &ISS{
		M:      m,
		Cfg:    cfg,
		ICache: cache.New(cfg.ICache),
		DCache: cache.New(cfg.DCache),
	}
}

// StepTimed executes one instruction and accrues its estimated cycles.
func (s *ISS) StepTimed() error {
	t := &s.trace
	if err := s.M.Step(t); err != nil {
		return err
	}
	if !t.Executed {
		return nil
	}
	// Base cost per operation class.
	c := uint64(1)
	switch t.Class {
	case cdfg.ClassMul:
		c = uint64(s.Cfg.MulCycles)
	case cdfg.ClassDiv:
		c = uint64(s.Cfg.DivCycles)
	case cdfg.ClassCall:
		c = uint64(s.Cfg.CallCycles)
	}
	// Instruction fetch through the modeled i-cache.
	if s.ICache.Enabled() {
		if !s.ICache.Access(PCAddr(t.PC)) {
			c += s.Cfg.MissPenalty
		}
	} else {
		c += s.Cfg.UncachedLatency
	}
	// Data operands through the modeled d-cache.
	for _, a := range t.DAddrs {
		if s.DCache.Enabled() {
			if !s.DCache.Access(a) {
				c += s.Cfg.MissPenalty
			}
		} else {
			c += s.Cfg.UncachedLatency
		}
	}
	s.Cycles += c
	return nil
}

// Run interprets until the program completes (limit 0 = unbounded).
func (s *ISS) Run(limit uint64) error {
	for !s.M.Done() {
		if err := s.StepTimed(); err != nil {
			return err
		}
		if limit != 0 && s.M.Steps > limit {
			return errLimit
		}
	}
	return nil
}

var errLimit = errLimitType{}

type errLimitType struct{}

func (errLimitType) Error() string { return "iss: step limit exceeded" }
