// Package iss implements the instruction-set level of the reproduction: a
// MicroBlaze-like virtual ISA generated 1:1 from CDFG operations, a
// functional machine that executes it while emitting per-instruction timing
// traces, and the interpreted ISS baseline with its (deliberately coarse)
// memory timing model — the "ISS" column of the paper's Tables 1 and 2.
//
// ISA model. The target is a register-window soft core: every function has
// a private register file (one register per scalar local/param and per
// temporary); local arrays live in a stack frame in data memory; global
// scalars and arrays live in a global data segment. Instructions map 1:1 to
// IR operations, with memory-direct operands for global scalars (as on
// absolute-addressing embedded cores), so the dynamic instruction count of
// the ISA equals the dynamic IR operation count the estimation engine sees,
// and the data-memory operand count equals cdfg.MemOperands by
// construction. CALL copies arguments into the callee window and allocates
// (zero-filled) frame storage as an ABI service of the core.
//
// Address map: code at 0x0 (4 bytes per instruction), globals at
// GlobalBase, the stack at StackBase..StackTop growing down.
package iss

import (
	"ese/internal/cdfg"
)

// Memory layout constants.
const (
	GlobalBase uint32 = 0x1000_0000
	StackWords        = 1 << 18 // 256K words = 1 MiB stack
	StackBase  uint32 = 0x2000_0000
	StackTop   uint32 = StackBase + 4*StackWords
)

// OperandKind classifies instruction operands.
type OperandKind uint8

const (
	OpdNone OperandKind = iota
	OpdImm              // immediate constant
	OpdReg              // register in the current window
	OpdGlob             // global scalar, memory-direct (one d-access)

	// Address-generating operands, used for array arguments of CALL.
	OpdAddrImm   // absolute address of a global array
	OpdAddrFrame // FP-relative address of a local array
	OpdAddrReg   // address held in a register (array parameter)
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Imm  int32  // OpdImm value, OpdAddrFrame word offset
	Reg  int    // OpdReg / OpdAddrReg register index
	Addr uint32 // OpdGlob / OpdAddrImm absolute byte address
}

// DestKind classifies instruction destinations.
type DestKind uint8

const (
	DstNone DestKind = iota
	DstReg
	DstGlob // global scalar, memory-direct (one d-access)
)

// Dest is an instruction destination.
type Dest struct {
	Kind DestKind
	Reg  int
	Addr uint32
}

// BaseKind classifies the array base of Load/Store/Send/Recv.
type BaseKind uint8

const (
	BaseNone  BaseKind = iota
	BaseGlob           // absolute base address
	BaseFrame          // FP-relative word offset
	BaseReg            // base address in a register
)

// Inst is one machine instruction. Op reuses the IR opcode space: the ISA
// is a linearized virtual encoding of the CDFG, which is what keeps the
// instruction-level baselines and the block-level estimator comparable.
type Inst struct {
	Op   cdfg.Opcode
	Dst  Dest
	A, B Operand

	// Array base for Load/Store/Send/Recv.
	Base     BaseKind
	BaseAddr uint32 // BaseGlob
	BaseOff  int32  // BaseFrame, in words
	BaseReg  int    // BaseReg

	// Control flow: instruction indices.
	Target int // Br taken / Jmp target
	Else   int // Br not-taken target

	// Calls.
	FnID int
	Args []Operand

	// Communication.
	Chan int
}

// FuncInfo is the per-function metadata the machine needs.
type FuncInfo struct {
	Name       string
	ID         int
	Entry      int // index of the first instruction
	NRegs      int // window size: scalar slots + temps
	FrameWords int // stack frame size (local arrays), in words
	ReturnsInt bool
	NumParams  int
}

// Program is a loadable machine program.
type Program struct {
	Instrs  []Inst
	Funcs   []FuncInfo
	ByName  map[string]int // function name -> ID
	Globals []int32        // initial global segment image (words)
	// GlobalAddrs[i] is the byte address of IR global i.
	GlobalAddrs []uint32
}

// PCAddr returns the byte address of an instruction index, the i-cache key.
func PCAddr(idx int) uint32 { return uint32(idx) * 4 }
