package iss

import (
	"errors"
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/cfront"
)

// Trace reports what one executed instruction did, in the form the timing
// models (the ISS timing model and the cycle-accurate board pipeline)
// consume. The functional machine is timing-free; timing is layered on top
// (functional-first, timing-directed simulation).
type Trace struct {
	PC     int // executed instruction index
	Op     cdfg.Opcode
	Class  cdfg.Class
	DAddrs []uint32 // data-memory operand addresses touched (cacheable)
	Branch bool     // conditional branch executed
	Taken  bool     // branch direction
	Bus    int      // send/recv payload words (0 otherwise)
	Chan   int
	IsSend bool
	// Executed reports that an instruction actually retired this step (the
	// final ret both retires and sets Done; a step on a finished machine
	// retires nothing).
	Executed bool
	Done     bool // program finished
}

// ErrStackOverflow is returned when call depth exhausts the stack segment.
var ErrStackOverflow = errors.New("iss: stack overflow")

// Machine executes a Program functionally. Communication and output are
// delegated to callbacks so the same machine serves the standalone ISS, the
// cycle-accurate board model, and multi-PE platforms.
type Machine struct {
	Prog    *Program
	globals []int32
	stack   []int32
	sp      uint32
	frames  []frame
	regPool [][]int32
	pc      int
	done    bool

	Out   []int32
	Send  func(ch int, data []int32) error
	Recv  func(ch int, buf []int32) error
	Steps uint64
}

type frame struct {
	fn     *FuncInfo
	regs   []int32
	fp     uint32
	retPC  int
	retDst Dest
}

// NewMachine loads the program image.
func NewMachine(p *Program) *Machine {
	m := &Machine{Prog: p}
	m.Reset()
	return m
}

// Reset restores the initial memory image and clears all execution state.
func (m *Machine) Reset() {
	if m.globals == nil {
		m.globals = make([]int32, len(m.Prog.Globals))
	}
	copy(m.globals, m.Prog.Globals)
	for i := len(m.Prog.Globals); i < len(m.globals); i++ {
		m.globals[i] = 0
	}
	if m.stack == nil {
		m.stack = make([]int32, StackWords)
	} else {
		for i := range m.stack {
			m.stack[i] = 0
		}
	}
	m.sp = StackTop
	m.frames = m.frames[:0]
	m.pc = 0
	m.done = true
	m.Out = m.Out[:0]
	m.Steps = 0
}

// Start prepares execution of the named zero-argument function.
func (m *Machine) Start(entry string) error {
	id, ok := m.Prog.ByName[entry]
	if !ok {
		return fmt.Errorf("iss: no function %q", entry)
	}
	fi := &m.Prog.Funcs[id]
	if fi.NumParams != 0 {
		return fmt.Errorf("iss: entry %q must take no parameters", entry)
	}
	if err := m.pushFrame(fi, -1, Dest{}); err != nil {
		return err
	}
	m.pc = fi.Entry
	m.done = false
	return nil
}

// Done reports whether the program has finished.
func (m *Machine) Done() bool { return m.done }

// pushFrame allocates a register window and stack frame for fi.
func (m *Machine) pushFrame(fi *FuncInfo, retPC int, retDst Dest) error {
	need := uint32(fi.FrameWords) * 4
	if m.sp-need < StackBase {
		return ErrStackOverflow
	}
	m.sp -= need
	// The ABI zero-fills fresh frames (local arrays) and windows, which
	// every engine in this repo implements identically and at no cycle
	// cost; see the package comment.
	base := (m.sp - StackBase) / 4
	for i := uint32(0); i < uint32(fi.FrameWords); i++ {
		m.stack[base+i] = 0
	}
	depth := len(m.frames)
	var regs []int32
	if depth < len(m.regPool) && cap(m.regPool[depth]) >= fi.NRegs {
		regs = m.regPool[depth][:fi.NRegs]
		for i := range regs {
			regs[i] = 0
		}
	} else {
		regs = make([]int32, fi.NRegs)
		for depth >= len(m.regPool) {
			m.regPool = append(m.regPool, nil)
		}
	}
	m.regPool[depth] = regs
	m.frames = append(m.frames, frame{fn: fi, regs: regs, fp: m.sp, retPC: retPC, retDst: retDst})
	return nil
}

func (m *Machine) cur() *frame { return &m.frames[len(m.frames)-1] }

// memIndex resolves a byte address to a segment slice and index.
func (m *Machine) memIndex(addr uint32) (*[]int32, uint32, error) {
	switch {
	case addr >= StackBase && addr < StackTop:
		return &m.stack, (addr - StackBase) / 4, nil
	case addr >= GlobalBase && addr < GlobalBase+uint32(len(m.globals))*4:
		return &m.globals, (addr - GlobalBase) / 4, nil
	}
	return nil, 0, fmt.Errorf("iss: bad address 0x%08x at pc %d", addr, m.pc)
}

func (m *Machine) memRead(addr uint32) (int32, error) {
	seg, idx, err := m.memIndex(addr)
	if err != nil {
		return 0, err
	}
	return (*seg)[idx], nil
}

func (m *Machine) memWrite(addr uint32, v int32) error {
	seg, idx, err := m.memIndex(addr)
	if err != nil {
		return err
	}
	(*seg)[idx] = v
	return nil
}

// memSlice returns the n-word window starting at addr, for bus transfers.
func (m *Machine) memSlice(addr uint32, n int32) ([]int32, error) {
	seg, idx, err := m.memIndex(addr)
	if err != nil {
		return nil, err
	}
	if n < 0 || idx+uint32(n) > uint32(len(*seg)) {
		return nil, fmt.Errorf("iss: bus window [0x%08x,+%d words) out of range", addr, n)
	}
	return (*seg)[idx : idx+uint32(n)], nil
}

// eval reads an operand value, recording global data accesses in the trace.
func (m *Machine) eval(o Operand, f *frame, t *Trace) (int32, error) {
	switch o.Kind {
	case OpdImm:
		return o.Imm, nil
	case OpdReg:
		return f.regs[o.Reg], nil
	case OpdGlob:
		t.DAddrs = append(t.DAddrs, o.Addr)
		return m.memRead(o.Addr)
	case OpdAddrImm:
		return int32(o.Addr), nil
	case OpdAddrFrame:
		return int32(f.fp + uint32(o.Imm)*4), nil
	case OpdAddrReg:
		return f.regs[o.Reg], nil
	}
	return 0, fmt.Errorf("iss: bad operand at pc %d", m.pc)
}

// writeDst writes an instruction result, recording global writes.
func (m *Machine) writeDst(d Dest, v int32, f *frame, t *Trace) error {
	switch d.Kind {
	case DstNone:
		return nil
	case DstReg:
		f.regs[d.Reg] = v
		return nil
	case DstGlob:
		t.DAddrs = append(t.DAddrs, d.Addr)
		return m.memWrite(d.Addr, v)
	}
	return fmt.Errorf("iss: bad destination at pc %d", m.pc)
}

// baseAddr resolves the array base of a memory or bus instruction.
func (m *Machine) baseAddr(in *Inst, f *frame) (uint32, error) {
	switch in.Base {
	case BaseGlob:
		return in.BaseAddr, nil
	case BaseFrame:
		return f.fp + uint32(in.BaseOff)*4, nil
	case BaseReg:
		return uint32(f.regs[in.BaseReg]), nil
	}
	return 0, fmt.Errorf("iss: missing array base at pc %d", m.pc)
}

// Step executes one instruction, filling t with its timing-relevant
// effects. It reuses t.DAddrs to stay allocation-free on the hot path.
func (m *Machine) Step(t *Trace) error {
	t.DAddrs = t.DAddrs[:0]
	t.Branch = false
	t.Taken = false
	t.Bus = 0
	t.Done = false
	t.Executed = false
	if m.done {
		t.Done = true
		return nil
	}
	t.Executed = true
	in := &m.Prog.Instrs[m.pc]
	f := m.cur()
	t.PC = m.pc
	t.Op = in.Op
	t.Class = cdfg.OpClass(in.Op)
	m.Steps++
	next := m.pc + 1

	switch in.Op {
	case cdfg.OpBr:
		v, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		t.Branch = true
		if v != 0 {
			t.Taken = true
			next = in.Target
		} else {
			next = in.Else
		}
	case cdfg.OpJmp:
		next = in.Target
	case cdfg.OpRet:
		v := int32(0)
		if in.A.Kind != OpdNone {
			var err error
			v, err = m.eval(in.A, f, t)
			if err != nil {
				return err
			}
		}
		retPC, retDst := f.retPC, f.retDst
		m.sp += uint32(f.fn.FrameWords) * 4
		m.frames = m.frames[:len(m.frames)-1]
		if len(m.frames) == 0 {
			m.done = true
			t.Done = true
			return nil
		}
		caller := m.cur()
		if err := m.writeDst(retDst, v, caller, t); err != nil {
			return err
		}
		next = retPC
	case cdfg.OpCall:
		fi := &m.Prog.Funcs[in.FnID]
		// Evaluate arguments in the caller frame before switching windows.
		var argv [16]int32
		args := argv[:0]
		for _, a := range in.Args {
			v, err := m.eval(a, f, t)
			if err != nil {
				return err
			}
			args = append(args, v)
		}
		if err := m.pushFrame(fi, next, in.Dst); err != nil {
			return err
		}
		callee := m.cur()
		copy(callee.regs, args)
		next = fi.Entry
	case cdfg.OpLoad:
		base, err := m.baseAddr(in, f)
		if err != nil {
			return err
		}
		idx, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		addr := base + uint32(idx)*4
		t.DAddrs = append(t.DAddrs, addr)
		v, err := m.memRead(addr)
		if err != nil {
			return err
		}
		if err := m.writeDst(in.Dst, v, f, t); err != nil {
			return err
		}
	case cdfg.OpStore:
		base, err := m.baseAddr(in, f)
		if err != nil {
			return err
		}
		idx, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		v, err := m.eval(in.B, f, t)
		if err != nil {
			return err
		}
		addr := base + uint32(idx)*4
		t.DAddrs = append(t.DAddrs, addr)
		if err := m.memWrite(addr, v); err != nil {
			return err
		}
	case cdfg.OpSend, cdfg.OpRecv:
		base, err := m.baseAddr(in, f)
		if err != nil {
			return err
		}
		n, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		buf, err := m.memSlice(base, n)
		if err != nil {
			return err
		}
		t.Bus = int(n)
		t.Chan = in.Chan
		if in.Op == cdfg.OpSend {
			t.IsSend = true
			if m.Send == nil {
				return fmt.Errorf("iss: send on unbound channel %d", in.Chan)
			}
			if err := m.Send(in.Chan, buf); err != nil {
				return err
			}
		} else {
			t.IsSend = false
			if m.Recv == nil {
				return fmt.Errorf("iss: recv on unbound channel %d", in.Chan)
			}
			if err := m.Recv(in.Chan, buf); err != nil {
				return err
			}
		}
	case cdfg.OpOut:
		v, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		m.Out = append(m.Out, v)
	case cdfg.OpNop:
		// nothing
	default:
		a, err := m.eval(in.A, f, t)
		if err != nil {
			return err
		}
		var b int32
		if in.B.Kind != OpdNone {
			b, err = m.eval(in.B, f, t)
			if err != nil {
				return err
			}
		}
		var v int32
		switch in.Op {
		case cdfg.OpMov:
			v = a
		case cdfg.OpAdd:
			v = a + b
		case cdfg.OpSub:
			v = a - b
		case cdfg.OpMul:
			v = a * b
		case cdfg.OpDiv:
			v = cfront.FoldBinary(cfront.TokSlash, a, b)
		case cdfg.OpRem:
			v = cfront.FoldBinary(cfront.TokPercent, a, b)
		case cdfg.OpAnd:
			v = a & b
		case cdfg.OpOr:
			v = a | b
		case cdfg.OpXor:
			v = a ^ b
		case cdfg.OpShl:
			v = a << (uint32(b) & 31)
		case cdfg.OpShr:
			v = a >> (uint32(b) & 31)
		case cdfg.OpNeg:
			v = -a
		case cdfg.OpNot:
			v = ^a
		case cdfg.OpCmpEq:
			v = b2i(a == b)
		case cdfg.OpCmpNe:
			v = b2i(a != b)
		case cdfg.OpCmpLt:
			v = b2i(a < b)
		case cdfg.OpCmpLe:
			v = b2i(a <= b)
		case cdfg.OpCmpGt:
			v = b2i(a > b)
		case cdfg.OpCmpGe:
			v = b2i(a >= b)
		default:
			return fmt.Errorf("iss: unknown opcode %v at pc %d", in.Op, m.pc)
		}
		if err := m.writeDst(in.Dst, v, f, t); err != nil {
			return err
		}
	}
	m.pc = next
	return nil
}

// Run executes until completion or the step limit (0 = unlimited).
func (m *Machine) Run(limit uint64) error {
	var t Trace
	for !m.done {
		if err := m.Step(&t); err != nil {
			return err
		}
		if limit != 0 && m.Steps > limit {
			return fmt.Errorf("iss: step limit %d exceeded", limit)
		}
	}
	return nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
