package interp

import (
	"context"
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/diag"
)

// EngineKind selects the execution engine behind a TLM process.
type EngineKind int

const (
	// EngineAuto picks the fastest tier that covers the program: the
	// ahead-of-time generated engine when one is registered for the
	// program's code fingerprint, else the flat compiled engine, else the
	// tree-walker — the default.
	EngineAuto EngineKind = iota
	// EngineCompiled requires the flat compiled engine.
	EngineCompiled
	// EngineTree forces the tree-walking reference interpreter.
	EngineTree
	// EngineGen requires an ahead-of-time generated engine (emitted by
	// esegen and registered by fingerprint).
	EngineGen
)

func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EngineCompiled:
		return "compiled"
	case EngineTree:
		return "tree"
	case EngineGen:
		return "gen"
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// ParseEngineKind parses an -exec flag value.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "gen":
		return EngineGen, nil
	case "compiled":
		return EngineCompiled, nil
	case "tree":
		return EngineTree, nil
	}
	return EngineAuto, fmt.Errorf("unknown execution engine %q (want auto, gen, compiled or tree)", s)
}

// Engine is the execution surface the TLM layer drives: run an entry
// function with channel intrinsics bound, fused per-block timing, and
// harvestable out/step/profile state. Machine (via the tree adapter) and
// Compiled both satisfy it with identical observable behavior.
type Engine interface {
	// Run executes the named entry function with no arguments.
	Run(entry string) error
	// Reset re-initializes globals, the out stream and all counters.
	Reset()
	// Kind reports which engine this is.
	Kind() EngineKind
	// OutStream returns the out() intrinsic's stream.
	OutStream() []int32
	// StepCount returns the dynamic IR instruction count.
	StepCount() uint64
	// BlockCountsMap returns per-block execution counts (nil unless
	// EnableProfile was called); only executed blocks appear.
	BlockCountsMap() map[*cdfg.Block]uint64
	// EnableProfile turns on per-block execution counting.
	EnableProfile()
	// SetLimit sets the dynamic step limit (0 = none).
	SetLimit(n uint64)
	// SetContext bounds execution by ctx.
	SetContext(ctx context.Context)
	// SetChannels installs the send/recv intrinsics.
	SetChannels(send func(ch int, data []int32) error, recv func(ch int, buf []int32) error)
	// SetDelays installs the annotated per-block delays (timed runs). By
	// default each executed block's delay accumulates into a pending pool
	// drained with TakePending at transaction boundaries.
	SetDelays(dm map[*cdfg.Block]float64)
	// SetOnDelay switches to per-block delivery: fn observes every dynamic
	// block's delay (including zero) instead of pooling. Call after
	// SetDelays.
	SetOnDelay(fn func(delay float64) error)
	// TakePending returns and clears the pooled delay cycles.
	TakePending() float64
}

// NewEngine builds an execution engine for prog. EngineAuto prefers the
// registered generated engine, then the compiled engine, and silently
// falls back to the tree-walker when the program uses IR shapes the
// compiler rejects; EngineCompiled and EngineGen surface the failure
// instead.
func NewEngine(prog *cdfg.Program, kind EngineKind) (Engine, error) {
	return NewEngineDiag(prog, kind, nil)
}

// NewEngineDiag is NewEngine with a diagnostic sink: the auto tier's
// fallback from the compiled engine to the tree-walker emits an Info
// notice naming the rejected IR shape instead of failing (or staying
// silent), so a slow run is explainable. A nil list discards the notice.
func NewEngineDiag(prog *cdfg.Program, kind EngineKind, diags *diag.List) (Engine, error) {
	switch kind {
	case EngineTree:
		return newTreeEngine(prog), nil
	case EngineCompiled:
		cp, err := CompileCached(prog)
		if err != nil {
			return nil, err
		}
		return NewCompiled(cp), nil
	case EngineGen:
		if f := GeneratedFor(prog); f != nil {
			return f(prog), nil
		}
		return nil, fmt.Errorf("interp: no generated engine registered for this program (regenerate with `esegen -registry`, or use -exec=auto)")
	default:
		if f := GeneratedFor(prog); f != nil {
			return f(prog), nil
		}
		cp, err := CompileCached(prog)
		if err != nil {
			diags.Infof(diag.StageSimulate, "",
				"execution engine: program rejected by the compiled tier (%v); falling back to the tree-walker", err)
			return newTreeEngine(prog), nil
		}
		return NewCompiled(cp), nil
	}
}

// treeEngine adapts the tree-walking Machine to the Engine interface,
// reproducing the delay-pooling contract with an OnBlock closure.
type treeEngine struct {
	m       *Machine
	dm      map[*cdfg.Block]float64
	onDelay func(delay float64) error
	pending float64
}

func newTreeEngine(prog *cdfg.Program) *treeEngine {
	return &treeEngine{m: New(prog)}
}

// Machine exposes the underlying tree-walker.
func (e *treeEngine) Machine() *Machine { return e.m }

func (e *treeEngine) Run(entry string) error { return e.m.Run(entry) }

func (e *treeEngine) Reset() {
	e.m.Reset()
	e.pending = 0
}

func (e *treeEngine) Kind() EngineKind { return EngineTree }

func (e *treeEngine) OutStream() []int32 { return e.m.Out }

func (e *treeEngine) StepCount() uint64 { return e.m.Steps }

func (e *treeEngine) BlockCountsMap() map[*cdfg.Block]uint64 { return e.m.BlockCounts }

func (e *treeEngine) EnableProfile() { e.m.EnableProfile() }

func (e *treeEngine) SetLimit(n uint64) { e.m.Limit = n }

func (e *treeEngine) SetContext(ctx context.Context) { e.m.Ctx = ctx }

func (e *treeEngine) SetChannels(send func(ch int, data []int32) error, recv func(ch int, buf []int32) error) {
	e.m.Send, e.m.Recv = send, recv
}

func (e *treeEngine) SetDelays(dm map[*cdfg.Block]float64) {
	e.dm = dm
	e.install()
}

func (e *treeEngine) SetOnDelay(fn func(delay float64) error) {
	e.onDelay = fn
	e.install()
}

func (e *treeEngine) install() {
	switch {
	case e.dm == nil:
		e.m.OnBlock = nil
	case e.onDelay != nil:
		dm, fn := e.dm, e.onDelay
		e.m.OnBlock = func(b *cdfg.Block) error { return fn(dm[b]) }
	default:
		dm := e.dm
		e.m.OnBlock = func(b *cdfg.Block) error { e.pending += dm[b]; return nil }
	}
}

func (e *treeEngine) TakePending() float64 {
	p := e.pending
	e.pending = 0
	return p
}
