package interp

import (
	"context"
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/diag"
)

// Compiled executes one process against the flat pre-resolved form produced
// by Compile. It is behaviorally identical to Machine — same Out stream,
// Steps accounting, step-limit and cancellation points, and error strings —
// but runs a tight loop over pre-resolved register indices with frames
// recycled through per-function free lists, so the steady state allocates
// nothing.
//
// A Compiled machine is single-goroutine, like Machine; the underlying
// CompiledProgram is immutable and safely shared across machines.
type Compiled struct {
	cp     *CompiledProgram
	gwords []int32   // scalar globals, one word each
	garrs  [][]int32 // array globals
	out    []int32

	send func(ch int, data []int32) error
	recv func(ch int, buf []int32) error

	// Fused timing: delays is the dense per-block delay table (nil when
	// untimed). With onDelay nil the delay accumulates into pending
	// (transaction-boundary waits); otherwise onDelay observes every block's
	// delay (per-block waits, RTOS preemption points).
	delays  []float64
	onDelay func(delay float64) error
	pending float64

	counts []uint64 // dense per-block execution counts (nil unless profiling)

	steps        uint64
	limit        uint64
	ctx          context.Context
	ctxCountdown uint64

	pools [][]*cframe // per-function frame free lists
}

// cframe is one pooled activation record.
type cframe struct {
	regs    []int32
	arrs    [][]int32
	backing []int32 // local-array storage; zeroed on release
}

// NewCompiled creates a machine with globals initialized from the compiled
// program.
func NewCompiled(cp *CompiledProgram) *Compiled {
	m := &Compiled{
		cp:     cp,
		gwords: append([]int32(nil), cp.gwords...),
		garrs:  make([][]int32, len(cp.garrs)),
		pools:  make([][]*cframe, len(cp.funcs)),
	}
	for i, g := range cp.garrs {
		buf := make([]int32, g.size)
		copy(buf, g.init)
		m.garrs[i] = buf
	}
	return m
}

// Kind reports EngineCompiled.
func (m *Compiled) Kind() EngineKind { return EngineCompiled }

// Program returns the source CDFG program.
func (m *Compiled) Program() *cdfg.Program { return m.cp.src }

// OutStream returns the stream written by the out() intrinsic.
func (m *Compiled) OutStream() []int32 { return m.out }

// StepCount returns the dynamically executed IR instruction count.
func (m *Compiled) StepCount() uint64 { return m.steps }

// SetLimit sets the dynamic step limit (0 = none).
func (m *Compiled) SetLimit(n uint64) { m.limit = n }

// SetContext bounds execution by ctx, checked every few thousand steps.
func (m *Compiled) SetContext(ctx context.Context) { m.ctx = ctx }

// SetChannels installs the communication intrinsics.
func (m *Compiled) SetChannels(send func(ch int, data []int32) error, recv func(ch int, buf []int32) error) {
	m.send, m.recv = send, recv
}

// EnableProfile turns on per-block execution counting (idempotent).
func (m *Compiled) EnableProfile() {
	if m.counts == nil {
		m.counts = make([]uint64, m.cp.NumBlocks())
	}
}

// BlockCountsMap converts the dense counters back to the map shape the
// profiler consumes; blocks that never executed are omitted, matching the
// tree-walker's map contents exactly.
func (m *Compiled) BlockCountsMap() map[*cdfg.Block]uint64 {
	if m.counts == nil {
		return nil
	}
	out := make(map[*cdfg.Block]uint64)
	for id, n := range m.counts {
		if n != 0 {
			out[m.cp.blocks[id]] = n
		}
	}
	return out
}

// SetDelays fuses the annotated per-block delays into the machine as a
// dense table indexed by block id.
func (m *Compiled) SetDelays(dm map[*cdfg.Block]float64) {
	if dm == nil {
		m.delays = nil
		return
	}
	m.delays = make([]float64, m.cp.NumBlocks())
	for b, d := range dm {
		if id, ok := m.cp.blockID[b]; ok {
			m.delays[id] = d
		}
	}
}

// SetOnDelay switches to per-block delay delivery: fn observes every
// dynamic block's delay (including zero) instead of accumulation into the
// pending pool. Requires SetDelays.
func (m *Compiled) SetOnDelay(fn func(delay float64) error) { m.onDelay = fn }

// TakePending returns and clears the accumulated delay cycles.
func (m *Compiled) TakePending() float64 {
	p := m.pending
	m.pending = 0
	return p
}

// Reset re-initializes globals, the out stream and the counters. Frame
// pools survive a reset.
func (m *Compiled) Reset() {
	copy(m.gwords, m.cp.gwords)
	for i, g := range m.cp.garrs {
		buf := m.garrs[i]
		clear(buf)
		copy(buf, g.init)
	}
	m.out = m.out[:0]
	m.steps = 0
	m.ctxCountdown = 0
	m.pending = 0
	clear(m.counts)
}

// Run executes the named entry function with no arguments.
func (m *Compiled) Run(entry string) error {
	fi, ok := m.cp.byName[entry]
	if !ok {
		return fmt.Errorf("interp: no function %q", entry)
	}
	fn := m.cp.funcs[fi]
	if len(fn.params) != 0 {
		return fmt.Errorf("interp: entry %q must take no parameters", entry)
	}
	fr := m.frame(fi)
	_, err := m.exec(fn, fr)
	m.release(fi, fr)
	return err
}

// frame pops a recycled activation record for function fi, or builds one.
// Registers are (re)initialized from the function's template — zeros plus
// the materialized constant pool; local-array backing is already zero
// (cleared on release).
func (m *Compiled) frame(fi int) *cframe {
	fn := m.cp.funcs[fi]
	pool := m.pools[fi]
	if n := len(pool); n > 0 {
		fr := pool[n-1]
		m.pools[fi] = pool[:n-1]
		copy(fr.regs, fn.regInit)
		return fr
	}
	fr := &cframe{
		regs:    append([]int32(nil), fn.regInit...),
		arrs:    make([][]int32, len(fn.arrs)),
		backing: make([]int32, fn.backing),
	}
	for i, a := range fn.arrs {
		if !a.isParam {
			fr.arrs[i] = fr.backing[a.off : a.off+a.size : a.off+a.size]
		}
	}
	return fr
}

// release zeroes the frame's local-array storage and returns it to the pool.
// Parameter array bindings are left stale; every call rebinds them before
// execution.
func (m *Compiled) release(fi int, fr *cframe) {
	clear(fr.backing)
	m.pools[fi] = append(m.pools[fi], fr)
}

// ld reads a scalar operand: non-negative indices are frame registers,
// negative ones are complement-encoded global words.
func (m *Compiled) ld(regs []int32, ix int32) int32 {
	if ix >= 0 {
		return regs[ix]
	}
	return m.gwords[^ix]
}

// st writes a scalar operand.
func (m *Compiled) st(regs []int32, ix, v int32) {
	if ix >= 0 {
		regs[ix] = v
		return
	}
	m.gwords[^ix] = v
}

// arrOf resolves an array operand to its backing slice.
func (m *Compiled) arrOf(fr *cframe, ix int32) []int32 {
	if ix >= 0 {
		return fr.arrs[ix]
	}
	return m.garrs[^ix]
}

func (m *Compiled) runtimeErr(pos cfront.Pos, format string, args ...any) error {
	return fmt.Errorf("interp: %s: %s", pos, fmt.Sprintf(format, args...))
}

// flushHot writes the exec loop's hoisted accumulators back to the machine.
// Every path that leaves the loop — returns, callbacks that may observe or
// drain them (TakePending from a channel wrapper), recursive calls — flushes
// first.
func (m *Compiled) flushHot(steps uint64, pending float64, countdown uint64) {
	m.steps = steps
	m.pending = pending
	m.ctxCountdown = countdown
}

// exec is the hot loop: one flat instruction stream, direct jump targets,
// pre-resolved operands.
func (m *Compiled) exec(fn *cfunc, fr *cframe) (int32, error) {
	code := fn.code
	regs := fr.regs
	// The per-block accumulators and their configuration are hoisted into
	// locals so the loop body keeps them in machine registers instead of
	// round-tripping through m on every block. The configuration fields
	// (delays, counts, limit, ctx, onDelay) cannot change mid-run.
	delays := m.delays
	counts := m.counts
	limit := m.limit
	ctx := m.ctx
	steps := m.steps
	pending := m.pending
	countdown := m.ctxCountdown
	pc := int32(0)
	for {
		in := &code[pc]
		switch in.op {
		case cBlock:
			// Same observable order as the tree-walker: profile count,
			// delay hook, step accounting/limit, cancellation countdown.
			if counts != nil {
				counts[in.a]++
			}
			if m.onDelay != nil {
				m.flushHot(steps, pending, countdown)
				err := m.onDelay(delays[in.a])
				pending = m.pending
				if err != nil {
					m.flushHot(steps, pending, countdown)
					return 0, err
				}
			} else if delays != nil {
				pending += delays[in.a]
			}
			n := uint64(in.b)
			steps += n
			if limit != 0 && steps > limit {
				m.flushHot(steps, pending, countdown)
				return 0, ErrLimit
			}
			if ctx != nil {
				if n == 0 {
					n = 1
				}
				if countdown <= n {
					countdown = ctxCheckSteps
					if err := diag.FromContext(ctx); err != nil {
						m.flushHot(steps, pending, countdown)
						return 0, err
					}
				} else {
					countdown -= n
				}
			}
		case cMovR:
			regs[in.dst] = regs[in.a]
		case cAddR:
			regs[in.dst] = regs[in.a] + regs[in.b]
		case cSubR:
			regs[in.dst] = regs[in.a] - regs[in.b]
		case cMulR:
			regs[in.dst] = regs[in.a] * regs[in.b]
		case cAndR:
			regs[in.dst] = regs[in.a] & regs[in.b]
		case cOrR:
			regs[in.dst] = regs[in.a] | regs[in.b]
		case cXorR:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
		case cShlR:
			regs[in.dst] = regs[in.a] << (uint32(regs[in.b]) & 31)
		case cShrR:
			regs[in.dst] = regs[in.a] >> (uint32(regs[in.b]) & 31)
		case cCmpEqR:
			regs[in.dst] = b2i(regs[in.a] == regs[in.b])
		case cCmpNeR:
			regs[in.dst] = b2i(regs[in.a] != regs[in.b])
		case cCmpLtR:
			regs[in.dst] = b2i(regs[in.a] < regs[in.b])
		case cCmpLeR:
			regs[in.dst] = b2i(regs[in.a] <= regs[in.b])
		case cCmpGtR:
			regs[in.dst] = b2i(regs[in.a] > regs[in.b])
		case cCmpGeR:
			regs[in.dst] = b2i(regs[in.a] >= regs[in.b])
		case cLoadF:
			arr := fr.arrs[in.ext]
			idx := regs[in.a]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cLoadG:
			arr := m.garrs[in.ext]
			idx := regs[in.a]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cStoreF:
			arr := fr.arrs[in.ext]
			idx := regs[in.a]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			arr[idx] = regs[in.b]
		case cStoreG:
			arr := m.garrs[in.ext]
			idx := regs[in.a]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			arr[idx] = regs[in.b]
		case cBrEqR:
			if regs[in.a] == regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrNeR:
			if regs[in.a] != regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrLtR:
			if regs[in.a] < regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrLeR:
			if regs[in.a] <= regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrGtR:
			if regs[in.a] > regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrGeR:
			if regs[in.a] >= regs[in.b] {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cLoadFAdd:
			arr := fr.arrs[in.ext]
			idx := regs[in.a] + regs[in.b]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cLoadFSub:
			arr := fr.arrs[in.ext]
			idx := regs[in.a] - regs[in.b]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cLoadGAdd:
			arr := m.garrs[in.ext]
			idx := regs[in.a] + regs[in.b]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cLoadGSub:
			arr := m.garrs[in.ext]
			idx := regs[in.a] - regs[in.b]
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			regs[in.dst] = arr[idx]
		case cMulShr:
			regs[in.dst] = (regs[in.a] * regs[in.b]) >> (uint32(regs[in.ext]) & 31)
		case cMacShr:
			regs[in.dst] = regs[in.ext2] + ((regs[in.a] * regs[in.b]) >> (uint32(regs[in.ext]) & 31))
		case cBrEq:
			if m.ld(regs, in.a) == m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrNe:
			if m.ld(regs, in.a) != m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrLt:
			if m.ld(regs, in.a) < m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrLe:
			if m.ld(regs, in.a) <= m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrGt:
			if m.ld(regs, in.a) > m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cBrGe:
			if m.ld(regs, in.a) >= m.ld(regs, in.b) {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cMov:
			m.st(regs, in.dst, m.ld(regs, in.a))
		case cAdd:
			m.st(regs, in.dst, m.ld(regs, in.a)+m.ld(regs, in.b))
		case cSub:
			m.st(regs, in.dst, m.ld(regs, in.a)-m.ld(regs, in.b))
		case cMul:
			m.st(regs, in.dst, m.ld(regs, in.a)*m.ld(regs, in.b))
		case cDiv:
			m.st(regs, in.dst, cfront.FoldBinary(cfront.TokSlash, m.ld(regs, in.a), m.ld(regs, in.b)))
		case cRem:
			m.st(regs, in.dst, cfront.FoldBinary(cfront.TokPercent, m.ld(regs, in.a), m.ld(regs, in.b)))
		case cAnd:
			m.st(regs, in.dst, m.ld(regs, in.a)&m.ld(regs, in.b))
		case cOr:
			m.st(regs, in.dst, m.ld(regs, in.a)|m.ld(regs, in.b))
		case cXor:
			m.st(regs, in.dst, m.ld(regs, in.a)^m.ld(regs, in.b))
		case cShl:
			m.st(regs, in.dst, m.ld(regs, in.a)<<(uint32(m.ld(regs, in.b))&31))
		case cShr:
			m.st(regs, in.dst, m.ld(regs, in.a)>>(uint32(m.ld(regs, in.b))&31))
		case cNeg:
			m.st(regs, in.dst, -m.ld(regs, in.a))
		case cNot:
			m.st(regs, in.dst, ^m.ld(regs, in.a))
		case cCmpEq:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) == m.ld(regs, in.b)))
		case cCmpNe:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) != m.ld(regs, in.b)))
		case cCmpLt:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) < m.ld(regs, in.b)))
		case cCmpLe:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) <= m.ld(regs, in.b)))
		case cCmpGt:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) > m.ld(regs, in.b)))
		case cCmpGe:
			m.st(regs, in.dst, b2i(m.ld(regs, in.a) >= m.ld(regs, in.b)))
		case cLoad:
			arr := m.arrOf(fr, in.ext)
			idx := m.ld(regs, in.a)
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			m.st(regs, in.dst, arr[idx])
		case cStore:
			arr := m.arrOf(fr, in.ext)
			idx := m.ld(regs, in.a)
			if idx < 0 || int(idx) >= len(arr) {
				m.flushHot(steps, pending, countdown)
				return 0, m.runtimeErr(fn.poss[pc], "index %d out of range [0,%d) in %s", idx, len(arr), fn.name)
			}
			arr[idx] = m.ld(regs, in.b)
		case cCall:
			cf := m.cp.funcs[in.ext]
			nfr := m.frame(int(in.ext))
			args := fn.argPool[in.a : in.a+in.b]
			for j := range cf.params {
				p := &cf.params[j]
				if p.isArray {
					a := m.arrOf(fr, args[j])
					if a == nil {
						m.release(int(in.ext), nfr)
						m.flushHot(steps, pending, countdown)
						return 0, fmt.Errorf("interp: %s: array argument %d is nil", cf.name, p.ix)
					}
					nfr.arrs[p.arr] = a
				} else {
					nfr.regs[p.reg] = m.ld(regs, args[j])
				}
			}
			m.flushHot(steps, pending, countdown)
			v, err := m.exec(cf, nfr)
			m.release(int(in.ext), nfr)
			steps, pending, countdown = m.steps, m.pending, m.ctxCountdown
			if err != nil {
				return 0, err
			}
			if in.dst != dstNone {
				m.st(regs, in.dst, v)
			}
		case cSend:
			n := m.ld(regs, in.a)
			arr := m.arrOf(fr, in.ext)
			m.flushHot(steps, pending, countdown)
			if n < 0 || int(n) > len(arr) {
				return 0, m.runtimeErr(fn.poss[pc], "send count %d out of range [0,%d]", n, len(arr))
			}
			if m.send == nil {
				return 0, m.runtimeErr(fn.poss[pc], "send on channel %d: process has no channel binding", in.ext2)
			}
			// The channel wrapper may drain pending (TakePending) while the
			// process waits out the transaction, so reload it afterwards.
			err := m.send(int(in.ext2), arr[:n])
			pending = m.pending
			if err != nil {
				return 0, err
			}
		case cRecv:
			n := m.ld(regs, in.a)
			arr := m.arrOf(fr, in.ext)
			m.flushHot(steps, pending, countdown)
			if n < 0 || int(n) > len(arr) {
				return 0, m.runtimeErr(fn.poss[pc], "recv count %d out of range [0,%d]", n, len(arr))
			}
			if m.recv == nil {
				return 0, m.runtimeErr(fn.poss[pc], "recv on channel %d: process has no channel binding", in.ext2)
			}
			err := m.recv(int(in.ext2), arr[:n])
			pending = m.pending
			if err != nil {
				return 0, err
			}
		case cOut:
			m.out = append(m.out, m.ld(regs, in.a))
		case cBr:
			if m.ld(regs, in.a) != 0 {
				pc = in.ext
			} else {
				pc = in.ext2
			}
			continue
		case cJmp:
			pc = in.ext
			continue
		case cRet:
			m.flushHot(steps, pending, countdown)
			return m.ld(regs, in.a), nil
		case cRetVoid:
			m.flushHot(steps, pending, countdown)
			return 0, nil
		case cTrap:
			m.flushHot(steps, pending, countdown)
			return 0, fmt.Errorf("interp: block bb%d of %s fell through without terminator", in.a, fn.name)
		case cNop:
			// nothing
		}
		pc++
	}
}
