// Package interp executes CDFG IR functionally. It is the execution engine
// behind both the functional TLM and the timed TLM: the timed variant simply
// installs an OnBlock hook that accumulates the annotated per-block delays
// (the generated wait() call of the paper), so timed simulation runs at
// near-functional speed.
package interp

import (
	"context"
	"errors"
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/diag"
)

// ErrLimit is returned when the configured dynamic step limit is exceeded.
var ErrLimit = errors.New("interp: step limit exceeded")

// ctxCheckSteps is how many dynamic IR instructions execute between
// context checks: frequent enough that a runaway loop is interrupted
// within microseconds, rare enough to keep the hot loop unburdened.
const ctxCheckSteps = 4096

// Arg is one call argument: a scalar value or an array passed by reference.
type Arg struct {
	Scalar int32
	Arr    []int32 // non-nil for array arguments
}

// Machine interprets one process (one entry function and everything it
// calls) against its own copy of the program's global state.
type Machine struct {
	Prog    *cdfg.Program
	Globals [][]int32 // one backing slice per global; scalars have length 1
	Out     []int32   // stream written by the out() intrinsic

	// Send and Recv implement the communication intrinsics. When nil, any
	// send/recv instruction is an error (the program was mapped to a
	// platform without the channel).
	Send func(ch int, data []int32) error
	Recv func(ch int, buf []int32) error

	// OnBlock, when set, observes every dynamic basic-block execution
	// before the block body runs. The timed TLM uses it to accumulate the
	// annotated delay. A non-nil return aborts execution with that error.
	OnBlock func(b *cdfg.Block) error

	// BlockCounts, when non-nil, accumulates how many times each basic
	// block executed — the raw data of the cycle-attribution profiler.
	// Enable with EnableProfile before Run.
	BlockCounts map[*cdfg.Block]uint64

	// Ctx, when non-nil, bounds execution: the step loop checks it every
	// few thousand instructions and aborts with diag.ErrCanceled or
	// diag.ErrDeadline, so an infinite-loop program cannot wedge the
	// machine.
	Ctx context.Context

	// Steps counts dynamically executed IR instructions.
	Steps uint64
	// Limit aborts execution when Steps exceeds it; 0 means no limit.
	Limit uint64

	// ctxCountdown spaces the context checks.
	ctxCountdown uint64
}

// New creates a machine with globals initialized from the program.
func New(prog *cdfg.Program) *Machine {
	m := &Machine{Prog: prog}
	m.Globals = make([][]int32, len(prog.Globals))
	for i, g := range prog.Globals {
		buf := make([]int32, g.Size)
		copy(buf, g.Init)
		m.Globals[i] = buf
	}
	return m
}

// EnableProfile turns on per-block execution counting (idempotent). The
// map is pre-sized for the program's static block count, since a full run
// typically touches most blocks.
func (m *Machine) EnableProfile() {
	if m.BlockCounts == nil {
		m.BlockCounts = make(map[*cdfg.Block]uint64, m.Prog.NumBlocks())
	}
}

// Reset re-initializes globals, the out stream and the counters.
func (m *Machine) Reset() {
	for i, g := range m.Prog.Globals {
		buf := m.Globals[i]
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, g.Init)
	}
	m.Out = m.Out[:0]
	m.Steps = 0
	m.ctxCountdown = 0
	clear(m.BlockCounts)
}

// Run executes the named entry function with no arguments.
func (m *Machine) Run(entry string) error {
	fn := m.Prog.Func(entry)
	if fn == nil {
		return fmt.Errorf("interp: no function %q", entry)
	}
	if len(fn.Params) != 0 {
		return fmt.Errorf("interp: entry %q must take no parameters", entry)
	}
	_, err := m.Call(fn, nil)
	return err
}

// Call executes fn with the given arguments and returns its result (0 for
// void functions).
func (m *Machine) Call(fn *cdfg.Function, args []Arg) (int32, error) {
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: %s called with %d args, want %d",
			fn.Name, len(args), len(fn.Params))
	}
	f := frame{
		regs:  make([]int32, fn.NTemps),
		slots: make([][]int32, len(fn.Slots)),
	}
	for i, s := range fn.Slots {
		if s.IsParam {
			a := args[s.ParamIx]
			if s.IsArray {
				if a.Arr == nil {
					return 0, fmt.Errorf("interp: %s: array argument %d is nil", fn.Name, s.ParamIx)
				}
				f.slots[i] = a.Arr
			} else {
				f.slots[i] = []int32{a.Scalar}
			}
			continue
		}
		// Locals are zero-initialized by the ABI; initializer IR emitted by
		// the lowering fills in non-zero values.
		f.slots[i] = make([]int32, s.Size)
	}
	return m.exec(fn, &f)
}

type frame struct {
	regs  []int32
	slots [][]int32
}

func (m *Machine) get(f *frame, r cdfg.Ref) int32 {
	switch r.Kind {
	case cdfg.RefConst:
		return r.Val
	case cdfg.RefTemp:
		return f.regs[r.Idx]
	case cdfg.RefSlot:
		return f.slots[r.Idx][0]
	case cdfg.RefGlobal:
		return m.Globals[r.Idx][0]
	}
	return 0
}

func (m *Machine) set(f *frame, r cdfg.Ref, v int32) {
	switch r.Kind {
	case cdfg.RefTemp:
		f.regs[r.Idx] = v
	case cdfg.RefSlot:
		f.slots[r.Idx][0] = v
	case cdfg.RefGlobal:
		m.Globals[r.Idx][0] = v
	}
}

// array resolves an array base operand to its backing slice.
func (m *Machine) array(f *frame, r cdfg.Ref) []int32 {
	if r.Kind == cdfg.RefGlobal {
		return m.Globals[r.Idx]
	}
	return f.slots[r.Idx]
}

func (m *Machine) runtimeErr(pos cfront.Pos, format string, args ...any) error {
	return fmt.Errorf("interp: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (m *Machine) exec(fn *cdfg.Function, f *frame) (int32, error) {
	b := fn.Entry()
	for {
		if m.BlockCounts != nil {
			m.BlockCounts[b]++
		}
		if m.OnBlock != nil {
			if err := m.OnBlock(b); err != nil {
				return 0, err
			}
		}
		n := uint64(len(b.Instrs))
		m.Steps += n
		if m.Limit != 0 && m.Steps > m.Limit {
			return 0, ErrLimit
		}
		if m.Ctx != nil {
			// Count down in whole blocks; empty blocks still tick once so
			// a loop of empty blocks cannot starve the check.
			if n == 0 {
				n = 1
			}
			if m.ctxCountdown <= n {
				m.ctxCountdown = ctxCheckSteps
				if err := diag.FromContext(m.Ctx); err != nil {
					return 0, err
				}
			} else {
				m.ctxCountdown -= n
			}
		}
		var next *cdfg.Block
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case cdfg.OpMov:
				m.set(f, in.Dst, m.get(f, in.A))
			case cdfg.OpAdd:
				m.set(f, in.Dst, m.get(f, in.A)+m.get(f, in.B))
			case cdfg.OpSub:
				m.set(f, in.Dst, m.get(f, in.A)-m.get(f, in.B))
			case cdfg.OpMul:
				m.set(f, in.Dst, m.get(f, in.A)*m.get(f, in.B))
			case cdfg.OpDiv:
				m.set(f, in.Dst, cfront.FoldBinary(cfront.TokSlash, m.get(f, in.A), m.get(f, in.B)))
			case cdfg.OpRem:
				m.set(f, in.Dst, cfront.FoldBinary(cfront.TokPercent, m.get(f, in.A), m.get(f, in.B)))
			case cdfg.OpAnd:
				m.set(f, in.Dst, m.get(f, in.A)&m.get(f, in.B))
			case cdfg.OpOr:
				m.set(f, in.Dst, m.get(f, in.A)|m.get(f, in.B))
			case cdfg.OpXor:
				m.set(f, in.Dst, m.get(f, in.A)^m.get(f, in.B))
			case cdfg.OpShl:
				m.set(f, in.Dst, m.get(f, in.A)<<(uint32(m.get(f, in.B))&31))
			case cdfg.OpShr:
				m.set(f, in.Dst, m.get(f, in.A)>>(uint32(m.get(f, in.B))&31))
			case cdfg.OpNeg:
				m.set(f, in.Dst, -m.get(f, in.A))
			case cdfg.OpNot:
				m.set(f, in.Dst, ^m.get(f, in.A))
			case cdfg.OpCmpEq:
				m.set(f, in.Dst, b2i(m.get(f, in.A) == m.get(f, in.B)))
			case cdfg.OpCmpNe:
				m.set(f, in.Dst, b2i(m.get(f, in.A) != m.get(f, in.B)))
			case cdfg.OpCmpLt:
				m.set(f, in.Dst, b2i(m.get(f, in.A) < m.get(f, in.B)))
			case cdfg.OpCmpLe:
				m.set(f, in.Dst, b2i(m.get(f, in.A) <= m.get(f, in.B)))
			case cdfg.OpCmpGt:
				m.set(f, in.Dst, b2i(m.get(f, in.A) > m.get(f, in.B)))
			case cdfg.OpCmpGe:
				m.set(f, in.Dst, b2i(m.get(f, in.A) >= m.get(f, in.B)))
			case cdfg.OpLoad:
				arr := m.array(f, in.Arr)
				idx := m.get(f, in.A)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, m.runtimeErr(in.Pos, "index %d out of range [0,%d) in %s", idx, len(arr), fn.Name)
				}
				m.set(f, in.Dst, arr[idx])
			case cdfg.OpStore:
				arr := m.array(f, in.Arr)
				idx := m.get(f, in.A)
				if idx < 0 || int(idx) >= len(arr) {
					return 0, m.runtimeErr(in.Pos, "index %d out of range [0,%d) in %s", idx, len(arr), fn.Name)
				}
				arr[idx] = m.get(f, in.B)
			case cdfg.OpCall:
				args := make([]Arg, len(in.Args))
				for ai, ar := range in.Args {
					if ai < len(in.Callee.Params) && in.Callee.Params[ai].IsArray {
						args[ai] = Arg{Arr: m.array(f, ar)}
					} else {
						args[ai] = Arg{Scalar: m.get(f, ar)}
					}
				}
				v, err := m.Call(in.Callee, args)
				if err != nil {
					return 0, err
				}
				if in.Dst.Kind != cdfg.RefNone {
					m.set(f, in.Dst, v)
				}
			case cdfg.OpSend:
				n := m.get(f, in.A)
				arr := m.array(f, in.Arr)
				if n < 0 || int(n) > len(arr) {
					return 0, m.runtimeErr(in.Pos, "send count %d out of range [0,%d]", n, len(arr))
				}
				if m.Send == nil {
					return 0, m.runtimeErr(in.Pos, "send on channel %d: process has no channel binding", in.Chan)
				}
				if err := m.Send(in.Chan, arr[:n]); err != nil {
					return 0, err
				}
			case cdfg.OpRecv:
				n := m.get(f, in.A)
				arr := m.array(f, in.Arr)
				if n < 0 || int(n) > len(arr) {
					return 0, m.runtimeErr(in.Pos, "recv count %d out of range [0,%d]", n, len(arr))
				}
				if m.Recv == nil {
					return 0, m.runtimeErr(in.Pos, "recv on channel %d: process has no channel binding", in.Chan)
				}
				if err := m.Recv(in.Chan, arr[:n]); err != nil {
					return 0, err
				}
			case cdfg.OpOut:
				m.Out = append(m.Out, m.get(f, in.A))
			case cdfg.OpBr:
				if m.get(f, in.A) != 0 {
					next = in.Then
				} else {
					next = in.Else
				}
			case cdfg.OpJmp:
				next = in.Target
			case cdfg.OpRet:
				if in.A.Kind == cdfg.RefNone {
					return 0, nil
				}
				return m.get(f, in.A), nil
			case cdfg.OpNop:
				// nothing
			default:
				return 0, m.runtimeErr(in.Pos, "unknown opcode %v", in.Op)
			}
		}
		if next == nil {
			return 0, fmt.Errorf("interp: block bb%d of %s fell through without terminator", b.ID, fn.Name)
		}
		b = next
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
