// Compilation pass of the flat execution engine: a one-time lowering of the
// CDFG into a pooled, pre-resolved instruction stream.
//
// The tree-walking interpreter (interp.go) re-dispatches on Ref.Kind for
// every operand of every dynamic instruction and allocates a fresh frame per
// call. Compile removes both costs up front:
//
//   - every scalar operand is resolved to a register index: temps, scalar
//     slots and constants share one per-frame register file (constants are
//     materialized once into the frame's constant-pool region), and scalar
//     globals are encoded as negative indices into the machine's global
//     word array — the hot loop performs a single sign test instead of a
//     four-way kind switch;
//   - basic blocks are numbered densely across the whole program and each
//     compiles to one cBlock bookkeeping instruction followed by its body,
//     so per-block profiling is a slice bump and the timed TLM's per-block
//     delay is a dense []float64 read instead of a map lookup;
//   - control flow becomes direct jumps to instruction indices within one
//     flat per-function code array;
//   - call argument lists are pre-resolved into a per-function operand pool,
//     and frames are recycled through per-function free lists (exec.go).
//
// Compile is conservative: IR shapes it cannot prove equivalent under the
// flat encoding (a scalar slot used as an array base, an argument-count
// mismatch, an unknown opcode) fail compilation with a descriptive error,
// and EngineAuto falls back to the tree-walker, which remains the reference
// semantics.
package interp

import (
	"fmt"
	"math"
	"sync"

	"ese/internal/cdfg"
	"ese/internal/cfront"
)

// cop enumerates compiled opcodes.
type cop uint8

const (
	cNop cop = iota
	cBlock
	cMov
	cAdd
	cSub
	cMul
	cDiv
	cRem
	cAnd
	cOr
	cXor
	cShl
	cShr
	cNeg
	cNot
	cCmpEq
	cCmpNe
	cCmpLt
	cCmpLe
	cCmpGt
	cCmpGe
	cLoad
	cStore
	cCall
	cSend
	cRecv
	cOut
	cBr
	cJmp
	cRet
	cRetVoid
	cTrap // block without terminator: reproduces the tree-walker's error

	// Fused compare-and-branch forms: `CmpX t, a, b; Br t, then, else`
	// collapses into one instruction when t is a temp whose only reader is
	// the branch. This removes a dispatch plus a register round-trip from
	// every conditional back edge.
	cBrEq
	cBrNe
	cBrLt
	cBrLe
	cBrGt
	cBrGe

	// Register-specialized forms, chosen per instruction at compile time
	// when every scalar operand is a frame register (the common case —
	// globals are rare inside kernels), so the hot loop skips the operand
	// sign tests entirely. cLoadF/cStoreF additionally pin the array to the
	// frame table and cLoadG/cStoreG to the (pre-complemented) global table.
	cMovR
	cAddR
	cSubR
	cMulR
	cAndR
	cOrR
	cXorR
	cShlR
	cShrR
	cCmpEqR
	cCmpNeR
	cCmpLtR
	cCmpLeR
	cCmpGtR
	cCmpGeR
	cLoadF
	cLoadG
	cStoreF
	cStoreG
	cBrEqR
	cBrNeR
	cBrLtR
	cBrLeR
	cBrGtR
	cBrGeR

	// Multiply-accumulate chain superinstructions. The MP3 kernels spend
	// most of their dynamic instructions in `acc += (x[i+k] * c[j+k]) >> s`
	// shapes; each link of that chain funnels through a single-read temp, so
	// the emitter fuses index-add/sub into the following load, mul into the
	// following shift, and the shifted product into the following add. All
	// operand fields are frame registers (fused only when the specialized
	// conditions already hold at emission).
	cLoadFAdd // dst = frameArr[ext][regs[a]+regs[b]]
	cLoadFSub // dst = frameArr[ext][regs[a]-regs[b]]
	cLoadGAdd // dst = globalArr[ext][regs[a]+regs[b]] (ext pre-complemented)
	cLoadGSub // dst = globalArr[ext][regs[a]-regs[b]] (ext pre-complemented)
	cMulShr   // dst = (regs[a]*regs[b]) >> (regs[ext] & 31)
	cMacShr   // dst = regs[ext2] + ((regs[a]*regs[b]) >> (regs[ext] & 31))
)

// dstNone marks a call instruction whose result is discarded.
const dstNone = math.MinInt32

// cinstr is one pre-resolved instruction. Scalar operand fields (dst, a, b)
// hold register indices: >= 0 indexes the frame register file, < 0 encodes
// ^i into the machine's global scalar words. The ext/ext2 fields carry the
// per-op extras: array base (>= 0 frame array table, < 0 ^i global array),
// jump targets (instruction indices), callee index, channel id, or the call
// argument pool window.
type cinstr struct {
	op   cop
	dst  int32
	a, b int32
	ext  int32
	ext2 int32
}

// cparam describes where one parameter lands in a fresh frame.
type cparam struct {
	isArray bool
	reg     int32 // scalar: register index
	arr     int32 // array: frame array-table index
	ix      int   // original parameter position (for error messages)
}

// carr describes one entry of a frame's array table.
type carr struct {
	isParam bool
	off     int32 // local arrays: offset into the frame's backing store
	size    int32 // local arrays: length in words
}

// cfunc is one compiled function.
type cfunc struct {
	name    string
	code    []cinstr
	poss    []cfront.Pos // per-instruction source positions (error paths)
	regInit []int32      // register-file template: zeros plus constant pool
	arrs    []carr       // frame array-table layout
	backing int32        // words of zeroed local-array backing per frame
	params  []cparam
	argPool []int32 // pre-resolved call-argument operands (windows per call)
}

// gArrInit is the initializer template of one global array.
type gArrInit struct {
	size int32
	init []int32
}

// CompiledProgram is the immutable compiled form of one cdfg.Program. It is
// shared by every Compiled machine executing the program (one per simulated
// process); all mutable state lives in the machines.
type CompiledProgram struct {
	src     *cdfg.Program
	funcs   []*cfunc
	byName  map[string]int
	blocks  []*cdfg.Block // dense program-wide block numbering
	blockID map[*cdfg.Block]int32
	gwords  []int32 // initial values of the scalar-global word array
	garrs   []gArrInit
}

// NumBlocks returns the number of densely numbered basic blocks.
func (cp *CompiledProgram) NumBlocks() int { return len(cp.blocks) }

// BlockID returns the dense program-wide id of a block, or -1 if the block
// is not part of the compiled program.
func (cp *CompiledProgram) BlockID(b *cdfg.Block) int32 {
	if id, ok := cp.blockID[b]; ok {
		return id
	}
	return -1
}

// Source returns the CDFG program this was compiled from.
func (cp *CompiledProgram) Source() *cdfg.Program { return cp.src }

// compiler holds the program-wide resolution tables.
type compiler struct {
	cp      *CompiledProgram
	funcIdx map[*cdfg.Function]int
	gScalar []int32 // global index -> word index, -1 for arrays
	gArr    []int32 // global index -> global-array index, -1 for scalars
}

// Compile lowers a CDFG program into the flat pre-resolved form. It returns
// an error when the program uses an IR shape the flat encoding does not
// cover; callers should then fall back to the tree-walking interpreter.
func Compile(prog *cdfg.Program) (*CompiledProgram, error) {
	c := &compiler{
		cp: &CompiledProgram{
			src:     prog,
			byName:  make(map[string]int, len(prog.Funcs)),
			blockID: make(map[*cdfg.Block]int32),
		},
		funcIdx: make(map[*cdfg.Function]int, len(prog.Funcs)),
		gScalar: make([]int32, len(prog.Globals)),
		gArr:    make([]int32, len(prog.Globals)),
	}
	for i, g := range prog.Globals {
		if g.IsArray {
			c.gScalar[i] = -1
			c.gArr[i] = int32(len(c.cp.garrs))
			init := gArrInit{size: g.Size}
			if len(g.Init) > 0 {
				init.init = g.Init
			}
			c.cp.garrs = append(c.cp.garrs, init)
			continue
		}
		c.gArr[i] = -1
		c.gScalar[i] = int32(len(c.cp.gwords))
		v := int32(0)
		if len(g.Init) > 0 {
			v = g.Init[0]
		}
		c.cp.gwords = append(c.cp.gwords, v)
	}
	for i, fn := range prog.Funcs {
		c.funcIdx[fn] = i
		c.cp.byName[fn.Name] = i
		for _, b := range fn.Blocks {
			c.cp.blockID[b] = int32(len(c.cp.blocks))
			c.cp.blocks = append(c.cp.blocks, b)
		}
	}
	for _, fn := range prog.Funcs {
		cf, err := c.compileFunc(fn)
		if err != nil {
			return nil, fmt.Errorf("interp: compile %s: %w", fn.Name, err)
		}
		c.cp.funcs = append(c.cp.funcs, cf)
	}
	return c.cp, nil
}

// fnCompiler carries the per-function resolution state.
type fnCompiler struct {
	c         *compiler
	fn        *cdfg.Function
	out       *cfunc
	slotReg   []int32 // scalar slot -> register, -1 for array slots
	slotArr   []int32 // array slot -> array-table index, -1 for scalars
	nRegs     int32
	consts    map[int32]int32 // constant value -> register
	blockPC   map[*cdfg.Block]int32
	patches   []patch
	tempReads []int // per-temp read counts (compare-branch fusion safety)
}

// countTempReads counts, per temp, how many instruction operands read it
// anywhere in the function. A compare whose destination temp has exactly one
// read (the branch condition) can be fused into the branch: the register
// write is unobservable because nothing else ever loads it.
func countTempReads(fn *cdfg.Function) []int {
	reads := make([]int, fn.NTemps)
	note := func(r cdfg.Ref) {
		if r.Kind == cdfg.RefTemp && r.Idx >= 0 && r.Idx < len(reads) {
			reads[r.Idx]++
		}
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			note(in.A)
			note(in.B)
			for _, a := range in.Args {
				note(a)
			}
		}
	}
	return reads
}

// patch is a jump-target fixup recorded during emission.
type patch struct {
	pc     int
	second bool // patch ext2 instead of ext
	target *cdfg.Block
}

func (c *compiler) compileFunc(fn *cdfg.Function) (*cfunc, error) {
	if len(fn.Blocks) == 0 {
		return nil, fmt.Errorf("function has no blocks")
	}
	fc := &fnCompiler{
		c:         c,
		fn:        fn,
		out:       &cfunc{name: fn.Name},
		slotReg:   make([]int32, len(fn.Slots)),
		slotArr:   make([]int32, len(fn.Slots)),
		nRegs:     int32(fn.NTemps),
		consts:    make(map[int32]int32),
		blockPC:   make(map[*cdfg.Block]int32, len(fn.Blocks)),
		tempReads: countTempReads(fn),
	}
	// Register and array-table layout: temps first, then scalar slots, then
	// (appended during emission) the constant pool.
	for i, s := range fn.Slots {
		if s.IsArray {
			fc.slotReg[i] = -1
			fc.slotArr[i] = int32(len(fc.out.arrs))
			entry := carr{isParam: s.IsParam}
			if !s.IsParam {
				entry.off = fc.out.backing
				entry.size = s.Size
				fc.out.backing += s.Size
			}
			fc.out.arrs = append(fc.out.arrs, entry)
			continue
		}
		fc.slotArr[i] = -1
		fc.slotReg[i] = fc.nRegs
		fc.nRegs++
	}
	for i, p := range fn.Params {
		si := -1
		for j, s := range fn.Slots {
			if s == p {
				si = j
				break
			}
		}
		if si < 0 {
			return nil, fmt.Errorf("parameter %d has no slot", i)
		}
		cp := cparam{isArray: p.IsArray, ix: i}
		if p.IsArray {
			cp.arr = fc.slotArr[si]
		} else {
			cp.reg = fc.slotReg[si]
		}
		fc.out.params = append(fc.out.params, cp)
	}
	for _, b := range fn.Blocks {
		if err := fc.emitBlock(b); err != nil {
			return nil, err
		}
	}
	for _, p := range fc.patches {
		pc, ok := fc.blockPC[p.target]
		if !ok {
			return nil, fmt.Errorf("branch to block outside function")
		}
		if p.second {
			fc.out.code[p.pc].ext2 = pc
		} else {
			fc.out.code[p.pc].ext = pc
		}
	}
	specialize(fc.out.code)
	// Register-file template: zeros for temps and scalar slots, then the
	// materialized constant pool.
	fc.out.regInit = make([]int32, fc.nRegs)
	for v, r := range fc.consts {
		fc.out.regInit[r] = v
	}
	return fc.out, nil
}

// rix resolves a scalar operand to its register encoding.
func (fc *fnCompiler) rix(r cdfg.Ref) (int32, error) {
	switch r.Kind {
	case cdfg.RefConst:
		if reg, ok := fc.consts[r.Val]; ok {
			return reg, nil
		}
		reg := fc.nRegs
		fc.nRegs++
		fc.consts[r.Val] = reg
		return reg, nil
	case cdfg.RefTemp:
		return int32(r.Idx), nil
	case cdfg.RefSlot:
		reg := fc.slotReg[r.Idx]
		if reg < 0 {
			return 0, fmt.Errorf("array slot s%d used as a scalar", r.Idx)
		}
		return reg, nil
	case cdfg.RefGlobal:
		w := fc.c.gScalar[r.Idx]
		if w < 0 {
			return 0, fmt.Errorf("array global g%d used as a scalar", r.Idx)
		}
		return ^w, nil
	}
	return 0, fmt.Errorf("unresolvable scalar operand %s", r)
}

// wix resolves a writable scalar destination (constants are rejected).
func (fc *fnCompiler) wix(r cdfg.Ref) (int32, error) {
	if r.Kind == cdfg.RefConst || r.Kind == cdfg.RefNone {
		return 0, fmt.Errorf("operand %s is not writable", r)
	}
	return fc.rix(r)
}

// aix resolves an array base operand.
func (fc *fnCompiler) aix(r cdfg.Ref) (int32, error) {
	switch r.Kind {
	case cdfg.RefSlot:
		a := fc.slotArr[r.Idx]
		if a < 0 {
			return 0, fmt.Errorf("scalar slot s%d used as an array base", r.Idx)
		}
		return a, nil
	case cdfg.RefGlobal:
		a := fc.c.gArr[r.Idx]
		if a < 0 {
			return 0, fmt.Errorf("scalar global g%d used as an array base", r.Idx)
		}
		return ^a, nil
	}
	return 0, fmt.Errorf("operand %s is not an array base", r)
}

func (fc *fnCompiler) emit(in cinstr, pos cfront.Pos) {
	fc.out.code = append(fc.out.code, in)
	fc.out.poss = append(fc.out.poss, pos)
}

// fusibleTemp reports whether r is a temp read exactly once function-wide.
// Fusing the producer of such a temp into its sole consumer leaves the
// temp's register unwritten, which no other instruction can observe.
func (fc *fnCompiler) fusibleTemp(r cdfg.Ref) bool {
	return r.Kind == cdfg.RefTemp && r.Idx >= 0 && r.Idx < len(fc.tempReads) &&
		fc.tempReads[r.Idx] == 1
}

// lastEmitted returns the most recently emitted instruction, or nil when
// nothing has been emitted. Block boundaries need no special casing: the
// previous block always ends with a terminator (or cTrap) and the current
// one begins with cBlock, so an arithmetic opcode in the last slot is
// necessarily an adjacent instruction of the same block.
func (fc *fnCompiler) lastEmitted() *cinstr {
	if len(fc.out.code) == 0 {
		return nil
	}
	return &fc.out.code[len(fc.out.code)-1]
}

// brFused maps a compare opcode to its fused compare-and-branch form.
var brFused = map[cop]cop{
	cCmpEq: cBrEq, cCmpNe: cBrNe, cCmpLt: cBrLt,
	cCmpLe: cBrLe, cCmpGt: cBrGt, cCmpGe: cBrGe,
}

// regForm maps a generic opcode to its all-register specialization.
var regForm = map[cop]cop{
	cAdd: cAddR, cSub: cSubR, cMul: cMulR, cAnd: cAndR,
	cOr: cOrR, cXor: cXorR, cShl: cShlR, cShr: cShrR,
	cCmpEq: cCmpEqR, cCmpNe: cCmpNeR, cCmpLt: cCmpLtR,
	cCmpLe: cCmpLeR, cCmpGt: cCmpGtR, cCmpGe: cCmpGeR,
}

// brRegForm maps a fused compare-and-branch to its all-register form.
var brRegForm = map[cop]cop{
	cBrEq: cBrEqR, cBrNe: cBrNeR, cBrLt: cBrLtR,
	cBrLe: cBrLeR, cBrGt: cBrGtR, cBrGe: cBrGeR,
}

// specialize rewrites instructions whose operands all live in the frame
// register file into sign-test-free forms, and splits loads/stores by array
// location (frame table vs. global table, the latter pre-complemented).
// Opcode rewrites never move instructions, so jump targets stay valid.
func specialize(code []cinstr) {
	for i := range code {
		in := &code[i]
		switch in.op {
		case cMov:
			if in.dst >= 0 && in.a >= 0 {
				in.op = cMovR
			}
		case cAdd, cSub, cMul, cAnd, cOr, cXor, cShl, cShr,
			cCmpEq, cCmpNe, cCmpLt, cCmpLe, cCmpGt, cCmpGe:
			if in.dst >= 0 && in.a >= 0 && in.b >= 0 {
				in.op = regForm[in.op]
			}
		case cBrEq, cBrNe, cBrLt, cBrLe, cBrGt, cBrGe:
			if in.a >= 0 && in.b >= 0 {
				in.op = brRegForm[in.op]
			}
		case cLoad:
			if in.dst >= 0 && in.a >= 0 {
				if in.ext >= 0 {
					in.op = cLoadF
				} else {
					in.op = cLoadG
					in.ext = ^in.ext
				}
			}
		case cStore:
			if in.a >= 0 && in.b >= 0 {
				if in.ext >= 0 {
					in.op = cStoreF
				} else {
					in.op = cStoreG
					in.ext = ^in.ext
				}
			}
		}
	}
}

// tryFuseBin grows multiply-accumulate superinstructions at emission time:
// `t = x*y; d = t >> s` becomes cMulShr, and `u = (x*y)>>s; d = u + c` (in
// either operand order) becomes cMacShr. Both rewrites replace the previous
// instruction in place, so jump targets stay valid, and fire only when the
// intermediate is a single-read temp and every operand is a frame register.
// Neither fused form has an error path, so the surviving position (the
// producer's) is never reported.
func (fc *fnCompiler) tryFuseBin(in *cdfg.Instr, dst, a, b int32) bool {
	if dst < 0 {
		return false
	}
	last := fc.lastEmitted()
	if last == nil {
		return false
	}
	switch in.Op {
	case cdfg.OpShr:
		if b >= 0 && fc.fusibleTemp(in.A) &&
			last.op == cMul && last.dst == int32(in.A.Idx) &&
			last.a >= 0 && last.b >= 0 {
			*last = cinstr{op: cMulShr, dst: dst, a: last.a, b: last.b, ext: b}
			return true
		}
	case cdfg.OpAdd:
		if last.op != cMulShr {
			return false
		}
		if a >= 0 && fc.fusibleTemp(in.B) && last.dst == int32(in.B.Idx) {
			*last = cinstr{op: cMacShr, dst: dst, a: last.a, b: last.b, ext: last.ext, ext2: a}
			return true
		}
		if b >= 0 && fc.fusibleTemp(in.A) && last.dst == int32(in.A.Idx) {
			*last = cinstr{op: cMacShr, dst: dst, a: last.a, b: last.b, ext: last.ext, ext2: b}
			return true
		}
	}
	return false
}

var binOps = map[cdfg.Opcode]cop{
	cdfg.OpAdd: cAdd, cdfg.OpSub: cSub, cdfg.OpMul: cMul, cdfg.OpDiv: cDiv,
	cdfg.OpRem: cRem, cdfg.OpAnd: cAnd, cdfg.OpOr: cOr, cdfg.OpXor: cXor,
	cdfg.OpShl: cShl, cdfg.OpShr: cShr,
	cdfg.OpCmpEq: cCmpEq, cdfg.OpCmpNe: cCmpNe, cdfg.OpCmpLt: cCmpLt,
	cdfg.OpCmpLe: cCmpLe, cdfg.OpCmpGt: cCmpGt, cdfg.OpCmpGe: cCmpGe,
}

func (fc *fnCompiler) emitBlock(b *cdfg.Block) error {
	fc.blockPC[b] = int32(len(fc.out.code))
	fc.emit(cinstr{
		op: cBlock,
		a:  fc.c.cp.blockID[b],
		b:  int32(len(b.Instrs)),
	}, cfront.Pos{})
	terminated := false
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
			// The tree-walker keeps executing the rest of the block after a
			// mid-block Br/Jmp; the flat form jumps immediately. Reject the
			// (malformed) shape so EngineAuto falls back.
			return fmt.Errorf("bb%d: terminator %s before end of block", b.ID, in.Op)
		}
		if err := fc.emitInstr(in); err != nil {
			return fmt.Errorf("bb%d: %w", b.ID, err)
		}
		if i == len(b.Instrs)-1 && in.Op.IsTerminator() {
			terminated = true
		}
	}
	if !terminated {
		// Keep the tree-walker's exact runtime diagnostic for malformed
		// hand-built IR instead of refusing to compile it.
		fc.emit(cinstr{op: cTrap, a: int32(b.ID)}, cfront.Pos{})
	}
	return nil
}

func (fc *fnCompiler) emitInstr(in *cdfg.Instr) error {
	switch in.Op {
	case cdfg.OpNop:
		return nil
	case cdfg.OpMov, cdfg.OpNeg, cdfg.OpNot:
		dst, err := fc.wix(in.Dst)
		if err != nil {
			return err
		}
		a, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		op := cMov
		switch in.Op {
		case cdfg.OpNeg:
			op = cNeg
		case cdfg.OpNot:
			op = cNot
		}
		fc.emit(cinstr{op: op, dst: dst, a: a}, in.Pos)
	case cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul, cdfg.OpDiv, cdfg.OpRem,
		cdfg.OpAnd, cdfg.OpOr, cdfg.OpXor, cdfg.OpShl, cdfg.OpShr,
		cdfg.OpCmpEq, cdfg.OpCmpNe, cdfg.OpCmpLt, cdfg.OpCmpLe,
		cdfg.OpCmpGt, cdfg.OpCmpGe:
		dst, err := fc.wix(in.Dst)
		if err != nil {
			return err
		}
		a, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		b, err := fc.rix(in.B)
		if err != nil {
			return err
		}
		if fc.tryFuseBin(in, dst, a, b) {
			return nil
		}
		fc.emit(cinstr{op: binOps[in.Op], dst: dst, a: a, b: b}, in.Pos)
	case cdfg.OpLoad:
		dst, err := fc.wix(in.Dst)
		if err != nil {
			return err
		}
		idx, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		arr, err := fc.aix(in.Arr)
		if err != nil {
			return err
		}
		// Peephole: `t = i ± k; dst = arr[t]` fuses into an indexed-load
		// superinstruction when t is a single-read temp computed by the
		// immediately preceding instruction from frame registers.
		if dst >= 0 && fc.fusibleTemp(in.A) {
			if last := fc.lastEmitted(); last != nil &&
				(last.op == cAdd || last.op == cSub) &&
				last.dst == int32(in.A.Idx) && last.a >= 0 && last.b >= 0 {
				op := cLoadFAdd
				if last.op == cSub {
					op = cLoadFSub
				}
				ext := arr
				if arr < 0 {
					op += cLoadGAdd - cLoadFAdd
					ext = ^arr
				}
				*last = cinstr{op: op, dst: dst, a: last.a, b: last.b, ext: ext}
				// The fused instruction's only error path is the load's
				// bounds check, so it reports the load's position.
				fc.out.poss[len(fc.out.poss)-1] = in.Pos
				return nil
			}
		}
		fc.emit(cinstr{op: cLoad, dst: dst, a: idx, ext: arr}, in.Pos)
	case cdfg.OpStore:
		idx, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		val, err := fc.rix(in.B)
		if err != nil {
			return err
		}
		arr, err := fc.aix(in.Arr)
		if err != nil {
			return err
		}
		fc.emit(cinstr{op: cStore, a: idx, b: val, ext: arr}, in.Pos)
	case cdfg.OpCall:
		callee, ok := fc.c.funcIdx[in.Callee]
		if !ok {
			return fmt.Errorf("call to a function outside the program")
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("%s called with %d args, want %d",
				in.Callee.Name, len(in.Args), len(in.Callee.Params))
		}
		off := int32(len(fc.out.argPool))
		for ai, ar := range in.Args {
			var v int32
			var err error
			if in.Callee.Params[ai].IsArray {
				v, err = fc.aix(ar)
			} else {
				v, err = fc.rix(ar)
			}
			if err != nil {
				return fmt.Errorf("arg %d of %s: %w", ai, in.Callee.Name, err)
			}
			fc.out.argPool = append(fc.out.argPool, v)
		}
		dst := int32(dstNone)
		if in.Dst.Kind != cdfg.RefNone {
			var err error
			dst, err = fc.wix(in.Dst)
			if err != nil {
				return err
			}
		}
		fc.emit(cinstr{op: cCall, dst: dst, a: off, b: int32(len(in.Args)), ext: int32(callee)}, in.Pos)
	case cdfg.OpSend, cdfg.OpRecv:
		n, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		arr, err := fc.aix(in.Arr)
		if err != nil {
			return err
		}
		op := cSend
		if in.Op == cdfg.OpRecv {
			op = cRecv
		}
		fc.emit(cinstr{op: op, a: n, ext: arr, ext2: int32(in.Chan)}, in.Pos)
	case cdfg.OpOut:
		a, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		fc.emit(cinstr{op: cOut, a: a}, in.Pos)
	case cdfg.OpBr:
		if in.Then == nil || in.Else == nil {
			return fmt.Errorf("branch with missing target")
		}
		// Peephole: `CmpX t, a, b; Br t` fuses into one compare-and-branch
		// when t is a temp read only by this branch (leaving its register
		// unwritten is then unobservable). The compare is necessarily the
		// immediately preceding emitted instruction of this same block.
		if fc.fusibleTemp(in.A) && len(fc.out.code) > 0 {
			last := &fc.out.code[len(fc.out.code)-1]
			if fused, ok := brFused[last.op]; ok && last.dst == int32(in.A.Idx) {
				pc := len(fc.out.code) - 1
				last.op = fused
				fc.patches = append(fc.patches,
					patch{pc: pc, target: in.Then},
					patch{pc: pc, second: true, target: in.Else})
				return nil
			}
		}
		a, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		pc := len(fc.out.code)
		fc.patches = append(fc.patches,
			patch{pc: pc, target: in.Then},
			patch{pc: pc, second: true, target: in.Else})
		fc.emit(cinstr{op: cBr, a: a}, in.Pos)
	case cdfg.OpJmp:
		if in.Target == nil {
			return fmt.Errorf("jump with missing target")
		}
		fc.patches = append(fc.patches, patch{pc: len(fc.out.code), target: in.Target})
		fc.emit(cinstr{op: cJmp}, in.Pos)
	case cdfg.OpRet:
		if in.A.Kind == cdfg.RefNone {
			fc.emit(cinstr{op: cRetVoid}, in.Pos)
			return nil
		}
		a, err := fc.rix(in.A)
		if err != nil {
			return err
		}
		fc.emit(cinstr{op: cRet, a: a}, in.Pos)
	default:
		return fmt.Errorf("unknown opcode %v", in.Op)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Compilation cache

// compileCacheLimit bounds the pointer-keyed memoization map; beyond it the
// whole map is dropped (programs are few and compilation is cheap — the
// bound only prevents unbounded growth in long-running servers).
const compileCacheLimit = 64

var (
	compileMu    sync.Mutex
	compileCache = map[*cdfg.Program]compileEntry{}
)

type compileEntry struct {
	cp  *CompiledProgram
	err error
}

// CompileCached memoizes Compile keyed on program identity. The caller must
// not mutate the program's structure (blocks, instructions, slots) after
// the first compilation; annotation-phase Delay updates are fine because
// the compiled form never captures them.
func CompileCached(prog *cdfg.Program) (*CompiledProgram, error) {
	compileMu.Lock()
	if e, ok := compileCache[prog]; ok {
		compileMu.Unlock()
		return e.cp, e.err
	}
	compileMu.Unlock()
	cp, err := Compile(prog)
	compileMu.Lock()
	if len(compileCache) >= compileCacheLimit {
		compileCache = map[*cdfg.Program]compileEntry{}
	}
	compileCache[prog] = compileEntry{cp, err}
	compileMu.Unlock()
	return cp, err
}
