package interp

import (
	"maps"
	"slices"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/codegen"
)

// FuzzEngines feeds fuzzed source through the front end and, whenever it
// yields a valid program, requires the tree-walking and compiled engines to
// agree on the out stream, step count, block counts and error text. The
// step limit keeps fuzzed infinite loops bounded; limit trips must also
// agree (same ErrLimit at the same step).
//
// The ahead-of-time codegen tier is covered structurally: it must accept
// exactly the programs the compiled engine accepts, and its emitted Go
// source must always gofmt-parse (EngineSource runs the output through
// go/format). Fuzzed programs are not in the generated registry, so the
// generated engine itself cannot execute them here; the full three-way
// behavioral differential runs on the registered corpus in
// internal/codegen/registry.
func FuzzEngines(f *testing.F) {
	for _, src := range diffPrograms {
		f.Add(src)
	}
	f.Add(`int g[4]; void main() { g[1] = 2; out(g[1] / g[0]); }`)
	f.Add(`void main() { int i; for (i = 0; i; i++) out(i); }`)
	f.Add(`int f(int n) { return n ? f(n - 1) : 0; } void main() { out(f(9)); }`)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := cfront.Parse("f.c", src)
		if err != nil {
			return
		}
		u, err := cfront.Check(file)
		if err != nil {
			return
		}
		prog, err := cdfg.Lower(u)
		if err != nil {
			return
		}
		tree, err := NewEngine(prog, EngineTree)
		if err != nil {
			return
		}
		comp, err := NewEngine(prog, EngineCompiled)
		if err != nil {
			// Front-end output should always compile; a rejection here is a
			// compiler coverage bug worth surfacing.
			t.Fatalf("front-end program rejected by Compile: %v\nsource:\n%s", err, src)
		}
		if err := codegen.Validate(prog); err != nil {
			t.Fatalf("compiled engine accepts but codegen rejects: %v\nsource:\n%s", err, src)
		}
		if _, err := codegen.EngineSource(prog, "registry", "Fuzz"); err != nil {
			t.Fatalf("codegen emitted unparsable Go: %v\nsource:\n%s", err, src)
		}
		const limit = 200_000
		run := func(e Engine) error {
			e.EnableProfile()
			e.SetLimit(limit)
			return e.Run("main")
		}
		errT, errC := run(tree), run(comp)
		if (errT == nil) != (errC == nil) || (errT != nil && errT.Error() != errC.Error()) {
			t.Fatalf("error mismatch:\n  tree:     %v\n  compiled: %v\nsource:\n%s", errT, errC, src)
		}
		if !slices.Equal(tree.OutStream(), comp.OutStream()) {
			t.Fatalf("out mismatch: tree %v, compiled %v\nsource:\n%s",
				tree.OutStream(), comp.OutStream(), src)
		}
		if tree.StepCount() != comp.StepCount() {
			t.Fatalf("steps mismatch: tree %d, compiled %d\nsource:\n%s",
				tree.StepCount(), comp.StepCount(), src)
		}
		if !maps.Equal(tree.BlockCountsMap(), comp.BlockCountsMap()) {
			t.Fatalf("block count mismatch\nsource:\n%s", src)
		}
	})
}
