package interp

import (
	"context"
	"fmt"
	"sync"

	"ese/internal/cdfg"
	"ese/internal/diag"
)

// This file is the runtime side of the ahead-of-time codegen engine tier:
// the registry that maps a program's code fingerprint to its generated
// engine factory, and GenBase, the state/bookkeeping core every generated
// engine embeds. The generated code itself lives in
// internal/codegen/registry (emitted by `esegen -registry`); its per-block
// prologues replicate the tree-walker's observable order exactly —
// profile count, delay hook, step count, limit check, context check —
// so all three engine tiers agree bit-for-bit on Out/Steps/CyclesByPE
// and on error text.

// GenFactory builds a generated engine bound to a live program. The
// program must have the code fingerprint the factory was generated for;
// global sizes and initializers are read from it at construction and on
// Reset, which is how one generated engine serves every workload
// configuration of the same source template.
type GenFactory func(prog *cdfg.Program) Engine

var (
	genMu  sync.RWMutex
	genReg = make(map[cdfg.Fingerprint]GenFactory)

	genFPMu    sync.Mutex
	genFPCache = make(map[*cdfg.Program]cdfg.Fingerprint)
)

// genFPCacheLimit bounds the pointer-keyed fingerprint memoization, like
// the compile cache: beyond it the map is dropped wholesale.
const genFPCacheLimit = 64

// RegisterGen installs a generated engine factory under a full-hex code
// fingerprint. Called from init functions of generated code; a malformed
// key is a generator bug and panics loudly.
func RegisterGen(fpHex string, factory GenFactory) {
	var fp cdfg.Fingerprint
	if len(fpHex) != 2*len(fp) {
		panic(fmt.Sprintf("interp: RegisterGen: bad fingerprint %q", fpHex))
	}
	for i := 0; i < len(fp); i++ {
		hi, lo := hexVal(fpHex[2*i]), hexVal(fpHex[2*i+1])
		if hi < 0 || lo < 0 {
			panic(fmt.Sprintf("interp: RegisterGen: bad fingerprint %q", fpHex))
		}
		fp[i] = byte(hi<<4 | lo)
	}
	genMu.Lock()
	genReg[fp] = factory
	genMu.Unlock()
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// codeFingerprint memoizes Program.CodeFingerprint by pointer, since the
// TLM layer constructs one engine per process for the same program.
func codeFingerprint(prog *cdfg.Program) cdfg.Fingerprint {
	genFPMu.Lock()
	if fp, ok := genFPCache[prog]; ok {
		genFPMu.Unlock()
		return fp
	}
	genFPMu.Unlock()
	fp := prog.CodeFingerprint()
	genFPMu.Lock()
	if len(genFPCache) >= genFPCacheLimit {
		genFPCache = make(map[*cdfg.Program]cdfg.Fingerprint)
	}
	genFPCache[prog] = fp
	genFPMu.Unlock()
	return fp
}

// GeneratedFor returns the registered factory for the program's code
// fingerprint, or nil when no generated engine covers it.
func GeneratedFor(prog *cdfg.Program) GenFactory {
	genMu.RLock()
	f := genReg[codeFingerprint(prog)]
	genMu.RUnlock()
	return f
}

// GenBase is the runtime core of a generated engine: everything the
// Engine interface needs except Run, Reset and the function bodies, which
// the generator emits. All hot fields are exported because the generated
// code lives in another package. The per-block bookkeeping stays in
// struct fields (never hoisted into locals), so the engine state is
// coherent at every send/recv/onDelay callback exactly like the
// tree-walker's.
type GenBase struct {
	Prog   *cdfg.Program
	Blocks []*cdfg.Block // dense program-wide order (same as the compiled engine's)
	Out    []int32

	SendFn func(ch int, data []int32) error
	RecvFn func(ch int, buf []int32) error

	// DelayTab is indexed by dense block id; all zeros until SetDelays.
	DelayTab []float64
	// OnDelayFn is the effective per-block delay hook: non-nil only when
	// both SetDelays and SetOnDelay were called, mirroring the
	// tree-walker, which ignores the hook while no delays are installed.
	OnDelayFn func(delay float64) error
	onDelay   func(delay float64) error
	hasDelays bool

	Pend      float64
	Counts    []uint64 // dense block counts; nil unless EnableProfile
	NSteps    uint64
	Lim       uint64
	Ctx       context.Context
	Countdown uint64
}

// InitGen binds the base to a live program, building the dense block
// index in the compiled engine's numbering order.
func (g *GenBase) InitGen(prog *cdfg.Program) {
	g.Prog = prog
	n := prog.NumBlocks()
	g.Blocks = make([]*cdfg.Block, 0, n)
	for _, fn := range prog.Funcs {
		g.Blocks = append(g.Blocks, fn.Blocks...)
	}
	g.DelayTab = make([]float64, len(g.Blocks))
}

// ResetBase clears the out stream and every counter; generated Reset
// methods call it and then re-initialize their global state from Prog.
func (g *GenBase) ResetBase() {
	g.Out = g.Out[:0]
	g.NSteps = 0
	g.Countdown = 0
	g.Pend = 0
	for i := range g.Counts {
		g.Counts[i] = 0
	}
}

// Kind reports the generated tier.
func (g *GenBase) Kind() EngineKind { return EngineGen }

// OutStream returns the out() intrinsic's stream.
func (g *GenBase) OutStream() []int32 { return g.Out }

// StepCount returns the dynamic IR instruction count.
func (g *GenBase) StepCount() uint64 { return g.NSteps }

// BlockCountsMap converts the dense profile counters into the map form of
// the Engine contract; only executed blocks appear.
func (g *GenBase) BlockCountsMap() map[*cdfg.Block]uint64 {
	if g.Counts == nil {
		return nil
	}
	m := make(map[*cdfg.Block]uint64, len(g.Counts))
	for i, c := range g.Counts {
		if c != 0 {
			m[g.Blocks[i]] = c
		}
	}
	return m
}

// EnableProfile turns on per-block execution counting (idempotent).
func (g *GenBase) EnableProfile() {
	if g.Counts == nil {
		g.Counts = make([]uint64, len(g.Blocks))
	}
}

// SetLimit sets the dynamic step limit (0 = none).
func (g *GenBase) SetLimit(n uint64) { g.Lim = n }

// SetContext bounds execution by ctx.
func (g *GenBase) SetContext(ctx context.Context) { g.Ctx = ctx }

// SetChannels installs the send/recv intrinsics.
func (g *GenBase) SetChannels(send func(ch int, data []int32) error, recv func(ch int, buf []int32) error) {
	g.SendFn, g.RecvFn = send, recv
}

// SetDelays installs the annotated per-block delays into the dense table.
func (g *GenBase) SetDelays(dm map[*cdfg.Block]float64) {
	for i := range g.DelayTab {
		g.DelayTab[i] = 0
	}
	g.hasDelays = dm != nil
	if dm != nil {
		for i, b := range g.Blocks {
			g.DelayTab[i] = dm[b]
		}
	}
	g.installDelay()
}

// SetOnDelay switches to per-block delay delivery (see Engine).
func (g *GenBase) SetOnDelay(fn func(delay float64) error) {
	g.onDelay = fn
	g.installDelay()
}

func (g *GenBase) installDelay() {
	if g.hasDelays {
		g.OnDelayFn = g.onDelay
	} else {
		g.OnDelayFn = nil
	}
}

// TakePending returns and clears the pooled delay cycles.
func (g *GenBase) TakePending() float64 {
	p := g.Pend
	g.Pend = 0
	return p
}

// CtxCheck refills the countdown and translates the context state; the
// generated prologue calls it only when the countdown expires, keeping
// the hot path to one comparison.
func (g *GenBase) CtxCheck() error {
	g.Countdown = ctxCheckSteps
	return diag.FromContext(g.Ctx)
}

// ---------------------------------------------------------------------------
// Runtime helpers called from generated code. The error constructors
// reproduce the tree-walker's diagnostics byte-for-byte; the arithmetic
// helpers reproduce cfront.FoldBinary's division semantics.

// RtDiv is the IR division: x/0 folds to 0 and MinInt32/-1 to MinInt32,
// matching cfront.FoldBinary.
func RtDiv(a, b int32) int32 {
	if b == 0 {
		return 0
	}
	if a == -2147483648 && b == -1 {
		return a
	}
	return a / b
}

// RtRem is the IR remainder: x%0 folds to 0 and MinInt32%-1 to 0.
func RtRem(a, b int32) int32 {
	if b == 0 {
		return 0
	}
	if a == -2147483648 && b == -1 {
		return 0
	}
	return a % b
}

// RtBool converts a comparison result to the IR's 0/1 encoding.
func RtBool(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// GenNoFunc reports a missing entry function.
func GenNoFunc(name string) error {
	return fmt.Errorf("interp: no function %q", name)
}

// GenEntryParams reports an entry function that takes parameters.
func GenEntryParams(name string) error {
	return fmt.Errorf("interp: entry %q must take no parameters", name)
}

// GenOOB reports an array index out of range.
func GenOOB(pos string, idx int32, n int, fn string) error {
	return fmt.Errorf("interp: %s: index %d out of range [0,%d) in %s", pos, idx, n, fn)
}

// GenSendRange reports a send word count out of range.
func GenSendRange(pos string, n int32, ln int) error {
	return fmt.Errorf("interp: %s: send count %d out of range [0,%d]", pos, n, ln)
}

// GenRecvRange reports a recv word count out of range.
func GenRecvRange(pos string, n int32, ln int) error {
	return fmt.Errorf("interp: %s: recv count %d out of range [0,%d]", pos, n, ln)
}

// GenNoChan reports a send/recv without a channel binding.
func GenNoChan(pos, what string, ch int) error {
	return fmt.Errorf("interp: %s: %s on channel %d: process has no channel binding", pos, what, ch)
}

// GenFellThrough reports a block without a terminator.
func GenFellThrough(id int, fn string) error {
	return fmt.Errorf("interp: block bb%d of %s fell through without terminator", id, fn)
}

// GenInitScalar reads a scalar global's initial value from the live
// program.
func GenInitScalar(g *cdfg.Global) int32 {
	if len(g.Init) > 0 {
		return g.Init[0]
	}
	return 0
}

// GenInitArray (re)initializes an array global's backing from the live
// program, reusing the buffer across Resets when the size is unchanged.
func GenInitArray(buf []int32, g *cdfg.Global) []int32 {
	if int32(len(buf)) != g.Size {
		buf = make([]int32, g.Size)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	copy(buf, g.Init)
	return buf
}
