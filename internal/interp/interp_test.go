package interp

import (
	"errors"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
)

// compile lowers a source string all the way to IR.
func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

// run executes main() and returns the out() stream.
func run(t *testing.T, src string) []int32 {
	t.Helper()
	p := compile(t, src)
	m := New(p)
	m.Limit = 50_000_000
	if err := m.Run("main"); err != nil {
		t.Fatalf("Run: %v\nIR:\n%s", err, p.Dump())
	}
	return m.Out
}

func expectOut(t *testing.T, src string, want ...int32) {
	t.Helper()
	got := run(t, src)
	if len(got) != len(want) {
		t.Fatalf("out = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out = %v, want %v", got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	expectOut(t, `
int x;
void main() {
  x = 6;
  out(x * 7);
  out(x - 10);
  out(x / 4);
  out(x % 4);
  out(-x);
  out(~x);
  out(x << 2);
  out(x >> 1);
  out(x & 3);
  out(x | 9);
  out(x ^ 5);
}`, 42, -4, 1, 2, -6, -7, 24, 3, 2, 15, 3)
}

func TestComparisonsAndLogic(t *testing.T) {
	expectOut(t, `
void main() {
  int a = 3;
  int b = 5;
  out(a < b);
  out(a > b);
  out(a <= 3);
  out(a >= 4);
  out(a == 3);
  out(a != 3);
  out(!a);
  out(a < b && b < 10);
  out(a > b || b == 5);
  out(a < b ? 100 : 200);
  out(a > b ? 100 : 200);
}`, 1, 0, 1, 0, 1, 0, 0, 1, 1, 100, 200)
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	// Division guarded by && must not fault or change results when the
	// guard is false.
	expectOut(t, `
int calls;
int bump() { calls += 1; return 1; }
void main() {
  int x = 0;
  if (x != 0 && bump()) { out(99); }
  out(calls);
  if (x == 0 || bump()) { out(7); }
  out(calls);
}`, 0, 7, 0)
}

func TestLoops(t *testing.T) {
	expectOut(t, `
void main() {
  int s = 0;
  int i;
  for (i = 1; i <= 10; i++) s += i;
  out(s);
  s = 0;
  i = 0;
  while (i < 5) { s += 2; i++; }
  out(s);
  s = 0;
  i = 0;
  do { s++; i++; } while (i < 3);
  out(s);
}`, 55, 10, 3)
}

func TestBreakContinue(t *testing.T) {
	expectOut(t, `
void main() {
  int s = 0;
  int i;
  for (i = 0; i < 100; i++) {
    if (i == 5) break;
    if (i % 2 == 0) continue;
    s += i;
  }
  out(s);
  out(i);
}`, 4, 5) // 1 + 3
}

func TestArraysAndFunctions(t *testing.T) {
	expectOut(t, `
int tab[5] = {10, 20, 30, 40, 50};
int sum(int a[], int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) s += a[i];
  return s;
}
void scale(int a[], int n, int k) {
  int i;
  for (i = 0; i < n; i++) a[i] *= k;
}
void main() {
  out(sum(tab, 5));
  scale(tab, 5, 2);
  out(sum(tab, 5));
  int loc[4] = {1, 2, 3, 4};
  scale(loc, 4, 3);
  out(sum(loc, 4));
}`, 150, 300, 30)
}

func TestLocalZeroInit(t *testing.T) {
	expectOut(t, `
void main() {
  int x;
  int a[3];
  out(x);
  out(a[0] + a[1] + a[2]);
  int b[4] = {7};
  out(b[0]);
  out(b[3]);
}`, 0, 0, 7, 0)
}

func TestRecursion(t *testing.T) {
	expectOut(t, `
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
void main() { out(fib(12)); }`, 144)
}

func TestGlobalStatePersistsAcrossCalls(t *testing.T) {
	expectOut(t, `
int counter;
void tick() { counter += 1; }
void main() {
  tick(); tick(); tick();
  out(counter);
}`, 3)
}

func TestCompoundAssignOnArrayEvaluatesIndexOnce(t *testing.T) {
	expectOut(t, `
int a[4] = {0, 10, 20, 30};
int i;
int next() { i += 1; return i; }
void main() {
  a[next()] += 5;
  out(i);
  out(a[1]);
}`, 1, 15)
}

func TestWrapAroundArithmetic(t *testing.T) {
	expectOut(t, `
void main() {
  int big = 2147483647;
  out(big + 1);
  int m = -2147483647 - 1;
  out(m / -1);
  out(m % -1);
  out(5 / 0);
  out(5 % 0);
}`, -2147483648, -2147483648, 0, 0, 0)
}

func TestFallOffEndReturnsZero(t *testing.T) {
	expectOut(t, `
int f(int x) { if (x > 0) return 1; }
void main() { out(f(1)); out(f(-1)); }`, 1, 0)
}

func TestIndexOutOfRangeFaults(t *testing.T) {
	p := compile(t, `
int a[3];
void main() { int i = 7; a[i] = 1; }`)
	m := New(p)
	if err := m.Run("main"); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestStepLimit(t *testing.T) {
	p := compile(t, `void main() { while (1) {} }`)
	m := New(p)
	m.Limit = 1000
	err := m.Run("main")
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestResetRestoresGlobals(t *testing.T) {
	p := compile(t, `
int g = 5;
int a[2] = {1, 2};
void main() { g = 99; a[0] = 42; out(g); }`)
	m := New(p)
	if err := m.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	m.Reset()
	if m.Globals[0][0] != 5 || m.Globals[1][0] != 1 {
		t.Fatalf("globals after reset = %v", m.Globals)
	}
	if len(m.Out) != 0 || m.Steps != 0 {
		t.Fatalf("out/steps not reset: %v %d", m.Out, m.Steps)
	}
}

func TestSendRecvHooks(t *testing.T) {
	p := compile(t, `
int buf[4] = {1, 2, 3, 4};
int rbuf[4];
void main() {
  send(2, buf, 4);
  recv(3, rbuf, 4);
  out(rbuf[0] + rbuf[3]);
}`)
	m := New(p)
	var sentCh int
	var sent []int32
	m.Send = func(ch int, data []int32) error {
		sentCh = ch
		sent = append([]int32(nil), data...)
		return nil
	}
	m.Recv = func(ch int, buf []int32) error {
		for i := range buf {
			buf[i] = int32(ch * 10)
		}
		return nil
	}
	if err := m.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sentCh != 2 || len(sent) != 4 || sent[3] != 4 {
		t.Fatalf("send hook saw ch=%d data=%v", sentCh, sent)
	}
	if m.Out[0] != 60 {
		t.Fatalf("out = %v, want [60]", m.Out)
	}
}

func TestOnBlockHookSeesEveryBlock(t *testing.T) {
	p := compile(t, `
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 3; i++) s += i;
  out(s);
}`)
	m := New(p)
	count := 0
	m.OnBlock = func(b *cdfg.Block) error { count++; return nil }
	if err := m.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// entry + 4 head evals + 3 bodies + 3 posts + exit (exact shape may
	// vary, but the hook must fire more than once per loop iteration).
	if count < 8 {
		t.Fatalf("OnBlock fired %d times, want >= 8", count)
	}
	if m.Steps == 0 {
		t.Fatal("Steps not counted")
	}
}

func TestRunErrors(t *testing.T) {
	p := compile(t, `int f(int x) { return x; } void main() { out(f(1)); }`)
	m := New(p)
	if err := m.Run("missing"); err == nil {
		t.Error("missing entry accepted")
	}
	if err := m.Run("f"); err == nil {
		t.Error("entry with params accepted")
	}
	// Call with wrong arity through the API.
	if _, err := m.Call(p.Func("f"), nil); err == nil {
		t.Error("wrong arity accepted")
	}
	// Nil array argument.
	p2 := compile(t, `void g(int a[]) { a[0] = 1; } void main() { }`)
	m2 := New(p2)
	if _, err := m2.Call(p2.Func("g"), []Arg{{}}); err == nil {
		t.Error("nil array argument accepted")
	}
}

func TestNegativeSendCountFaults(t *testing.T) {
	p := compile(t, `
int b[4];
int n = -1;
void main() { send(0, b, n); }`)
	m := New(p)
	m.Send = func(ch int, data []int32) error { return nil }
	if err := m.Run("main"); err == nil {
		t.Error("negative send count accepted")
	}
}

func TestRecursionDepth(t *testing.T) {
	p := compile(t, `
int down(int n) { if (n == 0) return 0; return down(n - 1) + 1; }
void main() { out(down(5000)); }`)
	m := New(p)
	if err := m.Run("main"); err != nil {
		t.Fatalf("deep recursion failed: %v", err)
	}
	if m.Out[0] != 5000 {
		t.Fatalf("out = %v", m.Out)
	}
}
