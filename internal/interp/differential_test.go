package interp

import (
	"context"
	"maps"
	"slices"
	"testing"

	"ese/internal/cdfg"
)

// diffPrograms exercise every opcode, nested calls, recursion, arrays
// (local, global, parameters), globals, channels-free control flow, and the
// out() stream.
var diffPrograms = map[string]string{
	"arith": `
void main() {
  int a = 40; int b = 6;
  out(a + b); out(a - b); out(a * b); out(a / b); out(a % b);
  out(a & b); out(a | b); out(a ^ b); out(a << 2); out(a >> 2);
  out(-a); out(~a);
  out(a == b); out(a != b); out(a < b); out(a <= b); out(a > b); out(a >= b);
  out(b / 0); out(b % 0);
}`,
	"loops": `
int acc;
void main() {
  int i; int j;
  for (i = 0; i < 50; i++) {
    for (j = 0; j < i; j++) {
      if ((i ^ j) & 1) acc += i * j;
      else acc -= j;
    }
  }
  out(acc);
}`,
	"calls": `
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int sum(int a[], int n) {
  int s = 0; int i;
  for (i = 0; i < n; i++) s += a[i];
  return s;
}
int tab[8] = {3, 1, 4, 1, 5, 9, 2, 6};
void main() {
  int local[4];
  int i;
  for (i = 0; i < 4; i++) local[i] = fib(i + 6);
  out(sum(local, 4));
  out(sum(tab, 8));
  out(fib(15));
}`,
	"globals": `
int g = 7;
int garr[5];
void bump(int k) { g += k; garr[k % 5] = g; }
void main() {
  int i;
  for (i = 0; i < 20; i++) bump(i);
  out(g);
  for (i = 0; i < 5; i++) out(garr[i]);
}`,
	"shadow": `
int x = 1;
int twice(int x) { return x * 2; }
void main() {
  int local[3];
  local[0] = twice(x);
  local[1] = twice(local[0]);
  local[2] = x;
  out(local[0] + local[1] + local[2]);
}`,
}

// engines builds both engines for one program; the compiled build must
// succeed for front-end-generated IR.
func engines(t *testing.T, prog *cdfg.Program) (tree, comp Engine) {
	t.Helper()
	tree, err := NewEngine(prog, EngineTree)
	if err != nil {
		t.Fatalf("tree engine: %v", err)
	}
	comp, err = NewEngine(prog, EngineCompiled)
	if err != nil {
		t.Fatalf("compiled engine: %v", err)
	}
	if comp.Kind() != EngineCompiled {
		t.Fatalf("expected compiled engine, got %v", comp.Kind())
	}
	return tree, comp
}

// compare runs both engines through run() and requires identical Out,
// Steps, block counts and error text.
func compareEngines(t *testing.T, tree, comp Engine, run func(Engine) error) {
	t.Helper()
	errT := run(tree)
	errC := run(comp)
	if (errT == nil) != (errC == nil) || (errT != nil && errT.Error() != errC.Error()) {
		t.Fatalf("error mismatch:\n  tree:     %v\n  compiled: %v", errT, errC)
	}
	if !slices.Equal(tree.OutStream(), comp.OutStream()) {
		t.Fatalf("out mismatch:\n  tree:     %v\n  compiled: %v", tree.OutStream(), comp.OutStream())
	}
	if tree.StepCount() != comp.StepCount() {
		t.Fatalf("steps mismatch: tree %d, compiled %d", tree.StepCount(), comp.StepCount())
	}
	if !maps.Equal(tree.BlockCountsMap(), comp.BlockCountsMap()) {
		t.Fatalf("block count mismatch:\n  tree:     %v\n  compiled: %v",
			tree.BlockCountsMap(), comp.BlockCountsMap())
	}
}

func TestEnginesDifferential(t *testing.T) {
	for name, src := range diffPrograms {
		t.Run(name, func(t *testing.T) {
			prog := compile(t, src)
			tree, comp := engines(t, prog)
			compareEngines(t, tree, comp, func(e Engine) error {
				e.EnableProfile()
				e.SetLimit(50_000_000)
				return e.Run("main")
			})
		})
	}
}

// TestEnginesDifferentialPendingDelay checks the fused-delay path: both
// engines must pool bit-identical cycle totals in the same accumulation
// order.
func TestEnginesDifferentialPendingDelay(t *testing.T) {
	prog := compile(t, diffPrograms["loops"])
	// Synthesize per-block delays with enough variety to expose ordering
	// differences in float accumulation.
	dm := make(map[*cdfg.Block]float64)
	i := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			dm[b] = 0.1*float64(i%7) + float64(i%3)
			i++
		}
	}
	tree, comp := engines(t, prog)
	tree.SetDelays(dm)
	comp.SetDelays(dm)
	compareEngines(t, tree, comp, func(e Engine) error { return e.Run("main") })
	pt, pc := tree.TakePending(), comp.TakePending()
	if pt != pc {
		t.Fatalf("pending cycles mismatch: tree %v, compiled %v", pt, pc)
	}
	if pt == 0 {
		t.Fatal("expected nonzero pooled delay")
	}
	if tree.TakePending() != 0 || comp.TakePending() != 0 {
		t.Fatal("TakePending must clear the pool")
	}
}

// TestEnginesDifferentialOnDelay checks the per-block delivery mode: both
// engines must observe the same delay sequence, and an error from the hook
// must abort identically.
func TestEnginesDifferentialOnDelay(t *testing.T) {
	prog := compile(t, diffPrograms["globals"])
	dm := make(map[*cdfg.Block]float64)
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			dm[b] = float64(b.ID + 1)
		}
	}
	seq := func(e Engine) []float64 {
		var got []float64
		e.SetDelays(dm)
		e.SetOnDelay(func(d float64) error { got = append(got, d); return nil })
		if err := e.Run("main"); err != nil {
			t.Fatalf("%v: %v", e.Kind(), err)
		}
		return got
	}
	tree, comp := engines(t, prog)
	if st, sc := seq(tree), seq(comp); !slices.Equal(st, sc) {
		t.Fatalf("delay sequence mismatch: tree %d entries, compiled %d entries", len(st), len(sc))
	}
}

// TestEnginesDifferentialLimit checks that the step limit trips at the same
// point with the same error.
func TestEnginesDifferentialLimit(t *testing.T) {
	prog := compile(t, diffPrograms["loops"])
	for _, limit := range []uint64{1, 10, 100, 1000} {
		tree, comp := engines(t, prog)
		compareEngines(t, tree, comp, func(e Engine) error {
			e.SetLimit(limit)
			return e.Run("main")
		})
	}
}

// TestEnginesDifferentialCancel checks that an already-cancelled context
// aborts both engines identically (at the first block boundary).
func TestEnginesDifferentialCancel(t *testing.T) {
	prog := compile(t, diffPrograms["loops"])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree, comp := engines(t, prog)
	compareEngines(t, tree, comp, func(e Engine) error {
		e.SetContext(ctx)
		return e.Run("main")
	})
	if tree.StepCount() == 0 {
		t.Fatal("expected the first block's steps to be counted before the abort")
	}
}

// TestEnginesDifferentialRuntimeErrors checks that runtime faults produce
// byte-identical error messages.
func TestEnginesDifferentialRuntimeErrors(t *testing.T) {
	faults := map[string]string{
		"oob-load":  `int tab[4]; void main() { int i = 9; out(tab[i]); }`,
		"oob-store": `int tab[4]; void main() { int i = 0 - 1; tab[i] = 3; }`,
		"no-chan":   `int buf[4]; void main() { send(0, buf, 4); }`,
		"no-main":   `void other() { out(1); }`,
	}
	for name, src := range faults {
		t.Run(name, func(t *testing.T) {
			prog := compile(t, src)
			tree, comp := engines(t, prog)
			compareEngines(t, tree, comp, func(e Engine) error { return e.Run("main") })
		})
	}
}

// TestEnginesDifferentialChannels checks send/recv intrinsics under both
// engines with an in-test channel binding.
func TestEnginesDifferentialChannels(t *testing.T) {
	src := `
int buf[8];
void main() {
  int i;
  for (i = 0; i < 8; i++) buf[i] = i * i;
  send(2, buf, 8);
  recv(3, buf, 4);
  for (i = 0; i < 8; i++) out(buf[i]);
}`
	prog := compile(t, src)
	bind := func(e Engine) (sent *[]int32) {
		var got []int32
		e.SetChannels(
			func(ch int, data []int32) error {
				got = append(got, int32(ch))
				got = append(got, data...)
				return nil
			},
			func(ch int, buf []int32) error {
				for i := range buf {
					buf[i] = int32(ch*100 + i)
				}
				return nil
			})
		return &got
	}
	tree, comp := engines(t, prog)
	st, sc := bind(tree), bind(comp)
	compareEngines(t, tree, comp, func(e Engine) error { return e.Run("main") })
	if !slices.Equal(*st, *sc) {
		t.Fatalf("send payload mismatch:\n  tree:     %v\n  compiled: %v", *st, *sc)
	}
}

// TestCompiledReset checks that a reset machine replays identically and
// reuses its frame pool.
func TestCompiledReset(t *testing.T) {
	prog := compile(t, diffPrograms["calls"])
	e, err := NewEngine(prog, EngineCompiled)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableProfile()
	if err := e.Run("main"); err != nil {
		t.Fatal(err)
	}
	out1 := slices.Clone(e.OutStream())
	steps1 := e.StepCount()
	counts1 := maps.Clone(e.BlockCountsMap())
	e.Reset()
	if e.StepCount() != 0 || len(e.OutStream()) != 0 {
		t.Fatal("Reset did not clear run state")
	}
	if err := e.Run("main"); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(out1, e.OutStream()) || steps1 != e.StepCount() ||
		!maps.Equal(counts1, e.BlockCountsMap()) {
		t.Fatal("second run after Reset diverged from the first")
	}
}

// TestCompileFallbackShapes checks that IR shapes outside the flat
// encoding are rejected at compile time and EngineAuto falls back.
func TestCompileFallbackShapes(t *testing.T) {
	mkProg := func(mut func(fn *cdfg.Function)) *cdfg.Program {
		prog := compile(t, `void main() { out(1); }`)
		mut(prog.Funcs[0])
		return prog
	}
	cases := map[string]func(fn *cdfg.Function){
		"scalar-slot-as-array": func(fn *cdfg.Function) {
			fn.Slots = append(fn.Slots, &cdfg.Slot{Name: "x", Size: 1})
			si := len(fn.Slots) - 1
			b := fn.Blocks[0]
			b.Instrs = append([]cdfg.Instr{{
				Op: cdfg.OpLoad, Dst: cdfg.Temp(0), A: cdfg.Const(0), Arr: cdfg.SlotRef(si),
			}}, b.Instrs...)
		},
		"no-terminator": func(fn *cdfg.Function) {
			b := fn.Blocks[0]
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		},
		"mid-block-jmp": func(fn *cdfg.Function) {
			b := fn.Blocks[0]
			b.Instrs = append([]cdfg.Instr{{Op: cdfg.OpJmp, Target: b}}, b.Instrs...)
		},
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			prog := mkProg(mut)
			if name == "no-terminator" {
				// Removing the terminator still compiles (the trap
				// instruction covers it); only assert equivalence.
				tree, _ := NewEngine(prog, EngineTree)
				comp, err := NewEngine(prog, EngineCompiled)
				if err != nil {
					t.Skipf("compile rejected: %v", err)
				}
				compareEngines(t, tree, comp, func(e Engine) error { return e.Run("main") })
				return
			}
			if _, err := Compile(prog); err == nil {
				t.Fatal("expected compile rejection")
			}
			e, err := NewEngine(prog, EngineAuto)
			if err != nil {
				t.Fatalf("auto engine: %v", err)
			}
			if e.Kind() != EngineTree {
				t.Fatalf("auto engine should fall back to tree, got %v", e.Kind())
			}
		})
	}
}

// TestCompileCached checks memoization on program identity.
func TestCompileCached(t *testing.T) {
	prog := compile(t, diffPrograms["arith"])
	a, err := CompileCached(prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCached(prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("CompileCached did not memoize on program identity")
	}
	if a.NumBlocks() != prog.NumBlocks() {
		t.Fatalf("dense numbering covers %d blocks, program has %d", a.NumBlocks(), prog.NumBlocks())
	}
}
