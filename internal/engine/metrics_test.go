package engine

import (
	"strings"
	"testing"

	"ese/internal/core"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/tlm"
)

const metricsSrc = `
int buf[4];
void main() {
  int i;
  for (i = 0; i < 4; i++) buf[i] = i * 3;
  send(0, buf, 4);
}
void worker() {
  int w[4];
  recv(0, w, 4);
  out(w[3]);
}
`

// TestPipelineMetricsSnapshot checks the full observability wiring: every
// stage a run passes through leaves a wall-clock histogram, the annotation
// pool leaves its counters, the simulation leaves the kernel/TLM counters,
// and the snapshot folds in the cache's hit/miss/entry numbers.
func TestPipelineMetricsSnapshot(t *testing.T) {
	pl := New(Options{})
	prog, err := pl.Compile("m.c", metricsSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d := &platform.Design{
		Name:    "m",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{
			{Name: "cpu", Kind: platform.Processor, Entry: "main", PUM: mb},
			{Name: "acc", Kind: platform.HWUnit, Entry: "worker", PUM: pum.CustomHW("acc", 100_000_000)},
		},
	}
	res, err := pl.Simulate(d, tlm.Options{Timed: true, WaitMode: tlm.WaitAtTransactions, Detail: core.FullDetail})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	snap := pl.MetricsSnapshot()
	for _, h := range []string{
		"pipeline.stage.parse.seconds",
		"pipeline.stage.check.seconds",
		"pipeline.stage.lower.seconds",
		"pipeline.stage.annotate.seconds",
		"pipeline.stage.simulate.seconds",
		"est.pool.worker.blocks",
	} {
		st, ok := snap.Histograms[h]
		if !ok || st.Count == 0 {
			t.Errorf("histogram %q missing or empty", h)
		}
	}
	if snap.Counters["est.blocks"] == 0 {
		t.Error("est.blocks counter is zero")
	}
	if snap.Counters["tlm.steps"] != res.Steps {
		t.Errorf("tlm.steps = %d, want %d", snap.Counters["tlm.steps"], res.Steps)
	}
	if snap.Counters["sim.dispatches"] == 0 {
		t.Error("sim.dispatches counter is zero")
	}
	// Cache counters are folded in: the two annotations (one per PE) at
	// least miss once, and re-annotating the same PE hits.
	if snap.Counters["cache.sched.misses"] == 0 {
		t.Error("cache.sched.misses is zero after annotation")
	}
	if snap.Gauges["cache.entries.sched"] == 0 {
		t.Error("cache.entries.sched gauge is zero")
	}
	pl.Annotate(prog, mb)
	snap2 := pl.MetricsSnapshot()
	if snap2.Counters["cache.est.hits"] == 0 {
		t.Error("re-annotation did not hit the estimate cache")
	}
	// The snapshot renders deterministically and mentions the stages.
	if s := snap2.String(); !strings.Contains(s, "pipeline.stage.annotate.seconds") {
		t.Errorf("snapshot render missing stage metric:\n%s", s)
	}
}

// TestCacheLimitEvicts pins the bounded-cache contract: entries beyond the
// limit evict a resident entry and count it.
func TestCacheLimitEvicts(t *testing.T) {
	pl := New(Options{CacheLimit: 4})
	prog, err := pl.Compile("m.c", metricsSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Two distinct models: more unique (block, model) keys than the limit.
	pl.Annotate(prog, pum.MicroBlaze())
	pl.Annotate(prog, pum.DualIssue())
	st := pl.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with limit 4 (stats %+v)", st)
	}
	snap := pl.MetricsSnapshot()
	if snap.Counters["cache.evictions"] != st.Evictions {
		t.Errorf("snapshot evictions %d != stats %d", snap.Counters["cache.evictions"], st.Evictions)
	}
	if got := snap.Gauges["cache.entries.sched"]; got > 4 {
		t.Errorf("sched entries %d exceed limit 4", got)
	}
	if got := snap.Gauges["cache.entries.est"]; got > 4 {
		t.Errorf("est entries %d exceed limit 4", got)
	}
}
