// Package engine reifies the estimation flow as a staged pipeline:
//
//	Parse → Check → Lower → Simplify → Annotate → Build/Simulate
//
// Each stage is an explicit method consuming and producing a typed
// artifact (cfront.File, cfront.Unit, cdfg.Program, annotate.Annotated,
// tlm.Result), so callers can enter and leave the pipeline at any seam.
// A Pipeline owns a content-addressed schedule/estimate cache (see
// core.Cache) and a bounded annotation worker pool: constructing one
// pipeline and pushing a multi-configuration retarget sweep through it
// computes every Algorithm 1 schedule exactly once — the cheap
// re-annotation the paper's Table 1 sells ("Anno." column) — while the
// statistical Algorithm 2 composition is recomputed per configuration.
//
// The pipeline is the architectural seam the rest of the system hangs off:
// internal/experiments drives its sweeps through one Pipeline, the CLIs
// construct one each, and the public ese package keeps its historical
// one-shot functions as thin wrappers over a process-wide default
// pipeline.
package engine

import (
	"time"

	"ese/internal/annotate"
	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/core"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/tlm"
)

// Options configures a Pipeline.
type Options struct {
	// Simplify runs compiler-style CFG cleanup (jump threading, block
	// merging) between Lower and Annotate, growing basic blocks.
	Simplify bool
	// Workers bounds the annotation worker pool; zero or negative uses
	// GOMAXPROCS, 1 annotates serially.
	Workers int
	// NoCache disables schedule/estimate memoization.
	NoCache bool
	// Detail selects the PUM sub-models Annotate applies; nil means
	// core.FullDetail (the paper's full Algorithm 2). AnnotateDetail
	// overrides it per call.
	Detail *core.Detail
}

// Pipeline is a staged estimation flow with a shared schedule/estimate
// cache. Construct one per sweep (or one per process) and reuse it: the
// cache is keyed on content fingerprints, so recompiling the same source
// or retargeting the statistical models still hits. Safe for concurrent
// use by multiple goroutines.
type Pipeline struct {
	opts   Options
	detail core.Detail
	cache  *core.Cache
}

// New constructs a pipeline with the given options.
func New(opts Options) *Pipeline {
	pl := &Pipeline{opts: opts, detail: core.FullDetail}
	if opts.Detail != nil {
		pl.detail = *opts.Detail
	}
	if !opts.NoCache {
		pl.cache = core.NewCache()
	}
	return pl
}

// Detail returns the detail level Annotate applies.
func (pl *Pipeline) Detail() core.Detail { return pl.detail }

// Stats returns the cache hit/miss counters accumulated so far (zero
// counters when the cache is disabled).
func (pl *Pipeline) Stats() core.CacheStats {
	if pl.cache == nil {
		return core.CacheStats{}
	}
	return pl.cache.Stats()
}

// estOpts bundles the pipeline's worker bound and cache for the core
// estimator.
func (pl *Pipeline) estOpts() core.EstOptions {
	return core.EstOptions{Workers: pl.opts.Workers, Cache: pl.cache}
}

// ---------------------------------------------------------------- Front end

// Parse runs the lexing/parsing stage on one C-subset source.
func (pl *Pipeline) Parse(name, src string) (*cfront.File, error) {
	return cfront.Parse(name, src)
}

// Check runs semantic analysis on a parsed file.
func (pl *Pipeline) Check(f *cfront.File) (*cfront.Unit, error) {
	return cfront.Check(f)
}

// Lower translates a checked unit into CDFG form.
func (pl *Pipeline) Lower(u *cfront.Unit) (*cdfg.Program, error) {
	return cdfg.Lower(u)
}

// Simplify runs the CFG cleanup stage in place and returns the program.
func (pl *Pipeline) Simplify(prog *cdfg.Program) *cdfg.Program {
	cdfg.SimplifyProgram(prog)
	return prog
}

// Compile chains Parse, Check, Lower and (when configured) Simplify.
func (pl *Pipeline) Compile(name, src string) (*cdfg.Program, error) {
	f, err := pl.Parse(name, src)
	if err != nil {
		return nil, err
	}
	u, err := pl.Check(f)
	if err != nil {
		return nil, err
	}
	prog, err := pl.Lower(u)
	if err != nil {
		return nil, err
	}
	if pl.opts.Simplify {
		pl.Simplify(prog)
	}
	return prog, nil
}

// ---------------------------------------------------------------- Annotate

// Annotate estimates every basic block of the program against the PE
// model at the pipeline's detail level, through the worker pool and the
// schedule/estimate cache.
func (pl *Pipeline) Annotate(prog *cdfg.Program, p *pum.PUM) *annotate.Annotated {
	return pl.AnnotateDetail(prog, p, pl.detail)
}

// AnnotateDetail is Annotate with an explicit detail level (used by the
// PUM-detail ablation).
func (pl *Pipeline) AnnotateDetail(prog *cdfg.Program, p *pum.PUM, detail core.Detail) *annotate.Annotated {
	return annotate.AnnotateWith(prog, p, detail, pl.estOpts())
}

// ------------------------------------------------------------- Build / Sim

// Delays annotates a design's program once per PE through the cache and
// returns the per-PE delay maps the timed TLM consumes, plus the
// wall-clock annotation time (the paper's "Anno." column).
func (pl *Pipeline) Delays(d *platform.Design, detail core.Detail) (map[string]map[*cdfg.Block]float64, time.Duration) {
	start := time.Now()
	out := make(map[string]map[*cdfg.Block]float64, len(d.PEs))
	for _, pe := range d.PEs {
		out[pe.Name] = pl.AnnotateDetail(d.Program, pe.PUM, detail).Delays()
	}
	return out, time.Since(start)
}

// Simulate runs the TLM of a design. For timed runs the annotation phase
// goes through the pipeline's cache and worker pool, so a sweep that
// simulates several configurations of one program reuses every schedule
// after the first.
func (pl *Pipeline) Simulate(d *platform.Design, opts tlm.Options) (*tlm.Result, error) {
	if opts.Timed && opts.Delays == nil {
		opts.Delays, opts.AnnoTime = pl.Delays(d, opts.Detail)
	}
	return tlm.Run(d, opts)
}

// RunFunctional executes the untimed TLM of a design.
func (pl *Pipeline) RunFunctional(d *platform.Design) (*tlm.Result, error) {
	return pl.Simulate(d, tlm.Options{Timed: false})
}

// RunTimed executes the timed TLM of a design with the pipeline's detail
// level and transaction-boundary waits, the configuration the paper
// evaluates.
func (pl *Pipeline) RunTimed(d *platform.Design) (*tlm.Result, error) {
	return pl.Simulate(d, tlm.Options{
		Timed:    true,
		WaitMode: tlm.WaitAtTransactions,
		Detail:   pl.detail,
	})
}
