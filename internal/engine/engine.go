// Package engine reifies the estimation flow as a staged pipeline:
//
//	Parse → Check → Lower → Simplify → Annotate → Build/Simulate
//
// Each stage is an explicit method consuming and producing a typed
// artifact (cfront.File, cfront.Unit, cdfg.Program, annotate.Annotated,
// tlm.Result), so callers can enter and leave the pipeline at any seam.
// A Pipeline owns a content-addressed schedule/estimate cache (see
// core.Cache) and a bounded annotation worker pool: constructing one
// pipeline and pushing a multi-configuration retarget sweep through it
// computes every Algorithm 1 schedule exactly once — the cheap
// re-annotation the paper's Table 1 sells ("Anno." column) — while the
// statistical Algorithm 2 composition is recomputed per configuration.
//
// The pipeline is the architectural seam the rest of the system hangs off:
// internal/experiments drives its sweeps through one Pipeline, the CLIs
// construct one each, and the public ese package keeps its historical
// one-shot functions as thin wrappers over a process-wide default
// pipeline.
package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ese/internal/annotate"
	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/interp"
	"ese/internal/metrics"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/tlm"
	"ese/internal/verify"
)

// Options configures a Pipeline.
type Options struct {
	// Simplify runs compiler-style CFG cleanup (jump threading, block
	// merging) between Lower and Annotate, growing basic blocks.
	Simplify bool
	// Workers bounds the annotation worker pool; zero or negative uses
	// GOMAXPROCS, 1 annotates serially.
	Workers int
	// NoCache disables schedule/estimate memoization.
	NoCache bool
	// CacheLimit bounds the schedule and estimate maps to that many
	// entries each (random-replacement beyond it, counted as evictions);
	// zero or negative means unbounded.
	CacheLimit int
	// Detail selects the PUM sub-models Annotate applies; nil means
	// core.FullDetail (the paper's full Algorithm 2). AnnotateDetail
	// overrides it per call.
	Detail *core.Detail
	// Strict makes annotation fail (through the Ctx entry points) when the
	// PUM does not map an op class the program uses, instead of degrading
	// to fallback latencies.
	Strict bool
	// FallbackCycles is the stage-0 latency charged to unmapped op classes
	// in graceful-degradation mode; zero or negative selects
	// core.DefaultFallbackCycles.
	FallbackCycles int
	// Timeout, when positive, arms a wall-clock watchdog on every Ctx entry
	// point (CompileCtx, AnnotateCtx, SimulateCtx): the call is abandoned
	// with diag.ErrDeadline once that much host time has elapsed.
	Timeout time.Duration
	// Engine is the pipeline-wide default execution engine for Simulate
	// runs: interp.EngineAuto (the zero value) uses the flat compiled
	// engine with tree-walker fallback. A per-run tlm.Options.Engine other
	// than auto takes precedence.
	Engine interp.EngineKind
	// Verify runs the static IR verifier after the front end (CompileCtx),
	// the PUM lint before annotation (AnnotateCtx and friends), and the
	// full design verification before simulation (SimulateCtx). Findings
	// land in Diagnostics(); Error-severity findings fail the stage.
	Verify bool
	// Werror promotes verification Warnings (e.g. op-mapping coverage
	// gaps) to stage failures. Only meaningful with Verify.
	Werror bool
	// Cache, when non-nil, injects a shared schedule/estimate cache
	// instead of the per-pipeline one New would otherwise construct.
	// Several pipelines (one per job in the esed daemon) can point at one
	// process-wide handle so every request shares warmed schedules.
	// NoCache still wins; CacheLimit is ignored for an injected cache
	// (the owner chose its bound).
	Cache *core.Cache
	// Metrics, when non-nil, injects a shared metric registry instead of
	// a per-pipeline one, letting a long-lived process aggregate stage
	// timings and simulation counters across every pipeline it builds.
	Metrics *metrics.Registry
	// StageHook, when non-nil, is called after every pipeline stage
	// completes with the stage tag and its wall-clock duration — the
	// progress-streaming seam (esed's SSE endpoint). It is invoked
	// synchronously on the running goroutine and must be cheap and
	// goroutine-safe.
	StageHook func(stage diag.Stage, d time.Duration)
}

// Stats aggregates the pipeline's observability counters: the
// schedule/estimate cache hit ratios (embedded) plus the graceful-
// degradation tallies accumulated across every annotation run.
type Stats struct {
	core.CacheStats
	// UnmappedOps counts operations estimated with fallback latency
	// because the PUM does not map their class.
	UnmappedOps uint64
	// DegradedBlocks counts basic blocks containing at least one such op.
	DegradedBlocks uint64
}

// Pipeline is a staged estimation flow with a shared schedule/estimate
// cache. Construct one per sweep (or one per process) and reuse it: the
// cache is keyed on content fingerprints, so recompiling the same source
// or retargeting the statistical models still hits. Safe for concurrent
// use by multiple goroutines.
type Pipeline struct {
	opts    Options
	detail  core.Detail
	cache   *core.Cache
	diags   diag.List
	metrics *metrics.Registry

	unmappedOps    atomic.Uint64
	degradedBlocks atomic.Uint64
}

// New constructs a pipeline with the given options.
func New(opts Options) *Pipeline {
	pl := &Pipeline{opts: opts, detail: core.FullDetail, metrics: opts.Metrics}
	if pl.metrics == nil {
		pl.metrics = metrics.NewRegistry()
	}
	if opts.Detail != nil {
		pl.detail = *opts.Detail
	}
	if !opts.NoCache {
		if opts.Cache != nil {
			pl.cache = opts.Cache
		} else {
			pl.cache = core.NewCacheLimit(opts.CacheLimit)
		}
	}
	return pl
}

// Detail returns the detail level Annotate applies.
func (pl *Pipeline) Detail() core.Detail { return pl.detail }

// Stats returns the counters accumulated so far: cache hits/misses (zero
// when the cache is disabled) and the graceful-degradation tallies.
func (pl *Pipeline) Stats() Stats {
	s := Stats{
		UnmappedOps:    pl.unmappedOps.Load(),
		DegradedBlocks: pl.degradedBlocks.Load(),
	}
	if pl.cache != nil {
		s.CacheStats = pl.cache.Stats()
	}
	return s
}

// Diagnostics returns the pipeline's diagnostic sink: structured,
// stage-tagged warnings and errors collected by every run through the
// pipeline (degraded blocks, cancellations, contained panics).
func (pl *Pipeline) Diagnostics() *diag.List { return &pl.diags }

// Metrics returns the pipeline's metric registry: per-stage wall-clock
// histograms ("pipeline.stage.<stage>.seconds"), the annotation pool's
// counters ("est.*"), and — when the pipeline simulates — the TLM's
// counters ("tlm.*", "sim.*"). See DESIGN.md, "Observability".
func (pl *Pipeline) Metrics() *metrics.Registry { return pl.metrics }

// MetricsSnapshot returns a point-in-time view of every pipeline metric,
// folding in the schedule/estimate cache counters ("cache.*") and the
// graceful-degradation tallies so one call captures the whole picture.
func (pl *Pipeline) MetricsSnapshot() metrics.Snapshot {
	snap := pl.metrics.Snapshot()
	if pl.cache != nil {
		cs := pl.cache.Stats()
		snap.Counters["cache.sched.hits"] = cs.SchedHits
		snap.Counters["cache.sched.misses"] = cs.SchedMisses
		snap.Counters["cache.est.hits"] = cs.EstHits
		snap.Counters["cache.est.misses"] = cs.EstMisses
		snap.Counters["cache.evictions"] = cs.Evictions
		sched, est := pl.cache.Len()
		snap.Gauges["cache.entries.sched"] = int64(sched)
		snap.Gauges["cache.entries.est"] = int64(est)
	}
	snap.Counters["degrade.unmapped_ops"] = pl.unmappedOps.Load()
	snap.Counters["degrade.blocks"] = pl.degradedBlocks.Load()
	return snap
}

// timeStage records one stage execution into the registry and notifies
// the stage hook, when one is installed.
func (pl *Pipeline) timeStage(stage diag.Stage, start time.Time) {
	d := time.Since(start)
	pl.metrics.Histogram("pipeline.stage." + string(stage) + ".seconds").
		Observe(d.Seconds())
	if pl.opts.StageHook != nil {
		pl.opts.StageHook(stage, d)
	}
}

// estOpts bundles the pipeline's worker bound, cache, degradation policy
// and diagnostic sink for the core estimator.
func (pl *Pipeline) estOpts() core.EstOptions {
	return core.EstOptions{
		Workers:        pl.opts.Workers,
		Cache:          pl.cache,
		Strict:         pl.opts.Strict,
		FallbackCycles: pl.opts.FallbackCycles,
		Diags:          &pl.diags,
		Metrics:        pl.metrics,
	}
}

// withTimeout applies the pipeline's watchdog to a context.
func (pl *Pipeline) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if pl.opts.Timeout > 0 {
		return context.WithTimeout(ctx, pl.opts.Timeout)
	}
	return ctx, func() {}
}

// runVerify records verification findings in the pipeline's diagnostic
// sink and returns the first failing one under the Werror convention
// (Errors always fail, Warnings fail only with Options.Werror). A nil
// return means the artifact may proceed.
func (pl *Pipeline) runVerify(ds []diag.Diagnostic) error {
	start := time.Now()
	for _, d := range ds {
		pl.diags.Add(d)
	}
	pl.timeStage(diag.StageVerify, start)
	if d, bad := verify.Failure(ds, pl.opts.Werror); bad {
		return d
	}
	return nil
}

// recordDegradation folds one annotation's degradation tallies into the
// pipeline counters.
func (pl *Pipeline) recordDegradation(a *annotate.Annotated) {
	if a == nil {
		return
	}
	if n := a.UnmappedOps(); n > 0 {
		pl.unmappedOps.Add(uint64(n))
	}
	if n := a.DegradedBlocks(); n > 0 {
		pl.degradedBlocks.Add(uint64(n))
	}
}

// ---------------------------------------------------------------- Front end

// Parse runs the lexing/parsing stage on one C-subset source.
func (pl *Pipeline) Parse(name, src string) (*cfront.File, error) {
	return cfront.Parse(name, src)
}

// Check runs semantic analysis on a parsed file.
func (pl *Pipeline) Check(f *cfront.File) (*cfront.Unit, error) {
	return cfront.Check(f)
}

// Lower translates a checked unit into CDFG form.
func (pl *Pipeline) Lower(u *cfront.Unit) (*cdfg.Program, error) {
	return cdfg.Lower(u)
}

// Simplify runs the CFG cleanup stage in place and returns the program.
func (pl *Pipeline) Simplify(prog *cdfg.Program) *cdfg.Program {
	cdfg.SimplifyProgram(prog)
	return prog
}

// Compile chains Parse, Check, Lower and (when configured) Simplify.
func (pl *Pipeline) Compile(name, src string) (*cdfg.Program, error) {
	return pl.CompileCtx(context.Background(), name, src)
}

// CompileCtx is Compile with panic containment and cancellation: every
// front-end stage runs under a recover guard, so a malformed input that
// trips a bug in the parser or lowerer surfaces as a stage-tagged
// *diag.PanicError instead of killing the process.
func (pl *Pipeline) CompileCtx(ctx context.Context, name, src string) (*cdfg.Program, error) {
	ctx, cancel := pl.withTimeout(ctx)
	defer cancel()
	var (
		f    *cfront.File
		u    *cfront.Unit
		prog *cdfg.Program
	)
	stages := []struct {
		stage diag.Stage
		run   func() error
	}{
		{diag.StageParse, func() (err error) { f, err = cfront.Parse(name, src); return }},
		{diag.StageCheck, func() (err error) { u, err = cfront.Check(f); return }},
		{diag.StageLower, func() (err error) { prog, err = cdfg.Lower(u); return }},
		{diag.StageSimplify, func() error {
			if pl.opts.Simplify {
				cdfg.SimplifyProgram(prog)
			}
			return nil
		}},
		{diag.StageVerify, func() error {
			if !pl.opts.Verify {
				return nil
			}
			return pl.runVerify(verify.Program(prog))
		}},
	}
	for _, s := range stages {
		err := diag.FromContext(ctx)
		if err == nil {
			start := time.Now()
			err = diag.Guard(s.stage, s.run)
			pl.timeStage(s.stage, start)
		}
		if err != nil {
			var d diag.Diagnostic
			if errors.As(err, &d) {
				// Verification failures arrive as ready-made diagnostics,
				// already recorded by runVerify.
				return nil, d
			}
			d = diag.Diagnostic{Severity: diag.Error, Stage: s.stage, Msg: err.Error(), Err: err}
			pl.diags.Add(d)
			return nil, d
		}
	}
	return prog, nil
}

// ---------------------------------------------------------------- Annotate

// Annotate estimates every basic block of the program against the PE
// model at the pipeline's detail level, through the worker pool and the
// schedule/estimate cache. Unmapped op classes always degrade to fallback
// latencies on this legacy path; use AnnotateCtx for strict mode.
func (pl *Pipeline) Annotate(prog *cdfg.Program, p *pum.PUM) *annotate.Annotated {
	return pl.AnnotateDetail(prog, p, pl.detail)
}

// AnnotateDetail is Annotate with an explicit detail level (used by the
// PUM-detail ablation).
func (pl *Pipeline) AnnotateDetail(prog *cdfg.Program, p *pum.PUM, detail core.Detail) *annotate.Annotated {
	start := time.Now()
	a := annotate.AnnotateWith(prog, p, detail, pl.estOpts())
	pl.timeStage(diag.StageAnnotate, start)
	pl.recordDegradation(a)
	return a
}

// AnnotateCtx estimates every basic block under a context with panic
// containment: cancellation or deadline expiry aborts the worker fan-out
// with diag.ErrCanceled/ErrDeadline, strict mode (Options.Strict) rejects
// PUMs that do not map every op class the program uses, and a panic inside
// the estimator is returned as a stage-tagged *diag.PanicError.
func (pl *Pipeline) AnnotateCtx(ctx context.Context, prog *cdfg.Program, p *pum.PUM) (*annotate.Annotated, error) {
	return pl.AnnotateDetailCtx(ctx, prog, p, pl.detail)
}

// AnnotateDetailCtx is AnnotateCtx with an explicit detail level.
func (pl *Pipeline) AnnotateDetailCtx(ctx context.Context, prog *cdfg.Program, p *pum.PUM, detail core.Detail) (*annotate.Annotated, error) {
	// Lint the model against the op classes the program uses before
	// spending any scheduling work on it.
	return pl.annotateDetailCtx(ctx, prog, p, detail, pl.opts.Verify)
}

// annotateDetailCtx is the shared annotation path; lint selects the PUM
// lint, which the design-level paths disable because verify.Design has
// already linted each PE model scoped to its own entry functions (a
// whole-program lint would hold a hardware PE to op classes it never
// executes).
func (pl *Pipeline) annotateDetailCtx(ctx context.Context, prog *cdfg.Program, p *pum.PUM, detail core.Detail, lint bool) (*annotate.Annotated, error) {
	ctx, cancel := pl.withTimeout(ctx)
	defer cancel()
	if lint {
		if err := pl.runVerify(verify.Model(p, prog)); err != nil {
			return nil, err
		}
	}
	var a *annotate.Annotated
	start := time.Now()
	err := diag.Guard(diag.StageAnnotate, func() (err error) {
		a, err = annotate.AnnotateCtx(ctx, prog, p, detail, pl.estOpts())
		return
	})
	pl.timeStage(diag.StageAnnotate, start)
	if err != nil {
		// The core estimator records cancellation and strict-mode errors in
		// the shared diagnostic list itself; only contained panics need to
		// be added here.
		var pe *diag.PanicError
		if errors.As(err, &pe) {
			pl.diags.AddError(diag.StageAnnotate, err)
		}
		return nil, err
	}
	pl.recordDegradation(a)
	return a, nil
}

// ------------------------------------------------------------- Build / Sim

// Delays annotates a design's program once per PE through the cache and
// returns the per-PE delay maps the timed TLM consumes, plus the
// wall-clock annotation time (the paper's "Anno." column).
func (pl *Pipeline) Delays(d *platform.Design, detail core.Detail) (map[string]map[*cdfg.Block]float64, time.Duration) {
	out, dur, _ := pl.DelaysCtx(context.Background(), d, detail)
	return out, dur
}

// DelaysCtx is Delays under a context: cancellation or a strict-mode
// mapping failure aborts the per-PE annotation loop with the typed error.
// With Options.Verify the whole design is verified first (program, PE
// models scoped to their entries, channel topology).
func (pl *Pipeline) DelaysCtx(ctx context.Context, d *platform.Design, detail core.Detail) (map[string]map[*cdfg.Block]float64, time.Duration, error) {
	return pl.delaysCtx(ctx, d, detail, false)
}

// delaysCtx computes per-PE delay maps; verified says the caller already
// ran the design-level verification, so it is not repeated.
func (pl *Pipeline) delaysCtx(ctx context.Context, d *platform.Design, detail core.Detail, verified bool) (map[string]map[*cdfg.Block]float64, time.Duration, error) {
	start := time.Now()
	if pl.opts.Verify && !verified {
		if err := pl.runVerify(verify.Design(d)); err != nil {
			return nil, time.Since(start), err
		}
	}
	out := make(map[string]map[*cdfg.Block]float64, len(d.PEs))
	for _, pe := range d.PEs {
		a, err := pl.annotateDetailCtx(ctx, d.Program, pe.PUM, detail, false)
		if err != nil {
			return nil, time.Since(start), err
		}
		out[pe.Name] = a.Delays()
	}
	return out, time.Since(start), nil
}

// Simulate runs the TLM of a design. For timed runs the annotation phase
// goes through the pipeline's cache and worker pool, so a sweep that
// simulates several configurations of one program reuses every schedule
// after the first.
func (pl *Pipeline) Simulate(d *platform.Design, opts tlm.Options) (*tlm.Result, error) {
	return pl.SimulateCtx(context.Background(), d, opts)
}

// SimulateCtx is Simulate under a context with panic containment and the
// pipeline's watchdog: cancellation or deadline expiry interrupts both the
// annotation fan-out and the simulation event loop. On cancellation mid-
// simulation the partial tlm.Result is returned together with
// diag.ErrCanceled/ErrDeadline; a panic anywhere in the stage surfaces as
// a *diag.PanicError instead of killing the process.
func (pl *Pipeline) SimulateCtx(ctx context.Context, d *platform.Design, opts tlm.Options) (*tlm.Result, error) {
	ctx, cancel := pl.withTimeout(ctx)
	defer cancel()
	if pl.opts.Verify {
		if err := pl.runVerify(verify.Design(d)); err != nil {
			return nil, err
		}
	}
	if opts.Timed && opts.Delays == nil {
		dm, annoTime, err := pl.delaysCtx(ctx, d, opts.Detail, true)
		if err != nil {
			return nil, err
		}
		opts.Delays, opts.AnnoTime = dm, annoTime
	}
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	if opts.Metrics == nil {
		opts.Metrics = pl.metrics
	}
	if opts.Engine == interp.EngineAuto {
		opts.Engine = pl.opts.Engine
	}
	if opts.Diags == nil {
		opts.Diags = &pl.diags
	}
	var res *tlm.Result
	start := time.Now()
	err := diag.Guard(diag.StageSimulate, func() (err error) {
		res, err = tlm.Run(d, opts)
		return
	})
	pl.timeStage(diag.StageSimulate, start)
	if err != nil {
		pl.diags.AddError(diag.StageSimulate, err)
	}
	return res, err
}

// RunFunctional executes the untimed TLM of a design.
func (pl *Pipeline) RunFunctional(d *platform.Design) (*tlm.Result, error) {
	return pl.Simulate(d, tlm.Options{Timed: false})
}

// RunTimed executes the timed TLM of a design with the pipeline's detail
// level and transaction-boundary waits, the configuration the paper
// evaluates.
func (pl *Pipeline) RunTimed(d *platform.Design) (*tlm.Result, error) {
	return pl.Simulate(d, tlm.Options{
		Timed:    true,
		WaitMode: tlm.WaitAtTransactions,
		Detail:   pl.detail,
	})
}
