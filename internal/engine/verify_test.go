package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/diag"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/tlm"
)

// TestPipelineVerifyOption exercises the Options.Verify wiring at every
// pipeline seam: a clean compile passes, a corrupt model fails annotation
// with a verify-stage diagnostic, an unmapped-class warning fails only
// under Werror, and a corrupt design fails SimulateCtx before any
// simulation work.
func TestPipelineVerifyOption(t *testing.T) {
	src, err := apps.MP3Source("SW", apps.TrainMP3)
	if err != nil {
		t.Fatal(err)
	}

	pl := New(Options{Verify: true, Simplify: true})
	prog, err := pl.Compile("mp3.c", src)
	if err != nil {
		t.Fatalf("verified compile of a clean program failed: %v", err)
	}

	// A statistically corrupt model must be rejected before annotation.
	bad, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	bad.Mem.Current.IHitRate = math.NaN()
	_, err = pl.AnnotateCtx(context.Background(), prog, bad)
	var d diag.Diagnostic
	if !errors.As(err, &d) || d.Stage != diag.StageVerify {
		t.Fatalf("corrupt model: want verify-stage diagnostic, got %v", err)
	}

	// Coverage gaps are warnings: they pass without Werror, fail with it.
	gap := pum.MicroBlaze()
	delete(gap.Ops, cdfg.ClassMul)
	if _, err := pl.AnnotateCtx(context.Background(), prog, gap); err != nil {
		t.Fatalf("coverage warning failed annotation without Werror: %v", err)
	}
	strictPl := New(Options{Verify: true, Werror: true, Simplify: true})
	prog2, err := strictPl.Compile("mp3.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strictPl.AnnotateCtx(context.Background(), prog2, gap); err == nil {
		t.Fatal("coverage warning did not fail annotation under Werror")
	}
}

// TestPipelineVerifyDesign checks the design-level seam: SimulateCtx on a
// verified pipeline accepts a clean design (including under Werror, which
// requires the PE-scoped coverage lint — a whole-program lint would
// reject the hardware PEs) and rejects a corrupted one.
func TestPipelineVerifyDesign(t *testing.T) {
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	build := func() *platform.Design {
		d, err := apps.MP3Design("SW+2", apps.MP3Config{Frames: 1, Seed: apps.DefaultMP3.Seed},
			mb, pum.CacheCfg{ISize: 8192, DSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pl := New(Options{Verify: true, Werror: true})
	if _, err := pl.SimulateCtx(context.Background(), build(), tlm.Options{
		Timed: true, WaitMode: tlm.WaitAtTransactions, Detail: pl.Detail(),
	}); err != nil {
		t.Fatalf("verified simulation of a clean design failed: %v", err)
	}

	corrupt := build()
	corrupt.PEs[0].PUM.Branch.Penalty = -3
	_, err = pl.SimulateCtx(context.Background(), corrupt, tlm.Options{Timed: true})
	var d diag.Diagnostic
	if !errors.As(err, &d) || d.Stage != diag.StageVerify {
		t.Fatalf("corrupt design: want verify-stage diagnostic, got %v", err)
	}
}
