package engine

import (
	"fmt"
	"runtime"
	"testing"

	"ese/internal/annotate"
	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/pum"
	"ese/internal/tlm"
)

// testProgram compiles the MP3 SW workload through a throwaway pipeline.
func testProgram(t *testing.T) *cdfg.Program {
	t.Helper()
	src, err := apps.MP3Source("SW", apps.TrainMP3)
	if err != nil {
		t.Fatalf("MP3Source: %v", err)
	}
	prog, err := New(Options{}).Compile("mp3.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func numBlocks(prog *cdfg.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		n += len(fn.Blocks)
	}
	return n
}

// testModels returns the three built-in PUMs under every standard cache
// configuration each supports. CustomHW ships an empty calibration table,
// so only its base (uncached) model participates.
func testModels(t *testing.T) map[string]*pum.PUM {
	t.Helper()
	models := map[string]*pum.PUM{
		"customhw/base": pum.CustomHW("hw", 100_000_000),
	}
	for name, base := range map[string]*pum.PUM{
		"microblaze": pum.MicroBlaze(),
		"dualissue":  pum.DualIssue(),
	} {
		for _, cc := range pum.StandardCacheConfigs {
			m, err := base.WithCache(cc)
			if err != nil {
				t.Fatalf("%s WithCache(%d/%d): %v", name, cc.ISize, cc.DSize, err)
			}
			models[fmt.Sprintf("%s/%d-%d", name, cc.ISize, cc.DSize)] = m
		}
	}
	return models
}

func sameEstimates(t *testing.T, label string, want, got map[*cdfg.Block]core.Estimate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: estimate map size %d != reference %d", label, len(got), len(want))
	}
	for b, we := range want {
		if ge, ok := got[b]; !ok || ge != we {
			t.Fatalf("%s: block bb%d: got %+v, reference %+v", label, b.ID, ge, we)
		}
	}
}

// TestParallelAnnotationDeterminism is the golden determinism test: for
// every built-in PUM under every supported standard cache configuration,
// the parallel, cached pipeline must produce estimates and generated timed
// sources byte-identical to the serial, uncached reference path — both
// with GOMAXPROCS=1 and with all CPUs.
func TestParallelAnnotationDeterminism(t *testing.T) {
	prog := testProgram(t)
	for gmp := range map[int]bool{1: true, runtime.NumCPU(): true} {
		old := runtime.GOMAXPROCS(gmp)
		t.Logf("GOMAXPROCS=%d", gmp)
		for name, m := range testModels(t) {
			// Serial reference: no cache, one worker, direct core path.
			ref := annotate.AnnotateWith(prog, m, core.FullDetail, core.EstOptions{Workers: 1})
			for variant, pl := range map[string]*Pipeline{
				"parallel":         New(Options{NoCache: true}),
				"parallel+cache":   New(Options{}),
				"serial+cache":     New(Options{Workers: 1}),
				"explicit-workers": New(Options{Workers: 4}),
			} {
				label := fmt.Sprintf("gomaxprocs=%d/%s/%s", gmp, name, variant)
				a := pl.Annotate(prog, m)
				sameEstimates(t, label, ref.Est, a.Est)
				if want, got := ref.EmitTimedC(), a.EmitTimedC(); want != got {
					t.Fatalf("%s: EmitTimedC differs from serial reference", label)
				}
				if want, got := ref.EmitTimedGo("timed"), a.EmitTimedGo("timed"); want != got {
					t.Fatalf("%s: EmitTimedGo differs from serial reference", label)
				}
				// Annotating again must be fully served from the cache and
				// still identical.
				a2 := pl.Annotate(prog, m)
				sameEstimates(t, label+"/reannotate", ref.Est, a2.Est)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestSweepReusesSchedules checks the cacheability seam the refactor
// exists for: retargeting the statistical models (cache configurations)
// must not recompute any Algorithm 1 schedule after the first
// configuration, because the datapath fingerprint is unchanged.
func TestSweepReusesSchedules(t *testing.T) {
	prog := testProgram(t)
	n := uint64(numBlocks(prog))
	if n == 0 {
		t.Fatal("no blocks")
	}
	// Content addressing deduplicates structurally identical blocks, so
	// the expected counters are in unique fingerprints, not raw blocks.
	uniq := make(map[cdfg.Fingerprint]bool)
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			uniq[b.Fingerprint()] = true
		}
	}
	u := uint64(len(uniq))
	t.Logf("%d blocks, %d unique fingerprints", n, u)

	// Workers=1 keeps the hit/miss counters deterministic: concurrent
	// workers may both miss on twin blocks before either publishes.
	pl := New(Options{Workers: 1})
	base := pum.MicroBlaze()
	for _, cc := range pum.StandardCacheConfigs {
		m, err := base.WithCache(cc)
		if err != nil {
			t.Fatalf("WithCache: %v", err)
		}
		pl.Annotate(prog, m)
	}
	cs := pl.Stats()
	nCfg := uint64(len(pum.StandardCacheConfigs))
	if cs.SchedMisses != u {
		t.Errorf("schedule misses = %d, want %d (one per unique block)", cs.SchedMisses, u)
	}
	if cs.SchedHits != (nCfg-1)*u {
		t.Errorf("schedule hits = %d, want %d (every unique block reused for %d retargets)",
			cs.SchedHits, (nCfg-1)*u, nCfg-1)
	}
	if cs.EstMisses != nCfg*u {
		t.Errorf("estimate misses = %d, want %d (statistics differ per config)",
			cs.EstMisses, nCfg*u)
	}
	if cs.EstHits != nCfg*(n-u) {
		t.Errorf("estimate hits = %d, want %d (duplicate blocks per config)",
			cs.EstHits, nCfg*(n-u))
	}
}

// TestCacheSurvivesRecompilation checks content addressing: compiling the
// same source twice yields distinct *cdfg.Block pointers but identical
// structural fingerprints, so the second program's annotation is served
// entirely from the schedule and estimate caches.
func TestCacheSurvivesRecompilation(t *testing.T) {
	src, err := apps.MP3Source("SW", apps.TrainMP3)
	if err != nil {
		t.Fatalf("MP3Source: %v", err)
	}
	pl := New(Options{})
	p1, err := pl.Compile("mp3.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p2, err := pl.Compile("mp3.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := pum.MicroBlaze()
	a1 := pl.Annotate(p1, m)
	mid := pl.Stats()
	a2 := pl.Annotate(p2, m)
	end := pl.Stats()

	n := uint64(numBlocks(p1))
	if got := end.SchedMisses - mid.SchedMisses; got != 0 {
		t.Errorf("recompiled program caused %d schedule misses, want 0", got)
	}
	if got := end.EstHits - mid.EstHits; got != n {
		t.Errorf("recompiled program estimate hits = %d, want %d", got, n)
	}
	// The two programs' block sets are disjoint pointers, but per-block
	// totals must agree pairwise (same function/block order).
	for i, fn := range p1.Funcs {
		fn2 := p2.Funcs[i]
		if fn.Name != fn2.Name || len(fn.Blocks) != len(fn2.Blocks) {
			t.Fatalf("function layout mismatch at %d: %s vs %s", i, fn.Name, fn2.Name)
		}
		for j, b := range fn.Blocks {
			if a1.Est[b] != a2.Est[fn2.Blocks[j]] {
				t.Errorf("%s bb%d: estimates differ across recompilation", fn.Name, b.ID)
			}
		}
	}
}

// TestPipelineSimulateMatchesDirect checks the timed TLM driven through
// the pipeline's precomputed-delay path gives the same simulated end time
// and outputs as the legacy in-simulator annotation path.
func TestPipelineSimulateMatchesDirect(t *testing.T) {
	cc := pum.CacheCfg{ISize: 8192, DSize: 4096}
	d, err := apps.MP3Design("SW+1", apps.TrainMP3, pum.MicroBlaze(), cc)
	if err != nil {
		t.Fatalf("MP3Design: %v", err)
	}
	pl := New(Options{})
	got, err := pl.RunTimed(d)
	if err != nil {
		t.Fatalf("pipeline RunTimed: %v", err)
	}
	d2, err := apps.MP3Design("SW+1", apps.TrainMP3, pum.MicroBlaze(), cc)
	if err != nil {
		t.Fatalf("MP3Design: %v", err)
	}
	want, err := tlm.RunTimed(d2, 0)
	if err != nil {
		t.Fatalf("legacy RunTimed: %v", err)
	}
	if got.EndPs != want.EndPs {
		t.Errorf("simulated end time %d != legacy %d", got.EndPs, want.EndPs)
	}
	for pe, out := range want.OutByPE {
		g := got.OutByPE[pe]
		if len(g) != len(out) {
			t.Fatalf("PE %s: %d outputs != legacy %d", pe, len(g), len(out))
		}
		for i := range out {
			if g[i] != out[i] {
				t.Fatalf("PE %s out[%d]: %d != legacy %d", pe, i, g[i], out[i])
			}
		}
	}
}
