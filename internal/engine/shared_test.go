package engine

import (
	"sync"
	"testing"
	"time"

	"ese/internal/apps"
	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/metrics"
	"ese/internal/pum"
)

// TestSharedCacheInjection proves that two pipelines constructed around one
// injected cache handle share schedules: the second pipeline's annotation
// of the same program under the same model is served entirely from cache.
func TestSharedCacheInjection(t *testing.T) {
	prog := testProgram(t)
	model := pum.MicroBlaze()
	shared := core.NewCache()

	p1 := New(Options{Cache: shared})
	a1 := p1.Annotate(prog, model)
	warm := shared.Stats()
	if warm.SchedMisses == 0 {
		t.Fatalf("first pipeline should miss the shared cache, got %+v", warm)
	}

	p2 := New(Options{Cache: shared})
	a2 := p2.Annotate(prog, model)
	st := shared.Stats()
	if st.SchedMisses != warm.SchedMisses || st.EstMisses != warm.EstMisses {
		t.Fatalf("second pipeline recompiled despite shared cache: warm=%+v after=%+v", warm, st)
	}
	if st.EstHits <= warm.EstHits {
		t.Fatalf("second pipeline did not hit the shared cache: warm=%+v after=%+v", warm, st)
	}
	for b, e1 := range a1.Est {
		if e2 := a2.Est[b]; e1 != e2 {
			t.Fatalf("shared-cache estimate differs for bb%d: %+v vs %+v", b.ID, e1, e2)
		}
	}

	// Both pipelines fold the shared handle's counters into their
	// snapshots, so either view reconciles with the cache itself.
	snap := p2.MetricsSnapshot()
	if snap.Counters["cache.est.hits"] != st.EstHits {
		t.Fatalf("snapshot est hits %d, cache reports %d", snap.Counters["cache.est.hits"], st.EstHits)
	}

	// NoCache still wins over an injected handle.
	p3 := New(Options{Cache: shared, NoCache: true})
	if p3.cache != nil {
		t.Fatal("NoCache pipeline kept the injected cache")
	}
}

// TestSharedMetricsInjection proves that pipelines built around one
// registry aggregate their stage timings in it.
func TestSharedMetricsInjection(t *testing.T) {
	prog := testProgram(t)
	reg := metrics.NewRegistry()
	p1 := New(Options{Metrics: reg})
	p2 := New(Options{Metrics: reg})
	p1.Annotate(prog, pum.MicroBlaze())
	p2.Annotate(prog, pum.MicroBlaze())
	if got := reg.Snapshot().Histograms["pipeline.stage.annotate.seconds"].Count; got != 2 {
		t.Fatalf("shared registry saw %d annotate stages, want 2", got)
	}
	if p1.Metrics() != reg || p2.Metrics() != reg {
		t.Fatal("Metrics() does not return the injected registry")
	}
}

// TestStageHook proves the hook observes every stage of a compile in flow
// order, with non-negative durations, and is safe under concurrent
// pipeline use.
func TestStageHook(t *testing.T) {
	var mu sync.Mutex
	var stages []diag.Stage
	pl := New(Options{
		Simplify: true,
		StageHook: func(s diag.Stage, d time.Duration) {
			if d < 0 {
				t.Errorf("stage %s reported negative duration %v", s, d)
			}
			mu.Lock()
			stages = append(stages, s)
			mu.Unlock()
		},
	})
	src, err := apps.MP3Source("SW", apps.TrainMP3)
	if err != nil {
		t.Fatalf("MP3Source: %v", err)
	}
	prog, err := pl.Compile("mp3.c", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	pl.Annotate(prog, pum.MicroBlaze())

	want := []diag.Stage{diag.StageParse, diag.StageCheck, diag.StageLower, diag.StageSimplify, diag.StageVerify, diag.StageAnnotate}
	mu.Lock()
	defer mu.Unlock()
	if len(stages) != len(want) {
		t.Fatalf("hook fired for %v, want %v", stages, want)
	}
	for i, s := range want {
		if stages[i] != s {
			t.Fatalf("hook order %v, want %v", stages, want)
		}
	}
}
