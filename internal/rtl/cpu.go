// Package rtl implements the cycle-accurate reference models of the
// reproduction: the processor pipeline model with real caches and a real
// branch predictor, the custom-hardware datapath model, and the full-system
// board (PCAM) simulation that plays the role of the paper's on-board
// measurements. The PUM is treated as the PE's datasheet: per-class
// operation costs and the external memory latency come from it, so the
// difference between the board and the timed TLM is exactly what the paper
// studies — statistical versus actual cache/branch behaviour, plus
// block-boundary scheduling effects.
package rtl

import (
	"fmt"

	"ese/internal/branch"
	"ese/internal/cache"
	"ese/internal/iss"
	"ese/internal/pum"
)

// CPUConfig configures the cycle-accurate processor model.
type CPUConfig struct {
	Model  *pum.PUM     // datasheet: op costs, branch penalty, ext latency
	ICache cache.Config // real organization; Size 0 = uncached
	DCache cache.Config
	// Predictor overrides the predictor implied by Model.Branch.Predictor
	// ("static-nt" or "2bit"); nil selects from the model.
	Predictor branch.Predictor
}

// RealCacheConfig is the board's cache organization for a given size:
// 2-way set-associative with 16-byte lines, LRU.
func RealCacheConfig(size int) cache.Config {
	return cache.Config{Size: size, LineBytes: cache.DefaultLine, Assoc: 2}
}

// predictorFor builds the predictor named by the PUM branch model.
func predictorFor(name string) (branch.Predictor, error) {
	if name == "2bit" {
		return branch.NewBimodal(512)
	}
	return branch.StaticNotTaken{}, nil
}

// CPU is the cycle-accurate in-order pipeline model driving one functional
// machine. Timing per retired instruction: the class's bottleneck-stage
// occupancy, plus i-cache and d-cache miss stalls, plus the branch
// misprediction penalty — exactly the cost model of the single-issue
// in-order core the PUM describes, evaluated with true cache and predictor
// state instead of statistics.
type CPU struct {
	M  *iss.Machine
	IC *cache.Cache
	DC *cache.Cache
	BP *branch.Stats

	classCost [16]uint64
	extLat    uint64
	brPenalty uint64
	fillCost  uint64

	Cycles uint64
	tr     iss.Trace
}

// NewCPU builds the pipeline model around a loaded machine.
func NewCPU(m *iss.Machine, cfg CPUConfig) (*CPU, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("rtl: CPU needs a PUM datasheet")
	}
	c := &CPU{
		M:  m,
		IC: cache.New(cfg.ICache),
		DC: cache.New(cfg.DCache),
	}
	pred := cfg.Predictor
	if pred == nil {
		var err error
		pred, err = predictorFor(cfg.Model.Branch.Predictor)
		if err != nil {
			return nil, err
		}
	}
	c.BP = &branch.Stats{P: pred}
	for cls, info := range cfg.Model.Ops {
		cost := 0
		for _, su := range info.Stages {
			if su.Cycles > cost {
				cost = su.Cycles
			}
		}
		c.classCost[cls] = uint64(cost)
	}
	c.extLat = uint64(cfg.Model.Mem.ExtLatency)
	c.brPenalty = uint64(cfg.Model.Branch.Penalty)
	// Pipeline fill: the first instruction traverses the whole pipe.
	c.fillCost = uint64(len(cfg.Model.Pipelines[0].Stages) - 1)
	c.Cycles = c.fillCost
	return c, nil
}

// StepTimed retires one instruction and returns the cycles it consumed
// (also accumulated into Cycles). done reports program completion.
func (c *CPU) StepTimed() (cost uint64, done bool, err error) {
	t := &c.tr
	if err := c.M.Step(t); err != nil {
		return 0, false, err
	}
	if !t.Executed {
		return 0, true, nil
	}
	cost = c.classCost[t.Class]
	if cost == 0 {
		cost = 1
	}
	// Instruction fetch.
	if c.IC.Enabled() {
		if !c.IC.Access(iss.PCAddr(t.PC)) {
			cost += c.extLat
		}
	} else {
		cost += c.extLat
	}
	// Data operands.
	for _, a := range t.DAddrs {
		if c.DC.Enabled() {
			if !c.DC.Access(a) {
				cost += c.extLat
			}
		} else {
			cost += c.extLat
		}
	}
	// Branch resolution.
	if t.Branch {
		if c.BP.Resolve(iss.PCAddr(t.PC), t.Taken) {
			cost += c.brPenalty
		}
	}
	c.Cycles += cost
	return cost, t.Done, nil
}

// Trace exposes the last retired instruction's trace (for the board's
// communication integration).
func (c *CPU) Trace() *iss.Trace { return &c.tr }

// Run executes to completion standalone (no platform communication).
func (c *CPU) Run(limit uint64) error {
	for {
		_, done, err := c.StepTimed()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if limit != 0 && c.M.Steps > limit {
			return fmt.Errorf("rtl: step limit %d exceeded", limit)
		}
	}
}

// MemStatsSnapshot returns the observed cache statistics in PUM form, the
// raw material of calibration. A disabled cache side (size 0 in a mixed
// I/D geometry) is reported as hit rate 0: on the board every access on
// that side pays the external latency, and the statistical model must say
// the same — the idle-cache HitRate default of 1.0 would make estimation
// charge nothing for a path the board charges ExtLatency per access.
func (c *CPU) MemStatsSnapshot() pum.MemStats {
	st := pum.MemStats{
		IHitDelay:    0,
		DHitDelay:    0,
		IMissPenalty: float64(c.extLat),
		DMissPenalty: float64(c.extLat),
	}
	if c.IC.Enabled() {
		st.IHitRate = c.IC.HitRate()
	}
	if c.DC.Enabled() {
		st.DHitRate = c.DC.HitRate()
	}
	return st
}
