package rtl

import (
	"testing"

	"ese/internal/apps"
	"ese/internal/cache"
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/iss"
	"ese/internal/platform"
	"ese/internal/pum"
)

func generate(t *testing.T, src string) (*cdfg.Program, *iss.Program) {
	t.Helper()
	prog, err := apps.Compile("t.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return prog, isa
}

func newCPU(t *testing.T, isa *iss.Program, iSize, dSize int) *CPU {
	t.Helper()
	m := iss.NewMachine(isa)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPU(m, CPUConfig{
		Model:  pum.MicroBlaze(),
		ICache: RealCacheConfig(iSize),
		DCache: RealCacheConfig(dSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

const loopSrc = `
int a[128];
void main() {
  int i;
  int r;
  for (r = 0; r < 4; r++) {
    for (i = 0; i < 128; i++) a[i] = a[i] * 3 + i;
  }
  out(a[100]);
}`

func TestCPUTimingComponents(t *testing.T) {
	_, isa := generate(t, `void main() { out(1); }`)
	cpu := newCPU(t, isa, 0, 0)
	if err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	// Tiny program: pipeline fill (2) + per-instruction costs with the
	// uncached fetch latency (8) on each instruction.
	steps := cpu.M.Steps
	min := 2 + steps*(1+8)
	if cpu.Cycles < min {
		t.Fatalf("cycles %d below uncached floor %d (steps=%d)", cpu.Cycles, min, steps)
	}
}

func TestCPUCachedFasterThanUncached(t *testing.T) {
	_, isa := generate(t, loopSrc)
	un := newCPU(t, isa, 0, 0)
	if err := un.Run(0); err != nil {
		t.Fatal(err)
	}
	ca := newCPU(t, isa, 8192, 8192)
	if err := ca.Run(0); err != nil {
		t.Fatal(err)
	}
	if ca.Cycles >= un.Cycles {
		t.Fatalf("cached %d >= uncached %d", ca.Cycles, un.Cycles)
	}
	if ca.IC.HitRate() < 0.95 {
		t.Fatalf("i-cache hit rate %v too low for a loop", ca.IC.HitRate())
	}
}

func TestCPUMulDivCosts(t *testing.T) {
	_, isaAdd := generate(t, `void main() { int x = 3; int i; for (i=0;i<100;i++) x = x + 7; out(x); }`)
	_, isaDiv := generate(t, `void main() { int x = 3; int i; for (i=0;i<100;i++) x = x / 7 + 900; out(x); }`)
	add := newCPU(t, isaAdd, 32768, 32768)
	if err := add.Run(0); err != nil {
		t.Fatal(err)
	}
	div := newCPU(t, isaDiv, 32768, 32768)
	if err := div.Run(0); err != nil {
		t.Fatal(err)
	}
	// 100 divides at 32 cycles each must dominate.
	if div.Cycles < add.Cycles+100*31-200 {
		t.Fatalf("div loop %d vs add loop %d: divide cost missing", div.Cycles, add.Cycles)
	}
}

func TestCPUBranchPredictorCounts(t *testing.T) {
	_, isa := generate(t, loopSrc)
	cpu := newCPU(t, isa, 8192, 8192)
	if err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if cpu.BP.Branches == 0 {
		t.Fatal("no branches resolved")
	}
	// Static not-taken on backward loop branches: high miss rate.
	if cpu.BP.MissRate() < 0.5 {
		t.Fatalf("static-NT miss rate %v suspiciously low for loops", cpu.BP.MissRate())
	}
}

func TestCPUDeterministic(t *testing.T) {
	_, isa := generate(t, loopSrc)
	a := newCPU(t, isa, 2048, 2048)
	if err := a.Run(0); err != nil {
		t.Fatal(err)
	}
	b := newCPU(t, isa, 2048, 2048)
	if err := b.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestHWDelaysAreExactSchedules(t *testing.T) {
	prog, err := apps.Compile("t.c", `
int a[16];
void main() {
  int i;
  for (i = 0; i < 16; i++) a[i] = a[i] * 2 + 1;
  out(a[3]);
}`)
	if err != nil {
		t.Fatal(err)
	}
	model := pum.CustomHW("hw", 100_000_000)
	hw := NewHW(prog, model)
	est := core.EstimateBlocks(prog, model, core.Detail{})
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if hw.Delay(b) != float64(est[b].Sched) {
				t.Fatalf("HW delay for bb%d = %v, schedule = %d", b.ID, hw.Delay(b), est[b].Sched)
			}
		}
	}
}

// TestBoardMatchesStandaloneCPUForSWDesign: a single-processor design run
// through the full board (kernel + bus) must give exactly the standalone
// CPU model's cycles — the kernel integration adds no timing.
func TestBoardMatchesStandaloneCPUForSWDesign(t *testing.T) {
	cfg := apps.MP3Config{Frames: 1, Seed: 9}
	cc := pum.CacheCfg{ISize: 8192, DSize: 4096}
	d, err := apps.MP3Design("SW", cfg, pum.MicroBlaze(), cc)
	if err != nil {
		t.Fatal(err)
	}
	board, err := RunBoard(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	isa, err := iss.Generate(d.Program)
	if err != nil {
		t.Fatal(err)
	}
	m := iss.NewMachine(isa)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPU(m, CPUConfig{
		Model:  d.PEs[0].PUM,
		ICache: cache.Config{Size: cc.ISize, LineBytes: 16, Assoc: 2},
		DCache: cache.Config{Size: cc.DSize, LineBytes: 16, Assoc: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if board.PEs["mb"].Cycles != cpu.Cycles {
		t.Fatalf("board %d != standalone %d", board.PEs["mb"].Cycles, cpu.Cycles)
	}
	if board.EndCycles(100_000_000) != cpu.Cycles {
		t.Fatalf("board end %d != cpu cycles %d", board.EndCycles(100_000_000), cpu.Cycles)
	}
}

func TestBoardMultiPEOverlap(t *testing.T) {
	// On SW+4 the end-to-end time must be less than the sum of all PE busy
	// cycles (they overlap) but at least the SW PE's own busy time.
	cfg := apps.MP3Config{Frames: 1, Seed: 5}
	d, err := apps.MP3Design("SW+4", cfg, pum.MicroBlaze(), pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBoard(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	end := res.EndCycles(100_000_000)
	var sum uint64
	for _, pe := range res.PEs {
		sum += pe.Cycles
		if pe.Steps == 0 {
			t.Fatalf("PE %s never executed", pe.Name)
		}
	}
	if end >= sum {
		t.Fatalf("no overlap: end %d >= sum %d", end, sum)
	}
	if end < res.PEs["mb"].Cycles {
		t.Fatalf("end %d < mb busy %d", end, res.PEs["mb"].Cycles)
	}
}

func TestCalibrateProducesUsableModel(t *testing.T) {
	prog, err := apps.CompileMP3("SW", apps.MP3Config{Frames: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Calibrate(pum.MicroBlaze(), prog, "main", pum.StandardCacheConfigs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
	for _, cc := range pum.StandardCacheConfigs[1:] {
		if _, err := mb.WithCache(cc); err != nil {
			t.Fatalf("WithCache(%v): %v", cc, err)
		}
	}
}

func TestPredictorSelection(t *testing.T) {
	model := pum.MicroBlaze()
	model.Branch.Predictor = "2bit"
	_, isa := generate(t, loopSrc)
	m := iss.NewMachine(isa)
	if err := m.Start("main"); err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPU(m, CPUConfig{Model: model, ICache: RealCacheConfig(8192), DCache: RealCacheConfig(8192)})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	// A bimodal predictor must beat static-NT massively on loop code.
	if cpu.BP.MissRate() > 0.3 {
		t.Fatalf("2bit predictor miss rate %v too high", cpu.BP.MissRate())
	}
}

func TestBoardRejectsBadDesign(t *testing.T) {
	prog, _ := apps.Compile("t.c", `void main() { out(1); }`)
	d := &platform.Design{Name: "x", Program: prog, Bus: platform.DefaultBus()}
	if _, err := RunBoard(d, 0); err == nil {
		t.Fatal("expected validation error")
	}
}
