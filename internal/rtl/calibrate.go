package rtl

import (
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/iss"
	"ese/internal/pum"
)

// Calibrate profiles a training process on the cycle-accurate processor
// model for each cache configuration and returns a copy of the base PUM
// whose statistical memory table and branch misprediction ratio hold the
// measured values — the way a designer populates the paper's statistical
// memory and branch delay models. The training entry must be a
// self-contained process (no channel communication), typically a reduced
// or representative input; evaluating on different inputs is what makes the
// statistical model approximate.
func Calibrate(base *pum.PUM, prog *cdfg.Program, entry string, cfgs []pum.CacheCfg, limit uint64) (*pum.PUM, error) {
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, err
	}
	out := base.Clone()
	branchSet := false
	for _, cfg := range cfgs {
		if cfg.ISize == 0 && cfg.DSize == 0 {
			// The uncached configuration needs no statistics: every access
			// pays the external latency (see PUM.WithCache).
			continue
		}
		m := iss.NewMachine(isa)
		if err := m.Start(entry); err != nil {
			return nil, err
		}
		cpu, err := NewCPU(m, CPUConfig{
			Model:  base,
			ICache: RealCacheConfig(cfg.ISize),
			DCache: RealCacheConfig(cfg.DSize),
		})
		if err != nil {
			return nil, err
		}
		if err := cpu.Run(limit); err != nil {
			return nil, fmt.Errorf("rtl: calibrating %v: %w", cfg, err)
		}
		out.Mem.Table[cfg] = cpu.MemStatsSnapshot()
		if !branchSet {
			out.Branch.MissRate = cpu.BP.MissRate()
			branchSet = true
		}
	}
	return out, nil
}
