package rtl

import (
	"errors"
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/iss"
	"ese/internal/pum"
)

// ErrUncalibrated reports that a calibration run had no cached cache
// configuration to profile: every entry of cfgs was the uncached {0,0}
// geometry, which needs no statistics (every access pays the external
// latency), so neither the memory table nor the branch misprediction ratio
// was measured. Returning the base model unchanged in that case used to be
// silent; callers that meant to calibrate must be told nothing happened.
var ErrUncalibrated = errors.New("rtl: no cached configuration to calibrate on (statistical models unchanged)")

// CalibStats is one cached configuration's measured statistics: the memory
// snapshot that enters the PUM table, plus the branch misprediction ratio
// and dynamic instruction count of the profiling run under that
// configuration — the per-config provenance of the calibration.
type CalibStats struct {
	Cfg        pum.CacheCfg
	Mem        pum.MemStats
	BranchMiss float64
	Steps      uint64
}

// CalibReport is the provenance of one training run: what was measured per
// cached configuration, which configurations were skipped as uncached, and
// the config-independent branch misprediction ratio that entered the model.
type CalibReport struct {
	// Train labels the training program. Calibrate sets it to the entry
	// name; multi-program drivers (internal/calib) overwrite it with the
	// application label before merging reports.
	Train string
	Entry string
	// Stats holds one entry per cached configuration, in cfgs order.
	Stats []CalibStats
	// Uncached lists the configurations skipped because both sides are
	// absent: every access pays the external latency (see PUM.WithCache),
	// so there is nothing to measure.
	Uncached []pum.CacheCfg
	// BranchMiss is the misprediction ratio recorded into the model. The
	// branch predictor sees the same retired instruction stream whatever
	// the caches do, so the ratio is config-independent; Calibrate asserts
	// that instead of silently taking whichever config came first.
	BranchMiss float64
	// Steps is the dynamic instruction count of one profiling run
	// (identical across configurations, asserted).
	Steps uint64
}

// Calibrate profiles a training process on the cycle-accurate processor
// model for each cache configuration and returns a copy of the base PUM
// whose statistical memory table and branch misprediction ratio hold the
// measured values — the way a designer populates the paper's statistical
// memory and branch delay models. The training entry must be a
// self-contained process (no channel communication), typically a reduced
// or representative input; evaluating on different inputs is what makes the
// statistical model approximate.
//
// Configuration semantics:
//   - {0,0} is uncached: no statistics are needed, the configuration is
//     skipped (every access pays ExtLatency, see PUM.WithCache). If every
//     configuration is uncached the call fails with ErrUncalibrated
//     instead of silently returning an uncalibrated clone.
//   - Mixed geometry ({0,D} or {I,0}): the absent side pays the external
//     latency on every access and is recorded with hit rate 0; real
//     statistics are measured for the present side.
//
// Branch model: the misprediction ratio is measured under every cached
// configuration and asserted identical (the predictor sees the same
// retired instruction stream whatever the caches do); the common value is
// recorded, with per-config provenance in the returned PUM's Calib list
// and in the CalibReport. A divergence means the training program is not
// self-contained (its instruction stream varied between runs) and is an
// error, not a silent first-config pick.
func Calibrate(base *pum.PUM, prog *cdfg.Program, entry string, cfgs []pum.CacheCfg, limit uint64) (*pum.PUM, error) {
	out, _, err := CalibrateReport(base, prog, entry, cfgs, limit)
	return out, err
}

// CalibrateReport is Calibrate returning the per-config provenance next to
// the calibrated model.
func CalibrateReport(base *pum.PUM, prog *cdfg.Program, entry string, cfgs []pum.CacheCfg, limit uint64) (*pum.PUM, *CalibReport, error) {
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, nil, err
	}
	out := base.Clone()
	out.Calib = nil // recalibration replaces any prior provenance
	rep := &CalibReport{Train: entry, Entry: entry}
	for _, cfg := range cfgs {
		if cfg.ISize == 0 && cfg.DSize == 0 {
			// The uncached configuration needs no statistics: every access
			// pays the external latency (see PUM.WithCache).
			rep.Uncached = append(rep.Uncached, cfg)
			continue
		}
		m := iss.NewMachine(isa)
		if err := m.Start(entry); err != nil {
			return nil, nil, err
		}
		cpu, err := NewCPU(m, CPUConfig{
			Model:  base,
			ICache: RealCacheConfig(cfg.ISize),
			DCache: RealCacheConfig(cfg.DSize),
		})
		if err != nil {
			return nil, nil, err
		}
		if err := cpu.Run(limit); err != nil {
			return nil, nil, fmt.Errorf("rtl: calibrating %v: %w", cfg, err)
		}
		st := cpu.MemStatsSnapshot()
		if err := st.Validate(); err != nil {
			return nil, nil, fmt.Errorf("rtl: calibrating %v: degenerate statistics: %w", cfg, err)
		}
		out.Mem.Table[cfg] = st
		rep.Stats = append(rep.Stats, CalibStats{
			Cfg: cfg, Mem: st, BranchMiss: cpu.BP.MissRate(), Steps: cpu.M.Steps,
		})
	}
	if len(rep.Stats) == 0 {
		return nil, nil, fmt.Errorf("%w: every configuration in %v is uncached", ErrUncalibrated, cfgs)
	}
	first := rep.Stats[0]
	for _, cs := range rep.Stats[1:] {
		if cs.BranchMiss != first.BranchMiss || cs.Steps != first.Steps {
			return nil, nil, fmt.Errorf(
				"rtl: branch calibration is config-dependent (%v: miss %.6f over %d steps, %v: miss %.6f over %d steps) — training entry %q is not self-contained",
				first.Cfg, first.BranchMiss, first.Steps, cs.Cfg, cs.BranchMiss, cs.Steps, entry)
		}
	}
	out.Branch.MissRate = first.BranchMiss
	rep.BranchMiss = first.BranchMiss
	rep.Steps = first.Steps
	for _, cs := range rep.Stats {
		out.Calib = append(out.Calib, pum.CalibSource{
			Cfg: cs.Cfg, Train: rep.Train, Steps: cs.Steps, BranchMiss: cs.BranchMiss,
		})
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("rtl: calibrated model invalid: %w", err)
	}
	return out, rep, nil
}
