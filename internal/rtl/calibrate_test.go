package rtl

import (
	"errors"
	"strings"
	"testing"

	"ese/internal/pum"
)

// Bugfix regression: calibrating with only uncached configurations used to
// silently return an uncalibrated clone of the base model; it must fail
// with ErrUncalibrated so callers know nothing was measured.
func TestCalibrateAllUncachedIsError(t *testing.T) {
	prog, _ := generate(t, loopSrc)
	_, err := Calibrate(pum.MicroBlaze(), prog, "main", []pum.CacheCfg{{ISize: 0, DSize: 0}}, 0)
	if !errors.Is(err, ErrUncalibrated) {
		t.Fatalf("want ErrUncalibrated, got %v", err)
	}
	_, err = Calibrate(pum.MicroBlaze(), prog, "main", nil, 0)
	if !errors.Is(err, ErrUncalibrated) {
		t.Fatalf("empty cfgs: want ErrUncalibrated, got %v", err)
	}
}

// Bugfix regression: a mixed geometry must record hit rate 0 for the
// absent side (every access there pays the external latency on the board)
// and real statistics for the present side. Pre-fix the absent side was
// recorded with the idle-cache HitRate default of 1.0, making the
// estimator charge nothing for a path the board charges ExtLatency on.
func TestCalibrateMixedGeometry(t *testing.T) {
	prog, _ := generate(t, loopSrc)
	cfgs := []pum.CacheCfg{{ISize: 0, DSize: 4096}, {ISize: 4096, DSize: 0}}
	out, rep, err := CalibrateReport(pum.MicroBlaze(), prog, "main", cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	dOnly := out.Mem.Table[cfgs[0]]
	if dOnly.IHitRate != 0 {
		t.Errorf("{0,4096}: IHitRate = %v, want 0 (absent side pays external latency)", dOnly.IHitRate)
	}
	if dOnly.DHitRate <= 0.5 {
		t.Errorf("{0,4096}: DHitRate = %v, want measured rate > 0.5", dOnly.DHitRate)
	}
	iOnly := out.Mem.Table[cfgs[1]]
	if iOnly.DHitRate != 0 {
		t.Errorf("{4096,0}: DHitRate = %v, want 0", iOnly.DHitRate)
	}
	if iOnly.IHitRate <= 0.5 {
		t.Errorf("{4096,0}: IHitRate = %v, want measured rate > 0.5", iOnly.IHitRate)
	}
	if len(rep.Stats) != 2 {
		t.Fatalf("report has %d stats, want 2", len(rep.Stats))
	}
}

// Bugfix regression: the branch misprediction ratio is measured under every
// cached configuration and asserted config-independent; the recorded value
// and per-config provenance must agree. Pre-fix, whichever cached config
// came first won silently.
func TestCalibrateBranchConfigIndependent(t *testing.T) {
	prog, _ := generate(t, loopSrc)
	cfgs := []pum.CacheCfg{
		{ISize: 2048, DSize: 2048},
		{ISize: 0, DSize: 0},
		{ISize: 16384, DSize: 16384},
		{ISize: 0, DSize: 4096},
	}
	out, rep, err := CalibrateReport(pum.MicroBlaze(), prog, "main", cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BranchMiss <= 0 || rep.BranchMiss >= 1 {
		t.Fatalf("branch miss %v outside (0,1)", rep.BranchMiss)
	}
	if out.Branch.MissRate != rep.BranchMiss {
		t.Errorf("model MissRate %v != report %v", out.Branch.MissRate, rep.BranchMiss)
	}
	if len(out.Calib) != 3 {
		t.Fatalf("provenance has %d entries, want 3 (one per cached config)", len(out.Calib))
	}
	for _, cs := range out.Calib {
		if cs.BranchMiss != rep.BranchMiss {
			t.Errorf("%v: provenance miss %v != common %v", cs.Cfg, cs.BranchMiss, rep.BranchMiss)
		}
		if cs.Steps != rep.Steps || cs.Steps == 0 {
			t.Errorf("%v: steps %d, want common nonzero %d", cs.Cfg, cs.Steps, rep.Steps)
		}
		if cs.Train != "main" {
			t.Errorf("%v: train label %q, want %q", cs.Cfg, cs.Train, "main")
		}
	}
	if len(rep.Uncached) != 1 || rep.Uncached[0] != (pum.CacheCfg{}) {
		t.Errorf("uncached list %v, want [{0 0}]", rep.Uncached)
	}
}

// The config-independence assertion itself: feeding a divergent measurement
// through the checker must produce the descriptive error, not a silent
// first-config pick. (Driven through the public API by reusing the same
// training program — divergence cannot be provoked from outside, which is
// exactly the property the assertion encodes — so this exercises the
// degenerate-statistics path instead: a run with no memory accesses on a
// cached side still validates.)
func TestCalibrateSnapshotsValidate(t *testing.T) {
	// A program with no data traffic at all: the d-cache never sees an
	// access, so its idle HitRate would be the degenerate case.
	prog, _ := generate(t, `void main() { out(7); }`)
	out, _, err := CalibrateReport(pum.MicroBlaze(), prog, "main", pum.StandardCacheConfigs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cfg, st := range out.Mem.Table {
		if err := st.Validate(); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Calibrated models round-trip through JSON with their provenance intact.
func TestCalibrateProvenanceJSONRoundTrip(t *testing.T) {
	prog, _ := generate(t, loopSrc)
	out, err := Calibrate(pum.MicroBlaze(), prog, "main", []pum.CacheCfg{{ISize: 4096, DSize: 4096}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := out.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"calib"`) {
		t.Fatal("serialized PUM lacks calib provenance")
	}
	back, err := pum.FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Calib) != len(out.Calib) {
		t.Fatalf("round-trip provenance %d entries, want %d", len(back.Calib), len(out.Calib))
	}
	for i := range back.Calib {
		if back.Calib[i] != out.Calib[i] {
			t.Errorf("entry %d: %+v != %+v", i, back.Calib[i], out.Calib[i])
		}
	}
}
