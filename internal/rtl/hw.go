package rtl

import (
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/pum"
)

// HW is the cycle-accurate custom-hardware model. A synthesized unit
// executes each basic block as the FSM produced by list scheduling on its
// datapath, so the schedule computed by the estimation engine *without*
// statistical terms is its exact cycle count (storage is single-cycle block
// RAM and there is no cache hierarchy or speculation). The board model
// therefore executes the process's CDFG and charges exactly that schedule
// per block.
type HW struct {
	M      *interp.Machine
	Cycles uint64
	delays map[*cdfg.Block]float64
}

// NewHW builds the hardware model for a process of prog on the given
// custom-hardware PUM.
func NewHW(prog *cdfg.Program, model *pum.PUM) *HW {
	h := &HW{
		M:      interp.New(prog),
		delays: make(map[*cdfg.Block]float64, prog.NumBlocks()),
	}
	est := core.EstimateBlocks(prog, model, core.Detail{})
	for b, e := range est {
		h.delays[b] = float64(e.Sched)
	}
	return h
}

// Delay returns the exact cycle cost of one block execution.
func (h *HW) Delay(b *cdfg.Block) float64 { return h.delays[b] }
