package rtl

import (
	"fmt"
	"time"

	"ese/internal/cdfg"
	"ese/internal/iss"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/sim"
	"ese/internal/tlm"
)

// PEResult is the per-PE outcome of a board run.
type PEResult struct {
	Name   string
	Kind   platform.PEKind
	Cycles uint64 // computation cycles at the PE clock
	Out    []int32
	Steps  uint64
	// Observed statistics (Processor PEs), the calibration source.
	Mem        pum.MemStats
	BranchMiss float64
}

// BoardResult is the outcome of a full-system cycle-accurate simulation —
// the stand-in for the paper's on-board measurement.
type BoardResult struct {
	Design string
	EndPs  sim.Time
	Wall   time.Duration
	PEs    map[string]*PEResult
	Steps  uint64
}

// EndCycles converts the simulated end time into cycles of the given clock.
func (r *BoardResult) EndCycles(clockHz int64) uint64 {
	period := 1_000_000_000_000 / uint64(clockHz)
	return uint64(r.EndPs) / period
}

// RunBoard simulates the whole design cycle-accurately: processor PEs run
// generated ISA code through the pipeline model with real caches and branch
// prediction; hardware PEs execute their exact datapath schedules; all PEs
// communicate over the arbitrated bus. Processes synchronize with the
// kernel at transaction boundaries, which is exact for rendezvous-only
// interaction.
func RunBoard(d *platform.Design, limit uint64) (*BoardResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := d.ValidateChannels(); err != nil {
		return nil, err
	}
	res := &BoardResult{Design: d.Name, PEs: make(map[string]*PEResult)}

	var isa *iss.Program
	for _, pe := range d.PEs {
		if pe.Kind == platform.Processor {
			var err error
			isa, err = iss.Generate(d.Program)
			if err != nil {
				return nil, err
			}
			break
		}
	}

	k := sim.NewKernel()
	bus := tlm.NewBus(k, d.Bus, true)
	type peRun struct {
		pe  *platform.PE
		pr  *PEResult
		cpu *CPU
		hw  *HW
		err error
	}
	var runs []*peRun
	start := time.Now()
	for _, pe := range d.PEs {
		pe := pe
		pr := &PEResult{Name: pe.Name, Kind: pe.Kind}
		res.PEs[pe.Name] = pr
		r := &peRun{pe: pe, pr: pr}
		runs = append(runs, r)
		periodPs := sim.Time(1_000_000_000_000 / pe.PUM.ClockHz)

		switch pe.Kind {
		case platform.Processor:
			m := iss.NewMachine(isa)
			cpu, err := NewCPU(m, CPUConfig{
				Model:  pe.PUM,
				ICache: pe.ICache,
				DCache: pe.DCache,
			})
			if err != nil {
				return nil, err
			}
			r.cpu = cpu
			k.Spawn(pe.Name, func(p *sim.Process) {
				var pending uint64
				drain := func() {
					if pending > 0 {
						p.Wait(sim.Time(pending) * periodPs)
						pending = 0
					}
				}
				m.Send = func(ch int, data []int32) error {
					drain()
					bus.Send(p, ch, data)
					return nil
				}
				m.Recv = func(ch int, buf []int32) error {
					drain()
					bus.Recv(p, ch, buf)
					return nil
				}
				if err := m.Start(pe.Entry); err != nil {
					r.err = err
					k.Stop()
					return
				}
				pending = cpu.fillCost
				for {
					cost, done, err := cpu.StepTimed()
					if err != nil {
						r.err = err
						k.Stop()
						return
					}
					pending += cost
					if done {
						break
					}
					if limit != 0 && m.Steps > limit {
						r.err = fmt.Errorf("rtl: %s exceeded step limit", pe.Name)
						k.Stop()
						return
					}
				}
				drain()
			})
		case platform.HWUnit:
			hw := NewHW(d.Program, pe.PUM)
			r.hw = hw
			k.Spawn(pe.Name, func(p *sim.Process) {
				var pending float64
				drain := func() {
					if pending > 0 {
						p.Wait(sim.Time(pending) * periodPs)
						hw.Cycles += uint64(pending)
						pending = 0
					}
				}
				hw.M.Limit = limit
				hw.M.OnBlock = func(b *cdfg.Block) error { pending += hw.Delay(b); return nil }
				hw.M.Send = func(ch int, data []int32) error {
					drain()
					bus.Send(p, ch, data)
					return nil
				}
				hw.M.Recv = func(ch int, buf []int32) error {
					drain()
					bus.Recv(p, ch, buf)
					return nil
				}
				if err := hw.M.Run(pe.Entry); err != nil {
					r.err = err
					k.Stop()
					return
				}
				drain()
			})
		}
	}
	end, err := k.Run()
	res.Wall = time.Since(start)
	res.EndPs = end
	for _, r := range runs {
		if r.err != nil {
			return nil, fmt.Errorf("rtl: PE %s: %w", r.pe.Name, r.err)
		}
		switch {
		case r.cpu != nil:
			r.pr.Cycles = r.cpu.Cycles
			r.pr.Out = append([]int32(nil), r.cpu.M.Out...)
			r.pr.Steps = r.cpu.M.Steps
			r.pr.Mem = r.cpu.MemStatsSnapshot()
			r.pr.BranchMiss = r.cpu.BP.MissRate()
			res.Steps += r.cpu.M.Steps
		case r.hw != nil:
			r.pr.Cycles = r.hw.Cycles
			r.pr.Out = append([]int32(nil), r.hw.M.Out...)
			r.pr.Steps = r.hw.M.Steps
			res.Steps += r.hw.M.Steps
		}
	}
	if err != nil {
		return nil, fmt.Errorf("rtl: %s: %w", d.Name, err)
	}
	return res, nil
}
