package verify

import (
	"math"
	"strings"
	"testing"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/diag"
	"ese/internal/pum"
)

func cachedMicroBlaze(t *testing.T) *pum.PUM {
	t.Helper()
	p, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestModelAcceptsBuiltinModels(t *testing.T) {
	prog, err := apps.CompileMP3("SW", apps.MP3Config{Frames: 1, Seed: apps.DefaultMP3.Seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*pum.PUM{cachedMicroBlaze(t), pum.DualIssue(), pum.CustomHW("hw", 100e6)} {
		if ds := Model(p, prog, "main"); len(ds) != 0 {
			t.Errorf("%s: clean model flagged:\n%v", p.Name, ds)
		}
	}
}

func TestModelFlagsStatisticalCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *pum.PUM)
	}{
		{"hit rate above one", func(p *pum.PUM) { p.Mem.Current.IHitRate = 1.25 }},
		{"NaN hit rate", func(p *pum.PUM) { p.Mem.Current.DHitRate = math.NaN() }},
		{"negative penalty", func(p *pum.PUM) { p.Mem.Current.IMissPenalty = -3 }},
		{"infinite hit delay", func(p *pum.PUM) { p.Mem.Current.DHitDelay = math.Inf(1) }},
		{"NaN branch miss rate", func(p *pum.PUM) { p.Branch.MissRate = math.NaN() }},
		{"negative branch penalty", func(p *pum.PUM) { p.Branch.Penalty = -1 }},
		{"negative external latency", func(p *pum.PUM) { p.Mem.ExtLatency = -5 }},
	}
	for _, tc := range cases {
		p := cachedMicroBlaze(t)
		tc.corrupt(p)
		if errorCount(Model(p, nil)) == 0 {
			t.Errorf("%s: corruption not flagged", tc.name)
		}
	}
}

func TestModelFlagsStructuralCorruption(t *testing.T) {
	p := cachedMicroBlaze(t)
	info := p.Ops[cdfg.ClassALU]
	info.Stages[len(info.Stages)-1].FU = "bogus"
	p.Ops[cdfg.ClassALU] = info
	if errorCount(Model(p, nil)) == 0 {
		t.Error("unknown FU reference not flagged")
	}
}

func TestModelWarnsOnUnmappedUsedClass(t *testing.T) {
	prog, err := apps.CompileMP3("SW", apps.MP3Config{Frames: 1, Seed: apps.DefaultMP3.Seed})
	if err != nil {
		t.Fatal(err)
	}
	p := cachedMicroBlaze(t)
	if _, ok := p.Ops[cdfg.ClassMul]; !ok {
		t.Fatal("corpus assumption broken: MicroBlaze maps ClassMul")
	}
	delete(p.Ops, cdfg.ClassMul)
	ds := Model(p, prog, "main")
	found := false
	for _, d := range ds {
		if d.Severity == diag.Warning && strings.Contains(d.Msg, "not mapped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing coverage warning for unmapped used class:\n%v", ds)
	}
	// Coverage is advisory: it must fail the run only under -Werror.
	if _, bad := Failure(ds, false); bad {
		t.Error("coverage warning failed the run without -Werror")
	}
	if _, bad := Failure(ds, true); !bad {
		t.Error("coverage warning did not fail the run under -Werror")
	}
}

func TestUsedClassesScopesToEntries(t *testing.T) {
	prog := buildProg() // f uses ALU and memory ops, g only returns
	all := UsedClasses(prog)
	onlyG := UsedClasses(prog, "g")
	if all[cdfg.ClassALU] == 0 {
		t.Fatal("no ALU ops counted for the whole program")
	}
	if onlyG[cdfg.ClassALU] != 0 {
		t.Errorf("ALU ops leaked into the scope of an entry that never runs them: %v", onlyG)
	}
	// An entry that resolves nothing falls back to the whole program.
	if got := UsedClasses(prog, "nonexistent"); len(got) != len(all) {
		t.Errorf("unresolved entry did not fall back to all functions")
	}
}

func TestDesignVerifiesCleanExamples(t *testing.T) {
	designs, err := ExampleDesigns(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		if ds := Design(d); len(ds) != 0 {
			t.Errorf("%s: clean design flagged:\n%v", d.Name, ds)
		}
	}
}

func TestDesignFlagsCorruptPE(t *testing.T) {
	designs, err := ExampleDesigns(1)
	if err != nil {
		t.Fatal(err)
	}
	d := designs[0]
	d.PEs[0].PUM.Mem.Current.IHitRate = math.NaN()
	ds := Design(d)
	if errorCount(ds) == 0 {
		t.Fatal("corrupt PE model not flagged at design level")
	}
	// The diagnostic must name the PE so a multi-PE design is debuggable.
	found := false
	for _, dd := range ds {
		if dd.Severity == diag.Error && strings.HasPrefix(dd.Pos, d.PEs[0].Name+"/") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostic does not carry the PE name prefix:\n%v", ds)
	}
}
