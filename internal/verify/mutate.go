package verify

import (
	"fmt"
	"math"
	"slices"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/interp"
	"ese/internal/pum"
)

// Mutation is one seeded corruption of the IR or the PUM. Apply mutates
// the given program/model in place and reports whether the mutation site
// existed (a corpus entry that finds no site on the reference program is
// a corpus bug, and RunCorpus fails on it). The corpus is deterministic:
// every mutator picks its site by fixed program order, so a run is
// reproducible without a seed value.
type Mutation struct {
	Name  string
	Kind  string // "ir", "pum" or "semantic"
	Apply func(prog *cdfg.Program, p *pum.PUM) bool
}

// findInstr returns the first (function, block, index) whose instruction
// satisfies pred, in program order.
func findInstr(prog *cdfg.Program, pred func(fn *cdfg.Function, in *cdfg.Instr) bool) (*cdfg.Function, *cdfg.Block, int) {
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if pred(fn, &b.Instrs[i]) {
					return fn, b, i
				}
			}
		}
	}
	return nil, nil, -1
}

// mutateOps rewrites every instruction satisfying pred, returning the
// count rewritten.
func mutateOps(prog *cdfg.Program, pred func(in *cdfg.Instr) bool, rewrite func(in *cdfg.Instr)) int {
	n := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if pred(&b.Instrs[i]) {
					rewrite(&b.Instrs[i])
					n++
				}
			}
		}
	}
	return n
}

// insertAt inserts an instruction at position i of the block.
func insertAt(b *cdfg.Block, i int, in cdfg.Instr) {
	b.Instrs = append(b.Instrs, cdfg.Instr{})
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Corpus returns the seeded-mutation corpus: structural IR corruptions
// and statistical/structural PUM corruptions that the static verifier
// must flag, plus semantically visible IR changes that must trip the
// golden differential oracle. Every entry must be caught by one of the
// two — that is the acceptance bar RunCorpus enforces.
func Corpus() []Mutation {
	return []Mutation{
		// --- structural IR corruptions: the static verifier must flag these.
		{Name: "ir-drop-terminator", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			for _, fn := range prog.Funcs {
				for _, b := range fn.Blocks {
					if len(b.Instrs) >= 2 {
						b.Instrs = b.Instrs[:len(b.Instrs)-1]
						return true
					}
				}
			}
			return false
		}},
		{Name: "ir-midblock-terminator", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			for _, fn := range prog.Funcs {
				for _, b := range fn.Blocks {
					if len(b.Instrs) >= 2 {
						insertAt(b, 0, cdfg.Instr{Op: cdfg.OpJmp, Target: b})
						return true
					}
				}
			}
			return false
		}},
		{Name: "ir-foreign-jump-target", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			fn, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpJmp
			})
			if b == nil {
				return false
			}
			for _, other := range prog.Funcs {
				if other != fn && len(other.Blocks) > 0 {
					b.Instrs[i].Target = other.Blocks[0]
					return true
				}
			}
			return false
		}},
		{Name: "ir-nil-branch-arm", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpBr
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Else = nil
			return true
		}},
		{Name: "ir-nil-jump-target", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpJmp
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Target = nil
			return true
		}},
		{Name: "ir-temp-index-oob", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			fn, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Dst.Kind == cdfg.RefTemp
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Dst.Idx = fn.NTemps + 7
			return true
		}},
		{Name: "ir-temp-index-negative", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.A.Kind == cdfg.RefTemp
			})
			if b == nil {
				return false
			}
			b.Instrs[i].A.Idx = -1
			return true
		}},
		{Name: "ir-slot-index-oob", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			fn, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.A.Kind == cdfg.RefSlot
			})
			if b == nil {
				return false
			}
			b.Instrs[i].A.Idx = len(fn.Slots) + 3
			return true
		}},
		{Name: "ir-global-index-oob", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.A.Kind == cdfg.RefGlobal || in.Arr.Kind == cdfg.RefGlobal
			})
			if b == nil {
				return false
			}
			if b.Instrs[i].A.Kind == cdfg.RefGlobal {
				b.Instrs[i].A.Idx = len(prog.Globals) + 5
			} else {
				b.Instrs[i].Arr.Idx = len(prog.Globals) + 5
			}
			return true
		}},
		{Name: "ir-use-undefined-temp", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			if len(prog.Funcs) == 0 {
				return false
			}
			fn := prog.Funcs[0]
			t := fn.NTemps
			fn.NTemps++
			insertAt(fn.Entry(), 0, cdfg.Instr{Op: cdfg.OpOut, A: cdfg.Temp(t)})
			return true
		}},
		{Name: "ir-call-arity", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpCall && len(in.Args) > 0
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Args = b.Instrs[i].Args[:len(b.Instrs[i].Args)-1]
			return true
		}},
		{Name: "ir-unknown-callee", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpCall
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Callee = &cdfg.Function{Name: "phantom"}
			return true
		}},
		{Name: "ir-array-read-as-scalar", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpLoad
			})
			if b == nil {
				return false
			}
			b.Instrs[i].A = b.Instrs[i].Arr
			return true
		}},
		{Name: "ir-scalar-array-base", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			_, b, i := findInstr(prog, func(fn *cdfg.Function, in *cdfg.Instr) bool {
				return in.Op == cdfg.OpLoad
			})
			if b == nil {
				return false
			}
			b.Instrs[i].Arr = cdfg.Temp(0)
			return true
		}},
		{Name: "ir-write-array-as-scalar", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			for _, fn := range prog.Funcs {
				arr := -1
				for si, s := range fn.Slots {
					if s.IsArray {
						arr = si
						break
					}
				}
				if arr < 0 {
					continue
				}
				for _, b := range fn.Blocks {
					for i := range b.Instrs {
						if b.Instrs[i].Dst.Kind == cdfg.RefTemp {
							b.Instrs[i].Dst = cdfg.SlotRef(arr)
							return true
						}
					}
				}
			}
			return false
		}},
		{Name: "ir-duplicate-block-id", Kind: "ir", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			for _, fn := range prog.Funcs {
				if len(fn.Blocks) >= 2 {
					fn.Blocks[1].ID = fn.Blocks[0].ID
					return true
				}
			}
			return false
		}},
		// --- semantic IR mutations: verifier-clean by construction, so the
		// golden differential (Out/Steps vs the pristine program, step-
		// limited) must catch them.
		{Name: "sem-add-becomes-sub", Kind: "semantic", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			return mutateOps(prog,
				func(in *cdfg.Instr) bool { return in.Op == cdfg.OpAdd },
				func(in *cdfg.Instr) { in.Op = cdfg.OpSub }) > 0
		}},
		{Name: "sem-loop-bound-off-by-one", Kind: "semantic", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			return mutateOps(prog,
				func(in *cdfg.Instr) bool { return in.Op == cdfg.OpCmpLt },
				func(in *cdfg.Instr) { in.Op = cdfg.OpCmpLe }) > 0
		}},
		{Name: "sem-xor-becomes-or", Kind: "semantic", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			return mutateOps(prog,
				func(in *cdfg.Instr) bool { return in.Op == cdfg.OpXor || in.Op == cdfg.OpShr },
				func(in *cdfg.Instr) {
					if in.Op == cdfg.OpXor {
						in.Op = cdfg.OpOr
					} else {
						in.Op = cdfg.OpShl
					}
				}) > 0
		}},
		// --- PUM corruptions: the lint (through pum.Validate and the
		// finiteness sweep) must flag every one.
		{Name: "pum-ihit-above-one", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Mem.Current.IHitRate = 1.5
			return true
		}},
		{Name: "pum-dhit-nan", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Mem.Current.DHitRate = math.NaN()
			return true
		}},
		{Name: "pum-negative-miss-penalty", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Mem.Current.IMissPenalty = -4
			return true
		}},
		{Name: "pum-hit-delay-inf", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Mem.Current.DHitDelay = math.Inf(1)
			return true
		}},
		{Name: "pum-branch-missrate-nan", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Branch.MissRate = math.NaN()
			return true
		}},
		{Name: "pum-branch-penalty-negative", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Branch.Penalty = -2
			return true
		}},
		{Name: "pum-table-rate-oob", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			for cfg, st := range p.Mem.Table {
				st.DHitRate = 2
				p.Mem.Table[cfg] = st
				return true
			}
			return false
		}},
		{Name: "pum-unknown-fu", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			info, ok := p.Ops[cdfg.ClassALU]
			if !ok || len(info.Stages) == 0 {
				return false
			}
			info.Stages[len(info.Stages)-1].FU = "bogus"
			p.Ops[cdfg.ClassALU] = info
			return true
		}},
		{Name: "pum-zero-fu-quantity", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			if len(p.FUs) == 0 {
				return false
			}
			p.FUs[0].Quantity = 0
			return true
		}},
		{Name: "pum-stage-count-mismatch", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			info, ok := p.Ops[cdfg.ClassMul]
			if !ok || len(info.Stages) < 2 {
				return false
			}
			info.Stages = info.Stages[:len(info.Stages)-1]
			p.Ops[cdfg.ClassMul] = info
			return true
		}},
		{Name: "pum-demand-out-of-range", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			info, ok := p.Ops[cdfg.ClassALU]
			if !ok {
				return false
			}
			info.Demand = 99
			p.Ops[cdfg.ClassALU] = info
			return true
		}},
		{Name: "pum-commit-before-demand", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			info, ok := p.Ops[cdfg.ClassALU]
			if !ok || len(info.Stages) < 2 {
				return false
			}
			info.Demand = len(info.Stages) - 1
			info.Commit = 0
			p.Ops[cdfg.ClassALU] = info
			return true
		}},
		{Name: "pum-zero-issue-width", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			if len(p.Pipelines) == 0 {
				return false
			}
			p.Pipelines[0].IssueWidth = 0
			return true
		}},
		{Name: "pum-negative-ext-latency", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			p.Mem.ExtLatency = -1
			return true
		}},
		{Name: "pum-unmapped-used-class", Kind: "pum", Apply: func(prog *cdfg.Program, p *pum.PUM) bool {
			if _, ok := p.Ops[cdfg.ClassMul]; !ok {
				return false
			}
			delete(p.Ops, cdfg.ClassMul)
			return true
		}},
	}
}

// CorpusResult records how one mutation was detected. CaughtBy is
// "verifier" (static verification or PUM lint flagged it), "differential"
// (an engine errored or its Out/Steps diverged from the pristine golden
// run), or empty when the mutation escaped — which RunCorpus's callers
// treat as a harness failure.
type CorpusResult struct {
	Name     string
	Kind     string
	CaughtBy string
}

// corpusProg compiles the reference program for the corpus: the MP3 SW
// design (single processor, no channels), one frame.
func corpusProg() (*cdfg.Program, error) {
	return apps.CompileMP3("SW", apps.MP3Config{Frames: 1, Seed: apps.DefaultMP3.Seed})
}

// RunCorpus applies every corpus mutation to a freshly compiled copy of
// the reference program (and a fresh clone of the MicroBlaze model) and
// classifies how it was caught. The golden Out/Steps for the differential
// leg come from one pristine tree-engine run; mutated programs execute
// under a step limit so a mutation that breaks loop termination is
// bounded and counted as caught.
func RunCorpus() ([]CorpusResult, error) {
	golden, err := corpusProg()
	if err != nil {
		return nil, err
	}
	ref, err := interp.NewEngine(golden, interp.EngineTree)
	if err != nil {
		return nil, err
	}
	if err := ref.Run("main"); err != nil {
		return nil, fmt.Errorf("verify: golden run: %w", err)
	}
	goldenOut := slices.Clone(ref.OutStream())
	goldenSteps := ref.StepCount()
	limit := goldenSteps*4 + 100_000

	basePUM, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
	if err != nil {
		return nil, err
	}

	var out []CorpusResult
	for _, m := range Corpus() {
		prog, err := corpusProg()
		if err != nil {
			return nil, err
		}
		p := basePUM.Clone()
		if !m.Apply(prog, p) {
			return nil, fmt.Errorf("verify: mutation %s found no site in the reference program", m.Name)
		}
		r := CorpusResult{Name: m.Name, Kind: m.Kind}
		ds := Program(prog)
		ds = append(ds, Model(p, prog, "main")...)
		if _, failed := Failure(ds, true); failed {
			r.CaughtBy = "verifier"
			out = append(out, r)
			continue
		}
		if diverges(prog, interp.EngineTree, limit, goldenOut, goldenSteps) ||
			diverges(prog, interp.EngineCompiled, limit, goldenOut, goldenSteps) {
			r.CaughtBy = "differential"
		}
		out = append(out, r)
	}
	return out, nil
}

// diverges runs the mutated program on one engine and reports whether the
// observation differs from the golden run in any way: the engine rejects
// the program, the run errors (including hitting the step limit), or the
// Out stream or dynamic step count changed.
func diverges(prog *cdfg.Program, kind interp.EngineKind, limit uint64, goldenOut []int32, goldenSteps uint64) bool {
	m, err := interp.NewEngine(prog, kind)
	if err != nil {
		return true
	}
	m.SetLimit(limit)
	if err := m.Run("main"); err != nil {
		return true
	}
	return m.StepCount() != goldenSteps || !slices.Equal(m.OutStream(), goldenOut)
}
