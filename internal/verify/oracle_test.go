package verify

import (
	"bytes"
	"testing"

	"ese/internal/apps"
	"ese/internal/pum"
)

// TestMetamorphicEstimatorInvariants checks the estimator's metamorphic
// invariants (FU-augmentation monotonicity, x3 delay-scaling envelope,
// perfect-cache zero memory delay, Total >= Sched, finiteness) over every
// block of the largest MP3 mapping on three different processor models.
func TestMetamorphicEstimatorInvariants(t *testing.T) {
	prog, err := apps.CompileMP3("SW+4", apps.MP3Config{Frames: 1, Seed: apps.DefaultMP3.Seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*pum.PUM{cachedMicroBlaze(t), pum.DualIssue(), pum.CustomHW("hw", 100e6)} {
		if ds := CheckEstimatorInvariants(prog, p); len(ds) != 0 {
			t.Errorf("%s: %d invariant violation(s):\n%v", p.Name, len(ds), ds)
		}
	}
}

// TestEngineISSDifferentialAllDesigns is the cross-model differential:
// for every example design, the tree interpreter, the compiled engine and
// the ISS board must agree on the Out streams, and the timed TLM totals
// (Steps, per-PE cycles, EndPs, BusWords) must be identical across the
// two TLM engines.
func TestEngineISSDifferentialAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example design on three execution paths")
	}
	designs, err := ExampleDesigns(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			if ds := DiffDesign(d); len(ds) != 0 {
				t.Errorf("%d disagreement(s):\n%v", len(ds), ds)
			}
		})
	}
}

// TestSuitePasses runs the whole harness exactly as `esebench -validate`
// and the CI job do.
func TestSuitePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation suite")
	}
	var buf bytes.Buffer
	if err := Suite(&buf, 1); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("all checks passed")) {
		t.Errorf("summary line missing:\n%s", buf.String())
	}
}
