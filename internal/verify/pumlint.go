package verify

import (
	"fmt"
	"math"

	"ese/internal/cdfg"
	"ese/internal/diag"
	"ese/internal/platform"
	"ese/internal/pum"
)

// Model lints a processing unit model against the program it will
// estimate:
//
//   - structural and statistical consistency via pum.Validate (stage
//     shapes, FU references, hit rates in [0,1], non-negative finite
//     penalties/delays — including the current memory selection);
//   - an independent finiteness sweep over the statistical fields, so a
//     model mutated after Validate still cannot push NaN/Inf into
//     ComposeEstimate;
//   - op-mapping coverage: a Warning for every op class the program
//     actually uses (restricted to the given entry functions when
//     provided) that the model does not map — estimation would silently
//     degrade those ops to the fallback latency.
//
// Errors mean the model must not be used; Warnings mean estimates will be
// degraded and fail the run only under -Werror.
func Model(p *pum.PUM, prog *cdfg.Program, entries ...string) []diag.Diagnostic {
	var ds []diag.Diagnostic
	errorf := func(format string, args ...any) {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.Error, Stage: diag.StageVerify, Pos: p.Name,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	if err := p.Validate(); err != nil {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.Error, Stage: diag.StageVerify, Pos: p.Name,
			Msg: err.Error(), Err: err,
		})
	}
	// Validate's messages are precise but stop at the first failure; the
	// finiteness sweep is redundant with it by design (defense in depth for
	// models assembled or mutated in Go), so only add what it would miss:
	// non-finite values that sneak past arithmetic on valid inputs.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"branch miss rate", p.Branch.MissRate},
		{"branch penalty", p.Branch.Penalty},
		{"external latency", p.Mem.ExtLatency},
		{"current i-hit rate", p.Mem.Current.IHitRate},
		{"current d-hit rate", p.Mem.Current.DHitRate},
		{"current i-hit delay", p.Mem.Current.IHitDelay},
		{"current d-hit delay", p.Mem.Current.DHitDelay},
		{"current i-miss penalty", p.Mem.Current.IMissPenalty},
		{"current d-miss penalty", p.Mem.Current.DMissPenalty},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			errorf("statistical model field %s is %v", f.name, f.v)
		}
	}
	if prog == nil {
		return ds
	}
	used := UsedClasses(prog, entries...)
	for _, cls := range sortedClasses(used) {
		if _, ok := p.Ops[cls]; !ok {
			ds = append(ds, diag.Diagnostic{
				Severity: diag.Warning, Stage: diag.StageVerify, Pos: p.Name,
				Msg: fmt.Sprintf("op class %v used by %d instructions is not mapped; estimation degrades to fallback latency",
					cls, used[cls]),
			})
		}
	}
	return ds
}

// Design verifies a mapped platform end to end: the shared program, the
// platform-level consistency checks, and every PE's model linted against
// the op classes its own processes reach.
func Design(d *platform.Design) []diag.Diagnostic {
	ds := Program(d.Program)
	if err := d.Validate(); err != nil {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.Error, Stage: diag.StageVerify, Pos: d.Name,
			Msg: err.Error(), Err: err,
		})
	}
	if err := d.ValidateChannels(); err != nil {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.Error, Stage: diag.StageVerify, Pos: d.Name,
			Msg: err.Error(), Err: err,
		})
	}
	for _, pe := range d.PEs {
		var entries []string
		for _, t := range pe.Processes() {
			entries = append(entries, t.Entry)
		}
		for _, md := range Model(pe.PUM, d.Program, entries...) {
			md.Pos = pe.Name + "/" + md.Pos
			ds = append(ds, md)
		}
	}
	return ds
}
