package verify

import "testing"

// TestMutationCorpusCaught is the acceptance bar for the seeded-mutation
// corpus: every corruption must be caught by the static verifier/lint or
// by the golden differential, and the corpus must stay large enough to
// mean something (the issue requires at least 20 entries).
func TestMutationCorpusCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus compiles and runs the reference program per mutation")
	}
	results, err := RunCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 20 {
		t.Fatalf("corpus shrank to %d mutations, want >= 20", len(results))
	}
	kinds := map[string]int{}
	for _, r := range results {
		kinds[r.Kind]++
		switch {
		case r.CaughtBy == "":
			t.Errorf("%-28s (%s) escaped every oracle", r.Name, r.Kind)
		case r.Kind == "ir" && r.CaughtBy != "verifier":
			t.Errorf("%-28s: structural corruption should be caught statically, got %q", r.Name, r.CaughtBy)
		case r.Kind == "pum" && r.CaughtBy != "verifier":
			t.Errorf("%-28s: model corruption should be caught by the lint, got %q", r.Name, r.CaughtBy)
		case r.Kind == "semantic" && r.CaughtBy != "differential":
			t.Errorf("%-28s: semantic mutation should slip the verifier and trip the differential, got %q", r.Name, r.CaughtBy)
		}
	}
	for _, k := range []string{"ir", "pum", "semantic"} {
		if kinds[k] == 0 {
			t.Errorf("corpus lost all %q mutations", k)
		}
	}
}
