// Package verify is the cross-model validation layer of the estimation
// toolset: a static verifier for the CDFG IR, a lint for processing unit
// models, and a metamorphic + differential oracle suite that cross-checks
// the three execution paths (tree interpreter, compiled engine, virtual
// ISS board) and the estimator's invariants against each other.
//
// The verifier exists because the IR sits between a front end, a
// simplifier, three executors, an ISA code generator and a scheduler —
// every one of which assumes structural invariants none of them checks.
// A corrupted or hand-built program that violates them fails far from the
// cause (a nil-pointer panic in the TLM, a silently wrong Total). The
// verifier turns those latent failures into stage-tagged diagnostics at
// the pipeline seam, behind engine.Options.Verify and the -verify flag.
//
// All entry points return plain []diag.Diagnostic slices; Failure
// classifies them under the -Werror convention.
package verify

import (
	"fmt"
	"sort"

	"ese/internal/cdfg"
	"ese/internal/diag"
)

// Failure returns the first diagnostic that fails the run: the first
// Error, or the first Warning when werror is set. ok is false when the
// slice contains nothing that severe.
func Failure(ds []diag.Diagnostic, werror bool) (diag.Diagnostic, bool) {
	for _, d := range ds {
		if d.Severity >= diag.Error || (werror && d.Severity == diag.Warning) {
			return d, true
		}
	}
	return diag.Diagnostic{}, false
}

// Program statically verifies a lowered program against the structural
// invariants every IR consumer assumes:
//
//   - every block is non-empty and ends in exactly one terminator
//     (no terminator appears mid-block);
//   - branch/jump targets are non-nil blocks of the same function, and
//     block IDs are unique within a function (the fingerprints and the
//     profiler key on them);
//   - operand indices are in bounds for their kind (temp, slot, global),
//     array bases are array slots/globals, scalar operands are not;
//   - calls name a function of this program with matching arity and
//     array/scalar argument kinds;
//   - every temp is defined on all paths before it is read (forward
//     must-defined dataflow over the CFG);
//   - the per-block DFG is acyclic: dependence edges only point to
//     earlier instructions.
//
// Diagnostics carry "func/bbN" positions. An empty result means the
// program is well formed.
func Program(prog *cdfg.Program) []diag.Diagnostic {
	v := &verifier{prog: prog, funcs: make(map[*cdfg.Function]bool, len(prog.Funcs))}
	for _, fn := range prog.Funcs {
		v.funcs[fn] = true
	}
	for _, fn := range prog.Funcs {
		v.function(fn)
	}
	return v.ds
}

// verifier carries the per-program verification state.
type verifier struct {
	prog  *cdfg.Program
	funcs map[*cdfg.Function]bool
	ds    []diag.Diagnostic

	// Per-function state.
	fn     *cdfg.Function
	blocks map[*cdfg.Block]bool
}

func (v *verifier) errorf(pos, format string, args ...any) {
	v.ds = append(v.ds, diag.Diagnostic{
		Severity: diag.Error, Stage: diag.StageVerify, Pos: pos,
		Msg: fmt.Sprintf(format, args...),
	})
}

// pos renders the canonical "func/bbN" location of a block.
func (v *verifier) pos(b *cdfg.Block) string {
	return fmt.Sprintf("%s/bb%d", v.fn.Name, b.ID)
}

func (v *verifier) function(fn *cdfg.Function) {
	v.fn = fn
	if len(fn.Blocks) == 0 {
		v.errorf(fn.Name, "function has no blocks")
		return
	}
	v.blocks = make(map[*cdfg.Block]bool, len(fn.Blocks))
	ids := make(map[int]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		v.blocks[b] = true
		if ids[b.ID] {
			v.errorf(v.pos(b), "duplicate block ID %d in function %s", b.ID, fn.Name)
		}
		ids[b.ID] = true
	}
	structOK := true
	for _, b := range fn.Blocks {
		if !v.block(b) {
			structOK = false
		}
	}
	// The dataflow and DFG checks assume per-block structure holds; on a
	// structurally broken function they would report noise after the root
	// cause (or walk nil successors).
	if structOK {
		v.defBeforeUse()
		for _, b := range fn.Blocks {
			v.acyclicDFG(b)
		}
	}
}

// block verifies one block's shape and instructions, reporting whether it
// is structurally sound (non-empty, exactly one trailing terminator, all
// targets in-function).
func (v *verifier) block(b *cdfg.Block) bool {
	pos := v.pos(b)
	if len(b.Instrs) == 0 {
		v.errorf(pos, "empty block: no terminator")
		return false
	}
	ok := true
	for i := range b.Instrs {
		in := &b.Instrs[i]
		last := i == len(b.Instrs)-1
		if in.Op.IsTerminator() && !last {
			v.errorf(pos, "#%d: terminator %v in mid-block position", i, in.Op)
			ok = false
		}
		if last && !in.Op.IsTerminator() {
			v.errorf(pos, "#%d: block ends in non-terminator %v", i, in.Op)
			ok = false
		}
		if !v.instr(b, i, in) {
			ok = false
		}
	}
	return ok
}

// target checks one control-flow edge destination.
func (v *verifier) target(b *cdfg.Block, i int, what string, t *cdfg.Block) bool {
	if t == nil {
		v.errorf(v.pos(b), "#%d: %s target is nil", i, what)
		return false
	}
	if !v.blocks[t] {
		v.errorf(v.pos(b), "#%d: %s target bb%d does not belong to function %s", i, what, t.ID, v.fn.Name)
		return false
	}
	return true
}

// readable checks a scalar source operand; none says whether RefNone is
// permitted in this position.
func (v *verifier) readable(b *cdfg.Block, i int, what string, r cdfg.Ref, none bool) {
	pos := v.pos(b)
	switch r.Kind {
	case cdfg.RefNone:
		if !none {
			v.errorf(pos, "#%d: %s operand is missing", i, what)
		}
	case cdfg.RefConst:
	case cdfg.RefTemp:
		if r.Idx < 0 || r.Idx >= v.fn.NTemps {
			v.errorf(pos, "#%d: %s temp t%d out of range [0,%d)", i, what, r.Idx, v.fn.NTemps)
		}
	case cdfg.RefSlot:
		if r.Idx < 0 || r.Idx >= len(v.fn.Slots) {
			v.errorf(pos, "#%d: %s slot s%d out of range [0,%d)", i, what, r.Idx, len(v.fn.Slots))
		} else if v.fn.Slots[r.Idx].IsArray {
			v.errorf(pos, "#%d: %s reads array slot %s as a scalar", i, what, v.fn.Slots[r.Idx].Name)
		}
	case cdfg.RefGlobal:
		if r.Idx < 0 || r.Idx >= len(v.prog.Globals) {
			v.errorf(pos, "#%d: %s global g%d out of range [0,%d)", i, what, r.Idx, len(v.prog.Globals))
		} else if v.prog.Globals[r.Idx].IsArray {
			v.errorf(pos, "#%d: %s reads array global %s as a scalar", i, what, v.prog.Globals[r.Idx].Name)
		}
	default:
		v.errorf(pos, "#%d: %s operand has unknown kind %d", i, what, r.Kind)
	}
}

// writable checks a scalar destination operand.
func (v *verifier) writable(b *cdfg.Block, i int, r cdfg.Ref, none bool) {
	pos := v.pos(b)
	switch r.Kind {
	case cdfg.RefNone:
		if !none {
			v.errorf(pos, "#%d: destination is missing", i)
		}
	case cdfg.RefTemp:
		if r.Idx < 0 || r.Idx >= v.fn.NTemps {
			v.errorf(pos, "#%d: destination temp t%d out of range [0,%d)", i, r.Idx, v.fn.NTemps)
		}
	case cdfg.RefSlot:
		if r.Idx < 0 || r.Idx >= len(v.fn.Slots) {
			v.errorf(pos, "#%d: destination slot s%d out of range [0,%d)", i, r.Idx, len(v.fn.Slots))
		} else if v.fn.Slots[r.Idx].IsArray {
			v.errorf(pos, "#%d: destination writes array slot %s as a scalar", i, v.fn.Slots[r.Idx].Name)
		}
	case cdfg.RefGlobal:
		if r.Idx < 0 || r.Idx >= len(v.prog.Globals) {
			v.errorf(pos, "#%d: destination global g%d out of range [0,%d)", i, r.Idx, len(v.prog.Globals))
		} else if v.prog.Globals[r.Idx].IsArray {
			v.errorf(pos, "#%d: destination writes array global %s as a scalar", i, v.prog.Globals[r.Idx].Name)
		}
	default:
		v.errorf(pos, "#%d: destination has invalid kind %d (const?)", i, r.Kind)
	}
}

// arrayBase checks an Arr operand: a slot or global that is an array.
func (v *verifier) arrayBase(b *cdfg.Block, i int, r cdfg.Ref) {
	pos := v.pos(b)
	switch r.Kind {
	case cdfg.RefSlot:
		if r.Idx < 0 || r.Idx >= len(v.fn.Slots) {
			v.errorf(pos, "#%d: array base slot s%d out of range [0,%d)", i, r.Idx, len(v.fn.Slots))
		} else if !v.fn.Slots[r.Idx].IsArray {
			v.errorf(pos, "#%d: array base names scalar slot %s", i, v.fn.Slots[r.Idx].Name)
		}
	case cdfg.RefGlobal:
		if r.Idx < 0 || r.Idx >= len(v.prog.Globals) {
			v.errorf(pos, "#%d: array base global g%d out of range [0,%d)", i, r.Idx, len(v.prog.Globals))
		} else if !v.prog.Globals[r.Idx].IsArray {
			v.errorf(pos, "#%d: array base names scalar global %s", i, v.prog.Globals[r.Idx].Name)
		}
	default:
		v.errorf(pos, "#%d: array base must be an array slot or global, got %s", i, r)
	}
}

// instr verifies one instruction's operand shape. The returned flag only
// reports control-flow soundness (nil/foreign targets); operand errors
// are diagnosed but do not block the later dataflow passes.
func (v *verifier) instr(b *cdfg.Block, i int, in *cdfg.Instr) bool {
	pos := v.pos(b)
	switch in.Op {
	case cdfg.OpNop:
	case cdfg.OpBr:
		v.readable(b, i, "condition", in.A, false)
		ok := v.target(b, i, "then", in.Then)
		if !v.target(b, i, "else", in.Else) {
			ok = false
		}
		return ok
	case cdfg.OpJmp:
		return v.target(b, i, "jump", in.Target)
	case cdfg.OpRet:
		v.readable(b, i, "return value", in.A, true)
	case cdfg.OpLoad:
		v.arrayBase(b, i, in.Arr)
		v.readable(b, i, "index", in.A, false)
		v.writable(b, i, in.Dst, false)
	case cdfg.OpStore:
		v.arrayBase(b, i, in.Arr)
		v.readable(b, i, "index", in.A, false)
		v.readable(b, i, "value", in.B, false)
	case cdfg.OpSend, cdfg.OpRecv:
		v.arrayBase(b, i, in.Arr)
		v.readable(b, i, "word count", in.A, false)
		if in.Chan < 0 {
			v.errorf(pos, "#%d: negative channel id %d", i, in.Chan)
		}
	case cdfg.OpOut:
		v.readable(b, i, "out", in.A, false)
	case cdfg.OpCall:
		v.call(b, i, in)
	case cdfg.OpMov, cdfg.OpNeg, cdfg.OpNot:
		v.readable(b, i, "operand", in.A, false)
		v.writable(b, i, in.Dst, false)
	default:
		// Binary arithmetic, logic and comparisons.
		v.readable(b, i, "left", in.A, false)
		v.readable(b, i, "right", in.B, false)
		v.writable(b, i, in.Dst, false)
	}
	return true
}

// call verifies an OpCall: known callee, matching arity, array arguments
// exactly where the callee declares array parameters.
func (v *verifier) call(b *cdfg.Block, i int, in *cdfg.Instr) {
	pos := v.pos(b)
	if in.Callee == nil {
		v.errorf(pos, "#%d: call has no callee", i)
		return
	}
	if !v.funcs[in.Callee] {
		v.errorf(pos, "#%d: callee %s is not a function of this program", i, in.Callee.Name)
		return
	}
	if len(in.Args) != len(in.Callee.Params) {
		v.errorf(pos, "#%d: call %s with %d args, wants %d",
			i, in.Callee.Name, len(in.Args), len(in.Callee.Params))
		return
	}
	for ai, a := range in.Args {
		if in.Callee.Params[ai].IsArray {
			v.arrayBase(b, i, a)
		} else {
			v.readable(b, i, fmt.Sprintf("arg %d", ai), a, false)
		}
	}
	v.writable(b, i, in.Dst, true)
}

// ------------------------------------------------------- def-before-use

// bitset is a fixed-size bit vector over the function's temps.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// intersectInto ANDs src into dst, reporting whether dst changed.
func (s bitset) intersect(src bitset) bool {
	changed := false
	for i := range s {
		n := s[i] & src[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) union(src bitset) {
	for i := range s {
		s[i] |= src[i]
	}
}

func (s bitset) clone() bitset { return append(bitset(nil), s...) }

// tempUse is one read of a temp not preceded by a definition in its own
// block — whether it is an error depends on what flows in from the
// predecessors.
type tempUse struct {
	block *cdfg.Block
	instr int
	temp  int
}

// defBeforeUse runs a forward must-defined dataflow analysis over the
// function's temps and reports every temp read that some path reaches
// without a prior definition. Temps are virtual registers with no
// implicit zero value in the code model, so such a read is undefined
// behavior for every consumer (and the compiled engine would read a
// stale register).
func (v *verifier) defBeforeUse() {
	fn := v.fn
	if fn.NTemps == 0 {
		return
	}
	gen := make(map[*cdfg.Block]bitset, len(fn.Blocks))
	exposed := make([]tempUse, 0)
	for _, b := range fn.Blocks {
		g := newBitset(fn.NTemps)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range v.instrReads(in) {
				if r.Kind == cdfg.RefTemp && r.Idx >= 0 && r.Idx < fn.NTemps && !g.has(r.Idx) {
					exposed = append(exposed, tempUse{block: b, instr: i, temp: r.Idx})
				}
			}
			if d := instrWrite(in); d.Kind == cdfg.RefTemp && d.Idx >= 0 && d.Idx < fn.NTemps {
				g.set(d.Idx)
			}
		}
		gen[b] = g
	}
	// IN[entry] = ∅; IN[b] = ∩ over preds of OUT[pred]; OUT[b] = IN[b] ∪ gen[b].
	// Non-entry blocks start from the full set (standard must-analysis
	// initialization) and a worklist drives them down to the fixpoint.
	in := make(map[*cdfg.Block]bitset, len(fn.Blocks))
	for _, b := range fn.Blocks {
		s := newBitset(fn.NTemps)
		if b != fn.Entry() {
			s.fill()
		}
		in[b] = s
	}
	preds := make(map[*cdfg.Block][]*cdfg.Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	work := append([]*cdfg.Block(nil), fn.Blocks...)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b].clone()
		out.union(gen[b])
		for _, s := range b.Succs() {
			if s == fn.Entry() {
				continue // entry keeps its empty IN: temps never flow in
			}
			if in[s].intersect(out) {
				work = append(work, s)
			}
		}
	}
	for _, u := range exposed {
		if !in[u.block].has(u.temp) {
			v.errorf(v.pos(u.block), "#%d: temp t%d read before any definition reaches it",
				u.instr, u.temp)
		}
	}
}

// instrReads lists the scalar refs an instruction reads, in evaluation
// order (reads happen before the write, so "t1 = t1 + 1" is well formed).
func (v *verifier) instrReads(in *cdfg.Instr) []cdfg.Ref {
	switch in.Op {
	case cdfg.OpJmp, cdfg.OpNop:
		return nil
	case cdfg.OpBr, cdfg.OpRet, cdfg.OpOut, cdfg.OpSend, cdfg.OpRecv:
		return []cdfg.Ref{in.A}
	case cdfg.OpLoad, cdfg.OpMov, cdfg.OpNeg, cdfg.OpNot:
		return []cdfg.Ref{in.A}
	case cdfg.OpCall:
		return in.Args
	default: // stores and binary ops
		return []cdfg.Ref{in.A, in.B}
	}
}

// instrWrite returns the scalar ref an instruction defines, or RefNone.
func instrWrite(in *cdfg.Instr) cdfg.Ref {
	switch in.Op {
	case cdfg.OpStore, cdfg.OpBr, cdfg.OpJmp, cdfg.OpRet, cdfg.OpOut,
		cdfg.OpSend, cdfg.OpRecv, cdfg.OpNop:
		return cdfg.Ref{}
	default:
		return in.Dst
	}
}

// ------------------------------------------------------- DFG acyclicity

// acyclicDFG checks that the block's dependence graph is a DAG in
// instruction order: every edge of Deps[i] must point to an earlier
// instruction. BuildDFG constructs it that way; a violation means the
// block was mutated behind the builder's invariants and Algorithm 1's
// topological scheduling would loop or drop operations.
func (v *verifier) acyclicDFG(b *cdfg.Block) {
	d := cdfg.BuildDFG(b)
	for i, deps := range d.Deps {
		for _, j := range deps {
			if j < 0 || j >= i {
				v.errorf(v.pos(b), "#%d: DFG edge to #%d breaks instruction-order acyclicity", i, j)
			}
		}
	}
}

// UsedClasses counts the operation classes used by the functions reachable
// from the named entries (every function when entries is empty or names
// nothing). The PUM lint compares this against the model's op-mapping
// coverage, so a hardware PE is only held to the classes its own entry
// actually executes.
func UsedClasses(prog *cdfg.Program, entries ...string) map[cdfg.Class]int {
	fns := reachable(prog, entries)
	used := make(map[cdfg.Class]int)
	for _, fn := range fns {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if c := cdfg.OpClass(b.Instrs[i].Op); c != cdfg.ClassNone {
					used[c]++
				}
			}
		}
	}
	return used
}

// reachable returns the functions reachable from the named entries via
// static calls, or all functions when no entry resolves.
func reachable(prog *cdfg.Program, entries []string) []*cdfg.Function {
	var roots []*cdfg.Function
	for _, e := range entries {
		for _, fn := range prog.Funcs {
			if fn.Name == e {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return prog.Funcs
	}
	seen := make(map[*cdfg.Function]bool)
	var visit func(fn *cdfg.Function)
	visit = func(fn *cdfg.Function) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if c := b.Instrs[i].Callee; c != nil {
					visit(c)
				}
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	out := make([]*cdfg.Function, 0, len(seen))
	for _, fn := range prog.Funcs { // deterministic program order
		if seen[fn] {
			out = append(out, fn)
		}
	}
	return out
}

// sortedClasses returns the keys of a class-usage map in enum order, for
// deterministic diagnostics.
func sortedClasses(m map[cdfg.Class]int) []cdfg.Class {
	out := make([]cdfg.Class, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
