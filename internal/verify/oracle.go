package verify

import (
	"fmt"
	"io"
	"math"
	"slices"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/interp"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtl"
	"ese/internal/tlm"
)

// ExampleDesigns builds every example design the repository evaluates —
// the four MP3 mappings (SW, SW+1, SW+2, SW+4) and the two JPEG mappings
// (SW, SW+DCT) — on the MicroBlaze-like model with the standard 8k/4k
// cache configuration. frames sizes the MP3 workload.
func ExampleDesigns(frames int) ([]*platform.Design, error) {
	mb := pum.MicroBlaze()
	cc := pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}
	mp3 := apps.MP3Config{Frames: frames, Seed: apps.DefaultMP3.Seed}
	jpeg := apps.JPEGConfig{Blocks: 8, Seed: apps.DefaultJPEG.Seed}
	var out []*platform.Design
	for _, name := range apps.MP3DesignNames {
		d, err := apps.MP3Design(name, mp3, mb, cc)
		if err != nil {
			return nil, fmt.Errorf("verify: building MP3 %s: %w", name, err)
		}
		out = append(out, d)
	}
	for _, name := range []string{"SW", "SW+DCT"} {
		d, err := apps.JPEGDesign(name, jpeg, mb, cc)
		if err != nil {
			return nil, fmt.Errorf("verify: building JPEG %s: %w", name, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// mismatch records one differential-oracle disagreement as an Error
// diagnostic positioned at the design.
func mismatch(ds []diag.Diagnostic, pos, format string, args ...any) []diag.Diagnostic {
	return append(ds, diag.Diagnostic{
		Severity: diag.Error, Stage: diag.StageVerify, Pos: pos,
		Msg: fmt.Sprintf(format, args...),
	})
}

// DiffDesign runs one design's timed TLM under the tree-walking and the
// compiled execution engines — and under the ahead-of-time generated
// engine when one is registered for the program — and its cycle-accurate
// board simulation (processor PEs execute ISS-generated ISA code there),
// and cross-checks them:
//
//   - tree vs compiled (and tree vs gen) must agree exactly on every
//     observable: per-PE Out streams, total dynamic steps, per-PE cycle
//     totals, simulated end time and bus words;
//   - the board's per-PE Out streams must match the TLM's bit for bit
//     (the functional differential against the reference ISA path);
//   - per-PE board cycle totals must be positive wherever the TLM charged
//     cycles — the estimate and the measurement may legitimately diverge
//     by the paper's error margin, but a zero or missing measurement
//     means a path was silently skipped.
//
// Every disagreement is returned as an Error diagnostic.
func DiffDesign(d *platform.Design) []diag.Diagnostic {
	var ds []diag.Diagnostic
	run := func(kind interp.EngineKind) (*tlm.Result, error) {
		return tlm.Run(d, tlm.Options{
			Timed:    true,
			WaitMode: tlm.WaitAtTransactions,
			Detail:   core.FullDetail,
			Engine:   kind,
		})
	}
	rt, err := run(interp.EngineTree)
	if err != nil {
		return mismatch(ds, d.Name, "tree engine failed: %v", err)
	}
	compare := func(tier string, rc *tlm.Result) {
		for _, pe := range d.PEs {
			if !slices.Equal(rt.OutByPE[pe.Name], rc.OutByPE[pe.Name]) {
				ds = mismatch(ds, d.Name+"/"+pe.Name, "Out stream diverges between tree and %s engines", tier)
			}
		}
		if rt.Steps != rc.Steps {
			ds = mismatch(ds, d.Name, "Steps diverge: tree %d, %s %d", rt.Steps, tier, rc.Steps)
		}
		for _, pe := range d.PEs {
			if rt.CyclesByPE[pe.Name] != rc.CyclesByPE[pe.Name] {
				ds = mismatch(ds, d.Name+"/"+pe.Name, "cycle totals diverge: tree %d, %s %d",
					rt.CyclesByPE[pe.Name], tier, rc.CyclesByPE[pe.Name])
			}
		}
		if rt.EndPs != rc.EndPs {
			ds = mismatch(ds, d.Name, "EndPs diverges: tree %d, %s %d", rt.EndPs, tier, rc.EndPs)
		}
		if rt.BusWords != rc.BusWords {
			ds = mismatch(ds, d.Name, "BusWords diverge: tree %d, %s %d", rt.BusWords, tier, rc.BusWords)
		}
	}
	rc, err := run(interp.EngineCompiled)
	if err != nil {
		return mismatch(ds, d.Name, "compiled engine failed: %v", err)
	}
	compare("compiled", rc)
	if interp.GeneratedFor(d.Program) != nil {
		rg, err := run(interp.EngineGen)
		if err != nil {
			return mismatch(ds, d.Name, "generated engine failed: %v", err)
		}
		compare("gen", rg)
	}
	board, err := rtl.RunBoard(d, 0)
	if err != nil {
		return mismatch(ds, d.Name, "board simulation failed: %v", err)
	}
	for _, pe := range d.PEs {
		br := board.PEs[pe.Name]
		if br == nil {
			ds = mismatch(ds, d.Name+"/"+pe.Name, "board result has no entry for this PE")
			continue
		}
		if !slices.Equal(rt.OutByPE[pe.Name], br.Out) {
			ds = mismatch(ds, d.Name+"/"+pe.Name,
				"Out stream diverges between the TLM and the ISS board (%d vs %d samples)",
				len(rt.OutByPE[pe.Name]), len(br.Out))
		}
		if rt.CyclesByPE[pe.Name] > 0 && br.Cycles == 0 {
			ds = mismatch(ds, d.Name+"/"+pe.Name,
				"TLM charged %d cycles but the board measured none", rt.CyclesByPE[pe.Name])
		}
	}
	return ds
}

// CheckEstimatorInvariants checks the metamorphic invariants of the
// two-phase estimator (Algorithms 1+2) on every block of the program
// against the model:
//
//   - validity: every component is finite, the statistical penalties are
//     non-negative, and Total ≥ Sched;
//   - resource monotonicity: adding one instance of any functional unit
//     never increases the Algorithm 1 schedule;
//   - delay scaling: multiplying every datapath stage latency by k keeps
//     the schedule within [Sched, k·Sched] — the sound envelope of a
//     uniform slowdown (exact proportionality is broken only by issue
//     and pipeline-register cycles, which do not scale);
//   - perfect cache: hit rates of 1 with zero hit delays produce exactly
//     zero IDelay and DDelay.
//
// Each violation is one Error diagnostic positioned at "func/bbN".
func CheckEstimatorInvariants(prog *cdfg.Program, p *pum.PUM) []diag.Diagnostic {
	var ds []diag.Diagnostic
	const k = 3
	scaled := p.Clone()
	for cls, info := range scaled.Ops {
		for si := range info.Stages {
			info.Stages[si].Cycles *= k
		}
		scaled.Ops[cls] = info
	}
	perfect := p.Clone()
	perfect.Mem.Current = pum.MemStats{IHitRate: 1, DHitRate: 1}
	augmented := make([]*pum.PUM, len(p.FUs))
	for fi := range p.FUs {
		q := p.Clone()
		q.FUs[fi].Quantity++
		augmented[fi] = q
	}
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			pos := fmt.Sprintf("%s/%s/bb%d", p.Name, fn.Name, b.ID)
			base := core.BlockDelay(b, p, core.FullDetail)
			for _, v := range []struct {
				name string
				val  float64
			}{
				{"Total", base.Total}, {"BranchPen", base.BranchPen},
				{"IDelay", base.IDelay}, {"DDelay", base.DDelay},
			} {
				if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
					ds = mismatch(ds, pos, "estimate component %s is %v", v.name, v.val)
				}
				if v.val < 0 {
					ds = mismatch(ds, pos, "estimate component %s is negative: %v", v.name, v.val)
				}
			}
			if base.Total < float64(base.Sched) {
				ds = mismatch(ds, pos, "Total %v below Sched %d", base.Total, base.Sched)
			}
			for fi, q := range augmented {
				if e := core.BlockDelay(b, q, core.FullDetail); e.Sched > base.Sched {
					ds = mismatch(ds, pos, "adding an instance of FU %q raised Sched %d -> %d",
						p.FUs[fi].ID, base.Sched, e.Sched)
				}
			}
			if e := core.BlockDelay(b, scaled, core.FullDetail); e.Sched < base.Sched || e.Sched > k*base.Sched {
				ds = mismatch(ds, pos, "scaling datapath delays x%d moved Sched %d outside [%d,%d]: %d",
					k, base.Sched, base.Sched, k*base.Sched, e.Sched)
			}
			if e := core.BlockDelay(b, perfect, core.FullDetail); e.IDelay != 0 || e.DDelay != 0 {
				ds = mismatch(ds, pos, "perfect cache left memory delay (i=%v d=%v)", e.IDelay, e.DDelay)
			}
		}
	}
	return ds
}

// Suite runs the whole validation harness — static verification and PUM
// lint of every example design, the tree/compiled/board differential, the
// metamorphic estimator invariants, and the seeded-mutation corpus — and
// writes a one-line summary per step to w. It returns the first hard
// failure (nil when everything holds). This is what `esebench -validate`
// and the CI validate job run.
func Suite(w io.Writer, frames int) error {
	if frames <= 0 {
		frames = 1
	}
	designs, err := ExampleDesigns(frames)
	if err != nil {
		return err
	}
	fail := 0
	report := func(ds []diag.Diagnostic, what, name string) {
		bad := 0
		for _, d := range ds {
			if d.Severity >= diag.Warning {
				bad++
				fmt.Fprintf(w, "  %s\n", d)
			}
		}
		if bad > 0 {
			fail += bad
			fmt.Fprintf(w, "FAIL %-12s %-16s %d finding(s)\n", what, name, bad)
			return
		}
		fmt.Fprintf(w, "ok   %-12s %s\n", what, name)
	}
	for _, d := range designs {
		report(Design(d), "static", d.Name)
	}
	for _, d := range designs {
		report(DiffDesign(d), "differential", d.Name)
	}
	for _, d := range designs {
		var ds []diag.Diagnostic
		for _, pe := range d.PEs {
			ds = append(ds, CheckEstimatorInvariants(d.Program, pe.PUM)...)
		}
		report(ds, "metamorphic", d.Name)
	}
	results, err := RunCorpus()
	if err != nil {
		return err
	}
	uncaught := 0
	for _, r := range results {
		if r.CaughtBy == "" {
			uncaught++
			fmt.Fprintf(w, "FAIL mutation     %-28s escaped every oracle\n", r.Name)
		} else {
			fmt.Fprintf(w, "ok   mutation     %-28s caught by %s\n", r.Name, r.CaughtBy)
		}
	}
	fail += uncaught
	if fail > 0 {
		return fmt.Errorf("verify: validation suite found %d failure(s)", fail)
	}
	fmt.Fprintf(w, "validation suite: %d designs, %d seeded mutations, all checks passed\n",
		len(designs), len(results))
	return nil
}
