package verify

import (
	"strings"
	"testing"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/diag"
)

// buildFn assembles a small, well-formed two-function program by hand:
//
//	f:  bb0: t0 = 1; br t0 -> bb1, bb2
//	    bb1: t1 = t0 + 2; s0 = t1; jmp bb3
//	    bb2: t1 = 0; jmp bb3
//	    bb3: store a[0] = t1; out(t1); ret
//	g:  bb0: ret
//
// t1 is defined on both branch arms, so the must-defined analysis accepts
// its use in bb3; tests then corrupt copies of this program.
func buildProg() *cdfg.Program {
	f := &cdfg.Function{Name: "f", NTemps: 2}
	f.Slots = []*cdfg.Slot{
		{Name: "x", Size: 1},
		{Name: "a", IsArray: true, Size: 4},
	}
	b0 := &cdfg.Block{ID: 0, Fn: f}
	b1 := &cdfg.Block{ID: 1, Fn: f}
	b2 := &cdfg.Block{ID: 2, Fn: f}
	b3 := &cdfg.Block{ID: 3, Fn: f}
	b0.Instrs = []cdfg.Instr{
		{Op: cdfg.OpMov, Dst: cdfg.Temp(0), A: cdfg.Const(1)},
		{Op: cdfg.OpBr, A: cdfg.Temp(0), Then: b1, Else: b2},
	}
	b1.Instrs = []cdfg.Instr{
		{Op: cdfg.OpAdd, Dst: cdfg.Temp(1), A: cdfg.Temp(0), B: cdfg.Const(2)},
		{Op: cdfg.OpMov, Dst: cdfg.SlotRef(0), A: cdfg.Temp(1)},
		{Op: cdfg.OpJmp, Target: b3},
	}
	b2.Instrs = []cdfg.Instr{
		{Op: cdfg.OpMov, Dst: cdfg.Temp(1), A: cdfg.Const(0)},
		{Op: cdfg.OpJmp, Target: b3},
	}
	b3.Instrs = []cdfg.Instr{
		{Op: cdfg.OpStore, Arr: cdfg.SlotRef(1), A: cdfg.Const(0), B: cdfg.Temp(1)},
		{Op: cdfg.OpOut, A: cdfg.Temp(1)},
		{Op: cdfg.OpRet},
	}
	f.Blocks = []*cdfg.Block{b0, b1, b2, b3}

	g := &cdfg.Function{Name: "g"}
	gb := &cdfg.Block{ID: 0, Fn: g, Instrs: []cdfg.Instr{{Op: cdfg.OpRet}}}
	g.Blocks = []*cdfg.Block{gb}

	return &cdfg.Program{
		Globals: []*cdfg.Global{
			{Name: "gv", Size: 1},
			{Name: "ga", IsArray: true, Size: 8},
		},
		Funcs: []*cdfg.Function{f, g},
	}
}

func errorCount(ds []diag.Diagnostic) int {
	n := 0
	for _, d := range ds {
		if d.Severity == diag.Error {
			n++
		}
	}
	return n
}

func wantError(t *testing.T, ds []diag.Diagnostic, substr string) {
	t.Helper()
	for _, d := range ds {
		if d.Severity == diag.Error && strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Errorf("no error diagnostic containing %q; got:\n%v", substr, ds)
}

func TestProgramAcceptsWellFormedIR(t *testing.T) {
	if ds := Program(buildProg()); len(ds) != 0 {
		t.Fatalf("well-formed program rejected:\n%v", ds)
	}
}

func TestProgramAcceptsCompiledExamples(t *testing.T) {
	for _, name := range apps.MP3DesignNames {
		prog, err := apps.CompileMP3(name, apps.MP3Config{Frames: 1, Seed: 0xC0FFEE})
		if err != nil {
			t.Fatal(err)
		}
		if ds := Program(prog); len(ds) != 0 {
			t.Errorf("%s: front-end output rejected:\n%v", name, ds)
		}
		// The simplifier must also preserve every verified invariant.
		cdfg.SimplifyProgram(prog)
		if ds := Program(prog); len(ds) != 0 {
			t.Errorf("%s: simplified program rejected:\n%v", name, ds)
		}
	}
}

func TestProgramFlagsStructuralCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *cdfg.Program)
		substr  string
	}{
		{"empty block", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs = nil
		}, "empty block"},
		{"missing terminator", func(p *cdfg.Program) {
			b := p.Funcs[0].Blocks[3]
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}, "non-terminator"},
		{"mid-block terminator", func(p *cdfg.Program) {
			b := p.Funcs[0].Blocks[1]
			b.Instrs[0] = cdfg.Instr{Op: cdfg.OpJmp, Target: b}
		}, "mid-block"},
		{"nil jump target", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[2].Target = nil
		}, "target is nil"},
		{"nil branch arm", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[0].Instrs[1].Else = nil
		}, "target is nil"},
		{"foreign jump target", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[2].Target = p.Funcs[1].Blocks[0]
		}, "does not belong to function"},
		{"duplicate block id", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[2].ID = p.Funcs[0].Blocks[1].ID
		}, "duplicate block ID"},
		{"temp out of range", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[0].Dst.Idx = 99
		}, "out of range"},
		{"negative temp index", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[0].A.Idx = -1
		}, "out of range"},
		{"slot out of range", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[1].Dst.Idx = 7
		}, "out of range"},
		{"global out of range", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs[1].A = cdfg.GlobalRef(9)
		}, "out of range"},
		{"array slot read as scalar", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs[1].A = cdfg.SlotRef(1)
		}, "as a scalar"},
		{"array global written as scalar", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[1].Instrs[1].Dst = cdfg.GlobalRef(1)
		}, "as a scalar"},
		{"scalar array base", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs[0].Arr = cdfg.SlotRef(0)
		}, "array base"},
		{"const array base", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs[0].Arr = cdfg.Const(3)
		}, "array base"},
		{"missing branch condition", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[0].Instrs[1].A = cdfg.Ref{}
		}, "missing"},
		{"negative channel", func(p *cdfg.Program) {
			p.Funcs[0].Blocks[3].Instrs[0] = cdfg.Instr{
				Op: cdfg.OpSend, Arr: cdfg.SlotRef(1), A: cdfg.Const(1), Chan: -2,
			}
		}, "negative channel"},
	}
	for _, tc := range cases {
		prog := buildProg()
		tc.corrupt(prog)
		ds := Program(prog)
		if errorCount(ds) == 0 {
			t.Errorf("%s: corruption not flagged", tc.name)
			continue
		}
		wantError(t, ds, tc.substr)
	}
}

func TestProgramFlagsCallCorruption(t *testing.T) {
	prog := buildProg()
	f, g := prog.Funcs[0], prog.Funcs[1]
	// Give g one scalar and one array parameter and call it from f.
	g.Slots = []*cdfg.Slot{
		{Name: "n", Size: 1, IsParam: true, ParamIx: 0},
		{Name: "buf", IsArray: true, IsParam: true, ParamIx: 1},
	}
	g.Params = g.Slots
	call := cdfg.Instr{
		Op: cdfg.OpCall, Callee: g,
		Args: []cdfg.Ref{cdfg.Const(3), cdfg.SlotRef(1)},
	}
	b3 := f.Blocks[3]
	b3.Instrs = append([]cdfg.Instr{call}, b3.Instrs...)
	if ds := Program(prog); len(ds) != 0 {
		t.Fatalf("well-formed call rejected:\n%v", ds)
	}

	arity := buildProg()
	wireCall := func(p *cdfg.Program, mutate func(in *cdfg.Instr)) []diag.Diagnostic {
		g2 := p.Funcs[1]
		g2.Slots = []*cdfg.Slot{
			{Name: "n", Size: 1, IsParam: true, ParamIx: 0},
			{Name: "buf", IsArray: true, IsParam: true, ParamIx: 1},
		}
		g2.Params = g2.Slots
		in := cdfg.Instr{
			Op: cdfg.OpCall, Callee: g2,
			Args: []cdfg.Ref{cdfg.Const(3), cdfg.SlotRef(1)},
		}
		mutate(&in)
		b := p.Funcs[0].Blocks[3]
		b.Instrs = append([]cdfg.Instr{in}, b.Instrs...)
		return Program(p)
	}
	wantError(t, wireCall(arity, func(in *cdfg.Instr) { in.Args = in.Args[:1] }), "wants 2")
	wantError(t, wireCall(buildProg(), func(in *cdfg.Instr) { in.Callee = nil }), "no callee")
	wantError(t, wireCall(buildProg(), func(in *cdfg.Instr) {
		in.Callee = &cdfg.Function{Name: "phantom"}
	}), "not a function of this program")
	wantError(t, wireCall(buildProg(), func(in *cdfg.Instr) {
		in.Args[1] = cdfg.Const(0) // scalar where an array param is declared
	}), "array base")
}

func TestProgramFlagsUseBeforeDef(t *testing.T) {
	// Remove the definition of t1 on the else arm: bb3's read of t1 is now
	// reachable undefined through bb2.
	prog := buildProg()
	b2 := prog.Funcs[0].Blocks[2]
	b2.Instrs = b2.Instrs[1:] // drop "t1 = 0", keep the jmp
	ds := Program(prog)
	wantError(t, ds, "read before any definition")

	// A definition that dominates its use (both arms define, as built) and
	// a same-instruction read-then-write ("t0 = t0 + 1" in a loop) are fine.
	loop := buildProg()
	b1 := loop.Funcs[0].Blocks[1]
	b1.Instrs[0] = cdfg.Instr{Op: cdfg.OpAdd, Dst: cdfg.Temp(0), A: cdfg.Temp(0), B: cdfg.Const(1)}
	b1.Instrs[1] = cdfg.Instr{Op: cdfg.OpMov, Dst: cdfg.Temp(1), A: cdfg.Temp(0)}
	if ds := Program(loop); len(ds) != 0 {
		t.Fatalf("read-modify-write flagged:\n%v", ds)
	}
}

func TestFailureClassification(t *testing.T) {
	warn := diag.Diagnostic{Severity: diag.Warning, Stage: diag.StageVerify, Msg: "w"}
	errd := diag.Diagnostic{Severity: diag.Error, Stage: diag.StageVerify, Msg: "e"}
	info := diag.Diagnostic{Severity: diag.Info, Stage: diag.StageVerify, Msg: "i"}
	if _, bad := Failure([]diag.Diagnostic{info, warn}, false); bad {
		t.Error("warning failed the run without -Werror")
	}
	if d, bad := Failure([]diag.Diagnostic{info, warn}, true); !bad || d.Msg != "w" {
		t.Error("-Werror did not promote the warning")
	}
	if d, bad := Failure([]diag.Diagnostic{warn, errd}, false); !bad || d.Msg != "e" {
		t.Error("error diagnostic did not fail the run")
	}
}
