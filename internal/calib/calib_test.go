package calib

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ese/internal/apps"
	"ese/internal/cli"
	"ese/internal/pum"
	"ese/internal/rtl"
)

// small is a reduced matrix that keeps unit tests fast: one design per
// application, two cache configurations, the two single-app training sets.
func small() Options {
	return Options{
		Frames:  1,
		Blocks:  4,
		Trains:  []string{"mp3", "jpeg"},
		Designs: []string{"SW"},
		Configs: []pum.CacheCfg{{ISize: 0, DSize: 0}, {ISize: 8192, DSize: 4096}},
	}
}

func TestCalibrateMergesTrainings(t *testing.T) {
	mp3, err := apps.CompileMP3("SW", apps.TrainMP3)
	if err != nil {
		t.Fatal(err)
	}
	jpeg, err := apps.Compile("jpeg_train.c", apps.JPEGSource(apps.TrainJPEG))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []pum.CacheCfg{{ISize: 4096, DSize: 4096}, {ISize: 16384, DSize: 16384}}
	both := []Training{
		{Name: "mp3", Prog: mp3, Entry: "main"},
		{Name: "jpeg", Prog: jpeg, Entry: "main"},
	}
	merged, reps, err := Calibrate(pum.MicroBlaze(), both, cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}
	// Provenance: one entry per (config, program) pair, labeled by program.
	if len(merged.Calib) != 4 {
		t.Fatalf("provenance has %d entries, want 4", len(merged.Calib))
	}
	labels := map[string]int{}
	for _, cs := range merged.Calib {
		labels[cs.Train]++
	}
	if labels["mp3"] != 2 || labels["jpeg"] != 2 {
		t.Fatalf("provenance labels %v, want 2 each of mp3/jpeg", labels)
	}
	// The merged branch miss rate is the mean of the per-program rates.
	want := (reps[0].BranchMiss + reps[1].BranchMiss) / 2
	if merged.Branch.MissRate != want {
		t.Errorf("merged miss rate %v, want mean %v", merged.Branch.MissRate, want)
	}
	// Merged hit rates sit between the per-program extremes.
	for _, cfg := range cfgs {
		m := merged.Mem.Table[cfg]
		a, b := reps[0].Stats, reps[1].Stats
		var lo, hi float64
		for i := range a {
			if a[i].Cfg == cfg {
				lo, hi = a[i].Mem.IHitRate, b[i].Mem.IHitRate
			}
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		if m.IHitRate < lo || m.IHitRate > hi {
			t.Errorf("%v: merged IHitRate %v outside [%v, %v]", cfg, m.IHitRate, lo, hi)
		}
	}

	if _, _, err := Calibrate(pum.MicroBlaze(), nil, cfgs, 0); err == nil {
		t.Fatal("empty training list: want error")
	}
	if _, _, err := Calibrate(pum.MicroBlaze(), both, []pum.CacheCfg{{}}, 0); !errors.Is(err, rtl.ErrUncalibrated) {
		t.Fatalf("all-uncached: want ErrUncalibrated, got %v", err)
	}
}

// Property: every memory snapshot recorded anywhere in the calibration
// matrix — all training programs, all standard configurations, including a
// degenerate program with no data traffic — passes pum.MemStats.Validate,
// and the calibrated models validate as a whole.
func TestCalibrationMatrixSnapshotsValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	progs := map[string]string{
		"mp3":  "",
		"jpeg": "",
		"min":  `void main() { out(7); }`,
	}
	for name, src := range progs {
		var tr Training
		switch name {
		case "mp3":
			p, err := apps.CompileMP3("SW", apps.TrainMP3)
			if err != nil {
				t.Fatal(err)
			}
			tr = Training{Name: name, Prog: p, Entry: "main"}
		case "jpeg":
			p, err := apps.Compile("jpeg_train.c", apps.JPEGSource(apps.TrainJPEG))
			if err != nil {
				t.Fatal(err)
			}
			tr = Training{Name: name, Prog: p, Entry: "main"}
		default:
			p, err := apps.Compile(name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			tr = Training{Name: name, Prog: p, Entry: "main"}
		}
		out, reps, err := Calibrate(pum.MicroBlaze(), []Training{tr}, pum.StandardCacheConfigs, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rep := range reps {
			for _, cs := range rep.Stats {
				if err := cs.Mem.Validate(); err != nil {
					t.Errorf("%s %v: snapshot invalid: %v", name, cs.Cfg, err)
				}
			}
		}
		for cfg, st := range out.Mem.Table {
			if err := st.Validate(); err != nil {
				t.Errorf("%s %v: table entry invalid: %v", name, cfg, err)
			}
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s: model invalid: %v", name, err)
		}
	}
}

// Golden determinism: the scoreboard — row ordering included — must be
// byte-identical across runs, because the Compare gate diffs cycles
// exactly and CI regenerates the JSON on every run.
func TestScoreboardDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two scoreboard runs in -short mode")
	}
	a, err := RunScoreboard(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScoreboard(small())
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("scoreboard not deterministic:\n--- run 1\n%s\n--- run 2\n%s", aj, bj)
	}
	// Row order is the nested matrix order: trains, then apps, then designs.
	wantOrder := []string{"mp3/mp3/SW", "mp3/jpeg/SW", "jpeg/mp3/SW", "jpeg/jpeg/SW"}
	if len(a.Rows) != len(wantOrder) {
		t.Fatalf("got %d rows, want %d", len(a.Rows), len(wantOrder))
	}
	for i, want := range wantOrder {
		if got := rowKey(a.Rows[i]); got != want {
			t.Errorf("row %d = %s, want %s", i, got, want)
		}
	}
	// Cross-validation flags follow the training set.
	for _, r := range a.Rows {
		if want := r.Train != r.App; r.Cross != want {
			t.Errorf("%s: cross = %v, want %v", rowKey(r), r.Cross, want)
		}
	}
	// Board references are training-independent: the same (app, design,
	// config) point reports identical board cycles under both trainings.
	for i, p := range a.Rows[0].Points { // mp3/mp3/SW vs jpeg/mp3/SW
		if q := a.Rows[2].Points[i]; p.Board != q.Board {
			t.Errorf("point %d: board cycles differ across trainings (%d vs %d)", i, p.Board, q.Board)
		}
	}
}

func writeScoreboard(t *testing.T, s *Scoreboard) string {
	t.Helper()
	data, err := s.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_accuracy.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadScoreboardRejectsBadBaselines(t *testing.T) {
	if _, err := LoadScoreboard(filepath.Join(t.TempDir(), "missing.json")); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("missing file: want input error, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScoreboard(bad); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("malformed JSON: want input error, got %v", err)
	}
	empty := &Scoreboard{Frames: 1, Blocks: 4}
	if _, err := LoadScoreboard(writeScoreboard(t, empty)); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("no rows: want input error, got %v", err)
	}
	foreign := &Scoreboard{Frames: 1, Blocks: 4, Rows: []Row{
		{Train: "spec", App: "mp3", Design: "SW", Points: []Point{{Board: 1, Est: 1}}},
	}}
	if _, err := LoadScoreboard(writeScoreboard(t, foreign)); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("foreign row: want input error, got %v", err)
	}
	dup := &Scoreboard{Frames: 1, Blocks: 4, Rows: []Row{
		{Train: "mp3", App: "mp3", Design: "SW", Points: []Point{{Board: 1, Est: 1}}},
		{Train: "mp3", App: "mp3", Design: "SW", Points: []Point{{Board: 1, Est: 1}}},
	}}
	if _, err := LoadScoreboard(writeScoreboard(t, dup)); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("duplicate row: want input error, got %v", err)
	}
}

func TestCompareGates(t *testing.T) {
	base := &Scoreboard{Frames: 2, Blocks: 24, Rows: []Row{{
		Train: "mp3", App: "mp3", Design: "SW",
		Points: []Point{{ISize: 0, DSize: 0, Board: 1000, Est: 1050, ErrPct: 5}},
		MAPE:   5, Pearson: 1,
	}}}

	same := &Scoreboard{Frames: 2, Blocks: 24, Rows: []Row{{
		Train: "mp3", App: "mp3", Design: "SW",
		Points: []Point{{ISize: 0, DSize: 0, Board: 1000, Est: 1050, ErrPct: 5}},
		MAPE:   5, Pearson: 1,
	}}}
	if v := same.Compare(base, 1); len(v) != 0 {
		t.Errorf("identical scoreboard: unexpected violations %v", v)
	}

	drift := &Scoreboard{Frames: 2, Blocks: 24, Rows: []Row{{
		Train: "mp3", App: "mp3", Design: "SW",
		Points: []Point{{ISize: 0, DSize: 0, Board: 1000, Est: 1050, ErrPct: 5}},
		MAPE:   7.5, Pearson: 1,
	}}}
	if v := drift.Compare(base, 1); len(v) == 0 {
		t.Error("MAPE drift past tolerance: want violation")
	}
	if v := drift.Compare(base, 5); len(v) != 0 {
		t.Errorf("MAPE drift within tolerance: unexpected violations %v", v)
	}

	cycles := &Scoreboard{Frames: 2, Blocks: 24, Rows: []Row{{
		Train: "mp3", App: "mp3", Design: "SW",
		Points: []Point{{ISize: 0, DSize: 0, Board: 1001, Est: 1050, ErrPct: 4.9}},
		MAPE:   4.9, Pearson: 1,
	}}}
	if v := cycles.Compare(base, 1); len(v) == 0 {
		t.Error("cycle change on same workload: want violation")
	}
	// Different workload: exact-cycle guard off, MAPE gate still on.
	cycles.Frames = 4
	if v := cycles.Compare(base, 1); len(v) != 0 {
		t.Errorf("cycle change on different workload: unexpected violations %v", v)
	}

	missing := &Scoreboard{Frames: 2, Blocks: 24}
	if v := missing.Compare(base, 1); len(v) == 0 {
		t.Error("missing row: want violation")
	}

	worse := &Scoreboard{Frames: 2, Blocks: 24, Rows: []Row{{
		Train: "mp3", App: "mp3", Design: "SW",
		Points: []Point{{ISize: 0, DSize: 0, Board: 1000, Est: 1050, ErrPct: 5}},
		MAPE:   5, Pearson: 0.9,
	}}}
	if v := worse.Compare(base, 1); len(v) == 0 {
		t.Error("Pearson drop past tolerance: want violation")
	}
}
