package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"ese/internal/apps"
	"ese/internal/cli"
	"ese/internal/engine"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtl"
)

// Point is one (cache configuration) measurement of a row: end cycles at
// the bus clock on the cycle-accurate board versus the timed TLM estimate
// under the calibrated statistical model.
type Point struct {
	ISize  int     `json:"isize"`
	DSize  int     `json:"dsize"`
	Board  uint64  `json:"board_cycles"`
	Est    uint64  `json:"est_cycles"`
	ErrPct float64 `json:"err_pct"` // signed percent error of Est vs Board
}

// Row is one (training, application, design) accuracy result across the
// cache sweep. Cross marks cross-validation rows: the scored application
// was not part of the training set, so the row measures the paper's
// retargetability claim rather than fit.
type Row struct {
	Train   string  `json:"train"`
	App     string  `json:"app"`
	Design  string  `json:"design"`
	Cross   bool    `json:"cross,omitempty"`
	Points  []Point `json:"points"`
	MAPE    float64 `json:"mape"`    // mean |err| percent over Points
	Pearson float64 `json:"pearson"` // r of (board, est) over Points
}

// Aggregate is one training set's accuracy over every point it was scored
// on, split into in-training and cross-validation populations.
type Aggregate struct {
	Train        string  `json:"train"`
	Points       int     `json:"points"`
	MAPE         float64 `json:"mape"`
	Pearson      float64 `json:"pearson"`
	CrossPoints  int     `json:"cross_points,omitempty"`
	CrossMAPE    float64 `json:"cross_mape,omitempty"`
	CrossPearson float64 `json:"cross_pearson,omitempty"`
}

// Scoreboard is the machine-readable accuracy trajectory of the estimator:
// estimated-vs-board end cycles across the training × application × design
// × cache-configuration matrix. The committed baseline (BENCH_accuracy.json)
// is compared against a fresh run by Compare. Everything in it is
// deterministic — cycles are simulated, not measured — so the comparison
// is exact on cycles and tolerance-gated on the derived MAPE, catching both
// nondeterminism and genuine accuracy drift.
type Scoreboard struct {
	Frames     int         `json:"frames"` // MP3 evaluation workload size
	Blocks     int         `json:"blocks"` // JPEG evaluation workload size
	Rows       []Row       `json:"rows"`
	Aggregates []Aggregate `json:"aggregates"`
}

// TrainMP3JPEG is the combined training-set label: both applications'
// training programs merged by Calibrate.
const TrainMP3JPEG = "mp3+jpeg"

// StandardTrains is the default training-set list of the scoreboard: each
// application alone (yielding cross-validation rows on the other) plus the
// merged set.
var StandardTrains = []string{"mp3", "jpeg", TrainMP3JPEG}

// Options parameterizes RunScoreboard. Zero values select the standard
// matrix: default evaluation workloads, StandardTrains, both applications,
// every design, the standard cache sweep.
type Options struct {
	Frames  int            // MP3 eval frames (default apps.DefaultMP3.Frames)
	Blocks  int            // JPEG eval blocks (default apps.DefaultJPEG.Blocks)
	Trains  []string       // training sets: "mp3", "jpeg", "mp3+jpeg"
	Apps    []string       // scored applications: "mp3", "jpeg"
	Designs []string       // design-name filter (e.g. "SW", "SW+DCT"); nil = all
	Configs []pum.CacheCfg // nil = pum.StandardCacheConfigs
	Engine  engine.Options
	Limit   uint64
}

// Trainings resolves a training-set label — one application name or
// several joined with "+" — to compiled training programs.
func Trainings(label string) ([]Training, error) {
	one := func(name string) (Training, error) {
		switch name {
		case "mp3":
			prog, err := apps.CompileMP3("SW", apps.TrainMP3)
			if err != nil {
				return Training{}, err
			}
			return Training{Name: "mp3", Prog: prog, Entry: "main"}, nil
		case "jpeg":
			prog, err := apps.Compile("jpeg_train.c", apps.JPEGSource(apps.TrainJPEG))
			if err != nil {
				return Training{}, err
			}
			return Training{Name: "jpeg", Prog: prog, Entry: "main"}, nil
		default:
			return Training{}, cli.Input(fmt.Errorf("calib: unknown training set %q (want mp3, jpeg or %s)", name, TrainMP3JPEG))
		}
	}
	var out []Training
	for _, name := range strings.Split(label, "+") {
		tr, err := one(name)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// trainCovers reports whether the training set includes the application —
// rows where it does not are cross-validation rows.
func trainCovers(label, app string) bool {
	for _, name := range strings.Split(label, "+") {
		if name == app {
			return true
		}
	}
	return false
}

// designNames lists the designs of an application.
func designNames(app string) ([]string, error) {
	switch app {
	case "mp3":
		return apps.MP3DesignNames, nil
	case "jpeg":
		return apps.JPEGDesignNames, nil
	default:
		return nil, cli.Input(fmt.Errorf("calib: unknown application %q", app))
	}
}

// buildDesign maps one (app, design) evaluation workload onto a platform
// with the given calibrated model and cache configuration.
func buildDesign(app, design string, opts Options, model *pum.PUM, cc pum.CacheCfg) (*platform.Design, error) {
	switch app {
	case "mp3":
		return apps.MP3Design(design, apps.MP3Config{Frames: opts.Frames, Seed: apps.DefaultMP3.Seed}, model, cc)
	case "jpeg":
		return apps.JPEGDesign(design, apps.JPEGConfig{Blocks: opts.Blocks, Seed: apps.DefaultJPEG.Seed}, model, cc)
	default:
		return nil, cli.Input(fmt.Errorf("calib: unknown application %q", app))
	}
}

// RunScoreboard calibrates one model per training set and scores the
// estimated TLM against the cycle-accurate board over the matrix. Board
// runs depend only on the design and the PUM datasheet constants — never
// on the calibrated statistics — so each (app, design, config) board
// reference is simulated once and reused across training sets.
func RunScoreboard(opts Options) (*Scoreboard, error) {
	if opts.Frames <= 0 {
		opts.Frames = apps.DefaultMP3.Frames
	}
	if opts.Blocks <= 0 {
		opts.Blocks = apps.DefaultJPEG.Blocks
	}
	trains := opts.Trains
	if len(trains) == 0 {
		trains = StandardTrains
	}
	appList := opts.Apps
	if len(appList) == 0 {
		appList = []string{"mp3", "jpeg"}
	}
	cfgs := opts.Configs
	if len(cfgs) == 0 {
		cfgs = pum.StandardCacheConfigs
	}
	wantDesign := func(name string) bool {
		if len(opts.Designs) == 0 {
			return true
		}
		for _, d := range opts.Designs {
			if d == name {
				return true
			}
		}
		return false
	}

	pipe := engine.New(opts.Engine)
	board := make(map[string]uint64) // app/design/cfg -> end cycles at bus clock
	sb := &Scoreboard{Frames: opts.Frames, Blocks: opts.Blocks}

	for _, label := range trains {
		ts, err := Trainings(label)
		if err != nil {
			return nil, err
		}
		model, _, err := Calibrate(pum.MicroBlaze(), ts, cfgs, opts.Limit)
		if err != nil {
			return nil, err
		}
		for _, app := range appList {
			designs, err := designNames(app)
			if err != nil {
				return nil, err
			}
			for _, design := range designs {
				if !wantDesign(design) {
					continue
				}
				row := Row{Train: label, App: app, Design: design, Cross: !trainCovers(label, app)}
				for _, cc := range cfgs {
					d, err := buildDesign(app, design, opts, model, cc)
					if err != nil {
						return nil, err
					}
					key := fmt.Sprintf("%s/%s/%s", app, design, cc)
					ref, ok := board[key]
					if !ok {
						br, err := rtl.RunBoard(d, opts.Limit)
						if err != nil {
							return nil, fmt.Errorf("calib: board %s: %w", key, err)
						}
						ref = br.EndCycles(d.Bus.ClockHz)
						board[key] = ref
					}
					res, err := pipe.RunTimed(d)
					if err != nil {
						return nil, fmt.Errorf("calib: estimate %s (train %s): %w", key, label, err)
					}
					est := res.EndCycles(d.Bus.ClockHz)
					row.Points = append(row.Points, Point{
						ISize: cc.ISize, DSize: cc.DSize,
						Board: ref, Est: est,
						ErrPct: pct(float64(est), float64(ref)),
					})
				}
				row.MAPE, row.Pearson = score(row.Points)
				sb.Rows = append(sb.Rows, row)
			}
		}
	}
	for _, label := range trains {
		var in, cross []Point
		for _, r := range sb.Rows {
			if r.Train != label {
				continue
			}
			if r.Cross {
				cross = append(cross, r.Points...)
			} else {
				in = append(in, r.Points...)
			}
		}
		agg := Aggregate{Train: label, Points: len(in)}
		agg.MAPE, agg.Pearson = score(in)
		if len(cross) > 0 {
			agg.CrossPoints = len(cross)
			agg.CrossMAPE, agg.CrossPearson = score(cross)
		}
		sb.Aggregates = append(sb.Aggregates, agg)
	}
	return sb, nil
}

func pct(est, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (est - ref) / ref
}

// score computes MAPE and the Pearson correlation of (board, est) pairs.
// Degenerate variance (a single point, or a constant sweep) yields r=1
// when both sides are constant together and r=0 otherwise.
func score(pts []Point) (mape, r float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	n := float64(len(pts))
	var sx, sy float64
	for _, p := range pts {
		mape += math.Abs(p.ErrPct)
		sx += float64(p.Board)
		sy += float64(p.Est)
	}
	mape /= n
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for _, p := range pts {
		dx, dy := float64(p.Board)-mx, float64(p.Est)-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		if vx == 0 && vy == 0 {
			return mape, 1
		}
		return mape, 0
	}
	return mape, cov / math.Sqrt(vx*vy)
}

// ToJSON serializes the scoreboard for the committed baseline.
func (s *Scoreboard) ToJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// knownRows is the row-key whitelist LoadScoreboard accepts.
func knownRows() map[string]bool {
	known := make(map[string]bool)
	for _, train := range StandardTrains {
		for _, d := range apps.MP3DesignNames {
			known[train+"/mp3/"+d] = true
		}
		for _, d := range apps.JPEGDesignNames {
			known[train+"/jpeg/"+d] = true
		}
	}
	return known
}

func rowKey(r Row) string { return r.Train + "/" + r.App + "/" + r.Design }

// LoadScoreboard reads and validates a committed accuracy baseline
// (BENCH_accuracy.json). Every way the baseline can be unusable — missing
// file, malformed JSON, no rows, rows for (training, app, design) triples
// this build does not know (a baseline from a different matrix), duplicate
// rows, non-finite statistics — is an input error (exit 2 / HTTP 400), not
// an accuracy regression: the comparison itself never ran.
func LoadScoreboard(path string) (*Scoreboard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, cli.Input(fmt.Errorf("accuracy baseline: %w", err))
	}
	var s Scoreboard
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, cli.Input(fmt.Errorf("accuracy baseline %s: malformed or truncated JSON: %w", path, err))
	}
	if len(s.Rows) == 0 {
		return nil, cli.Input(fmt.Errorf("accuracy baseline %s: no rows", path))
	}
	known := knownRows()
	seen := make(map[string]bool, len(s.Rows))
	for _, r := range s.Rows {
		key := rowKey(r)
		if !known[key] {
			return nil, cli.Input(fmt.Errorf(
				"accuracy baseline %s: unknown row %q — baseline from a different matrix?", path, key))
		}
		if seen[key] {
			return nil, cli.Input(fmt.Errorf("accuracy baseline %s: duplicate row %q", path, key))
		}
		seen[key] = true
		if math.IsNaN(r.MAPE) || r.MAPE < 0 || math.IsNaN(r.Pearson) || r.Pearson < -1 || r.Pearson > 1 {
			return nil, cli.Input(fmt.Errorf("accuracy baseline %s: row %q has out-of-range statistics", path, key))
		}
		if len(r.Points) == 0 {
			return nil, cli.Input(fmt.Errorf("accuracy baseline %s: row %q has no points", path, key))
		}
	}
	return &s, nil
}

// Compare checks a fresh scoreboard against a committed baseline and
// returns human-readable violations (empty means the run is acceptable).
// When the evaluation workloads match, every point's board and estimated
// cycles must match exactly — the simulation is deterministic, so any
// difference is a timing-model change that warrants a deliberate baseline
// regeneration. MAPE may not worsen by more than tolPts percentage points
// per row, and Pearson r may not fall more than tolPts/100 below baseline.
func (s *Scoreboard) Compare(baseline *Scoreboard, tolPts float64) []string {
	var violations []string
	byKey := make(map[string]Row, len(s.Rows))
	for _, r := range s.Rows {
		byKey[rowKey(r)] = r
	}
	sameWorkload := s.Frames == baseline.Frames && s.Blocks == baseline.Blocks
	for _, base := range baseline.Rows {
		key := rowKey(base)
		cur, ok := byKey[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current scoreboard", key))
			continue
		}
		if sameWorkload {
			if len(cur.Points) != len(base.Points) {
				violations = append(violations, fmt.Sprintf(
					"%s: %d points, baseline %d (cache sweep changed)", key, len(cur.Points), len(base.Points)))
			} else {
				for i, bp := range base.Points {
					cp := cur.Points[i]
					if cp.ISize != bp.ISize || cp.DSize != bp.DSize || cp.Board != bp.Board || cp.Est != bp.Est {
						violations = append(violations, fmt.Sprintf(
							"%s {%d,%d}: cycles changed: board %d est %d, baseline board %d est %d (determinism or timing-model regression)",
							key, bp.ISize, bp.DSize, cp.Board, cp.Est, bp.Board, bp.Est))
					}
				}
			}
		}
		if cur.MAPE > base.MAPE+tolPts {
			violations = append(violations, fmt.Sprintf(
				"%s: MAPE %.2f%% above %.2f%% (baseline %.2f%% + %.2f pt tolerance)",
				key, cur.MAPE, base.MAPE+tolPts, base.MAPE, tolPts))
		}
		if floor := base.Pearson - tolPts/100; cur.Pearson < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: Pearson r %.4f below %.4f (baseline %.4f - %.4f tolerance)",
				key, cur.Pearson, floor, base.Pearson, tolPts/100))
		}
	}
	return violations
}

// String renders the scoreboard as an aligned table.
func (s *Scoreboard) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "accuracy scoreboard (estimated vs board end cycles; MP3 %d frames, JPEG %d blocks)\n", s.Frames, s.Blocks)
	fmt.Fprintf(&sb, "%-10s %-5s %-7s %-6s %7s %8s\n", "train", "app", "design", "cross", "MAPE", "Pearson")
	for _, r := range s.Rows {
		cross := ""
		if r.Cross {
			cross = "yes"
		}
		fmt.Fprintf(&sb, "%-10s %-5s %-7s %-6s %6.2f%% %8.4f\n", r.Train, r.App, r.Design, cross, r.MAPE, r.Pearson)
	}
	for _, a := range s.Aggregates {
		fmt.Fprintf(&sb, "%-10s %-5s %-7s %-6s %6.2f%% %8.4f   (aggregate, %d points)\n",
			a.Train, "all", "", "", a.MAPE, a.Pearson, a.Points)
		if a.CrossPoints > 0 {
			fmt.Fprintf(&sb, "%-10s %-5s %-7s %-6s %6.2f%% %8.4f   (cross-validation, %d points)\n",
				a.Train, "all", "", "yes", a.CrossMAPE, a.CrossPearson, a.CrossPoints)
		}
	}
	return sb.String()
}
