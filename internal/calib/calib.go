// Package calib closes the loop between the statistical PUM and the
// cycle-accurate board model: it calibrates the statistical memory and
// branch models from one or more training programs (with per-config,
// per-program provenance recorded in the returned PUM), then scores the
// calibrated estimator against the board across the full application ×
// design × cache-configuration matrix, reporting MAPE and Pearson r per
// design. The paper's "~6–9% error" headline becomes a tracked number:
// the scoreboard serializes to BENCH_accuracy.json and Compare gates it
// in CI exactly like the engine-performance baseline in
// internal/experiments/perfbench.go.
package calib

import (
	"fmt"

	"ese/internal/cdfg"
	"ese/internal/pum"
	"ese/internal/rtl"
)

// Training is one program the statistical models are calibrated on. Name
// labels the provenance (e.g. "mp3"); Entry is the self-contained process
// entry, typically "main" of a single-PE mapping of the application on a
// reduced input.
type Training struct {
	Name  string
	Prog  *cdfg.Program
	Entry string
}

// Calibrate is the multi-program generalization of rtl.Calibrate: each
// training program is profiled on the cycle-accurate processor model for
// every cached configuration, and the resulting statistics are merged into
// one model by unweighted averaging — per configuration for the memory
// table, across programs for the branch misprediction ratio. The returned
// PUM carries one provenance entry per (configuration, program) pair; the
// per-program reports are returned alongside for inspection.
//
// With a single training program this is exactly rtl.CalibrateReport with
// the provenance relabeled from the entry name to the training name.
func Calibrate(base *pum.PUM, trains []Training, cfgs []pum.CacheCfg, limit uint64) (*pum.PUM, []*rtl.CalibReport, error) {
	if len(trains) == 0 {
		return nil, nil, fmt.Errorf("calib: no training programs")
	}
	var reps []*rtl.CalibReport
	out := base.Clone()
	out.Calib = nil // recalibration replaces any prior provenance
	var missSum float64
	for _, tr := range trains {
		_, rep, err := rtl.CalibrateReport(base, tr.Prog, tr.Entry, cfgs, limit)
		if err != nil {
			return nil, nil, fmt.Errorf("calib: training %q: %w", tr.Name, err)
		}
		rep.Train = tr.Name
		reps = append(reps, rep)
		missSum += rep.BranchMiss
		for _, cs := range rep.Stats {
			out.Calib = append(out.Calib, pum.CalibSource{
				Cfg: cs.Cfg, Train: tr.Name, Steps: cs.Steps, BranchMiss: cs.BranchMiss,
			})
		}
	}
	// Merge: every report measured the same configuration list, so average
	// the snapshots per configuration across programs.
	n := float64(len(reps))
	for i, cs := range reps[0].Stats {
		sum := cs.Mem
		for _, rep := range reps[1:] {
			other := rep.Stats[i]
			if other.Cfg != cs.Cfg {
				return nil, nil, fmt.Errorf("calib: training %q measured %v where %q measured %v",
					rep.Train, other.Cfg, reps[0].Train, cs.Cfg)
			}
			sum.IHitRate += other.Mem.IHitRate
			sum.DHitRate += other.Mem.DHitRate
			sum.IHitDelay += other.Mem.IHitDelay
			sum.DHitDelay += other.Mem.DHitDelay
			sum.IMissPenalty += other.Mem.IMissPenalty
			sum.DMissPenalty += other.Mem.DMissPenalty
		}
		sum.IHitRate /= n
		sum.DHitRate /= n
		sum.IHitDelay /= n
		sum.DHitDelay /= n
		sum.IMissPenalty /= n
		sum.DMissPenalty /= n
		out.Mem.Table[cs.Cfg] = sum
	}
	out.Branch.MissRate = missSum / n
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("calib: merged model invalid: %w", err)
	}
	return out, reps, nil
}
