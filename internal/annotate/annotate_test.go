package annotate

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/pum"
)

const sampleSrc = `
int coeff[4] = {3, 1, 4, 1};
int acc;
int mac(int a[], int n, int k) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) s += a[i] * k;
  return s;
}
void main() {
  int i;
  for (i = 1; i <= 3; i++) {
    acc += mac(coeff, 4, i) % 100;
    if (acc > 50) acc -= 7;
  }
  out(acc);
}
`

func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

func annotated(t *testing.T) *Annotated {
	t.Helper()
	prog := compile(t, sampleSrc)
	p, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
	if err != nil {
		t.Fatalf("WithCache: %v", err)
	}
	return Annotate(prog, p, core.FullDetail)
}

func TestAnnotateProducesEstimateForEveryBlock(t *testing.T) {
	a := annotated(t)
	if len(a.Est) != a.Prog.NumBlocks() {
		t.Fatalf("estimates = %d, blocks = %d", len(a.Est), a.Prog.NumBlocks())
	}
	delays := a.Delays()
	for b, d := range delays {
		if len(b.Instrs) > 0 && d <= 0 {
			t.Fatalf("bb%d has non-positive delay %v", b.ID, d)
		}
	}
	if a.TotalStatic() <= 0 {
		t.Fatal("total static delay is zero")
	}
}

func TestEmitTimedCContainsWaits(t *testing.T) {
	a := annotated(t)
	src := a.EmitTimedC()
	if !strings.Contains(src, "extern void wait(int cycles);") {
		t.Error("missing wait declaration")
	}
	if strings.Count(src, "wait(") < a.Prog.NumBlocks() {
		t.Errorf("fewer wait() calls than blocks:\n%s", src)
	}
	for _, want := range []string{
		"int coeff[4] = {3, 1, 4, 1};",
		"int mac(int a[], int n, int k) {",
		"void main(void) {",
		"goto bb",
		"out(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("timed C missing %q", want)
		}
	}
	// Braces balance.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in timed C")
	}
}

func TestEmitTimedGoParses(t *testing.T) {
	a := annotated(t)
	src := a.EmitTimedGo("timed")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "timed.go", src, 0); err != nil {
		t.Fatalf("generated Go does not parse: %v\n%s", err, src)
	}
	if strings.Count(src, "env.Wait(") < a.Prog.NumBlocks() {
		t.Error("fewer env.Wait calls than blocks")
	}
}

// TestEmittedGoExecutes compiles and runs the generated Go process and
// checks that its out() stream and accumulated wait cycles match the IR
// interpreter with the same annotation — i.e. the generated native code and
// the in-process executor are the same timed TLM.
func TestEmittedGoExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling generated code is slow")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	a := annotated(t)
	src := a.EmitTimedGo("main")

	// Reference: interpret with delay accumulation.
	m := interp.New(a.Prog)
	var refCycles int64
	delays := a.Delays()
	m.OnBlock = func(b *cdfg.Block) error { refCycles += int64(delays[b]); return nil }
	if err := m.Run("main"); err != nil {
		t.Fatalf("interp: %v", err)
	}

	dir := t.TempDir()
	driver := `
func main() {
	env := &hostEnv{}
	s := NewState()
	Fn_main(env, s)
	fmt.Println("cycles", env.cycles)
	fmt.Println("out", env.out)
}

type hostEnv struct {
	cycles int64
	out    []int32
}

func (e *hostEnv) Wait(c int64)              { e.cycles += c }
func (e *hostEnv) Send(ch int, d []int32)    {}
func (e *hostEnv) Recv(ch int, b []int32)    {}
func (e *hostEnv) Out(v int32)               { e.out = append(e.out, v) }
`
	full := src + "\nimport \"fmt\"\n" + driver
	// Move the import up: simplest is to inject it after the package line.
	full = strings.Replace(src, "package main\n", "package main\n\nimport \"fmt\"\n", 1) + driver
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module timedtlm\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, outBytes)
	}
	got := string(outBytes)
	wantCycles := "cycles " + itoa64(refCycles)
	if !strings.Contains(got, wantCycles) {
		t.Errorf("generated code cycles mismatch: want %q in:\n%s", wantCycles, got)
	}
	wantOut := "out " + int32sString(m.Out)
	if !strings.Contains(got, wantOut) {
		t.Errorf("generated code output mismatch: want %q in:\n%s", wantOut, got)
	}
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func int32sString(vs []int32) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = itoa64(int64(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func TestSummaryMentionsFunctions(t *testing.T) {
	a := annotated(t)
	s := a.Summary()
	for _, want := range []string{"mac", "main", "annotation time"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestEmitTimedGoBodyPrefixedCoexist(t *testing.T) {
	// Two differently-annotated instances of the same program must coexist
	// in one file when prefixed (the multi-PE generated TLM relies on it).
	prog := compile(t, sampleSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	hw := pum.CustomHW("hw", 100_000_000)
	a1 := Annotate(prog, mb, core.FullDetail)
	a2 := Annotate(prog, hw, core.FullDetail)

	var sb strings.Builder
	sb.WriteString("package multi\n\ntype Env interface {\n\tWait(cycles int64)\n\tSend(ch int, data []int32)\n\tRecv(ch int, buf []int32)\n\tOut(v int32)\n}\n\n")
	a1.EmitTimedGoBody(&sb, "PEA_")
	a2.EmitTimedGoBody(&sb, "PEB_")
	sb.WriteString(GoRuntimeHelpers())
	src := sb.String()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "multi.go", src, 0); err != nil {
		t.Fatalf("multi-PE file does not parse: %v", err)
	}
	for _, want := range []string{"PEA_Fn_main", "PEB_Fn_main", "PEA_State", "PEB_State", "NewPEA_State"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	// The two instances carry different delays (different PE models).
	if a1.TotalStatic() == a2.TotalStatic() {
		t.Error("different PE models produced identical annotations")
	}
}

func TestAnnotationDependsOnCacheConfig(t *testing.T) {
	prog := compile(t, sampleSrc)
	small, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 2048, DSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	big, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 32 * 1024, DSize: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	aSmall := Annotate(prog, small, core.FullDetail)
	aBig := Annotate(prog, big, core.FullDetail)
	if aSmall.TotalStatic() <= aBig.TotalStatic() {
		t.Fatalf("smaller cache (%v) not costlier than bigger (%v)",
			aSmall.TotalStatic(), aBig.TotalStatic())
	}
}

// TestEmittedCExecutes compiles the generated timed C with a host C
// compiler, links it against a driver providing wait/out/send/recv, runs
// it, and checks that the accumulated wait cycles and the out() stream
// match the IR interpreter with the same annotation — the paper's
// "annotated C code is compiled and linked" step, validated end to end.
func TestEmittedCExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling generated code is slow")
	}
	gcc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler available")
	}
	a := annotated(t)
	src := a.EmitTimedC()

	// Reference: interpret with delay accumulation.
	m := interp.New(a.Prog)
	var refCycles int64
	delays := a.Delays()
	m.OnBlock = func(b *cdfg.Block) error { refCycles += int64(delays[b]); return nil }
	if err := m.Run("main"); err != nil {
		t.Fatalf("interp: %v", err)
	}

	const driver = `
#include <stdio.h>
static long long cycles;
void wait(int c) { cycles += c; }
void out(int v) { printf("out %d\n", v); }
void send(int ch, int *arr, int n) { (void)ch; (void)arr; (void)n; }
void recv(int ch, int *arr, int n) { (void)ch; (void)arr; (void)n; }
extern void app_main(void);
int main(void) {
	app_main();
	printf("cycles %lld\n", cycles);
	return 0;
}
`
	dir := t.TempDir()
	appC := filepath.Join(dir, "app.c")
	drvC := filepath.Join(dir, "driver.c")
	bin := filepath.Join(dir, "timed")
	if err := os.WriteFile(appC, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(drvC, []byte(driver), 0o644); err != nil {
		t.Fatal(err)
	}
	// -Dmain=app_main renames only the application's entry; -fwrapv gives
	// the subset's wrap-around arithmetic semantics.
	cmd := exec.Command(gcc, "-fwrapv", "-Dmain=app_main", "-c", "-o", filepath.Join(dir, "app.o"), appC)
	if outB, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("cc app.c: %v\n%s\n--- emitted C ---\n%s", err, outB, src)
	}
	cmd = exec.Command(gcc, "-o", bin, drvC, filepath.Join(dir, "app.o"))
	if outB, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("cc link: %v\n%s", err, outB)
	}
	outB, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, outB)
	}
	got := string(outB)
	wantCycles := "cycles " + itoa64(refCycles)
	if !strings.Contains(got, wantCycles) {
		t.Errorf("compiled C cycles mismatch: want %q in:\n%s", wantCycles, got)
	}
	for _, v := range m.Out {
		want := "out " + itoa64(int64(v)) + "\n"
		if !strings.Contains(got, want) {
			t.Errorf("compiled C missing output %q", strings.TrimSpace(want))
		}
	}
	// Output count matches exactly.
	if strings.Count(got, "out ") != len(m.Out) {
		t.Errorf("compiled C emitted %d values, want %d",
			strings.Count(got, "out "), len(m.Out))
	}
}
