package annotate

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/pum"
)

// cGen generates random valid programs of the subset for differential
// testing of the C emitter. It reuses the idea of the ISA fuzz generator
// but may freely produce division by zero and INT_MIN corner values,
// because the emitted C pins the subset's semantics via runtime helpers.
type cGen struct {
	rng uint32
	sb  strings.Builder
}

func (g *cGen) next() uint32 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 17
	g.rng ^= g.rng << 5
	return g.rng
}

func (g *cGen) pick(n int) int { return int(g.next() % uint32(n)) }

func (g *cGen) expr(scope []string, depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(3) {
		case 0:
			// Include hostile constants.
			consts := []string{"0", "1", "-1", "2147483647", "-2147483647 - 1",
				fmt.Sprintf("%d", int32(g.next()))}
			return "(" + consts[g.pick(len(consts))] + ")"
		case 1:
			if len(scope) > 0 {
				return scope[g.pick(len(scope))]
			}
			return "g0"
		default:
			return fmt.Sprintf("arr[(%s) & 15]", g.expr(scope, 0))
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	op := ops[g.pick(len(ops))]
	return "(" + g.expr(scope, depth-1) + " " + op + " " + g.expr(scope, depth-1) + ")"
}

func (g *cGen) generate() string {
	g.sb.Reset()
	g.sb.WriteString("int g0 = 7;\nint arr[16];\n")
	g.sb.WriteString("int mixer(int a, int b) {\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&g.sb, "  a = %s;\n", g.expr([]string{"a", "b"}, 3))
	}
	g.sb.WriteString("  return a;\n}\n")
	g.sb.WriteString("void main() {\n  int x = 1;\n  int i;\n")
	fmt.Fprintf(&g.sb, "  for (i = 0; i < 12; i++) {\n")
	fmt.Fprintf(&g.sb, "    arr[i & 15] = %s;\n", g.expr([]string{"x", "i"}, 3))
	fmt.Fprintf(&g.sb, "    x = mixer(x, %s);\n", g.expr([]string{"x", "i"}, 2))
	g.sb.WriteString("    out(x);\n  }\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&g.sb, "  out(arr[%d]);\n", i)
	}
	g.sb.WriteString("}\n")
	return g.sb.String()
}

// TestDifferentialEmittedCVsInterp compiles random programs to timed C,
// runs them natively, and compares outputs and cycles with the interpreter.
func TestDifferentialEmittedCVsInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the C compiler repeatedly")
	}
	gcc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler available")
	}
	dir := t.TempDir()
	const driver = `
#include <stdio.h>
static long long cycles;
void wait(int c) { cycles += c; }
void out(int v) { printf("out %d\n", v); }
void send(int ch, int *arr, int n) { (void)ch; (void)arr; (void)n; }
void recv(int ch, int *arr, int n) { (void)ch; (void)arr; (void)n; }
extern void app_main(void);
int main(void) {
	app_main();
	printf("cycles %lld\n", cycles);
	return 0;
}
`
	drvC := filepath.Join(dir, "driver.c")
	if err := os.WriteFile(drvC, []byte(driver), 0o644); err != nil {
		t.Fatal(err)
	}
	model, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 12; seed++ {
		g := &cGen{rng: uint32(seed) * 2891336453}
		if g.rng == 0 {
			g.rng = 1
		}
		src := g.generate()
		f, err := cfront.Parse("fuzz.c", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		u, err := cfront.Check(f)
		if err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		prog, err := cdfg.Lower(u)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		a := Annotate(prog, model, core.FullDetail)

		m := interp.New(prog)
		m.Limit = 10_000_000
		var refCycles int64
		delays := a.Delays()
		m.OnBlock = func(b *cdfg.Block) error { refCycles += int64(delays[b]); return nil }
		if err := m.Run("main"); err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}

		appC := filepath.Join(dir, "app.c")
		bin := filepath.Join(dir, "timed")
		if err := os.WriteFile(appC, []byte(a.EmitTimedC()), 0o644); err != nil {
			t.Fatal(err)
		}
		appO := filepath.Join(dir, "app.o")
		cmd := exec.Command(gcc, "-fwrapv", "-Dmain=app_main", "-c", "-o", appO, appC)
		if outB, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("seed %d: cc app: %v\n%s\n%s", seed, err, outB, a.EmitTimedC())
		}
		cmd = exec.Command(gcc, "-o", bin, drvC, appO)
		if outB, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("seed %d: cc link: %v\n%s", seed, err, outB)
		}
		outB, err := exec.Command(bin).CombinedOutput()
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, outB)
		}
		got := string(outB)
		var outs []string
		for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
			if strings.HasPrefix(line, "out ") {
				outs = append(outs, strings.TrimPrefix(line, "out "))
			}
		}
		if len(outs) != len(m.Out) {
			t.Fatalf("seed %d: %d outputs vs interp %d\n%s", seed, len(outs), len(m.Out), src)
		}
		for i, v := range m.Out {
			if outs[i] != itoa64(int64(v)) {
				t.Fatalf("seed %d: out[%d] = %s, interp %d\n%s", seed, i, outs[i], v, src)
			}
		}
		if !strings.Contains(got, "cycles "+itoa64(refCycles)) {
			t.Fatalf("seed %d: cycle mismatch (want %d):\n%s", seed, refCycles, got)
		}
	}
}
