// Package annotate implements the paper's timing annotation and timed code
// generation phase (§4.3, Figs. 2–3): given a lowered program and a
// processing unit model, it estimates every basic block with the core
// engine and produces (a) the per-block delay map that the TLM executor
// consumes — the semantic equivalent of inserting a wait() call at the end
// of each basic block — and (b) generated timed source artifacts in C-like
// and Go syntax, mirroring the LLVM-based source regeneration of the paper.
package annotate

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/pum"
)

// Annotated is the result of timing annotation for one (program, PUM) pair.
type Annotated struct {
	Prog   *cdfg.Program
	PUM    *pum.PUM
	Est    map[*cdfg.Block]core.Estimate
	Detail core.Detail
	// Elapsed is the wall-clock annotation time (the "Anno." column of the
	// paper's Table 1).
	Elapsed time.Duration
}

// Annotate runs the estimation engine over every basic block, fanning
// blocks out over the default worker pool.
func Annotate(prog *cdfg.Program, p *pum.PUM, detail core.Detail) *Annotated {
	return AnnotateWith(prog, p, detail, core.EstOptions{})
}

// AnnotateWith runs the estimation engine with an explicit worker bound
// and optional schedule/estimate cache (see core.EstOptions). It is the
// entry point the staged pipeline of internal/engine uses.
func AnnotateWith(prog *cdfg.Program, p *pum.PUM, detail core.Detail, opts core.EstOptions) *Annotated {
	opts.Strict = false
	a, _ := AnnotateCtx(context.Background(), prog, p, detail, opts)
	return a
}

// AnnotateCtx is AnnotateWith under a context: cancellation aborts the
// block fan-out with diag.ErrCanceled/ErrDeadline, and strict estimation
// options (core.EstOptions.Strict) turn unmapped op classes into errors
// instead of degraded fallback estimates.
func AnnotateCtx(ctx context.Context, prog *cdfg.Program, p *pum.PUM, detail core.Detail, opts core.EstOptions) (*Annotated, error) {
	start := time.Now()
	est, err := core.EstimateBlocksCtx(ctx, prog, p, detail, opts)
	if err != nil {
		return nil, err
	}
	return &Annotated{
		Prog:    prog,
		PUM:     p,
		Est:     est,
		Detail:  detail,
		Elapsed: time.Since(start),
	}, nil
}

// DegradedBlocks counts blocks whose estimate used fallback latencies for
// op classes the PUM does not map (graceful-degradation mode).
func (a *Annotated) DegradedBlocks() int {
	n := 0
	for _, e := range a.Est {
		if e.Degraded() {
			n++
		}
	}
	return n
}

// UnmappedOps sums the per-block counts of operations estimated with
// fallback latency because their class is missing from the PUM.
func (a *Annotated) UnmappedOps() int {
	n := 0
	for _, e := range a.Est {
		n += e.Unmapped
	}
	return n
}

// Delays returns the per-block delay map in cycles.
func (a *Annotated) Delays() map[*cdfg.Block]float64 {
	out := make(map[*cdfg.Block]float64, len(a.Est))
	for b, e := range a.Est {
		out[b] = e.Total
	}
	return out
}

// TotalStatic returns the sum of static block delays, a quick size metric.
func (a *Annotated) TotalStatic() float64 {
	t := 0.0
	for _, e := range a.Est {
		t += e.Total
	}
	return t
}

// refC renders an operand in C-like syntax.
func refC(f *cdfg.Function, prog *cdfg.Program, r cdfg.Ref) string {
	switch r.Kind {
	case cdfg.RefConst:
		return fmt.Sprintf("%d", r.Val)
	case cdfg.RefTemp:
		return fmt.Sprintf("t%d", r.Idx)
	case cdfg.RefSlot:
		return f.Slots[r.Idx].Name
	case cdfg.RefGlobal:
		return prog.Globals[r.Idx].Name
	}
	return "_"
}

var opC = map[cdfg.Opcode]string{
	cdfg.OpAdd: "+", cdfg.OpSub: "-", cdfg.OpMul: "*", cdfg.OpDiv: "/",
	cdfg.OpRem: "%", cdfg.OpAnd: "&", cdfg.OpOr: "|", cdfg.OpXor: "^",
	cdfg.OpShl: "<<", cdfg.OpShr: ">>",
	cdfg.OpCmpEq: "==", cdfg.OpCmpNe: "!=", cdfg.OpCmpLt: "<",
	cdfg.OpCmpLe: "<=", cdfg.OpCmpGt: ">", cdfg.OpCmpGe: ">=",
}

// EmitTimedC renders the annotated program as C-like source with an
// explicit wait(cycles) call at the head of every basic block — the shape
// of the timed C code the paper's LLVM backend regenerates.
func (a *Annotated) EmitTimedC() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* timed code generated for PE model %q */\n", a.PUM.Name)
	sb.WriteString("extern void wait(int cycles);\n")
	sb.WriteString("extern void out(int v);\n")
	sb.WriteString("extern void send(int ch, int *arr, int n);\n")
	sb.WriteString("extern void recv(int ch, int *arr, int n);\n\n")
	// Helpers pinning the subset's defined semantics onto C (division and
	// remainder by zero yield 0, INT_MIN/-1 wraps, shift counts mask to 5
	// bits, left shift wraps): compile the artifact with -fwrapv so +,-,*
	// wrap as well.
	sb.WriteString(`static int rt_div(int a, int b) {
  if (b == 0) return 0;
  if (a == (-2147483647 - 1) && b == -1) return a;
  return a / b;
}
static int rt_rem(int a, int b) {
  if (b == 0 || (a == (-2147483647 - 1) && b == -1)) return 0;
  return a % b;
}
static int rt_shl(int a, int b) { return (int)((unsigned)a << (b & 31)); }
static int rt_shr(int a, int b) { return a >> (b & 31); }

`)
	// Prototypes so that forward calls compile as C.
	for _, fn := range a.Prog.Funcs {
		sb.WriteString(funcSigC(fn))
		sb.WriteString(";\n")
	}
	sb.WriteString("\n")
	for _, g := range a.Prog.Globals {
		if g.IsArray {
			fmt.Fprintf(&sb, "int %s[%d]", g.Name, g.Size)
		} else {
			fmt.Fprintf(&sb, "int %s", g.Name)
		}
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " = %s", initListC(g.Init, g.IsArray))
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("\n")
	for _, fn := range a.Prog.Funcs {
		a.emitFuncC(&sb, fn)
	}
	return sb.String()
}

func initListC(vals []int32, isArray bool) string {
	if !isArray {
		return fmt.Sprintf("%d", vals[0])
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// funcSigC renders a function's C signature (without body or semicolon).
func funcSigC(fn *cdfg.Function) string {
	ret := "void"
	if fn.ReturnsInt {
		ret = "int"
	}
	var params []string
	for _, p := range fn.Params {
		if p.IsArray {
			params = append(params, fmt.Sprintf("int %s[]", p.Name))
		} else {
			params = append(params, fmt.Sprintf("int %s", p.Name))
		}
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	return fmt.Sprintf("%s %s(%s)", ret, fn.Name, strings.Join(params, ", "))
}

func (a *Annotated) emitFuncC(sb *strings.Builder, fn *cdfg.Function) {
	fmt.Fprintf(sb, "%s {\n", funcSigC(fn))
	for _, s := range fn.Slots {
		if s.IsParam {
			continue
		}
		if s.IsArray {
			fmt.Fprintf(sb, "  int %s[%d] = {0};\n", s.Name, s.Size)
		} else {
			fmt.Fprintf(sb, "  int %s = 0;\n", s.Name)
		}
	}
	if fn.NTemps > 0 {
		var ts []string
		for i := 0; i < fn.NTemps; i++ {
			ts = append(ts, fmt.Sprintf("t%d", i))
		}
		fmt.Fprintf(sb, "  int %s;\n", strings.Join(ts, ", "))
	}
	for _, b := range fn.Blocks {
		e := a.Est[b]
		fmt.Fprintf(sb, "bb%d_%s:\n", b.ID, fn.Name)
		fmt.Fprintf(sb, "  wait(%d); /* sched=%d br=%.2f imem=%.2f dmem=%.2f */\n",
			int64(e.Total), e.Sched, e.BranchPen, e.IDelay, e.DDelay)
		for i := range b.Instrs {
			a.emitInstrC(sb, fn, &b.Instrs[i])
		}
	}
	sb.WriteString("}\n\n")
}

func (a *Annotated) emitInstrC(sb *strings.Builder, fn *cdfg.Function, in *cdfg.Instr) {
	r := func(x cdfg.Ref) string { return refC(fn, a.Prog, x) }
	switch in.Op {
	case cdfg.OpMov:
		fmt.Fprintf(sb, "  %s = %s;\n", r(in.Dst), r(in.A))
	case cdfg.OpNeg:
		fmt.Fprintf(sb, "  %s = -%s;\n", r(in.Dst), r(in.A))
	case cdfg.OpNot:
		fmt.Fprintf(sb, "  %s = ~%s;\n", r(in.Dst), r(in.A))
	case cdfg.OpLoad:
		fmt.Fprintf(sb, "  %s = %s[%s];\n", r(in.Dst), r(in.Arr), r(in.A))
	case cdfg.OpStore:
		fmt.Fprintf(sb, "  %s[%s] = %s;\n", r(in.Arr), r(in.A), r(in.B))
	case cdfg.OpBr:
		fmt.Fprintf(sb, "  if (%s) goto bb%d_%s; else goto bb%d_%s;\n",
			r(in.A), in.Then.ID, fn.Name, in.Else.ID, fn.Name)
	case cdfg.OpJmp:
		fmt.Fprintf(sb, "  goto bb%d_%s;\n", in.Target.ID, fn.Name)
	case cdfg.OpRet:
		if in.A.Kind == cdfg.RefNone {
			sb.WriteString("  return;\n")
		} else {
			fmt.Fprintf(sb, "  return %s;\n", r(in.A))
		}
	case cdfg.OpCall:
		var args []string
		for _, ar := range in.Args {
			args = append(args, r(ar))
		}
		if in.Dst.Kind == cdfg.RefNone {
			fmt.Fprintf(sb, "  %s(%s);\n", in.Callee.Name, strings.Join(args, ", "))
		} else {
			fmt.Fprintf(sb, "  %s = %s(%s);\n", r(in.Dst), in.Callee.Name, strings.Join(args, ", "))
		}
	case cdfg.OpSend:
		fmt.Fprintf(sb, "  send(%d, %s, %s);\n", in.Chan, r(in.Arr), r(in.A))
	case cdfg.OpRecv:
		fmt.Fprintf(sb, "  recv(%d, %s, %s);\n", in.Chan, r(in.Arr), r(in.A))
	case cdfg.OpOut:
		fmt.Fprintf(sb, "  out(%s);\n", r(in.A))
	case cdfg.OpDiv:
		fmt.Fprintf(sb, "  %s = rt_div(%s, %s);\n", r(in.Dst), r(in.A), r(in.B))
	case cdfg.OpRem:
		fmt.Fprintf(sb, "  %s = rt_rem(%s, %s);\n", r(in.Dst), r(in.A), r(in.B))
	case cdfg.OpShl:
		fmt.Fprintf(sb, "  %s = rt_shl(%s, %s);\n", r(in.Dst), r(in.A), r(in.B))
	case cdfg.OpShr:
		fmt.Fprintf(sb, "  %s = rt_shr(%s, %s);\n", r(in.Dst), r(in.A), r(in.B))
	default:
		fmt.Fprintf(sb, "  %s = %s %s %s;\n", r(in.Dst), r(in.A), opC[in.Op], r(in.B))
	}
}

// EmitTimedGo renders the annotated program as Go source against a small
// runtime interface, demonstrating native-compiled timed TLM generation on
// the Go toolchain. The generated file is an artifact (written next to the
// TLM for inspection or offline compilation); the in-process executor
// interprets the same annotated CDFG instead.
func (a *Annotated) EmitTimedGo(pkg string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Code generated by ese annotate for PE model %q. DO NOT EDIT.\n", a.PUM.Name)
	fmt.Fprintf(&sb, "package %s\n\n", pkg)
	sb.WriteString(`// Env is the runtime the generated process code runs against.
type Env interface {
	Wait(cycles int64)
	Send(ch int, data []int32)
	Recv(ch int, buf []int32)
	Out(v int32)
}

`)
	a.emitGoBody(&sb, "")
	sb.WriteString(goRuntimeHelpers)
	return sb.String()
}

// EmitTimedGoBody renders only the state/process definitions with every
// identifier prefixed, so several differently-annotated instances of the
// same program (one per PE) can coexist in one generated file. The caller
// provides the Env interface and runtime helpers exactly once.
func (a *Annotated) EmitTimedGoBody(sb *strings.Builder, prefix string) {
	a.emitGoBody(sb, prefix)
}

func (a *Annotated) emitGoBody(sb *strings.Builder, prefix string) {
	// Globals bundled in a state struct so several process instances can
	// coexist.
	fmt.Fprintf(sb, "// %sState holds the process globals.\ntype %sState struct {\n", prefix, prefix)
	for _, g := range a.Prog.Globals {
		if g.IsArray {
			fmt.Fprintf(sb, "\tG_%s [%d]int32\n", g.Name, g.Size)
		} else {
			fmt.Fprintf(sb, "\tG_%s int32\n", g.Name)
		}
	}
	sb.WriteString("}\n\n")
	fmt.Fprintf(sb, "// New%sState returns the initial global state.\nfunc New%sState() *%sState {\n\ts := &%sState{}\n", prefix, prefix, prefix, prefix)
	for _, g := range a.Prog.Globals {
		for i, v := range g.Init {
			if v == 0 {
				continue
			}
			if g.IsArray {
				fmt.Fprintf(sb, "\ts.G_%s[%d] = %d\n", g.Name, i, v)
			} else {
				fmt.Fprintf(sb, "\ts.G_%s = %d\n", g.Name, v)
			}
		}
	}
	sb.WriteString("\treturn s\n}\n\n")
	for _, fn := range a.Prog.Funcs {
		a.emitFuncGo(sb, fn, prefix)
	}
}

// GoRuntimeHelpers returns the arithmetic helper functions every generated
// Go artifact needs exactly once.
func GoRuntimeHelpers() string { return goRuntimeHelpers }

// goRuntimeHelpers are the arithmetic helpers the generated code calls.
const goRuntimeHelpers = `func rtDiv(a, b int32) int32 {
	if b == 0 {
		return 0
	}
	if a == -2147483648 && b == -1 {
		return a
	}
	return a / b
}

func rtRem(a, b int32) int32 {
	if b == 0 || (a == -2147483648 && b == -1) {
		return 0
	}
	return a % b
}

func rtBool(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
`

func (a *Annotated) emitFuncGo(sb *strings.Builder, fn *cdfg.Function, prefix string) {
	rv := func(x cdfg.Ref) string {
		switch x.Kind {
		case cdfg.RefConst:
			if x.Val < 0 {
				return fmt.Sprintf("int32(%d)", x.Val)
			}
			return fmt.Sprintf("%d", x.Val)
		case cdfg.RefTemp:
			return fmt.Sprintf("t%d", x.Idx)
		case cdfg.RefSlot:
			return "v_" + fn.Slots[x.Idx].Name
		case cdfg.RefGlobal:
			return "s.G_" + a.Prog.Globals[x.Idx].Name
		}
		return "_"
	}
	arr := func(x cdfg.Ref) string {
		if x.Kind == cdfg.RefGlobal {
			return fmt.Sprintf("s.G_%s[:]", a.Prog.Globals[x.Idx].Name)
		}
		s := fn.Slots[x.Idx]
		if s.IsParam {
			return "v_" + s.Name
		}
		return fmt.Sprintf("v_%s[:]", s.Name)
	}
	var params []string
	for _, p := range fn.Params {
		if p.IsArray {
			params = append(params, fmt.Sprintf("v_%s []int32", p.Name))
		} else {
			params = append(params, fmt.Sprintf("v_%s int32", p.Name))
		}
	}
	ret := ""
	if fn.ReturnsInt {
		ret = " int32"
	}
	fmt.Fprintf(sb, "// %sFn_%s is the timed form of %s.\nfunc %sFn_%s(env Env, s *%sState%s)%s {\n",
		prefix, fn.Name, fn.Name, prefix, fn.Name, prefix, prefixComma(params), ret)
	for _, sl := range fn.Slots {
		if sl.IsParam {
			continue
		}
		if sl.IsArray {
			fmt.Fprintf(sb, "\tvar v_%s [%d]int32\n", sl.Name, sl.Size)
		} else {
			fmt.Fprintf(sb, "\tvar v_%s int32\n", sl.Name)
		}
		fmt.Fprintf(sb, "\t_ = v_%s\n", sl.Name)
	}
	for i := 0; i < fn.NTemps; i++ {
		fmt.Fprintf(sb, "\tvar t%d int32\n\t_ = t%d\n", i, i)
	}
	// The entry label is not a jump target; reference it explicitly so the
	// generated file satisfies Go's unused-label rule.
	sb.WriteString("\tgoto bb0\n")
	for _, b := range fn.Blocks {
		fmt.Fprintf(sb, "bb%d:\n", b.ID)
		fmt.Fprintf(sb, "\tenv.Wait(%d)\n", int64(a.Est[b].Total))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case cdfg.OpMov:
				fmt.Fprintf(sb, "\t%s = %s\n", rv(in.Dst), rv(in.A))
			case cdfg.OpNeg:
				fmt.Fprintf(sb, "\t%s = -%s\n", rv(in.Dst), rv(in.A))
			case cdfg.OpNot:
				fmt.Fprintf(sb, "\t%s = ^%s\n", rv(in.Dst), rv(in.A))
			case cdfg.OpDiv:
				fmt.Fprintf(sb, "\t%s = rtDiv(%s, %s)\n", rv(in.Dst), rv(in.A), rv(in.B))
			case cdfg.OpRem:
				fmt.Fprintf(sb, "\t%s = rtRem(%s, %s)\n", rv(in.Dst), rv(in.A), rv(in.B))
			case cdfg.OpShl:
				fmt.Fprintf(sb, "\t%s = %s << (uint32(%s) & 31)\n", rv(in.Dst), rv(in.A), rv(in.B))
			case cdfg.OpShr:
				fmt.Fprintf(sb, "\t%s = %s >> (uint32(%s) & 31)\n", rv(in.Dst), rv(in.A), rv(in.B))
			case cdfg.OpCmpEq, cdfg.OpCmpNe, cdfg.OpCmpLt, cdfg.OpCmpLe, cdfg.OpCmpGt, cdfg.OpCmpGe:
				fmt.Fprintf(sb, "\t%s = rtBool(%s %s %s)\n", rv(in.Dst), rv(in.A), opC[in.Op], rv(in.B))
			case cdfg.OpLoad:
				fmt.Fprintf(sb, "\t%s = %s[%s]\n", rv(in.Dst), arr(in.Arr), rv(in.A))
			case cdfg.OpStore:
				fmt.Fprintf(sb, "\t%s[%s] = %s\n", arr(in.Arr), rv(in.A), rv(in.B))
			case cdfg.OpBr:
				fmt.Fprintf(sb, "\tif %s != 0 {\n\t\tgoto bb%d\n\t}\n\tgoto bb%d\n", rv(in.A), in.Then.ID, in.Else.ID)
			case cdfg.OpJmp:
				fmt.Fprintf(sb, "\tgoto bb%d\n", in.Target.ID)
			case cdfg.OpRet:
				if fn.ReturnsInt {
					v := "0"
					if in.A.Kind != cdfg.RefNone {
						v = rv(in.A)
					}
					fmt.Fprintf(sb, "\treturn %s\n", v)
				} else {
					sb.WriteString("\treturn\n")
				}
			case cdfg.OpCall:
				var args []string
				for ai, ar := range in.Args {
					if ai < len(in.Callee.Params) && in.Callee.Params[ai].IsArray {
						args = append(args, arr(ar))
					} else {
						args = append(args, rv(ar))
					}
				}
				call := fmt.Sprintf("%sFn_%s(env, s%s)", prefix, in.Callee.Name, prefixComma(args))
				if in.Dst.Kind == cdfg.RefNone {
					fmt.Fprintf(sb, "\t%s\n", call)
				} else {
					fmt.Fprintf(sb, "\t%s = %s\n", rv(in.Dst), call)
				}
			case cdfg.OpSend:
				fmt.Fprintf(sb, "\tenv.Send(%d, %s[:%s])\n", in.Chan, strings.TrimSuffix(arr(in.Arr), "[:]"), rv(in.A))
			case cdfg.OpRecv:
				fmt.Fprintf(sb, "\tenv.Recv(%d, %s[:%s])\n", in.Chan, strings.TrimSuffix(arr(in.Arr), "[:]"), rv(in.A))
			case cdfg.OpOut:
				fmt.Fprintf(sb, "\tenv.Out(%s)\n", rv(in.A))
			default:
				fmt.Fprintf(sb, "\t%s = %s %s %s\n", rv(in.Dst), rv(in.A), opC[in.Op], rv(in.B))
			}
		}
	}
	sb.WriteString("}\n\n")
}

func prefixComma(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}

// Summary renders a human-readable annotation report sorted by function.
func (a *Annotated) Summary() string {
	type row struct {
		name     string
		blocks   int
		degraded int
		delay    float64
	}
	var rows []row
	for _, fn := range a.Prog.Funcs {
		r := row{name: fn.Name, blocks: len(fn.Blocks)}
		for _, b := range fn.Blocks {
			e := a.Est[b]
			r.delay += e.Total
			if e.Degraded() {
				r.degraded++
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var sb strings.Builder
	fmt.Fprintf(&sb, "annotation for PE %q (policy %s)\n", a.PUM.Name, a.PUM.Policy)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s blocks=%-4d static-delay=%.0f", r.name, r.blocks, r.delay)
		if r.degraded > 0 {
			fmt.Fprintf(&sb, " DEGRADED=%d", r.degraded)
		}
		sb.WriteString("\n")
	}
	if d := a.DegradedBlocks(); d > 0 {
		fmt.Fprintf(&sb, "  degraded: %d blocks (%d ops) estimated with fallback latency for unmapped op classes\n",
			d, a.UnmappedOps())
	}
	fmt.Fprintf(&sb, "  annotation time: %v\n", a.Elapsed)
	return sb.String()
}
