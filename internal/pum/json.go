package pum

import (
	"encoding/json"
	"fmt"

	"ese/internal/cdfg"
)

// JSON (de)serialization of PUMs. This is the retargeting interface: a new
// processing element is described by a JSON file and fed to the estimator
// without recompiling the tool.

type jsonPUM struct {
	Name      string                `json:"name"`
	ClockHz   int64                 `json:"clock_hz"`
	Policy    string                `json:"policy"`
	Pipelined bool                  `json:"pipelined"`
	Pipelines []jsonPipeline        `json:"pipelines"`
	FUs       []jsonFU              `json:"fus"`
	Ops       map[string]jsonOpInfo `json:"ops"`
	Branch    jsonBranch            `json:"branch"`
	Mem       jsonMem               `json:"mem"`
	Calib     []jsonCalibSource     `json:"calib,omitempty"`
}

type jsonCalibSource struct {
	ISize      int     `json:"isize"`
	DSize      int     `json:"dsize"`
	Train      string  `json:"train"`
	Steps      uint64  `json:"steps"`
	BranchMiss float64 `json:"branch_miss"`
}

type jsonPipeline struct {
	Name       string   `json:"name"`
	Stages     []string `json:"stages"`
	IssueWidth int      `json:"issue_width"`
}

type jsonFU struct {
	ID       string `json:"id"`
	Quantity int    `json:"quantity"`
}

type jsonStageUse struct {
	FU     string `json:"fu,omitempty"`
	Cycles int    `json:"cycles"`
}

type jsonOpInfo struct {
	Stages []jsonStageUse `json:"stages"`
	Demand int            `json:"demand"`
	Commit int            `json:"commit"`
}

type jsonBranch struct {
	Predictor string  `json:"predictor"`
	MissRate  float64 `json:"miss_rate"`
	Penalty   float64 `json:"penalty"`
}

type jsonMem struct {
	HasICache  bool           `json:"has_icache"`
	HasDCache  bool           `json:"has_dcache"`
	ExtLatency float64        `json:"ext_latency"`
	Table      []jsonMemEntry `json:"table"`
}

type jsonMemEntry struct {
	ISize int `json:"isize"`
	DSize int `json:"dsize"`
	MemStats
}

var classByName = map[string]cdfg.Class{
	"alu": cdfg.ClassALU, "mul": cdfg.ClassMul, "div": cdfg.ClassDiv,
	"shift": cdfg.ClassShift, "load": cdfg.ClassLoad, "store": cdfg.ClassStore,
	"branch": cdfg.ClassBranch, "jump": cdfg.ClassJump, "call": cdfg.ClassCall,
	"io": cdfg.ClassIO,
}

// FromJSON parses and validates a PUM description.
func FromJSON(data []byte) (*PUM, error) {
	var j jsonPUM
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("pum: parsing JSON: %w", err)
	}
	pol, err := ParsePolicy(j.Policy)
	if err != nil {
		return nil, err
	}
	p := &PUM{
		Name:      j.Name,
		ClockHz:   j.ClockHz,
		Policy:    pol,
		Pipelined: j.Pipelined,
		Branch:    BranchModel(j.Branch),
		Mem: MemModel{
			HasICache:  j.Mem.HasICache,
			HasDCache:  j.Mem.HasDCache,
			ExtLatency: j.Mem.ExtLatency,
			Table:      make(map[CacheCfg]MemStats, len(j.Mem.Table)),
		},
		Ops: make(map[cdfg.Class]OpInfo, len(j.Ops)),
	}
	for _, pl := range j.Pipelines {
		p.Pipelines = append(p.Pipelines, Pipeline(pl))
	}
	for _, fu := range j.FUs {
		p.FUs = append(p.FUs, FU(fu))
	}
	for name, info := range j.Ops {
		cls, ok := classByName[name]
		if !ok {
			return nil, fmt.Errorf("pum: unknown operation class %q", name)
		}
		oi := OpInfo{Demand: info.Demand, Commit: info.Commit}
		for _, su := range info.Stages {
			oi.Stages = append(oi.Stages, StageUse(su))
		}
		p.Ops[cls] = oi
	}
	for _, e := range j.Mem.Table {
		p.Mem.Table[CacheCfg{ISize: e.ISize, DSize: e.DSize}] = e.MemStats
	}
	for _, c := range j.Calib {
		p.Calib = append(p.Calib, CalibSource{
			Cfg:   CacheCfg{ISize: c.ISize, DSize: c.DSize},
			Train: c.Train, Steps: c.Steps, BranchMiss: c.BranchMiss,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ToJSON serializes a PUM to its JSON description.
func (p *PUM) ToJSON() ([]byte, error) {
	j := jsonPUM{
		Name:      p.Name,
		ClockHz:   p.ClockHz,
		Policy:    p.Policy.String(),
		Pipelined: p.Pipelined,
		Branch:    jsonBranch(p.Branch),
		Mem: jsonMem{
			HasICache:  p.Mem.HasICache,
			HasDCache:  p.Mem.HasDCache,
			ExtLatency: p.Mem.ExtLatency,
		},
		Ops: make(map[string]jsonOpInfo, len(p.Ops)),
	}
	for _, pl := range p.Pipelines {
		j.Pipelines = append(j.Pipelines, jsonPipeline(pl))
	}
	for _, fu := range p.FUs {
		j.FUs = append(j.FUs, jsonFU(fu))
	}
	for name, cls := range classByName {
		info, ok := p.Ops[cls]
		if !ok {
			continue
		}
		ji := jsonOpInfo{Demand: info.Demand, Commit: info.Commit}
		for _, su := range info.Stages {
			ji.Stages = append(ji.Stages, jsonStageUse(su))
		}
		j.Ops[name] = ji
	}
	for _, cfg := range p.Configs() {
		j.Mem.Table = append(j.Mem.Table, jsonMemEntry{
			ISize: cfg.ISize, DSize: cfg.DSize, MemStats: p.Mem.Table[cfg],
		})
	}
	for _, c := range p.Calib {
		j.Calib = append(j.Calib, jsonCalibSource{
			ISize: c.Cfg.ISize, DSize: c.Cfg.DSize,
			Train: c.Train, Steps: c.Steps, BranchMiss: c.BranchMiss,
		})
	}
	return json.MarshalIndent(&j, "", "  ")
}
