package pum

import "testing"

// TestDatapathFingerprintStableUnderRetarget: WithCache swaps the
// statistical memory model but not the datapath, so the datapath hash —
// the Algorithm 1 cache key component — must not move, while the
// statistical hash must.
func TestDatapathFingerprintStableUnderRetarget(t *testing.T) {
	base := MicroBlaze()
	baseDP, baseST := base.DatapathFingerprint(), base.StatFingerprint()
	for _, cc := range StandardCacheConfigs {
		m, err := base.WithCache(cc)
		if err != nil {
			t.Fatalf("WithCache(%d/%d): %v", cc.ISize, cc.DSize, err)
		}
		if m.DatapathFingerprint() != baseDP {
			t.Errorf("cache %d/%d: datapath fingerprint changed", cc.ISize, cc.DSize)
		}
		if cc.ISize == 0 && cc.DSize == 0 {
			continue
		}
		if m.StatFingerprint() == baseST {
			t.Errorf("cache %d/%d: statistical fingerprint did not change", cc.ISize, cc.DSize)
		}
	}
}

// TestFingerprintsDifferAcrossModels: distinct datapaths hash apart.
func TestFingerprintsDifferAcrossModels(t *testing.T) {
	models := []*PUM{MicroBlaze(), DualIssue(), CustomHW("hw", 100_000_000)}
	for i, a := range models {
		for _, b := range models[i+1:] {
			if a.DatapathFingerprint() == b.DatapathFingerprint() {
				t.Errorf("%s and %s share a datapath fingerprint", a.Name, b.Name)
			}
		}
	}
}

// TestFingerprintDeterministic: repeated hashing of one model is stable
// (the op table is a map; iteration order must not leak into the hash).
func TestFingerprintDeterministic(t *testing.T) {
	m := MicroBlaze()
	dp, st := m.DatapathFingerprint(), m.StatFingerprint()
	for i := 0; i < 10; i++ {
		if m.DatapathFingerprint() != dp {
			t.Fatal("datapath fingerprint unstable")
		}
		if m.StatFingerprint() != st {
			t.Fatal("statistical fingerprint unstable")
		}
	}
}

// TestFingerprintSeesStructuralEdits: editing an op mapping or an FU
// quantity must change the datapath hash.
func TestFingerprintSeesStructuralEdits(t *testing.T) {
	a := MicroBlaze()
	b := MicroBlaze()
	if a.DatapathFingerprint() != b.DatapathFingerprint() {
		t.Fatal("two fresh MicroBlaze models hash apart")
	}
	for cls, oi := range b.Ops {
		oi.Demand++
		b.Ops[cls] = oi
		break
	}
	if a.DatapathFingerprint() == b.DatapathFingerprint() {
		t.Error("editing an op demand did not change the datapath fingerprint")
	}
}
