package pum

import (
	"math"
	"strings"
	"testing"

	"ese/internal/cdfg"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, p := range []*PUM{MicroBlaze(), CustomHW("dct", 100_000_000), DualIssue()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *PUM)
		want string
	}{
		{"no name", func(p *PUM) { p.Name = "" }, "missing name"},
		{"bad clock", func(p *PUM) { p.ClockHz = 0 }, "clock"},
		{"no pipelines", func(p *PUM) { p.Pipelines = nil }, "pipeline"},
		{"zero width", func(p *PUM) { p.Pipelines[0].IssueWidth = 0 }, "issue width"},
		{"bad fu qty", func(p *PUM) { p.FUs[0].Quantity = 0 }, "quantity"},
		{"dup fu", func(p *PUM) { p.FUs = append(p.FUs, FU{ID: "alu", Quantity: 1}) }, "duplicate"},
		// A missing class is deliberately NOT an error: estimation
		// degrades it to the fallback latency (TestValidateAllowsUnmapped).
		{"bad demand", func(p *PUM) {
			i := p.Ops[cdfg.ClassALU]
			i.Demand = 9
			p.Ops[cdfg.ClassALU] = i
		}, "demand"},
		{"commit before demand", func(p *PUM) {
			i := p.Ops[cdfg.ClassALU]
			i.Commit = i.Demand - 1
			p.Ops[cdfg.ClassALU] = i
		}, "commit"},
		{"zero cycles", func(p *PUM) {
			i := p.Ops[cdfg.ClassALU]
			i.Stages[0].Cycles = 0
			p.Ops[cdfg.ClassALU] = i
		}, "cycles"},
		{"unknown fu", func(p *PUM) {
			i := p.Ops[cdfg.ClassALU]
			i.Stages[2].FU = "fpu"
			p.Ops[cdfg.ClassALU] = i
		}, "unknown FU"},
		{"bad miss rate", func(p *PUM) { p.Branch.MissRate = 1.5 }, "miss rate"},
		{"bad table rate", func(p *PUM) {
			st := p.Mem.Table[CacheCfg{2048, 2048}]
			st.DHitRate = -0.2
			p.Mem.Table[CacheCfg{2048, 2048}] = st
		}, "hit rate"},
	}
	for _, tc := range cases {
		p := MicroBlaze()
		tc.mut(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAllowsUnmapped(t *testing.T) {
	// A model that omits an op class is legal — retargeted descriptions
	// often lack exotic units, and estimation degrades gracefully — but
	// the classes it does map must still be internally consistent.
	p := MicroBlaze()
	delete(p.Ops, cdfg.ClassDiv)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected a model with an unmapped class: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MicroBlaze()
	q := p.Clone()
	q.Pipelines[0].Stages[0] = "XX"
	info := q.Ops[cdfg.ClassALU]
	info.Stages[0].Cycles = 99
	q.Ops[cdfg.ClassALU] = info
	q.Mem.Table[CacheCfg{2048, 2048}] = MemStats{}
	if p.Pipelines[0].Stages[0] == "XX" {
		t.Error("pipeline stages aliased")
	}
	if p.Ops[cdfg.ClassALU].Stages[0].Cycles == 99 {
		t.Error("op stages aliased")
	}
	if p.Mem.Table[CacheCfg{2048, 2048}].IHitRate == 0 {
		t.Error("mem table aliased")
	}
}

func TestWithCache(t *testing.T) {
	p := MicroBlaze()
	q, err := p.WithCache(CacheCfg{8 * 1024, 4 * 1024})
	if err != nil {
		t.Fatalf("WithCache: %v", err)
	}
	if !q.Mem.HasICache || !q.Mem.HasDCache {
		t.Error("cache flags not set")
	}
	if q.Mem.Current.IHitRate != p.Mem.Table[CacheCfg{8 * 1024, 4 * 1024}].IHitRate {
		t.Error("current stats not selected")
	}
	// Uncached config: everything misses to external memory.
	u, err := p.WithCache(CacheCfg{0, 0})
	if err != nil {
		t.Fatalf("WithCache(0,0): %v", err)
	}
	if u.Mem.HasICache || u.Mem.HasDCache {
		t.Error("uncached config still has caches")
	}
	if u.Mem.Current.IMissPenalty != p.Mem.ExtLatency || u.Mem.Current.IHitRate != 0 {
		t.Errorf("uncached stats wrong: %+v", u.Mem.Current)
	}
	if _, err := p.WithCache(CacheCfg{1, 1}); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, orig := range []*PUM{MicroBlaze(), CustomHW("dct", 50_000_000), DualIssue()} {
		data, err := orig.ToJSON()
		if err != nil {
			t.Fatalf("%s ToJSON: %v", orig.Name, err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s FromJSON: %v\n%s", orig.Name, err, data)
		}
		if back.Name != orig.Name || back.ClockHz != orig.ClockHz || back.Policy != orig.Policy {
			t.Errorf("%s: header fields differ after round trip", orig.Name)
		}
		if len(back.Ops) != len(orig.Ops) {
			t.Errorf("%s: ops differ: %d vs %d", orig.Name, len(back.Ops), len(orig.Ops))
		}
		for cls, oi := range orig.Ops {
			bi := back.Ops[cls]
			if bi.Demand != oi.Demand || bi.Commit != oi.Commit || len(bi.Stages) != len(oi.Stages) {
				t.Errorf("%s: class %v differs", orig.Name, cls)
			}
		}
		if len(back.Mem.Table) != len(orig.Mem.Table) {
			t.Errorf("%s: mem table differs", orig.Name)
		}
	}
}

func TestFromJSONRejectsBadInput(t *testing.T) {
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := FromJSON([]byte(`{"name":"x","policy":"magic"}`)); err == nil {
		t.Error("unknown policy accepted")
	}
	good, _ := MicroBlaze().ToJSON()
	bad := strings.Replace(string(good), `"alu"`, `"warp"`, 1)
	if _, err := FromJSON([]byte(bad)); err == nil {
		t.Error("unknown op class accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"inorder", "asap", "list"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %v -> %q", s, p, p.String())
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestConfigsSorted(t *testing.T) {
	p := MicroBlaze()
	cfgs := p.Configs()
	for i := 1; i < len(cfgs); i++ {
		a, b := cfgs[i-1], cfgs[i]
		if a.ISize > b.ISize || (a.ISize == b.ISize && a.DSize > b.DSize) {
			t.Fatalf("configs not sorted: %v", cfgs)
		}
	}
}

// TestValidateRejectsBadStatistics is the regression test for the
// statistical-model validation hole: hit rates outside [0,1], NaN/Inf
// statistics and negative penalties — in the table, the branch model or
// the *current* memory selection — used to pass Validate and flow as-is
// into ComposeEstimate, which rounds the poisoned sum into Total. Every
// corruption below must now be rejected.
func TestValidateRejectsBadStatistics(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		corrupt func(p *PUM)
	}{
		{"current i-hit rate above one", func(p *PUM) { p.Mem.Current.IHitRate = 1.5 }},
		{"current d-hit rate negative", func(p *PUM) { p.Mem.Current.DHitRate = -0.1 }},
		{"current i-hit rate NaN", func(p *PUM) { p.Mem.Current.IHitRate = nan }},
		{"current d-miss penalty NaN", func(p *PUM) { p.Mem.Current.DMissPenalty = nan }},
		{"current i-miss penalty negative", func(p *PUM) { p.Mem.Current.IMissPenalty = -4 }},
		{"current d-hit delay infinite", func(p *PUM) { p.Mem.Current.DHitDelay = math.Inf(1) }},
		{"table hit rate NaN", func(p *PUM) {
			for cfg, st := range p.Mem.Table {
				st.IHitRate = nan
				p.Mem.Table[cfg] = st
				break
			}
		}},
		{"table hit rate above one", func(p *PUM) {
			for cfg, st := range p.Mem.Table {
				st.DHitRate = 2
				p.Mem.Table[cfg] = st
				break
			}
		}},
		{"branch miss rate NaN", func(p *PUM) { p.Branch.MissRate = nan }},
		{"branch penalty negative", func(p *PUM) { p.Branch.Penalty = -1 }},
		{"branch penalty NaN", func(p *PUM) { p.Branch.Penalty = nan }},
		{"external latency NaN", func(p *PUM) { p.Mem.ExtLatency = nan }},
	}
	for _, tc := range cases {
		p, err := MicroBlaze().WithCache(CacheCfg{ISize: 8192, DSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("baseline model invalid: %v", err)
		}
		tc.corrupt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the corrupted model", tc.name)
		}
	}
}
