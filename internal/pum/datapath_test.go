package pum

import "testing"

func TestWithDatapathDepth(t *testing.T) {
	p := MicroBlaze()
	q, err := p.WithDatapath(5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Pipelines[0].Stages); got != 5 {
		t.Fatalf("depth 5 produced %d stages", got)
	}
	for cls, info := range q.Ops {
		if len(info.Stages) != 5 {
			t.Fatalf("class %v has %d stage entries", cls, len(info.Stages))
		}
		if info.Demand != 4 || info.Commit != 4 {
			t.Fatalf("class %v demand/commit %d/%d, want 4/4", cls, info.Demand, info.Commit)
		}
		// The working stage's FU and cycles must survive the re-timing.
		orig := p.Ops[cls].Stages[2]
		if info.Stages[4] != orig {
			t.Fatalf("class %v work stage %+v, want %+v", cls, info.Stages[4], orig)
		}
	}
	if p.DatapathFingerprint() == q.DatapathFingerprint() {
		t.Fatal("depth change did not move the datapath fingerprint")
	}
	// The statistical models ride along unchanged.
	if p.StatFingerprint() != q.StatFingerprint() {
		t.Fatal("depth change altered the statistical fingerprint")
	}
}

func TestWithDatapathIssueAndFUs(t *testing.T) {
	p := MicroBlaze()
	q, err := p.WithDatapath(0, 2, map[string]int{"alu": 2, "mul": 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Pipelines) != 2 {
		t.Fatalf("issue 2 produced %d pipelines", len(q.Pipelines))
	}
	if q.Policy != PolicyASAP {
		t.Fatalf("in-order model widened to issue 2 kept policy %v", q.Policy)
	}
	if q.FUQuantity("alu") != 2 || q.FUQuantity("mul") != 2 || q.FUQuantity("div") != 1 {
		t.Fatalf("FU overrides misapplied: alu=%d mul=%d div=%d",
			q.FUQuantity("alu"), q.FUQuantity("mul"), q.FUQuantity("div"))
	}
	// Zero knobs are identity (no fingerprint movement).
	id, err := p.WithDatapath(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id.DatapathFingerprint() != p.DatapathFingerprint() {
		t.Fatal("identity variation moved the datapath fingerprint")
	}
}

func TestWithDatapathRejects(t *testing.T) {
	p := MicroBlaze()
	if _, err := p.WithDatapath(0, 0, map[string]int{"fpu": 1}); err == nil {
		t.Fatal("unknown FU override accepted")
	}
	if _, err := p.WithDatapath(0, 0, map[string]int{"alu": 0}); err == nil {
		t.Fatal("zero FU quantity accepted")
	}
	// The varied model must still validate (e.g. scheduler sees it whole).
	q, err := p.WithDatapath(7, 4, map[string]int{"lsu": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}
