package pum

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"ese/internal/cdfg"
)

// Fingerprint is a canonical content hash of one PUM sub-model group, used
// as a content-addressed cache key by the estimation pipeline.
type Fingerprint [sha256.Size]byte

// String returns a short hex form for logs and debugging.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// fpw wraps a sha256 state with canonical little-endian writers.
type fpw struct {
	h   hash.Hash
	buf [8]byte
}

func newFPW() *fpw { return &fpw{h: sha256.New()} }

func (w *fpw) int(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.h.Write(w.buf[:])
}

func (w *fpw) float(v float64) { w.int(int64(math.Float64bits(v))) }

func (w *fpw) str(s string) {
	w.int(int64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpw) bool(b bool) {
	if b {
		w.int(1)
	} else {
		w.int(0)
	}
}

func (w *fpw) sum() Fingerprint {
	var f Fingerprint
	w.h.Sum(f[:0])
	return f
}

// DatapathFingerprint hashes the sub-models Algorithm 1 consumes: the
// scheduling policy, the issue pipelines, the functional units, and the
// operation mapping table. Two PUMs with equal datapath fingerprints
// schedule every block identically, whatever their statistical sub-models
// say — so the fingerprint is stable across WithCache retargets and
// calibration, which is what keys the schedule cache.
func (p *PUM) DatapathFingerprint() Fingerprint {
	w := newFPW()
	w.int(int64(p.Policy))
	w.int(int64(len(p.Pipelines)))
	for _, pl := range p.Pipelines {
		w.int(int64(len(pl.Stages)))
		w.int(int64(pl.IssueWidth))
	}
	w.int(int64(len(p.FUs)))
	for _, fu := range p.FUs {
		w.str(fu.ID)
		w.int(int64(fu.Quantity))
	}
	// Iterate the op table in class order so the hash is independent of
	// map iteration order.
	for cls := cdfg.Class(0); cls <= cdfg.ClassIO; cls++ {
		info, ok := p.Ops[cls]
		if !ok {
			w.int(-1)
			continue
		}
		w.int(int64(cls))
		w.int(int64(info.Demand))
		w.int(int64(info.Commit))
		w.int(int64(len(info.Stages)))
		for _, su := range info.Stages {
			w.str(su.FU)
			w.int(int64(su.Cycles))
		}
	}
	return w.sum()
}

// StatFingerprint hashes the statistical sub-models Algorithm 2 layers on
// top of the schedule: the branch delay model, the currently selected
// memory statistics, and the pipelined flag that gates branch penalties.
// Retargeting the cache configuration or recalibrating changes this
// fingerprint but not the datapath one.
func (p *PUM) StatFingerprint() Fingerprint {
	w := newFPW()
	w.bool(p.Pipelined)
	w.float(p.Branch.MissRate)
	w.float(p.Branch.Penalty)
	w.bool(p.Mem.HasICache)
	w.bool(p.Mem.HasDCache)
	w.float(p.Mem.ExtLatency)
	st := p.Mem.Current
	w.float(st.IHitRate)
	w.float(st.DHitRate)
	w.float(st.IHitDelay)
	w.float(st.DHitDelay)
	w.float(st.IMissPenalty)
	w.float(st.DMissPenalty)
	return w.sum()
}
