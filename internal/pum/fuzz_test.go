package pum

// Fuzzing for the retargeting interface: FromJSON accepts descriptions
// from outside the tool, so no byte sequence may panic it — it must
// either return a validated model or an error, and every accepted model
// must survive a serialization round trip.

import "testing"

func FuzzFromJSON(f *testing.F) {
	for _, m := range []*PUM{MicroBlaze(), DualIssue(), CustomHW("hw", 100_000_000)} {
		if data, err := m.ToJSON(); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x"`))
	f.Add([]byte(`{"name":"x","clock_hz":-1}`))
	f.Add([]byte(`{"ops":{"nosuch":{}}}`))
	f.Add([]byte(`{"pipelines":[],"ops":{"alu":{"stages":[{"cycles":-5}],"commit":99}}}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := FromJSON(data)
		if err != nil {
			return
		}
		out, err := p.ToJSON()
		if err != nil {
			t.Fatalf("accepted model failed to serialize: %v", err)
		}
		if _, err := FromJSON(out); err != nil {
			t.Fatalf("round trip rejected: %v\njson: %s", err, out)
		}
	})
}
