package pum

import (
	"fmt"
	"sort"
)

// WithDatapath returns a structurally varied copy of the model — the
// design-space-exploration interface over the datapath sub-model. Three
// knobs, each left alone when zero:
//
//   - depth re-times every pipeline to the given stage count. All work
//     moves to the final stage (demand = commit = depth-1), with every
//     earlier stage a one-cycle pass-through — the uniform shape of the
//     library's MicroBlaze model. Ops whose mapping row spreads functional
//     units over several stages cannot be re-timed and are rejected.
//   - issue replaces the issue pipelines with `issue` identical
//     single-issue copies (the DualIssue construction generalized). When
//     widening an in-order model past one pipeline, the policy switches to
//     ASAP: strict program order cannot fill more than one issue slot, so
//     an in-order superscalar point would silently degenerate to the
//     single-issue design.
//   - fuQty overrides functional-unit quantities by ID. Every ID must
//     exist in the datapath and every quantity must be positive.
//
// The result is validated; the statistical sub-models (branch, memory) are
// carried over unchanged, so calibration survives the variation.
func (p *PUM) WithDatapath(depth, issue int, fuQty map[string]int) (*PUM, error) {
	q := p.Clone()
	if depth > 0 && len(q.Pipelines) > 0 && depth != len(q.Pipelines[0].Stages) {
		names := make([]string, depth)
		for i := range names {
			names[i] = fmt.Sprintf("S%d", i)
		}
		ex := depth - 1
		names[ex] = "EX"
		for i := range q.Pipelines {
			q.Pipelines[i].Stages = append([]string(nil), names...)
		}
		for cls, info := range q.Ops {
			work := StageUse{Cycles: 1}
			found := false
			for _, su := range info.Stages {
				if su.FU == "" && su.Cycles <= 1 {
					continue
				}
				if found {
					return nil, fmt.Errorf("pum %s: class %v spreads work over several stages; cannot re-time to depth %d",
						p.Name, cls, depth)
				}
				work, found = su, true
			}
			st := make([]StageUse, depth)
			for i := range st {
				st[i] = StageUse{Cycles: 1}
			}
			st[ex] = work
			q.Ops[cls] = OpInfo{Stages: st, Demand: ex, Commit: ex}
		}
	}
	if issue > 0 && len(q.Pipelines) > 0 && issue != len(q.Pipelines) {
		base := q.Pipelines[0]
		pipes := make([]Pipeline, issue)
		for i := range pipes {
			pipes[i] = Pipeline{
				Name:       fmt.Sprintf("p%d", i),
				Stages:     append([]string(nil), base.Stages...),
				IssueWidth: 1,
			}
		}
		q.Pipelines = pipes
		if issue > 1 && q.Policy == PolicyInOrder {
			q.Policy = PolicyASAP
		}
	}
	if len(fuQty) > 0 {
		ids := make([]string, 0, len(fuQty))
		for id := range fuQty {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			n := fuQty[id]
			if n < 1 {
				return nil, fmt.Errorf("pum %s: FU %q quantity override %d must be positive", p.Name, id, n)
			}
			found := false
			for i := range q.FUs {
				if q.FUs[i].ID == id {
					q.FUs[i].Quantity = n
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("pum %s: FU override names unknown unit %q", p.Name, id)
			}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
