// Package pum defines the Processing Unit Model of the paper (§4.1): the
// retargetable abstraction of a processing element that the estimation
// engine schedules basic blocks against. A PUM is made of four sub-models:
//
//  1. Execution model — the operation scheduling policy plus the operation
//     mapping table (per-stage functional-unit usage, demand stage, commit
//     stage) for every operation class;
//  2. Datapath model — functional units with quantities, and one or more
//     issue pipelines (multiple pipelines model superscalar PEs);
//  3. Branch delay model — a statistical model of the branch predictor
//     (misprediction ratio and penalty);
//  4. Memory model — statistical i-cache/d-cache hit rates and latencies
//     for a set of cache sizes, plus the external memory latency.
//
// PUMs are plain data: they can be built in Go (see library.go for the
// MicroBlaze-like and custom-hardware examples of Figs. 4–5) or loaded from
// JSON (json.go), which is what makes the estimator retargetable.
package pum

import (
	"fmt"
	"math"
	"sort"

	"ese/internal/cdfg"
)

// Policy is the operation scheduling policy of the execution model.
type Policy int

const (
	// PolicyInOrder issues operations strictly in program order, one
	// issue slot at a time — the policy of in-order processor pipelines.
	PolicyInOrder Policy = iota
	// PolicyASAP issues any ready operation in FIFO order of readiness.
	PolicyASAP
	// PolicyList issues ready operations by descending DFG depth
	// (critical-path list scheduling) — typical for synthesized hardware.
	PolicyList
)

var policyNames = map[Policy]string{
	PolicyInOrder: "inorder",
	PolicyASAP:    "asap",
	PolicyList:    "list",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	for p, n := range policyNames {
		if n == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("pum: unknown scheduling policy %q", s)
}

// FU is one functional-unit kind in the datapath model.
type FU struct {
	ID       string
	Quantity int
}

// StageUse describes what an operation does in one pipeline stage: which
// functional unit it occupies (empty means only the pipeline register) and
// for how many cycles.
type StageUse struct {
	FU     string
	Cycles int
}

// OpInfo is one row of the operation mapping table.
type OpInfo struct {
	// Stages has one entry per pipeline stage.
	Stages []StageUse
	// Demand is the stage index at which the operation needs its operands
	// (the "demand operand" flag of the paper).
	Demand int
	// Commit is the stage index after which the result is available to
	// dependent operations (the "commit result" flag).
	Commit int
}

// Pipeline is one issue pipeline of the datapath model.
type Pipeline struct {
	Name       string
	Stages     []string
	IssueWidth int // operations accepted into stage 0 per cycle
}

// BranchModel is the statistical branch delay model.
type BranchModel struct {
	Predictor string  // descriptive only ("static-nt", "2bit", ...)
	MissRate  float64 // average misprediction ratio
	Penalty   float64 // cycles lost per misprediction
}

// CacheCfg identifies one I/D cache size configuration in bytes.
// A zero size means the cache is absent.
type CacheCfg struct {
	ISize int
	DSize int
}

func (c CacheCfg) String() string {
	return fmt.Sprintf("%dk/%dk", c.ISize/1024, c.DSize/1024)
}

// MemStats are the statistical memory model values for one configuration.
type MemStats struct {
	IHitRate     float64
	DHitRate     float64
	IHitDelay    float64 // extra cycles per op on an i-cache hit
	DHitDelay    float64 // extra cycles per operand on a d-cache hit
	IMissPenalty float64 // extra cycles per op on an i-cache miss
	DMissPenalty float64 // extra cycles per operand on a d-cache miss
}

// CalibSource records where one calibrated memory-table entry came from:
// the training program it was profiled on, the dynamic instruction count of
// that run, and the branch misprediction ratio observed under the same
// configuration. It is provenance, not behavior — DatapathFingerprint and
// StatFingerprint deliberately ignore it, so a recalibration that lands on
// identical statistics still hits the schedule/estimate caches.
type CalibSource struct {
	Cfg        CacheCfg
	Train      string  // training program label
	Steps      uint64  // dynamic instructions profiled
	BranchMiss float64 // misprediction ratio observed under Cfg
}

// MemModel is the statistical memory model: per-configuration statistics
// plus the current selection.
type MemModel struct {
	HasICache bool
	HasDCache bool
	// ExtLatency is the external memory access latency in cycles; it is the
	// miss penalty floor and the uncached access cost.
	ExtLatency float64
	// Table holds statistics for a set of cache sizes, as the paper's
	// memory model prescribes. Current selects the active entry.
	Table   map[CacheCfg]MemStats
	Current MemStats
}

// PUM is a complete processing unit model.
type PUM struct {
	Name      string
	ClockHz   int64
	Policy    Policy
	Pipelined bool // branch penalties apply only to pipelined PEs
	Pipelines []Pipeline
	FUs       []FU
	Ops       map[cdfg.Class]OpInfo
	Branch    BranchModel
	Mem       MemModel
	// Calib is the calibration provenance of the statistical sub-models:
	// one entry per (cache configuration, training program) pair that
	// contributed to Mem.Table and Branch.MissRate. Empty means the
	// statistics are nominal (library defaults or hand-written JSON).
	Calib []CalibSource
}

// Clone returns a deep copy, so callers can vary cache configs or rates
// without aliasing.
func (p *PUM) Clone() *PUM {
	q := *p
	q.Pipelines = append([]Pipeline(nil), p.Pipelines...)
	for i := range q.Pipelines {
		q.Pipelines[i].Stages = append([]string(nil), p.Pipelines[i].Stages...)
	}
	q.FUs = append([]FU(nil), p.FUs...)
	q.Ops = make(map[cdfg.Class]OpInfo, len(p.Ops))
	for k, v := range p.Ops {
		v.Stages = append([]StageUse(nil), v.Stages...)
		q.Ops[k] = v
	}
	q.Mem.Table = make(map[CacheCfg]MemStats, len(p.Mem.Table))
	for k, v := range p.Mem.Table {
		q.Mem.Table[k] = v
	}
	q.Calib = append([]CalibSource(nil), p.Calib...)
	return &q
}

// WithCache returns a copy of the PUM with the memory model switched to the
// statistics of the given cache configuration. The configuration must be
// present in the table (or be the zero config, meaning uncached: every
// access pays ExtLatency).
func (p *PUM) WithCache(cfg CacheCfg) (*PUM, error) {
	q := p.Clone()
	if cfg.ISize == 0 && cfg.DSize == 0 {
		q.Mem.HasICache = false
		q.Mem.HasDCache = false
		q.Mem.Current = MemStats{
			IHitRate: 0, DHitRate: 0,
			IMissPenalty: p.Mem.ExtLatency,
			DMissPenalty: p.Mem.ExtLatency,
		}
		return q, nil
	}
	st, ok := p.Mem.Table[cfg]
	if !ok {
		return nil, fmt.Errorf("pum: %s has no memory statistics for %v", p.Name, cfg)
	}
	q.Mem.HasICache = cfg.ISize > 0
	q.Mem.HasDCache = cfg.DSize > 0
	q.Mem.Current = st
	return q, nil
}

// FUQuantity returns the quantity of the functional unit, 0 if unknown.
func (p *PUM) FUQuantity(id string) int {
	for _, fu := range p.FUs {
		if fu.ID == id {
			return fu.Quantity
		}
	}
	return 0
}

// scheduledClasses are the operation classes the lowering can produce. A
// model need not map all of them: estimation charges unmapped classes the
// fallback latency (graceful degradation) or rejects them in strict mode.
var scheduledClasses = []cdfg.Class{
	cdfg.ClassALU, cdfg.ClassMul, cdfg.ClassDiv, cdfg.ClassShift,
	cdfg.ClassLoad, cdfg.ClassStore, cdfg.ClassBranch, cdfg.ClassJump,
	cdfg.ClassCall, cdfg.ClassIO,
}

// Validate checks internal consistency of the model.
func (p *PUM) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pum: missing name")
	}
	if p.ClockHz <= 0 {
		return fmt.Errorf("pum %s: clock must be positive", p.Name)
	}
	if len(p.Pipelines) == 0 {
		return fmt.Errorf("pum %s: needs at least one pipeline", p.Name)
	}
	nStages := len(p.Pipelines[0].Stages)
	for _, pl := range p.Pipelines {
		if len(pl.Stages) == 0 {
			return fmt.Errorf("pum %s: pipeline %q has no stages", p.Name, pl.Name)
		}
		if len(pl.Stages) != nStages {
			return fmt.Errorf("pum %s: pipelines must have equal depth", p.Name)
		}
		if pl.IssueWidth <= 0 {
			return fmt.Errorf("pum %s: pipeline %q issue width must be positive", p.Name, pl.Name)
		}
	}
	fus := make(map[string]bool)
	for _, fu := range p.FUs {
		if fu.Quantity <= 0 {
			return fmt.Errorf("pum %s: FU %q quantity must be positive", p.Name, fu.ID)
		}
		if fus[fu.ID] {
			return fmt.Errorf("pum %s: duplicate FU %q", p.Name, fu.ID)
		}
		fus[fu.ID] = true
	}
	for _, cls := range scheduledClasses {
		info, ok := p.Ops[cls]
		if !ok {
			continue
		}
		if len(info.Stages) != nStages {
			return fmt.Errorf("pum %s: class %v maps %d stages, pipeline has %d",
				p.Name, cls, len(info.Stages), nStages)
		}
		if info.Demand < 0 || info.Demand >= nStages {
			return fmt.Errorf("pum %s: class %v demand stage %d out of range", p.Name, cls, info.Demand)
		}
		if info.Commit < info.Demand || info.Commit >= nStages {
			return fmt.Errorf("pum %s: class %v commit stage %d invalid", p.Name, cls, info.Commit)
		}
		for si, su := range info.Stages {
			if su.Cycles < 1 {
				return fmt.Errorf("pum %s: class %v stage %d cycles must be >= 1", p.Name, cls, si)
			}
			if su.FU != "" && !fus[su.FU] {
				return fmt.Errorf("pum %s: class %v stage %d uses unknown FU %q", p.Name, cls, si, su.FU)
			}
		}
	}
	if !validRate(p.Branch.MissRate) {
		return fmt.Errorf("pum %s: branch miss rate %v out of [0,1]", p.Name, p.Branch.MissRate)
	}
	if !validDelay(p.Branch.Penalty) {
		return fmt.Errorf("pum %s: branch penalty %v must be non-negative and finite", p.Name, p.Branch.Penalty)
	}
	for cfg, st := range p.Mem.Table {
		if err := st.validate(p.Name, cfg.String()); err != nil {
			return err
		}
	}
	// The Current selection feeds ComposeEstimate directly, whether it came
	// from WithCache or was set by hand — a NaN or negative value here would
	// round straight into every block's Total.
	if err := p.Mem.Current.validate(p.Name, "current selection"); err != nil {
		return err
	}
	if !validDelay(p.Mem.ExtLatency) {
		return fmt.Errorf("pum %s: external latency %v must be non-negative and finite", p.Name, p.Mem.ExtLatency)
	}
	return nil
}

// validRate reports whether r is a finite probability in [0,1]. The
// comparison is written so that NaN fails it: both NaN<0 and NaN>1 are
// false, which is how out-of-range statistics used to slip through.
func validRate(r float64) bool { return r >= 0 && r <= 1 }

// validDelay reports whether a latency/penalty value is finite and
// non-negative.
func validDelay(v float64) bool { return v >= 0 && !math.IsInf(v, 1) }

// Validate checks one statistical memory model entry in isolation — the
// check calibration applies to every profiled snapshot before it enters a
// model's table, so a degenerate training run (no branches, no data
// accesses, disabled caches) can never smuggle a NaN or out-of-range rate
// into estimation.
func (st MemStats) Validate() error {
	return st.validate("stats", "snapshot")
}

// validate checks one statistical memory model entry.
func (st MemStats) validate(name, where string) error {
	if !validRate(st.IHitRate) || !validRate(st.DHitRate) {
		return fmt.Errorf("pum %s: hit rate (i=%v d=%v) for %s out of [0,1]",
			name, st.IHitRate, st.DHitRate, where)
	}
	for _, v := range []float64{st.IMissPenalty, st.DMissPenalty, st.IHitDelay, st.DHitDelay} {
		if !validDelay(v) {
			return fmt.Errorf("pum %s: memory latency %v for %s must be non-negative and finite",
				name, v, where)
		}
	}
	return nil
}

// Configs returns the cache configurations in the memory table, sorted.
func (p *PUM) Configs() []CacheCfg {
	out := make([]CacheCfg, 0, len(p.Mem.Table))
	for c := range p.Mem.Table {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ISize != out[j].ISize {
			return out[i].ISize < out[j].ISize
		}
		return out[i].DSize < out[j].DSize
	})
	return out
}
