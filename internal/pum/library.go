package pum

import "ese/internal/cdfg"

// This file holds the built-in PUM library: the two models the paper shows
// as examples (a MicroBlaze-like embedded processor, Fig. 5, and a custom
// hardware datapath in the style of the DCT unit, Fig. 4), plus a
// dual-issue variant used by tests and ablations.

// uniformStages builds a per-stage usage row for an n-stage pipeline where
// only stage ex does real work (on fu, for cycles) and every other stage
// takes one cycle.
func uniformStages(n, ex int, fu string, cycles int) []StageUse {
	st := make([]StageUse, n)
	for i := range st {
		st[i] = StageUse{Cycles: 1}
	}
	st[ex] = StageUse{FU: fu, Cycles: cycles}
	return st
}

// MicroBlaze returns a PUM for a MicroBlaze-like single-issue, in-order,
// 3-stage (IF/DE/EX) embedded soft processor with configurable instruction
// and data caches, as in Fig. 5 of the paper. Memory statistics in the
// table are nominal; calibration (see the experiments harness) replaces
// them with values profiled on a training workload.
func MicroBlaze() *PUM {
	const nStages = 3
	const exStage = 2
	ops := map[cdfg.Class]OpInfo{
		cdfg.ClassALU:   {Stages: uniformStages(nStages, exStage, "alu", 1), Demand: exStage, Commit: exStage},
		cdfg.ClassShift: {Stages: uniformStages(nStages, exStage, "alu", 1), Demand: exStage, Commit: exStage},
		cdfg.ClassMul:   {Stages: uniformStages(nStages, exStage, "mul", 3), Demand: exStage, Commit: exStage},
		cdfg.ClassDiv:   {Stages: uniformStages(nStages, exStage, "div", 32), Demand: exStage, Commit: exStage},
		cdfg.ClassLoad:  {Stages: uniformStages(nStages, exStage, "lsu", 1), Demand: exStage, Commit: exStage},
		cdfg.ClassStore: {Stages: uniformStages(nStages, exStage, "lsu", 1), Demand: exStage, Commit: exStage},
		// Control transfers: a not-taken conditional branch costs one EX
		// cycle (the taken penalty is the statistical branch model);
		// unconditional jumps and returns always redirect the 3-stage
		// fetch pipeline (+2 bubbles); calls additionally shuffle the
		// register window.
		cdfg.ClassBranch: {Stages: uniformStages(nStages, exStage, "bru", 1), Demand: exStage, Commit: exStage},
		cdfg.ClassJump:   {Stages: uniformStages(nStages, exStage, "bru", 3), Demand: exStage, Commit: exStage},
		cdfg.ClassCall:   {Stages: uniformStages(nStages, exStage, "bru", 4), Demand: exStage, Commit: exStage},
		cdfg.ClassIO:     {Stages: uniformStages(nStages, exStage, "lsu", 1), Demand: exStage, Commit: exStage},
	}
	return &PUM{
		Name:      "microblaze",
		ClockHz:   100_000_000,
		Policy:    PolicyInOrder,
		Pipelined: true,
		Pipelines: []Pipeline{{Name: "main", Stages: []string{"IF", "DE", "EX"}, IssueWidth: 1}},
		FUs: []FU{
			{ID: "alu", Quantity: 1},
			{ID: "mul", Quantity: 1},
			{ID: "div", Quantity: 1},
			{ID: "lsu", Quantity: 1},
			{ID: "bru", Quantity: 1},
		},
		Ops: ops,
		Branch: BranchModel{
			Predictor: "static-nt",
			MissRate:  0.4, // nominal; calibration overrides
			Penalty:   2,
		},
		Mem: MemModel{
			HasICache:  true,
			HasDCache:  true,
			ExtLatency: 8,
			Table:      nominalCacheTable(8),
		},
	}
}

// StandardCacheConfigs are the five I/D cache configurations the paper
// sweeps in Tables 2 and 3.
var StandardCacheConfigs = []CacheCfg{
	{ISize: 0, DSize: 0},
	{ISize: 2 * 1024, DSize: 2 * 1024},
	{ISize: 8 * 1024, DSize: 4 * 1024},
	{ISize: 16 * 1024, DSize: 16 * 1024},
	{ISize: 32 * 1024, DSize: 16 * 1024},
}

// nominalCacheTable provides order-of-magnitude default statistics for the
// standard configurations, used before calibration.
func nominalCacheTable(ext float64) map[CacheCfg]MemStats {
	mk := func(ihit, dhit float64) MemStats {
		return MemStats{
			IHitRate: ihit, DHitRate: dhit,
			IHitDelay: 0, DHitDelay: 0,
			IMissPenalty: ext, DMissPenalty: ext,
		}
	}
	return map[CacheCfg]MemStats{
		{2 * 1024, 2 * 1024}:   mk(0.95, 0.88),
		{8 * 1024, 4 * 1024}:   mk(0.99, 0.93),
		{16 * 1024, 16 * 1024}: mk(0.995, 0.97),
		{32 * 1024, 16 * 1024}: mk(0.999, 0.97),
	}
}

// CustomHW returns a PUM for a synthesized custom hardware unit in the
// style of the paper's DCT example (Fig. 4): a non-pipelined datapath
// modeled as an equivalent single-issue pipeline with one stage, a
// list-scheduling controller, multiple functional units, and single-cycle
// block-RAM storage with no cache hierarchy.
func CustomHW(name string, clockHz int64) *PUM {
	one := func(fu string, cycles int) OpInfo {
		return OpInfo{Stages: []StageUse{{FU: fu, Cycles: cycles}}, Demand: 0, Commit: 0}
	}
	return &PUM{
		Name:      name,
		ClockHz:   clockHz,
		Policy:    PolicyList,
		Pipelined: false,
		Pipelines: []Pipeline{{Name: "dp", Stages: []string{"EXE"}, IssueWidth: 2}},
		FUs: []FU{
			{ID: "alu", Quantity: 2},
			{ID: "mul", Quantity: 1},
			{ID: "div", Quantity: 1},
			{ID: "mem", Quantity: 1}, // one BRAM port
			{ID: "ctrl", Quantity: 1},
		},
		Ops: map[cdfg.Class]OpInfo{
			cdfg.ClassALU:    one("alu", 1),
			cdfg.ClassShift:  one("alu", 1),
			cdfg.ClassMul:    one("mul", 2),
			cdfg.ClassDiv:    one("div", 16),
			cdfg.ClassLoad:   one("mem", 1),
			cdfg.ClassStore:  one("mem", 1),
			cdfg.ClassBranch: one("ctrl", 1),
			cdfg.ClassJump:   one("ctrl", 1),
			cdfg.ClassCall:   one("ctrl", 2),
			cdfg.ClassIO:     one("mem", 1),
		},
		Branch: BranchModel{Predictor: "none", MissRate: 0, Penalty: 0},
		Mem:    MemModel{ExtLatency: 0, Table: map[CacheCfg]MemStats{}},
	}
}

// DualIssue returns a superscalar variant of the MicroBlaze model with two
// issue pipelines, used by tests and the PUM-detail ablation.
func DualIssue() *PUM {
	p := MicroBlaze()
	p.Name = "dualissue"
	p.Policy = PolicyASAP
	p.Pipelines = []Pipeline{
		{Name: "p0", Stages: []string{"IF", "DE", "EX"}, IssueWidth: 1},
		{Name: "p1", Stages: []string{"IF", "DE", "EX"}, IssueWidth: 1},
	}
	p.FUs = []FU{
		{ID: "alu", Quantity: 2},
		{ID: "mul", Quantity: 1},
		{ID: "div", Quantity: 1},
		{ID: "lsu", Quantity: 1},
		{ID: "bru", Quantity: 1},
	}
	return p
}

// ARM5 returns a classic 5-stage (IF/ID/EX/MEM/WB) in-order RISC model with
// a load-use hazard: loads commit their result only in MEM, so a dependent
// consumer stalls one cycle — the textbook case the operation mapping
// table's demand/commit flags exist to express. ALU results forward from
// EX. Included as a library example of a deeper pipeline and used by the
// scheduler's hazard tests.
func ARM5() *PUM {
	const nStages = 5
	const ex = 2
	const mem = 3
	row := func(fu string, cycles, demand, commit int) OpInfo {
		return OpInfo{Stages: uniformStages(nStages, ex, fu, cycles), Demand: demand, Commit: commit}
	}
	loadRow := OpInfo{Stages: uniformStages(nStages, ex, "lsu", 1), Demand: ex, Commit: mem}
	return &PUM{
		Name:      "arm5",
		ClockHz:   200_000_000,
		Policy:    PolicyInOrder,
		Pipelined: true,
		Pipelines: []Pipeline{{Name: "main", Stages: []string{"IF", "ID", "EX", "MEM", "WB"}, IssueWidth: 1}},
		FUs: []FU{
			{ID: "alu", Quantity: 1},
			{ID: "mul", Quantity: 1},
			{ID: "div", Quantity: 1},
			{ID: "lsu", Quantity: 1},
			{ID: "bru", Quantity: 1},
		},
		Ops: map[cdfg.Class]OpInfo{
			cdfg.ClassALU:    row("alu", 1, ex, ex),
			cdfg.ClassShift:  row("alu", 1, ex, ex),
			cdfg.ClassMul:    row("mul", 2, ex, ex),
			cdfg.ClassDiv:    row("div", 20, ex, ex),
			cdfg.ClassLoad:   loadRow,
			cdfg.ClassStore:  row("lsu", 1, ex, ex),
			cdfg.ClassBranch: row("bru", 1, ex, ex),
			cdfg.ClassJump:   row("bru", 3, ex, ex),
			cdfg.ClassCall:   row("bru", 4, ex, ex),
			cdfg.ClassIO:     row("lsu", 1, ex, ex),
		},
		Branch: BranchModel{Predictor: "2bit", MissRate: 0.1, Penalty: 3},
		Mem: MemModel{
			HasICache:  true,
			HasDCache:  true,
			ExtLatency: 12,
			Table:      nominalCacheTable(12),
		},
	}
}
