package trace

import (
	"encoding/json"

	"ese/internal/sim"
)

// Events accumulates execution slices on named tracks and renders them in
// the Chrome trace_event JSON format, the timeline format Perfetto and
// chrome://tracing load directly. The TLM uses one track per PE (per task
// for RTOS PEs) plus one for the shared bus; each slice is one interval of
// activity: a lump of computed block delays, one RTOS run interval, or one
// bus transaction.
//
// Like the VCD recorder, Events is single-threaded by construction: the
// simulation kernel dispatches exactly one process at a time, so recording
// needs no locking and the slice order is deterministic.
type Events struct {
	tracks []string
	slices []evSlice
}

type evSlice struct {
	tid  int
	name string
	from sim.Time
	to   sim.Time
	args map[string]any
}

// NewEvents returns an empty timeline.
func NewEvents() *Events { return &Events{} }

// Track registers a named track (rendered as one thread row) and returns
// its id for Slice calls.
func (e *Events) Track(name string) int {
	e.tracks = append(e.tracks, name)
	return len(e.tracks) // 1-based tid; 0 is not a valid trace_event tid row
}

// Slice records one activity interval [from, to) on a track.
func (e *Events) Slice(tid int, name string, from, to sim.Time) {
	e.SliceArgs(tid, name, from, to, nil)
}

// SliceArgs is Slice with key/value annotations shown in the viewer's
// selection panel.
func (e *Events) SliceArgs(tid int, name string, from, to sim.Time, args map[string]any) {
	e.slices = append(e.slices, evSlice{tid: tid, name: name, from: from, to: to, args: args})
}

// Len returns the number of recorded slices.
func (e *Events) Len() int { return len(e.slices) }

// traceEvent is one entry of the trace_event JSON array. Timestamps and
// durations are microseconds (the format's unit); simulation time is
// picoseconds, so values are fractional.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single synthetic process id all tracks share.
const tracePid = 1

// RenderJSON produces the complete trace: a thread_name metadata event per
// track (so Perfetto labels the rows) followed by one complete ("X") event
// per slice, wrapped in the {"traceEvents": [...]} object form.
func (e *Events) RenderJSON() ([]byte, error) {
	evs := make([]traceEvent, 0, len(e.tracks)+len(e.slices))
	for i, name := range e.tracks {
		evs = append(evs, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  tracePid,
			Tid:  i + 1,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range e.slices {
		dur := float64(s.to-s.from) / 1e6 // ps -> us
		evs = append(evs, traceEvent{
			Name: s.name,
			Ph:   "X",
			Pid:  tracePid,
			Tid:  s.tid,
			Ts:   float64(s.from) / 1e6,
			Dur:  &dur,
			Args: s.args,
		})
	}
	return json.Marshal(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{evs})
}
