package trace

import (
	"encoding/json"
	"testing"

	"ese/internal/sim"
)

// TestRenderJSONShape validates the trace_event contract Perfetto checks on
// load: a top-level traceEvents array, "M" thread_name metadata naming each
// track, and complete ("X") events with pid/tid/ts/dur in microseconds.
func TestRenderJSONShape(t *testing.T) {
	e := NewEvents()
	cpu := e.Track("cpu")
	bus := e.Track("bus")
	e.Slice(cpu, "compute", sim.Time(2_000_000), sim.Time(5_000_000)) // 2us..5us
	e.SliceArgs(bus, "ch0", sim.Time(5_000_000), sim.Time(5_500_000), map[string]any{"words": 8})
	data, err := e.RenderJSON()
	if err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 2 metadata + 2 slices", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[:2]
	if meta[0].Ph != "M" || meta[0].Name != "thread_name" || meta[0].Args["name"] != "cpu" {
		t.Errorf("bad cpu metadata: %+v", meta[0])
	}
	if meta[1].Args["name"] != "bus" || meta[1].Tid != bus {
		t.Errorf("bad bus metadata: %+v", meta[1])
	}
	x := doc.TraceEvents[2]
	if x.Ph != "X" || x.Tid != cpu || x.Ts != 2.0 || x.Dur == nil || *x.Dur != 3.0 {
		t.Errorf("bad compute slice: %+v", x)
	}
	b := doc.TraceEvents[3]
	if b.Name != "ch0" || b.Args["words"] != float64(8) {
		t.Errorf("bad bus slice: %+v", b)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 1 || ev.Tid < 1 {
			t.Errorf("event %q has invalid pid/tid %d/%d", ev.Name, ev.Pid, ev.Tid)
		}
	}
}

func TestRenderJSONDeterministic(t *testing.T) {
	build := func() []byte {
		e := NewEvents()
		a := e.Track("a")
		e.SliceArgs(a, "s", 100, 200, map[string]any{"k1": 1, "k2": "x", "k3": 3})
		out, err := e.RenderJSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if string(build()) != string(build()) {
		t.Fatal("RenderJSON is not deterministic")
	}
}
