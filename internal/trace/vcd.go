// Package trace records activity waveforms of a TLM simulation and renders
// them as a standard VCD (value change dump) file, viewable in GTKWave and
// friends: one busy wire per processing element (per task for RTOS PEs) and
// one for the shared bus. Because the timed TLM advances in lump-sum waits,
// the waveform shows exactly the transaction-level activity picture the
// model computes.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ese/internal/sim"
)

// Signal is one 1-bit wire in the dump.
type Signal struct {
	Name string
	id   string
	idx  int
}

type change struct {
	t   sim.Time
	sig int
	val int
	seq int
}

// VCD accumulates value changes. Changes may be recorded out of time order
// (different processes interleave); Render sorts them.
type VCD struct {
	signals []*Signal
	changes []change
}

// New creates an empty dump.
func New() *VCD { return &VCD{} }

// vcdID builds the short identifier code for signal index i.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

// Signal registers a new wire.
func (v *VCD) Signal(name string) *Signal {
	s := &Signal{Name: name, idx: len(v.signals)}
	s.id = vcdID(s.idx)
	v.signals = append(v.signals, s)
	return s
}

// Set records a value change at simulation time t.
func (v *VCD) Set(s *Signal, t sim.Time, val int) {
	v.changes = append(v.changes, change{t: t, sig: s.idx, val: val, seq: len(v.changes)})
}

// Pulse records a 1-interval [from, to) on the signal.
func (v *VCD) Pulse(s *Signal, from, to sim.Time) {
	v.Set(s, from, 1)
	v.Set(s, to, 0)
}

// Render produces the VCD text with a 1 ps timescale.
func (v *VCD) Render() string {
	var sb strings.Builder
	sb.WriteString("$timescale 1ps $end\n$scope module tlm $end\n")
	for _, s := range v.signals {
		name := strings.NewReplacer(" ", "_", "/", ".").Replace(s.Name)
		fmt.Fprintf(&sb, "$var wire 1 %s %s $end\n", s.id, name)
	}
	sb.WriteString("$upscope $end\n$enddefinitions $end\n")
	// Initial values.
	sb.WriteString("$dumpvars\n")
	for _, s := range v.signals {
		fmt.Fprintf(&sb, "0%s\n", s.id)
	}
	sb.WriteString("$end\n")

	ordered := append([]change(nil), v.changes...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].t != ordered[j].t {
			return ordered[i].t < ordered[j].t
		}
		return ordered[i].seq < ordered[j].seq
	})
	last := make([]int, len(v.signals))
	curTime := sim.Time(0)
	headerOut := false
	for _, c := range ordered {
		if c.val == last[c.sig] {
			continue
		}
		if c.t != curTime || !headerOut {
			fmt.Fprintf(&sb, "#%d\n", uint64(c.t))
			curTime = c.t
			headerOut = true
		}
		fmt.Fprintf(&sb, "%d%s\n", c.val, v.signals[c.sig].id)
		last[c.sig] = c.val
	}
	return sb.String()
}

// Changes returns the number of recorded raw changes (before dedup).
func (v *VCD) Changes() int { return len(v.changes) }
