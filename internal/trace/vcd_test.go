package trace

import (
	"strconv"
	"strings"
	"testing"

	"ese/internal/sim"
)

func TestRenderStructure(t *testing.T) {
	v := New()
	a := v.Signal("cpu_busy")
	b := v.Signal("bus busy") // space must be sanitized
	v.Pulse(a, 100, 200)
	v.Pulse(b, 150, 250)
	out := v.Render()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var wire 1 ! cpu_busy $end",
		"$var wire 1 \" bus_busy $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#100",
		"#150",
		"#200",
		"#250",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChronological(t *testing.T) {
	v := New()
	a := v.Signal("a")
	// Recorded out of order.
	v.Set(a, 300, 0)
	v.Set(a, 100, 1)
	out := v.Render()
	i1 := strings.Index(out, "#100")
	i3 := strings.Index(out, "#300")
	if i1 < 0 || i3 < 0 || i1 > i3 {
		t.Fatalf("timestamps out of order:\n%s", out)
	}
	// Times must be non-decreasing overall.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			n, err := strconv.Atoi(line[1:])
			if err != nil {
				t.Fatalf("bad timestamp %q", line)
			}
			if n < last {
				t.Fatalf("timestamp %d after %d", n, last)
			}
			last = n
		}
	}
}

func TestRenderDedupsRepeatedValues(t *testing.T) {
	v := New()
	a := v.Signal("a")
	v.Set(a, 10, 1)
	v.Set(a, 20, 1) // repeated value: no change emitted
	v.Set(a, 30, 0)
	out := v.Render()
	if strings.Contains(out, "#20") {
		t.Fatalf("repeated value emitted a change:\n%s", out)
	}
	if strings.Count(out, "1!") != 1 {
		t.Fatalf("expected exactly one rising change:\n%s", out)
	}
}

func TestManySignalsGetDistinctIDs(t *testing.T) {
	v := New()
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		s := v.Signal("s" + strconv.Itoa(i))
		if seen[s.id] {
			t.Fatalf("duplicate VCD id %q", s.id)
		}
		seen[s.id] = true
	}
}

func TestZeroTimeChange(t *testing.T) {
	v := New()
	a := v.Signal("a")
	v.Set(a, 0, 1)
	v.Set(a, sim.Time(50), 0)
	out := v.Render()
	if !strings.Contains(out, "#0\n1!") {
		t.Fatalf("missing initial change at time 0:\n%s", out)
	}
}
