package trace

import (
	"fmt"
	"strings"
	"testing"

	"ese/internal/sim"
)

// TestVCDIDCollisionFree checks the identifier-code generator over several
// hundred signals: every VCD id must be unique (a collision would silently
// merge two signals' waveforms in the viewer) and made only of the
// printable ASCII characters the VCD grammar allows for id codes.
func TestVCDIDCollisionFree(t *testing.T) {
	const n = 700
	seen := make(map[string]int, n)
	for i := 0; i < n; i++ {
		id := vcdID(i)
		if id == "" {
			t.Fatalf("vcdID(%d) is empty", i)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("vcdID collision: %d and %d both map to %q", prev, i, id)
		}
		seen[id] = i
		for _, r := range id {
			if r < '!' || r > '~' {
				t.Fatalf("vcdID(%d) = %q contains non-printable %q", i, id, r)
			}
		}
	}
}

// TestVCDSignalIDsUnique exercises the same property through the public
// Signal API, as Render uses it.
func TestVCDSignalIDsUnique(t *testing.T) {
	v := New()
	ids := make(map[string]bool)
	for i := 0; i < 300; i++ {
		s := v.Signal(fmt.Sprintf("sig%d", i))
		if ids[s.id] {
			t.Fatalf("duplicate id %q at signal %d", s.id, i)
		}
		ids[s.id] = true
	}
}

// TestRenderSimultaneousChangesStableOrder checks that changes recorded at
// the same timestamp render in recording (seq) order, whatever order the
// sort visits them in, and that rendering is reproducible.
func TestRenderSimultaneousChangesStableOrder(t *testing.T) {
	build := func() *VCD {
		v := New()
		var sigs []*Signal
		for i := 0; i < 8; i++ {
			sigs = append(sigs, v.Signal(fmt.Sprintf("s%d", i)))
		}
		// All eight signals change at t=100 in a known order; a second
		// round at the same instant reverses some of them. Out-of-order
		// recording across time is also exercised.
		for i, s := range sigs {
			v.Set(s, 100, 1)
			_ = i
		}
		v.Set(sigs[3], 50, 1)
		v.Set(sigs[3], 100, 0) // same instant as the rises, recorded later
		v.Set(sigs[0], 25, 1)
		return v
	}
	out1 := build().Render()
	out2 := build().Render()
	if out1 != out2 {
		t.Fatalf("Render is not reproducible:\n%s\nvs\n%s", out1, out2)
	}
	// Within the #100 section, s3's fall (recorded last) must come after
	// the rises of the other signals, i.e. seq order is preserved.
	sec := out1[strings.Index(out1, "#100"):]
	idxRise := strings.Index(sec, "1"+vcdID(7)) // last signal's rise
	idxFall := strings.Index(sec, "0"+vcdID(3)) // s3's later fall
	if idxRise < 0 || idxFall < 0 {
		t.Fatalf("expected changes missing from section:\n%s", sec)
	}
	if idxFall < idxRise {
		t.Fatalf("same-time changes rendered out of seq order:\n%s", sec)
	}
	// s3 rose at t=50, so at t=100 it falls: both transitions must render.
	if !strings.Contains(out1, "#50") {
		t.Fatalf("missing #50 timestamp:\n%s", out1)
	}
}

// TestRenderDeduplicatesRedundantChanges: recording the same value twice
// must render a single transition.
func TestRenderDeduplicatesRedundantChanges(t *testing.T) {
	v := New()
	s := v.Signal("x")
	v.Set(s, 10, 1)
	v.Set(s, 20, 1) // redundant
	v.Set(s, 30, 0)
	out := v.Render()
	if strings.Contains(out, "#20") {
		t.Fatalf("redundant change rendered its own timestamp:\n%s", out)
	}
	if got := strings.Count(out, "1"+s.id); got != 1 {
		t.Fatalf("rise rendered %d times, want once:\n%s", got, out)
	}
}

// TestPulseRoundTripThroughSimTime: pulses recorded via sim.Time survive
// the sort with correct interval nesting.
func TestPulseRoundTripThroughSimTime(t *testing.T) {
	v := New()
	a := v.Signal("a")
	b := v.Signal("b")
	v.Pulse(b, sim.Time(200), sim.Time(300))
	v.Pulse(a, sim.Time(100), sim.Time(400))
	out := v.Render()
	// Search past the $dumpvars preamble so its initial 0-values don't
	// shadow the real transitions.
	body := out[strings.Index(out, "#100"):]
	wantOrder := []string{"#100", "1" + a.id, "#200", "1" + b.id, "#300", "0" + b.id, "#400", "0" + a.id}
	pos := 0
	for _, tok := range wantOrder {
		i := strings.Index(body[pos:], tok)
		if i < 0 {
			t.Fatalf("token %q missing or out of order in:\n%s", tok, out)
		}
		pos += i + len(tok)
	}
}
