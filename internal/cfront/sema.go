package cfront

import "fmt"

// SymKind classifies symbols.
type SymKind int

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a resolved program entity. Lowering assigns storage via Index.
type Symbol struct {
	Kind     SymKind
	Name     string
	IsArray  bool
	Size     int32   // array length; 0 for unsized array params
	InitVals []int32 // resolved initializer (globals and locals)
	HasInit  bool
	Func     *FuncDecl // for SymFunc
	Index    int       // storage slot, assigned by the lowering phase
}

// Intrinsic names recognized by the front end. They are reserved and cannot
// be redefined by the program.
const (
	IntrinsicSend = "send" // send(ch, arr, n): write n words of arr to channel ch
	IntrinsicRecv = "recv" // recv(ch, arr, n): read n words from channel ch into arr
	IntrinsicOut  = "out"  // out(v): append v to the process output stream
)

// Unit is a checked translation unit ready for lowering.
type Unit struct {
	File    *File
	Globals []*Symbol
	Funcs   []*FuncDecl
	FuncMap map[string]*FuncDecl
}

// Check resolves names, enforces the subset's typing rules and evaluates
// constant initializers. On success every Ident/CallExpr in the AST carries
// its Symbol.
func Check(f *File) (*Unit, error) {
	c := &checker{
		file:    f.Name,
		unit:    &Unit{File: f, FuncMap: make(map[string]*FuncDecl)},
		globals: make(map[string]*Symbol),
	}
	// Pass 1: collect globals and function signatures so that forward calls
	// and uses resolve.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *VarDecl:
			if err := c.declareGlobal(d); err != nil {
				return nil, err
			}
		case *FuncDecl:
			if err := c.declareFunc(d); err != nil {
				return nil, err
			}
		}
	}
	// Pass 2: check function bodies.
	for _, fn := range c.unit.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c.unit, nil
}

type checker struct {
	file    string
	unit    *Unit
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncDecl
	loops   int
}

func (c *checker) errorf(p Pos, format string, args ...any) error {
	return &Error{File: c.file, Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func isIntrinsic(name string) bool {
	return name == IntrinsicSend || name == IntrinsicRecv || name == IntrinsicOut
}

func (c *checker) declareGlobal(d *VarDecl) error {
	if isIntrinsic(d.Name) {
		return c.errorf(d.Pos, "%q is a reserved intrinsic name", d.Name)
	}
	if _, dup := c.globals[d.Name]; dup {
		return c.errorf(d.Pos, "redeclaration of global %q", d.Name)
	}
	sym, err := c.resolveVarDecl(d, SymGlobal)
	if err != nil {
		return err
	}
	c.globals[d.Name] = sym
	c.unit.Globals = append(c.unit.Globals, sym)
	return nil
}

// resolveVarDecl evaluates size and initializer and builds the Symbol.
// Initializers of globals and of locals alike must be compile-time constant;
// this keeps every execution engine's startup identical.
func (c *checker) resolveVarDecl(d *VarDecl, kind SymKind) (*Symbol, error) {
	sym := &Symbol{Kind: kind, Name: d.Name, IsArray: d.IsArray}
	if d.IsArray {
		if d.SizeExpr != nil {
			n, ok := EvalConst(d.SizeExpr)
			if !ok {
				return nil, c.errorf(d.SizeExpr.NodePos(), "array size of %q is not a constant expression", d.Name)
			}
			if n <= 0 {
				return nil, c.errorf(d.SizeExpr.NodePos(), "array size of %q must be positive, got %d", d.Name, n)
			}
			sym.Size = n
		} else {
			sym.Size = int32(len(d.InitList))
		}
		if d.InitList != nil {
			if int32(len(d.InitList)) > sym.Size {
				return nil, c.errorf(d.Pos, "too many initializers for %q: %d > %d", d.Name, len(d.InitList), sym.Size)
			}
			sym.HasInit = true
			sym.InitVals = make([]int32, sym.Size)
			for i, e := range d.InitList {
				v, ok := EvalConst(e)
				if !ok {
					return nil, c.errorf(e.NodePos(), "initializer %d of %q is not a constant expression", i, d.Name)
				}
				sym.InitVals[i] = v
			}
		}
	} else if d.Init != nil {
		v, ok := EvalConst(d.Init)
		switch {
		case ok:
			sym.HasInit = true
			sym.InitVals = []int32{v}
		case kind == SymGlobal:
			return nil, c.errorf(d.Init.NodePos(), "initializer of %q is not a constant expression", d.Name)
		default:
			// Local scalars may be initialized with arbitrary expressions;
			// the lowering turns the initializer into an assignment. The
			// expression is checked before the name is declared, so it sees
			// the enclosing scope (no self-reference).
			if err := c.checkScalarExpr(d.Init); err != nil {
				return nil, err
			}
		}
	}
	d.Sym = sym
	return sym, nil
}

func (c *checker) declareFunc(d *FuncDecl) error {
	if isIntrinsic(d.Name) {
		return c.errorf(d.Pos, "%q is a reserved intrinsic name", d.Name)
	}
	if _, dup := c.unit.FuncMap[d.Name]; dup {
		return c.errorf(d.Pos, "redefinition of function %q", d.Name)
	}
	if _, dup := c.globals[d.Name]; dup {
		return c.errorf(d.Pos, "%q already declared as a global", d.Name)
	}
	d.Sym = &Symbol{Kind: SymFunc, Name: d.Name, Func: d}
	c.unit.FuncMap[d.Name] = d
	c.unit.Funcs = append(c.unit.Funcs, d)
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(p Pos, sym *Symbol) error {
	if isIntrinsic(sym.Name) {
		return c.errorf(p, "%q is a reserved intrinsic name", sym.Name)
	}
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return c.errorf(p, "redeclaration of %q in the same scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.loops = 0
	c.pushScope()
	defer c.popScope()
	for _, p := range fn.Params {
		sym := &Symbol{Kind: SymParam, Name: p.Name, IsArray: p.IsArray}
		if err := c.declareLocal(p.Pos, sym); err != nil {
			return err
		}
		p.Sym = sym
	}
	return c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *DeclStmt:
		sym, err := c.resolveVarDecl(s.Decl, SymLocal)
		if err != nil {
			return err
		}
		return c.declareLocal(s.Decl.Pos, sym)
	case *AssignStmt:
		if err := c.checkLValue(s.LHS); err != nil {
			return err
		}
		return c.checkScalarExpr(s.RHS)
	case *IncDecStmt:
		return c.checkLValue(s.LHS)
	case *ExprStmt:
		call, ok := s.X.(*CallExpr)
		if !ok {
			return c.errorf(s.Pos, "expression statement must be a call")
		}
		return c.checkCall(call, true)
	case *IfStmt:
		if err := c.checkScalarExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkScalarExpr(s.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(s.Body)
	case *DoWhileStmt:
		c.loops++
		if err := c.checkStmt(s.Body); err != nil {
			c.loops--
			return err
		}
		c.loops--
		return c.checkScalarExpr(s.Cond)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkScalarExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(s.Body)
	case *BreakStmt:
		if c.loops == 0 {
			return c.errorf(s.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return c.errorf(s.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if c.fn.ReturnsInt && s.X == nil {
			return c.errorf(s.Pos, "function %q must return a value", c.fn.Name)
		}
		if !c.fn.ReturnsInt && s.X != nil {
			return c.errorf(s.Pos, "void function %q cannot return a value", c.fn.Name)
		}
		if s.X != nil {
			return c.checkScalarExpr(s.X)
		}
		return nil
	}
	return c.errorf(s.NodePos(), "internal: unknown statement %T", s)
}

func (c *checker) checkLValue(e Expr) error {
	switch e := e.(type) {
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return c.errorf(e.Pos, "undefined variable %q", e.Name)
		}
		if sym.Kind == SymFunc {
			return c.errorf(e.Pos, "cannot assign to function %q", e.Name)
		}
		if sym.IsArray {
			return c.errorf(e.Pos, "cannot assign to array %q as a whole", e.Name)
		}
		e.Sym = sym
		return nil
	case *IndexExpr:
		return c.checkIndex(e)
	}
	return c.errorf(e.NodePos(), "not an lvalue")
}

func (c *checker) checkIndex(e *IndexExpr) error {
	sym := c.lookup(e.Arr.Name)
	if sym == nil {
		return c.errorf(e.Pos, "undefined variable %q", e.Arr.Name)
	}
	if !sym.IsArray {
		return c.errorf(e.Pos, "%q is not an array", e.Arr.Name)
	}
	e.Arr.Sym = sym
	return c.checkScalarExpr(e.Index)
}

// checkScalarExpr checks an expression that must yield an int value.
func (c *checker) checkScalarExpr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return c.errorf(e.Pos, "undefined variable %q", e.Name)
		}
		if sym.Kind == SymFunc {
			return c.errorf(e.Pos, "function %q used as a value", e.Name)
		}
		if sym.IsArray {
			return c.errorf(e.Pos, "array %q used as a scalar value", e.Name)
		}
		e.Sym = sym
		return nil
	case *IndexExpr:
		return c.checkIndex(e)
	case *CallExpr:
		return c.checkCall(e, false)
	case *UnaryExpr:
		return c.checkScalarExpr(e.X)
	case *BinaryExpr:
		if err := c.checkScalarExpr(e.L); err != nil {
			return err
		}
		return c.checkScalarExpr(e.R)
	case *CondExpr:
		if err := c.checkScalarExpr(e.Cond); err != nil {
			return err
		}
		if err := c.checkScalarExpr(e.T); err != nil {
			return err
		}
		return c.checkScalarExpr(e.F)
	}
	return c.errorf(e.NodePos(), "internal: unknown expression %T", e)
}

// checkCall checks user calls and intrinsics. stmtCtx reports whether the
// call result is discarded (expression statement position).
func (c *checker) checkCall(e *CallExpr, stmtCtx bool) error {
	switch e.Name {
	case IntrinsicSend, IntrinsicRecv:
		if !stmtCtx {
			return c.errorf(e.Pos, "%s(...) can only be used as a statement", e.Name)
		}
		if len(e.Args) != 3 {
			return c.errorf(e.Pos, "%s expects 3 arguments (channel, array, count)", e.Name)
		}
		if _, ok := EvalConst(e.Args[0]); !ok {
			return c.errorf(e.Args[0].NodePos(), "%s channel id must be a constant expression", e.Name)
		}
		if err := c.checkArrayArg(e, 1); err != nil {
			return err
		}
		return c.checkScalarExpr(e.Args[2])
	case IntrinsicOut:
		if !stmtCtx {
			return c.errorf(e.Pos, "out(...) can only be used as a statement")
		}
		if len(e.Args) != 1 {
			return c.errorf(e.Pos, "out expects 1 argument")
		}
		return c.checkScalarExpr(e.Args[0])
	}
	fn, ok := c.unit.FuncMap[e.Name]
	if !ok {
		return c.errorf(e.Pos, "call to undefined function %q", e.Name)
	}
	e.Sym = fn.Sym
	if !fn.ReturnsInt && !stmtCtx {
		return c.errorf(e.Pos, "void function %q used as a value", e.Name)
	}
	if len(e.Args) != len(fn.Params) {
		return c.errorf(e.Pos, "call to %q has %d arguments, want %d", e.Name, len(e.Args), len(fn.Params))
	}
	for i, a := range e.Args {
		if fn.Params[i].IsArray {
			id, ok := a.(*Ident)
			if !ok {
				return c.errorf(a.NodePos(), "argument %d of %q must be an array name", i+1, e.Name)
			}
			sym := c.lookup(id.Name)
			if sym == nil {
				return c.errorf(id.Pos, "undefined variable %q", id.Name)
			}
			if !sym.IsArray {
				return c.errorf(id.Pos, "argument %d of %q must be an array, %q is a scalar", i+1, e.Name, id.Name)
			}
			id.Sym = sym
		} else {
			if err := c.checkScalarExpr(a); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) checkArrayArg(e *CallExpr, i int) error {
	id, ok := e.Args[i].(*Ident)
	if !ok {
		return c.errorf(e.Args[i].NodePos(), "%s argument %d must be an array name", e.Name, i+1)
	}
	sym := c.lookup(id.Name)
	if sym == nil {
		return c.errorf(id.Pos, "undefined variable %q", id.Name)
	}
	if !sym.IsArray {
		return c.errorf(id.Pos, "%s argument %d must be an array, %q is a scalar", e.Name, i+1, id.Name)
	}
	id.Sym = sym
	return nil
}

// EvalConst evaluates an expression made only of literals and pure operators
// to a constant, mirroring the subset's 32-bit wrap-around semantics.
func EvalConst(e Expr) (int32, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *UnaryExpr:
		v, ok := EvalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case TokMinus:
			return -v, true
		case TokBang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case TokTilde:
			return ^v, true
		}
		return 0, false
	case *BinaryExpr:
		l, ok := EvalConst(e.L)
		if !ok {
			return 0, false
		}
		// Short-circuit operators still fold eagerly here: both sides are
		// constant and side-effect free.
		r, ok := EvalConst(e.R)
		if !ok {
			return 0, false
		}
		return FoldBinary(e.Op, l, r), true
	case *CondExpr:
		cv, ok := EvalConst(e.Cond)
		if !ok {
			return 0, false
		}
		if cv != 0 {
			return EvalConst(e.T)
		}
		return EvalConst(e.F)
	}
	return 0, false
}

// FoldBinary applies a binary operator with the subset's defined semantics:
// 32-bit wrap-around arithmetic, shifts masked to 5 bits, comparisons and
// logical operators producing 0/1, and division/remainder by zero yielding 0.
func FoldBinary(op TokKind, l, r int32) int32 {
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case TokPlus:
		return l + r
	case TokMinus:
		return l - r
	case TokStar:
		return l * r
	case TokSlash:
		if r == 0 {
			return 0
		}
		if l == -2147483648 && r == -1 {
			return l // wrap like the hardware would
		}
		return l / r
	case TokPercent:
		if r == 0 {
			return 0
		}
		if l == -2147483648 && r == -1 {
			return 0
		}
		return l % r
	case TokShl:
		return l << (uint32(r) & 31)
	case TokShr:
		return l >> (uint32(r) & 31) // arithmetic shift
	case TokAmp:
		return l & r
	case TokPipe:
		return l | r
	case TokCaret:
		return l ^ r
	case TokEq:
		return b2i(l == r)
	case TokNe:
		return b2i(l != r)
	case TokLt:
		return b2i(l < r)
	case TokLe:
		return b2i(l <= r)
	case TokGt:
		return b2i(l > r)
	case TokGe:
		return b2i(l >= r)
	case TokAndAnd:
		return b2i(l != 0 && r != 0)
	case TokOrOr:
		return b2i(l != 0 || r != 0)
	}
	return 0
}
