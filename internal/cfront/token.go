package cfront

import "fmt"

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind enumerates token kinds of the C subset.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokInt
	TokVoid
	TokIf
	TokElse
	TokWhile
	TokDo
	TokFor
	TokBreak
	TokContinue
	TokReturn

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign    // =
	TokPlus      // +
	TokMinus     // -
	TokStar      // *
	TokSlash     // /
	TokPercent   // %
	TokShl       // <<
	TokShr       // >>
	TokAmp       // &
	TokPipe      // |
	TokCaret     // ^
	TokTilde     // ~
	TokBang      // !
	TokLt        // <
	TokGt        // >
	TokLe        // <=
	TokGe        // >=
	TokEq        // ==
	TokNe        // !=
	TokAndAnd    // &&
	TokOrOr      // ||
	TokQuestion  // ?
	TokColon     // :
	TokPlusEq    // +=
	TokMinusEq   // -=
	TokStarEq    // *=
	TokSlashEq   // /=
	TokPercentEq // %=
	TokShlEq     // <<=
	TokShrEq     // >>=
	TokAmpEq     // &=
	TokPipeEq    // |=
	TokCaretEq   // ^=
	TokInc       // ++
	TokDec       // --
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokInt: "int", TokVoid: "void", TokIf: "if", TokElse: "else",
	TokWhile: "while", TokDo: "do", TokFor: "for", TokBreak: "break",
	TokContinue: "continue", TokReturn: "return",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokShl: "<<", TokShr: ">>",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~",
	TokBang: "!", TokLt: "<", TokGt: ">", TokLe: "<=", TokGe: ">=",
	TokEq: "==", TokNe: "!=", TokAndAnd: "&&", TokOrOr: "||",
	TokQuestion: "?", TokColon: ":",
	TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=", TokSlashEq: "/=",
	TokPercentEq: "%=", TokShlEq: "<<=", TokShrEq: ">>=",
	TokAmpEq: "&=", TokPipeEq: "|=", TokCaretEq: "^=",
	TokInc: "++", TokDec: "--",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": TokInt, "void": TokVoid, "if": TokIf, "else": TokElse,
	"while": TokWhile, "do": TokDo, "for": TokFor, "break": TokBreak,
	"continue": TokContinue, "return": TokReturn,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int32 // for TokNumber
	Pos  Pos
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}
