package cfront

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse("t.c", src)
	if err == nil {
		t.Fatalf("Parse succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestParseGlobals(t *testing.T) {
	f := mustParse(t, `
int a;
int b = 5;
int c[4];
int d[] = {1, 2, 3};
int e[8] = {9};
`)
	if len(f.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(f.Decls))
	}
	d := f.Decls[3].(*VarDecl)
	if !d.IsArray || len(d.InitList) != 3 || d.SizeExpr != nil {
		t.Fatalf("d parsed wrong: %+v", d)
	}
}

func TestParseFunction(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) { return a + b; }
void run(int buf[], int n) {
  int i;
  for (i = 0; i < n; i++) { buf[i] = add(buf[i], i); }
}
`)
	fn := f.Decls[1].(*FuncDecl)
	if fn.Name != "run" || fn.ReturnsInt || len(fn.Params) != 2 {
		t.Fatalf("run parsed wrong: %+v", fn)
	}
	if !fn.Params[0].IsArray || fn.Params[1].IsArray {
		t.Fatalf("param kinds wrong: %+v", fn.Params)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `int x = 1 + 2 * 3;`)
	d := f.Decls[0].(*VarDecl)
	v, ok := EvalConst(d.Init)
	if !ok || v != 7 {
		t.Fatalf("1+2*3 = %d (ok=%v), want 7", v, ok)
	}
	cases := map[string]int32{
		"2 + 3 * 4":         14,
		"(2 + 3) * 4":       20,
		"1 << 3 + 1":        16, // shift binds looser than +
		"10 - 4 - 3":        3,  // left assoc
		"1 | 2 ^ 3 & 2":     1,  // & then ^ then |
		"4 > 3 == 1":        1,
		"-2 * -3":           6,
		"~0":                -1,
		"!5":                0,
		"1 ? 10 : 20":       10,
		"0 ? 10 : 20":       20,
		"1 && 0 || 1":       1,
		"100 / 7":           14,
		"100 % 7":           2,
		"7 / 0":             0, // defined as 0 in the subset
		"7 % 0":             0,
		"-7 / 2":            -3, // truncated division
		"1 ? 2 : 0 ? 3 : 4": 2,  // ?: right assoc
	}
	for src, want := range cases {
		f := mustParse(t, "int x = "+src+";")
		d := f.Decls[0].(*VarDecl)
		v, ok := EvalConst(d.Init)
		if !ok {
			t.Errorf("%s: not const", src)
			continue
		}
		if v != want {
			t.Errorf("%s = %d, want %d", src, v, want)
		}
	}
}

func TestParseStatements(t *testing.T) {
	f := mustParse(t, `
void f(int n) {
  int i = 0;
  while (i < n) { i += 2; }
  do { i--; } while (i > 0);
  if (i == 0) { out(1); } else out(0);
  for (;;) { break; }
  for (i = 0; i < 4; i++) continue;
  ;
}
`)
	fn := f.Decls[0].(*FuncDecl)
	if len(fn.Body.Stmts) != 7 {
		t.Fatalf("stmts = %d, want 7", len(fn.Body.Stmts))
	}
	if _, ok := fn.Body.Stmts[2].(*DoWhileStmt); !ok {
		t.Fatalf("stmt 2 = %T, want DoWhileStmt", fn.Body.Stmts[2])
	}
	forever := fn.Body.Stmts[4].(*ForStmt)
	if forever.Init != nil || forever.Cond != nil || forever.Post != nil {
		t.Fatalf("for(;;) parsed wrong: %+v", forever)
	}
}

func TestParseCompoundAssignOps(t *testing.T) {
	ops := []string{"+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}
	for _, op := range ops {
		mustParse(t, "void f() { int x; x "+op+" 3; }")
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, "int f( {", "expected")
	parseErr(t, "void x;", "cannot have type void")
	parseErr(t, "int a[];", "needs a size")
	parseErr(t, "void f() { 1 + 2; }", "must be a call")
	parseErr(t, "void f() { x = ; }", "expected expression")
	parseErr(t, "void f() { if (1) }", "expected expression")
	parseErr(t, "void f() {", "unterminated block")
	parseErr(t, "void f() { 5 = x; }", "not assignable")
	parseErr(t, "void f() { break }", "expected")
}

func TestParseArrayIndexAndCallExprs(t *testing.T) {
	f := mustParse(t, `
int g(int v) { return v; }
void f(int a[]) {
  a[a[0] + 1] = g(a[2]) * 3;
}
`)
	fn := f.Decls[1].(*FuncDecl)
	asn := fn.Body.Stmts[0].(*AssignStmt)
	idx, ok := asn.LHS.(*IndexExpr)
	if !ok {
		t.Fatalf("LHS = %T, want IndexExpr", asn.LHS)
	}
	if _, ok := idx.Index.(*BinaryExpr); !ok {
		t.Fatalf("nested index = %T, want BinaryExpr", idx.Index)
	}
}
