package cfront

import "fmt"

// Parse tokenizes and parses one source file of the C subset into an AST.
// The returned File is unchecked; run Check on it before lowering.
func Parse(name, src string) (*File, error) {
	toks, err := lexAll(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: name, toks: toks}
	return p.parseFile()
}

type parser struct {
	file string
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos Pos, format string, args ...any) error {
	return &Error{File: p.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf(t.Pos, "expected %q, found %q", k.String(), t.Kind.String())
	}
	p.advance()
	return t, nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != TokEOF {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

// parseTopDecl parses either a global variable or a function definition.
func (p *parser) parseTopDecl() (Decl, error) {
	t := p.cur()
	if t.Kind != TokInt && t.Kind != TokVoid {
		return nil, p.errorf(t.Pos, "expected declaration, found %q", t.Kind.String())
	}
	returnsInt := t.Kind == TokInt
	p.advance()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokLParen {
		return p.parseFuncRest(t.Pos, name.Text, returnsInt)
	}
	if !returnsInt {
		return nil, p.errorf(t.Pos, "variable %q cannot have type void", name.Text)
	}
	d, err := p.parseVarRest(t.Pos, name.Text)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// parseVarRest parses the declarator tail after "int name": optional [size]
// and optional initializer. The caller consumes the trailing semicolon.
func (p *parser) parseVarRest(pos Pos, name string) (*VarDecl, error) {
	d := &VarDecl{Pos: pos, Name: name}
	if p.cur().Kind == TokLBracket {
		p.advance()
		d.IsArray = true
		if p.cur().Kind != TokRBracket {
			sz, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.SizeExpr = sz
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind == TokAssign {
		p.advance()
		if d.IsArray {
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.cur().Kind != TokRBrace {
				e, err := p.parseCondExpr()
				if err != nil {
					return nil, err
				}
				d.InitList = append(d.InitList, e)
				if p.cur().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	if d.IsArray && d.SizeExpr == nil && d.InitList == nil {
		return nil, p.errorf(pos, "array %q needs a size or an initializer list", name)
	}
	return d, nil
}

func (p *parser) parseFuncRest(pos Pos, name string, returnsInt bool) (*FuncDecl, error) {
	fd := &FuncDecl{Pos: pos, Name: name, ReturnsInt: returnsInt}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == TokVoid && p.la(1).Kind == TokRParen {
		p.advance()
	}
	for p.cur().Kind != TokRParen {
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		param := &Param{Pos: pn.Pos, Name: pn.Text}
		if p.cur().Kind == TokLBracket {
			p.advance()
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			param.IsArray = true
		}
		fd.Params = append(fd.Params, param)
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, p.errorf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokInt:
		p.advance()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d, err := p.parseVarRest(t.Pos, name.Text)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case TokIf:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
		if p.cur().Kind == TokElse {
			p.advance()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil
	case TokWhile:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
	case TokDo:
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}, nil
	case TokFor:
		return p.parseFor()
	case TokBreak:
		p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokContinue:
		p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case TokReturn:
		p.advance()
		s := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != TokSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokSemi:
		p.advance()
		return &BlockStmt{Pos: t.Pos}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.advance() // for
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: t.Pos}
	if p.cur().Kind != TokSemi {
		if p.cur().Kind == TokInt {
			dt := p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			d, err := p.parseVarRest(dt.Pos, name.Text)
			if err != nil {
				return nil, err
			}
			s.Init = &DeclStmt{Decl: d}
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

var compoundOps = map[TokKind]bool{
	TokAssign: true, TokPlusEq: true, TokMinusEq: true, TokStarEq: true,
	TokSlashEq: true, TokPercentEq: true, TokShlEq: true, TokShrEq: true,
	TokAmpEq: true, TokPipeEq: true, TokCaretEq: true,
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon, so it is usable in for-headers).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch {
	case compoundOps[p.cur().Kind]:
		if !isLValue(lhs) {
			return nil, p.errorf(t.Pos, "left side of assignment is not assignable")
		}
		op := p.advance().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: op, RHS: rhs}, nil
	case p.cur().Kind == TokInc || p.cur().Kind == TokDec:
		if !isLValue(lhs) {
			return nil, p.errorf(t.Pos, "operand of %q is not assignable", p.cur().Kind.String())
		}
		dec := p.advance().Kind == TokDec
		return &IncDecStmt{Pos: t.Pos, LHS: lhs, Dec: dec}, nil
	default:
		if _, ok := lhs.(*CallExpr); !ok {
			return nil, p.errorf(t.Pos, "expression statement must be a call")
		}
		return &ExprStmt{Pos: t.Pos, X: lhs}, nil
	}
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return true
	}
	return false
}

// Expression grammar, C precedence, via precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokGt: 7, TokLe: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseCondExpr() }

func (p *parser) parseCondExpr() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokQuestion {
		return cond, nil
	}
	qp := p.advance().Pos
	t, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	f, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: qp, Cond: cond, T: t, F: f}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.advance().Pos
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus, TokBang, TokTilde:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	case TokPlus:
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &IntLit{Pos: t.Pos, Val: t.Val}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.advance()
		switch p.cur().Kind {
		case TokLParen:
			p.advance()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			for p.cur().Kind != TokRParen {
				a, err := p.parseCondExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.cur().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		case TokLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Arr: &Ident{Pos: t.Pos, Name: t.Text}, Index: idx}, nil
		default:
			return &Ident{Pos: t.Pos, Name: t.Text}, nil
		}
	}
	return nil, p.errorf(t.Pos, "expected expression, found %q", t.Kind.String())
}
