// Package cfront is the C front-end of the estimation tool chain: it parses
// application processes written in a C subset into an AST and checks them,
// playing the role the LLVM front-end plays in the paper.
//
// The accepted subset is the part of C the paper's workloads need:
//
//   - a single value type, 32-bit signed int, plus fixed-size int arrays;
//   - global and local variables with constant initializers;
//   - functions with int/void results and int or int[] parameters
//     (array parameters are passed by reference);
//   - if/else, while, do-while, for, break, continue, return;
//   - full C integer expression grammar including ?: and short-circuit
//     && and ||, compound assignment, and ++/-- statements;
//   - the platform intrinsics send(ch, arr, n), recv(ch, arr, n) for
//     transaction-level communication and out(v) for result emission.
//
// Division or remainder by zero evaluates to zero in every execution engine
// (documented deviation from C, which leaves it undefined).
package cfront

// Node is implemented by all AST nodes.
type Node interface {
	NodePos() Pos
}

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Decl is a top-level declaration: a global variable or a function.
type Decl interface {
	Node
	declNode()
}

// VarDecl declares a scalar or array variable, at file scope or inside a
// function body.
type VarDecl struct {
	Pos      Pos
	Name     string
	IsArray  bool
	SizeExpr Expr   // array size, must be constant; nil for scalars
	Init     Expr   // scalar initializer, optional
	InitList []Expr // array initializer list, optional
	Sym      *Symbol
}

func (d *VarDecl) NodePos() Pos { return d.Pos }
func (d *VarDecl) declNode()    {}

// Param is a function parameter; array parameters are unsized references.
type Param struct {
	Pos     Pos
	Name    string
	IsArray bool
	Sym     *Symbol
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Pos        Pos
	Name       string
	Params     []*Param
	ReturnsInt bool // false means void
	Body       *BlockStmt
	Sym        *Symbol
}

func (d *FuncDecl) NodePos() Pos { return d.Pos }
func (d *FuncDecl) declNode()    {}

// Stmt is implemented by all statements.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a braced statement list with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt wraps a local VarDecl.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns RHS to an lvalue; Op is TokAssign or a compound
// assignment token such as TokPlusEq.
type AssignStmt struct {
	Pos Pos
	LHS Expr // *Ident or *IndexExpr
	Op  TokKind
	RHS Expr
}

// IncDecStmt is x++ / x-- / a[i]++ / a[i]-- in statement position.
type IncDecStmt struct {
	Pos Pos
	LHS Expr
	Dec bool
}

// ExprStmt evaluates an expression for its side effects (calls only).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while (cond); loop.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ForStmt is for(init; cond; post). Any of the three parts may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // AssignStmt, DeclStmt, IncDecStmt or ExprStmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the current function, with a value iff the
// function returns int.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *DeclStmt) NodePos() Pos     { return s.Decl.Pos }
func (s *AssignStmt) NodePos() Pos   { return s.Pos }
func (s *IncDecStmt) NodePos() Pos   { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *DoWhileStmt) NodePos() Pos  { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

// Expr is implemented by all expressions.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int32
}

// Ident names a variable (scalar use) or an array (as a call argument).
type Ident struct {
	Pos  Pos
	Name string
	Sym  *Symbol
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	Pos   Pos
	Arr   *Ident
	Index Expr
}

// CallExpr calls a user function or an intrinsic (send/recv/out).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
	Sym  *Symbol // nil for intrinsics
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// BinaryExpr is a binary operation, including short-circuit && and ||.
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	L, R Expr
}

// CondExpr is the ternary c ? a : b.
type CondExpr struct {
	Pos        Pos
	Cond, T, F Expr
}

func (e *IntLit) NodePos() Pos     { return e.Pos }
func (e *Ident) NodePos() Pos      { return e.Pos }
func (e *IndexExpr) NodePos() Pos  { return e.Pos }
func (e *CallExpr) NodePos() Pos   { return e.Pos }
func (e *UnaryExpr) NodePos() Pos  { return e.Pos }
func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *CondExpr) NodePos() Pos   { return e.Pos }

func (*IntLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
