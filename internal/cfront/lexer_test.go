package cfront

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := lexAll("t.c", "int x = 42; // comment\nx += 0x1F;")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	want := []TokKind{TokInt, TokIdent, TokAssign, TokNumber, TokSemi,
		TokIdent, TokPlusEq, TokNumber, TokSemi, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	if toks[3].Val != 42 {
		t.Errorf("literal = %d, want 42", toks[3].Val)
	}
	if toks[7].Val != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[7].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := "<< >> <<= >>= <= >= < > == != = && || & | ^ ~ ! ++ -- += -= *= /= %= &= |= ^= ? :"
	toks, err := lexAll("t.c", src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	want := []TokKind{TokShl, TokShr, TokShlEq, TokShrEq, TokLe, TokGe, TokLt,
		TokGt, TokEq, TokNe, TokAssign, TokAndAnd, TokOrOr, TokAmp, TokPipe,
		TokCaret, TokTilde, TokBang, TokInc, TokDec, TokPlusEq, TokMinusEq,
		TokStarEq, TokSlashEq, TokPercentEq, TokAmpEq, TokPipeEq, TokCaretEq,
		TokQuestion, TokColon, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := lexAll("t.c", "a /* multi\nline */ b")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("toks = %+v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("b at line %d, want 2", toks[1].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := lexAll("t.c", "a /* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := lexAll("t.c", "if ifx for force _while")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	want := []TokKind{TokIf, TokIdent, TokFor, TokIdent, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := lexAll("t.c", "int @x;"); err == nil {
		t.Fatal("expected error for '@'")
	}
}

func TestLexOverflowLiteral(t *testing.T) {
	if _, err := lexAll("t.c", "x = 99999999999;"); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// 0xFFFFFFFF fits as unsigned and wraps to -1.
	toks, err := lexAll("t.c", "0xFFFFFFFF")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[0].Val != -1 {
		t.Fatalf("0xFFFFFFFF lexed as %d, want -1", toks[0].Val)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("t.c", "int\n  x;")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}
