package cfront

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds arbitrary byte soup and mutated valid
// programs through the front end: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	base := `
int tab[4] = {1, 2, 3, 4};
int f(int a, int b) { return a * b + tab[a & 3]; }
void main() {
  int i;
  for (i = 0; i < 4; i++) out(f(i, i + 1));
}`
	mutate := func(src string, pos uint16, ch byte) string {
		if len(src) == 0 {
			return src
		}
		p := int(pos) % len(src)
		return src[:p] + string(ch) + src[p+1:]
	}
	f := func(raw []byte, pos uint16, ch byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("front end panicked: %v", r)
			}
		}()
		// Raw bytes.
		if fl, err := Parse("fuzz.c", string(raw)); err == nil {
			Check(fl) //nolint:errcheck
		}
		// Single-byte mutations of a valid program.
		src := mutate(base, pos, ch)
		if fl, err := Parse("fuzz.c", src); err == nil {
			Check(fl) //nolint:errcheck
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestErrorMessagesCarryPositions: every front-end diagnostic must point
// at a file:line:col location.
func TestErrorMessagesCarryPositions(t *testing.T) {
	cases := []string{
		"int x = ;",
		"void f() { y = 1; }",
		"void f() { if }",
		"int a[0];",
		"void f() { out(1, 2); }",
		"int f() { return; }",
	}
	for _, src := range cases {
		var err error
		fl, perr := Parse("diag.c", src)
		if perr != nil {
			err = perr
		} else {
			_, err = Check(fl)
		}
		if err == nil {
			t.Errorf("%q: expected a diagnostic", src)
			continue
		}
		if !strings.HasPrefix(err.Error(), "diag.c:") {
			t.Errorf("%q: diagnostic %q lacks position", src, err)
		}
	}
}

// TestDeeplyNestedExpressions: heavy nesting must parse (recursive descent
// depth) and fold correctly.
func TestDeeplyNestedExpressions(t *testing.T) {
	depth := 200
	expr := strings.Repeat("(1+", depth) + "1" + strings.Repeat(")", depth)
	src := "int x = " + expr + ";"
	fl, err := Parse("deep.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := Check(fl)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := u.Globals[0].InitVals[0]; got != int32(depth+1) {
		t.Fatalf("folded to %d, want %d", got, depth+1)
	}
}

// TestLongOperatorChains: left-associative chains of every operator.
func TestLongOperatorChains(t *testing.T) {
	for _, op := range []string{"+", "-", "*", "|", "^", "&"} {
		parts := make([]string, 60)
		for i := range parts {
			parts[i] = "1"
		}
		src := "int x = " + strings.Join(parts, op) + ";"
		if _, err := Parse("chain.c", src); err != nil {
			t.Errorf("chain of %q: %v", op, err)
		}
	}
}

// TestManyDeclarations: wide programs scale.
func TestManyDeclarations(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		sb.WriteString("int g")
		sb.WriteString(itoa(i))
		sb.WriteString(" = ")
		sb.WriteString(itoa(i))
		sb.WriteString(";\n")
	}
	sb.WriteString("void main() { out(g299); }\n")
	fl, err := Parse("wide.c", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	u, err := Check(fl)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Globals) != 300 {
		t.Fatalf("globals = %d", len(u.Globals))
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
