package cfront

import (
	"fmt"
	"strconv"
)

// lexer converts source text into tokens. It handles //-line and /* block */
// comments and decimal/hex integer literals.
type lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(p Pos, format string, args ...any) error {
	return &Error{File: lx.file, Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// skipSpace consumes whitespace and comments.
func (lx *lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			p := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(p, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: p}, nil
	case isDigit(c):
		start := lx.off
		base := 10
		if c == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
			base = 16
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		text := lx.src[start:lx.off]
		digits := text
		if base == 16 {
			digits = text[2:]
			if digits == "" {
				return Token{}, lx.errorf(p, "malformed hex literal %q", text)
			}
		}
		v, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return Token{}, lx.errorf(p, "integer literal %q out of 32-bit range", text)
		}
		return Token{Kind: TokNumber, Text: text, Val: int32(uint32(v)), Pos: p}, nil
	}
	lx.advance()
	two := func(next byte, withKind, without TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: withKind, Pos: p}
		}
		return Token{Kind: without, Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Pos: p}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: p}, nil
	case '?':
		return Token{Kind: TokQuestion, Pos: p}, nil
	case ':':
		return Token{Kind: TokColon, Pos: p}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: p}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: TokInc, Pos: p}, nil
		}
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: TokDec, Pos: p}, nil
		}
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return two('=', TokSlashEq, TokSlash), nil
	case '%':
		return two('=', TokPercentEq, TokPercent), nil
	case '^':
		return two('=', TokCaretEq, TokCaret), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: p}, nil
		}
		return two('=', TokAmpEq, TokAmp), nil
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: p}, nil
		}
		return two('=', TokPipeEq, TokPipe), nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', TokShlEq, TokShl), nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', TokShrEq, TokShr), nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, lx.errorf(p, "unexpected character %q", string(c))
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole source, for the parser and for tests.
func lexAll(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
