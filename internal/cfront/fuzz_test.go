package cfront_test

// Fuzzing for the front end. The package is cfront_test (external) so the
// seed corpus can reuse the generated application sources from
// internal/apps without an import cycle.
//
// Property under test: no input, however malformed, may panic any stage
// reachable from source text — Parse, Check, or Lower must either succeed
// or return an error.

import (
	"testing"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/cfront"
)

func FuzzParse(f *testing.F) {
	if src, err := apps.MP3Source("SW", apps.TrainMP3); err == nil {
		f.Add(src)
	}
	f.Add(apps.JPEGSource(apps.DefaultJPEG))
	f.Add("int x; void main(void) { out(x); }")
	f.Add("void main() { int i; for (i = 0; i < 4; i = i + 1) { out(i); } }")
	f.Add("int a[4]; void fill(int b[]) { b[0] = 1; } void main() { fill(a); out(a[0]); }")
	f.Add("void main() { int i; i = 0; while (1) { i = i + 1; if (i > 3) break; } out(i); }")
	f.Add("void main() { int b[8]; send(0, b, 8); recv(1, b, 8); }")
	f.Add("void main() { do { } while (0); }")
	f.Add("void main(")
	f.Add("int 3x; void void { } }")
	f.Add("/* unterminated")
	f.Add("void main() { int x; x = 1 / 0; out(x % 0); }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := cfront.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		u, err := cfront.Check(file)
		if err != nil {
			return
		}
		// Lowering accepted input must also be panic-free.
		if _, err := cdfg.Lower(u); err != nil {
			return
		}
	})
}
