package cfront

import (
	"strings"
	"testing"
)

func mustCheck(t *testing.T, src string) *Unit {
	t.Helper()
	f := mustParse(t, src)
	u, err := Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return u
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err = Check(f); err == nil {
		t.Fatalf("Check succeeded, want error containing %q", wantSub)
	} else if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestCheckResolvesSymbols(t *testing.T) {
	u := mustCheck(t, `
int g = 3;
int tab[4] = {1, 2, 3, 4};
int f(int x) { return x + g + tab[x]; }
void main() { out(f(1)); }
`)
	if len(u.Globals) != 2 || len(u.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(u.Globals), len(u.Funcs))
	}
	if u.Globals[0].InitVals[0] != 3 || !u.Globals[0].HasInit {
		t.Fatalf("g init = %+v", u.Globals[0])
	}
	if u.Globals[1].Size != 4 || u.Globals[1].InitVals[2] != 3 {
		t.Fatalf("tab = %+v", u.Globals[1])
	}
}

func TestCheckScopes(t *testing.T) {
	mustCheck(t, `
void f() {
  int x = 1;
  { int x = 2; out(x); }
  out(x);
}
`)
	checkErr(t, "void f() { int x; int x; }", "redeclaration")
	checkErr(t, "void f() { out(y); }", "undefined variable")
	// A for-init declaration is scoped to the loop.
	checkErr(t, "void f() { for (int i = 0; i < 3; i++) {} out(i); }", "undefined variable")
}

func TestCheckArrayRules(t *testing.T) {
	checkErr(t, "int a[2]; void f() { a = 3; }", "cannot assign to array")
	checkErr(t, "int x; void f() { x[0] = 3; }", "is not an array")
	checkErr(t, "int a[2]; void f() { out(a); }", "used as a scalar")
	checkErr(t, "int a[2] = {1,2,3};", "too many initializers")
	checkErr(t, "int a[0];", "must be positive")
	checkErr(t, "int n; int a[n];", "not a constant")
	mustCheck(t, "int a[2+2*2]; void f() { a[5] = 1; }")
}

func TestCheckCalls(t *testing.T) {
	checkErr(t, "void f() { g(); }", "undefined function")
	checkErr(t, "int g(int a) { return a; } void f() { g(); }", "has 0 arguments, want 1")
	checkErr(t, "void g() {} void f() { out(g()); }", "used as a value")
	checkErr(t, "void g(int a[]) {} void f() { g(3); }", "must be an array name")
	checkErr(t, "void g(int a) {} int b[2]; void f() { g(b); }", "used as a scalar")
	mustCheck(t, "int b[2]; void g(int a[]) { a[0] = 1; } void f() { g(b); }")
	// Local array passed by reference.
	mustCheck(t, "void g(int a[]) { a[0] = 1; } void f() { int b[2]; g(b); }")
}

func TestCheckIntrinsics(t *testing.T) {
	mustCheck(t, "int b[4]; void f() { recv(0, b, 4); send(1, b, 4); out(b[0]); }")
	checkErr(t, "void f() { send(0); }", "expects 3 arguments")
	checkErr(t, "int x; void f() { send(0, x, 1); }", "must be an array")
	checkErr(t, "int b[2]; int ch; void f() { send(ch, b, 1); }", "must be a constant")
	checkErr(t, "int b[2]; void f() { out(send(0, b, 1)); }", "as a statement")
	checkErr(t, "void f() { out(1, 2); }", "expects 1 argument")
	checkErr(t, "int send;", "reserved intrinsic")
	checkErr(t, "void out() {}", "reserved intrinsic")
	checkErr(t, "void f() { int recv; }", "reserved intrinsic")
}

func TestCheckReturns(t *testing.T) {
	checkErr(t, "int f() { return; }", "must return a value")
	checkErr(t, "void f() { return 3; }", "cannot return a value")
	mustCheck(t, "int f() { return 3; } void g() { return; }")
}

func TestCheckBreakContinueOutsideLoop(t *testing.T) {
	checkErr(t, "void f() { break; }", "outside loop")
	checkErr(t, "void f() { continue; }", "outside loop")
	mustCheck(t, "void f() { while (1) { if (1) break; continue; } }")
}

func TestCheckDuplicateDecls(t *testing.T) {
	checkErr(t, "int x; int x;", "redeclaration of global")
	checkErr(t, "void f() {} void f() {}", "redefinition of function")
	checkErr(t, "int f; void f() {}", "already declared as a global")
}

func TestCheckLocalInit(t *testing.T) {
	// Local scalars may use arbitrary initializer expressions...
	mustCheck(t, "void f(int n) { int x = n * 2; out(x); }")
	// ...but they are checked against the enclosing scope.
	checkErr(t, "void f() { int x = y; }", "undefined variable")
	// Globals and local arrays still require constants.
	checkErr(t, "int n; int g2 = n;", "not a constant")
	checkErr(t, "void f(int n) { int a[2] = {n, 0}; }", "not a constant")
	mustCheck(t, "void f() { int x = 3 * 4; int a[2] = {1, 2}; }")
}

func TestFoldBinaryEdgeCases(t *testing.T) {
	if got := FoldBinary(TokSlash, -2147483648, -1); got != -2147483648 {
		t.Errorf("INT_MIN / -1 = %d, want wrap to INT_MIN", got)
	}
	if got := FoldBinary(TokPercent, -2147483648, -1); got != 0 {
		t.Errorf("INT_MIN %% -1 = %d, want 0", got)
	}
	if got := FoldBinary(TokShl, 1, 33); got != 2 {
		t.Errorf("1 << 33 = %d, want 2 (5-bit mask)", got)
	}
	if got := FoldBinary(TokShr, -8, 1); got != -4 {
		t.Errorf("-8 >> 1 = %d, want -4 (arithmetic)", got)
	}
	if got := FoldBinary(TokStar, 2147483647, 2); got != -2 {
		t.Errorf("INT_MAX * 2 = %d, want -2 (wrap)", got)
	}
}
