package sim

// queueItem is a scheduled wakeup: either a process resume or an event fire.
type queueItem struct {
	t     Time
	delta uint64
	seq   uint64
	proc  *Process
	event *Event
	index int
}

// eventQueue is a min-heap ordered by (time, delta, sequence), which yields
// the deterministic dispatch order the kernel guarantees.
type eventQueue []*queueItem

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	if q[i].delta != q[j].delta {
		return q[i].delta < q[j].delta
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	item := x.(*queueItem)
	item.index = len(*q)
	*q = append(*q, item)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	// Clear the stale heap position: a popped item is no longer in the
	// queue, and leaving the old index behind would silently corrupt the
	// heap if the item were ever fixed/removed by position after reuse.
	item.index = -1
	*q = old[:n-1]
	return item
}
