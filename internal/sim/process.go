package sim

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateReady procState = iota
	stateRunning
	stateWaitTime
	stateWaitEvent
	stateDone
)

// Process is a simulated concurrent process (the SC_PROCESS analogue). Its
// body runs on a dedicated goroutine but only while the kernel has dispatched
// it; all blocking happens through Wait and WaitEvent.
type Process struct {
	name    string
	kernel  *Kernel
	body    func(p *Process)
	resume  chan struct{}
	yield   chan struct{}
	state   procState
	started bool
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Now returns the current simulation time.
func (p *Process) Now() Time { return p.kernel.now }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// run executes the process body and marks the process done when it returns.
func (p *Process) run() {
	p.body(p)
	p.state = stateDone
	p.yield <- struct{}{}
}

// Wait suspends the process for d time units of simulated time. A zero delay
// yields for one delta cycle.
func (p *Process) Wait(d Time) {
	p.state = stateWaitTime
	p.kernel.schedule(p, d)
	p.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// WaitEvent suspends the process until ev fires. If the event never fires
// the simulation ends in deadlock and Run reports this process as blocked.
func (p *Process) WaitEvent(ev *Event) {
	p.state = stateWaitEvent
	ev.waiters = append(ev.waiters, p)
	p.yield <- struct{}{}
	<-p.resume
	p.state = stateRunning
}
