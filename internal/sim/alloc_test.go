package sim

import (
	"runtime"
	"testing"
)

// pingPongKernel builds the canonical two-process rendezvous workload: each
// round is two event notifications, two event waits and two timed waits —
// the kernel's entire steady-state surface.
func pingPongKernel(rounds int) *Kernel {
	k := NewKernel()
	ping := k.NewEvent("ping")
	pong := k.NewEvent("pong")
	k.Spawn("a", func(p *Process) {
		for r := 0; r < rounds; r++ {
			ping.Notify(1)
			p.WaitEvent(pong)
			p.Wait(1)
		}
	})
	k.Spawn("b", func(p *Process) {
		for r := 0; r < rounds; r++ {
			p.WaitEvent(ping)
			pong.Notify(1)
			p.Wait(1)
		}
	})
	return k
}

// runMallocs runs the workload and returns the total mallocs it performed.
func runMallocs(t *testing.T, rounds int) uint64 {
	t.Helper()
	k := pingPongKernel(rounds)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestKernelSteadyStateZeroAllocs asserts that the event/wakeup machinery
// recycles its queue items and waiter lists: growing the round count by
// 20000 must not grow the allocation count measurably (every per-round
// object comes from the free list once the pools warm up).
func TestKernelSteadyStateZeroAllocs(t *testing.T) {
	const small, extra = 100, 20_000
	base := runMallocs(t, small)
	grown := runMallocs(t, small+extra)
	var delta uint64
	if grown > base {
		delta = grown - base
	}
	perRound := float64(delta) / float64(extra)
	t.Logf("mallocs: %d rounds -> %d, %d rounds -> %d (%.4f allocs/round)",
		small, base, small+extra, grown, perRound)
	if perRound > 0.01 {
		t.Fatalf("steady state allocates %.4f objects per round; want 0 (event/item pooling regressed)", perRound)
	}
}

// BenchmarkKernelSteadyState reports allocs/op for one full rendezvous
// round; with pooling warm this is ~0.
func BenchmarkKernelSteadyState(b *testing.B) {
	k := pingPongKernel(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
