package sim

// Kernel cancellation: the event loop must stop dispatching once its
// context dies, even when the queue would otherwise never drain.

import (
	"context"
	"errors"
	"testing"
	"time"

	"ese/internal/diag"
)

// spinForever keeps the event queue non-empty indefinitely while always
// yielding back to the kernel, so only the loop's context check can end
// the run.
func spinForever(k *Kernel) {
	k.Spawn("spin", func(p *Process) {
		for {
			p.Wait(1)
		}
	})
}

func TestRunCtxCanceled(t *testing.T) {
	k := NewKernel()
	spinForever(k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := k.RunCtx(ctx); !errors.Is(err, diag.ErrCanceled) {
		t.Fatalf("RunCtx error = %v, want diag.ErrCanceled", err)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	k := NewKernel()
	spinForever(k)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	now, err := k.RunCtx(ctx)
	if !errors.Is(err, diag.ErrDeadline) {
		t.Fatalf("RunCtx error = %v, want diag.ErrDeadline", err)
	}
	if now == 0 {
		t.Fatal("RunCtx made no simulated progress before the deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RunCtx took %v to notice the deadline", elapsed)
	}
}
