// Package sim implements a deterministic discrete-event simulation kernel in
// the style of the SystemC reference simulator. It is the substrate that the
// generated transaction-level models execute on.
//
// Processes are goroutines, but scheduling is strictly cooperative: exactly
// one process goroutine runs at any instant, and runnable processes at the
// same timestamp are dispatched in (time, delta, sequence) order. Every
// simulation is therefore bit-reproducible.
//
// The kernel provides the three primitives the paper's TLM wrapper needs:
//
//   - Process.Wait(d): suspend the calling process for d time units
//     (the sc_wait analogue used at transaction boundaries);
//   - Event.Notify(d) / Process.WaitEvent(ev): SystemC-style event
//     notification, used to build rendezvous bus channels;
//   - deterministic termination: Run returns when no process can make
//     progress, reporting deadlock if processes are still blocked.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"ese/internal/diag"
)

// Time is simulation time in abstract base units. The TLM layer uses
// picoseconds so that PE clocks with different periods compose exactly.
type Time uint64

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use; all interaction happens from process goroutines it manages
// or from the goroutine that called Run.
type Kernel struct {
	now     Time
	delta   uint64
	seq     uint64
	queue   eventQueue
	procs   []*Process
	current *Process
	stopped bool
	maxTime Time // 0 means unbounded
	// ctx, when non-nil, is checked periodically by the event loop so a
	// runaway simulation (e.g. endless delta cycles) terminates with a
	// typed cancellation error instead of spinning forever.
	ctx context.Context
	// ctxCountdown spaces the context checks (checking every dispatch
	// would put a lock acquisition on the hot path).
	ctxCountdown int
	stats        KernelStats
	// free recycles queue items: every scheduled wakeup or event fire is
	// popped exactly once by the event loop, which returns it here, so the
	// steady state allocates no items at all.
	free []*queueItem
	// fireScratch is the reusable snapshot of an event's waiter list taken
	// while firing. fire never nests (only the event loop calls it, and a
	// dispatched process cannot re-enter the loop), so one buffer suffices.
	fireScratch []*Process
}

// KernelStats counts the event loop's work, for observability: how many
// process wakeups were dispatched, how many event notifications fired, and
// the high-water mark of the pending queue.
type KernelStats struct {
	Dispatches uint64
	Fires      uint64
	MaxQueue   int
}

// ctxCheckInterval is how many queue items the event loop processes
// between context checks.
const ctxCheckInterval = 256

// NewKernel returns an empty simulator positioned at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns the event-loop counters accumulated so far.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Stop requests that the simulation halt after the currently running process
// yields. Pending events are discarded.
func (k *Kernel) Stop() { k.stopped = true }

// Spawn registers a new process. The body runs when Run is called; it must
// interact with the kernel only through its *Process argument. Processes
// spawned before Run starts are initially runnable at time zero in spawn
// order.
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		name:   name,
		kernel: k,
		body:   body,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  stateReady,
	}
	k.procs = append(k.procs, p)
	k.schedule(p, 0)
	return p
}

// newItem pops a recycled queue item from the free list, or allocates one.
func (k *Kernel) newItem() *queueItem {
	if n := len(k.free); n > 0 {
		item := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return item
	}
	return &queueItem{}
}

// recycle returns a popped item to the free list.
func (k *Kernel) recycle(item *queueItem) {
	item.proc = nil
	item.event = nil
	k.free = append(k.free, item)
}

// schedule enqueues a wakeup for p at now+delay. A zero delay within a
// running simulation is a delta-cycle wakeup: it fires at the same timestamp
// but strictly after all currently scheduled same-time work.
func (k *Kernel) schedule(p *Process, delay Time) {
	k.seq++
	item := k.newItem()
	item.t = k.now + delay
	item.delta = k.delta
	item.seq = k.seq
	item.proc = p
	if delay == 0 {
		item.delta = k.delta + 1
	}
	heap.Push(&k.queue, item)
	if n := k.queue.Len(); n > k.stats.MaxQueue {
		k.stats.MaxQueue = n
	}
}

// scheduleFire enqueues an event firing at now+delay.
func (k *Kernel) scheduleFire(ev *Event, delay Time) {
	k.seq++
	item := k.newItem()
	item.t = k.now + delay
	item.delta = k.delta
	item.seq = k.seq
	item.event = ev
	if delay == 0 {
		item.delta = k.delta + 1
	}
	heap.Push(&k.queue, item)
	if n := k.queue.Len(); n > k.stats.MaxQueue {
		k.stats.MaxQueue = n
	}
}

// Run executes the simulation until no further progress is possible, the
// kernel is stopped, or the optional time limit set by RunUntil is reached.
// It returns the final simulation time. If processes remain blocked on
// events that can never fire, Run returns ErrDeadlock wrapping their names.
func (k *Kernel) Run() (Time, error) {
	return k.RunCtx(context.Background())
}

// RunCtx is Run under a context: the event loop checks the context every
// few hundred queue items and, once it is canceled or past its deadline,
// stops dispatching and returns the current (partial) simulation time with
// diag.ErrCanceled or diag.ErrDeadline. Note that a process that never
// yields back to the kernel cannot be interrupted here — compute-bound
// process bodies (e.g. the IR interpreter) carry their own context checks.
func (k *Kernel) RunCtx(ctx context.Context) (Time, error) {
	k.ctx = ctx
	k.ctxCountdown = 0
	defer func() { k.ctx = nil }()
	for k.queue.Len() > 0 && !k.stopped {
		if k.ctxCountdown--; k.ctxCountdown < 0 {
			k.ctxCountdown = ctxCheckInterval
			if err := diag.FromContext(k.ctx); err != nil {
				k.stopped = true
				return k.now, err
			}
		}
		item := heap.Pop(&k.queue).(*queueItem)
		if k.maxTime != 0 && item.t > k.maxTime {
			k.now = k.maxTime
			return k.now, nil
		}
		if item.t > k.now {
			k.now = item.t
			k.delta = 0
		}
		if item.delta > k.delta {
			k.delta = item.delta
		}
		switch {
		case item.proc != nil:
			proc := item.proc
			k.recycle(item)
			k.dispatch(proc)
		case item.event != nil:
			ev := item.event
			k.recycle(item)
			k.fire(ev)
		default:
			k.recycle(item)
		}
	}
	if k.stopped {
		return k.now, nil
	}
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateWaitEvent {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return k.now, fmt.Errorf("%w: processes still blocked: %v", ErrDeadlock, blocked)
	}
	return k.now, nil
}

// RunUntil is Run with an inclusive simulation-time limit.
func (k *Kernel) RunUntil(limit Time) (Time, error) {
	k.maxTime = limit
	defer func() { k.maxTime = 0 }()
	return k.Run()
}

// dispatch resumes p and blocks until it yields back to the scheduler.
func (k *Kernel) dispatch(p *Process) {
	if p.state == stateDone {
		return
	}
	if p.state == stateWaitEvent {
		// The process was woken by an event wakeup raced with a timed
		// wakeup; the event path owns it now.
		return
	}
	k.stats.Dispatches++
	k.current = p
	p.state = stateRunning
	if !p.started {
		p.started = true
		go p.run()
	} else {
		p.resume <- struct{}{}
	}
	<-p.yield
	k.current = nil
}

// fire wakes every process currently waiting on ev, in registration order.
// The waiter list is snapshotted into the kernel's scratch buffer and the
// event's own slice is truncated in place, so a process that immediately
// re-waits appends into the retained backing array instead of allocating.
func (k *Kernel) fire(ev *Event) {
	k.stats.Fires++
	k.fireScratch = append(k.fireScratch[:0], ev.waiters...)
	clear(ev.waiters)
	ev.waiters = ev.waiters[:0]
	ev.pending--
	for _, p := range k.fireScratch {
		if p.state != stateWaitEvent {
			continue
		}
		p.state = stateReady
		k.dispatch(p)
	}
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains while
// processes are still blocked on events.
var ErrDeadlock = errDeadlock{}

type errDeadlock struct{}

func (errDeadlock) Error() string { return "sim: deadlock" }
