package sim

import (
	"container/heap"
	"testing"
)

// TestPopClearsHeapIndex pins the invariant that a dequeued item no longer
// claims a position in the heap: reusing a popped item whose index still
// pointed at a live slot would let heap.Fix/heap.Remove corrupt the queue.
func TestPopClearsHeapIndex(t *testing.T) {
	q := &eventQueue{}
	heap.Init(q)
	items := []*queueItem{
		{t: 30, seq: 2},
		{t: 10, seq: 0},
		{t: 20, seq: 1},
	}
	for _, it := range items {
		heap.Push(q, it)
	}
	var lastT Time
	for i := 0; q.Len() > 0; i++ {
		it := heap.Pop(q).(*queueItem)
		if it.index != -1 {
			t.Fatalf("pop %d: index = %d, want -1", i, it.index)
		}
		if it.t < lastT {
			t.Fatalf("pop %d: time %d out of order (prev %d)", i, it.t, lastT)
		}
		lastT = it.t
	}
}

// TestQueueOrderingDeterministic checks the (time, delta, seq) ordering the
// kernel's dispatch determinism rests on.
func TestQueueOrderingDeterministic(t *testing.T) {
	q := &eventQueue{}
	heap.Init(q)
	in := []*queueItem{
		{t: 5, delta: 1, seq: 4},
		{t: 5, delta: 0, seq: 3},
		{t: 5, delta: 0, seq: 1},
		{t: 2, delta: 9, seq: 7},
	}
	for _, it := range in {
		heap.Push(q, it)
	}
	wantSeq := []uint64{7, 1, 3, 4}
	for i, want := range wantSeq {
		it := heap.Pop(q).(*queueItem)
		if it.seq != want {
			t.Fatalf("pop %d: seq = %d, want %d", i, it.seq, want)
		}
	}
}
