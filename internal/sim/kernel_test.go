package sim

import (
	"errors"
	"testing"
)

func TestWaitAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at []Time
	k.Spawn("p", func(p *Process) {
		p.Wait(10)
		at = append(at, p.Now())
		p.Wait(5)
		at = append(at, p.Now())
	})
	end, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 15 {
		t.Fatalf("end time = %d, want 15", end)
	}
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("observed times = %v, want [10 15]", at)
	}
}

func TestZeroWaitIsDeltaCycle(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Wait(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Process) {
		order = append(order, "b1")
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a1", "b1", "a2"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnOrderIsDispatchOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		k.Spawn(name, func(p *Process) {
			order = append(order, name)
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[0] != "p0" || order[1] != "p1" || order[2] != "p2" {
		t.Fatalf("dispatch order = %v", order)
	}
}

func TestEventNotifyWakesWaiter(t *testing.T) {
	k := NewKernel()
	ev := k.NewEvent("ev")
	var wokeAt Time
	k.Spawn("waiter", func(p *Process) {
		p.WaitEvent(ev)
		wokeAt = p.Now()
	})
	k.Spawn("notifier", func(p *Process) {
		p.Wait(42)
		ev.Notify(8)
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 50 {
		t.Fatalf("woke at %d, want 50", wokeAt)
	}
}

func TestEventWakesAllWaitersInOrder(t *testing.T) {
	k := NewKernel()
	ev := k.NewEvent("ev")
	var order []string
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		k.Spawn(name, func(p *Process) {
			p.WaitEvent(ev)
			order = append(order, name)
		})
	}
	k.Spawn("n", func(p *Process) {
		p.Wait(1)
		ev.Notify(0)
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != "w0" || order[1] != "w1" || order[2] != "w2" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	ev := k.NewEvent("never")
	k.Spawn("stuck", func(p *Process) {
		p.WaitEvent(ev)
	})
	_, err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStopHaltsSimulation(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("loop", func(p *Process) {
		for {
			p.Wait(10)
			n++
			if n == 3 {
				k.Stop()
				return
			}
		}
	})
	end, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 30 || n != 3 {
		t.Fatalf("end=%d n=%d, want 30/3", end, n)
	}
}

func TestRunUntilBoundsTime(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("loop", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Wait(10)
			n++
		}
	})
	end, err := k.RunUntil(55)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if end != 55 {
		t.Fatalf("end = %d, want 55", end)
	}
	if n != 5 {
		t.Fatalf("iterations = %d, want 5", n)
	}
}

func TestRendezvousPingPong(t *testing.T) {
	// Two processes alternating via a pair of events, the skeleton of the
	// bus-channel handshake.
	k := NewKernel()
	ping := k.NewEvent("ping")
	pong := k.NewEvent("pong")
	var trace []Time
	const rounds = 4
	k.Spawn("a", func(p *Process) {
		for i := 0; i < rounds; i++ {
			p.Wait(3)
			ping.Notify(0)
			p.WaitEvent(pong)
		}
	})
	k.Spawn("b", func(p *Process) {
		for i := 0; i < rounds; i++ {
			p.WaitEvent(ping)
			p.Wait(2)
			trace = append(trace, p.Now())
			pong.Notify(0)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{5, 10, 15, 20}
	if len(trace) != rounds {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		ev := k.NewEvent("ev")
		var order []string
		for i := 0; i < 8; i++ {
			name := string(rune('a' + i))
			d := Time(i%3) * 7
			k.Spawn(name, func(p *Process) {
				p.Wait(d)
				order = append(order, name)
				if name == "d" {
					ev.Notify(20)
				} else if name == "e" {
					p.WaitEvent(ev)
					order = append(order, name+"'")
				}
			})
		}
		if _, err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("replay diverged: %v vs %v", first, again)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("replay diverged at %d: %v vs %v", j, first, again)
			}
		}
	}
}
