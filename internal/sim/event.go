package sim

// Event is a SystemC-style notification primitive. Processes block on it
// with Process.WaitEvent; any process (or external code between Run calls)
// triggers it with Notify.
type Event struct {
	kernel  *Kernel
	name    string
	waiters []*Process
	pending int
}

// NewEvent creates an event bound to the kernel.
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{kernel: k, name: name}
}

// Name returns the event name.
func (e *Event) Name() string { return e.name }

// Notify schedules the event to fire at now+delay. When it fires, every
// process waiting on the event at that instant becomes runnable, in the order
// they began waiting. A zero delay fires in the next delta cycle of the
// current timestamp. Multiple outstanding notifications each fire.
func (e *Event) Notify(delay Time) {
	e.pending++
	e.kernel.scheduleFire(e, delay)
}

// HasWaiters reports whether any process is currently blocked on the event.
func (e *Event) HasWaiters() bool { return len(e.waiters) > 0 }
