package sim

import (
	"errors"
	"testing"
)

func TestManyProcessesStress(t *testing.T) {
	// 200 processes with interleaved waits; total end time and per-process
	// completion must be exact.
	k := NewKernel()
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(p *Process) {
			for r := 0; r < 10; r++ {
				p.Wait(Time(i%7 + 1))
			}
			done++
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	// Longest process waits 10*7 = 70.
	if end != 70 {
		t.Fatalf("end = %d, want 70", end)
	}
}

func TestEventMultipleNotifies(t *testing.T) {
	// Two notifications in flight: a waiter wakes on the earliest; a later
	// waiter wakes on the second firing.
	k := NewKernel()
	ev := k.NewEvent("ev")
	var first, second Time
	k.Spawn("w1", func(p *Process) {
		p.WaitEvent(ev)
		first = p.Now()
	})
	k.Spawn("w2", func(p *Process) {
		p.Wait(15)
		p.WaitEvent(ev)
		second = p.Now()
	})
	k.Spawn("n", func(p *Process) {
		ev.Notify(10)
		ev.Notify(30)
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first != 10 {
		t.Fatalf("first woke at %d, want 10", first)
	}
	if second != 30 {
		t.Fatalf("second woke at %d, want 30", second)
	}
}

func TestNotifyWithNoWaitersIsLost(t *testing.T) {
	// SystemC semantics: a fired notification with no waiters evaporates.
	k := NewKernel()
	ev := k.NewEvent("ev")
	woke := false
	k.Spawn("n", func(p *Process) {
		ev.Notify(1)
	})
	k.Spawn("late", func(p *Process) {
		p.Wait(100)
		// Start waiting long after the firing: must deadlock, not wake.
		p.WaitEvent(ev)
		woke = true
	})
	_, err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock (notification must be lost)", err)
	}
	if woke {
		t.Fatal("late waiter woke on a stale notification")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	// A process may spawn another mid-simulation.
	k := NewKernel()
	var childAt Time
	k.Spawn("parent", func(p *Process) {
		p.Wait(25)
		k.Spawn("child", func(c *Process) {
			c.Wait(5)
			childAt = c.Now()
		})
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if childAt != 30 {
		t.Fatalf("child finished at %d, want 30", childAt)
	}
}

func TestZeroDelayChains(t *testing.T) {
	// Long chains of delta-cycle waits terminate and stay at time zero.
	k := NewKernel()
	hops := 0
	k.Spawn("d", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Wait(0)
			hops++
		}
	})
	end, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 0 || hops != 1000 {
		t.Fatalf("end=%d hops=%d", end, hops)
	}
}

func TestStopFromOutsideProcess(t *testing.T) {
	// Stop requested by one process halts others' future work.
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Wait(10)
			ticks++
		}
	})
	k.Spawn("killer", func(p *Process) {
		p.Wait(55)
		k.Stop()
	})
	if _, err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ticks > 6 {
		t.Fatalf("ticker ran %d times after stop", ticks)
	}
}
