package core

import (
	"math"

	"ese/internal/cdfg"
	"ese/internal/pum"
)

// Estimate is the decomposed delay estimate of one basic block, in PE
// cycles. Total is the rounded sum, as Algorithm 2 returns it.
type Estimate struct {
	Sched     int     // Algorithm 1 optimistic scheduling delay
	BranchPen float64 // statistical branch misprediction penalty
	IDelay    float64 // statistical instruction-fetch delay
	DDelay    float64 // statistical data-access delay
	Ops       int     // "# of BB Ops"
	Operands  int     // "# of BB Operands" (data-memory operand accesses)
	Total     float64 // round(Sched + BranchPen + IDelay + DDelay)
}

// Detail selects which PUM sub-models participate in BlockDelay. The full
// model is the paper's Algorithm 2; the reduced settings implement the
// PUM-detail ablation (scheduling only, +memory, +branch).
type Detail struct {
	Memory bool
	Branch bool
	// PipelineOverlap enables an extension beyond the paper: Algorithm 1
	// schedules every block from an empty pipeline, so each block pays the
	// pipeline fill and the final issue iteration even though consecutive
	// blocks overlap on real in-order hardware. With this flag the fill
	// cost (pipeline depth) is subtracted from each block's schedule,
	// clamped at the block's issue-bound lower limit. This markedly
	// improves accuracy on branchy code with small basic blocks (see
	// ablation A5) at the cost of deviating from the paper's pseudocode.
	PipelineOverlap bool
}

// FullDetail applies every sub-model, as the paper does.
var FullDetail = Detail{Memory: true, Branch: true}

// OverlapDetail is FullDetail plus the pipeline-overlap compensation
// extension.
var OverlapDetail = Detail{Memory: true, Branch: true, PipelineOverlap: true}

// BlockDelay computes the estimated delay of one basic block on the PUM —
// Algorithm 2 of the paper. The optimistic scheduling delay is extended
// with the statistical branch misprediction penalty (for pipelined PEs, on
// blocks ending in a conditional branch) and the statistical i-cache and
// d-cache delays.
func BlockDelay(b *cdfg.Block, p *pum.PUM, detail Detail) Estimate {
	d := cdfg.BuildDFG(b)
	e := Estimate{
		Sched:    Schedule(d, p),
		Ops:      cdfg.NumOps(b),
		Operands: cdfg.BlockMemOperands(b),
	}
	if detail.PipelineOverlap && e.Ops > 0 {
		// Remove the per-block pipeline fill that back-to-back execution
		// hides, but never go below the issue-rate lower bound.
		fill := len(p.Pipelines[0].Stages)
		width := 0
		for _, pl := range p.Pipelines {
			width += pl.IssueWidth
		}
		floor := (e.Ops + width - 1) / width
		if s := e.Sched - fill; s >= floor {
			e.Sched = s
		} else {
			e.Sched = floor
		}
	}
	if detail.Branch && p.Pipelined {
		if t := b.Terminator(); t != nil && t.Op == cdfg.OpBr {
			e.BranchPen = p.Branch.MissRate * p.Branch.Penalty
		}
	}
	if detail.Memory {
		st := p.Mem.Current
		// A PE with a memory hierarchy pays instruction-fetch and data
		// delays; a PE with single-cycle local storage (ExtLatency 0 and no
		// caches) folds memory cost into the scheduled load/store ops.
		hasMemPath := p.Mem.HasICache || p.Mem.HasDCache || p.Mem.ExtLatency > 0
		if hasMemPath {
			iMissRate := 1 - st.IHitRate
			e.IDelay = float64(e.Ops) * (iMissRate*st.IMissPenalty + st.IHitRate*st.IHitDelay)
			dMissRate := 1 - st.DHitRate
			e.DDelay = float64(e.Operands) * (dMissRate*st.DMissPenalty + st.DHitRate*st.DHitDelay)
		}
	}
	e.Total = math.Round(float64(e.Sched) + e.BranchPen + e.IDelay + e.DDelay)
	return e
}

// EstimateBlocks computes the per-block estimate for every block of every
// function under one PUM, without mutating the IR. Platforms that map
// functions of the same program onto several PEs keep one such map per PE.
func EstimateBlocks(prog *cdfg.Program, p *pum.PUM, detail Detail) map[*cdfg.Block]Estimate {
	out := make(map[*cdfg.Block]Estimate, prog.NumBlocks())
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			out[b] = BlockDelay(b, p, detail)
		}
	}
	return out
}

// Report summarizes the annotation of a whole program.
type Report struct {
	PUM        string
	Blocks     int
	Ops        int
	TotalSched int
	// PerFunc maps function name to the summed static block delay.
	PerFunc map[string]float64
}

// AnnotateProgram estimates every basic block of every function and writes
// the result into Block.Delay (the IR-level equivalent of inserting the
// wait() call at the end of each basic block). It returns a report of the
// static annotation.
func AnnotateProgram(prog *cdfg.Program, p *pum.PUM, detail Detail) *Report {
	r := &Report{PUM: p.Name, PerFunc: make(map[string]float64)}
	for _, fn := range prog.Funcs {
		sum := 0.0
		for _, b := range fn.Blocks {
			e := BlockDelay(b, p, detail)
			b.Delay = e.Total
			sum += e.Total
			r.Blocks++
			r.Ops += e.Ops
			r.TotalSched += e.Sched
		}
		r.PerFunc[fn.Name] = sum
	}
	return r
}
