package core

import (
	"math"

	"ese/internal/cdfg"
	"ese/internal/pum"
)

// Estimate is the decomposed delay estimate of one basic block, in PE
// cycles. Total is the rounded sum, as Algorithm 2 returns it.
type Estimate struct {
	Sched     int     // Algorithm 1 optimistic scheduling delay
	BranchPen float64 // statistical branch misprediction penalty
	IDelay    float64 // statistical instruction-fetch delay
	DDelay    float64 // statistical data-access delay
	Ops       int     // "# of BB Ops"
	Operands  int     // "# of BB Operands" (data-memory operand accesses)
	Total     float64 // round(Sched + BranchPen + IDelay + DDelay)
	// Unmapped counts ops whose class the PUM does not map; they were
	// scheduled with the fallback latency (graceful degradation).
	Unmapped int
}

// Degraded reports whether the estimate includes fallback-latency ops, i.e.
// the PUM did not map every operation class the block uses.
func (e Estimate) Degraded() bool { return e.Unmapped > 0 }

// SchedResult is the statistics-independent part of a block's estimate:
// Algorithm 1's optimistic scheduling delay plus the structural block
// counts that Algorithm 2's statistical terms scale. It depends only on
// the block's body and the PUM's execution/datapath sub-models — not on
// the branch or memory statistics — so it stays valid when the statistical
// models are retargeted (e.g. across a cache-configuration sweep), which
// is what makes it worth caching (see Cache).
type SchedResult struct {
	Sched    int  // Algorithm 1 optimistic scheduling delay
	Ops      int  // "# of BB Ops"
	Operands int  // "# of BB Operands"
	CondBr   bool // block ends in a conditional branch
	// Unmapped counts ops scheduled with the fallback latency because the
	// PUM does not map their class.
	Unmapped int
}

// Detail selects which PUM sub-models participate in BlockDelay. The full
// model is the paper's Algorithm 2; the reduced settings implement the
// PUM-detail ablation (scheduling only, +memory, +branch).
type Detail struct {
	Memory bool
	Branch bool
	// PipelineOverlap enables an extension beyond the paper: Algorithm 1
	// schedules every block from an empty pipeline, so each block pays the
	// pipeline fill and the final issue iteration even though consecutive
	// blocks overlap on real in-order hardware. With this flag the fill
	// cost (pipeline depth) is subtracted from each block's schedule,
	// clamped at the block's issue-bound lower limit. This markedly
	// improves accuracy on branchy code with small basic blocks (see
	// ablation A5) at the cost of deviating from the paper's pseudocode.
	PipelineOverlap bool
}

// bits encodes the detail flags for use in cache keys.
func (d Detail) bits() uint8 {
	var b uint8
	if d.Memory {
		b |= 1
	}
	if d.Branch {
		b |= 2
	}
	if d.PipelineOverlap {
		b |= 4
	}
	return b
}

// FullDetail applies every sub-model, as the paper does.
var FullDetail = Detail{Memory: true, Branch: true}

// OverlapDetail is FullDetail plus the pipeline-overlap compensation
// extension.
var OverlapDetail = Detail{Memory: true, Branch: true, PipelineOverlap: true}

// ScheduleBlock runs Algorithm 1 on one block and collects the structural
// counts Algorithm 2 needs, reusing the scheduler's scratch state.
func (s *Scheduler) ScheduleBlock(b *cdfg.Block) SchedResult {
	d := cdfg.BuildDFG(b)
	sr := SchedResult{
		Sched:    s.Schedule(d),
		Ops:      cdfg.NumOps(b),
		Operands: cdfg.BlockMemOperands(b),
	}
	for i := range b.Instrs {
		if s.Unmapped(cdfg.OpClass(b.Instrs[i].Op)) {
			sr.Unmapped++
		}
	}
	if t := b.Terminator(); t != nil && t.Op == cdfg.OpBr {
		sr.CondBr = true
	}
	return sr
}

// ScheduleBlock is the one-shot form of Scheduler.ScheduleBlock.
func ScheduleBlock(b *cdfg.Block, p *pum.PUM) SchedResult {
	return NewScheduler(p).ScheduleBlock(b)
}

// ComposeEstimate extends a schedule result with the statistical branch
// misprediction penalty (for pipelined PEs, on blocks ending in a
// conditional branch) and the statistical i-cache and d-cache delays —
// the statistical half of Algorithm 2.
func ComposeEstimate(sr SchedResult, p *pum.PUM, detail Detail) Estimate {
	e := Estimate{
		Sched:    sr.Sched,
		Ops:      sr.Ops,
		Operands: sr.Operands,
		Unmapped: sr.Unmapped,
	}
	if detail.PipelineOverlap && e.Ops > 0 {
		// Remove the per-block pipeline fill that back-to-back execution
		// hides, but never go below the issue-rate lower bound. A partial
		// model (e.g. JSON-loaded without pipelines, or with zero issue
		// widths) has no fill to compensate: keep the unadjusted schedule
		// rather than indexing an empty pipeline list or dividing by a
		// zero total issue width.
		width := 0
		for _, pl := range p.Pipelines {
			width += pl.IssueWidth
		}
		if len(p.Pipelines) > 0 && width > 0 {
			fill := len(p.Pipelines[0].Stages)
			floor := (e.Ops + width - 1) / width
			if s := e.Sched - fill; s >= floor {
				e.Sched = s
			} else {
				e.Sched = floor
			}
		}
	}
	if detail.Branch && p.Pipelined && sr.CondBr {
		e.BranchPen = p.Branch.MissRate * p.Branch.Penalty
	}
	if detail.Memory {
		st := p.Mem.Current
		// A PE with a memory hierarchy pays instruction-fetch and data
		// delays; a PE with single-cycle local storage (ExtLatency 0 and no
		// caches) folds memory cost into the scheduled load/store ops.
		hasMemPath := p.Mem.HasICache || p.Mem.HasDCache || p.Mem.ExtLatency > 0
		if hasMemPath {
			iMissRate := 1 - st.IHitRate
			e.IDelay = float64(e.Ops) * (iMissRate*st.IMissPenalty + st.IHitRate*st.IHitDelay)
			dMissRate := 1 - st.DHitRate
			e.DDelay = float64(e.Operands) * (dMissRate*st.DMissPenalty + st.DHitRate*st.DHitDelay)
		}
	}
	e.Total = math.Round(float64(e.Sched) + e.BranchPen + e.IDelay + e.DDelay)
	return e
}

// BlockDelay computes the estimated delay of one basic block on the PUM —
// Algorithm 2 of the paper: the optimistic scheduling delay of Algorithm 1
// extended with the statistical penalties of ComposeEstimate.
func BlockDelay(b *cdfg.Block, p *pum.PUM, detail Detail) Estimate {
	return ComposeEstimate(ScheduleBlock(b, p), p, detail)
}

// Report summarizes the annotation of a whole program.
type Report struct {
	PUM        string
	Blocks     int
	Ops        int
	TotalSched int
	// PerFunc maps function name to the summed static block delay.
	PerFunc map[string]float64
}

// AnnotateProgram estimates every basic block of every function and writes
// the result into Block.Delay (the IR-level equivalent of inserting the
// wait() call at the end of each basic block). It returns a report of the
// static annotation.
func AnnotateProgram(prog *cdfg.Program, p *pum.PUM, detail Detail) *Report {
	est := EstimateBlocks(prog, p, detail)
	r := &Report{PUM: p.Name, PerFunc: make(map[string]float64)}
	for _, fn := range prog.Funcs {
		sum := 0.0
		for _, b := range fn.Blocks {
			e := est[b]
			b.Delay = e.Total
			sum += e.Total
			r.Blocks++
			r.Ops += e.Ops
			r.TotalSched += e.Sched
		}
		r.PerFunc[fn.Name] = sum
	}
	return r
}
