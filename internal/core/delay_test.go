package core

import (
	"math"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/pum"
)

// mbWithCache returns the MicroBlaze PUM with the given cache config.
func mbWithCache(t *testing.T, i, d int) *pum.PUM {
	t.Helper()
	p, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: i, DSize: d})
	if err != nil {
		t.Fatalf("WithCache: %v", err)
	}
	return p
}

func TestBlockDelayUncachedAddsExtLatencyPerOp(t *testing.T) {
	p := mbWithCache(t, 0, 0)
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpAdd}, nil)
	e := BlockDelay(d.Block, p, FullDetail)
	// sched = 2+3 = 5; i-delay = 2 ops * ExtLatency; no mem operands.
	if e.Sched != 5 {
		t.Fatalf("sched = %d, want 5", e.Sched)
	}
	wantI := 2 * p.Mem.ExtLatency
	if e.IDelay != wantI {
		t.Fatalf("IDelay = %v, want %v", e.IDelay, wantI)
	}
	if e.DDelay != 0 {
		t.Fatalf("DDelay = %v, want 0", e.DDelay)
	}
	if e.Total != float64(e.Sched)+wantI {
		t.Fatalf("Total = %v, want %v", e.Total, float64(e.Sched)+wantI)
	}
}

func TestBlockDelayDCacheCountsOperands(t *testing.T) {
	p := mbWithCache(t, 8*1024, 4*1024)
	st := p.Mem.Current
	// A load and a store: 2 memory operands.
	b := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpLoad, Dst: cdfg.Temp(0), Arr: cdfg.GlobalRef(0), A: cdfg.Const(0)},
		{Op: cdfg.OpStore, Arr: cdfg.GlobalRef(0), A: cdfg.Const(1), B: cdfg.Temp(0)},
	}}
	e := BlockDelay(b, p, FullDetail)
	wantD := 2 * ((1-st.DHitRate)*st.DMissPenalty + st.DHitRate*st.DHitDelay)
	if math.Abs(e.DDelay-wantD) > 1e-9 {
		t.Fatalf("DDelay = %v, want %v", e.DDelay, wantD)
	}
	wantI := 2 * ((1-st.IHitRate)*st.IMissPenalty + st.IHitRate*st.IHitDelay)
	if math.Abs(e.IDelay-wantI) > 1e-9 {
		t.Fatalf("IDelay = %v, want %v", e.IDelay, wantI)
	}
	if e.Operands != 2 {
		t.Fatalf("Operands = %d, want 2", e.Operands)
	}
}

func TestBlockDelayBranchPenaltyOnlyOnBranches(t *testing.T) {
	p := mbWithCache(t, 32*1024, 16*1024)
	p.Branch.MissRate = 0.25
	p.Branch.Penalty = 4

	then := &cdfg.Block{ID: 1}
	els := &cdfg.Block{ID: 2}
	brBlock := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpAdd, Dst: cdfg.Temp(0), A: cdfg.Const(1), B: cdfg.Const(2)},
		{Op: cdfg.OpBr, A: cdfg.Temp(0), Then: then, Else: els},
	}}
	e := BlockDelay(brBlock, p, FullDetail)
	if e.BranchPen != 1.0 { // 0.25 * 4
		t.Fatalf("BranchPen = %v, want 1.0", e.BranchPen)
	}

	jmpBlock := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpJmp, Target: then},
	}}
	e = BlockDelay(jmpBlock, p, FullDetail)
	if e.BranchPen != 0 {
		t.Fatalf("jump block BranchPen = %v, want 0", e.BranchPen)
	}
}

func TestBlockDelayNoBranchPenaltyOnUnpipelinedPE(t *testing.T) {
	hw := pum.CustomHW("hw", 1)
	hw.Branch.MissRate = 0.5
	hw.Branch.Penalty = 10
	then := &cdfg.Block{ID: 1}
	b := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpBr, A: cdfg.Const(1), Then: then, Else: then},
	}}
	e := BlockDelay(b, hw, FullDetail)
	if e.BranchPen != 0 {
		t.Fatalf("unpipelined PE got branch penalty %v", e.BranchPen)
	}
}

func TestBlockDelayCustomHWHasNoMemoryTerm(t *testing.T) {
	hw := pum.CustomHW("hw", 1)
	b := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpLoad, Dst: cdfg.Temp(0), Arr: cdfg.GlobalRef(0), A: cdfg.Const(0)},
	}}
	e := BlockDelay(b, hw, FullDetail)
	if e.IDelay != 0 || e.DDelay != 0 {
		t.Fatalf("HW PE has statistical memory delay: %+v", e)
	}
	if e.Total != float64(e.Sched) {
		t.Fatalf("HW total %v != sched %d", e.Total, e.Sched)
	}
}

func TestBlockDelayRounding(t *testing.T) {
	p := mbWithCache(t, 32*1024, 16*1024)
	p.Branch.MissRate = 0.3
	p.Branch.Penalty = 1 // 0.3 penalty -> rounds away
	st := p.Mem.Current
	st.IHitRate = 1
	st.DHitRate = 1
	p.Mem.Current = st
	then := &cdfg.Block{ID: 1}
	b := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpBr, A: cdfg.Const(1), Then: then, Else: then},
	}}
	e := BlockDelay(b, p, FullDetail)
	if e.Total != math.Round(float64(e.Sched)+0.3) {
		t.Fatalf("Total = %v, not rounded correctly (sched=%d)", e.Total, e.Sched)
	}
}

func TestDetailAblation(t *testing.T) {
	p := mbWithCache(t, 2*1024, 2*1024)
	b := &cdfg.Block{Instrs: []cdfg.Instr{
		{Op: cdfg.OpLoad, Dst: cdfg.Temp(0), Arr: cdfg.GlobalRef(0), A: cdfg.Const(0)},
		{Op: cdfg.OpBr, A: cdfg.Temp(0), Then: &cdfg.Block{ID: 1}, Else: &cdfg.Block{ID: 2}},
	}}
	full := BlockDelay(b, p, FullDetail)
	schedOnly := BlockDelay(b, p, Detail{})
	memOnly := BlockDelay(b, p, Detail{Memory: true})
	if schedOnly.Total >= memOnly.Total || memOnly.Total > full.Total {
		t.Fatalf("detail ordering violated: sched=%v mem=%v full=%v",
			schedOnly.Total, memOnly.Total, full.Total)
	}
	if schedOnly.IDelay != 0 || schedOnly.BranchPen != 0 {
		t.Fatalf("sched-only estimate has extra terms: %+v", schedOnly)
	}
}

func TestAnnotateProgramFillsDelays(t *testing.T) {
	prog := compile(t, `
int a[16];
void main() {
  int i;
  for (i = 0; i < 16; i++) a[i] = i * i;
  out(a[5]);
}`)
	p := mbWithCache(t, 8*1024, 4*1024)
	rep := AnnotateProgram(prog, p, FullDetail)
	if rep.Blocks != prog.NumBlocks() {
		t.Fatalf("report blocks = %d, want %d", rep.Blocks, prog.NumBlocks())
	}
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if len(b.Instrs) > 0 && b.Delay <= 0 {
				t.Fatalf("%s bb%d not annotated", fn.Name, b.ID)
			}
		}
	}
	if rep.PerFunc["main"] <= 0 {
		t.Fatalf("per-func delay missing: %+v", rep.PerFunc)
	}
}

func TestEstimateBlocksDoesNotMutate(t *testing.T) {
	prog := compile(t, `void main() { out(1 + 2); }`)
	p := mbWithCache(t, 8*1024, 4*1024)
	est := EstimateBlocks(prog, p, FullDetail)
	if len(est) != prog.NumBlocks() {
		t.Fatalf("estimates = %d, want %d", len(est), prog.NumBlocks())
	}
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if b.Delay != 0 {
				t.Fatalf("EstimateBlocks mutated Block.Delay")
			}
			if est[b].Total < float64(est[b].Sched) {
				t.Fatalf("total below sched")
			}
		}
	}
}

func TestMoreDetailNeverCheaper(t *testing.T) {
	// Property: adding sub-models can only increase the estimate.
	prog := compile(t, `
int a[32];
int g;
void main() {
  int i;
  for (i = 0; i < 32; i++) {
    if (a[i] > 3) g += a[i] / 3;
    else a[i] = g * i;
  }
  out(g);
}`)
	p := mbWithCache(t, 2*1024, 2*1024)
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			s := BlockDelay(b, p, Detail{}).Total
			m := BlockDelay(b, p, Detail{Memory: true}).Total
			f := BlockDelay(b, p, FullDetail).Total
			if s > m || m > f+0.5 { // rounding may flip by half a cycle
				t.Fatalf("bb%d: detail monotonicity violated: %v %v %v", b.ID, s, m, f)
			}
		}
	}
}
