package core

import (
	"testing"
	"testing/quick"

	"ese/internal/cdfg"
	"ese/internal/pum"
)

// randomDFG builds a structurally valid random block + DFG: opcodes from
// the schedulable set, edges only pointing backwards.
func randomDFG(seedBytes []byte) *cdfg.DFG {
	ops := []cdfg.Opcode{
		cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul, cdfg.OpDiv, cdfg.OpShl,
		cdfg.OpLoad, cdfg.OpStore, cdfg.OpMov, cdfg.OpCmpLt,
	}
	n := len(seedBytes)
	if n == 0 {
		n = 1
	}
	if n > 40 {
		n = 40
	}
	b := &cdfg.Block{}
	d := &cdfg.DFG{Block: b, Deps: make([][]int, n)}
	for i := 0; i < n; i++ {
		var sb byte
		if i < len(seedBytes) {
			sb = seedBytes[i]
		}
		b.Instrs = append(b.Instrs, cdfg.Instr{Op: ops[int(sb)%len(ops)]})
		// Up to two backward deps derived from the seed byte.
		if i > 0 && sb&1 == 1 {
			d.Deps[i] = append(d.Deps[i], int(sb)%i)
		}
		if i > 1 && sb&2 == 2 {
			j := int(sb/3) % i
			if len(d.Deps[i]) == 0 || d.Deps[i][0] != j {
				d.Deps[i] = append(d.Deps[i], j)
			}
		}
	}
	return d
}

// costOf returns the total stage cycles of an op under the model.
func costOf(p *pum.PUM, op cdfg.Opcode) int {
	info := p.Ops[cdfg.OpClass(op)]
	total := 0
	for _, su := range info.Stages {
		total += su.Cycles
	}
	return total
}

// serialCost is the non-overlappable latency of an op: the cycles of its
// demand..commit stage span. Dependent ops cannot overlap this part, so the
// longest chain of serialCost weights lower-bounds every legal schedule.
func serialCost(p *pum.PUM, op cdfg.Opcode) int {
	info := p.Ops[cdfg.OpClass(op)]
	total := 0
	for si := info.Demand; si <= info.Commit; si++ {
		total += info.Stages[si].Cycles
	}
	return total
}

// criticalPath returns the longest dependency chain in serialCost weights —
// a lower bound on any legal schedule of the DFG.
func criticalPath(d *cdfg.DFG, p *pum.PUM) int {
	n := len(d.Block.Instrs)
	longest := make([]int, n)
	best := 0
	for i := 0; i < n; i++ {
		w := serialCost(p, d.Block.Instrs[i].Op)
		longest[i] = w
		for _, j := range d.Deps[i] {
			if longest[j]+w > longest[i] {
				longest[i] = longest[j] + w
			}
		}
		if longest[i] > best {
			best = longest[i]
		}
	}
	return best
}

// serialBound returns the sum of bottleneck-stage costs plus pipeline
// depth — an upper bound for the in-order single-issue schedule.
func serialBound(d *cdfg.DFG, p *pum.PUM) int {
	total := len(p.Pipelines[0].Stages) + 1
	for i := range d.Block.Instrs {
		total += costOf(p, d.Block.Instrs[i].Op)
	}
	return total
}

func TestPropertyScheduleWithinBounds(t *testing.T) {
	models := []*pum.PUM{pum.MicroBlaze(), pum.CustomHW("hw", 1), pum.DualIssue()}
	f := func(seed []byte) bool {
		d := randomDFG(seed)
		for _, m := range models {
			got := Schedule(d, m)
			// Lower bound: the longest dependency chain's serial latency.
			if got < criticalPath(d, m) {
				t.Logf("%s: schedule %d below critical path %d", m.Name, got, criticalPath(d, m))
				return false
			}
			// Upper bound: an in-order machine never exceeds fully serial
			// execution plus fill; parallel machines can only be faster
			// than serial-with-stalls times a safety factor.
			if got > serialBound(d, m)*2 {
				t.Logf("%s: schedule %d above serial bound %d", m.Name, got, serialBound(d, m))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreResourcesNeverSlower(t *testing.T) {
	// Doubling every FU quantity cannot make a list schedule longer.
	base := pum.CustomHW("hw", 1)
	rich := pum.CustomHW("hw2", 1)
	for i := range rich.FUs {
		rich.FUs[i].Quantity *= 2
	}
	rich.Pipelines[0].IssueWidth *= 2
	f := func(seed []byte) bool {
		d := randomDFG(seed)
		return Schedule(d, rich) <= Schedule(d, base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExtraDepsNeverFasterInOrder(t *testing.T) {
	// On the in-order machine, adding a dependency edge can only add
	// stalls (issue order is fixed), so the schedule is monotone in the
	// dependence relation. Note this is NOT true for the list-scheduled
	// datapath: greedy list scheduling exhibits Graham's scheduling
	// anomalies, where extra constraints occasionally steer the heuristic
	// to a better schedule — the quick.Check below found such cases when
	// this property was (wrongly) asserted for PolicyList.
	m := pum.MicroBlaze()
	f := func(seed []byte, at, to uint8) bool {
		d := randomDFG(seed)
		n := len(d.Block.Instrs)
		if n < 2 {
			return true
		}
		before := Schedule(d, m)
		i := 1 + int(at)%(n-1)
		j := int(to) % i
		d.Deps[i] = append(d.Deps[i], j)
		after := Schedule(d, m)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDelayMonotoneInMissRates(t *testing.T) {
	// Worse hit rates can only increase the block delay estimate.
	base, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed []byte, dHit, iHit uint8) bool {
		d := randomDFG(seed)
		lo := base.Clone()
		hi := base.Clone()
		loRate := 0.5 + float64(dHit%50)/100 // in [0.5, 1)
		hiRate := loRate + 0.01
		stLo, stHi := lo.Mem.Current, hi.Mem.Current
		stLo.DHitRate, stHi.DHitRate = loRate, hiRate
		stLo.IHitRate, stHi.IHitRate = loRate, hiRate
		lo.Mem.Current, hi.Mem.Current = stLo, stHi
		worse := BlockDelay(d.Block, lo, FullDetail).Total
		better := BlockDelay(d.Block, hi, FullDetail).Total
		return better <= worse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapCompensationBounds(t *testing.T) {
	// The compensated schedule is never below the issue bound and never
	// above the faithful schedule.
	m, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed []byte) bool {
		d := randomDFG(seed)
		faith := BlockDelay(d.Block, m, Detail{})
		comp := BlockDelay(d.Block, m, Detail{PipelineOverlap: true})
		if comp.Sched > faith.Sched {
			return false
		}
		width := 0
		for _, pl := range m.Pipelines {
			width += pl.IssueWidth
		}
		floor := (faith.Ops + width - 1) / width
		return comp.Sched >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
