package core

// Cancellation and graceful-degradation tests for the estimation worker
// pool: canceled contexts must drain every worker and return the typed
// error; unmapped op classes must degrade by default and hard-fail in
// strict mode.

import (
	"context"
	"errors"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/diag"
	"ese/internal/pum"
)

const mulSrc = `
int a;
int b;
void main() {
  int i;
  a = 1;
  b = 3;
  for (i = 0; i < 8; i = i + 1) {
    if (i > 4) {
      a = a * b;
    } else {
      b = b + i;
    }
  }
  out(a);
  out(b);
}`

// pumWithoutMul is MicroBlaze with the multiplier row removed, so any
// program using OpMul exercises the unmapped-op-class path.
func pumWithoutMul(t *testing.T) *pum.PUM {
	t.Helper()
	p := pum.MicroBlaze()
	delete(p.Ops, cdfg.ClassMul)
	return p
}

func TestEstimateBlocksCtxCanceledDrainsWorkers(t *testing.T) {
	prog := compile(t, mulSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var diags diag.List
	out, err := EstimateBlocksCtx(ctx, prog, pum.MicroBlaze(), FullDetail,
		EstOptions{Workers: 8, Diags: &diags})
	if !errors.Is(err, diag.ErrCanceled) {
		t.Fatalf("EstimateBlocksCtx error = %v, want diag.ErrCanceled", err)
	}
	if out != nil {
		t.Fatalf("EstimateBlocksCtx returned %d estimates on cancellation, want nil map", len(out))
	}
	if diags.Count(diag.Error) == 0 {
		t.Fatal("cancellation was not recorded on the diagnostic list")
	}
}

func TestEstimateBlocksCtxCanceledSerial(t *testing.T) {
	prog := compile(t, mulSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := EstimateBlocksCtx(ctx, prog, pum.MicroBlaze(), FullDetail, EstOptions{Workers: 1})
	if !errors.Is(err, diag.ErrCanceled) {
		t.Fatalf("serial EstimateBlocksCtx error = %v, want diag.ErrCanceled", err)
	}
	if out != nil {
		t.Fatal("serial EstimateBlocksCtx returned estimates on cancellation")
	}
}

func TestEstimateBlocksDegradesUnmappedByDefault(t *testing.T) {
	prog := compile(t, mulSrc)
	p := pumWithoutMul(t)
	var diags diag.List
	out, err := EstimateBlocksCtx(context.Background(), prog, p, FullDetail,
		EstOptions{Workers: 1, Diags: &diags})
	if err != nil {
		t.Fatalf("EstimateBlocksCtx: %v", err)
	}
	degraded, unmapped := 0, 0
	for _, e := range out {
		if e.Degraded() {
			degraded++
			unmapped += e.Unmapped
		}
	}
	if degraded == 0 {
		t.Fatal("no block was flagged Degraded despite the PUM missing ClassMul")
	}
	if unmapped == 0 {
		t.Fatal("degraded blocks report zero unmapped ops")
	}
	if diags.Count(diag.Warning) != degraded {
		t.Fatalf("diagnostics carry %d warnings, want one per degraded block (%d)",
			diags.Count(diag.Warning), degraded)
	}
}

func TestEstimateBlocksStrictRejectsUnmapped(t *testing.T) {
	prog := compile(t, mulSrc)
	p := pumWithoutMul(t)
	var diags diag.List
	out, err := EstimateBlocksCtx(context.Background(), prog, p, FullDetail,
		EstOptions{Workers: 1, Strict: true, Diags: &diags})
	if err == nil {
		t.Fatal("strict mode accepted a PUM that does not map ClassMul")
	}
	if out != nil {
		t.Fatal("strict mode returned estimates alongside its error")
	}
	var d diag.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("strict error %T is not a diag.Diagnostic", err)
	}
	if d.Stage != diag.StageAnnotate || d.Severity != diag.Error {
		t.Fatalf("strict diagnostic = %v, want annotate-stage error", d)
	}
	if diags.Count(diag.Error) == 0 {
		t.Fatal("strict failure was not recorded on the diagnostic list")
	}
}

func TestEstimateBlocksFallbackAffectsDelay(t *testing.T) {
	prog := compile(t, mulSrc)
	p := pumWithoutMul(t)
	cheap, err := EstimateBlocksCtx(context.Background(), prog, p, FullDetail,
		EstOptions{Workers: 1, FallbackCycles: 1})
	if err != nil {
		t.Fatalf("fallback=1: %v", err)
	}
	dear, err := EstimateBlocksCtx(context.Background(), prog, p, FullDetail,
		EstOptions{Workers: 1, FallbackCycles: 64})
	if err != nil {
		t.Fatalf("fallback=64: %v", err)
	}
	raised := false
	for b, e := range cheap {
		if e.Degraded() && dear[b].Total > e.Total {
			raised = true
		}
	}
	if !raised {
		t.Fatal("raising FallbackCycles did not raise any degraded block's delay")
	}
}
