package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ese/internal/cdfg"
	"ese/internal/diag"
	"ese/internal/metrics"
	"ese/internal/pum"
)

// schedKey addresses one Algorithm 1 result: a block's structural hash
// under a PUM datapath hash. Cache/branch statistics are deliberately not
// part of the key — the schedule does not depend on them. The fallback
// latency for unmapped op classes is part of the key because it changes
// the schedule of degraded blocks.
type schedKey struct {
	model    pum.Fingerprint
	block    cdfg.Fingerprint
	fallback int
}

// estKey addresses one full Algorithm 2 estimate: the schedule key plus
// the statistical-model hash and the detail flags.
type estKey struct {
	model    pum.Fingerprint
	stats    pum.Fingerprint
	block    cdfg.Fingerprint
	detail   uint8
	fallback int
}

// CacheStats reports the hit/miss counters of a Cache.
type CacheStats struct {
	SchedHits   uint64 // Algorithm 1 results served from cache
	SchedMisses uint64 // Algorithm 1 results computed
	EstHits     uint64 // full estimates served from cache
	EstMisses   uint64 // full estimates composed
	Evictions   uint64 // entries dropped by the bounded cache (0 if unbounded)
}

// Cache is a content-addressed store of schedule results and estimates,
// keyed on canonical fingerprints of the block and the PUM sub-models it
// consumed. Because keys are content hashes, the cache survives
// recompilation: a retarget sweep that rebuilds the program for every
// cache configuration still reuses every Algorithm 1 schedule after the
// first configuration. Safe for concurrent use.
type Cache struct {
	mu    sync.RWMutex
	sched map[schedKey]SchedResult
	est   map[estKey]Estimate
	// limit bounds each map's entry count; 0 means unbounded. When a put
	// would exceed the bound, one resident entry is dropped, chosen by a
	// seeded deterministic generator over the insertion-ordered key list —
	// content-addressed entries are equally cheap to recompute, so the
	// victim choice only affects hit rate, never results, but picking it
	// via Go's randomized map iteration made bounded-cache hit rates (and
	// thus benchmark and DSE timing baselines) wobble run to run.
	limit int
	// rng is the splitmix64 state of the victim picker; schedKeys/estKeys
	// mirror each map's resident keys (maintained only when limit > 0).
	rng       uint64
	schedKeys []schedKey
	estKeys   []estKey

	schedHits, schedMisses atomic.Uint64
	estHits, estMisses     atomic.Uint64
	evictions              atomic.Uint64
}

// NewCache returns an empty, unbounded schedule/estimate cache.
func NewCache() *Cache {
	return NewCacheLimit(0)
}

// NewCacheLimit returns a cache holding at most maxEntries schedule
// results and maxEntries estimates; maxEntries <= 0 means unbounded.
// Eviction at the bound is deterministic: the same sequence of gets and
// puts always drops the same victims (seed fixed at 1). Callers that want
// a distinct-but-reproducible eviction pattern use NewCacheLimitSeeded.
func NewCacheLimit(maxEntries int) *Cache {
	return NewCacheLimitSeeded(maxEntries, 1)
}

// NewCacheLimitSeeded is NewCacheLimit with an explicit seed for the
// eviction victim picker. Two caches built with the same limit and seed
// and fed the same operation sequence evict identical victims — the
// property the benchmark harness and kill/resume DSE sweeps rely on for
// byte-identical reruns.
func NewCacheLimitSeeded(maxEntries int, seed uint64) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache{
		sched: make(map[schedKey]SchedResult),
		est:   make(map[estKey]Estimate),
		limit: maxEntries,
		rng:   seed,
	}
}

// nextRand advances the splitmix64 stream; callers hold c.mu.
func (c *Cache) nextRand() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		SchedHits:   c.schedHits.Load(),
		SchedMisses: c.schedMisses.Load(),
		EstHits:     c.estHits.Load(),
		EstMisses:   c.estMisses.Load(),
		Evictions:   c.evictions.Load(),
	}
}

// Len returns the number of cached schedule and estimate entries.
func (c *Cache) Len() (sched, est int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sched), len(c.est)
}

func (c *Cache) schedGet(k schedKey) (SchedResult, bool) {
	c.mu.RLock()
	sr, ok := c.sched[k]
	c.mu.RUnlock()
	if ok {
		c.schedHits.Add(1)
	} else {
		c.schedMisses.Add(1)
	}
	return sr, ok
}

func (c *Cache) schedPut(k schedKey, sr SchedResult) {
	c.mu.Lock()
	if c.limit > 0 {
		if _, resident := c.sched[k]; !resident {
			// The victim is drawn from the residents before k joins the key
			// list, so the just-inserted key can never evict itself.
			if len(c.sched) >= c.limit {
				i := int(c.nextRand() % uint64(len(c.schedKeys)))
				delete(c.sched, c.schedKeys[i])
				c.schedKeys[i] = c.schedKeys[len(c.schedKeys)-1]
				c.schedKeys = c.schedKeys[:len(c.schedKeys)-1]
				c.evictions.Add(1)
			}
			c.schedKeys = append(c.schedKeys, k)
		}
	}
	c.sched[k] = sr
	c.mu.Unlock()
}

func (c *Cache) estGet(k estKey) (Estimate, bool) {
	c.mu.RLock()
	e, ok := c.est[k]
	c.mu.RUnlock()
	if ok {
		c.estHits.Add(1)
	} else {
		c.estMisses.Add(1)
	}
	return e, ok
}

func (c *Cache) estPut(k estKey, e Estimate) {
	c.mu.Lock()
	if c.limit > 0 {
		if _, resident := c.est[k]; !resident {
			if len(c.est) >= c.limit {
				i := int(c.nextRand() % uint64(len(c.estKeys)))
				delete(c.est, c.estKeys[i])
				c.estKeys[i] = c.estKeys[len(c.estKeys)-1]
				c.estKeys = c.estKeys[:len(c.estKeys)-1]
				c.evictions.Add(1)
			}
			c.estKeys = append(c.estKeys, k)
		}
	}
	c.est[k] = e
	c.mu.Unlock()
}

// EstOptions configures EstimateBlocksWith.
type EstOptions struct {
	// Workers bounds the estimation worker pool. Zero or negative uses
	// GOMAXPROCS; 1 estimates serially on the calling goroutine (the
	// reference path the golden tests compare against).
	Workers int
	// Cache, when non-nil, memoizes schedule results and estimates across
	// calls, keyed on content fingerprints.
	Cache *Cache
	// FallbackCycles is the latency charged to ops whose class the PUM
	// does not map (graceful degradation); values < 1 use
	// DefaultFallbackCycles. Such blocks carry Estimate.Unmapped > 0.
	FallbackCycles int
	// Strict turns unmapped op classes into hard errors instead of
	// degraded estimates (only meaningful through EstimateBlocksCtx).
	Strict bool
	// Diags, when non-nil, receives a Warning diagnostic for every
	// degraded block (and the Error diagnostics of strict mode).
	Diags *diag.List
	// Metrics, when non-nil, receives worker-pool counters per call:
	// blocks estimated, the queue depth fan-out, and the per-worker block
	// distribution.
	Metrics *metrics.Registry
}

// fallback returns the effective fallback latency.
func (o EstOptions) fallback() int {
	if o.FallbackCycles < 1 {
		return DefaultFallbackCycles
	}
	return o.FallbackCycles
}

// EstimateBlocks computes the per-block estimate for every block of every
// function under one PUM, without mutating the IR, fanning the blocks out
// over a bounded worker pool. Results are bit-identical to the serial
// path: every block is estimated independently and deterministically.
// Platforms that map functions of the same program onto several PEs keep
// one such map per PE.
func EstimateBlocks(prog *cdfg.Program, p *pum.PUM, detail Detail) map[*cdfg.Block]Estimate {
	return EstimateBlocksWith(prog, p, detail, EstOptions{})
}

// EstimateBlocksWith is EstimateBlocks with an explicit worker bound and
// optional memoization cache. Cancellation and strict-mode errors require
// EstimateBlocksCtx; this legacy form estimates to completion in graceful-
// degradation mode.
func EstimateBlocksWith(prog *cdfg.Program, p *pum.PUM, detail Detail, opts EstOptions) map[*cdfg.Block]Estimate {
	opts.Strict = false
	out, _ := EstimateBlocksCtx(context.Background(), prog, p, detail, opts)
	return out
}

// EstimateBlocksCtx is the context-aware estimation entry point. Workers
// check the context between blocks and drain cleanly on cancellation,
// returning a nil map and the typed diag.ErrCanceled/diag.ErrDeadline. In
// strict mode (opts.Strict) a block using an op class the PUM does not map
// is a hard error naming the block and the missing classes; otherwise such
// blocks are estimated with the fallback latency, flagged via
// Estimate.Unmapped, and reported as Warning diagnostics on opts.Diags.
func EstimateBlocksCtx(ctx context.Context, prog *cdfg.Program, p *pum.PUM, detail Detail, opts EstOptions) (map[*cdfg.Block]Estimate, error) {
	type workItem struct {
		b  *cdfg.Block
		fn string
	}
	var blocks []workItem
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			blocks = append(blocks, workItem{b: b, fn: fn.Name})
		}
	}
	n := len(blocks)
	out := make(map[*cdfg.Block]Estimate, n)
	if n == 0 {
		return out, nil
	}
	fallback := opts.fallback()

	// Resolve the model fingerprints once per call; they are shared by
	// every block's cache key.
	var dpFP, stFP pum.Fingerprint
	var detailBits uint8
	if opts.Cache != nil {
		dpFP = p.DatapathFingerprint()
		stFP = p.StatFingerprint()
		detailBits = detail.bits()
	}
	estimate := func(s *Scheduler, b *cdfg.Block) Estimate {
		if opts.Cache == nil {
			return ComposeEstimate(s.ScheduleBlock(b), p, detail)
		}
		bfp := b.Fingerprint()
		ek := estKey{model: dpFP, stats: stFP, block: bfp, detail: detailBits, fallback: fallback}
		if e, ok := opts.Cache.estGet(ek); ok {
			return e
		}
		sk := schedKey{model: dpFP, block: bfp, fallback: fallback}
		sr, ok := opts.Cache.schedGet(sk)
		if !ok {
			sr = s.ScheduleBlock(b)
			opts.Cache.schedPut(sk, sr)
		}
		e := ComposeEstimate(sr, p, detail)
		opts.Cache.estPut(ek, e)
		return e
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if opts.Metrics != nil {
		opts.Metrics.Counter("est.blocks").Add(uint64(n))
		opts.Metrics.Gauge("est.pool.workers").Set(int64(workers))
		opts.Metrics.Gauge("est.pool.queue.max").SetMax(int64(n))
	}
	res := make([]Estimate, n)
	var canceled atomic.Bool
	if workers <= 1 {
		s := NewSchedulerFallback(p, fallback)
		for i, w := range blocks {
			if diag.FromContext(ctx) != nil {
				canceled.Store(true)
				break
			}
			res[i] = estimate(s, w.b)
		}
		if opts.Metrics != nil {
			opts.Metrics.Histogram("est.pool.worker.blocks").Observe(float64(n))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := NewSchedulerFallback(p, fallback)
				done := 0
				for {
					if canceled.Load() {
						break
					}
					if diag.FromContext(ctx) != nil {
						canceled.Store(true)
						break
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					res[i] = estimate(s, blocks[i].b)
					done++
				}
				if opts.Metrics != nil {
					opts.Metrics.Histogram("est.pool.worker.blocks").Observe(float64(done))
				}
			}()
		}
		wg.Wait()
	}
	if canceled.Load() {
		err := diag.FromContext(ctx)
		opts.Diags.AddError(diag.StageAnnotate, err)
		return nil, err
	}

	// Degradation accounting runs post-hoc over the ordered block list, so
	// diagnostics are deterministic regardless of worker interleaving.
	for i, w := range blocks {
		e := res[i]
		if e.Unmapped > 0 {
			pos := blockPos(w.fn, w.b)
			if opts.Strict {
				d := diag.Diagnostic{
					Severity: diag.Error,
					Stage:    diag.StageAnnotate,
					Pos:      pos,
					Msg: fmt.Sprintf("PUM %q does not map op classes %v used by the block (%d ops; strict mode)",
						p.Name, UnmappedClasses(w.b, p), e.Unmapped),
				}
				opts.Diags.Add(d)
				return nil, d
			}
			opts.Diags.Warnf(diag.StageAnnotate, pos,
				"PUM %q does not map op classes %v: %d ops estimated with fallback latency %d",
				p.Name, UnmappedClasses(w.b, p), e.Unmapped, fallback)
		}
		out[w.b] = e
	}
	return out, nil
}

// blockPos renders a block location for diagnostics ("func/bb3").
func blockPos(fn string, b *cdfg.Block) string {
	return fmt.Sprintf("%s/bb%d", fn, b.ID)
}
