package core

import (
	"fmt"
	"sort"
	"testing"
)

// residentSched renders the resident schedule keys as a canonical string.
func residentSched(c *Cache) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.sched))
	for k := range c.sched {
		keys = append(keys, fmt.Sprintf("%d", k.fallback))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

func residentEst(c *Cache) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.est))
	for k := range c.est {
		keys = append(keys, fmt.Sprintf("%d", k.fallback))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// Regression: eviction victims used to come from Go's randomized map
// iteration order, so two caches fed the identical operation sequence
// could end up holding different entries — bounded-cache hit rates (and
// every timing baseline derived from them) wobbled run to run. Victims
// must now be a pure function of (limit, seed, operation sequence).
func TestBoundedCacheEvictionDeterministic(t *testing.T) {
	run := func(seed uint64) (*Cache, string, string) {
		c := NewCacheLimitSeeded(8, seed)
		for i := 0; i < 200; i++ {
			c.schedPut(schedKey{fallback: i % 40}, SchedResult{Sched: i})
			c.estPut(estKey{fallback: i % 40}, Estimate{Sched: i})
			// Interleave hits so the sequence exercises resident re-puts too.
			c.schedGet(schedKey{fallback: i % 7})
		}
		return c, residentSched(c), residentEst(c)
	}
	c1, s1, e1 := run(42)
	c2, s2, e2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, same ops, different resident schedule sets:\n%s\n%s", s1, s2)
	}
	if e1 != e2 {
		t.Fatalf("same seed, same ops, different resident estimate sets:\n%s\n%s", e1, e2)
	}
	if c1.Stats().Evictions != c2.Stats().Evictions {
		t.Fatalf("eviction counts diverged: %d vs %d",
			c1.Stats().Evictions, c2.Stats().Evictions)
	}
	// The default-seed constructor is deterministic too.
	d1 := NewCacheLimit(4)
	d2 := NewCacheLimit(4)
	for i := 0; i < 50; i++ {
		d1.schedPut(schedKey{fallback: i}, SchedResult{})
		d2.schedPut(schedKey{fallback: i}, SchedResult{})
	}
	if residentSched(d1) != residentSched(d2) {
		t.Fatal("NewCacheLimit caches diverged under identical put sequences")
	}
}

// The key list must track evictions exactly: no ghost keys (picked as
// victims but already gone) and no leaks past the bound.
func TestBoundedCacheKeyListConsistent(t *testing.T) {
	c := NewCacheLimitSeeded(3, 7)
	for i := 0; i < 100; i++ {
		c.schedPut(schedKey{fallback: i % 10}, SchedResult{Sched: i})
		c.estPut(estKey{fallback: i % 10}, Estimate{Sched: i})
		s, e := c.Len()
		if s > 3 || e > 3 {
			t.Fatalf("cache exceeded its bound: sched=%d est=%d", s, e)
		}
		if len(c.schedKeys) != s || len(c.estKeys) != e {
			t.Fatalf("key list out of sync: %d/%d keys for %d/%d entries",
				len(c.schedKeys), len(c.estKeys), s, e)
		}
		for _, k := range c.schedKeys {
			if _, ok := c.sched[k]; !ok {
				t.Fatalf("ghost key %+v in schedule key list", k)
			}
		}
	}
}
