package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stressKeys builds n distinct schedule/estimate key pairs. Keys are
// content hashes in production; synthetic distinct byte patterns exercise
// the same map behavior.
func stressKeys(n int) ([]schedKey, []estKey) {
	sk := make([]schedKey, n)
	ek := make([]estKey, n)
	for i := range sk {
		var fp [32]byte
		fp[0], fp[1], fp[2], fp[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		sk[i] = schedKey{model: fp, block: fp, fallback: i % 3}
		ek[i] = estKey{model: fp, stats: fp, block: fp, detail: uint8(i % 2), fallback: i % 3}
	}
	return sk, ek
}

// TestCacheStressAtLimit hammers a bounded cache from many goroutines
// with a key space larger than the bound, forcing constant eviction, and
// then reconciles the counters against the operation counts: every get is
// either a hit or a miss, the resident size never exceeds the bound, and
// evictions cannot outnumber the puts that could have triggered them.
// Run under -race this also proves the get/put/evict paths are safe to
// share between the daemon's request goroutines.
func TestCacheStressAtLimit(t *testing.T) {
	const (
		limit   = 64
		keySpan = 256 // 4x the bound: most puts evict
		perG    = 2000
	)
	workers := runtime.GOMAXPROCS(0) * 2
	c := NewCacheLimit(limit)
	sk, ek := stressKeys(keySpan)

	var schedGets, schedPuts, estGets, estPuts atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			// Deterministic per-goroutine walk; different strides keep the
			// goroutines out of lockstep.
			i := seed
			for n := 0; n < perG; n++ {
				i = (i*1103515245 + 12345) & (keySpan - 1)
				k := sk[i]
				if _, ok := c.schedGet(k); !ok {
					c.schedPut(k, SchedResult{Sched: i})
					schedPuts.Add(1)
				}
				schedGets.Add(1)
				e := ek[i]
				if _, ok := c.estGet(e); !ok {
					c.estPut(e, Estimate{Total: float64(i)})
					estPuts.Add(1)
				}
				estGets.Add(1)
			}
		}(g * 7919)
	}
	wg.Wait()

	st := c.Stats()
	if st.SchedHits+st.SchedMisses != schedGets.Load() {
		t.Errorf("sched counters do not reconcile: hits %d + misses %d != gets %d",
			st.SchedHits, st.SchedMisses, schedGets.Load())
	}
	if st.EstHits+st.EstMisses != estGets.Load() {
		t.Errorf("est counters do not reconcile: hits %d + misses %d != gets %d",
			st.EstHits, st.EstMisses, estGets.Load())
	}
	// Only a get that missed triggers a put, so misses bound the puts; and
	// only a put of a non-resident key at the limit evicts, so puts bound
	// the evictions.
	if schedPuts.Load() > st.SchedMisses {
		t.Errorf("more sched puts (%d) than misses (%d)", schedPuts.Load(), st.SchedMisses)
	}
	if st.Evictions > schedPuts.Load()+estPuts.Load() {
		t.Errorf("more evictions (%d) than puts (%d)", st.Evictions, schedPuts.Load()+estPuts.Load())
	}
	sched, est := c.Len()
	if sched > limit || est > limit {
		t.Errorf("bound violated: %d sched / %d est entries, limit %d", sched, est, limit)
	}
	if sched == 0 || est == 0 {
		t.Error("cache empty after stress — puts are not landing")
	}
	if st.Evictions == 0 {
		t.Error("no evictions at 4x key span — the stress never hit the bound")
	}
}

// TestCacheStressUnbounded runs the same hammer on an unbounded cache:
// every key is computed at most a handful of times (once per goroutine at
// worst, when several miss concurrently before the first put lands), and
// nothing is ever evicted.
func TestCacheStressUnbounded(t *testing.T) {
	const (
		keySpan = 128
		perG    = 1000
	)
	workers := runtime.GOMAXPROCS(0) * 2
	c := NewCache()
	sk, _ := stressKeys(keySpan)

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			// Full-period LCG mod 2^k (multiplier ≡ 1 mod 4, odd increment):
			// every goroutine visits all keySpan keys.
			i := seed
			for n := 0; n < perG; n++ {
				i = (i*1103515245 + 12345) & (keySpan - 1)
				k := sk[i]
				if _, ok := c.schedGet(k); !ok {
					c.schedPut(k, SchedResult{Sched: i})
				}
			}
		}(g * 104729)
	}
	wg.Wait()

	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("unbounded cache evicted %d entries", st.Evictions)
	}
	sched, _ := c.Len()
	if sched != keySpan {
		t.Errorf("resident sched entries = %d, want %d", sched, keySpan)
	}
	// A key can miss at most once per goroutine (they race on first
	// insert); after that every get hits.
	if st.SchedMisses > uint64(keySpan*workers) {
		t.Errorf("misses %d exceed worst-case %d", st.SchedMisses, keySpan*workers)
	}
	if st.SchedHits+st.SchedMisses != uint64(workers*perG) {
		t.Errorf("counters do not reconcile: %d + %d != %d",
			st.SchedHits, st.SchedMisses, workers*perG)
	}
}
