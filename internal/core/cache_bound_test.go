package core

import "testing"

// TestBoundedCacheNeverEvictsJustInsertedKey locks the eviction policy of
// the bounded cache at its tightest setting, limit 1: re-putting the
// resident key must not evict anything, and inserting a new key must
// evict the old entry — never the key being inserted. Without the
// residency check a full cache would pick its own incoming key as the
// victim, making every put at the bound a guaranteed future miss and the
// cache useless at small limits.
func TestBoundedCacheNeverEvictsJustInsertedKey(t *testing.T) {
	c := NewCacheLimit(1)
	k1 := schedKey{fallback: 1}
	k2 := schedKey{fallback: 2}

	c.schedPut(k1, SchedResult{Sched: 11})
	c.schedPut(k1, SchedResult{Sched: 12}) // overwrite in place, no eviction
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("re-putting the resident key evicted %d entries", ev)
	}
	if sr, ok := c.schedGet(k1); !ok || sr.Sched != 12 {
		t.Fatalf("resident key lost on overwrite: ok=%v sr=%+v", ok, sr)
	}

	c.schedPut(k2, SchedResult{Sched: 20})
	if sr, ok := c.schedGet(k2); !ok || sr.Sched != 20 {
		t.Fatal("bounded cache evicted the key it just inserted")
	}
	if _, ok := c.schedGet(k1); ok {
		t.Fatal("old entry survived past the limit")
	}
	if s, _ := c.Len(); s != 1 {
		t.Fatalf("schedule map holds %d entries at limit 1", s)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("want exactly 1 eviction, got %d", ev)
	}
}

// TestBoundedCacheEstimateSide is the same regression for the estimate
// map, which has its own copy of the put path.
func TestBoundedCacheEstimateSide(t *testing.T) {
	c := NewCacheLimit(1)
	k1 := estKey{fallback: 1}
	k2 := estKey{fallback: 2}

	c.estPut(k1, Estimate{Sched: 1})
	c.estPut(k1, Estimate{Sched: 2})
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("re-putting the resident key evicted %d entries", ev)
	}
	c.estPut(k2, Estimate{Sched: 3})
	if e, ok := c.estGet(k2); !ok || e.Sched != 3 {
		t.Fatal("bounded cache evicted the key it just inserted")
	}
	if _, e := c.Len(); e != 1 {
		t.Fatalf("estimate map holds %d entries at limit 1", e)
	}
}
