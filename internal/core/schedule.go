// Package core implements the paper's estimation engine: Algorithm 1
// (optimistic scheduling of a basic block's DFG on the processing unit
// model) and Algorithm 2 (composition of the basic-block delay from the
// scheduling delay plus statistical cache and branch-misprediction
// penalties). This is the primary contribution of the paper.
//
// The two algorithms are exposed both as one-shot helpers (Schedule,
// BlockDelay) and as a split, reusable form: a Scheduler carries the
// per-PUM operation table and scratch state across blocks, ScheduleBlock
// produces the statistics-independent SchedResult of Algorithm 1, and
// ComposeEstimate applies Algorithm 2's statistical penalties on top. The
// split is what makes schedule results cacheable across retargets of the
// statistical models (see Cache and EstimateBlocksWith).
package core

import (
	"ese/internal/cdfg"
	"ese/internal/pum"
)

// opState tracks one DFG operation through the pipeline simulation.
type opState struct {
	idx       int // instruction index in the block
	info      *pum.OpInfo
	pipeline  int // pipeline the op was issued to, -1 before issue
	stage     int // current stage, -1 before issue
	counter   int // remaining cycles in the current stage
	committed bool
	done      bool
	height    int // list-scheduling priority (critical path length)
}

// DefaultFallbackCycles is the latency charged to an operation whose class
// the PUM does not map, when estimation runs in graceful-degradation mode
// (see EstOptions.FallbackCycles for the override).
const DefaultFallbackCycles = 1

// Scheduler is a reusable Algorithm 1 engine bound to one PUM. It resolves
// the per-class operation info out of the PUM's mapping table once at
// construction and reuses its simulation scratch state (op array, FU
// usage, stage occupancy) across blocks, so scheduling a block performs no
// map lookups and amortizes allocations. A Scheduler is not safe for
// concurrent use; give each worker its own (they are cheap).
//
// Operation classes absent from the PUM's mapping table are scheduled with
// a synthetic fallback row (fallbackCycles in the first stage, one cycle
// per later stage) instead of the zero OpInfo, whose empty stage list used
// to crash the stage-entry simulation. ScheduleBlock counts such ops in
// SchedResult.Unmapped so callers can flag the block as degraded or reject
// it in strict mode.
type Scheduler struct {
	p *pum.PUM
	// classInfo caches the operation mapping row per operation class, so
	// the per-instruction lookup is an array index instead of a map access
	// plus a fresh OpInfo copy. Unmapped classes hold the synthetic
	// fallback row.
	classInfo [cdfg.ClassIO + 1]pum.OpInfo
	// unmapped flags the classes the PUM does not map.
	unmapped [cdfg.ClassIO + 1]bool
	// fallbackCycles is the first-stage latency of the synthetic row.
	fallbackCycles int

	dfg     *cdfg.DFG
	ops     []opState
	fuUse   map[string]int
	candBuf []int
	// stageOcc[pl][stage] is the number of ops currently in that stage of
	// that pipeline; used to enforce in-order single-file flow.
	stageOcc [][]int
	// nextInOrder is the next op index to issue under PolicyInOrder.
	nextInOrder int
	doneCount   int
}

// NewScheduler builds a reusable scheduler for the PUM with the default
// fallback latency for unmapped operation classes.
func NewScheduler(p *pum.PUM) *Scheduler {
	return NewSchedulerFallback(p, DefaultFallbackCycles)
}

// NewSchedulerFallback builds a reusable scheduler whose unmapped
// operation classes are charged the given first-stage latency (values < 1
// use DefaultFallbackCycles).
func NewSchedulerFallback(p *pum.PUM, fallbackCycles int) *Scheduler {
	if fallbackCycles < 1 {
		fallbackCycles = DefaultFallbackCycles
	}
	s := &Scheduler{p: p, fuUse: make(map[string]int), fallbackCycles: fallbackCycles}
	fb := fallbackInfo(p, fallbackCycles)
	for cls := range s.classInfo {
		if info, ok := p.Ops[cdfg.Class(cls)]; ok && len(info.Stages) > 0 {
			s.classInfo[cls] = info
		} else {
			s.classInfo[cls] = fb
			s.unmapped[cls] = true
		}
	}
	s.stageOcc = make([][]int, len(p.Pipelines))
	for pl := range p.Pipelines {
		s.stageOcc[pl] = make([]int, len(p.Pipelines[pl].Stages))
	}
	return s
}

// fallbackInfo synthesizes the mapping row used for unmapped classes: the
// op flows through every stage of the pipeline, paying the fallback
// latency in the first stage and one cycle in each later stage, demanding
// operands at issue and committing in the last stage. It claims no
// functional units, so it can never deadlock on a structural hazard.
func fallbackInfo(p *pum.PUM, cycles int) pum.OpInfo {
	nStages := 1
	if len(p.Pipelines) > 0 && len(p.Pipelines[0].Stages) > 0 {
		nStages = len(p.Pipelines[0].Stages)
	}
	info := pum.OpInfo{Stages: make([]pum.StageUse, nStages), Demand: 0, Commit: nStages - 1}
	info.Stages[0] = pum.StageUse{Cycles: cycles}
	for i := 1; i < nStages; i++ {
		info.Stages[i] = pum.StageUse{Cycles: 1}
	}
	return info
}

// Unmapped reports whether the scheduler treats the class as unmapped.
func (s *Scheduler) Unmapped(cls cdfg.Class) bool {
	return int(cls) < len(s.unmapped) && s.unmapped[cls]
}

// UnmappedClasses returns the distinct operation classes used by the block
// that the PUM does not map, in class order (nil when fully mapped).
func UnmappedClasses(b *cdfg.Block, p *pum.PUM) []cdfg.Class {
	var seen [cdfg.ClassIO + 1]bool
	var out []cdfg.Class
	for i := range b.Instrs {
		cls := cdfg.OpClass(b.Instrs[i].Op)
		if int(cls) >= len(seen) || seen[cls] {
			continue
		}
		seen[cls] = true
		if info, ok := p.Ops[cls]; !ok || len(info.Stages) == 0 {
			out = append(out, cls)
		}
	}
	return out
}

// Schedule computes the optimistic scheduling delay (in PE cycles) of a
// basic block's DFG on the PUM, assuming 100% cache hits and no branch
// misprediction — Algorithm 1 of the paper. The simulation is guaranteed to
// terminate because the DFG is acyclic.
func Schedule(d *cdfg.DFG, p *pum.PUM) int {
	return NewScheduler(p).Schedule(d)
}

// Schedule runs Algorithm 1 on one block's DFG, reusing the scheduler's
// scratch state.
func (s *Scheduler) Schedule(d *cdfg.DFG) int {
	n := len(d.Block.Instrs)
	if n == 0 {
		return 0
	}
	s.reset(d, n)

	delay := 0
	for s.doneCount < n {
		for pl := range s.p.Pipelines {
			s.advClock(pl)
		}
		for pl := range s.p.Pipelines {
			s.assignOps(pl)
		}
		delay++
	}
	return delay
}

// reset prepares the scratch state for a fresh block of n instructions.
func (s *Scheduler) reset(d *cdfg.DFG, n int) {
	s.dfg = d
	if cap(s.ops) < n {
		s.ops = make([]opState, n)
	} else {
		s.ops = s.ops[:n]
	}
	for i := range s.ops {
		cls := cdfg.OpClass(d.Block.Instrs[i].Op)
		s.ops[i] = opState{idx: i, info: &s.classInfo[cls], pipeline: -1, stage: -1}
	}
	if s.p.Policy == pum.PolicyList {
		s.computeHeights()
	}
	clear(s.fuUse)
	for pl := range s.stageOcc {
		occ := s.stageOcc[pl]
		for st := range occ {
			occ[st] = 0
		}
	}
	s.nextInOrder = 0
	s.doneCount = 0
}

// computeHeights fills the list-scheduling priority: the length (in execute
// cycles) of the longest dependency chain from each op to any sink. Deps
// point backwards, so a reverse index scan is a reverse-topological order.
func (s *Scheduler) computeHeights() {
	n := len(s.ops)
	for i := n - 1; i >= 0; i-- {
		// Own execution weight: total stage cycles.
		w := 0
		for _, su := range s.ops[i].info.Stages {
			w += su.Cycles
		}
		s.ops[i].height = w
	}
	// Propagate: for each op j with dependency i, height[i] >= w[i] + height[j].
	for j := n - 1; j >= 0; j-- {
		for _, i := range s.dfg.Deps[j] {
			w := 0
			for _, su := range s.ops[i].info.Stages {
				w += su.Cycles
			}
			if h := w + s.ops[j].height; h > s.ops[i].height {
				s.ops[i].height = h
			}
		}
	}
}

// depsCommitted reports whether all data dependencies of op i have
// committed their results.
func (s *Scheduler) depsCommitted(i int) bool {
	for _, j := range s.dfg.Deps[i] {
		if !s.ops[j].committed {
			return false
		}
	}
	return true
}

// stageCapacity returns how many ops may simultaneously occupy a stage of
// the pipeline. In-order pipelines are single-file (ops never overtake);
// dataflow-style schedulers are bounded only by functional units.
func (s *Scheduler) stageCapacity(pl int) int {
	if s.p.Policy == pum.PolicyInOrder {
		return s.p.Pipelines[pl].IssueWidth
	}
	return 1 << 30
}

// tryEnterStage checks demand and structural constraints for op entering
// the given stage of its pipeline, and claims resources if possible.
func (s *Scheduler) tryEnterStage(op *opState, pl, stage int) bool {
	if s.stageOcc[pl][stage] >= s.stageCapacity(pl) {
		return false
	}
	// Demand stage: operands must be available (paper: dependencies must
	// be in the commit set — no data hazard).
	if stage == op.info.Demand && !s.depsCommitted(op.idx) {
		return false
	}
	su := op.info.Stages[stage]
	if su.FU != "" && s.fuUse[su.FU] >= s.p.FUQuantity(su.FU) {
		return false
	}
	// Claim.
	if su.FU != "" {
		s.fuUse[su.FU]++
	}
	s.stageOcc[pl][stage]++
	op.stage = stage
	op.counter = su.Cycles
	return true
}

// leaveStage releases the resources op holds in its current stage.
func (s *Scheduler) leaveStage(op *opState, pl int) {
	su := op.info.Stages[op.stage]
	if su.FU != "" {
		s.fuUse[su.FU]--
	}
	s.stageOcc[pl][op.stage]--
}

// advClock advances every in-flight op of the pipeline by one clock edge:
// counters decrement; ops whose counter reaches zero either commit+finish
// (last stage) or try to advance to the next stage, stalling in place on a
// demand or structural hazard. Stages are processed from the back so that
// a freed stage can accept the op behind it in the same cycle.
func (s *Scheduler) advClock(pl int) {
	lastStage := len(s.p.Pipelines[pl].Stages) - 1
	for stage := lastStage; stage >= 0; stage-- {
		for i := range s.ops {
			op := &s.ops[i]
			if op.pipeline != pl || op.done || op.stage != stage {
				continue
			}
			if op.counter > 0 {
				op.counter--
			}
			if op.counter > 0 {
				continue
			}
			// Counter exhausted: the op has finished this stage's work.
			if stage >= op.info.Commit {
				op.committed = true
			}
			if stage == lastStage {
				s.leaveStage(op, pl)
				op.done = true
				s.doneCount++
				continue
			}
			// Try to advance; on failure the op stalls holding its stage.
			s.tryEnterStageFrom(op, pl, op.stage+1)
		}
	}
}

// tryEnterStageFrom moves op from its current stage into next, releasing
// the old stage's resources first (and re-claiming them on failure).
func (s *Scheduler) tryEnterStageFrom(op *opState, pl, next int) bool {
	oldStage := op.stage
	s.leaveStage(op, pl)
	if s.tryEnterStage(op, pl, next) {
		return true
	}
	// Stall: re-occupy the old stage (resources were held all along
	// conceptually; this re-claim cannot fail because we just released).
	su := op.info.Stages[oldStage]
	if su.FU != "" {
		s.fuUse[su.FU]++
	}
	s.stageOcc[pl][oldStage]++
	op.stage = oldStage
	return false
}

// assignOps issues operations from the remaining set into stage 0 of the
// pipeline, according to the scheduling policy (Algorithm 1's AssignOps).
// In-order issue stops at the first blocked op (no overtaking); dataflow
// policies (ASAP, list) skip blocked candidates and try the next.
func (s *Scheduler) assignOps(pl int) {
	width := s.p.Pipelines[pl].IssueWidth
	if s.p.Policy == pum.PolicyInOrder {
		for issued := 0; issued < width; issued++ {
			cand := s.nextInOrderCandidate()
			if cand < 0 {
				return
			}
			if !s.tryEnterStage(&s.ops[cand], pl, 0) {
				return
			}
			s.ops[cand].pipeline = pl
			s.nextInOrder++
		}
		return
	}
	issued := 0
	for _, cand := range s.orderedCandidates() {
		if issued >= width {
			return
		}
		if s.tryEnterStage(&s.ops[cand], pl, 0) {
			s.ops[cand].pipeline = pl
			issued++
		}
	}
}

// nextInOrderCandidate returns the program-order next unissued op, or -1.
func (s *Scheduler) nextInOrderCandidate() int {
	for s.nextInOrder < len(s.ops) {
		op := &s.ops[s.nextInOrder]
		if op.pipeline >= 0 || op.done {
			s.nextInOrder++
			continue
		}
		return s.nextInOrder
	}
	return -1
}

// orderedCandidates returns the issuable unissued ops in policy priority
// order: readiness FIFO for ASAP, descending critical-path height (ties by
// program order) for list scheduling. The returned slice aliases the
// scheduler's scratch buffer and is valid until the next call.
func (s *Scheduler) orderedCandidates() []int {
	cands := s.candBuf[:0]
	for i := range s.ops {
		op := &s.ops[i]
		if op.pipeline < 0 && !op.done && s.issuable(i) {
			cands = append(cands, i)
		}
	}
	s.candBuf = cands
	if s.p.Policy == pum.PolicyList {
		// Stable selection sort by height keeps ties in program order
		// without importing sort for a tiny slice.
		for i := 0; i < len(cands); i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if s.ops[cands[j]].height > s.ops[cands[best]].height {
					best = j
				}
			}
			if best != i {
				c := cands[best]
				copy(cands[i+1:best+1], cands[i:best])
				cands[i] = c
			}
		}
	}
	return cands
}

// issuable applies the demand check at issue time when stage 0 is the
// demand stage, so dataflow policies do not issue ops whose operands are
// pending. (For later demand stages the check happens on stage entry.)
func (s *Scheduler) issuable(i int) bool {
	op := &s.ops[i]
	if op.info.Demand == 0 {
		return s.depsCommitted(i)
	}
	return true
}
