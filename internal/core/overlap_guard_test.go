package core

import (
	"testing"

	"ese/internal/pum"
)

// partialPUM mimics a JSON-loaded model that skipped validation: name and
// statistics only, no datapath. Before the guard, ComposeEstimate under
// OverlapDetail dereferenced p.Pipelines[0] (index out of range).
func partialPUM() *pum.PUM {
	return &pum.PUM{
		Name:      "partial",
		ClockHz:   100_000_000,
		Pipelined: true,
		Branch:    pum.BranchModel{MissRate: 0.2, Penalty: 3},
	}
}

func TestComposeEstimateOverlapNoPipelines(t *testing.T) {
	p := partialPUM()
	sr := SchedResult{Sched: 7, Ops: 4, Operands: 2, CondBr: true}
	e := ComposeEstimate(sr, p, OverlapDetail)
	// The overlap compensation must fall back to the unadjusted schedule.
	if e.Sched != sr.Sched {
		t.Errorf("Sched = %d, want unadjusted %d", e.Sched, sr.Sched)
	}
	// The statistical terms still apply.
	if e.BranchPen != p.Branch.MissRate*p.Branch.Penalty {
		t.Errorf("BranchPen = %v, want %v", e.BranchPen, p.Branch.MissRate*p.Branch.Penalty)
	}
	want := ComposeEstimate(sr, p, FullDetail)
	if e.Total != want.Total {
		t.Errorf("Total = %v, want FullDetail-equivalent %v", e.Total, want.Total)
	}
}

func TestComposeEstimateOverlapZeroIssueWidth(t *testing.T) {
	// Pipelines present, but the summed issue width is zero — the floor
	// computation would divide by zero without the guard.
	p := partialPUM()
	p.Pipelines = []pum.Pipeline{
		{Name: "a", Stages: []string{"IF", "EX"}, IssueWidth: 0},
		{Name: "b", Stages: []string{"IF", "EX"}, IssueWidth: 0},
	}
	sr := SchedResult{Sched: 9, Ops: 5}
	e := ComposeEstimate(sr, p, OverlapDetail)
	if e.Sched != sr.Sched {
		t.Errorf("Sched = %d, want unadjusted %d", e.Sched, sr.Sched)
	}
}

func TestComposeEstimateOverlapStillAdjustsValidModels(t *testing.T) {
	// Sanity: the guard must not disable the compensation on well-formed
	// pipelined models.
	p := pum.MicroBlaze()
	sr := SchedResult{Sched: 20, Ops: 4}
	plain := ComposeEstimate(sr, p, Detail{PipelineOverlap: true})
	fill := len(p.Pipelines[0].Stages)
	if want := sr.Sched - fill; plain.Sched != want {
		t.Errorf("adjusted Sched = %d, want %d", plain.Sched, want)
	}
}
