package core

import (
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/pum"
)

func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

// block builds a synthetic basic block from opcodes with a linear
// dependency structure controlled by deps.
func synthBlock(ops []cdfg.Opcode, deps map[int][]int) (*cdfg.Block, *cdfg.DFG) {
	b := &cdfg.Block{}
	for _, op := range ops {
		b.Instrs = append(b.Instrs, cdfg.Instr{Op: op})
	}
	d := &cdfg.DFG{Block: b, Deps: make([][]int, len(ops))}
	for i, ds := range deps {
		d.Deps[i] = ds
	}
	return b, d
}

func TestScheduleEmptyBlock(t *testing.T) {
	b := &cdfg.Block{}
	d := &cdfg.DFG{Block: b}
	if got := Schedule(d, pum.MicroBlaze()); got != 0 {
		t.Fatalf("empty block delay = %d, want 0", got)
	}
}

func TestScheduleSingleOpThreeStage(t *testing.T) {
	// One ALU op through IF/DE/EX (1 cycle each): issue iteration + 3
	// stage traversals = 4, per the paper's pseudocode.
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpAdd}, nil)
	if got := Schedule(d, pum.MicroBlaze()); got != 4 {
		t.Fatalf("single ALU delay = %d, want 4", got)
	}
}

func TestSchedulePipeliningThroughput(t *testing.T) {
	// N independent ALU ops on a single-issue 3-stage pipe: N + 3.
	for _, n := range []int{2, 5, 10} {
		ops := make([]cdfg.Opcode, n)
		for i := range ops {
			ops[i] = cdfg.OpAdd
		}
		_, d := synthBlock(ops, nil)
		want := n + 3
		if got := Schedule(d, pum.MicroBlaze()); got != want {
			t.Fatalf("%d independent ALU ops = %d cycles, want %d", n, got, want)
		}
	}
}

func TestScheduleForwardingAvoidsStall(t *testing.T) {
	// Dependent chain of ALU ops: with demand and commit both in EX and
	// same-edge forwarding, the chain still flows at 1 op/cycle.
	_, d := synthBlock(
		[]cdfg.Opcode{cdfg.OpAdd, cdfg.OpAdd, cdfg.OpAdd},
		map[int][]int{1: {0}, 2: {1}},
	)
	if got := Schedule(d, pum.MicroBlaze()); got != 6 {
		t.Fatalf("dependent ALU chain = %d, want 6", got)
	}
}

func TestScheduleMultiCycleOpStalls(t *testing.T) {
	// mul occupies EX for 3 cycles on the single-file pipe, so a following
	// ALU op waits: mul alone = 6 (issue+1+1+3), mul+add = 7.
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpMul}, nil)
	if got := Schedule(d, pum.MicroBlaze()); got != 6 {
		t.Fatalf("mul delay = %d, want 6", got)
	}
	_, d = synthBlock([]cdfg.Opcode{cdfg.OpMul, cdfg.OpAdd}, nil)
	if got := Schedule(d, pum.MicroBlaze()); got != 7 {
		t.Fatalf("mul+add delay = %d, want 7", got)
	}
}

func TestScheduleDivLatency(t *testing.T) {
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpDiv}, nil)
	// issue + IF + DE + 32-cycle EX = 35.
	if got := Schedule(d, pum.MicroBlaze()); got != 35 {
		t.Fatalf("div delay = %d, want 35", got)
	}
}

func TestScheduleInOrderNoOvertaking(t *testing.T) {
	// Under in-order issue, an ALU op after a div cannot complete earlier
	// even though it is independent.
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpDiv, cdfg.OpAdd}, nil)
	got := Schedule(d, pum.MicroBlaze())
	if got != 36 {
		t.Fatalf("div+add in-order = %d, want 36", got)
	}
}

func TestScheduleCustomHWParallelism(t *testing.T) {
	hw := pum.CustomHW("hw", 100_000_000)
	// Two independent ALU ops, two ALU FUs, issue width 2, one stage:
	// both issue in iteration 1 and complete in iteration 2 -> delay 2.
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpSub}, nil)
	if got := Schedule(d, hw); got != 2 {
		t.Fatalf("2 parallel ALU on HW = %d, want 2", got)
	}
	// Three independent ALU ops with only 2 ALUs: third waits a cycle.
	_, d = synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpSub, cdfg.OpXor}, nil)
	if got := Schedule(d, hw); got != 3 {
		t.Fatalf("3 ALU ops on 2 ALUs = %d, want 3", got)
	}
}

func TestScheduleHWDemandAtIssue(t *testing.T) {
	hw := pum.CustomHW("hw", 100_000_000)
	// Dependent chain a -> b on the one-stage datapath: b cannot issue
	// until a commits. a: issued iter1, completes iter2 (committed);
	// b issues iter2? b's issue check happens in assign after advclock,
	// so b issues in iteration 2 and completes in iteration 3.
	_, d := synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpSub}, map[int][]int{1: {0}})
	if got := Schedule(d, hw); got != 3 {
		t.Fatalf("dependent pair on HW = %d, want 3", got)
	}
}

func TestScheduleListBeatsASAPOnCriticalPath(t *testing.T) {
	// A long chain (mul->mul) plus independent cheap ops competing for
	// issue. List scheduling must prioritize the critical chain, so its
	// makespan is <= ASAP's.
	ops := []cdfg.Opcode{cdfg.OpMul, cdfg.OpMul, cdfg.OpAdd, cdfg.OpAdd, cdfg.OpAdd, cdfg.OpAdd}
	deps := map[int][]int{1: {0}}
	hwList := pum.CustomHW("hw", 1)
	hwASAP := pum.CustomHW("hw", 1)
	hwASAP.Policy = pum.PolicyASAP
	_, dl := synthBlock(ops, deps)
	listDelay := Schedule(dl, hwList)
	_, da := synthBlock(ops, deps)
	asapDelay := Schedule(da, hwASAP)
	if listDelay > asapDelay {
		t.Fatalf("list (%d) worse than ASAP (%d)", listDelay, asapDelay)
	}
}

func TestScheduleSuperscalarFasterThanSingleIssue(t *testing.T) {
	ops := make([]cdfg.Opcode, 8)
	for i := range ops {
		ops[i] = cdfg.OpAdd
	}
	_, d1 := synthBlock(ops, nil)
	single := Schedule(d1, pum.MicroBlaze())
	_, d2 := synthBlock(ops, nil)
	dual := Schedule(d2, pum.DualIssue())
	if dual >= single {
		t.Fatalf("dual issue (%d) not faster than single issue (%d)", dual, single)
	}
}

func TestScheduleTerminatesOnRealBlocks(t *testing.T) {
	prog := compile(t, `
int a[64];
int f(int x) { return x * x + 3; }
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) {
    a[i] = f(i) / (i + 1);
    s += a[i] % 7;
  }
  out(s);
}`)
	for _, model := range []*pum.PUM{pum.MicroBlaze(), pum.CustomHW("hw", 1), pum.DualIssue()} {
		for _, fn := range prog.Funcs {
			for _, b := range fn.Blocks {
				d := cdfg.BuildDFG(b)
				got := Schedule(d, model)
				if len(b.Instrs) > 0 && got < len(b.Instrs)/model.Pipelines[0].IssueWidth/len(model.Pipelines) {
					t.Fatalf("%s/%s bb%d: delay %d below issue bound", model.Name, fn.Name, b.ID, got)
				}
				if got > 100*len(b.Instrs)+100 {
					t.Fatalf("%s/%s bb%d: delay %d absurdly high", model.Name, fn.Name, b.ID, got)
				}
			}
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	prog := compile(t, `
int a[32];
void main() {
  int i;
  for (i = 0; i < 32; i++) a[i] = (a[i] * 3 + i) % 17;
  out(a[0]);
}`)
	for _, model := range []*pum.PUM{pum.MicroBlaze(), pum.CustomHW("hw", 1)} {
		for _, fn := range prog.Funcs {
			for _, b := range fn.Blocks {
				d := cdfg.BuildDFG(b)
				first := Schedule(d, model)
				for k := 0; k < 3; k++ {
					if again := Schedule(d, model); again != first {
						t.Fatalf("nondeterministic schedule: %d vs %d", first, again)
					}
				}
			}
		}
	}
}

func TestScheduleLoadUseHazardOnARM5(t *testing.T) {
	arm := pum.ARM5()
	// Independent load + add: both flow without stalling.
	_, dInd := synthBlock([]cdfg.Opcode{cdfg.OpLoad, cdfg.OpAdd}, nil)
	independent := Schedule(dInd, arm)
	// add depends on the load: the load commits in MEM, so the dependent
	// add waits one extra cycle before entering EX (load-use hazard).
	_, dDep := synthBlock([]cdfg.Opcode{cdfg.OpLoad, cdfg.OpAdd}, map[int][]int{1: {0}})
	dependent := Schedule(dDep, arm)
	if dependent != independent+1 {
		t.Fatalf("load-use hazard: dependent=%d independent=%d (want +1 stall)",
			dependent, independent)
	}
	// ALU->ALU dependency forwards from EX: no stall.
	_, aInd := synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpAdd}, nil)
	_, aDep := synthBlock([]cdfg.Opcode{cdfg.OpAdd, cdfg.OpAdd}, map[int][]int{1: {0}})
	if Schedule(aDep, arm) != Schedule(aInd, arm) {
		t.Fatalf("ALU forwarding broken: dep=%d ind=%d",
			Schedule(aDep, arm), Schedule(aInd, arm))
	}
}

func TestARM5Validates(t *testing.T) {
	if err := pum.ARM5().Validate(); err != nil {
		t.Fatal(err)
	}
}
