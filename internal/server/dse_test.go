package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ese/internal/dse"
)

// Regression (SSE lifecycle): dropping the /events connection while the
// leader is inside Simulate must not cancel the job (the POST waiter is
// still listening), must free the stage-hook subscription promptly, and
// must leave no goroutine behind. Run under -race in CI.
func TestEventsClientDisconnectMidSimulate(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	slow := slowTLMSpec()
	fp := slow.Fingerprint()

	type outcome struct {
		code int
		body []byte
	}
	resc := make(chan outcome, 1)
	go func() {
		code, body, _ := postJobErr(ts, mustBody(t, slow), "")
		resc <- outcome{code, body}
	}()
	waitForState(t, ts, fp, StateRunning)
	base := runtime.NumGoroutine()

	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+"/v1/jobs/"+fp+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	sawAnnotate := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"stage":"annotate"`) {
			sawAnnotate = true
			break
		}
	}
	if !sawAnnotate {
		t.Fatal("event stream ended before the annotate stage")
	}

	f := s.lookup(fp)
	if f == nil {
		t.Fatal("flight gone while its job runs")
	}
	subs := func() int {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.subs)
	}
	if subs() == 0 {
		t.Fatal("no stage-hook subscription registered for the stream")
	}

	// Drop the connection mid-Simulate.
	scancel()
	resp.Body.Close()

	// The subscription must unwind long before the job finishes.
	deadline := time.Now().Add(10 * time.Second)
	for subs() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stage-hook subscription leaked after client disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The job still completes for its POST waiter.
	out := <-resc
	if out.code != http.StatusOK {
		t.Fatalf("job after observer disconnect = %d: %s", out.code, out.body)
	}

	// The worker slot is free (Workers=1: a stuck slot rejects or hangs).
	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusOK {
		t.Fatalf("post-disconnect submit = %d: %s", code, body)
	}

	// No goroutine survived the dropped stream: with the leader gone the
	// count settles at or below the mid-job baseline.
	deadline = time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d mid-job", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const testSweepBody = `{"name":"t","frames":1,"axes":{"designs":["SW","SW+1"],"caches":[{"i":0,"d":0},{"i":8192,"d":4096}]}}`

func TestDSEEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})

	resp, err := ts.Client().Post(ts.URL+"/v1/dse", "application/json", strings.NewReader(testSweepBody))
	if err != nil {
		t.Fatalf("POST /v1/dse: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var res dse.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("sweep produced %d rows, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.EndPs == 0 {
			t.Fatalf("row %d has no timing: %+v", r.Index, r)
		}
	}
	if len(res.Pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The sweep ran against the daemon's shared cache.
	if cs := srv.Cache().Stats(); cs.SchedHits+cs.EstHits == 0 {
		t.Fatal("sweep bypassed the shared cache")
	}

	// Bad inputs are 400s.
	for _, bad := range []struct{ url, body string }{
		{"/v1/dse", `{"axes":{"designz":["SW"]}}`},
		{"/v1/dse", `not json`},
		{"/v1/dse?shards=0", testSweepBody},
		{"/v1/dse?shards=9999", testSweepBody},
		{"/v1/dse?workers=-1", testSweepBody},
	} {
		resp, err := ts.Client().Post(ts.URL+bad.url, "application/json", strings.NewReader(bad.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s with %q = %d, want 400", bad.url, bad.body, resp.StatusCode)
		}
	}

	// GET is not allowed.
	gresp, err := ts.Client().Get(ts.URL + "/v1/dse")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/dse = %d, want 405", gresp.StatusCode)
	}
}

func TestDSEStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	resp, err := ts.Client().Post(ts.URL+"/v1/dse?stream=1&shards=2", "application/json", strings.NewReader(testSweepBody))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("stream content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var progress []dse.Progress
	var done dseDone
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			event = ev
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		switch event {
		case "progress":
			var p dse.Progress
			if err := json.Unmarshal([]byte(data), &p); err != nil {
				t.Fatalf("progress decode: %v", err)
			}
			progress = append(progress, p)
		case "done":
			if err := json.Unmarshal([]byte(data), &done); err != nil {
				t.Fatalf("done decode: %v", err)
			}
		}
	}
	if done.State != "ok" || done.Result == nil {
		t.Fatalf("done = %+v", done)
	}
	if len(done.Result.Rows) != 4 {
		t.Fatalf("streamed result has %d rows", len(done.Result.Rows))
	}
	if len(progress) == 0 {
		t.Fatal("no progress events streamed")
	}
	shards := map[int]bool{}
	for _, p := range progress {
		if p.Total != 4 || p.Shard < 0 || p.Shard > 1 {
			t.Fatalf("bad progress event %+v", p)
		}
		shards[p.Shard] = true
	}
	if len(shards) != 2 {
		t.Fatalf("progress covered shards %v, want both", shards)
	}
}

func TestDSEAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// One sweep at a time: with the gate held, submissions bounce 429.
	if !s.dse.acquire() {
		t.Fatal("gate busy on a fresh server")
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/dse", "application/json", strings.NewReader(testSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy sweep = %d, want 429: %s", resp.StatusCode, body)
	}
	s.dse.release()

	// Draining refuses sweeps with 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/dse", "application/json", strings.NewReader(testSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep = %d, want 503", resp.StatusCode)
	}
}
