package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"ese/internal/cli"
	"ese/internal/diag"
	"ese/internal/jobspec"
)

// maxBodyBytes bounds a job request body. Specs carry source text inline;
// 4 MiB is orders of magnitude above any example while still refusing
// abuse.
const maxBodyBytes = 4 << 20

// StatusClientClosedRequest is the nginx-convention status reported when
// the job was canceled (by the client going away or an explicit DELETE)
// rather than failing on its own.
const StatusClientClosedRequest = 499

// Handler returns the daemon's HTTP surface:
//
//	POST   /v1/jobs              submit a job spec, wait for the result
//	GET    /v1/jobs/{fp}         status of an in-flight job
//	DELETE /v1/jobs/{fp}         cancel an in-flight job
//	GET    /v1/jobs/{fp}/events  SSE stream of stage-completion events
//	POST   /v1/dse               run a design-space sweep (?stream=1 or an
//	                             SSE Accept header streams shard progress)
//	GET    /healthz              liveness (503 while draining)
//	GET    /metrics              metric snapshot (JSON; ?format=prom for
//	                             Prometheus text exposition)
//	GET    /debug/pprof/...      runtime profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/dse", s.handleDSE)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Result carries the partial result (diagnostics, degradation tallies)
	// of a failed job, when one exists.
	Result *jobspec.Result `json:"result,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, err error, res *jobspec.Result) {
	writeJSON(w, status, errorBody{Error: err.Error(), Result: res})
}

// jobStatusCode maps a job error onto the HTTP status table documented in
// README.md. It deliberately reuses the CLI exit-code classification, so
// the daemon and the commands agree on what counts as the user's fault:
// exit 2 (usage/input) maps to 400, deadline to 504, cancellation to 499,
// everything else to 500.
func jobStatusCode(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, diag.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, diag.ErrCanceled):
		return StatusClientClosedRequest
	case cli.ExitCode(err) == cli.ExitUsage:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// admissionStatusCode maps submit() errors: drain to 503, capacity to 429.
func admissionStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantLimit):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// handleJobs is POST /v1/jobs: decode, validate, coalesce, wait, respond.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST a job spec"), nil)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err), nil)
		return
	}
	spec, err := jobspec.ParseJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, nil)
		return
	}
	f, err := s.submit(spec, r.Header.Get("X-Tenant"))
	if err != nil {
		writeError(w, admissionStatusCode(err), err, nil)
		return
	}
	w.Header().Set("X-Job-Fingerprint", f.fp)
	select {
	case <-f.done:
		if f.err != nil {
			writeError(w, jobStatusCode(f.err), f.err, f.res)
			return
		}
		writeJSON(w, http.StatusOK, f.res)
	case <-r.Context().Done():
		// The client went away; release our waiter slot (canceling the job
		// if we were the last) and note the outcome for anyone tracing.
		s.leave(f)
		writeError(w, StatusClientClosedRequest, diag.FromContext(r.Context()), nil)
	}
}

// handleJob routes /v1/jobs/{fp} and /v1/jobs/{fp}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if fp, ok := strings.CutSuffix(rest, "/events"); ok {
		s.handleEvents(w, r, fp)
		return
	}
	fp := rest
	switch r.Method {
	case http.MethodGet:
		f := s.lookup(fp)
		if f == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight job %s", fp), nil)
			return
		}
		writeJSON(w, http.StatusOK, f.status())
	case http.MethodDelete:
		if !s.CancelJob(fp) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight job %s", fp), nil)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"canceled": fp})
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE"), nil)
	}
}

// handleEvents is GET /v1/jobs/{fp}/events: a Server-Sent Events stream of
// stage completions. Completed stages are replayed, then events stream as
// the pipeline advances; a final "done" event carries the job's terminal
// state ("ok", "canceled", "deadline" or "error") and closes the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, fp string) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET an event stream"), nil)
		return
	}
	f := s.lookup(fp)
	if f == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight job %s", fp), nil)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"), nil)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	send := func(ev StageEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if !s.sseWrite(w, r, "stage", data) {
			return false
		}
		fl.Flush()
		return true
	}
	replay, ch, unsub := f.subscribe()
	defer unsub()
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if !send(ev) {
				return
			}
		case <-f.done:
			// Flush any events that raced with completion, then finish.
			for {
				select {
				case ev := <-ch:
					if !send(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			state := "ok"
			switch {
			case f.err == nil:
			case errors.Is(f.err, diag.ErrDeadline):
				state = "deadline"
			case errors.Is(f.err, diag.ErrCanceled):
				state = "canceled"
			default:
				state = "error"
			}
			s.sseWrite(w, r, "done", []byte(fmt.Sprintf("{\"state\":%q}", state)))
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// sseWriteTimeout bounds one SSE write. A client that stops reading
// without closing (half-open connection, stalled proxy) fills the socket
// buffer and would otherwise block the handler goroutine inside Fprintf
// for as long as the job runs — a goroutine and subscription leak the
// request context never unwinds, because nothing cancels it. The
// deadline turns the stall into a write error; the handler returns and
// its deferred unsubscribe runs.
const sseWriteTimeout = 15 * time.Second

// sseWrite emits one SSE event under a write deadline. It reports false
// when the client is gone or stalled; the caller must stop streaming.
func (s *Server) sseWrite(w http.ResponseWriter, r *http.Request, event string, data []byte) bool {
	rc := http.NewResponseController(w)
	// Deadline errors are deliberately ignored: a ResponseWriter that
	// does not support deadlines (custom middleware) still streams, it
	// just keeps the legacy unbounded-write behavior.
	_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err == nil
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics is GET /metrics: the shared registry's snapshot with the
// shared cache's counters folded in (same names the pipeline's
// MetricsSnapshot uses). JSON by default; ?format=prom (or an Accept
// header preferring text/plain) selects the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	cs := s.cache.Stats()
	snap.Counters["cache.sched.hits"] = cs.SchedHits
	snap.Counters["cache.sched.misses"] = cs.SchedMisses
	snap.Counters["cache.est.hits"] = cs.EstHits
	snap.Counters["cache.est.misses"] = cs.EstMisses
	snap.Counters["cache.evictions"] = cs.Evictions
	sched, est := s.cache.Len()
	snap.Gauges["cache.entries.sched"] = int64(sched)
	snap.Gauges["cache.entries.est"] = int64(est)

	prom := r.URL.Query().Get("format") == "prom" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain")
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = snap.WriteProm(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}
