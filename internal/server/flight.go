package server

import (
	"context"
	"sync"
	"time"

	"ese/internal/diag"
	"ese/internal/jobspec"
)

// Flight states reported by the status endpoint.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// StageEvent is one pipeline stage completion, streamed to progress
// subscribers and replayed to late ones.
type StageEvent struct {
	// Stage names the completed pipeline stage ("parse", "annotate", ...).
	Stage string `json:"stage"`
	// ElapsedNs is the stage's wall-clock duration.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Seq numbers the event within its job, from zero.
	Seq int `json:"seq"`
}

// flight is one in-progress job execution: the singleflight unit under
// which concurrent identical requests coalesce. Exactly one leader
// goroutine executes the spec; every HTTP request holding the flight is a
// waiter. The flight's context is derived from the server's base context,
// so server drain cancels it; it is also canceled when the last waiter
// departs or an explicit DELETE arrives.
type flight struct {
	fp     string
	spec   *jobspec.Spec
	tenant string

	ctx    context.Context
	cancel context.CancelFunc

	// done closes after res/err are set and the flight left the table.
	done chan struct{}
	res  *jobspec.Result
	err  error

	mu      sync.Mutex
	state   string
	waiters int
	stages  []StageEvent
	subs    map[chan StageEvent]struct{}
}

func newFlight(base context.Context, fp, tenant string, spec *jobspec.Spec) *flight {
	ctx, cancel := context.WithCancel(base)
	return &flight{
		fp:      fp,
		spec:    spec,
		tenant:  tenant,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		waiters: 1,
		subs:    make(map[chan StageEvent]struct{}),
	}
}

// publish records one stage completion and fans it out to subscribers.
// It is the pipeline's StageHook, so it must be cheap and goroutine-safe;
// a subscriber that cannot keep up loses events rather than stalling the
// job (the replay on subscribe plus the final done notification keep the
// stream's end state correct regardless).
func (f *flight) publish(stage diag.Stage, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev := StageEvent{Stage: string(stage), ElapsedNs: d.Nanoseconds(), Seq: len(f.stages)}
	f.stages = append(f.stages, ev)
	for ch := range f.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a progress listener. The returned slice replays the
// stages already completed; the channel carries the rest. The caller must
// invoke the returned cancel function when it stops listening.
func (f *flight) subscribe() ([]StageEvent, <-chan StageEvent, func()) {
	ch := make(chan StageEvent, 64)
	f.mu.Lock()
	replay := append([]StageEvent(nil), f.stages...)
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	return replay, ch, func() {
		f.mu.Lock()
		delete(f.subs, ch)
		f.mu.Unlock()
	}
}

func (f *flight) setState(s string) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

// status is the GET /v1/jobs/{fp} view of the flight.
func (f *flight) status() JobStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return JobStatus{
		Fingerprint: f.fp,
		State:       f.state,
		Waiters:     f.waiters,
		Stages:      append([]StageEvent(nil), f.stages...),
	}
}

// JobStatus is the JSON body of the job status endpoint.
type JobStatus struct {
	Fingerprint string       `json:"fingerprint"`
	State       string       `json:"state"`
	Waiters     int          `json:"waiters"`
	Stages      []StageEvent `json:"stages,omitempty"`
}
