// Package server implements the esed estimation daemon: an HTTP/JSON
// front end over the shared internal/jobspec surface. Clients POST job
// specs and receive estimates, TLM results, attribution profiles and
// structured diagnostics; the daemon multiplexes every request onto one
// process-wide content-addressed schedule/estimate cache, so a fleet of
// clients estimating the same programs against the same PE models warms
// a single cache instead of recompiling per connection.
//
// Concurrency model:
//
//   - Every request is one waiter on one flight (see flight.go). Requests
//     whose specs share a fingerprint coalesce onto the same flight: one
//     leader executes the job, every waiter receives the same result.
//   - At most Config.Workers flights execute simultaneously; up to
//     Config.QueueDepth more may be admitted and queue for a worker slot.
//     Beyond that, submissions are rejected with 429.
//   - Per-tenant fairness: a tenant (the X-Tenant request header) may have
//     at most Config.TenantMax flights active at once.
//   - Cancellation rides the internal/diag context plumbing: a request
//     deadline maps to the job context, the last departing waiter cancels
//     the flight, and pipeline stages return diag.ErrCanceled /
//     diag.ErrDeadline with stage-tagged diagnostics.
//   - Shutdown drains: new submissions are refused with 503, in-flight
//     jobs are canceled (their waiters see diag.ErrCanceled), and Shutdown
//     returns when every leader has exited.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/jobspec"
	"ese/internal/metrics"
)

// Config sizes the daemon.
type Config struct {
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted beyond the executing ones (0 = none:
	// a job is either running or rejected).
	QueueDepth int
	// TenantMax bounds the flights one tenant may have active (0 = no
	// per-tenant bound).
	TenantMax int
	// DefaultTimeout bounds jobs whose spec carries no timeout (0 = none).
	DefaultTimeout time.Duration
	// CacheLimit bounds the shared schedule/estimate cache, entries per
	// side (0 = unbounded).
	CacheLimit int
}

// Sentinel admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrDraining rejects submissions while the server shuts down (503).
	ErrDraining = errors.New("server draining")
	// ErrQueueFull rejects submissions beyond Workers+QueueDepth (429).
	ErrQueueFull = errors.New("job queue full")
	// ErrTenantLimit rejects a tenant beyond its concurrency bound (429).
	ErrTenantLimit = errors.New("tenant concurrency limit reached")
)

// Server owns the shared cache, the metric registry and the flight table.
type Server struct {
	cfg    Config
	runner jobspec.Runner
	cache  *core.Cache
	reg    *metrics.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc

	sem chan struct{} // worker slots
	wg  sync.WaitGroup

	mu       sync.Mutex
	flights  map[string]*flight
	tenants  map[string]int
	draining bool

	// dse serializes design-space sweeps (one per daemon; see dse.go).
	dse dseGate

	executed  *metrics.Counter // leader runs started
	coalesced *metrics.Counter // requests that joined an existing flight
	rejected  *metrics.Counter // admissions refused (queue/tenant/drain)
	canceled  *metrics.Counter // flights canceled before completion
	completed *metrics.Counter // flights finished without error
	failed    *metrics.Counter // flights finished with an error
	active    *metrics.Gauge   // flights currently in the table
}

// New builds a Server. The zero Config is usable: GOMAXPROCS workers, no
// queue, no tenant bound, unbounded cache.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	reg := metrics.NewRegistry()
	cache := core.NewCacheLimit(cfg.CacheLimit)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		runner: jobspec.Runner{
			Cache:          cache,
			Metrics:        reg,
			DefaultTimeout: cfg.DefaultTimeout,
		},
		cache:      cache,
		reg:        reg,
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Workers),
		flights:    make(map[string]*flight),
		tenants:    make(map[string]int),
		executed:   reg.Counter("server.jobs.executed"),
		coalesced:  reg.Counter("server.jobs.coalesced"),
		rejected:   reg.Counter("server.jobs.rejected"),
		canceled:   reg.Counter("server.jobs.canceled"),
		completed:  reg.Counter("server.jobs.completed"),
		failed:     reg.Counter("server.jobs.failed"),
		active:     reg.Gauge("server.flights.active"),
	}
	return s
}

// Cache exposes the shared schedule/estimate cache (tests, introspection).
func (s *Server) Cache() *core.Cache { return s.cache }

// Metrics exposes the shared registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// submit admits a validated spec: it either joins an existing flight with
// the same fingerprint or creates one, starting a leader goroutine. The
// caller holds one waiter slot on the returned flight and must release it
// with leave() if it stops waiting before the flight completes.
func (s *Server) submit(spec *jobspec.Spec, tenant string) (*flight, error) {
	fp := spec.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Inc()
		return nil, ErrDraining
	}
	if f, ok := s.flights[fp]; ok {
		f.mu.Lock()
		f.waiters++
		f.mu.Unlock()
		s.coalesced.Inc()
		return f, nil
	}
	if len(s.flights) >= s.cfg.Workers+s.cfg.QueueDepth {
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	if s.cfg.TenantMax > 0 && s.tenants[tenant] >= s.cfg.TenantMax {
		s.rejected.Inc()
		return nil, fmt.Errorf("%w (tenant %q, limit %d)", ErrTenantLimit, tenant, s.cfg.TenantMax)
	}
	f := newFlight(s.baseCtx, fp, tenant, spec)
	s.flights[fp] = f
	s.tenants[tenant]++
	s.active.Set(int64(len(s.flights)))
	s.wg.Add(1)
	go s.lead(f)
	return f, nil
}

// lead is the flight's leader goroutine: wait for a worker slot, execute
// the job, publish the outcome, release the table entry.
func (s *Server) lead(f *flight) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-f.ctx.Done():
		// Canceled while queued: no pipeline ran, so synthesize the typed
		// cancellation error the stages would have returned.
		f.err = diag.FromContext(f.ctx)
		s.finish(f)
		return
	}
	f.setState(StateRunning)
	s.executed.Inc()
	f.res, f.err = s.runner.RunWith(f.ctx, f.spec, jobspec.RunOpts{StageHook: f.publish})
	<-s.sem
	s.finish(f)
}

// finish removes the flight from the table and wakes every waiter. The
// removal happens before done closes, so a request arriving after
// completion starts a fresh flight (results are not memoized here — the
// schedule/estimate cache underneath makes the re-run cheap and the
// response reflects a real execution).
func (s *Server) finish(f *flight) {
	s.mu.Lock()
	delete(s.flights, f.fp)
	if n := s.tenants[f.tenant] - 1; n > 0 {
		s.tenants[f.tenant] = n
	} else {
		delete(s.tenants, f.tenant)
	}
	s.active.Set(int64(len(s.flights)))
	s.mu.Unlock()
	if f.err != nil {
		s.failed.Inc()
	} else {
		s.completed.Inc()
	}
	f.setState(StateDone)
	f.cancel() // release the context's resources
	close(f.done)
}

// leave releases one waiter slot. When the last waiter departs before the
// flight completes, the job is canceled — nobody is listening for the
// answer, so the worker slot is worth more than the result.
func (s *Server) leave(f *flight) {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0 && f.state != StateDone
	f.mu.Unlock()
	if last {
		s.canceled.Inc()
		f.cancel()
	}
}

// lookup returns the in-flight job with the given fingerprint, nil when
// none is active.
func (s *Server) lookup(fp string) *flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flights[fp]
}

// CancelJob cancels the in-flight job with the given fingerprint. It
// reports whether such a job existed.
func (s *Server) CancelJob(fp string) bool {
	f := s.lookup(fp)
	if f == nil {
		return false
	}
	s.canceled.Inc()
	f.cancel()
	return true
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: new submissions are refused with
// ErrDraining, every in-flight job is canceled (waiters observe
// diag.ErrCanceled), and the call returns when all leaders have exited or
// the context expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	fl := make([]*flight, 0, len(s.flights))
	for _, f := range s.flights {
		fl = append(fl, f)
	}
	s.mu.Unlock()
	for _, f := range fl {
		s.canceled.Inc()
		f.cancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	defer s.baseCancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}
