package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ese/internal/jobspec"
	"ese/internal/metrics"
)

const dotSrc = `int a[8]; int b[8];
void main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 8; i++) { a[i] = i; b[i] = 2 * i; }
  for (i = 0; i < 8; i++) acc = acc + a[i] * b[i];
  out(acc);
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = time.Minute // nothing in these tests should run away
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func estimateSpec() *jobspec.Spec {
	s := jobspec.Default()
	s.Source = jobspec.Source{Name: "dot.c", Code: dotSrc}
	return &s
}

// slowTLMSpec simulates ~74M IR instructions (frames=40), long enough
// that concurrent submissions reliably land while the leader runs.
func slowTLMSpec() *jobspec.Spec {
	s := jobspec.DefaultTLM()
	s.Frames = 40
	s.Calibrate = false
	// Pin the tree-walking engine: these tests need a wide in-flight
	// window to observe/cancel the job, and the generated tier finishes
	// this workload in milliseconds.
	s.Exec = "tree"
	return &s
}

func mustBody(t *testing.T, s *jobspec.Spec) []byte {
	t.Helper()
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	return data
}

// postJobErr submits a job and returns the response; safe to call from
// helper goroutines (no t.Fatal).
func postJobErr(ts *httptest.Server, body []byte, tenant string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func postJob(t *testing.T, ts *httptest.Server, body []byte, tenant string) (int, []byte) {
	t.Helper()
	code, data, err := postJobErr(ts, body, tenant)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return code, data
}

// waitForState polls the status endpoint until the job reaches the state.
func waitForState(t *testing.T, ts *httptest.Server, fp, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + fp)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil && st.State == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", fp, state)
}

func TestHealthzMetricsAndJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusOK {
		t.Fatalf("POST status = %d: %s", code, body)
	}
	var res jobspec.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if res.Kind != jobspec.KindEstimate || res.Summary == "" || len(res.Blocks) == 0 {
		t.Fatalf("thin result: %+v", res)
	}
	if res.Fingerprint != estimateSpec().Fingerprint() {
		t.Fatal("server fingerprint differs from the client-side one")
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var snap metrics.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if snap.Counters["server.jobs.executed"] != 1 {
		t.Fatalf("executed = %d, want 1", snap.Counters["server.jobs.executed"])
	}
	if snap.Counters["cache.sched.misses"] == 0 {
		t.Fatal("shared cache saw no traffic")
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("metrics prom: %v", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prom content type = %q", ct)
	}
	if !strings.Contains(string(prom), "server_jobs_executed 1") {
		t.Fatalf("prom exposition missing executed counter:\n%s", prom)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _ := postJob(t, ts, []byte(`{"kind":"nope"}`), "")
	if code != http.StatusBadRequest {
		t.Fatalf("bad kind status = %d, want 400", code)
	}
	code, _ = postJob(t, ts, []byte(`{"kind":"tlm","design":"SW","framez":1}`), "")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs status = %d, want 405", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatalf("GET unknown job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}

	// A front-end failure (parse error) maps to 400, like CLI exit 2.
	bad := estimateSpec()
	bad.Source.Code = "void main( {"
	code, _ = postJob(t, ts, mustBody(t, bad), "")
	if code != http.StatusBadRequest {
		t.Fatalf("parse failure status = %d, want 400", code)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	s := slowTLMSpec()
	s.Timeout = jobspec.Duration(time.Millisecond)
	code, body := postJob(t, ts, mustBody(t, s), "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504: %s", code, body)
	}
}

// TestCoalescing is the acceptance check: 8 concurrent identical jobs on a
// fresh server perform exactly one cache-miss compile (the shared cache's
// miss counters match a single-job baseline), one execution, and return
// bit-identical response bodies.
func TestCoalescing(t *testing.T) {
	// Baseline: the same job alone on a fresh server.
	bs, base := newTestServer(t, Config{Workers: 4})
	code, _ := postJob(t, base, mustBody(t, slowTLMSpec()), "")
	if code != http.StatusOK {
		t.Fatalf("baseline status = %d", code)
	}
	baseMisses := bs.Cache().Stats().SchedMisses
	if baseMisses == 0 {
		t.Fatal("baseline did no compiles")
	}

	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	const n = 8
	body := mustBody(t, slowTLMSpec())
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			codes[i], bodies[i] = postJob(t, ts, body, fmt.Sprintf("tenant%d", i))
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d status = %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\n----\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := s.Metrics().Counter("server.jobs.executed").Value(); got != 1 {
		t.Fatalf("executed = %d, want exactly 1", got)
	}
	if got := s.Metrics().Counter("server.jobs.coalesced").Value(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	if got := s.Cache().Stats().SchedMisses; got != baseMisses {
		t.Fatalf("8 concurrent jobs compiled %d schedules, single job compiles %d", got, baseMisses)
	}
}

func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	slow := slowTLMSpec()
	fp := slow.Fingerprint()
	go postJobErr(ts, mustBody(t, slow), "")
	waitForState(t, ts, fp, StateRunning)

	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429: %s", code, body)
	}

	// An identical job still coalesces — coalescing does not consume a
	// queue slot.
	code, _ = postJob(t, ts, mustBody(t, slow), "")
	if code != http.StatusOK {
		t.Fatalf("coalesced-while-full status = %d, want 200", code)
	}

	// The slot frees once the job completes.
	code, _ = postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusOK {
		t.Fatalf("after-drain status = %d, want 200", code)
	}
}

func TestTenantLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16, TenantMax: 1})
	slow := slowTLMSpec()
	go postJobErr(ts, mustBody(t, slow), "alice")
	waitForState(t, ts, slow.Fingerprint(), StateRunning)

	// Same tenant, different job: over the per-tenant bound.
	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant-limit status = %d, want 429: %s", code, body)
	}
	// Another tenant is unaffected.
	code, _ = postJob(t, ts, mustBody(t, estimateSpec()), "bob")
	if code != http.StatusOK {
		t.Fatalf("other-tenant status = %d, want 200", code)
	}
}

// TestCancelMidSimulate drives the satellite scenario end to end: an HTTP
// job canceled mid-Simulate comes back 499 with a StageSimulate-tagged
// cancellation diagnostic, frees its queue slot, and leaves the shared
// cache serving correct results.
func TestCancelMidSimulate(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	slow := slowTLMSpec()
	fp := slow.Fingerprint()

	type outcome struct {
		code int
		body []byte
	}
	resc := make(chan outcome, 1)
	go func() {
		code, body := postJob(t, ts, mustBody(t, slow), "")
		resc <- outcome{code, body}
	}()
	waitForState(t, ts, fp, StateRunning)

	// Follow the progress stream until the annotation stage completes —
	// from there the job is inside (or entering) the Simulate stage.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + fp + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("events content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sawAnnotate := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"stage":"annotate"`) {
			sawAnnotate = true
			break
		}
	}
	if !sawAnnotate {
		t.Fatal("event stream ended without an annotate stage event")
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+fp, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", dresp.StatusCode)
	}

	out := <-resc
	if out.code != StatusClientClosedRequest {
		t.Fatalf("canceled job status = %d, want 499: %s", out.code, out.body)
	}
	var eb struct {
		Error  string          `json:"error"`
		Result *jobspec.Result `json:"result"`
	}
	if err := json.Unmarshal(out.body, &eb); err != nil {
		t.Fatalf("error body decode: %v", err)
	}
	if eb.Result == nil {
		t.Fatal("canceled job carries no partial result")
	}
	tagged := false
	for _, d := range eb.Result.Diagnostics {
		if strings.Contains(d, "simulate") && strings.Contains(d, "cancel") {
			tagged = true
		}
	}
	if !tagged {
		t.Fatalf("no StageSimulate cancellation diagnostic in %q", eb.Result.Diagnostics)
	}

	// The queue slot is free again (Workers=1, QueueDepth=0: a stuck slot
	// would reject this outright or deadlock it).
	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusOK {
		t.Fatalf("post-cancel status = %d: %s", code, body)
	}

	// The shared cache was not poisoned: the same job completes and agrees
	// with an execution on a fresh, never-canceled server.
	before := srv.Cache().Stats()
	code, body = postJob(t, ts, mustBody(t, slow), "")
	if code != http.StatusOK {
		t.Fatalf("re-run status = %d: %s", code, body)
	}
	var rerun jobspec.Result
	if err := json.Unmarshal(body, &rerun); err != nil {
		t.Fatalf("re-run decode: %v", err)
	}
	if rerun.TLM == nil || rerun.TLM.CyclesByPE["mb"] == 0 {
		t.Fatalf("re-run result thin: %+v", rerun.TLM)
	}
	after := srv.Cache().Stats()
	if after.SchedMisses != before.SchedMisses {
		t.Fatalf("re-run recompiled schedules after the cancel: %+v -> %+v", before, after)
	}
	if after.EstHits == before.EstHits && after.SchedHits == before.SchedHits {
		t.Fatal("re-run did not reuse the shared cache")
	}

	_, fresh := newTestServer(t, Config{Workers: 1})
	code, body = postJob(t, fresh, mustBody(t, slow), "")
	if code != http.StatusOK {
		t.Fatalf("fresh-server status = %d", code)
	}
	var ref jobspec.Result
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatalf("fresh decode: %v", err)
	}
	if rerun.TLM.CyclesByPE["mb"] != ref.TLM.CyclesByPE["mb"] || rerun.TLM.EndPs != ref.TLM.EndPs {
		t.Fatalf("post-cancel cache served wrong results: %+v vs %+v", rerun.TLM, ref.TLM)
	}
}

func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	slow := slowTLMSpec()
	fp := slow.Fingerprint()
	type outcome struct {
		code int
		body []byte
	}
	resc := make(chan outcome, 1)
	go func() {
		code, body := postJob(t, ts, mustBody(t, slow), "")
		resc <- outcome{code, body}
	}()
	waitForState(t, ts, fp, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	out := <-resc
	if out.code != StatusClientClosedRequest {
		t.Fatalf("drained job status = %d, want 499: %s", out.code, out.body)
	}

	code, body := postJob(t, ts, mustBody(t, estimateSpec()), "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503: %s", code, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
}

func TestWaiterDepartureCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	slow := slowTLMSpec()
	fp := slow.Fingerprint()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(mustBody(t, slow)))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	waitForState(t, ts, fp, StateRunning)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}

	// The sole waiter left, so the flight unwinds; the table empties.
	deadline := time.Now().Add(30 * time.Second)
	for s.lookup(fp) != nil {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never unwound")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Metrics().Counter("server.jobs.canceled").Value(); got == 0 {
		t.Fatal("waiter departure did not count as a cancellation")
	}
}
