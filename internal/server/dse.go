package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"ese/internal/diag"
	"ese/internal/dse"
)

// maxDSEShards bounds the requested shard count — shards are a progress
// granularity, not a parallelism knob, and an absurd count only bloats
// the event stream.
const maxDSEShards = 256

// dseBusy serializes sweeps: one design-space exploration at a time per
// daemon. A sweep fans out its own worker pool over the shared cache, so
// two concurrent sweeps would fight each other (and every interactive
// job) for cores without finishing any faster.
type dseGate struct{ busy atomic.Bool }

func (g *dseGate) acquire() bool { return g.busy.CompareAndSwap(false, true) }
func (g *dseGate) release()      { g.busy.Store(false) }

// ErrSweepActive rejects a sweep while another one runs (429).
var ErrSweepActive = errors.New("a sweep is already running")

// dseDone is the terminal payload of a streamed sweep: mirror of the job
// stream's "done" event, carrying the full result on success.
type dseDone struct {
	State  string      `json:"state"` // ok | canceled | error
	Error  string      `json:"error,omitempty"`
	Result *dse.Result `json:"result,omitempty"`
}

// handleDSE is POST /v1/dse: decode a sweep description, expand and run
// it through the daemon's shared Runner (and therefore the shared
// schedule/estimate cache), and respond with the full result — or, when
// the client asks for text/event-stream (or ?stream=1), stream per-shard
// progress events over SSE and finish with a "done" event carrying the
// result. Query parameters: shards (progress granularity, default 1) and
// workers (parallel points, capped at the daemon's worker bound).
//
// Sweeps are admitted outside the job queue — they carry their own
// parallelism — but at most one runs at a time (429 otherwise), and
// draining refuses new sweeps with 503. Client disconnect mid-stream
// cancels the sweep; checkpoint/resume is a CLI concern (the daemon
// never touches client-named paths).
func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST a sweep description"), nil)
		return
	}
	if s.Draining() {
		s.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, ErrDraining, nil)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err), nil)
		return
	}
	sweep, err := dse.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, nil)
		return
	}
	q := r.URL.Query()
	shards := 1
	if v := q.Get("shards"); v != "" {
		shards, err = strconv.Atoi(v)
		if err != nil || shards < 1 || shards > maxDSEShards {
			writeError(w, http.StatusBadRequest, fmt.Errorf("shards must be 1..%d", maxDSEShards), nil)
			return
		}
	}
	workers := 0
	if v := q.Get("workers"); v != "" {
		workers, err = strconv.Atoi(v)
		if err != nil || workers < 0 {
			writeError(w, http.StatusBadRequest, errors.New("workers must be non-negative"), nil)
			return
		}
	}
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	if !s.dse.acquire() {
		s.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, ErrSweepActive, nil)
		return
	}
	defer s.dse.release()
	s.reg.Counter("server.dse.sweeps").Inc()

	// The sweep dies with the client or with server drain, whichever
	// comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	stream := q.Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		res, err := dse.Run(ctx, sweep, dse.Options{
			Shards:  shards,
			Workers: workers,
			Runner:  &s.runner,
		})
		if err != nil {
			writeError(w, dseStatusCode(err), err, nil)
			return
		}
		s.reg.Counter("server.dse.points").Add(uint64(res.Summary.Points))
		writeJSON(w, http.StatusOK, res)
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"), nil)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// Progress events arrive on runner worker goroutines; the handler
	// goroutine owns the connection, so they cross a buffered channel.
	// A full buffer drops events — progress is advisory, the final done
	// event carries the authoritative result.
	progress := make(chan dse.Progress, 256)
	type outcome struct {
		res *dse.Result
		err error
	}
	resc := make(chan outcome, 1)
	go func() {
		res, err := dse.Run(ctx, sweep, dse.Options{
			Shards:  shards,
			Workers: workers,
			Runner:  &s.runner,
			Progress: func(p dse.Progress) {
				select {
				case progress <- p:
				default:
				}
			},
		})
		resc <- outcome{res, err}
	}()

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if !s.sseWrite(w, r, event, data) {
			cancel()
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case p := <-progress:
			if !send("progress", p) {
				<-resc // let the canceled run unwind before returning
				return
			}
		case out := <-resc:
			// Flush progress that raced with completion.
			for {
				select {
				case p := <-progress:
					if !send("progress", p) {
						return
					}
					continue
				default:
				}
				break
			}
			done := dseDone{State: "ok", Result: out.res}
			if out.err != nil {
				done = dseDone{State: "error", Error: out.err.Error()}
				if errors.Is(out.err, diag.ErrCanceled) || errors.Is(out.err, context.Canceled) {
					done.State = "canceled"
				}
			} else {
				s.reg.Counter("server.dse.points").Add(uint64(out.res.Summary.Points))
			}
			send("done", done)
			return
		case <-ctx.Done():
			out := <-resc // the run observes the same context; wait it out
			_ = out
			return
		}
	}
}

// dseStatusCode maps sweep errors: cancellation to 499, deadline to 504,
// everything else (a failing point) to 500. Validation failures were
// already 400 at parse time.
func dseStatusCode(err error) int {
	switch {
	case errors.Is(err, diag.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, diag.ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}
