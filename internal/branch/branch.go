// Package branch implements the branch predictors of the cycle-accurate
// board model: a static not-taken predictor (the MicroBlaze-like core) and
// a 2-bit saturating-counter bimodal predictor. Calibration profiles these
// to obtain the statistical misprediction ratio of the PUM branch model.
package branch

import "fmt"

// Predictor predicts conditional branch outcomes by program counter.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint32, taken bool)
	// Name identifies the predictor kind.
	Name() string
}

// Stats wraps a predictor and counts mispredictions.
type Stats struct {
	P          Predictor
	Branches   uint64
	Mispredict uint64
}

// Resolve predicts, updates, and returns whether the prediction missed.
func (s *Stats) Resolve(pc uint32, taken bool) bool {
	pred := s.P.Predict(pc)
	s.P.Update(pc, taken)
	s.Branches++
	if pred != taken {
		s.Mispredict++
		return true
	}
	return false
}

// MissRate returns the observed misprediction ratio (0 when no branches).
func (s *Stats) MissRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredict) / float64(s.Branches)
}

// Reset clears counters but keeps predictor training state.
func (s *Stats) Reset() {
	s.Branches = 0
	s.Mispredict = 0
}

// StaticNotTaken always predicts not-taken.
type StaticNotTaken struct{}

// Predict implements Predictor.
func (StaticNotTaken) Predict(uint32) bool { return false }

// Update implements Predictor.
func (StaticNotTaken) Update(uint32, bool) {}

// Name implements Predictor.
func (StaticNotTaken) Name() string { return "static-nt" }

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	counters []uint8
	mask     uint32
}

// NewBimodal creates a predictor with the given table size. The size must
// be a positive power of two (the PC hash is a mask); anything else is an
// error rather than a panic, so a malformed model description cannot kill
// the process.
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("branch: bimodal entries must be a positive power of two, got %d", entries)
	}
	b := &Bimodal{counters: make([]uint8, entries), mask: uint32(entries - 1)}
	// Initialize to weakly not-taken.
	for i := range b.counters {
		b.counters[i] = 1
	}
	return b, nil
}

func (b *Bimodal) idx(pc uint32) uint32 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint32) bool { return b.counters[b.idx(pc)] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := b.idx(pc)
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "2bit" }
