package branch

import "testing"

func TestStaticNotTaken(t *testing.T) {
	s := &Stats{P: StaticNotTaken{}}
	// Loop branch taken 9 times, not taken once.
	for i := 0; i < 9; i++ {
		s.Resolve(0x40, true)
	}
	s.Resolve(0x40, false)
	if s.Branches != 10 || s.Mispredict != 9 {
		t.Fatalf("stats = %d/%d, want 10/9", s.Branches, s.Mispredict)
	}
	if s.MissRate() != 0.9 {
		t.Fatalf("miss rate = %v, want 0.9", s.MissRate())
	}
}

func TestBimodalLearnsLoop(t *testing.T) {
	s := &Stats{P: mustBimodal(t, 256)}
	// A loop branch taken 99 times then not taken: after warmup the
	// predictor should be nearly perfect.
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 99; i++ {
			s.Resolve(0x80, true)
		}
		s.Resolve(0x80, false)
	}
	if s.MissRate() > 0.05 {
		t.Fatalf("bimodal miss rate on loop = %v, want <= 0.05", s.MissRate())
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := mustBimodal(t, 16)
	for i := 0; i < 10; i++ {
		b.Update(0, true)
	}
	if !b.Predict(0) {
		t.Fatal("saturated-taken counter predicts not-taken")
	}
	// One not-taken must not flip a saturated counter.
	b.Update(0, false)
	if !b.Predict(0) {
		t.Fatal("single not-taken flipped saturated counter")
	}
	b.Update(0, false)
	b.Update(0, false)
	if b.Predict(0) {
		t.Fatal("counter did not train down")
	}
}

func TestBimodalIndexing(t *testing.T) {
	b := mustBimodal(t, 4)
	// PCs 4 apart map to adjacent entries; train one, other unaffected.
	for i := 0; i < 4; i++ {
		b.Update(0x10, true)
	}
	if !b.Predict(0x10) {
		t.Fatal("trained entry predicts wrong")
	}
	if b.Predict(0x14) {
		t.Fatal("untrained entry predicts taken")
	}
	// Aliasing: entries wrap at table size.
	if !b.Predict(0x10 + 4*4) {
		t.Fatal("aliased PC should share the trained entry")
	}
}

func TestBimodalRejectsBadSize(t *testing.T) {
	for _, n := range []int{-4, 0, 3, 12} {
		if b, err := NewBimodal(n); err == nil || b != nil {
			t.Fatalf("NewBimodal(%d) = %v, %v; want error", n, b, err)
		}
	}
}

// mustBimodal builds a predictor for tests where the size is known good.
func mustBimodal(t *testing.T, entries int) *Bimodal {
	t.Helper()
	b, err := NewBimodal(entries)
	if err != nil {
		t.Fatalf("NewBimodal(%d): %v", entries, err)
	}
	return b
}

func TestStatsReset(t *testing.T) {
	s := &Stats{P: mustBimodal(t, 16)}
	s.Resolve(0, true)
	s.Reset()
	if s.Branches != 0 || s.Mispredict != 0 {
		t.Fatal("reset failed")
	}
	if s.MissRate() != 0 {
		t.Fatal("miss rate after reset not 0")
	}
}
