package jobspec

import (
	"context"
	"flag"
	"strings"
	"testing"
	"time"

	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/metrics"
)

const dotSrc = `int a[8]; int b[8];
void main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 8; i++) { a[i] = i; b[i] = 2 * i; }
  for (i = 0; i < 8; i++) acc = acc + a[i] * b[i];
  out(acc);
}
`

func estimateSpec() *Spec {
	s := Default()
	s.Source = Source{Name: "dot.c", Code: dotSrc}
	return &s
}

func TestValidate(t *testing.T) {
	ok := estimateSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid estimate spec rejected: %v", err)
	}
	tlm := DefaultTLM()
	if err := tlm.Validate(); err != nil {
		t.Fatalf("valid tlm spec rejected: %v", err)
	}

	bad := []func(*Spec){
		func(s *Spec) { s.Kind = "nonsense" },
		func(s *Spec) { s.Source.Code = "" },
		func(s *Spec) { s.Model = Model{} },
		func(s *Spec) { s.Exec = "warp" },
		func(s *Spec) { s.ICache = -1 },
		func(s *Spec) { s.Timeout = Duration(-time.Second) },
		func(s *Spec) { s.Model = Model{JSON: []byte(`{"not a pum`)} },
	}
	for i, mut := range bad {
		s := estimateSpec()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	badTLM := []func(*Spec){
		func(s *Spec) { s.Design = "SW+3" },
		func(s *Spec) { s.Frames = 0 },
		func(s *Spec) { s.Engine = "quantum" },
	}
	for i, mut := range badTLM {
		s := DefaultTLM()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("tlm mutation %d accepted", i)
		}
	}
}

func TestParseJSON(t *testing.T) {
	s, err := ParseJSON([]byte(`{"kind":"estimate","source":{"name":"x.c","code":"void main() { out(1); }"}}`))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	// Defaults survive a partial body.
	if s.Model.Name != "microblaze" || s.ICache != 8192 || s.DCache != 4096 || s.Exec != "auto" {
		t.Fatalf("defaults not applied: %+v", s)
	}

	// TLM bodies pick up the TLM defaults (frames, engine, calibrate).
	s, err = ParseJSON([]byte(`{"kind":"tlm","design":"SW+1"}`))
	if err != nil {
		t.Fatalf("ParseJSON tlm: %v", err)
	}
	if s.Frames != 2 || s.Engine != EngineTimed || !s.Calibrate {
		t.Fatalf("tlm defaults not applied: %+v", s)
	}

	// Unknown fields fail loudly.
	if _, err := ParseJSON([]byte(`{"kind":"tlm","design":"SW","framez":9}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Timeouts accept flag syntax.
	s, err = ParseJSON([]byte(`{"kind":"tlm","design":"SW","timeout":"150ms"}`))
	if err != nil {
		t.Fatalf("ParseJSON timeout: %v", err)
	}
	if time.Duration(s.Timeout) != 150*time.Millisecond {
		t.Fatalf("timeout = %v", time.Duration(s.Timeout))
	}
}

func TestFingerprint(t *testing.T) {
	a, b := estimateSpec(), estimateSpec()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs fingerprint differently")
	}
	b.ICache = 2048
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different cache configs share a fingerprint")
	}
	c := estimateSpec()
	c.Source.Code += " "
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different sources share a fingerprint")
	}
	// The JSON round trip preserves identity — what the daemon decodes
	// coalesces with what a CLI would submit.
	data, err := a.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON(EncodeJSON): %v", err)
	}
	if back.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across the JSON round trip")
	}

	// Fields whose default is non-zero survive the round trip even at
	// their zero value: calibrate=false must not be re-defaulted to true.
	tl := DefaultTLM()
	tl.Calibrate = false
	data, err = tl.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON tlm: %v", err)
	}
	back, err = ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON tlm: %v", err)
	}
	if back.Calibrate {
		t.Fatal("calibrate=false lost in the JSON round trip")
	}
	if back.Fingerprint() != tl.Fingerprint() {
		t.Fatal("tlm fingerprint not stable across the JSON round trip")
	}
}

func TestFlagBinding(t *testing.T) {
	s := Default()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.BindRun(fs)
	s.BindCache(fs)
	s.BindVerify(fs)
	s.BindStrict(fs)
	s.BindModel(fs)
	if err := fs.Parse([]string{
		"-exec", "tree", "-timeout", "2s", "-icache", "1024", "-dcache", "512",
		"-verify", "-Werror", "-strict", "-fallback", "7", "-pum", "dualissue",
	}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Exec != "tree" || time.Duration(s.Timeout) != 2*time.Second ||
		s.ICache != 1024 || s.DCache != 512 ||
		!s.Verify || !s.Werror || !s.Strict || s.Fallback != 7 ||
		s.Model.Name != "dualissue" {
		t.Fatalf("flags not bound: %+v", s)
	}

	tlm := DefaultTLM()
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	tlm.BindWorkload(fs2)
	if err := fs2.Parse([]string{"-design", "SW+2", "-frames", "5", "-engine", "functional", "-calibrate=false"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tlm.Design != "SW+2" || tlm.Frames != 5 || tlm.Engine != EngineFunctional || tlm.Calibrate {
		t.Fatalf("workload flags not bound: %+v", tlm)
	}

	// Unparsed flag sets keep the historical CLI defaults.
	def := Default()
	if def.ICache != 8192 || def.DCache != 4096 || def.Fallback != core.DefaultFallbackCycles ||
		def.Exec != "auto" || def.Model.Name != "microblaze" || def.Entry != "main" {
		t.Fatalf("unexpected defaults: %+v", def)
	}
}

func TestRunnerEstimate(t *testing.T) {
	var r Runner
	res, err := r.Run(context.Background(), estimateSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Kind != KindEstimate || res.Model != "microblaze" {
		t.Fatalf("result header: %+v", res)
	}
	if res.Summary == "" || len(res.Blocks) == 0 {
		t.Fatal("estimate result carries no summary or blocks")
	}
	var total float64
	for _, b := range res.Blocks {
		total += b.Total
	}
	if total <= 0 {
		t.Fatalf("no cycles estimated: %+v", res.Blocks)
	}
}

func TestRunnerEstimateProfile(t *testing.T) {
	s := estimateSpec()
	s.Profile = true
	var r Runner
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Profile) == 0 || !strings.Contains(string(res.Profile), "total") {
		t.Fatalf("profile report missing: %q", res.Profile)
	}
}

func TestRunnerTLMFunctionalAndTimed(t *testing.T) {
	shared := core.NewCache()
	r := Runner{Cache: shared, Metrics: metrics.NewRegistry()}
	s := DefaultTLM()
	s.Frames = 1
	s.Calibrate = false
	s.Engine = EngineFunctional
	res, err := r.Run(context.Background(), &s)
	if err != nil {
		t.Fatalf("functional: %v", err)
	}
	if res.TLM == nil || res.TLM.Steps == 0 {
		t.Fatalf("functional result: %+v", res.TLM)
	}

	s.Engine = EngineTimed
	timed, err := r.Run(context.Background(), &s)
	if err != nil {
		t.Fatalf("timed: %v", err)
	}
	if timed.TLM.EndPs == 0 || timed.TLM.CyclesByPE["mb"] == 0 {
		t.Fatalf("timed result: %+v", timed.TLM)
	}
	// Functional and timed runs produce the same outputs.
	if len(timed.TLM.OutByPE["mb"]) != len(res.TLM.OutByPE["mb"]) {
		t.Fatal("functional and timed outputs differ in length")
	}
	// The shared cache saw the timed run's annotation.
	if st := shared.Stats(); st.SchedMisses == 0 {
		t.Fatalf("timed run bypassed the shared cache: %+v", st)
	}

	// A second identical timed run reuses every schedule.
	before := shared.Stats()
	again, err := r.Run(context.Background(), &s)
	if err != nil {
		t.Fatalf("timed again: %v", err)
	}
	after := shared.Stats()
	if after.SchedMisses != before.SchedMisses {
		t.Fatalf("identical job recompiled schedules: %+v -> %+v", before, after)
	}
	if again.TLM.CyclesByPE["mb"] != timed.TLM.CyclesByPE["mb"] {
		t.Fatal("identical jobs disagree on cycles")
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var r Runner
	res, err := r.Run(ctx, estimateSpec())
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if !diag.IsCancellation(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
}
