package jobspec

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"ese/internal/calib"
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/diag"
	"ese/internal/engine"
	"ese/internal/interp"
	"ese/internal/metrics"
	"ese/internal/platform"
	"ese/internal/profile"
	"ese/internal/pum"
	"ese/internal/rtl"
	"ese/internal/tlm"
)

// Runner executes Specs through engine pipelines built around shared
// process-wide state: one content-addressed schedule/estimate cache and
// one metric registry. A zero Runner is valid (each job then runs with a
// private cache and registry); the esed daemon populates both so every
// request warms the same cache.
type Runner struct {
	// Cache, when non-nil, is injected into every job's pipeline.
	Cache *core.Cache
	// Metrics, when non-nil, is injected into every job's pipeline.
	Metrics *metrics.Registry
	// DefaultTimeout bounds jobs whose spec sets none (0 = unbounded).
	DefaultTimeout time.Duration

	// base memoizes the two TLM base processor models (calibrated and
	// nominal) across jobs. Calibration depends only on the fixed training
	// workload, so one board-simulation run serves every TLM job and every
	// DSE sweep point the Runner ever executes.
	baseMu sync.Mutex
	base   map[bool]*pum.PUM
}

// BaseModel returns the memoized TLM base processor model for the spec's
// calibration setting, computing it on first use.
func (r *Runner) BaseModel(s *Spec) (*pum.PUM, error) {
	r.baseMu.Lock()
	defer r.baseMu.Unlock()
	if m := r.base[s.Calibrate]; m != nil {
		return m, nil
	}
	m, err := s.BaseModel()
	if err != nil {
		return nil, err
	}
	if r.base == nil {
		r.base = make(map[bool]*pum.PUM, 2)
	}
	r.base[s.Calibrate] = m
	return m, nil
}

// RunOpts carries per-invocation hooks that are not part of the job's
// content-addressed identity.
type RunOpts struct {
	// StageHook observes pipeline stage completions (progress streaming).
	StageHook func(stage diag.Stage, d time.Duration)
}

// BlockEstimate is the JSON form of one basic block's estimate.
type BlockEstimate struct {
	Func     string  `json:"func"`
	Block    int     `json:"block"`
	Ops      int     `json:"ops"`
	Operands int     `json:"operands"`
	Sched    int     `json:"sched"`
	Branch   float64 `json:"branch"`
	IDelay   float64 `json:"idelay"`
	DDelay   float64 `json:"ddelay"`
	Total    float64 `json:"total"`
	Unmapped int     `json:"unmapped,omitempty"`
}

// TLMSummary is the JSON form of one TLM (or board) simulation outcome.
type TLMSummary struct {
	Design       string             `json:"design"`
	Engine       string             `json:"engine"`
	EndPs        uint64             `json:"end_ps,omitempty"`
	BusCycles    uint64             `json:"bus_cycles,omitempty"`
	CyclesByPE   map[string]uint64  `json:"cycles_by_pe"`
	SwitchesByPE map[string]uint64  `json:"switches_by_pe,omitempty"`
	OutByPE      map[string][]int32 `json:"out_by_pe,omitempty"`
	BusWords     uint64             `json:"bus_words,omitempty"`
	Steps        uint64             `json:"steps"`
	AnnoNs       int64              `json:"anno_ns,omitempty"`
	WallNs       int64              `json:"wall_ns"`
}

// CalibEntry is the JSON form of one calibration provenance record: which
// training program produced the statistics of one cache configuration.
type CalibEntry struct {
	ISize      int     `json:"isize"`
	DSize      int     `json:"dsize"`
	Train      string  `json:"train"`
	Steps      uint64  `json:"steps"`
	BranchMiss float64 `json:"branch_miss"`
}

// CalibSummary is the JSON form of one calibration outcome: the calibrated
// PUM description plus its provenance.
type CalibSummary struct {
	Train      string          `json:"train"`
	BranchMiss float64         `json:"branch_miss"`
	Configs    int             `json:"configs"`
	Provenance []CalibEntry    `json:"provenance"`
	Model      json.RawMessage `json:"model"`
}

// Result is the JSON response body of one executed job. On failure the
// Runner still returns a partial Result carrying the collected
// diagnostics next to the error.
type Result struct {
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// Model names the resolved PE model of an estimation job.
	Model string `json:"model,omitempty"`
	// Summary is the human-readable annotation summary (estimation jobs).
	Summary string `json:"summary,omitempty"`
	// Blocks is the per-block estimate table (estimation jobs).
	Blocks []BlockEstimate `json:"blocks,omitempty"`
	// TLM is the simulation outcome (TLM jobs).
	TLM *TLMSummary `json:"tlm,omitempty"`
	// Calib is the calibration outcome (calibration jobs).
	Calib *CalibSummary `json:"calib,omitempty"`
	// Profile is the cycle-attribution report (when Spec.Profile is set).
	Profile json.RawMessage `json:"profile,omitempty"`
	// Diagnostics are the pipeline's structured diagnostics, rendered.
	Diagnostics []string `json:"diagnostics,omitempty"`
	// UnmappedOps / DegradedBlocks are the job's graceful-degradation
	// tallies.
	UnmappedOps    uint64 `json:"unmapped_ops,omitempty"`
	DegradedBlocks uint64 `json:"degraded_blocks,omitempty"`
	// ElapsedNs is the job's host wall-clock time inside the Runner.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// Run executes one validated spec. See RunWith.
func (r *Runner) Run(ctx context.Context, s *Spec) (*Result, error) {
	return r.RunWith(ctx, s, RunOpts{})
}

// RunWith executes one validated spec through a fresh pipeline bound to
// the Runner's shared cache and registry. The context bounds the whole
// job: cancellation or deadline expiry surfaces as diag.ErrCanceled /
// diag.ErrDeadline with a stage-tagged diagnostic in the (partial)
// Result.
func (r *Runner) RunWith(ctx context.Context, s *Spec, ro RunOpts) (res *Result, err error) {
	start := time.Now()
	opts, err := s.Options()
	if err != nil {
		return nil, err
	}
	if opts.Timeout == 0 {
		opts.Timeout = r.DefaultTimeout
	}
	opts.Cache = r.Cache
	opts.Metrics = r.Metrics
	opts.StageHook = ro.StageHook
	pl := engine.New(opts)

	res = &Result{Kind: s.Kind, Fingerprint: s.Fingerprint()}
	defer func() {
		for _, d := range pl.Diagnostics().All() {
			res.Diagnostics = append(res.Diagnostics, d.String())
		}
		st := pl.Stats()
		res.UnmappedOps, res.DegradedBlocks = st.UnmappedOps, st.DegradedBlocks
		res.ElapsedNs = time.Since(start).Nanoseconds()
	}()

	switch s.Kind {
	case KindEstimate:
		err = r.runEstimate(ctx, s, pl, res)
	case KindTLM:
		err = r.runTLM(ctx, s, pl, res)
	case KindCalibrate:
		err = r.runCalibrate(ctx, s, res)
	default:
		err = fmt.Errorf("jobspec: unknown job kind %q", s.Kind)
	}
	return res, err
}

// runEstimate is the eseest flow: compile, annotate, summarize.
func (r *Runner) runEstimate(ctx context.Context, s *Spec, pl *engine.Pipeline, res *Result) error {
	name := s.Source.Name
	if name == "" {
		name = "job.c"
	}
	prog, err := pl.CompileCtx(ctx, name, s.Source.Code)
	if err != nil {
		return err
	}
	model, err := s.ResolveModel()
	if err != nil {
		return err
	}
	if model, err = s.ApplyCache(model); err != nil {
		return err
	}
	res.Model = model.Name
	a, err := pl.AnnotateCtx(ctx, prog, model)
	if err != nil {
		return err
	}
	res.Summary = a.Summary()
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			e := a.Est[b]
			res.Blocks = append(res.Blocks, BlockEstimate{
				Func: fn.Name, Block: b.ID,
				Ops: e.Ops, Operands: e.Operands, Sched: e.Sched,
				Branch: e.BranchPen, IDelay: e.IDelay, DDelay: e.DDelay,
				Total: e.Total, Unmapped: e.Unmapped,
			})
		}
	}
	if s.Profile {
		return r.profileEstimate(ctx, s, prog, model, a.Est, res)
	}
	return nil
}

// profileEstimate executes the program on the IR interpreter and joins
// the block counts with the annotation into the attribution report.
func (r *Runner) profileEstimate(ctx context.Context, s *Spec, prog *cdfg.Program, model *pum.PUM, est map[*cdfg.Block]core.Estimate, res *Result) error {
	kind, err := s.ExecKind()
	if err != nil {
		return err
	}
	m, err := interp.NewEngine(prog, kind)
	if err != nil {
		return err
	}
	m.EnableProfile()
	m.SetLimit(s.Steps)
	m.SetContext(ctx)
	entry := s.Entry
	if entry == "" {
		entry = "main"
	}
	if err := m.Run(entry); err != nil {
		return fmt.Errorf("profile run: %w", err)
	}
	rep, err := profile.Build("", prog,
		map[string]map[*cdfg.Block]uint64{model.Name: m.BlockCountsMap()},
		map[string]map[*cdfg.Block]core.Estimate{model.Name: est})
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	res.Profile = data
	return nil
}

// runTLM is the esetlm flow: build the design, simulate, summarize.
func (r *Runner) runTLM(ctx context.Context, s *Spec, pl *engine.Pipeline, res *Result) error {
	base, err := r.BaseModel(s)
	if err != nil {
		return err
	}
	d, err := s.BuildDesignFrom(base)
	if err != nil {
		return err
	}
	if s.Engine == EngineBoard {
		br, err := rtl.RunBoard(d, 0)
		if err != nil {
			return err
		}
		sum := &TLMSummary{
			Design:     d.Name,
			Engine:     EngineBoard,
			EndPs:      uint64(br.EndPs),
			BusCycles:  br.EndCycles(d.Bus.ClockHz),
			CyclesByPE: make(map[string]uint64, len(br.PEs)),
			Steps:      br.Steps,
			WallNs:     br.Wall.Nanoseconds(),
		}
		for name, pe := range br.PEs {
			sum.CyclesByPE[name] = pe.Cycles
		}
		res.TLM = sum
		return nil
	}
	opts := tlm.Options{Profile: s.Profile}
	if s.Engine == EngineTimed {
		opts.Timed = true
		opts.WaitMode = tlm.WaitAtTransactions
		opts.Detail = core.FullDetail
	}
	tr, err := pl.SimulateCtx(ctx, d, opts)
	if err != nil {
		return err
	}
	res.TLM = &TLMSummary{
		Design:       tr.Design,
		Engine:       s.Engine,
		EndPs:        uint64(tr.EndPs),
		CyclesByPE:   tr.CyclesByPE,
		SwitchesByPE: tr.SwitchesByPE,
		OutByPE:      tr.OutByPE,
		BusWords:     tr.BusWords,
		Steps:        tr.Steps,
		AnnoNs:       tr.AnnoTime.Nanoseconds(),
		WallNs:       tr.Wall.Nanoseconds(),
	}
	if tr.EndPs > 0 {
		res.TLM.BusCycles = tr.EndCycles(d.Bus.ClockHz)
	}
	if s.Profile {
		return r.profileTLM(ctx, s, pl, d, tr, res)
	}
	return nil
}

// runCalibrate is the internal/calib flow: profile the training set on
// the cycle-accurate processor model and return the calibrated PUM with
// its provenance. Steps bounds each profiling run (0 = none).
func (r *Runner) runCalibrate(ctx context.Context, s *Spec, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	train := s.Train
	if train == "" {
		train = DefaultTrain
	}
	ts, err := calib.Trainings(train)
	if err != nil {
		return err
	}
	model, _, err := calib.Calibrate(pum.MicroBlaze(), ts, pum.StandardCacheConfigs, s.Steps)
	if err != nil {
		return err
	}
	data, err := model.ToJSON()
	if err != nil {
		return err
	}
	sum := &CalibSummary{
		Train:      train,
		BranchMiss: model.Branch.MissRate,
		Configs:    len(model.Configs()),
		Model:      data,
	}
	for _, cs := range model.Calib {
		sum.Provenance = append(sum.Provenance, CalibEntry{
			ISize: cs.Cfg.ISize, DSize: cs.Cfg.DSize,
			Train: cs.Train, Steps: cs.Steps, BranchMiss: cs.BranchMiss,
		})
	}
	res.Calib = sum
	return nil
}

// profileTLM joins the run's per-process block counts with each PE's
// annotation into the attribution report (the esetlm -profile flow).
func (r *Runner) profileTLM(ctx context.Context, s *Spec, pl *engine.Pipeline, d *platform.Design, tr *tlm.Result, res *Result) error {
	est := make(map[string]map[*cdfg.Block]core.Estimate, len(d.PEs))
	for _, pe := range d.PEs {
		a, err := pl.AnnotateDetailCtx(ctx, d.Program, pe.PUM, core.FullDetail)
		if err != nil {
			return err
		}
		est[pe.Name] = a.Est
	}
	rep, err := profile.Build(d.Name, d.Program, tr.BlockCountsByPE, est)
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	res.Profile = data
	return nil
}
