// Package jobspec defines the request-shaped description of one
// estimation or TLM job — the configuration surface that cmd/eseest,
// cmd/esetlm, cmd/esebench and the esed daemon all share. Before this
// package each front end re-implemented the same flag→Options wiring;
// now a Spec is the single source of truth: the CLIs bind their flags
// onto one, the daemon decodes one from a JSON request body, and both
// hand it to a Runner that executes it through one engine.Pipeline.
//
// A Spec is deliberately plain data (JSON-codable, no pointers into IR),
// so it can be validated, fingerprinted and coalesced: Fingerprint()
// hashes the canonical encoding, giving the daemon a content-addressed
// key under which concurrent identical jobs are collapsed into one
// execution.
package jobspec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"ese/internal/core"
	"ese/internal/engine"
	"ese/internal/interp"
	"ese/internal/pum"
)

// Job kinds.
const (
	// KindEstimate compiles a C-subset source and annotates it against
	// one PE model (the eseest flow).
	KindEstimate = "estimate"
	// KindTLM builds one of the built-in mapped designs and simulates
	// its transaction-level model (the esetlm flow).
	KindTLM = "tlm"
)

// TLM engines a KindTLM job may request.
const (
	EngineFunctional = "functional"
	EngineTimed      = "timed"
	EngineBoard      = "board"
)

// Source is the program input of an estimation job: a C-subset source
// carried inline, plus the name used in diagnostics.
type Source struct {
	// Name labels the source in positions and diagnostics ("app.c").
	Name string `json:"name,omitempty"`
	// Code is the C-subset source text.
	Code string `json:"code,omitempty"`
}

// Model selects the PE model of an estimation job: a built-in name
// ("microblaze", "customhw", "dualissue") or an inline JSON PUM
// description (the retargeting interface).
type Model struct {
	Name string          `json:"name,omitempty"`
	JSON json.RawMessage `json:"json,omitempty"`
}

// Spec describes one job. The zero value is not valid; construct with
// Default() (or DefaultTLM()) and override, or decode from JSON and call
// Validate.
type Spec struct {
	// Kind is KindEstimate or KindTLM.
	Kind string `json:"kind"`

	// Source is the program of an estimation job.
	Source Source `json:"source,omitempty"`
	// Model is the PE model of an estimation job.
	Model Model `json:"model,omitempty"`

	// Design names the built-in mapped design of a TLM job (SW, SW+1,
	// SW+2, SW+4).
	Design string `json:"design,omitempty"`
	// Frames sizes the MP3 workload of a TLM job.
	Frames int `json:"frames,omitempty"`
	// Seed seeds the workload generator; zero selects the standard
	// evaluation seed.
	Seed uint32 `json:"seed,omitempty"`
	// Engine selects the TLM engine: functional, timed (default) or
	// board.
	Engine string `json:"engine,omitempty"`
	// Calibrate fits the statistical PUM models on the training workload
	// before building the design. Never omitted from the encoding: its
	// default is true, so an omitted false would be undone by the decoder's
	// defaults (and silently change the fingerprint).
	Calibrate bool `json:"calibrate"`

	// ICache / DCache select the cache configuration in bytes (0 =
	// uncached).
	ICache int `json:"icache"`
	DCache int `json:"dcache"`

	// Exec selects the IR execution engine: auto (default), compiled or
	// tree.
	Exec string `json:"exec,omitempty"`
	// Strict fails the job when the PE model does not map an op class
	// the program uses, instead of degrading to fallback latencies.
	Strict bool `json:"strict,omitempty"`
	// Fallback is the latency charged to unmapped op classes when not
	// strict; zero selects core.DefaultFallbackCycles.
	Fallback int `json:"fallback,omitempty"`
	// Verify statically verifies the IR / design and lints the PE models
	// before running.
	Verify bool `json:"verify,omitempty"`
	// Werror promotes verification warnings to failures.
	Werror bool `json:"werror,omitempty"`
	// Timeout arms a wall-clock watchdog on the whole job (0 = none; the
	// daemon may impose its own default).
	Timeout Duration `json:"timeout,omitempty"`
	// Workers bounds the annotation worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Profile additionally returns the ranked cycle-attribution profile.
	Profile bool `json:"profile,omitempty"`
	// Top bounds the profile rows returned (0 = all).
	Top int `json:"top,omitempty"`
	// Entry names the entry function a profiled estimation job executes
	// (default main).
	Entry string `json:"entry,omitempty"`
	// Steps bounds the dynamic instruction count of a profiled estimation
	// job (0 = none).
	Steps uint64 `json:"steps,omitempty"`
}

// Default returns an estimation Spec carrying the front ends' shared
// flag defaults.
func Default() Spec {
	return Spec{
		Kind:     KindEstimate,
		Model:    Model{Name: "microblaze"},
		ICache:   8192,
		DCache:   4096,
		Exec:     "auto",
		Fallback: core.DefaultFallbackCycles,
		Entry:    "main",
		Top:      20,
	}
}

// DefaultTLM returns a TLM Spec carrying esetlm's flag defaults.
func DefaultTLM() Spec {
	s := Default()
	s.Kind = KindTLM
	s.Design = "SW"
	s.Frames = 2
	s.Engine = EngineTimed
	s.Calibrate = true
	s.Model = Model{}
	return s
}

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s"), matching the CLI flag syntax, and also accepts plain
// nanosecond numbers on decode.
type Duration time.Duration

// MarshalJSON renders the duration as its flag-syntax string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: bad timeout %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("jobspec: timeout must be a duration string or nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// knownDesigns mirrors apps.MP3DesignNames without importing it here
// (resolve.go consumes the apps package; validation should not need to
// build anything).
var knownDesigns = map[string]bool{"SW": true, "SW+1": true, "SW+2": true, "SW+4": true}

// Validate checks the spec for structural problems a front end should
// reject before any work is spent on it.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindEstimate:
		if s.Source.Code == "" {
			return fmt.Errorf("jobspec: estimate job carries no source code")
		}
		if s.Model.Name == "" && len(s.Model.JSON) == 0 {
			return fmt.Errorf("jobspec: estimate job names no PE model")
		}
	case KindTLM:
		if !knownDesigns[s.Design] {
			return fmt.Errorf("jobspec: unknown design %q (want SW, SW+1, SW+2 or SW+4)", s.Design)
		}
		if s.Frames < 1 {
			return fmt.Errorf("jobspec: tlm job needs frames >= 1, got %d", s.Frames)
		}
		switch s.Engine {
		case EngineFunctional, EngineTimed, EngineBoard:
		default:
			return fmt.Errorf("jobspec: unknown engine %q (want functional, timed or board)", s.Engine)
		}
	default:
		return fmt.Errorf("jobspec: unknown job kind %q (want %s or %s)", s.Kind, KindEstimate, KindTLM)
	}
	if s.ICache < 0 || s.DCache < 0 {
		return fmt.Errorf("jobspec: negative cache size %d/%d", s.ICache, s.DCache)
	}
	if s.Frames < 0 {
		return fmt.Errorf("jobspec: negative frame count %d", s.Frames)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobspec: negative timeout %v", time.Duration(s.Timeout))
	}
	if _, err := interp.ParseEngineKind(s.Exec); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if len(s.Model.JSON) > 0 {
		if _, err := pum.FromJSON(s.Model.JSON); err != nil {
			return fmt.Errorf("jobspec: inline PUM: %w", err)
		}
	}
	return nil
}

// ParseJSON decodes and validates a Spec from a JSON request body.
// Unknown fields are rejected, so a typoed option fails loudly instead of
// silently running with defaults.
func ParseJSON(data []byte) (*Spec, error) {
	s := Default()
	// The kind steers the defaults, so peek at it first.
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if probe.Kind == KindTLM {
		s = DefaultTLM()
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeJSON renders the spec canonically (stable field order from the
// struct definition).
func (s *Spec) EncodeJSON() ([]byte, error) {
	return json.Marshal(s)
}

// Fingerprint returns the sha256 hex digest of the spec's canonical
// encoding — the content-addressed identity under which the daemon
// coalesces concurrent identical jobs. Two specs that differ only in
// presentation options that do not change the computed result (Top) still
// hash differently; that is deliberate: the fingerprint addresses the
// response, not just the simulation.
func (s *Spec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal can only fail on exotic corruption.
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Options maps the spec onto pipeline options. The caller owns cache and
// metrics injection; everything request-shaped comes from the spec.
func (s *Spec) Options() (engine.Options, error) {
	kind, err := interp.ParseEngineKind(s.Exec)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{
		Workers:        s.Workers,
		Strict:         s.Strict,
		FallbackCycles: s.Fallback,
		Timeout:        time.Duration(s.Timeout),
		Engine:         kind,
		Verify:         s.Verify,
		Werror:         s.Werror,
	}, nil
}

// ExecKind parses the spec's IR execution engine selection.
func (s *Spec) ExecKind() (interp.EngineKind, error) {
	return interp.ParseEngineKind(s.Exec)
}
