// Package jobspec defines the request-shaped description of one
// estimation or TLM job — the configuration surface that cmd/eseest,
// cmd/esetlm, cmd/esebench and the esed daemon all share. Before this
// package each front end re-implemented the same flag→Options wiring;
// now a Spec is the single source of truth: the CLIs bind their flags
// onto one, the daemon decodes one from a JSON request body, and both
// hand it to a Runner that executes it through one engine.Pipeline.
//
// A Spec is deliberately plain data (JSON-codable, no pointers into IR),
// so it can be validated, fingerprinted and coalesced: Fingerprint()
// hashes the canonical encoding, giving the daemon a content-addressed
// key under which concurrent identical jobs are collapsed into one
// execution.
package jobspec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"ese/internal/core"
	"ese/internal/engine"
	"ese/internal/interp"
	"ese/internal/pum"
)

// Job kinds.
const (
	// KindEstimate compiles a C-subset source and annotates it against
	// one PE model (the eseest flow).
	KindEstimate = "estimate"
	// KindTLM builds one of the built-in mapped designs and simulates
	// its transaction-level model (the esetlm flow).
	KindTLM = "tlm"
	// KindCalibrate fits the statistical memory and branch models on one
	// or more training programs and returns the calibrated PUM with its
	// per-config provenance (the internal/calib flow).
	KindCalibrate = "calibrate"
)

// TLM engines a KindTLM job may request.
const (
	EngineFunctional = "functional"
	EngineTimed      = "timed"
	EngineBoard      = "board"
)

// Applications a KindTLM job may target.
const (
	// AppMP3 is the MP3-like decoder corpus (designs SW, SW+1, SW+2, SW+4).
	AppMP3 = "mp3"
	// AppJPEG is the JPEG-like encoder corpus (designs SW, SW+DCT). Frames
	// counts 8x8 blocks for this app.
	AppJPEG = "jpeg"
)

// Default workload seeds per app, mirrored from internal/apps so that
// Validate/Fingerprint stay free of the app-construction dependency
// (resolve.go consumes apps; a test pins the mirror against the source).
var defaultSeeds = map[string]uint32{
	AppMP3:  0xC0FFEE, // apps.DefaultMP3.Seed
	AppJPEG: 0xBEEF,   // apps.DefaultJPEG.Seed
}

// Tune is the structural design-space tuning of a TLM job's processor
// model: the DSE axes over the datapath and branch sub-models, applied to
// the (optionally calibrated) base model before cache retargeting. The
// zero value (and nil) mean "stock model".
type Tune struct {
	// Depth re-times the pipeline to this stage count (0 = keep).
	Depth int `json:"depth,omitempty"`
	// Issue sets the number of single-issue pipelines (0 = keep; >1 makes
	// an in-order model superscalar via the ASAP policy).
	Issue int `json:"issue,omitempty"`
	// FUs overrides functional-unit quantities by ID (absent = keep).
	FUs map[string]int `json:"fus,omitempty"`
	// BranchMiss overrides the branch misprediction ratio (nil = keep).
	BranchMiss *float64 `json:"branch_miss,omitempty"`
	// BranchPenalty overrides the misprediction penalty (nil = keep).
	BranchPenalty *float64 `json:"branch_penalty,omitempty"`
}

// isZero reports whether the tune changes nothing — such a Tune is
// canonicalized to nil so it cannot split a fingerprint.
func (t *Tune) isZero() bool {
	return t == nil || (t.Depth == 0 && t.Issue == 0 && len(t.FUs) == 0 &&
		t.BranchMiss == nil && t.BranchPenalty == nil)
}

// clone deep-copies the tune (nil stays nil).
func (t *Tune) clone() *Tune {
	if t == nil {
		return nil
	}
	c := *t
	if t.FUs != nil {
		c.FUs = make(map[string]int, len(t.FUs))
		for k, v := range t.FUs {
			c.FUs[k] = v
		}
	}
	if t.BranchMiss != nil {
		v := *t.BranchMiss
		c.BranchMiss = &v
	}
	if t.BranchPenalty != nil {
		v := *t.BranchPenalty
		c.BranchPenalty = &v
	}
	return &c
}

// validate checks the tune's ranges.
func (t *Tune) validate() error {
	if t == nil {
		return nil
	}
	if t.Depth != 0 && (t.Depth < 2 || t.Depth > 16) {
		return fmt.Errorf("jobspec: tune depth %d out of [2,16]", t.Depth)
	}
	if t.Issue != 0 && (t.Issue < 1 || t.Issue > 8) {
		return fmt.Errorf("jobspec: tune issue %d out of [1,8]", t.Issue)
	}
	for id, n := range t.FUs {
		if n < 1 {
			return fmt.Errorf("jobspec: tune FU %q quantity %d must be positive", id, n)
		}
	}
	if t.BranchMiss != nil && (*t.BranchMiss < 0 || *t.BranchMiss > 1 || *t.BranchMiss != *t.BranchMiss) {
		return fmt.Errorf("jobspec: tune branch miss rate %v out of [0,1]", *t.BranchMiss)
	}
	if t.BranchPenalty != nil && (*t.BranchPenalty < 0 || *t.BranchPenalty != *t.BranchPenalty) {
		return fmt.Errorf("jobspec: tune branch penalty %v must be non-negative", *t.BranchPenalty)
	}
	return nil
}

// Source is the program input of an estimation job: a C-subset source
// carried inline, plus the name used in diagnostics.
type Source struct {
	// Name labels the source in positions and diagnostics ("app.c").
	Name string `json:"name,omitempty"`
	// Code is the C-subset source text.
	Code string `json:"code,omitempty"`
}

// Model selects the PE model of an estimation job: a built-in name
// ("microblaze", "customhw", "dualissue") or an inline JSON PUM
// description (the retargeting interface).
type Model struct {
	Name string          `json:"name,omitempty"`
	JSON json.RawMessage `json:"json,omitempty"`
}

// Spec describes one job. The zero value is not valid; construct with
// Default() (or DefaultTLM()) and override, or decode from JSON and call
// Validate.
type Spec struct {
	// Kind is KindEstimate or KindTLM.
	Kind string `json:"kind"`

	// Source is the program of an estimation job.
	Source Source `json:"source,omitempty"`
	// Model is the PE model of an estimation job.
	Model Model `json:"model,omitempty"`

	// App names the application corpus of a TLM job: AppMP3 (default) or
	// AppJPEG.
	App string `json:"app,omitempty"`
	// Design names the built-in mapped design of a TLM job (mp3: SW, SW+1,
	// SW+2, SW+4; jpeg: SW, SW+DCT).
	Design string `json:"design,omitempty"`
	// Frames sizes the workload of a TLM job (MP3 frames, or 8x8 blocks
	// for the JPEG app).
	Frames int `json:"frames,omitempty"`
	// Tune structurally varies the processor model of a TLM job (DSE axes
	// over pipeline depth, issue width, FU mix and the branch model).
	Tune *Tune `json:"tune,omitempty"`
	// Seed seeds the workload generator; zero selects the standard
	// evaluation seed.
	Seed uint32 `json:"seed,omitempty"`
	// Engine selects the TLM engine: functional, timed (default) or
	// board.
	Engine string `json:"engine,omitempty"`
	// Calibrate fits the statistical PUM models on the training workload
	// before building the design. Never omitted from the encoding: its
	// default is true, so an omitted false would be undone by the decoder's
	// defaults (and silently change the fingerprint).
	Calibrate bool `json:"calibrate"`
	// Train names the training set of a calibration job: one application
	// ("mp3", "jpeg") or several joined with "+" ("mp3+jpeg", the default;
	// the statistics are averaged across programs).
	Train string `json:"train,omitempty"`

	// ICache / DCache select the cache configuration in bytes (0 =
	// uncached).
	ICache int `json:"icache"`
	DCache int `json:"dcache"`

	// Exec selects the IR execution engine: auto (default), gen (the
	// pre-generated ahead-of-time tier), compiled or tree.
	Exec string `json:"exec,omitempty"`
	// Strict fails the job when the PE model does not map an op class
	// the program uses, instead of degrading to fallback latencies.
	Strict bool `json:"strict,omitempty"`
	// Fallback is the latency charged to unmapped op classes when not
	// strict; zero selects core.DefaultFallbackCycles.
	Fallback int `json:"fallback,omitempty"`
	// Verify statically verifies the IR / design and lints the PE models
	// before running.
	Verify bool `json:"verify,omitempty"`
	// Werror promotes verification warnings to failures.
	Werror bool `json:"werror,omitempty"`
	// Timeout arms a wall-clock watchdog on the whole job (0 = none; the
	// daemon may impose its own default).
	Timeout Duration `json:"timeout,omitempty"`
	// Workers bounds the annotation worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Profile additionally returns the ranked cycle-attribution profile.
	Profile bool `json:"profile,omitempty"`
	// Top bounds the profile rows returned (0 = all).
	Top int `json:"top,omitempty"`
	// Entry names the entry function a profiled estimation job executes
	// (default main).
	Entry string `json:"entry,omitempty"`
	// Steps bounds the dynamic instruction count of a profiled estimation
	// job (0 = none).
	Steps uint64 `json:"steps,omitempty"`
}

// Default returns an estimation Spec carrying the front ends' shared
// flag defaults.
func Default() Spec {
	return Spec{
		Kind:     KindEstimate,
		Model:    Model{Name: "microblaze"},
		ICache:   8192,
		DCache:   4096,
		Exec:     "auto",
		Fallback: core.DefaultFallbackCycles,
		Entry:    "main",
		Top:      20,
	}
}

// DefaultTLM returns a TLM Spec carrying esetlm's flag defaults.
func DefaultTLM() Spec {
	s := Default()
	s.Kind = KindTLM
	s.App = AppMP3
	s.Design = "SW"
	s.Frames = 2
	s.Engine = EngineTimed
	s.Calibrate = true
	s.Model = Model{}
	return s
}

// DefaultTrain is the training set a calibration job uses when none is
// named: both example applications, merged.
const DefaultTrain = AppMP3 + "+" + AppJPEG

// DefaultCalibrate returns a calibration Spec with the standard training
// set.
func DefaultCalibrate() Spec {
	s := Default()
	s.Kind = KindCalibrate
	s.Model = Model{}
	s.Train = DefaultTrain
	return s
}

// ValidateTrain checks a calibration training-set label: "+"-joined
// application names, each known and none repeated.
func ValidateTrain(label string) error {
	if label == "" {
		return fmt.Errorf("jobspec: empty training set")
	}
	seen := make(map[string]bool)
	for _, name := range strings.Split(label, "+") {
		if name != AppMP3 && name != AppJPEG {
			return fmt.Errorf("jobspec: unknown training app %q in %q (want %s or %s)",
				name, label, AppMP3, AppJPEG)
		}
		if seen[name] {
			return fmt.Errorf("jobspec: training app %q repeated in %q", name, label)
		}
		seen[name] = true
	}
	return nil
}

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s"), matching the CLI flag syntax, and also accepts plain
// nanosecond numbers on decode.
type Duration time.Duration

// MarshalJSON renders the duration as its flag-syntax string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: bad timeout %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("jobspec: timeout must be a duration string or nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// knownDesigns mirrors the design catalogs of internal/apps without
// importing it here (resolve.go consumes the apps package; validation
// should not need to build anything).
var knownDesigns = map[string]map[string]bool{
	AppMP3:  {"SW": true, "SW+1": true, "SW+2": true, "SW+4": true},
	AppJPEG: {"SW": true, "SW+DCT": true},
}

// DesignNames lists the valid designs of an app, sorted (empty for an
// unknown app) — the vocabulary the DSE expander validates sweeps against.
func DesignNames(app string) []string {
	if app == "" {
		app = AppMP3
	}
	out := make([]string, 0, len(knownDesigns[app]))
	for d := range knownDesigns[app] {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Validate checks the spec for structural problems a front end should
// reject before any work is spent on it.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindEstimate:
		if s.Source.Code == "" {
			return fmt.Errorf("jobspec: estimate job carries no source code")
		}
		if s.Model.Name == "" && len(s.Model.JSON) == 0 {
			return fmt.Errorf("jobspec: estimate job names no PE model")
		}
	case KindTLM:
		app := s.App
		if app == "" {
			app = AppMP3
		}
		designs, ok := knownDesigns[app]
		if !ok {
			return fmt.Errorf("jobspec: unknown app %q (want %s or %s)", s.App, AppMP3, AppJPEG)
		}
		if !designs[s.Design] {
			return fmt.Errorf("jobspec: unknown design %q for app %s (want %s)",
				s.Design, app, strings.Join(DesignNames(app), ", "))
		}
		if s.Frames < 1 {
			return fmt.Errorf("jobspec: tlm job needs frames >= 1, got %d", s.Frames)
		}
		switch s.Engine {
		case EngineFunctional, EngineTimed, EngineBoard:
		default:
			return fmt.Errorf("jobspec: unknown engine %q (want functional, timed or board)", s.Engine)
		}
		if err := s.Tune.validate(); err != nil {
			return err
		}
	case KindCalibrate:
		train := s.Train
		if train == "" {
			train = DefaultTrain
		}
		if err := ValidateTrain(train); err != nil {
			return err
		}
	default:
		return fmt.Errorf("jobspec: unknown job kind %q (want %s, %s or %s)", s.Kind, KindEstimate, KindTLM, KindCalibrate)
	}
	if s.ICache < 0 || s.DCache < 0 {
		return fmt.Errorf("jobspec: negative cache size %d/%d", s.ICache, s.DCache)
	}
	if s.Frames < 0 {
		return fmt.Errorf("jobspec: negative frame count %d", s.Frames)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobspec: negative timeout %v", time.Duration(s.Timeout))
	}
	if _, err := interp.ParseEngineKind(s.Exec); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if len(s.Model.JSON) > 0 {
		if _, err := pum.FromJSON(s.Model.JSON); err != nil {
			return fmt.Errorf("jobspec: inline PUM: %w", err)
		}
	}
	return nil
}

// ParseJSON decodes and validates a Spec from a JSON request body.
// Unknown fields are rejected, so a typoed option fails loudly instead of
// silently running with defaults.
func ParseJSON(data []byte) (*Spec, error) {
	s := Default()
	// The kind steers the defaults, so peek at it first.
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	switch probe.Kind {
	case KindTLM:
		s = DefaultTLM()
	case KindCalibrate:
		s = DefaultCalibrate()
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeJSON renders the spec canonically (stable field order from the
// struct definition).
func (s *Spec) EncodeJSON() ([]byte, error) {
	return json.Marshal(s)
}

// Normalized returns a copy of the spec canonicalized to resolved
// defaults: fields left at their "pick the default" zero value are
// rewritten to the value the Runner would actually use, and fields the
// job's kind never reads are cleared. Two specs describing the same job —
// one spelling a default out, one relying on the kind-probed defaults —
// normalize identically, which is what makes Fingerprint a usable
// coalescing and cache key. Presentation options that shape the response
// (Top) are deliberately kept.
func (s *Spec) Normalized() Spec {
	n := *s
	n.Tune = n.Tune.clone()
	if n.Exec == "" {
		n.Exec = "auto"
	}
	if n.Fallback < 1 {
		n.Fallback = core.DefaultFallbackCycles
	}
	switch n.Kind {
	case KindEstimate:
		if n.Source.Name == "" {
			n.Source.Name = "job.c"
		}
		// Entry/Steps steer only profiled runs.
		if n.Profile {
			if n.Entry == "" {
				n.Entry = "main"
			}
		} else {
			n.Entry, n.Steps = "", 0
		}
		// TLM-only fields are inert on an estimation job.
		n.App, n.Design, n.Engine = "", "", ""
		n.Frames, n.Seed = 0, 0
		n.Calibrate = false
		n.Tune = nil
		n.Train = ""
	case KindTLM:
		if n.App == "" {
			n.App = AppMP3
		}
		if n.Engine == "" {
			n.Engine = EngineTimed
		}
		if n.Seed == 0 {
			n.Seed = defaultSeeds[n.App]
		}
		if n.Tune.isZero() {
			n.Tune = nil
		}
		// Estimation-only fields are inert on a TLM job.
		n.Source, n.Model = Source{}, Model{}
		n.Entry, n.Steps = "", 0
		n.Train = ""
	case KindCalibrate:
		if n.Train == "" {
			n.Train = DefaultTrain
		}
		// Only the training set and the step bound shape a calibration job.
		n.Source, n.Model = Source{}, Model{}
		n.App, n.Design, n.Engine, n.Entry = "", "", "", ""
		n.Frames, n.Seed = 0, 0
		n.Calibrate = false
		n.Tune = nil
		n.ICache, n.DCache = 0, 0
		n.Profile, n.Top = false, 0
	}
	return n
}

// Fingerprint returns the sha256 hex digest of the normalized spec's
// canonical encoding — the content-addressed identity under which the
// daemon coalesces concurrent identical jobs and the DSE runner verifies
// resumed sweep points. Normalization (see Normalized) guarantees that a
// spec spelling out a default and one relying on kind-probed defaults
// hash identically; options that change the response (including
// presentation ones like Top) still hash apart.
func (s *Spec) Fingerprint() string {
	n := s.Normalized()
	data, err := json.Marshal(&n)
	if err != nil {
		// Spec is plain data; Marshal can only fail on exotic corruption.
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Options maps the spec onto pipeline options. The caller owns cache and
// metrics injection; everything request-shaped comes from the spec.
func (s *Spec) Options() (engine.Options, error) {
	kind, err := interp.ParseEngineKind(s.Exec)
	if err != nil {
		return engine.Options{}, err
	}
	return engine.Options{
		Workers:        s.Workers,
		Strict:         s.Strict,
		FallbackCycles: s.Fallback,
		Timeout:        time.Duration(s.Timeout),
		Engine:         kind,
		Verify:         s.Verify,
		Werror:         s.Werror,
	}, nil
}

// ExecKind parses the spec's IR execution engine selection.
func (s *Spec) ExecKind() (interp.EngineKind, error) {
	return interp.ParseEngineKind(s.Exec)
}
