package jobspec

import (
	"fmt"
	"os"

	"ese/internal/apps"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtl"
)

// ResolveModel materializes the spec's PE model: inline JSON wins, then
// the built-in model names. It does not touch the filesystem — the
// daemon-safe path. The returned model does not yet carry the spec's
// cache configuration; ApplyCache does that.
func (s *Spec) ResolveModel() (*pum.PUM, error) {
	if len(s.Model.JSON) > 0 {
		return pum.FromJSON(s.Model.JSON)
	}
	switch s.Model.Name {
	case "microblaze":
		return pum.MicroBlaze(), nil
	case "customhw":
		return pum.CustomHW("customhw", 100_000_000), nil
	case "dualissue":
		return pum.DualIssue(), nil
	case "":
		return nil, fmt.Errorf("jobspec: no PE model selected")
	}
	return nil, fmt.Errorf("jobspec: unknown PE model %q (want microblaze, customhw, dualissue or inline JSON)", s.Model.Name)
}

// LoadModelArg resolves a CLI -pum argument into the spec: built-in names
// stay names; anything else is read as a JSON PUM file and inlined, so the
// spec stays self-contained (and fingerprints on the file's content, not
// its path).
func (s *Spec) LoadModelArg(arg string) error {
	switch arg {
	case "microblaze", "customhw", "dualissue":
		s.Model = Model{Name: arg}
		return nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return err
	}
	if _, err := pum.FromJSON(data); err != nil {
		return err
	}
	s.Model = Model{JSON: data}
	return nil
}

// ApplyCache folds the spec's cache configuration into the model, under
// the front ends' shared convention: models that already carry cache
// statistics get retargeted to the requested sizes, and an explicit
// -icache 0 forces the uncached configuration even on models without
// calibration tables.
func (s *Spec) ApplyCache(model *pum.PUM) (*pum.PUM, error) {
	if model.Mem.HasICache || model.Mem.HasDCache || s.ICache == 0 {
		return model.WithCache(pum.CacheCfg{ISize: s.ICache, DSize: s.DCache})
	}
	return model, nil
}

// BaseModel materializes a TLM job's base processor model: the
// MicroBlaze-like soft core, calibrated on the shared training workload
// when the spec asks for it. The result depends only on s.Calibrate — the
// training workload is fixed — which is what lets the Runner and the DSE
// sweep driver memoize it across thousands of jobs.
func (s *Spec) BaseModel() (*pum.PUM, error) {
	mb := pum.MicroBlaze()
	if !s.Calibrate {
		return mb, nil
	}
	trainSrc, err := apps.MP3Source("SW", apps.TrainMP3)
	if err != nil {
		return nil, err
	}
	trainProg, err := apps.Compile("train.c", trainSrc)
	if err != nil {
		return nil, err
	}
	return rtl.Calibrate(mb, trainProg, "main", pum.StandardCacheConfigs, 0)
}

// BuildDesign materializes a TLM job's mapped platform: the (optionally
// calibrated, optionally tuned) processor model plus the named design of
// the spec's app under the spec's cache configuration.
func (s *Spec) BuildDesign() (*platform.Design, error) {
	base, err := s.BaseModel()
	if err != nil {
		return nil, err
	}
	return s.BuildDesignFrom(base)
}

// BuildDesignFrom is BuildDesign with the base processor model supplied by
// the caller (typically memoized across jobs — calibration is orders of
// magnitude more expensive than design construction). The base model is
// never mutated: tuning and cache retargeting operate on clones.
func (s *Spec) BuildDesignFrom(base *pum.PUM) (*platform.Design, error) {
	mb := base
	if t := s.Tune; !t.isZero() {
		var err error
		mb, err = base.WithDatapath(t.Depth, t.Issue, t.FUs)
		if err != nil {
			return nil, fmt.Errorf("jobspec: tune: %w", err)
		}
		if t.BranchMiss != nil {
			mb.Branch.MissRate = *t.BranchMiss
		}
		if t.BranchPenalty != nil {
			mb.Branch.Penalty = *t.BranchPenalty
		}
	}
	cacheCfg := pum.CacheCfg{ISize: s.ICache, DSize: s.DCache}
	app := s.App
	if app == "" {
		app = AppMP3
	}
	seed := s.Seed
	if seed == 0 {
		seed = defaultSeeds[app]
	}
	switch app {
	case AppMP3:
		return apps.MP3Design(s.Design, apps.MP3Config{Frames: s.Frames, Seed: seed}, mb, cacheCfg)
	case AppJPEG:
		return apps.JPEGDesign(s.Design, apps.JPEGConfig{Blocks: s.Frames, Seed: seed}, mb, cacheCfg)
	}
	return nil, fmt.Errorf("jobspec: unknown app %q", s.App)
}
