package jobspec

import (
	"context"
	"testing"

	"ese/internal/pum"
)

func TestValidateCalibrate(t *testing.T) {
	s := DefaultCalibrate()
	if err := s.Validate(); err != nil {
		t.Fatalf("default calibrate spec invalid: %v", err)
	}
	s.Train = "mp3"
	if err := s.Validate(); err != nil {
		t.Fatalf("mp3 training set rejected: %v", err)
	}
	for _, bad := range []string{"spec", "mp3+mp3", "mp3+", "+jpeg"} {
		s.Train = bad
		if err := s.Validate(); err == nil {
			t.Errorf("training set %q: want error", bad)
		}
	}
}

func TestParseJSONCalibrateDefaults(t *testing.T) {
	s, err := ParseJSON([]byte(`{"kind": "calibrate"}`))
	if err != nil {
		t.Fatal(err)
	}
	n := s.Normalized()
	if n.Train != DefaultTrain {
		t.Fatalf("normalized train %q, want %q", n.Train, DefaultTrain)
	}
	// A spec spelling the default out hashes identically.
	explicit, err := ParseJSON([]byte(`{"kind": "calibrate", "train": "mp3+jpeg"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() != explicit.Fingerprint() {
		t.Error("default and explicit training set fingerprints differ")
	}
	// A different training set hashes apart.
	other, err := ParseJSON([]byte(`{"kind": "calibrate", "train": "jpeg"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() == other.Fingerprint() {
		t.Error("distinct training sets share a fingerprint")
	}
}

func TestRunnerCalibrate(t *testing.T) {
	s := DefaultCalibrate()
	s.Train = "mp3"
	var r Runner
	res, err := r.Run(context.Background(), &s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindCalibrate || res.Calib == nil {
		t.Fatalf("unexpected result: kind %q calib %v", res.Kind, res.Calib)
	}
	c := res.Calib
	if c.Train != "mp3" || c.BranchMiss <= 0 || c.BranchMiss >= 1 {
		t.Fatalf("summary: train %q miss %v", c.Train, c.BranchMiss)
	}
	// One provenance entry per cached standard configuration.
	cached := 0
	for _, cfg := range pum.StandardCacheConfigs {
		if cfg.ISize != 0 || cfg.DSize != 0 {
			cached++
		}
	}
	if len(c.Provenance) != cached {
		t.Fatalf("provenance %d entries, want %d", len(c.Provenance), cached)
	}
	// The returned model round-trips and carries the provenance.
	model, err := pum.FromJSON(c.Model)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Calib) != cached || model.Branch.MissRate != c.BranchMiss {
		t.Fatalf("model: %d provenance entries, miss %v", len(model.Calib), model.Branch.MissRate)
	}
}
