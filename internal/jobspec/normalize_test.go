package jobspec

import (
	"context"
	"testing"

	"ese/internal/apps"
)

// Regression: a spec relying on kind-probed defaults and one spelling the
// same defaults out must share a fingerprint, or the daemon's coalescing
// and the DSE resume verification treat identical jobs as distinct.
func TestFingerprintNormalizesDefaults(t *testing.T) {
	implicit := &Spec{Kind: KindTLM, Design: "SW", Frames: 2, Calibrate: true}
	explicit := &Spec{
		Kind: KindTLM, App: AppMP3, Design: "SW", Frames: 2,
		Engine: EngineTimed, Seed: 0xC0FFEE, Calibrate: true,
		Exec: "auto", Fallback: 0,
	}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("explicit-default TLM spec fingerprints apart from the implicit one")
	}

	// A zero-valued Tune block is the same job as no Tune block at all.
	tuned := *implicit
	tuned.Tune = &Tune{}
	if tuned.Fingerprint() != implicit.Fingerprint() {
		t.Fatal("zero Tune block moved the fingerprint")
	}

	// Estimation side: source name, exec engine and entry defaults.
	a := estimateSpec()
	b := estimateSpec()
	b.Exec = ""
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal(`exec "" fingerprints apart from exec "auto"`)
	}
	c := estimateSpec()
	c.Entry = "main" // inert without Profile
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("entry on a non-profiled estimate moved the fingerprint")
	}

	// Kind-inert fields must not leak into the hash: a TLM spec carrying a
	// stale Model (say, from flag defaults) is the same TLM job.
	d := DefaultTLM()
	e := DefaultTLM()
	e.Model = Model{Name: "microblaze"}
	if d.Fingerprint() != e.Fingerprint() {
		t.Fatal("estimation-only Model field moved a TLM fingerprint")
	}
}

func TestFingerprintDistinguishesRealDifferences(t *testing.T) {
	base := DefaultTLM()
	tuned := DefaultTLM()
	tuned.Tune = &Tune{Depth: 5}
	if base.Fingerprint() == tuned.Fingerprint() {
		t.Fatal("pipeline-depth tune shares the untuned fingerprint")
	}
	wider := DefaultTLM()
	wider.Tune = &Tune{FUs: map[string]int{"alu": 2}}
	if tuned.Fingerprint() == wider.Fingerprint() || base.Fingerprint() == wider.Fingerprint() {
		t.Fatal("distinct tunes share a fingerprint")
	}
	seeded := DefaultTLM()
	seeded.Seed = 7
	if base.Fingerprint() == seeded.Fingerprint() {
		t.Fatal("non-default seed shares the default-seed fingerprint")
	}
	jpeg := DefaultTLM()
	jpeg.App = AppJPEG
	jpeg.Design = "SW"
	jpeg.Frames = 4
	mp3 := DefaultTLM()
	mp3.Design = "SW"
	mp3.Frames = 4
	if jpeg.Fingerprint() == mp3.Fingerprint() {
		t.Fatal("jpeg and mp3 jobs share a fingerprint")
	}
}

// The seed table mirrors the apps package defaults so jobspec need not
// import apps (resolve.go does). Pin the mirror against the source of
// truth.
func TestDefaultSeedsMatchApps(t *testing.T) {
	if got, want := defaultSeeds[AppMP3], apps.DefaultMP3.Seed; got != want {
		t.Fatalf("mp3 default seed %#x, apps says %#x", got, want)
	}
	if got, want := defaultSeeds[AppJPEG], apps.DefaultJPEG.Seed; got != want {
		t.Fatalf("jpeg default seed %#x, apps says %#x", got, want)
	}
}

func TestTuneValidation(t *testing.T) {
	bad := []Tune{
		{Depth: 1},
		{Depth: 17},
		{Issue: 9},
		{FUs: map[string]int{"alu": 0}},
		{BranchMiss: f64(1.5)},
		{BranchPenalty: f64(-1)},
	}
	for i, tu := range bad {
		s := DefaultTLM()
		tu := tu
		s.Tune = &tu
		if err := s.Validate(); err == nil {
			t.Errorf("bad tune %d accepted: %+v", i, tu)
		}
	}
	ok := DefaultTLM()
	ok.Tune = &Tune{Depth: 5, Issue: 2, FUs: map[string]int{"alu": 2}, BranchMiss: f64(0.1)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tune rejected: %v", err)
	}
}

func f64(v float64) *float64 { return &v }

func TestValidateApps(t *testing.T) {
	s := DefaultTLM()
	s.App = AppJPEG
	s.Design = "SW+DCT"
	if err := s.Validate(); err != nil {
		t.Fatalf("valid jpeg spec rejected: %v", err)
	}
	s.Design = "SW+1" // an mp3 design name
	if err := s.Validate(); err == nil {
		t.Fatal("mp3 design accepted for the jpeg app")
	}
	s.App = "h264"
	if err := s.Validate(); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunnerTLMJPEGAndTune(t *testing.T) {
	r := &Runner{}
	jpeg := DefaultTLM()
	jpeg.App = AppJPEG
	jpeg.Design = "SW+DCT"
	jpeg.Frames = 2
	jpeg.Calibrate = false
	if err := jpeg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), &jpeg)
	if err != nil {
		t.Fatalf("jpeg tlm run: %v", err)
	}
	if res.TLM == nil || res.TLM.EndPs == 0 {
		t.Fatalf("jpeg tlm run produced no timing: %+v", res.TLM)
	}

	// Tuning the datapath must plumb through to the simulated timing.
	plain := DefaultTLM()
	plain.Frames = 1
	plain.Calibrate = false
	tuned := plain
	tuned.Tune = &Tune{Depth: 8}
	pres, err := r.Run(context.Background(), &plain)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := r.Run(context.Background(), &tuned)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TLM.EndPs == tres.TLM.EndPs {
		t.Fatal("depth-8 tune left the simulated end time unchanged")
	}
	if tres.TLM.EndPs <= pres.TLM.EndPs {
		t.Fatalf("deeper pipeline got faster: %d -> %d ps", pres.TLM.EndPs, tres.TLM.EndPs)
	}

	// The base model is memoized per calibration setting.
	m1, err := r.BaseModel(&plain)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.BaseModel(&tuned)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("base model not memoized across jobs")
	}
}
