package jobspec

import (
	"flag"
	"time"
)

// The Bind* helpers register the flag groups the CLI front ends share,
// each writing straight into the Spec's fields. Groups are split by which
// commands need them: eseest binds cache+model+strict+verify+run, esetlm
// binds workload+cache+verify+run, esebench binds run only. Defaults come
// from the Spec the flags are bound onto, so Default()/DefaultTLM() keep
// every front end's historical defaults in one place.

// BindRun registers the execution flags every command shares: -exec and
// -timeout.
func (s *Spec) BindRun(fs *flag.FlagSet) {
	fs.StringVar(&s.Exec, "exec", s.Exec, "IR execution engine: auto | gen | compiled | tree")
	fs.DurationVar((*time.Duration)(&s.Timeout), "timeout", time.Duration(s.Timeout),
		"wall-clock watchdog for the run (0 = none)")
}

// BindCache registers -icache/-dcache.
func (s *Spec) BindCache(fs *flag.FlagSet) {
	fs.IntVar(&s.ICache, "icache", s.ICache, "i-cache size in bytes (0 = uncached)")
	fs.IntVar(&s.DCache, "dcache", s.DCache, "d-cache size in bytes (0 = uncached)")
}

// BindVerify registers -verify/-Werror.
func (s *Spec) BindVerify(fs *flag.FlagSet) {
	fs.BoolVar(&s.Verify, "verify", s.Verify, "statically verify the IR and lint the PE model")
	fs.BoolVar(&s.Werror, "Werror", s.Werror, "treat verification warnings as errors (implies nothing without -verify)")
}

// BindStrict registers eseest's -strict/-fallback degradation policy.
func (s *Spec) BindStrict(fs *flag.FlagSet) {
	fs.BoolVar(&s.Strict, "strict", s.Strict, "reject PE models that do not map every op class used")
	fs.IntVar(&s.Fallback, "fallback", s.Fallback, "fallback cycles for unmapped op classes")
}

// BindModel registers eseest's -pum model selector. The flag value may be
// a built-in name or a JSON file path; ResolveModelArg loads it.
func (s *Spec) BindModel(fs *flag.FlagSet) {
	fs.StringVar(&s.Model.Name, "pum", s.Model.Name, "PE model name or JSON file")
}

// BindProfile registers eseest's profiled-execution flags: -entry, -top
// and -steps.
func (s *Spec) BindProfile(fs *flag.FlagSet) {
	fs.StringVar(&s.Entry, "entry", s.Entry, "entry function for -profile")
	fs.IntVar(&s.Top, "top", s.Top, "rows shown by -profile (0 = all)")
	fs.Uint64Var(&s.Steps, "steps", s.Steps, "dynamic step limit for -profile (0 = none)")
}

// BindWorkload registers esetlm's workload flags: -app, -design, -frames,
// -engine and -calibrate.
func (s *Spec) BindWorkload(fs *flag.FlagSet) {
	fs.StringVar(&s.App, "app", s.App, "application: mp3 | jpeg")
	fs.StringVar(&s.Design, "design", s.Design, "design name (mp3: SW, SW+1, SW+2, SW+4; jpeg: SW, SW+DCT)")
	fs.IntVar(&s.Frames, "frames", s.Frames, "workload size (MP3 frames, or 8x8 blocks for jpeg)")
	fs.StringVar(&s.Engine, "engine", s.Engine, "functional | timed | board")
	fs.BoolVar(&s.Calibrate, "calibrate", s.Calibrate, "calibrate the PUM on the training workload")
}
