package apps

import (
	"fmt"

	"ese/internal/cache"
	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/platform"
	"ese/internal/pum"

	// Link the pre-generated ahead-of-time engines for the example apps:
	// any front end that can build these designs can also run them with
	// -exec=gen (interp.NewEngine finds them by code fingerprint).
	_ "ese/internal/codegen/registry"
)

// Compile parses, checks and lowers a C-subset source string.
func Compile(name, src string) (*cdfg.Program, error) {
	f, err := cfront.Parse(name, src)
	if err != nil {
		return nil, err
	}
	u, err := cfront.Check(f)
	if err != nil {
		return nil, err
	}
	return cdfg.Lower(u)
}

// CompileMP3 generates and compiles one MP3 design variant.
func CompileMP3(design string, cfg MP3Config) (*cdfg.Program, error) {
	src, err := MP3Source(design, cfg)
	if err != nil {
		return nil, err
	}
	return Compile("mp3_"+design+".c", src)
}

// realCache is the board cache organization for a size: 2-way, 16B lines.
func realCache(size int) cache.Config {
	return cache.Config{Size: size, LineBytes: cache.DefaultLine, Assoc: 2}
}

// MP3Design builds the mapped platform for one of the paper's designs.
// mbPUM is the (typically calibrated) MicroBlaze-like model; cacheCfg
// selects the I/D cache configuration for both the statistical model and
// the board's real caches.
func MP3Design(design string, cfg MP3Config, mbPUM *pum.PUM, cacheCfg pum.CacheCfg) (*platform.Design, error) {
	prog, err := CompileMP3(design, cfg)
	if err != nil {
		return nil, err
	}
	cpuPUM, err := mbPUM.WithCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	d := &platform.Design{
		Name:    fmt.Sprintf("%s@%s", design, cacheCfg),
		Program: prog,
		Bus:     platform.DefaultBus(),
	}
	d.PEs = append(d.PEs, &platform.PE{
		Name:   "mb",
		Kind:   platform.Processor,
		Entry:  "main",
		PUM:    cpuPUM,
		ICache: realCache(cacheCfg.ISize),
		DCache: realCache(cacheCfg.DSize),
	})
	hw := func(name, entry string) *platform.PE {
		return &platform.PE{
			Name:  name,
			Kind:  platform.HWUnit,
			Entry: entry,
			PUM:   pum.CustomHW(name, 100_000_000),
		}
	}
	switch design {
	case "SW":
	case "SW+1":
		d.PEs = append(d.PEs, hw("fc_l", "fc_left_hw"))
	case "SW+2":
		d.PEs = append(d.PEs, hw("imdct_l", "imdct_left_hw"), hw("fc_l", "fc_left_hw"))
	case "SW+4":
		d.PEs = append(d.PEs,
			hw("imdct_l", "imdct_left_hw"), hw("fc_l", "fc_left_hw"),
			hw("imdct_r", "imdct_right_hw"), hw("fc_r", "fc_right_hw"))
	default:
		return nil, fmt.Errorf("apps: unknown MP3 design %q", design)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := d.ValidateChannels(); err != nil {
		return nil, err
	}
	return d, nil
}

// JPEGDesign builds a platform for the JPEG encoder: design "SW" runs
// everything on the processor; design "SW+DCT" offloads the 2-D DCT to a
// custom hardware unit — the paper's Fig. 4 example PE in an actual
// mapping.
func JPEGDesign(design string, cfg JPEGConfig, mbPUM *pum.PUM, cacheCfg pum.CacheCfg) (*platform.Design, error) {
	var src string
	switch design {
	case "SW":
		src = JPEGSource(cfg)
	case "SW+DCT":
		src = JPEGSourceDCTHW(cfg)
	default:
		return nil, fmt.Errorf("apps: unknown JPEG design %q", design)
	}
	prog, err := Compile("jpeg_"+design+".c", src)
	if err != nil {
		return nil, err
	}
	cpuPUM, err := mbPUM.WithCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	d := &platform.Design{
		Name:    fmt.Sprintf("jpeg-%s@%s", design, cacheCfg),
		Program: prog,
		Bus:     platform.DefaultBus(),
	}
	d.PEs = append(d.PEs, &platform.PE{
		Name:   "mb",
		Kind:   platform.Processor,
		Entry:  "main",
		PUM:    cpuPUM,
		ICache: realCache(cacheCfg.ISize),
		DCache: realCache(cacheCfg.DSize),
	})
	if design == "SW+DCT" {
		d.PEs = append(d.PEs, &platform.PE{
			Name:  "dct",
			Kind:  platform.HWUnit,
			Entry: "dct_hw",
			PUM:   pum.CustomHW("dct", 100_000_000),
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := d.ValidateChannels(); err != nil {
		return nil, err
	}
	return d, nil
}
