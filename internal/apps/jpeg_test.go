package apps

import (
	"testing"

	"ese/internal/interp"
	"ese/internal/iss"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtl"
	"ese/internal/sim"
	"ese/internal/tlm"
)

func TestJPEGCompilesAndRuns(t *testing.T) {
	cfg := JPEGConfig{Blocks: 4, Seed: 3}
	prog, err := Compile("jpeg.c", JPEGSource(cfg))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := interp.New(prog)
	m.Limit = 50_000_000
	if err := m.Run("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(m.Out) < 4*2 {
		t.Fatalf("RLE stream too short: %d", len(m.Out))
	}
	// Every block's stream ends with the 0,0 marker; count them.
	markers := 0
	for i := 0; i+1 < len(m.Out); i++ {
		if m.Out[i] == 0 && m.Out[i+1] == 0 {
			markers++
		}
	}
	if markers < 4 {
		t.Fatalf("found %d end markers, want >= 4", markers)
	}
	// DC coefficients exist: at least one nonzero value per block stream.
	nonzero := 0
	for _, v := range m.Out {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 4 {
		t.Fatalf("suspiciously empty RLE stream: %v", m.Out)
	}
}

func TestJPEGEnginesAgree(t *testing.T) {
	prog, err := Compile("jpeg.c", JPEGSource(JPEGConfig{Blocks: 2, Seed: 8}))
	if err != nil {
		t.Fatal(err)
	}
	im := interp.New(prog)
	if err := im.Run("main"); err != nil {
		t.Fatal(err)
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		t.Fatal(err)
	}
	mm := iss.NewMachine(isa)
	if err := mm.Start("main"); err != nil {
		t.Fatal(err)
	}
	if err := mm.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(im.Out) != len(mm.Out) {
		t.Fatalf("stream lengths differ: %d vs %d", len(im.Out), len(mm.Out))
	}
	for i := range im.Out {
		if im.Out[i] != mm.Out[i] {
			t.Fatalf("streams differ at %d: %d vs %d", i, im.Out[i], mm.Out[i])
		}
	}
}

func TestJPEGSeedChangesStream(t *testing.T) {
	run := func(seed uint32) []int32 {
		prog, err := Compile("jpeg.c", JPEGSource(JPEGConfig{Blocks: 2, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(prog)
		if err := m.Run("main"); err != nil {
			t.Fatal(err)
		}
		return append([]int32(nil), m.Out...)
	}
	a, b := run(1), run(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestJPEGDCTOffloadFunctionallyIdentical(t *testing.T) {
	cfg := JPEGConfig{Blocks: 4, Seed: 12}
	// Reference: inline encode.
	ref, err := Compile("jpeg.c", JPEGSource(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rm := interp.New(ref)
	if err := rm.Run("main"); err != nil {
		t.Fatal(err)
	}
	// Offload design on the functional TLM.
	d, err := JPEGDesign("SW+DCT", cfg, pum.MicroBlaze(), pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tlm.RunFunctional(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := res.OutByPE["mb"]
	if len(got) != len(rm.Out) {
		t.Fatalf("stream lengths: %d vs %d", len(got), len(rm.Out))
	}
	for i := range rm.Out {
		if got[i] != rm.Out[i] {
			t.Fatalf("streams differ at %d", i)
		}
	}
}

func TestJPEGDCTOffloadSpeedsUpBoard(t *testing.T) {
	cfg := JPEGConfig{Blocks: 8, Seed: 12}
	cc := pum.CacheCfg{ISize: 2048, DSize: 2048}
	// Calibrate the statistical models on a different-seed training image;
	// the nominal (uncalibrated) model misses this loop-heavy workload by
	// >50%, which is precisely why the paper's flow calibrates.
	trainProg, err := Compile("jpeg_train.c", JPEGSource(JPEGConfig{Blocks: 4, Seed: 99}))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := rtl.Calibrate(pum.MicroBlaze(), trainProg, "main", pum.StandardCacheConfigs, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := JPEGDesign("SW", cfg, mb, cc)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := JPEGDesign("SW+DCT", cfg, mb, cc)
	if err != nil {
		t.Fatal(err)
	}
	bSW, err := rtl.RunBoard(sw, 0)
	if err != nil {
		t.Fatal(err)
	}
	bHW, err := rtl.RunBoard(hw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bHW.EndPs >= bSW.EndPs {
		t.Fatalf("DCT offload not faster on board: %d vs %d ps", bHW.EndPs, bSW.EndPs)
	}
	// And the timed TLM tracks the board within a sane band on both.
	for _, pair := range []struct {
		d   *platform.Design
		ref sim.Time
	}{{sw, bSW.EndPs}, {hw, bHW.EndPs}} {
		res, err := tlm.RunTimed(pair.d, 0)
		if err != nil {
			t.Fatal(err)
		}
		est, ref := float64(res.EndPs), float64(pair.ref)
		if est < ref*0.7 || est > ref*1.4 {
			t.Fatalf("%s: TLM %v vs board %v out of band", pair.d.Name, est, ref)
		}
	}
}
