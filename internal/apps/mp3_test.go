package apps

import (
	"strings"
	"testing"

	"ese/internal/interp"
	"ese/internal/pum"
	"ese/internal/tlm"
)

const testLimit = 200_000_000

func TestMP3SourceCompiles(t *testing.T) {
	for _, design := range MP3DesignNames {
		prog, err := CompileMP3(design, MP3Config{Frames: 1, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if prog.NumInstrs() < 300 {
			t.Fatalf("%s: suspiciously small program (%d instrs)", design, prog.NumInstrs())
		}
	}
}

// swReference decodes with the plain interpreter on the SW variant.
func swReference(t *testing.T, cfg MP3Config) []int32 {
	t.Helper()
	prog, err := CompileMP3("SW", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	m.Limit = testLimit
	if err := m.Run("main"); err != nil {
		t.Fatalf("SW decode: %v", err)
	}
	return append([]int32(nil), m.Out...)
}

func TestMP3DecodeProducesOutput(t *testing.T) {
	cfg := MP3Config{Frames: 1, Seed: 42}
	outStream := swReference(t, cfg)
	// 2 granules x 2 channels x (16 samples + nothing) + 2 final checksums.
	wantLen := 2*2*16 + 2
	if len(outStream) != wantLen {
		t.Fatalf("out stream length = %d, want %d", len(outStream), wantLen)
	}
	// The decode must not be trivially zero.
	nonzero := 0
	for _, v := range outStream {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(outStream)/4 {
		t.Fatalf("output mostly zero (%d/%d nonzero): %v", nonzero, len(outStream), outStream)
	}
}

func TestMP3SeedChangesOutput(t *testing.T) {
	a := swReference(t, MP3Config{Frames: 1, Seed: 1})
	b := swReference(t, MP3Config{Frames: 1, Seed: 2})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decodes")
	}
}

// TestAllDesignsFunctionallyIdentical is the keystone invariant: every
// hardware mapping decodes exactly the same PCM as the pure-software
// design, on the functional TLM.
func TestAllDesignsFunctionallyIdentical(t *testing.T) {
	cfg := MP3Config{Frames: 1, Seed: 42}
	ref := swReference(t, cfg)
	mb := pum.MicroBlaze()
	for _, design := range MP3DesignNames {
		d, err := MP3Design(design, cfg, mb, pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		res, err := tlm.RunFunctional(d, testLimit)
		if err != nil {
			t.Fatalf("%s: functional TLM: %v", design, err)
		}
		got := res.OutByPE["mb"]
		if len(got) != len(ref) {
			t.Fatalf("%s: out length %d, want %d", design, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: out[%d] = %d, want %d", design, i, got[i], ref[i])
			}
		}
	}
}

func TestMP3DesignShapes(t *testing.T) {
	cfg := MP3Config{Frames: 1, Seed: 3}
	wantPEs := map[string]int{"SW": 1, "SW+1": 2, "SW+2": 3, "SW+4": 5}
	for design, n := range wantPEs {
		d, err := MP3Design(design, cfg, pum.MicroBlaze(), pum.CacheCfg{ISize: 2048, DSize: 2048})
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if len(d.PEs) != n {
			t.Fatalf("%s: %d PEs, want %d", design, len(d.PEs), n)
		}
		if design == "SW+4" {
			chans := d.Channels()
			if len(chans) != 6 {
				t.Fatalf("SW+4 channels = %d, want 6", len(chans))
			}
		}
	}
}

func TestBitstreamRoundTrip(t *testing.T) {
	// The writer and the in-language getbits/decode_coef must agree; check
	// via a tiny dedicated program that decodes a known sequence.
	w := &bitWriter{}
	vals := []int{0, 1, -1, 15, -15, 16, 255, -200, 0, 7}
	for _, v := range vals {
		w.putCoef(v)
	}
	w.flush()
	w.words = append(w.words, 0, 0)

	var srcBuilder strings.Builder
	srcBuilder.WriteString("int NGRANULES = 1;\n")
	writeUintArray(&srcBuilder, "bitstream", w.words)
	srcBuilder.WriteString(`
int bs_pos = 0;
int getbits(int n) {
  int w = bs_pos >> 5;
  int off = bs_pos & 31;
  int avail = 32 - off;
  int val;
  if (n <= avail) {
    val = (bitstream[w] >> (avail - n)) & ((1 << n) - 1);
  } else {
    int rem = n - avail;
    int hi = bitstream[w] & ((1 << avail) - 1);
    int lo = (bitstream[w + 1] >> (32 - rem)) & ((1 << rem) - 1);
    val = (hi << rem) | lo;
  }
  bs_pos += n;
  return val;
}
int decode_coef() {
  int mag;
  int s;
  if (getbits(1) == 0) return 0;
  if (getbits(1) == 0) {
    mag = getbits(4);
    s = getbits(1);
    return s ? -mag : mag;
  }
  mag = getbits(8);
  s = getbits(1);
  return s ? -mag : mag;
}
void main() {
  int i;
  for (i = 0; i < 10; i++) out(decode_coef());
}
`)
	prog, err := Compile("vlc.c", srcBuilder.String())
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	if err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if m.Out[i] != int32(v) {
			t.Fatalf("coef %d decoded as %d, want %d (all: %v)", i, m.Out[i], v, m.Out)
		}
	}
}

func TestMP3TrainDiffersFromEval(t *testing.T) {
	// Calibration honesty: the training workload must not be the
	// evaluation workload.
	if DefaultMP3.Seed == TrainMP3.Seed && DefaultMP3.Frames == TrainMP3.Frames {
		t.Fatal("training and evaluation configs identical")
	}
}
