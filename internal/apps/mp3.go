// Package apps contains the evaluation applications of the paper, written
// in the tool's C subset, plus Go-side workload generators that synthesize
// their input data and fixed-point coefficient tables.
//
// The primary application is the MP3-decoder-like pipeline of Fig. 6:
// per granule, a variable-length (Huffman-style) bitstream decode,
// dequantization, mid/side stereo processing, alias reduction, a 36-point
// IMDCT with overlap-add per subband, and the synthesis FilterCore
// (DCT32 + 512-tap windowed polyphase filterbank). The four designs of §5
// map the left/right FilterCore and IMDCT stages onto custom hardware PEs:
//
//	SW    — everything on the processor;
//	SW+1  — left FilterCore on one HW unit;
//	SW+2  — left IMDCT and left FilterCore on two chained HW units;
//	SW+4  — both channels' IMDCT and FilterCore on four HW units (5 PEs).
//
// The audio math is fixed-point and synthetic (|x|^2 dequantization in
// place of |x|^(4/3), sine-derived window), but the computational structure
// — kernel shapes, table sizes, data volumes, communication pattern — is
// that of the paper's workload, which is what performance estimation needs.
package apps

import (
	"fmt"
	"math"
	"strings"
)

// Channel ids of the MP3 platform.
const (
	ChFCLIn  = 0 // time samples -> left FilterCore HW
	ChFCLOut = 1 // PCM <- left FilterCore HW
	ChIMLIn  = 2 // spectrum -> left IMDCT HW
	ChFCRIn  = 3
	ChFCROut = 4
	ChIMRIn  = 5
)

// MP3Config parameterizes the generated workload.
type MP3Config struct {
	Frames int    // MP3 frames to decode (2 granules each)
	Seed   uint32 // bitstream generator seed
}

// DefaultMP3 is the evaluation workload; TrainMP3 is the distinct training
// workload used to calibrate the statistical PUM models.
var (
	DefaultMP3 = MP3Config{Frames: 2, Seed: 0xC0FFEE}
	TrainMP3   = MP3Config{Frames: 1, Seed: 0x5EED}
)

// MP3DesignNames lists the paper's four designs in order.
var MP3DesignNames = []string{"SW", "SW+1", "SW+2", "SW+4"}

// MP3Source generates the C source of one design variant ("SW", "SW+1",
// "SW+2", "SW+4").
func MP3Source(design string, cfg MP3Config) (string, error) {
	var leftHW, rightHW int // 0 = inline, 1 = FilterCore HW, 2 = IMDCT+FC HW
	switch design {
	case "SW":
	case "SW+1":
		leftHW = 1
	case "SW+2":
		leftHW = 2
	case "SW+4":
		leftHW, rightHW = 2, 2
	default:
		return "", fmt.Errorf("apps: unknown MP3 design %q", design)
	}
	var sb strings.Builder
	writeMP3Common(&sb, cfg)
	writeMP3Main(&sb, cfg, leftHW, rightHW)
	writeMP3HWProcs(&sb, cfg, leftHW, rightHW)
	return sb.String(), nil
}

// xorshift32 is the deterministic PRNG of the workload generator.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

// bitWriter packs MSB-first bits into 32-bit words, matching getbits().
type bitWriter struct {
	words []uint32
	cur   uint32
	nbits int
}

func (w *bitWriter) put(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		w.cur = (w.cur << 1) | bit
		w.nbits++
		if w.nbits == 32 {
			w.words = append(w.words, w.cur)
			w.cur = 0
			w.nbits = 0
		}
	}
}

func (w *bitWriter) flush() {
	if w.nbits > 0 {
		w.words = append(w.words, w.cur<<(32-uint(w.nbits)))
		w.cur = 0
		w.nbits = 0
	}
}

// putCoef encodes one quantized coefficient with the VLC scheme decoded by
// decode_coef(): 0 -> "0"; |v| in 1..15 -> "10" mag4 sign;
// |v| in 16..255 -> "11" mag8 sign.
func (w *bitWriter) putCoef(v int) {
	if v == 0 {
		w.put(0, 1)
		return
	}
	mag := v
	sign := uint32(0)
	if v < 0 {
		mag = -v
		sign = 1
	}
	if mag <= 15 {
		w.put(2, 2) // "10"
		w.put(uint32(mag), 4)
		w.put(sign, 1)
		return
	}
	if mag > 255 {
		mag = 255
	}
	w.put(3, 2) // "11"
	w.put(uint32(mag), 8)
	w.put(sign, 1)
}

// genBitstream synthesizes the frame data: per granule, channel gains, the
// stereo mode bit, then 576 VLC coefficients per channel with a plausible
// spectral envelope (energetic low bands, sparse high bands).
func genBitstream(cfg MP3Config) []uint32 {
	rng := xorshift32(cfg.Seed)
	if rng == 0 {
		rng = 1
	}
	w := &bitWriter{}
	coef := func(i int) int {
		// Zero probability rises with frequency index.
		pz := 30 + i/4
		if pz > 94 {
			pz = 94
		}
		if int(rng.next()%100) < pz {
			return 0
		}
		amp := 220/(1+i/24) + 3
		v := int(rng.next()%uint32(amp)) + 1
		if rng.next()&1 == 1 {
			v = -v
		}
		return v
	}
	for fr := 0; fr < cfg.Frames; fr++ {
		for g := 0; g < 2; g++ {
			w.put(rng.next()%20, 5) // gainL
			w.put(rng.next()%20, 5) // gainR
			w.put(rng.next()&1, 1)  // mid/side flag
			for i := 0; i < 576; i++ {
				w.putCoef(coef(i))
			}
			for i := 0; i < 576; i++ {
				w.putCoef(coef(i))
			}
		}
	}
	w.flush()
	// Slack words so boundary-crossing reads at the end stay in range.
	w.words = append(w.words, 0, 0)
	return w.words
}

// Fixed-point table generators (Q14 unless noted).

func dct32Table() []int32 {
	t := make([]int32, 32*32)
	for i := 0; i < 32; i++ {
		for k := 0; k < 32; k++ {
			t[i*32+k] = int32(math.Round(16384 * math.Cos(float64(2*k+1)*float64(i)*math.Pi/64)))
		}
	}
	return t
}

func imdct36Table() []int32 {
	t := make([]int32, 36*18)
	for n := 0; n < 36; n++ {
		for k := 0; k < 18; k++ {
			t[n*18+k] = int32(math.Round(16384 * math.Cos(math.Pi/72*float64(2*n+1+18)*float64(2*k+1))))
		}
	}
	return t
}

func sineWindow36() []int32 {
	t := make([]int32, 36)
	for n := 0; n < 36; n++ {
		t[n] = int32(math.Round(16384 * math.Sin(math.Pi/36*(float64(n)+0.5))))
	}
	return t
}

func synthesisWindow() []int32 {
	t := make([]int32, 512)
	for i := 0; i < 512; i++ {
		x := (float64(i) + 0.5) / 512
		// Lowpass-ish positive window with decaying lobes.
		t[i] = int32(math.Round(16384 * math.Sin(math.Pi*x) * (1 - 0.7*x)))
	}
	return t
}

// aliasCoefs returns the cs/ca butterfly coefficients of alias reduction.
func aliasCoefs() (cs, ca []int32) {
	ci := []float64{-0.6, -0.535, -0.33, -0.185, -0.095, -0.041, -0.0142, -0.0037}
	cs = make([]int32, 8)
	ca = make([]int32, 8)
	for i, c := range ci {
		d := math.Sqrt(1 + c*c)
		cs[i] = int32(math.Round(16384 / d))
		ca[i] = int32(math.Round(16384 * c / d))
	}
	return cs, ca
}

func writeIntArray(sb *strings.Builder, name string, vals32 []int32) {
	fmt.Fprintf(sb, "int %s[%d] = {", name, len(vals32))
	for i, v := range vals32 {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%20 == 0 {
			sb.WriteString("\n  ")
		}
		fmt.Fprintf(sb, "%d", v)
	}
	sb.WriteString("};\n")
}

func writeUintArray(sb *strings.Builder, name string, vals []uint32) {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = int32(v)
	}
	writeIntArray(sb, name, out)
}

// writeMP3Common emits the tables, state, and kernel functions shared by
// every design variant.
func writeMP3Common(sb *strings.Builder, cfg MP3Config) {
	fmt.Fprintf(sb, "// MP3-decoder-like workload: %d frames, seed 0x%X (generated)\n", cfg.Frames, cfg.Seed)
	fmt.Fprintf(sb, "int NGRANULES = %d;\n", cfg.Frames*2)
	writeUintArray(sb, "bitstream", genBitstream(cfg))
	writeIntArray(sb, "dct32tab", dct32Table())
	writeIntArray(sb, "imdcttab", imdct36Table())
	writeIntArray(sb, "win36", sineWindow36())
	writeIntArray(sb, "wintab", synthesisWindow())
	cs, ca := aliasCoefs()
	writeIntArray(sb, "csa_cs", cs)
	writeIntArray(sb, "csa_ca", ca)
	sb.WriteString(`
int bs_pos = 0;          // bitstream cursor (bits)

// Work buffers (spectra, time samples, PCM) per channel.
int qL[576]; int qR[576];
int spL[576]; int spR[576];
int tsL[576]; int tsR[576];
int pcmL[576]; int pcmR[576];

// Filterbank and IMDCT persistent state per channel.
int fifoL[512]; int fifoR[512];
int overL[576]; int overR[576];

int chkL = 0;
int chkR = 0;

// getbits reads n (1..16) bits MSB-first from the packed bitstream.
int getbits(int n) {
  int w = bs_pos >> 5;
  int off = bs_pos & 31;
  int avail = 32 - off;
  int val;
  if (n <= avail) {
    val = (bitstream[w] >> (avail - n)) & ((1 << n) - 1);
  } else {
    int rem = n - avail;
    int hi = bitstream[w] & ((1 << avail) - 1);
    int lo = (bitstream[w + 1] >> (32 - rem)) & ((1 << rem) - 1);
    val = (hi << rem) | lo;
  }
  bs_pos += n;
  return val;
}

// decode_coef decodes one VLC-coded quantized coefficient.
int decode_coef() {
  int mag;
  int s;
  if (getbits(1) == 0) return 0;
  if (getbits(1) == 0) {
    mag = getbits(4);
    s = getbits(1);
    return s ? -mag : mag;
  }
  mag = getbits(8);
  s = getbits(1);
  return s ? -mag : mag;
}

// huffman_granule fills one channel's 576 quantized coefficients.
void huffman_granule(int q[]) {
  int i;
  for (i = 0; i < 576; i++) q[i] = decode_coef();
}

// dequant applies the nonlinear requantization with the granule gain.
void dequant_granule(int q[], int sp[], int gain) {
  int i;
  for (i = 0; i < 576; i++) {
    int v = q[i];
    int a = v < 0 ? -v : v;
    int p = a * a;
    p = (p * gain) >> 12;
    sp[i] = v < 0 ? -p : p;
  }
}

// stereo_ms reconstructs left/right from mid/side when the flag is set.
void stereo_ms(int l[], int r[], int ms) {
  int i;
  if (ms == 0) return;
  for (i = 0; i < 576; i++) {
    int m = l[i];
    int s = r[i];
    l[i] = (m + s) >> 1;
    r[i] = (m - s) >> 1;
  }
}

// alias_reduce applies the 8-coefficient butterflies across subband
// boundaries.
void alias_reduce(int sp[]) {
  int sb;
  int i;
  for (sb = 1; sb < 32; sb++) {
    int b0 = sb * 18;
    for (i = 0; i < 8; i++) {
      int a = sp[b0 - 1 - i];
      int b = sp[b0 + i];
      sp[b0 - 1 - i] = (a * csa_cs[i] - b * csa_ca[i]) >> 14;
      sp[b0 + i] = (b * csa_cs[i] + a * csa_ca[i]) >> 14;
    }
  }
}

`)
	// The hot kernels are emitted with their inner reduction loops fully
	// unrolled, as an optimizing compiler would: this yields the large
	// straight-line basic blocks the estimation technique targets, and a
	// realistic code footprint (several KB) so the i-cache sweep of the
	// evaluation actually exercises capacity misses.
	sb.WriteString(`
// imdct_granule transforms 32 subbands x 18 spectral lines into 18 time
// slots of 32 subband samples with 50% overlap-add. The 18-term reduction
// is fully unrolled.
void imdct_granule(int sp[], int ts[], int over[]) {
  int sb;
  int n;
  for (sb = 0; sb < 32; sb++) {
    int base = sb * 18;
    for (n = 0; n < 36; n++) {
      int row = n * 18;
      int acc = sp[base] * imdcttab[row] >> 14;
`)
	for k := 1; k < 18; k++ {
		fmt.Fprintf(sb, "      acc += sp[base + %d] * imdcttab[row + %d] >> 14;\n", k, k)
	}
	sb.WriteString(`      acc = acc * win36[n] >> 14;
      if (n < 18) {
        ts[n * 32 + sb] = acc + over[base + n];
      } else {
        over[base + n - 18] = acc;
      }
    }
  }
}

// dct32 computes the 32-point transform of one time slot; the 32-term
// reduction is fully unrolled.
void dct32(int s[], int sIdx, int v[]) {
  int i;
  for (i = 0; i < 32; i++) {
    int row = i * 32;
    int acc = s[sIdx] * dct32tab[row] >> 14;
`)
	for k := 1; k < 32; k++ {
		fmt.Fprintf(sb, "    acc += s[sIdx + %d] * dct32tab[row + %d] >> 14;\n", k, k)
	}
	sb.WriteString(`    v[i] = acc >> 6;
  }
}

// filtercore runs the synthesis filterbank on one granule: per time slot a
// DCT32, a 32-sample shift into the 512-entry FIFO (unrolled x8), and the
// 16-tap windowed polyphase sum per output sample (unrolled).
void filtercore(int ts[], int pcm[], int fifo[]) {
  int slot;
  int i;
  int v[32];
  for (slot = 0; slot < 18; slot++) {
    dct32(ts, slot * 32, v);
    for (i = 511; i >= 39; i -= 8) {
`)
	for u := 0; u < 8; u++ {
		fmt.Fprintf(sb, "      fifo[i - %d] = fifo[i - %d];\n", u, u+32)
	}
	sb.WriteString(`    }
    for (i = 0; i < 32; i++) fifo[i] = v[i];
    for (i = 0; i < 32; i++) {
      int acc = fifo[i] * wintab[i] >> 15;
`)
	for m := 1; m < 16; m++ {
		fmt.Fprintf(sb, "      acc += fifo[i + %d] * wintab[i + %d] >> 15;\n", m*32, m*32)
	}
	sb.WriteString(`      pcm[slot * 32 + i] = acc;
    }
  }
}

// checksum folds a granule of PCM into a rolling checksum and emits every
// 37th sample for fine-grained comparison.
int checksum(int pcm[], int chk) {
  int i;
  for (i = 0; i < 576; i++) {
    chk = chk * 31 + pcm[i];
    if (i % 37 == 0) out(pcm[i]);
  }
  return chk;
}
`)
}

// writeMP3Main emits the processor process for the given mapping.
func writeMP3Main(sb *strings.Builder, cfg MP3Config, leftHW, rightHW int) {
	sb.WriteString(`
void main() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    int gainL = 32 + getbits(5);
    int gainR = 32 + getbits(5);
    int ms = getbits(1);
    huffman_granule(qL);
    huffman_granule(qR);
    dequant_granule(qL, spL, gainL);
    dequant_granule(qR, spR, gainR);
    stereo_ms(spL, spR, ms);
    alias_reduce(spL);
    alias_reduce(spR);
`)
	// Dispatch the left channel to hardware first, then work on (or
	// dispatch) the right channel, and only then collect the left PCM:
	// this overlaps the hardware pipelines with the processor, which is
	// how the mappings actually reduce decode time.
	switch leftHW {
	case 1:
		fmt.Fprintf(sb, `    imdct_granule(spL, tsL, overL);
    send(%d, tsL, 576);
`, ChFCLIn)
	case 2:
		fmt.Fprintf(sb, "    send(%d, spL, 576);\n", ChIMLIn)
	}
	switch rightHW {
	case 0:
		sb.WriteString(`    imdct_granule(spR, tsR, overR);
    filtercore(tsR, pcmR, fifoR);
`)
	case 1:
		fmt.Fprintf(sb, `    imdct_granule(spR, tsR, overR);
    send(%d, tsR, 576);
`, ChFCRIn)
	case 2:
		fmt.Fprintf(sb, "    send(%d, spR, 576);\n", ChIMRIn)
	}
	switch leftHW {
	case 0:
		sb.WriteString(`    imdct_granule(spL, tsL, overL);
    filtercore(tsL, pcmL, fifoL);
`)
	default:
		fmt.Fprintf(sb, "    recv(%d, pcmL, 576);\n", ChFCLOut)
	}
	if rightHW != 0 {
		fmt.Fprintf(sb, "    recv(%d, pcmR, 576);\n", ChFCROut)
	}
	sb.WriteString(`    chkL = checksum(pcmL, chkL);
    chkR = checksum(pcmR, chkR);
  }
  out(chkL);
  out(chkR);
}
`)
}

// writeMP3HWProcs emits the custom-hardware processes for the mapping.
func writeMP3HWProcs(sb *strings.Builder, cfg MP3Config, leftHW, rightHW int) {
	if leftHW == 1 {
		fmt.Fprintf(sb, `
void fc_left_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, tsL, 576);
    filtercore(tsL, pcmL, fifoL);
    send(%d, pcmL, 576);
  }
}
`, ChFCLIn, ChFCLOut)
	}
	if leftHW == 2 {
		fmt.Fprintf(sb, `
void imdct_left_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, spL, 576);
    imdct_granule(spL, tsL, overL);
    send(%d, tsL, 576);
  }
}

void fc_left_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, tsL, 576);
    filtercore(tsL, pcmL, fifoL);
    send(%d, pcmL, 576);
  }
}
`, ChIMLIn, ChFCLIn, ChFCLIn, ChFCLOut)
	}
	if rightHW == 1 {
		fmt.Fprintf(sb, `
void fc_right_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, tsR, 576);
    filtercore(tsR, pcmR, fifoR);
    send(%d, pcmR, 576);
  }
}
`, ChFCRIn, ChFCROut)
	}
	if rightHW == 2 {
		fmt.Fprintf(sb, `
void imdct_right_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, spR, 576);
    imdct_granule(spR, tsR, overR);
    send(%d, tsR, 576);
  }
}

void fc_right_hw() {
  int g;
  for (g = 0; g < NGRANULES; g++) {
    recv(%d, tsR, 576);
    filtercore(tsR, pcmR, fifoR);
    send(%d, pcmR, 576);
  }
}
`, ChIMRIn, ChFCRIn, ChFCRIn, ChFCROut)
	}
}
