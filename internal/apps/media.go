package apps

import "strings"

// MediaSource combines the MP3-like decoder and the JPEG-like encoder into
// one translation unit with distinct entry points (`main` for the decoder,
// `jpeg_main` for the encoder), for consolidation studies: both processes
// mapped to a single processor under the timed RTOS model, or to separate
// PEs. The JPEG encoder's identifiers are prefixed to avoid collisions.
func MediaSource(design string, mp3 MP3Config, jpeg JPEGConfig) (string, error) {
	dec, err := MP3Source(design, mp3)
	if err != nil {
		return "", err
	}
	enc := JPEGSource(jpeg)
	// Prefix the encoder's global names and entry so the two programs
	// coexist in one unit.
	for _, name := range []string{
		"NBLOCKS", "image", "dct8tab", "quanttab", "zigzag",
		"work", "tmp", "coef",
		"dct8_rows", "dct8_cols", "quantize_zigzag", "rle_emit",
	} {
		enc = replaceIdent(enc, name, "jpeg_"+name)
	}
	enc = strings.Replace(enc, "void main() {", "void jpeg_main() {", 1)
	return dec + "\n" + enc, nil
}

// replaceIdent replaces whole-identifier occurrences of old with new.
func replaceIdent(src, old, new string) string {
	isIdent := func(c byte) bool {
		return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	var sb strings.Builder
	for i := 0; i < len(src); {
		j := strings.Index(src[i:], old)
		if j < 0 {
			sb.WriteString(src[i:])
			break
		}
		j += i
		before := j == 0 || !isIdent(src[j-1])
		afterIdx := j + len(old)
		after := afterIdx >= len(src) || !isIdent(src[afterIdx])
		sb.WriteString(src[i:j])
		if before && after {
			sb.WriteString(new)
		} else {
			sb.WriteString(old)
		}
		i = afterIdx
	}
	return sb.String()
}
