package apps

import (
	"fmt"
	"math"
	"strings"
)

// JPEGConfig parameterizes the JPEG-like encoder workload: a secondary
// application used to demonstrate retargetability (the estimator works on
// any C process, not just the MP3 pipeline).
type JPEGConfig struct {
	Blocks int    // number of 8x8 blocks to encode
	Seed   uint32 // image generator seed
}

// DefaultJPEG is the standard encoder workload; TrainJPEG is the distinct
// (smaller) training workload used to calibrate statistical PUM models, so
// evaluation never scores on its own training input.
var (
	DefaultJPEG = JPEGConfig{Blocks: 24, Seed: 0xBEEF}
	TrainJPEG   = JPEGConfig{Blocks: 8, Seed: 0x7E57}
)

// JPEGDesignNames lists the JPEG mappings in order.
var JPEGDesignNames = []string{"SW", "SW+DCT"}

// JPEG channel ids (DCT hardware offload design).
const (
	ChDCTIn  = 10 // 64-pixel block -> DCT HW
	ChDCTOut = 11 // transformed block <- DCT HW
)

// JPEGSource generates the C source of the encoder: per 8x8 block, a
// level shift, a separable 2-D DCT (fixed point), quantization with a
// standard-shaped table, zigzag reordering, and run-length encoding of the
// coefficients, emitting the RLE stream through out().
func JPEGSource(cfg JPEGConfig) string {
	return jpegSource(cfg, false)
}

// JPEGSourceDCTHW generates the DCT-offload variant: the processor ships
// each level-shifted block to a custom DCT hardware unit (the paper's
// Fig. 4 example PE) and quantizes/encodes the returned coefficients. The
// HW process entry is "dct_hw".
func JPEGSourceDCTHW(cfg JPEGConfig) string {
	return jpegSource(cfg, true)
}

func jpegSource(cfg JPEGConfig, offload bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// JPEG-like encoder workload: %d blocks, seed 0x%X (generated)\n", cfg.Blocks, cfg.Seed)
	fmt.Fprintf(&sb, "int NBLOCKS = %d;\n", cfg.Blocks)
	writeIntArray(&sb, "image", jpegImage(cfg))
	writeIntArray(&sb, "dct8tab", dct8Table())
	writeIntArray(&sb, "quanttab", quantTable())
	writeIntArray(&sb, "zigzag", zigzagOrder())
	sb.WriteString(`
int work[64];
int tmp[64];
int coef[64];

// dct8_rows applies the 8-point DCT to each row of work into tmp.
void dct8_rows() {
  int r;
  int i;
  int k;
  for (r = 0; r < 8; r++) {
    for (i = 0; i < 8; i++) {
      int acc = 0;
      for (k = 0; k < 8; k++) {
        acc += work[r * 8 + k] * dct8tab[i * 8 + k] >> 12;
      }
      tmp[r * 8 + i] = acc;
    }
  }
}

// dct8_cols applies the 8-point DCT to each column of tmp into work.
void dct8_cols() {
  int c;
  int i;
  int k;
  for (c = 0; c < 8; c++) {
    for (i = 0; i < 8; i++) {
      int acc = 0;
      for (k = 0; k < 8; k++) {
        acc += tmp[k * 8 + c] * dct8tab[i * 8 + k] >> 12;
      }
      work[i * 8 + c] = acc >> 3;
    }
  }
}

// quantize_zigzag divides by the quantization table and reorders.
void quantize_zigzag() {
  int i;
  for (i = 0; i < 64; i++) {
    int v = work[zigzag[i]];
    coef[i] = v / quanttab[zigzag[i]];
  }
}

// rle_emit run-length encodes the 64 coefficients: (run, value) pairs with
// a 0,0 end marker, all through out().
void rle_emit() {
  int i;
  int run = 0;
  for (i = 0; i < 64; i++) {
    if (coef[i] == 0) {
      run++;
    } else {
      out(run);
      out(coef[i]);
      run = 0;
    }
  }
  out(0);
  out(0);
}

`)
	if offload {
		fmt.Fprintf(&sb, `
void main() {
  int b;
  int i;
  for (b = 0; b < NBLOCKS; b++) {
    for (i = 0; i < 64; i++) {
      work[i] = image[b * 64 + i] - 128;
    }
    send(%d, work, 64);
    recv(%d, work, 64);
    quantize_zigzag();
    rle_emit();
  }
}

// dct_hw is the custom DCT unit process (the paper's Fig. 4 example): it
// receives level-shifted blocks and returns their 2-D transform.
void dct_hw() {
  int b;
  for (b = 0; b < NBLOCKS; b++) {
    recv(%d, work, 64);
    dct8_rows();
    dct8_cols();
    send(%d, work, 64);
  }
}
`, ChDCTIn, ChDCTOut, ChDCTIn, ChDCTOut)
	} else {
		sb.WriteString(`
void main() {
  int b;
  int i;
  for (b = 0; b < NBLOCKS; b++) {
    for (i = 0; i < 64; i++) {
      work[i] = image[b * 64 + i] - 128;
    }
    dct8_rows();
    dct8_cols();
    quantize_zigzag();
    rle_emit();
  }
}
`)
	}
	return sb.String()
}

// jpegImage synthesizes cfg.Blocks 8x8 blocks of smooth-ish pixel data.
func jpegImage(cfg JPEGConfig) []int32 {
	rng := xorshift32(cfg.Seed)
	if rng == 0 {
		rng = 1
	}
	img := make([]int32, cfg.Blocks*64)
	for b := 0; b < cfg.Blocks; b++ {
		base := int32(rng.next()%160) + 40
		fx := int32(rng.next()%7) + 1
		fy := int32(rng.next()%7) + 1
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				noise := int32(rng.next()%9) - 4
				v := base + int32(x)*fx + int32(y)*fy + noise
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img[b*64+y*8+x] = v
			}
		}
	}
	return img
}

func dct8Table() []int32 {
	t := make([]int32, 64)
	for i := 0; i < 8; i++ {
		for k := 0; k < 8; k++ {
			t[i*8+k] = int32(math.Round(4096 * math.Cos(float64(2*k+1)*float64(i)*math.Pi/16) / 2))
		}
	}
	return t
}

func quantTable() []int32 {
	// Roughly the shape of the JPEG luminance table.
	t := make([]int32, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			t[y*8+x] = int32(8 + 3*(x+y) + x*y/2)
		}
	}
	return t
}

func zigzagOrder() []int32 {
	t := make([]int32, 64)
	x, y := 0, 0
	up := true
	for i := 0; i < 64; i++ {
		t[i] = int32(y*8 + x)
		if up {
			if x == 7 {
				y++
				up = false
			} else if y == 0 {
				x++
				up = false
			} else {
				x++
				y--
			}
		} else {
			if y == 7 {
				x++
				up = true
			} else if x == 0 {
				y++
				up = true
			} else {
				x--
				y++
			}
		}
	}
	return t
}
