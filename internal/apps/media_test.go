package apps

import (
	"testing"

	"ese/internal/interp"
)

func TestMediaSourceCompilesAndBothEntriesRun(t *testing.T) {
	src, err := MediaSource("SW", MP3Config{Frames: 1, Seed: 5}, JPEGConfig{Blocks: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile("media.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.Func("main") == nil || prog.Func("jpeg_main") == nil {
		t.Fatal("missing entries")
	}
	// The decoder entry behaves like the standalone decoder.
	m := interp.New(prog)
	m.Limit = 100_000_000
	if err := m.Run("main"); err != nil {
		t.Fatalf("decoder: %v", err)
	}
	decOut := append([]int32(nil), m.Out...)

	standalone, err := CompileMP3("SW", MP3Config{Frames: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := interp.New(standalone)
	ref.Limit = 100_000_000
	if err := ref.Run("main"); err != nil {
		t.Fatal(err)
	}
	if len(decOut) != len(ref.Out) {
		t.Fatalf("combined decoder out differs: %d vs %d values", len(decOut), len(ref.Out))
	}
	for i := range ref.Out {
		if decOut[i] != ref.Out[i] {
			t.Fatalf("combined decoder diverges at %d", i)
		}
	}

	// The encoder entry behaves like the standalone encoder.
	m2 := interp.New(prog)
	m2.Limit = 100_000_000
	if err := m2.Run("jpeg_main"); err != nil {
		t.Fatalf("encoder: %v", err)
	}
	standaloneJ, err := Compile("jpeg.c", JPEGSource(JPEGConfig{Blocks: 2, Seed: 6}))
	if err != nil {
		t.Fatal(err)
	}
	refJ := interp.New(standaloneJ)
	if err := refJ.Run("main"); err != nil {
		t.Fatal(err)
	}
	if len(m2.Out) != len(refJ.Out) {
		t.Fatalf("combined encoder out differs: %d vs %d values", len(m2.Out), len(refJ.Out))
	}
	for i := range refJ.Out {
		if m2.Out[i] != refJ.Out[i] {
			t.Fatalf("combined encoder diverges at %d", i)
		}
	}
}

func TestReplaceIdent(t *testing.T) {
	cases := []struct{ src, old, new, want string }{
		{"work[i] = work2;", "work", "jpeg_work", "jpeg_work[i] = work2;"},
		{"network", "work", "X", "network"},
		{"work work_x work", "work", "W", "W work_x W"},
		{"", "a", "b", ""},
	}
	for _, c := range cases {
		if got := replaceIdent(c.src, c.old, c.new); got != c.want {
			t.Errorf("replaceIdent(%q, %q, %q) = %q, want %q", c.src, c.old, c.new, got, c.want)
		}
	}
}
