// Package diag is the failure-containment layer of the estimation
// pipeline. The estimator is meant to run "in the loop" of design-space
// exploration, so a malformed model, an ill-formed source, or a runaway
// simulation must produce a bounded, diagnosable failure — never a hang or
// a process-killing panic. This package supplies the three pieces every
// stage shares:
//
//   - structured, source-positioned Diagnostics (severity, stage,
//     block/op location) collected into a concurrency-safe List;
//   - the typed cancellation errors ErrCanceled and ErrDeadline that a
//     context-aware stage returns when it is cut short, plus FromContext
//     to translate a context's state into them;
//   - Guard, a recover boundary that converts a residual panic inside a
//     stage into a *PanicError carrying the stage tag and stack trace.
package diag

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Info is advisory output (timings, configuration echoes).
	Info Severity = iota
	// Warning marks degraded but usable results (e.g. a basic block
	// estimated with a fallback latency for an unmapped op class).
	Warning
	// Error marks a failure of the emitting stage.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Stage names the pipeline stage a diagnostic originates from.
type Stage string

// The pipeline stages, in flow order.
const (
	StageParse    Stage = "parse"
	StageCheck    Stage = "check"
	StageLower    Stage = "lower"
	StageSimplify Stage = "simplify"
	StageVerify   Stage = "verify"
	StageAnnotate Stage = "annotate"
	StageSimulate Stage = "simulate"
	StageGenerate Stage = "generate"
)

// Diagnostic is one structured, source-positioned message. Pos is a
// free-form location: "file:line:col" for front-end stages, "func/bb3"
// for per-block estimation messages, "pe/task" for simulation messages;
// empty when no location applies.
type Diagnostic struct {
	Severity Severity
	Stage    Stage
	Pos      string
	Msg      string
	// Err is the underlying error, when the diagnostic wraps one.
	Err error
}

// String renders the diagnostic as "stage: severity: pos: msg".
func (d Diagnostic) String() string {
	var sb strings.Builder
	sb.WriteString(string(d.Stage))
	sb.WriteString(": ")
	sb.WriteString(d.Severity.String())
	if d.Pos != "" {
		sb.WriteString(": ")
		sb.WriteString(d.Pos)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Msg)
	return sb.String()
}

// Error makes an Error-severity diagnostic usable as a Go error.
func (d Diagnostic) Error() string { return d.String() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (d Diagnostic) Unwrap() error { return d.Err }

// List is a concurrency-safe diagnostic collector shared by the pipeline
// stages. The zero value is ready to use; a nil *List discards everything,
// so emitting code never needs a nil check.
type List struct {
	mu sync.Mutex
	ds []Diagnostic
}

// Add appends one diagnostic.
func (l *List) Add(d Diagnostic) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

// Infof emits an Info diagnostic.
func (l *List) Infof(stage Stage, pos, format string, args ...any) {
	l.Add(Diagnostic{Severity: Info, Stage: stage, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf emits a Warning diagnostic.
func (l *List) Warnf(stage Stage, pos, format string, args ...any) {
	l.Add(Diagnostic{Severity: Warning, Stage: stage, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Errorf emits an Error diagnostic.
func (l *List) Errorf(stage Stage, pos, format string, args ...any) {
	l.Add(Diagnostic{Severity: Error, Stage: stage, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// AddError records err as an Error diagnostic for the stage (no-op on nil
// err). If err already is a Diagnostic it is kept verbatim.
func (l *List) AddError(stage Stage, err error) {
	if l == nil || err == nil {
		return
	}
	var d Diagnostic
	if errors.As(err, &d) {
		l.Add(d)
		return
	}
	l.Add(Diagnostic{Severity: Error, Stage: stage, Msg: err.Error(), Err: err})
}

// All returns a snapshot of the collected diagnostics in emission order.
func (l *List) All() []Diagnostic {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Diagnostic(nil), l.ds...)
}

// Count returns the number of diagnostics at exactly the given severity.
func (l *List) Count(s Severity) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.ds {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Len returns the total number of collected diagnostics.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

// String renders every diagnostic, one per line.
func (l *List) String() string {
	var sb strings.Builder
	for _, d := range l.All() {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ------------------------------------------------------------ cancellation

// ErrCanceled is the typed error a stage returns when its context was
// canceled. It wraps context.Canceled, so both errors.Is(err, ErrCanceled)
// and errors.Is(err, context.Canceled) hold.
var ErrCanceled = &cancelError{msg: "run canceled", cause: context.Canceled}

// ErrDeadline is the typed error a stage returns when its context's
// deadline (or the wall-clock watchdog) expired. It wraps
// context.DeadlineExceeded.
var ErrDeadline = &cancelError{msg: "deadline exceeded", cause: context.DeadlineExceeded}

type cancelError struct {
	msg   string
	cause error
}

func (e *cancelError) Error() string { return e.msg }
func (e *cancelError) Unwrap() error { return e.cause }

// FromContext translates the context's state into the typed cancellation
// errors: nil while the context is live, ErrDeadline after its deadline,
// ErrCanceled after a cancel. Stages with internal loops call this
// periodically.
func FromContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// IsCancellation reports whether err stems from a canceled or expired
// context (directly or wrapped).
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ---------------------------------------------------------- panic recovery

// PanicError is a panic recovered at a pipeline stage boundary, converted
// into an ordinary error carrying the stage tag and the stack trace of the
// panicking goroutine.
type PanicError struct {
	Stage Stage
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal panic: %v", e.Stage, e.Value)
}

// Guard runs fn and converts a panic inside it into a *PanicError tagged
// with the stage. Errors returned by fn pass through unchanged. Every
// pipeline stage boundary runs inside a Guard, so no input reachable
// through the public API can kill the process.
func Guard(stage Stage, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Stage: stage, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}
