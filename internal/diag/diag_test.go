package diag

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: Warning, Stage: StageAnnotate, Pos: "main/bb3", Msg: "unmapped op class"}
	got := d.String()
	want := "annotate: warning: main/bb3: unmapped op class"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	e := Diagnostic{Severity: Error, Stage: StageParse, Msg: "boom"}
	if !strings.Contains(e.Error(), "parse: error: boom") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestListCollectsConcurrently(t *testing.T) {
	var l List
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Warnf(StageAnnotate, "", "w%d", i)
			l.Errorf(StageSimulate, "", "e%d", i)
		}(i)
	}
	wg.Wait()
	if got := l.Len(); got != 100 {
		t.Fatalf("Len() = %d, want 100", got)
	}
	if got := l.Count(Warning); got != 50 {
		t.Fatalf("Count(Warning) = %d, want 50", got)
	}
	if got := l.Count(Error); got != 50 {
		t.Fatalf("Count(Error) = %d, want 50", got)
	}
}

func TestNilListIsSafe(t *testing.T) {
	var l *List
	l.Warnf(StageAnnotate, "", "ignored")
	l.AddError(StageSimulate, errors.New("ignored"))
	if l.Len() != 0 || l.All() != nil || l.Count(Warning) != 0 {
		t.Fatal("nil list must discard everything")
	}
}

func TestAddErrorKeepsDiagnostic(t *testing.T) {
	var l List
	orig := Diagnostic{Severity: Error, Stage: StageCheck, Pos: "f.c:3:1", Msg: "bad"}
	l.AddError(StageSimulate, fmt.Errorf("wrapped: %w", orig))
	ds := l.All()
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics", len(ds))
	}
	if ds[0].Stage != StageCheck || ds[0].Pos != "f.c:3:1" {
		t.Fatalf("diagnostic not preserved: %+v", ds[0])
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := FromContext(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatal("canceled context must not be ErrDeadline")
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	derr := FromContext(dctx)
	if !errors.Is(derr, ErrDeadline) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("expired context: %v", derr)
	}
	if !IsCancellation(derr) || !IsCancellation(err) {
		t.Fatal("IsCancellation must hold for both")
	}
	if IsCancellation(errors.New("other")) {
		t.Fatal("IsCancellation on unrelated error")
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard(StageAnnotate, func() error {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Stage != StageAnnotate || pe.Value != "kaboom" {
		t.Fatalf("panic not tagged: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("stack trace missing")
	}
	if !strings.Contains(pe.Error(), "annotate: internal panic: kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestGuardPassesThrough(t *testing.T) {
	if err := Guard(StageParse, func() error { return nil }); err != nil {
		t.Fatalf("nil path: %v", err)
	}
	want := errors.New("plain")
	if err := Guard(StageParse, func() error { return want }); err != want {
		t.Fatalf("error path: %v", err)
	}
}
