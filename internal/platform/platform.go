// Package platform describes a heterogeneous multiprocessor design: the
// set of processing elements, the mapping of application processes (entry
// functions of one lowered program) onto them, and the shared-bus
// communication parameters. A Design is the "design decisions at
// transaction level" input of the paper's flow: the same Design drives the
// timed-TLM generator, the functional TLM, and the cycle-accurate board
// model, so every engine simulates the same system.
package platform

import (
	"fmt"
	"sort"

	"ese/internal/cache"
	"ese/internal/cdfg"
	"ese/internal/pum"
	"ese/internal/rtos"
)

// PEKind distinguishes programmable processors from custom hardware units.
type PEKind int

const (
	// Processor PEs execute generated ISA code; on the board they run
	// through the cycle-accurate pipeline with real caches.
	Processor PEKind = iota
	// HWUnit PEs are synthesized custom hardware; on the board they
	// execute their list schedule cycle-exactly with local block RAM.
	HWUnit
)

func (k PEKind) String() string {
	if k == Processor {
		return "proc"
	}
	return "hw"
}

// SWTask is one of several application processes multiplexed onto a
// Processor PE by the timed RTOS model (the paper's future-work
// extension). Tasks have private state and communicate — with each other
// and with other PEs — only through channels, like any process.
type SWTask struct {
	Name     string
	Entry    string
	Priority int // higher runs first under the priority policy
}

// PE is one processing element and the process(es) mapped to it.
type PE struct {
	Name  string
	Kind  PEKind
	Entry string   // entry function of the mapped process (single-process PE)
	PUM   *pum.PUM // the processing unit model used for estimation

	// Tasks, when non-empty, maps several processes onto this Processor PE
	// under the timed RTOS model configured by RTOS; Entry must be empty.
	Tasks []SWTask
	RTOS  rtos.Config

	// Real cache organization for Processor PEs (sizes mirror the PUM's
	// selected configuration; organization adds line size/associativity).
	ICache cache.Config
	DCache cache.Config
}

// Processes returns the processes mapped to the PE: the single Entry, or
// the RTOS task list.
func (pe *PE) Processes() []SWTask {
	if len(pe.Tasks) > 0 {
		return pe.Tasks
	}
	return []SWTask{{Name: pe.Name, Entry: pe.Entry}}
}

// Bus is the shared-bus model parameters, used identically by the abstract
// TLM channel and the cycle-level board bus.
type Bus struct {
	ClockHz    int64
	ArbCycles  int // arbitration overhead per transaction
	WordCycles int // cycles per 32-bit word transferred
}

// DefaultBus returns the platform's standard OPB-like bus.
func DefaultBus() Bus {
	return Bus{ClockHz: 100_000_000, ArbCycles: 2, WordCycles: 1}
}

// Design is a complete mapped system.
type Design struct {
	Name    string
	Program *cdfg.Program
	PEs     []*PE
	Bus     Bus
}

// PEByName returns the PE with the given name, or nil.
func (d *Design) PEByName(name string) *PE {
	for _, pe := range d.PEs {
		if pe.Name == name {
			return pe
		}
	}
	return nil
}

// Validate checks that the design is internally consistent.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("platform: design needs a name")
	}
	if d.Program == nil {
		return fmt.Errorf("platform: design %s has no program", d.Name)
	}
	if len(d.PEs) == 0 {
		return fmt.Errorf("platform: design %s has no PEs", d.Name)
	}
	if d.Bus.ClockHz <= 0 || d.Bus.WordCycles <= 0 || d.Bus.ArbCycles < 0 {
		return fmt.Errorf("platform: design %s has invalid bus parameters", d.Name)
	}
	seen := make(map[string]bool)
	for _, pe := range d.PEs {
		if pe.Name == "" {
			return fmt.Errorf("platform: design %s has an unnamed PE", d.Name)
		}
		if seen[pe.Name] {
			return fmt.Errorf("platform: duplicate PE %q", pe.Name)
		}
		seen[pe.Name] = true
		if pe.PUM == nil {
			return fmt.Errorf("platform: PE %q has no PUM", pe.Name)
		}
		if err := pe.PUM.Validate(); err != nil {
			return fmt.Errorf("platform: PE %q: %w", pe.Name, err)
		}
		if len(pe.Tasks) > 0 {
			if pe.Kind != Processor {
				return fmt.Errorf("platform: PE %q: RTOS tasks require a Processor PE", pe.Name)
			}
			if pe.Entry != "" {
				return fmt.Errorf("platform: PE %q: Entry must be empty when Tasks are set", pe.Name)
			}
			taskNames := make(map[string]bool)
			for _, task := range pe.Tasks {
				if task.Name == "" {
					return fmt.Errorf("platform: PE %q has an unnamed task", pe.Name)
				}
				if taskNames[task.Name] {
					return fmt.Errorf("platform: PE %q: duplicate task %q", pe.Name, task.Name)
				}
				taskNames[task.Name] = true
				if err := checkEntry(d.Program, pe.Name+"/"+task.Name, task.Entry); err != nil {
					return err
				}
			}
			continue
		}
		if err := checkEntry(d.Program, pe.Name, pe.Entry); err != nil {
			return err
		}
	}
	return nil
}

// checkEntry validates a process entry function.
func checkEntry(prog *cdfg.Program, who, entry string) error {
	fn := prog.Func(entry)
	if fn == nil {
		return fmt.Errorf("platform: %s entry %q not in program", who, entry)
	}
	if len(fn.Params) != 0 {
		return fmt.Errorf("platform: %s entry %q must take no parameters", who, entry)
	}
	return nil
}

// ChannelUsage describes how one channel id is used across the design.
type ChannelUsage struct {
	Senders   []string
	Receivers []string
}

// Channels scans the program's processes and returns channel usage, keyed
// by channel id. It walks the static call graph from each PE's entry.
func (d *Design) Channels() map[int]*ChannelUsage {
	usage := make(map[int]*ChannelUsage)
	for _, pe := range d.PEs {
		for _, task := range pe.Processes() {
			procName := pe.Name
			if len(pe.Tasks) > 0 {
				// RTOS tasks are distinct endpoints: two tasks on one PE
				// may legally share a channel (RTOS inter-task IPC).
				procName = pe.Name + "/" + task.Name
			}
			for _, fn := range reachableFuncs(d.Program, task.Entry) {
				for _, b := range fn.Blocks {
					for i := range b.Instrs {
						in := &b.Instrs[i]
						switch in.Op {
						case cdfg.OpSend:
							u := usage[in.Chan]
							if u == nil {
								u = &ChannelUsage{}
								usage[in.Chan] = u
							}
							u.Senders = appendUnique(u.Senders, procName)
						case cdfg.OpRecv:
							u := usage[in.Chan]
							if u == nil {
								u = &ChannelUsage{}
								usage[in.Chan] = u
							}
							u.Receivers = appendUnique(u.Receivers, procName)
						}
					}
				}
			}
		}
	}
	return usage
}

// ValidateChannels checks the point-to-point discipline of the abstract bus
// channel model: each channel has exactly one sending PE and one receiving
// PE, and they differ.
func (d *Design) ValidateChannels() error {
	for ch, u := range d.Channels() {
		if len(u.Senders) != 1 || len(u.Receivers) != 1 {
			return fmt.Errorf("platform: channel %d must have exactly one sender and one receiver (senders=%v receivers=%v)",
				ch, u.Senders, u.Receivers)
		}
		if u.Senders[0] == u.Receivers[0] {
			return fmt.Errorf("platform: channel %d connects PE %q to itself", ch, u.Senders[0])
		}
	}
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// reachableFuncs returns the functions statically reachable from entry.
func reachableFuncs(p *cdfg.Program, entry string) []*cdfg.Function {
	start := p.Func(entry)
	if start == nil {
		return nil
	}
	seen := map[*cdfg.Function]bool{start: true}
	work := []*cdfg.Function{start}
	var out []*cdfg.Function
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		out = append(out, fn)
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if c := b.Instrs[i].Callee; c != nil && !seen[c] {
					seen[c] = true
					work = append(work, c)
				}
			}
		}
	}
	return out
}

// Graph renders the process/channel structure as text (the Figure 6 style
// application diagram).
func (d *Design) Graph() string {
	s := fmt.Sprintf("design %s (bus %d MHz, arb %d, %d cyc/word)\n",
		d.Name, d.Bus.ClockHz/1_000_000, d.Bus.ArbCycles, d.Bus.WordCycles)
	for _, pe := range d.PEs {
		s += fmt.Sprintf("  PE %-12s kind=%-4s entry=%-16s model=%s\n",
			pe.Name, pe.Kind, pe.Entry, pe.PUM.Name)
	}
	usage := d.Channels()
	ids := make([]int, 0, len(usage))
	for ch := range usage {
		ids = append(ids, ch)
	}
	sort.Ints(ids)
	for _, ch := range ids {
		u := usage[ch]
		s += fmt.Sprintf("  ch%-3d %v -> %v\n", ch, u.Senders, u.Receivers)
	}
	return s
}
