package platform

import (
	"strings"
	"testing"

	"ese/internal/cdfg"
	"ese/internal/cfront"
	"ese/internal/pum"
)

func compile(t *testing.T, src string) *cdfg.Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := cdfg.Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

const twoProcSrc = `
int b[4];
void producer() { send(0, b, 4); }
void consumer() { int r[4]; recv(0, r, 4); out(r[0]); }
`

func design(t *testing.T, src string) *Design {
	t.Helper()
	prog := compile(t, src)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 2048, DSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return &Design{
		Name:    "d",
		Program: prog,
		Bus:     DefaultBus(),
		PEs: []*PE{
			{Name: "p0", Kind: Processor, Entry: "producer", PUM: mb},
			{Name: "p1", Kind: HWUnit, Entry: "consumer", PUM: pum.CustomHW("hw", 1e8)},
		},
	}
}

func TestValidateAcceptsGoodDesign(t *testing.T) {
	d := design(t, twoProcSrc)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := d.ValidateChannels(); err != nil {
		t.Fatalf("ValidateChannels: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(d *Design)
		want string
	}{
		{"no name", func(d *Design) { d.Name = "" }, "needs a name"},
		{"no program", func(d *Design) { d.Program = nil }, "no program"},
		{"no pes", func(d *Design) { d.PEs = nil }, "no PEs"},
		{"dup pe", func(d *Design) { d.PEs[1].Name = "p0" }, "duplicate PE"},
		{"no pum", func(d *Design) { d.PEs[0].PUM = nil }, "no PUM"},
		{"bad entry", func(d *Design) { d.PEs[0].Entry = "nope" }, "not in program"},
		{"bad bus", func(d *Design) { d.Bus.WordCycles = 0 }, "bus"},
	}
	for _, tc := range cases {
		d := design(t, twoProcSrc)
		tc.mut(d)
		err := d.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateEntryWithParams(t *testing.T) {
	d := design(t, `
void producer(int x) { out(x); }
void consumer() { out(1); }
`)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Fatalf("err = %v", err)
	}
}

func TestChannelUsageAndValidation(t *testing.T) {
	d := design(t, twoProcSrc)
	usage := d.Channels()
	if len(usage) != 1 {
		t.Fatalf("channels = %d, want 1", len(usage))
	}
	u := usage[0]
	if len(u.Senders) != 1 || u.Senders[0] != "p0" {
		t.Fatalf("senders = %v", u.Senders)
	}
	if len(u.Receivers) != 1 || u.Receivers[0] != "p1" {
		t.Fatalf("receivers = %v", u.Receivers)
	}
}

func TestValidateChannelsRejectsTwoSenders(t *testing.T) {
	d := design(t, `
int b[2];
void producer() { send(0, b, 2); }
void consumer() { send(0, b, 2); int r[2]; recv(0, r, 2); }
`)
	if err := d.ValidateChannels(); err == nil {
		t.Fatal("two senders accepted")
	}
}

func TestValidateChannelsRejectsSelfLoop(t *testing.T) {
	d := design(t, `
int b[2];
void producer() { send(0, b, 2); int r[2]; recv(0, r, 2); }
void consumer() { out(1); }
`)
	if err := d.ValidateChannels(); err == nil {
		t.Fatal("self-loop channel accepted")
	}
}

func TestChannelsSeenThroughCallGraph(t *testing.T) {
	// Channel usage inside helper functions is attributed to the PE whose
	// entry reaches them.
	d := design(t, `
int b[2];
void helper() { send(0, b, 2); }
void producer() { helper(); }
void consumer() { int r[2]; recv(0, r, 2); }
`)
	u := d.Channels()[0]
	if len(u.Senders) != 1 || u.Senders[0] != "p0" {
		t.Fatalf("call-graph channel scan failed: %+v", u)
	}
}

func TestGraphRendering(t *testing.T) {
	d := design(t, twoProcSrc)
	g := d.Graph()
	for _, want := range []string{"design d", "p0", "p1", "ch0", "[p0] -> [p1]"} {
		if !strings.Contains(g, want) {
			t.Errorf("graph missing %q:\n%s", want, g)
		}
	}
}

func TestPEByName(t *testing.T) {
	d := design(t, twoProcSrc)
	if d.PEByName("p1") == nil || d.PEByName("zz") != nil {
		t.Fatal("PEByName broken")
	}
}
