// Package cli centralizes error hygiene for the command-line front ends:
// a shared exit-code convention, input-error classification, and stderr
// rendering of structured diagnostics. Every command follows the same
// contract:
//
//	0  success
//	1  runtime failure (simulation error, deadline/cancellation, panic)
//	2  usage or input error (bad flags, unreadable files, malformed
//	   source or model descriptions)
package cli

import (
	"errors"
	"fmt"
	"io/fs"
	"os"

	"ese/internal/diag"
)

// Exit codes shared by every command.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
)

// InputError marks a failure caused by what the user supplied — a
// malformed source file, an unreadable path, a bad model description —
// as opposed to a runtime failure of the tool itself.
type InputError struct {
	Err error
}

func (e *InputError) Error() string { return e.Err.Error() }

func (e *InputError) Unwrap() error { return e.Err }

// Input wraps err as an InputError (nil stays nil).
func Input(err error) error {
	if err == nil {
		return nil
	}
	return &InputError{Err: err}
}

// ExitCode classifies an error into the shared exit-code convention.
// Unreadable files and front-end diagnostics (parse/check/lower/verify
// stages) count as input errors even when not explicitly wrapped — a
// verification failure means the input program or model is malformed,
// not that the tool broke.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var in *InputError
	if errors.As(err, &in) {
		return ExitUsage
	}
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
		return ExitUsage
	}
	var d diag.Diagnostic
	if errors.As(err, &d) {
		switch d.Stage {
		case diag.StageParse, diag.StageCheck, diag.StageLower, diag.StageVerify:
			return ExitUsage
		}
	}
	return ExitRuntime
}

// Fail prints the error to stderr prefixed with the program name and
// exits with the classified code. A nil error is a no-op.
func Fail(prog string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, err)
	os.Exit(ExitCode(err))
}

// PrintDiags renders collected warnings and infos to stderr, one per
// line, prefixed with the program name. Error-severity diagnostics are
// skipped: they surface as the command's returned error and would print
// twice. Safe on a nil or empty list.
func PrintDiags(prog string, l *diag.List) {
	if l == nil {
		return
	}
	for _, d := range l.All() {
		if d.Severity >= diag.Error {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", prog, d.String())
	}
}
