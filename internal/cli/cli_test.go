package cli

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"ese/internal/diag"
)

func TestExitCodeClassification(t *testing.T) {
	parseDiag := diag.Diagnostic{Severity: diag.Error, Stage: diag.StageParse, Msg: "bad token"}
	simDiag := diag.Diagnostic{Severity: diag.Error, Stage: diag.StageSimulate, Msg: "deadlock"}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain runtime", errors.New("boom"), ExitRuntime},
		{"cancellation", fmt.Errorf("tlm: %w", diag.ErrCanceled), ExitRuntime},
		{"deadline", fmt.Errorf("tlm: %w", diag.ErrDeadline), ExitRuntime},
		{"explicit input", Input(errors.New("bad model")), ExitUsage},
		{"wrapped input", fmt.Errorf("load: %w", Input(errors.New("bad"))), ExitUsage},
		{"missing file", fmt.Errorf("open: %w", fs.ErrNotExist), ExitUsage},
		{"permission", fmt.Errorf("open: %w", fs.ErrPermission), ExitUsage},
		{"parse diagnostic", parseDiag, ExitUsage},
		{"wrapped parse diagnostic", fmt.Errorf("compile: %w", parseDiag), ExitUsage},
		{"simulate diagnostic", simDiag, ExitRuntime},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestInputNilStaysNil(t *testing.T) {
	if Input(nil) != nil {
		t.Fatal("Input(nil) != nil")
	}
}
