package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ese/internal/cli"
)

// Regression: a corrupt or mismatched -bench-compare baseline must be a
// pinned input error (exit 2), never an unspecified runtime failure or a
// false "benchmark regression" (exit 1).
func TestLoadBaselineRejectsCorruptBaselines(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	const good = `{"frames":2,"reps":5,"rows":[
		{"design":"SW","sim_cycles":100,"end_ps":1000,"tree_ns":50,"compiled_ns":10,"speedup":5.0},
		{"design":"SW+4","sim_cycles":60,"end_ps":700,"tree_ns":40,"compiled_ns":10,"speedup":4.0}]}`

	cases := []struct {
		name, path, wantErr string
	}{
		{"missing", filepath.Join(dir, "nope.json"), "no such file"},
		{"truncated", write("trunc.json", good[:len(good)/2]), "truncated"},
		{"empty object", write("empty.json", `{}`), "no measurement rows"},
		{"wrong design set", write("foreign.json",
			`{"frames":2,"reps":5,"rows":[{"design":"RISCV+VEC","speedup":2.0}]}`),
			"different design set"},
		{"duplicate design", write("dup.json",
			`{"frames":2,"reps":5,"rows":[{"design":"SW","speedup":2.0},{"design":"SW","speedup":2.0}]}`),
			"duplicate design"},
		{"negative measurement", write("neg.json",
			`{"frames":2,"reps":5,"rows":[{"design":"SW","speedup":-1.0}]}`),
			"negative measurements"},
	}
	for _, tc := range cases {
		_, err := LoadBaseline(tc.path)
		if err == nil {
			t.Fatalf("%s: baseline accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		if code := cli.ExitCode(err); code != cli.ExitUsage {
			t.Fatalf("%s: exit code %d, want %d (input error)", tc.name, code, cli.ExitUsage)
		}
	}

	b, err := LoadBaseline(write("good.json", good))
	if err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	if len(b.Rows) != 2 || b.Frames != 2 {
		t.Fatalf("baseline decoded wrong: %+v", b)
	}
}

// A regression against a valid baseline stays a runtime failure (exit 1):
// Compare reports violations and the caller returns a plain error.
func TestCompareClassification(t *testing.T) {
	base := &PerfBench{Frames: 2, Rows: []PerfBenchRow{
		{Design: "SW", SimCycles: 100, EndPs: 1000, Speedup: 5.0},
	}}
	cur := &PerfBench{Frames: 2, Rows: []PerfBenchRow{
		{Design: "SW", SimCycles: 100, EndPs: 1000, Speedup: 2.0},
	}}
	violations := cur.Compare(base, 0.30)
	if len(violations) != 1 || !strings.Contains(violations[0], "speedup") {
		t.Fatalf("violations = %v", violations)
	}
	ok := &PerfBench{Frames: 2, Rows: []PerfBenchRow{
		{Design: "SW", SimCycles: 100, EndPs: 1000, Speedup: 4.9},
	}}
	if v := ok.Compare(base, 0.30); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", v)
	}
	// A current run missing a baselined design is a violation, not a parse
	// problem: the baseline was valid, the measurement fell short.
	missing := &PerfBench{Frames: 2}
	if v := missing.Compare(base, 0.30); len(v) != 1 {
		t.Fatalf("missing-design run not flagged: %v", v)
	}
}

// A baseline recorded before the generated tier existed (no gen fields,
// no JPEG rows) must still load and compare cleanly against a current
// three-engine measurement — only a different design set is an input
// error.
func TestPreGenBaselineTolerated(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "pre_gen.json")
	const preGen = `{"frames":2,"reps":5,"rows":[
		{"design":"SW","sim_cycles":100,"end_ps":1000,"tree_ns":50,"compiled_ns":10,"speedup":5.0},
		{"design":"SW+1","sim_cycles":90,"end_ps":900,"tree_ns":45,"compiled_ns":10,"speedup":4.5}]}`
	if err := os.WriteFile(p, []byte(preGen), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(p)
	if err != nil {
		t.Fatalf("pre-gen baseline rejected: %v", err)
	}
	cur := &PerfBench{Frames: 2, Rows: []PerfBenchRow{
		{Design: "SW", SimCycles: 100, EndPs: 1000, Speedup: 5.0,
			GenNs: 2, GenAllocs: 10, SpeedupVsComp: 5.0},
		{Design: "SW+1", SimCycles: 90, EndPs: 900, Speedup: 4.5,
			GenNs: 2, GenAllocs: 10, SpeedupVsComp: 5.0},
		{Design: "jpeg-SW", SimCycles: 10, EndPs: 100, Speedup: 2.0,
			GenNs: 2, GenAllocs: 10, SpeedupVsComp: 3.0},
	}}
	if v := cur.Compare(base, 0.30); len(v) != 0 {
		t.Fatalf("pre-gen baseline produced violations: %v", v)
	}
	// A JPEG row in a modern baseline is part of the known design set.
	pj := filepath.Join(dir, "jpeg.json")
	const withJPEG = `{"frames":2,"reps":5,"rows":[
		{"design":"jpeg-SW","sim_cycles":10,"end_ps":100,"tree_ns":50,"compiled_ns":10,"gen_ns":2,"speedup":5.0,"speedup_vs_compiled":5.0}]}`
	if err := os.WriteFile(pj, []byte(withJPEG), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(pj); err != nil {
		t.Fatalf("baseline with JPEG rows rejected: %v", err)
	}
}
