// Package experiments reproduces the evaluation of the paper: Table 1
// (scalability: annotation and simulation times across the four MP3
// designs), Table 2 (SW-only estimation accuracy of ISS and timed TLM
// against the board across five cache configurations), Table 3 (accuracy
// of the hardware-accelerated designs against the board), plus three
// ablations the paper motivates (statistical-model sensitivity, sc_wait
// granularity, and PUM detail level).
//
// The "board" is the cycle-accurate virtual board of internal/rtl; the
// statistical PUM is calibrated on a training workload distinct from the
// evaluation workload, so reported errors are genuine estimation errors.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"ese/internal/apps"
	"ese/internal/core"
	"ese/internal/engine"
	"ese/internal/iss"
	"ese/internal/pum"
	"ese/internal/rtl"
	"ese/internal/tlm"
)

// Setup bundles what every experiment needs: the calibrated processor
// model, the workload configurations, and one shared estimation pipeline.
// Every timed-TLM run of every experiment goes through the pipeline, so
// the cache-configuration sweeps of Tables 2–3 (and the ablations) compute
// each Algorithm 1 schedule once and reuse it across configurations —
// Pipe.Stats() exposes the hit counters.
type Setup struct {
	Eval  apps.MP3Config
	Train apps.MP3Config
	MB    *pum.PUM         // calibrated MicroBlaze-like model
	Pipe  *engine.Pipeline // shared staged pipeline (schedule/estimate cache)
}

// NewSetup calibrates the MicroBlaze model on the training workload.
func NewSetup(eval, train apps.MP3Config) (*Setup, error) {
	return NewSetupWith(eval, train, engine.Options{})
}

// NewSetupWith is NewSetup with explicit pipeline options (watchdog
// timeout, strictness, worker bound), the hook esebench's flags use.
func NewSetupWith(eval, train apps.MP3Config, opts engine.Options) (*Setup, error) {
	trainProg, err := apps.CompileMP3("SW", train)
	if err != nil {
		return nil, err
	}
	mb, err := rtl.Calibrate(pum.MicroBlaze(), trainProg, "main", pum.StandardCacheConfigs, 0)
	if err != nil {
		return nil, err
	}
	return &Setup{Eval: eval, Train: train, MB: mb, Pipe: engine.New(opts)}, nil
}

// DefaultSetup uses the standard evaluation and training workloads.
func DefaultSetup() (*Setup, error) {
	return NewSetup(apps.DefaultMP3, apps.TrainMP3)
}

func pct(est, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (est - ref) / ref
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one design's scalability measurements.
type Table1Row struct {
	Design   string
	Anno     time.Duration // annotation time for all PEs
	TLMFunc  time.Duration // functional TLM simulation time
	TLMTimed time.Duration // timed TLM simulation time
	PCAM     time.Duration // cycle-accurate board simulation time
	ISS      time.Duration // ISS simulation time (SW design only)
	HasISS   bool
}

// Table1 is the scalability table.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 measures annotation and simulation times for every design.
func RunTable1(s *Setup) (*Table1, error) {
	t := &Table1{}
	cacheCfg := pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}
	for _, design := range apps.MP3DesignNames {
		d, err := apps.MP3Design(design, s.Eval, s.MB, cacheCfg)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Design: design}

		fun, err := s.Pipe.RunFunctional(d)
		if err != nil {
			return nil, err
		}
		row.TLMFunc = fun.Wall

		timed, err := s.Pipe.RunTimed(d)
		if err != nil {
			return nil, err
		}
		row.TLMTimed = timed.Wall
		row.Anno = timed.AnnoTime

		board, err := rtl.RunBoard(d, 0)
		if err != nil {
			return nil, err
		}
		row.PCAM = board.Wall

		if design == "SW" {
			isa, err := iss.Generate(d.Program)
			if err != nil {
				return nil, err
			}
			m := iss.NewMachine(isa)
			if err := m.Start("main"); err != nil {
				return nil, err
			}
			sim := iss.NewISS(m, iss.DefaultTiming(cacheCfg.ISize, cacheCfg.DSize))
			start := time.Now()
			if err := sim.Run(0); err != nil {
				return nil, err
			}
			row.ISS = time.Since(start)
			row.HasISS = true
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Scalability — annotation and simulation time per design\n")
	fmt.Fprintf(&sb, "%-6s %12s %12s %12s %12s %12s\n",
		"Design", "Anno.", "TLM func", "TLM timed", "ISS", "PCAM")
	for _, r := range t.Rows {
		issStr := "-"
		if r.HasISS {
			issStr = r.ISS.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&sb, "%-6s %12s %12s %12s %12s %12s\n",
			r.Design,
			r.Anno.Round(time.Millisecond),
			r.TLMFunc.Round(time.Millisecond),
			r.TLMTimed.Round(time.Millisecond),
			issStr,
			r.PCAM.Round(time.Millisecond))
	}
	return sb.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one cache configuration's accuracy result for the SW design.
type Table2Row struct {
	Cfg    pum.CacheCfg
	Board  uint64
	ISS    uint64
	ISSErr float64 // percent
	TLM    uint64
	TLMErr float64 // percent
}

// Table2 is the SW-only accuracy table.
type Table2 struct {
	Rows      []Table2Row
	AvgISSErr float64 // average of absolute errors, like the paper
	AvgTLMErr float64
}

// RunTable2 compares board, ISS and timed-TLM cycle counts for the pure
// software design across the standard cache sweep.
func RunTable2(s *Setup) (*Table2, error) {
	prog, err := apps.CompileMP3("SW", s.Eval)
	if err != nil {
		return nil, err
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, err
	}
	t := &Table2{}
	for _, cc := range pum.StandardCacheConfigs {
		row := Table2Row{Cfg: cc}

		// Board reference.
		m := iss.NewMachine(isa)
		if err := m.Start("main"); err != nil {
			return nil, err
		}
		cpu, err := rtl.NewCPU(m, rtl.CPUConfig{
			Model:  s.MB,
			ICache: rtl.RealCacheConfig(cc.ISize),
			DCache: rtl.RealCacheConfig(cc.DSize),
		})
		if err != nil {
			return nil, err
		}
		if err := cpu.Run(0); err != nil {
			return nil, err
		}
		row.Board = cpu.Cycles

		// ISS estimate.
		m2 := iss.NewMachine(isa)
		if err := m2.Start("main"); err != nil {
			return nil, err
		}
		sim := iss.NewISS(m2, iss.DefaultTiming(cc.ISize, cc.DSize))
		if err := sim.Run(0); err != nil {
			return nil, err
		}
		row.ISS = sim.Cycles
		row.ISSErr = pct(float64(row.ISS), float64(row.Board))

		// Timed TLM estimate.
		d, err := apps.MP3Design("SW", s.Eval, s.MB, cc)
		if err != nil {
			return nil, err
		}
		res, err := s.Pipe.RunTimed(d)
		if err != nil {
			return nil, err
		}
		row.TLM = res.CyclesByPE["mb"]
		row.TLMErr = pct(float64(row.TLM), float64(row.Board))

		t.Rows = append(t.Rows, row)
		t.AvgISSErr += abs(row.ISSErr)
		t.AvgTLMErr += abs(row.TLMErr)
	}
	t.AvgISSErr /= float64(len(t.Rows))
	t.AvgTLMErr /= float64(len(t.Rows))
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table2) String() string {
	var sb strings.Builder
	sb.WriteString("Table 2: Accuracy (SW only) — cycles and error vs board\n")
	fmt.Fprintf(&sb, "%-9s %12s %12s %9s %12s %9s\n",
		"I/D cache", "Board", "ISS", "err%", "TLM", "err%")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-9s %12d %12d %8.2f%% %12d %8.2f%%\n",
			r.Cfg, r.Board, r.ISS, r.ISSErr, r.TLM, r.TLMErr)
	}
	fmt.Fprintf(&sb, "%-9s %12s %12s %8.2f%% %12s %8.2f%%   (avg |err|)\n",
		"Average", "", "", t.AvgISSErr, "", t.AvgTLMErr)
	return sb.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Cell is one (design, cache) accuracy measurement of total decode
// time in bus-clock cycles (the paper measures with an on-board timer).
type Table3Cell struct {
	Board uint64
	TLM   uint64
	Err   float64
}

// Table3Row is one cache configuration across the HW designs.
type Table3Row struct {
	Cfg   pum.CacheCfg
	Cells map[string]Table3Cell
}

// Table3 is the HW-design accuracy table.
type Table3 struct {
	Designs []string
	Rows    []Table3Row
	AvgErr  map[string]float64
}

// RunTable3 compares board and timed-TLM total times for the designs with
// custom hardware.
func RunTable3(s *Setup) (*Table3, error) {
	designs := []string{"SW+1", "SW+2", "SW+4"}
	t := &Table3{
		Designs: designs,
		AvgErr:  make(map[string]float64, len(designs)),
	}
	for _, cc := range pum.StandardCacheConfigs {
		row := Table3Row{Cfg: cc, Cells: make(map[string]Table3Cell, len(designs))}
		for _, design := range designs {
			d, err := apps.MP3Design(design, s.Eval, s.MB, cc)
			if err != nil {
				return nil, err
			}
			board, err := rtl.RunBoard(d, 0)
			if err != nil {
				return nil, err
			}
			res, err := s.Pipe.RunTimed(d)
			if err != nil {
				return nil, err
			}
			cell := Table3Cell{
				Board: board.EndCycles(d.Bus.ClockHz),
				TLM:   res.EndCycles(d.Bus.ClockHz),
			}
			cell.Err = pct(float64(cell.TLM), float64(cell.Board))
			row.Cells[design] = cell
			t.AvgErr[design] += abs(cell.Err)
		}
		t.Rows = append(t.Rows, row)
	}
	for _, design := range designs {
		t.AvgErr[design] /= float64(len(t.Rows))
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table3) String() string {
	var sb strings.Builder
	sb.WriteString("Table 3: Accuracy — total cycles (board vs timed TLM) for HW designs\n")
	fmt.Fprintf(&sb, "%-9s", "I/D cache")
	for _, d := range t.Designs {
		fmt.Fprintf(&sb, " %12s %12s %8s", d+" board", "TLM", "err%")
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-9s", r.Cfg)
		for _, d := range t.Designs {
			c := r.Cells[d]
			fmt.Fprintf(&sb, " %12d %12d %7.2f%%", c.Board, c.TLM, c.Err)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-9s", "Average")
	for _, d := range t.Designs {
		fmt.Fprintf(&sb, " %12s %12s %7.2f%%", "", "", t.AvgErr[d])
	}
	sb.WriteString("   (avg |err|)\n")
	return sb.String()
}

// ------------------------------------------------------------- Ablations

// SensitivityPoint is one perturbation of the statistical models.
type SensitivityPoint struct {
	Perturb float64 // multiplicative perturbation of miss rates, e.g. -0.2
	TLM     uint64
	Err     float64 // vs unperturbed board
}

// Sensitivity is the ablation the paper names as future work (§5): how the
// estimate responds to errors in the statistical memory and branch models.
type Sensitivity struct {
	Cfg    pum.CacheCfg
	Board  uint64
	Points []SensitivityPoint
}

// RunSensitivity perturbs the calibrated miss rates and misprediction
// ratio by the given relative amounts and re-estimates the SW design.
func RunSensitivity(s *Setup, cc pum.CacheCfg, perturbs []float64) (*Sensitivity, error) {
	prog, err := apps.CompileMP3("SW", s.Eval)
	if err != nil {
		return nil, err
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, err
	}
	m := iss.NewMachine(isa)
	if err := m.Start("main"); err != nil {
		return nil, err
	}
	cpu, err := rtl.NewCPU(m, rtl.CPUConfig{
		Model:  s.MB,
		ICache: rtl.RealCacheConfig(cc.ISize),
		DCache: rtl.RealCacheConfig(cc.DSize),
	})
	if err != nil {
		return nil, err
	}
	if err := cpu.Run(0); err != nil {
		return nil, err
	}
	out := &Sensitivity{Cfg: cc, Board: cpu.Cycles}

	for _, p := range perturbs {
		mb := s.MB.Clone()
		st := mb.Mem.Table[cc]
		st.IHitRate = clamp01(1 - (1-st.IHitRate)*(1+p))
		st.DHitRate = clamp01(1 - (1-st.DHitRate)*(1+p))
		mb.Mem.Table[cc] = st
		mb.Branch.MissRate = clamp01(mb.Branch.MissRate * (1 + p))
		d, err := apps.MP3Design("SW", s.Eval, mb, cc)
		if err != nil {
			return nil, err
		}
		res, err := s.Pipe.RunTimed(d)
		if err != nil {
			return nil, err
		}
		est := res.CyclesByPE["mb"]
		out.Points = append(out.Points, SensitivityPoint{
			Perturb: p,
			TLM:     est,
			Err:     pct(float64(est), float64(out.Board)),
		})
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String renders the sensitivity sweep.
func (s *Sensitivity) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A1: sensitivity of the estimate to statistical-model error (%s, board=%d)\n", s.Cfg, s.Board)
	fmt.Fprintf(&sb, "%10s %12s %9s\n", "perturb", "TLM", "err%")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%+9.0f%% %12d %8.2f%%\n", 100*p.Perturb, p.TLM, p.Err)
	}
	return sb.String()
}

// Granularity is the sc_wait-granularity ablation (§4.3): per-block waits
// versus accumulated waits at transaction boundaries must give identical
// cycle counts but different simulation speed.
type Granularity struct {
	Design      string
	PerTxCycles uint64
	PerBBCycles uint64
	PerTxWall   time.Duration
	PerBBWall   time.Duration
	PerTxEndPs  uint64
	PerBBEndPs  uint64
}

// RunGranularity runs the timed TLM of a design in both wait modes.
func RunGranularity(s *Setup, design string) (*Granularity, error) {
	cc := pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}
	d, err := apps.MP3Design(design, s.Eval, s.MB, cc)
	if err != nil {
		return nil, err
	}
	tx, err := s.Pipe.Simulate(d, tlm.Options{Timed: true, WaitMode: tlm.WaitAtTransactions, Detail: core.FullDetail})
	if err != nil {
		return nil, err
	}
	d2, err := apps.MP3Design(design, s.Eval, s.MB, cc)
	if err != nil {
		return nil, err
	}
	bb, err := s.Pipe.Simulate(d2, tlm.Options{Timed: true, WaitMode: tlm.WaitPerBlock, Detail: core.FullDetail})
	if err != nil {
		return nil, err
	}
	return &Granularity{
		Design:      design,
		PerTxCycles: tx.CyclesByPE["mb"],
		PerBBCycles: bb.CyclesByPE["mb"],
		PerTxWall:   tx.Wall,
		PerBBWall:   bb.Wall,
		PerTxEndPs:  uint64(tx.EndPs),
		PerBBEndPs:  uint64(bb.EndPs),
	}, nil
}

// String renders the granularity comparison.
func (g *Granularity) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A2: wait granularity (%s)\n", g.Design)
	fmt.Fprintf(&sb, "%-16s %14s %14s\n", "", "per-transaction", "per-block")
	fmt.Fprintf(&sb, "%-16s %14d %14d\n", "mb cycles", g.PerTxCycles, g.PerBBCycles)
	fmt.Fprintf(&sb, "%-16s %14v %14v\n", "wall time", g.PerTxWall.Round(time.Millisecond), g.PerBBWall.Round(time.Millisecond))
	return sb.String()
}

// DetailLevel is one row of the PUM-detail ablation.
type DetailLevel struct {
	Name   string
	Detail core.Detail
	TLM    uint64
	Err    float64
	Anno   time.Duration
}

// PUMDetail is the accuracy/effort tradeoff ablation of §1: the more PE
// features modeled, the more accurate (and the slower) the annotation.
type PUMDetail struct {
	Cfg    pum.CacheCfg
	Board  uint64
	Levels []DetailLevel
}

// RunPUMDetail estimates the SW design with increasing PUM detail.
func RunPUMDetail(s *Setup, cc pum.CacheCfg) (*PUMDetail, error) {
	prog, err := apps.CompileMP3("SW", s.Eval)
	if err != nil {
		return nil, err
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, err
	}
	m := iss.NewMachine(isa)
	if err := m.Start("main"); err != nil {
		return nil, err
	}
	cpu, err := rtl.NewCPU(m, rtl.CPUConfig{
		Model:  s.MB,
		ICache: rtl.RealCacheConfig(cc.ISize),
		DCache: rtl.RealCacheConfig(cc.DSize),
	})
	if err != nil {
		return nil, err
	}
	if err := cpu.Run(0); err != nil {
		return nil, err
	}
	out := &PUMDetail{Cfg: cc, Board: cpu.Cycles}
	levels := []DetailLevel{
		{Name: "schedule only", Detail: core.Detail{}},
		{Name: "+memory", Detail: core.Detail{Memory: true}},
		{Name: "+memory+branch", Detail: core.FullDetail},
	}
	for _, lv := range levels {
		d, err := apps.MP3Design("SW", s.Eval, s.MB, cc)
		if err != nil {
			return nil, err
		}
		res, err := s.Pipe.Simulate(d, tlm.Options{Timed: true, WaitMode: tlm.WaitAtTransactions, Detail: lv.Detail})
		if err != nil {
			return nil, err
		}
		lv.TLM = res.CyclesByPE["mb"]
		lv.Err = pct(float64(lv.TLM), float64(out.Board))
		lv.Anno = res.AnnoTime
		out.Levels = append(out.Levels, lv)
	}
	return out, nil
}

// String renders the detail ablation.
func (p *PUMDetail) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A3: PUM detail vs accuracy (%s, board=%d)\n", p.Cfg, p.Board)
	fmt.Fprintf(&sb, "%-16s %12s %9s %12s\n", "detail", "TLM", "err%", "anno time")
	for _, lv := range p.Levels {
		fmt.Fprintf(&sb, "%-16s %12d %8.2f%% %12v\n", lv.Name, lv.TLM, lv.Err, lv.Anno.Round(time.Microsecond))
	}
	return sb.String()
}

// CheckFunctionalEquivalence verifies the keystone invariant across every
// design and engine: identical out() streams everywhere.
func CheckFunctionalEquivalence(s *Setup) error {
	cc := pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}
	var ref []int32
	for _, design := range apps.MP3DesignNames {
		d, err := apps.MP3Design(design, s.Eval, s.MB, cc)
		if err != nil {
			return err
		}
		fun, err := s.Pipe.RunFunctional(d)
		if err != nil {
			return err
		}
		timed, err := s.Pipe.RunTimed(d)
		if err != nil {
			return err
		}
		board, err := rtl.RunBoard(d, 0)
		if err != nil {
			return err
		}
		outs := [][]int32{fun.OutByPE["mb"], timed.OutByPE["mb"], board.PEs["mb"].Out}
		if ref == nil {
			ref = outs[0]
		}
		for i, o := range outs {
			if !equalI32(o, ref) {
				return fmt.Errorf("experiments: %s engine %d output diverges", design, i)
			}
		}
	}
	return nil
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
