package experiments

import (
	"strings"
	"testing"

	"ese/internal/apps"
	"ese/internal/pum"
)

// tinySetup keeps test runtime low: one frame each for training and eval,
// different seeds.
func tinySetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(
		apps.MP3Config{Frames: 1, Seed: 0xABCD},
		apps.MP3Config{Frames: 1, Seed: 0x1234},
	)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return s
}

func TestCalibrationFillsTable(t *testing.T) {
	s := tinySetup(t)
	if s.MB.Branch.MissRate <= 0 || s.MB.Branch.MissRate > 1 {
		t.Fatalf("calibrated branch miss rate = %v", s.MB.Branch.MissRate)
	}
	for _, cc := range pum.StandardCacheConfigs {
		if cc.ISize == 0 {
			continue
		}
		st, ok := s.MB.Mem.Table[cc]
		if !ok {
			t.Fatalf("no calibrated stats for %v", cc)
		}
		if st.IHitRate <= 0.5 || st.DHitRate <= 0.3 {
			t.Fatalf("%v: implausible calibrated rates %+v", cc, st)
		}
	}
	// Larger caches must calibrate to equal-or-better hit rates.
	small := s.MB.Mem.Table[pum.CacheCfg{ISize: 2048, DSize: 2048}]
	big := s.MB.Mem.Table[pum.CacheCfg{ISize: 16 * 1024, DSize: 16 * 1024}]
	if big.DHitRate < small.DHitRate {
		t.Fatalf("bigger d-cache calibrated worse: %v < %v", big.DHitRate, small.DHitRate)
	}
}

func TestFunctionalEquivalenceAcrossEngines(t *testing.T) {
	s := tinySetup(t)
	if err := CheckFunctionalEquivalence(s); err != nil {
		t.Fatal(err)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	s := tinySetup(t)
	tbl, err := RunTable2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	// Paper shape 1: cycle counts fall monotonically as caches grow.
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i].Board > tbl.Rows[i-1].Board {
			t.Errorf("board cycles not monotone: %v", tbl.Rows)
		}
	}
	// Paper shape 2: the uncached design is several times slower.
	ratio := float64(tbl.Rows[0].Board) / float64(tbl.Rows[len(tbl.Rows)-1].Board)
	if ratio < 3 {
		t.Errorf("uncached/cached ratio = %.1f, want >= 3", ratio)
	}
	// Paper headline: timed TLM average error under ~15% and better than
	// the ISS baseline.
	if tbl.AvgTLMErr > 15 {
		t.Errorf("TLM avg error %.2f%% too high\n%s", tbl.AvgTLMErr, tbl)
	}
	if tbl.AvgTLMErr >= tbl.AvgISSErr {
		t.Errorf("TLM (%.2f%%) not better than ISS (%.2f%%)\n%s",
			tbl.AvgTLMErr, tbl.AvgISSErr, tbl)
	}
	// Paper shape 3: the ISS badly underestimates the uncached design.
	if tbl.Rows[0].ISSErr > -20 {
		t.Errorf("ISS uncached error %.2f%%, expected strong underestimate", tbl.Rows[0].ISSErr)
	}
	out := tbl.String()
	for _, want := range []string{"Table 2", "0k/0k", "32k/16k", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	s := tinySetup(t)
	tbl, err := RunTable3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 || len(tbl.Designs) != 3 {
		t.Fatalf("shape: %d rows, %d designs", len(tbl.Rows), len(tbl.Designs))
	}
	for _, d := range tbl.Designs {
		if tbl.AvgErr[d] > 20 {
			t.Errorf("%s avg |err| = %.2f%%, want <= 20%%\n%s", d, tbl.AvgErr[d], tbl)
		}
	}
	// Offloading both channels (SW+4) must beat SW+1 on total time for the
	// large-cache configuration (HW parallelism shape of the paper).
	last := tbl.Rows[len(tbl.Rows)-1]
	if last.Cells["SW+4"].Board >= last.Cells["SW+1"].Board {
		t.Errorf("SW+4 (%d) not faster than SW+1 (%d) on board",
			last.Cells["SW+4"].Board, last.Cells["SW+1"].Board)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	s := tinySetup(t)
	tbl, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.Anno <= 0 || r.TLMTimed <= 0 || r.PCAM <= 0 {
			t.Errorf("%s: missing measurements: %+v", r.Design, r)
		}
		// PCAM must be slower than the timed TLM (the paper's core
		// speed claim, with orders-of-magnitude compressed by our
		// interpreted TLM — see EXPERIMENTS.md).
		if r.PCAM <= r.TLMTimed {
			t.Errorf("%s: PCAM (%v) not slower than timed TLM (%v)",
				r.Design, r.PCAM, r.TLMTimed)
		}
	}
	if !tbl.Rows[0].HasISS {
		t.Error("SW row missing ISS measurement")
	}
	if strings.Count(tbl.String(), "\n") < 5 {
		t.Error("table rendering too short")
	}
}

func TestSensitivityMonotone(t *testing.T) {
	s := tinySetup(t)
	sens, err := RunSensitivity(s, pum.CacheCfg{ISize: 2048, DSize: 2048},
		[]float64{-0.5, -0.2, 0, 0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// More modeled misses -> higher estimate, strictly monotone.
	for i := 1; i < len(sens.Points); i++ {
		if sens.Points[i].TLM <= sens.Points[i-1].TLM {
			t.Fatalf("sensitivity not monotone: %+v", sens.Points)
		}
	}
	if !strings.Contains(sens.String(), "Ablation A1") {
		t.Error("rendering broken")
	}
}

func TestGranularitySameCyclesDifferentSpeed(t *testing.T) {
	s := tinySetup(t)
	g, err := RunGranularity(s, "SW+4")
	if err != nil {
		t.Fatal(err)
	}
	if g.PerTxCycles != g.PerBBCycles {
		t.Fatalf("wait granularity changed cycle count: %d vs %d",
			g.PerTxCycles, g.PerBBCycles)
	}
	// End times may differ slightly because interleaving with the bus
	// differs, but computation cycles must match exactly.
}

func TestPUMDetailImprovesAccuracy(t *testing.T) {
	s := tinySetup(t)
	p, err := RunPUMDetail(s, pum.CacheCfg{ISize: 2048, DSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) != 3 {
		t.Fatalf("levels = %d", len(p.Levels))
	}
	// Schedule-only badly underestimates; full detail must be much closer.
	if abs(p.Levels[2].Err) >= abs(p.Levels[0].Err) {
		t.Fatalf("full detail (%.2f%%) not better than schedule-only (%.2f%%)",
			p.Levels[2].Err, p.Levels[0].Err)
	}
}

func TestRTOSStudyShape(t *testing.T) {
	s := tinySetup(t)
	study, err := RunRTOSStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(study.Rows))
	}
	for _, row := range study.Rows {
		// Consolidation onto one CPU is never faster than two CPUs.
		if row.TotalCycles < study.TwoPECycles {
			t.Errorf("%s: single CPU (%d) faster than two PEs (%d)",
				row.Label, row.TotalCycles, study.TwoPECycles)
		}
		// Total is at least the sum of both tasks' CPU time.
		if row.TotalCycles < row.DecCycles+row.EncCycles {
			t.Errorf("%s: total %d below busy sum %d",
				row.Label, row.TotalCycles, row.DecCycles+row.EncCycles)
		}
		if row.Switches == 0 {
			t.Errorf("%s: no dispatches recorded", row.Label)
		}
	}
	// Smaller quanta mean more context switches.
	if study.Rows[1].Switches <= study.Rows[3].Switches {
		t.Errorf("rr 10k switches (%d) not above rr 1M (%d)",
			study.Rows[1].Switches, study.Rows[3].Switches)
	}
	// More switches cost more total time (same switch price).
	if study.Rows[1].TotalCycles <= study.Rows[3].TotalCycles {
		t.Errorf("rr 10k total (%d) not above rr 1M (%d)",
			study.Rows[1].TotalCycles, study.Rows[3].TotalCycles)
	}
	if !strings.Contains(study.String(), "Extension E1") {
		t.Error("rendering broken")
	}
}

func TestOverlapCompensationImprovesSmallBlockAccuracy(t *testing.T) {
	s := tinySetup(t)
	study, err := RunOverlapStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 5 {
		t.Fatalf("rows = %d", len(study.Rows))
	}
	// The compensation must strictly lower every estimate...
	for _, r := range study.Rows {
		if r.Overlap >= r.Faithful {
			t.Errorf("%v: overlap estimate %d not below faithful %d", r.Cfg, r.Overlap, r.Faithful)
		}
	}
	// ...and improve the average error on this workload (the faithful
	// estimator overestimates).
	if study.AvgOverlap >= study.AvgFaith {
		t.Errorf("overlap avg %.2f%% not better than faithful %.2f%%\n%s",
			study.AvgOverlap, study.AvgFaith, study)
	}
}

func TestBlockSizeStudy(t *testing.T) {
	s := tinySetup(t)
	study, err := RunBlockSizeStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 2 {
		t.Fatalf("rows = %d", len(study.Rows))
	}
	raw, simp := study.Rows[0], study.Rows[1]
	if simp.Blocks >= raw.Blocks {
		t.Fatalf("simplify did not reduce blocks: %d vs %d", simp.Blocks, raw.Blocks)
	}
	if simp.AvgOps <= raw.AvgOps {
		t.Fatalf("simplify did not grow blocks: %.1f vs %.1f", simp.AvgOps, raw.AvgOps)
	}
	// Simplified code is faster on the board (fewer jumps)...
	if simp.Board >= raw.Board {
		t.Fatalf("simplified code not faster on board: %d vs %d", simp.Board, raw.Board)
	}
	// ...and the faithful estimator's relative error shrinks with bigger
	// blocks (fewer per-block fill boundaries per op).
	if abs(simp.Err) >= abs(raw.Err) {
		t.Fatalf("bigger blocks did not improve faithful error: %.2f%% vs %.2f%%",
			simp.Err, raw.Err)
	}
}
