package experiments

import (
	"encoding/json"
	"time"
)

// This file provides machine-readable (JSON) forms of every experiment
// result, for plotting pipelines and regression tracking around the bench
// harness (esebench -json).

// jsonDuration renders durations as milliseconds.
type jsonDuration time.Duration

func (d jsonDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(time.Duration(d)) / float64(time.Millisecond))
}

type table1JSON struct {
	Design  string       `json:"design"`
	AnnoMs  jsonDuration `json:"annotation_ms"`
	FuncMs  jsonDuration `json:"tlm_functional_ms"`
	TimedMs jsonDuration `json:"tlm_timed_ms"`
	ISSMs   jsonDuration `json:"iss_ms,omitempty"`
	PCAMMs  jsonDuration `json:"pcam_ms"`
	HasISS  bool         `json:"has_iss"`
}

// MarshalJSON renders Table 1.
func (t *Table1) MarshalJSON() ([]byte, error) {
	rows := make([]table1JSON, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, table1JSON{
			Design:  r.Design,
			AnnoMs:  jsonDuration(r.Anno),
			FuncMs:  jsonDuration(r.TLMFunc),
			TimedMs: jsonDuration(r.TLMTimed),
			ISSMs:   jsonDuration(r.ISS),
			PCAMMs:  jsonDuration(r.PCAM),
			HasISS:  r.HasISS,
		})
	}
	return json.Marshal(map[string]any{"table": 1, "rows": rows})
}

// MarshalJSON renders Table 2.
func (t *Table2) MarshalJSON() ([]byte, error) {
	type row struct {
		Cache  string  `json:"cache"`
		Board  uint64  `json:"board_cycles"`
		ISS    uint64  `json:"iss_cycles"`
		ISSErr float64 `json:"iss_err_pct"`
		TLM    uint64  `json:"tlm_cycles"`
		TLMErr float64 `json:"tlm_err_pct"`
	}
	rows := make([]row, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, row{
			Cache: r.Cfg.String(), Board: r.Board,
			ISS: r.ISS, ISSErr: r.ISSErr, TLM: r.TLM, TLMErr: r.TLMErr,
		})
	}
	return json.Marshal(map[string]any{
		"table": 2, "rows": rows,
		"avg_abs_iss_err_pct": t.AvgISSErr,
		"avg_abs_tlm_err_pct": t.AvgTLMErr,
	})
}

// MarshalJSON renders Table 3.
func (t *Table3) MarshalJSON() ([]byte, error) {
	type cell struct {
		Board  uint64  `json:"board_cycles"`
		TLM    uint64  `json:"tlm_cycles"`
		ErrPct float64 `json:"err_pct"`
	}
	type row struct {
		Cache string          `json:"cache"`
		Cells map[string]cell `json:"designs"`
	}
	rows := make([]row, 0, len(t.Rows))
	for _, r := range t.Rows {
		cells := make(map[string]cell, len(r.Cells))
		for d, c := range r.Cells {
			cells[d] = cell{Board: c.Board, TLM: c.TLM, ErrPct: c.Err}
		}
		rows = append(rows, row{Cache: r.Cfg.String(), Cells: cells})
	}
	return json.Marshal(map[string]any{
		"table": 3, "rows": rows, "avg_abs_err_pct": t.AvgErr,
	})
}

// MarshalJSON renders the sensitivity ablation.
func (s *Sensitivity) MarshalJSON() ([]byte, error) {
	type point struct {
		PerturbPct float64 `json:"perturb_pct"`
		TLM        uint64  `json:"tlm_cycles"`
		ErrPct     float64 `json:"err_pct"`
	}
	pts := make([]point, 0, len(s.Points))
	for _, p := range s.Points {
		pts = append(pts, point{PerturbPct: 100 * p.Perturb, TLM: p.TLM, ErrPct: p.Err})
	}
	return json.Marshal(map[string]any{
		"ablation": "sensitivity", "cache": s.Cfg.String(),
		"board_cycles": s.Board, "points": pts,
	})
}

// MarshalJSON renders the overlap study.
func (o *OverlapStudy) MarshalJSON() ([]byte, error) {
	type row struct {
		Cache       string  `json:"cache"`
		Board       uint64  `json:"board_cycles"`
		Faithful    uint64  `json:"faithful_cycles"`
		FaithErrPct float64 `json:"faithful_err_pct"`
		Overlap     uint64  `json:"overlap_cycles"`
		OverErrPct  float64 `json:"overlap_err_pct"`
	}
	rows := make([]row, 0, len(o.Rows))
	for _, r := range o.Rows {
		rows = append(rows, row{
			Cache: r.Cfg.String(), Board: r.Board,
			Faithful: r.Faithful, FaithErrPct: r.FaithErr,
			Overlap: r.Overlap, OverErrPct: r.OverlapErr,
		})
	}
	return json.Marshal(map[string]any{
		"ablation": "overlap", "rows": rows,
		"avg_abs_faithful_err_pct": o.AvgFaith,
		"avg_abs_overlap_err_pct":  o.AvgOverlap,
	})
}

// MarshalJSON renders the RTOS study.
func (r *RTOSStudy) MarshalJSON() ([]byte, error) {
	type row struct {
		Policy   string `json:"policy"`
		Total    uint64 `json:"total_cycles"`
		Dec      uint64 `json:"dec_cpu_cycles"`
		Enc      uint64 `json:"enc_cpu_cycles"`
		Switches uint64 `json:"switches"`
	}
	rows := make([]row, 0, len(r.Rows))
	for _, x := range r.Rows {
		rows = append(rows, row{
			Policy: x.Label, Total: x.TotalCycles,
			Dec: x.DecCycles, Enc: x.EncCycles, Switches: x.Switches,
		})
	}
	return json.Marshal(map[string]any{
		"extension": "rtos", "two_pe_cycles": r.TwoPECycles, "rows": rows,
	})
}
