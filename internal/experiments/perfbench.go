package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ese/internal/apps"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/tlm"
)

// PerfBench is the machine-readable performance trajectory of the execution
// engines: per design, the deterministic simulation outputs (cycles, end
// time) plus the measured wall-clock and allocation cost of one timed TLM
// run under the tree-walking, compiled and ahead-of-time generated engines.
// Engines alternate within one process and the minimum over the repetitions
// is recorded, so all sides see the same machine conditions.
//
// The committed baseline (BENCH_tlm.json) is compared against a fresh
// measurement by Compare: simulated cycles must match exactly (the
// simulation is deterministic), and the speedups — machine-independent
// ratios — must not regress beyond the tolerance. Raw nanosecond fields
// are recorded for trend inspection only; they are never compared across
// machines. Baselines recorded before the generated tier existed simply
// lack the gen fields; those comparisons are skipped, not rejected.
type PerfBench struct {
	Frames int            `json:"frames"`
	Reps   int            `json:"reps"`
	Rows   []PerfBenchRow `json:"rows"`
}

// PerfBenchRow is one design's measurement.
type PerfBenchRow struct {
	Design         string  `json:"design"`
	SimCycles      uint64  `json:"sim_cycles"` // sum of CyclesByPE (deterministic)
	EndPs          uint64  `json:"end_ps"`     // simulated end time (deterministic)
	TreeNs         int64   `json:"tree_ns"`    // min wall-clock of one run
	CompiledNs     int64   `json:"compiled_ns"`
	GenNs          int64   `json:"gen_ns,omitempty"` // ahead-of-time generated engine
	TreeAllocs     uint64  `json:"tree_allocs"`      // min allocations of one run
	CompiledAllocs uint64  `json:"compiled_allocs"`
	GenAllocs      uint64  `json:"gen_allocs,omitempty"`
	Speedup        float64 `json:"speedup"`                       // TreeNs / CompiledNs
	SpeedupVsComp  float64 `json:"speedup_vs_compiled,omitempty"` // CompiledNs / GenNs
	AllocRatio     float64 `json:"alloc_ratio"`                   // TreeAllocs / max(CompiledAllocs,1)
}

// perfBenchCacheCfg matches the Table 1 evaluation configuration.
var perfBenchCacheCfg = pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}

// perfBenchJPEGDesigns are the JPEG rows appended after the MP3 designs;
// their row names carry the "jpeg-" prefix to stay distinct.
var perfBenchJPEGDesigns = apps.JPEGDesignNames

// perfBenchDesigns builds the benchmarked design list: the four MP3
// mappings followed by the two JPEG mappings, with the JPEG workload
// scaled by the same frames knob.
func perfBenchDesigns(s *Setup) ([]*platform.Design, error) {
	var out []*platform.Design
	for _, design := range apps.MP3DesignNames {
		d, err := apps.MP3Design(design, s.Eval, s.MB, perfBenchCacheCfg)
		if err != nil {
			return nil, err
		}
		d.Name = design // row key: plain design name, cache cfg is fixed
		out = append(out, d)
	}
	jpeg := apps.JPEGConfig{Blocks: 8 * s.Eval.Frames, Seed: apps.DefaultJPEG.Seed}
	for _, design := range perfBenchJPEGDesigns {
		d, err := apps.JPEGDesign(design, jpeg, s.MB, perfBenchCacheCfg)
		if err != nil {
			return nil, err
		}
		d.Name = "jpeg-" + design
		out = append(out, d)
	}
	return out, nil
}

// perfBenchKnownDesigns is the row-name whitelist LoadBaseline accepts.
func perfBenchKnownDesigns() map[string]bool {
	known := make(map[string]bool)
	for _, d := range apps.MP3DesignNames {
		known[d] = true
	}
	for _, d := range perfBenchJPEGDesigns {
		known["jpeg-"+d] = true
	}
	return known
}

// RunPerfBench measures every benchmark design's timed TLM under the
// three engines. Delays are annotated once per design outside the timed
// region, so the measurement isolates simulation (the quantity the engine
// choice affects).
func RunPerfBench(s *Setup, reps int) (*PerfBench, error) {
	if reps < 1 {
		reps = 1
	}
	out := &PerfBench{Frames: s.Eval.Frames, Reps: reps}
	designs, err := perfBenchDesigns(s)
	if err != nil {
		return nil, err
	}
	for _, d := range designs {
		dm, _ := s.Pipe.Delays(d, core.FullDetail)
		row := PerfBenchRow{Design: d.Name}
		runOnce := func(kind interp.EngineKind) (time.Duration, uint64, *tlm.Result, error) {
			opts := tlm.Options{
				Timed:    true,
				WaitMode: tlm.WaitAtTransactions,
				Detail:   core.FullDetail,
				Delays:   dm,
				Engine:   kind,
			}
			// Collect before timing so one engine's garbage is never paid
			// for during another engine's timed region.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := tlm.Run(d, opts)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			return wall, after.Mallocs - before.Mallocs, res, err
		}
		type sample struct {
			ns     *int64
			allocs *uint64
			kind   interp.EngineKind
		}
		samples := []sample{
			{&row.TreeNs, &row.TreeAllocs, interp.EngineTree},
			{&row.CompiledNs, &row.CompiledAllocs, interp.EngineCompiled},
			{&row.GenNs, &row.GenAllocs, interp.EngineGen},
		}
		for rep := 0; rep < reps; rep++ {
			// Alternate engines within each repetition so every side samples
			// the same machine conditions.
			var refCycles uint64
			var refEnd uint64
			for i, sm := range samples {
				wall, allocs, res, err := runOnce(sm.kind)
				if err != nil {
					return nil, fmt.Errorf("perfbench %s (%v): %w", d.Name, sm.kind, err)
				}
				var cycles uint64
				for _, c := range res.CyclesByPE {
					cycles += c
				}
				if i == 0 {
					refCycles, refEnd = cycles, uint64(res.EndPs)
				} else if cycles != refCycles || uint64(res.EndPs) != refEnd {
					return nil, fmt.Errorf("perfbench %s: engines diverge (tree %d cycles end %d, %v %d cycles end %d)",
						d.Name, refCycles, refEnd, sm.kind, cycles, res.EndPs)
				}
				if rep == 0 {
					*sm.ns, *sm.allocs = wall.Nanoseconds(), allocs
					continue
				}
				if n := wall.Nanoseconds(); n < *sm.ns {
					*sm.ns = n
				}
				if allocs < *sm.allocs {
					*sm.allocs = allocs
				}
			}
			if rep == 0 {
				row.SimCycles, row.EndPs = refCycles, refEnd
			}
		}
		if row.CompiledNs > 0 {
			row.Speedup = float64(row.TreeNs) / float64(row.CompiledNs)
		}
		if row.GenNs > 0 {
			row.SpeedupVsComp = float64(row.CompiledNs) / float64(row.GenNs)
		}
		ca := row.CompiledAllocs
		if ca == 0 {
			ca = 1
		}
		row.AllocRatio = float64(row.TreeAllocs) / float64(ca)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// LoadBaseline reads and validates a committed benchmark baseline
// (BENCH_tlm.json). Every way the baseline can be unusable — missing
// file, truncated or malformed JSON, no rows, rows for designs this
// build does not know (a baseline from a different design set) — is an
// input error (exit 2 / HTTP 400), not a runtime failure: the
// measurement itself never ran, so exit 1 would misreport a benchmark
// regression. A baseline recorded before the generated tier (no gen
// fields) or before the JPEG rows is still valid.
func LoadBaseline(path string) (*PerfBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, cli.Input(fmt.Errorf("bench baseline: %w", err))
	}
	var b PerfBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, cli.Input(fmt.Errorf("bench baseline %s: malformed or truncated JSON: %w", path, err))
	}
	if len(b.Rows) == 0 {
		return nil, cli.Input(fmt.Errorf("bench baseline %s: no measurement rows", path))
	}
	known := perfBenchKnownDesigns()
	seen := make(map[string]bool, len(b.Rows))
	for _, r := range b.Rows {
		if !known[r.Design] {
			return nil, cli.Input(fmt.Errorf(
				"bench baseline %s: unknown design %q — baseline from a different design set?", path, r.Design))
		}
		if seen[r.Design] {
			return nil, cli.Input(fmt.Errorf("bench baseline %s: duplicate design %q", path, r.Design))
		}
		seen[r.Design] = true
		if r.Speedup < 0 || r.TreeNs < 0 || r.CompiledNs < 0 || r.GenNs < 0 {
			return nil, cli.Input(fmt.Errorf("bench baseline %s: design %q has negative measurements", path, r.Design))
		}
	}
	return &b, nil
}

// Compare checks a fresh measurement against a committed baseline and
// returns human-readable violations (empty means the run is acceptable).
// Only machine-independent quantities are compared: simulated cycles and
// end time must match exactly when the workloads match, and the speedup
// ratios must not fall below baseline*(1-tol). Gen-tier comparisons run
// only when the baseline has gen measurements, so pre-gen baselines stay
// usable.
func (b *PerfBench) Compare(baseline *PerfBench, tol float64) []string {
	var violations []string
	byDesign := make(map[string]PerfBenchRow, len(b.Rows))
	for _, r := range b.Rows {
		byDesign[r.Design] = r
	}
	sameWorkload := b.Frames == baseline.Frames
	for _, base := range baseline.Rows {
		cur, ok := byDesign[base.Design]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: missing from current measurement", base.Design))
			continue
		}
		if sameWorkload && (cur.SimCycles != base.SimCycles || cur.EndPs != base.EndPs) {
			violations = append(violations, fmt.Sprintf(
				"%s: simulated outputs changed: %d cycles end %d ps, baseline %d cycles end %d ps (determinism or timing-model regression)",
				base.Design, cur.SimCycles, cur.EndPs, base.SimCycles, base.EndPs))
		}
		floor := base.Speedup * (1 - tol)
		if cur.Speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: compiled/tree speedup %.2fx below %.2fx (baseline %.2fx - %.0f%% tolerance)",
				base.Design, cur.Speedup, floor, base.Speedup, 100*tol))
		}
		if base.GenNs > 0 {
			genFloor := base.SpeedupVsComp * (1 - tol)
			if cur.SpeedupVsComp < genFloor {
				violations = append(violations, fmt.Sprintf(
					"%s: gen/compiled speedup %.2fx below %.2fx (baseline %.2fx - %.0f%% tolerance)",
					base.Design, cur.SpeedupVsComp, genFloor, base.SpeedupVsComp, 100*tol))
			}
			if base.GenAllocs > 0 {
				ceil := float64(base.GenAllocs) * (1 + tol)
				if float64(cur.GenAllocs) > ceil {
					violations = append(violations, fmt.Sprintf(
						"%s: gen-engine allocations %d above %.0f (baseline %d + %.0f%% tolerance)",
						base.Design, cur.GenAllocs, ceil, base.GenAllocs, 100*tol))
				}
			}
		}
		if base.CompiledAllocs > 0 {
			ceil := float64(base.CompiledAllocs) * (1 + tol)
			if float64(cur.CompiledAllocs) > ceil {
				violations = append(violations, fmt.Sprintf(
					"%s: compiled-engine allocations %d above %.0f (baseline %d + %.0f%% tolerance)",
					base.Design, cur.CompiledAllocs, ceil, base.CompiledAllocs, 100*tol))
			}
		}
	}
	return violations
}

// String renders the trajectory as an aligned table.
func (b *PerfBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine benchmark (timed TLM, %d frames, min of %d reps)\n", b.Frames, b.Reps)
	fmt.Fprintf(&sb, "%-10s %14s %11s %11s %11s %9s %9s %12s %12s %12s\n",
		"design", "sim cycles", "tree ms", "comp ms", "gen ms", "c/t", "g/c", "tree allocs", "comp allocs", "gen allocs")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-10s %14d %11.3f %11.3f %11.3f %8.2fx %8.2fx %12d %12d %12d\n",
			r.Design, r.SimCycles,
			float64(r.TreeNs)/1e6, float64(r.CompiledNs)/1e6, float64(r.GenNs)/1e6,
			r.Speedup, r.SpeedupVsComp,
			r.TreeAllocs, r.CompiledAllocs, r.GenAllocs)
	}
	return sb.String()
}
