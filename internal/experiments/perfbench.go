package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ese/internal/apps"
	"ese/internal/cli"
	"ese/internal/core"
	"ese/internal/interp"
	"ese/internal/pum"
	"ese/internal/tlm"
)

// PerfBench is the machine-readable performance trajectory of the execution
// engines: per design, the deterministic simulation outputs (cycles, end
// time) plus the measured wall-clock and allocation cost of one timed TLM
// run under the tree-walking and compiled engines. Engines alternate within
// one process and the minimum over the repetitions is recorded, so the two
// sides see the same machine conditions.
//
// The committed baseline (BENCH_tlm.json) is compared against a fresh
// measurement by Compare: simulated cycles must match exactly (the
// simulation is deterministic), and the compiled/tree speedup — a
// machine-independent ratio — must not regress beyond the tolerance. Raw
// nanosecond fields are recorded for trend inspection only; they are never
// compared across machines.
type PerfBench struct {
	Frames int            `json:"frames"`
	Reps   int            `json:"reps"`
	Rows   []PerfBenchRow `json:"rows"`
}

// PerfBenchRow is one design's measurement.
type PerfBenchRow struct {
	Design         string  `json:"design"`
	SimCycles      uint64  `json:"sim_cycles"` // sum of CyclesByPE (deterministic)
	EndPs          uint64  `json:"end_ps"`     // simulated end time (deterministic)
	TreeNs         int64   `json:"tree_ns"`    // min wall-clock of one run
	CompiledNs     int64   `json:"compiled_ns"`
	TreeAllocs     uint64  `json:"tree_allocs"` // min allocations of one run
	CompiledAllocs uint64  `json:"compiled_allocs"`
	Speedup        float64 `json:"speedup"`     // TreeNs / CompiledNs
	AllocRatio     float64 `json:"alloc_ratio"` // TreeAllocs / max(CompiledAllocs,1)
}

// perfBenchCacheCfg matches the Table 1 evaluation configuration.
var perfBenchCacheCfg = pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}

// RunPerfBench measures every MP3 design's timed TLM under both engines.
// Delays are annotated once per design outside the timed region, so the
// measurement isolates simulation (the quantity the engine choice affects).
func RunPerfBench(s *Setup, reps int) (*PerfBench, error) {
	if reps < 1 {
		reps = 1
	}
	out := &PerfBench{Frames: s.Eval.Frames, Reps: reps}
	for _, design := range apps.MP3DesignNames {
		d, err := apps.MP3Design(design, s.Eval, s.MB, perfBenchCacheCfg)
		if err != nil {
			return nil, err
		}
		dm, _ := s.Pipe.Delays(d, core.FullDetail)
		row := PerfBenchRow{Design: design}
		runOnce := func(kind interp.EngineKind) (time.Duration, uint64, *tlm.Result, error) {
			opts := tlm.Options{
				Timed:    true,
				WaitMode: tlm.WaitAtTransactions,
				Detail:   core.FullDetail,
				Delays:   dm,
				Engine:   kind,
			}
			// Collect before timing so one engine's garbage is never paid
			// for during the other engine's timed region.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := tlm.Run(d, opts)
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			return wall, after.Mallocs - before.Mallocs, res, err
		}
		for rep := 0; rep < reps; rep++ {
			// Alternate engines within each repetition so both sides sample
			// the same machine conditions.
			tw, ta, tres, err := runOnce(interp.EngineTree)
			if err != nil {
				return nil, fmt.Errorf("perfbench %s (tree): %w", design, err)
			}
			cw, ca, cres, err := runOnce(interp.EngineCompiled)
			if err != nil {
				return nil, fmt.Errorf("perfbench %s (compiled): %w", design, err)
			}
			var cycles uint64
			for _, c := range cres.CyclesByPE {
				cycles += c
			}
			var tcycles uint64
			for _, c := range tres.CyclesByPE {
				tcycles += c
			}
			if tcycles != cycles || tres.EndPs != cres.EndPs {
				return nil, fmt.Errorf("perfbench %s: engines diverge (tree %d cycles end %d, compiled %d cycles end %d)",
					design, tcycles, tres.EndPs, cycles, cres.EndPs)
			}
			if rep == 0 {
				row.SimCycles, row.EndPs = cycles, uint64(cres.EndPs)
				row.TreeNs, row.CompiledNs = tw.Nanoseconds(), cw.Nanoseconds()
				row.TreeAllocs, row.CompiledAllocs = ta, ca
				continue
			}
			if n := tw.Nanoseconds(); n < row.TreeNs {
				row.TreeNs = n
			}
			if n := cw.Nanoseconds(); n < row.CompiledNs {
				row.CompiledNs = n
			}
			if ta < row.TreeAllocs {
				row.TreeAllocs = ta
			}
			if ca < row.CompiledAllocs {
				row.CompiledAllocs = ca
			}
		}
		if row.CompiledNs > 0 {
			row.Speedup = float64(row.TreeNs) / float64(row.CompiledNs)
		}
		ca := row.CompiledAllocs
		if ca == 0 {
			ca = 1
		}
		row.AllocRatio = float64(row.TreeAllocs) / float64(ca)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// LoadBaseline reads and validates a committed benchmark baseline
// (BENCH_tlm.json). Every way the baseline can be unusable — missing
// file, truncated or malformed JSON, no rows, rows for designs this
// build does not know (a baseline from a different design set) — is an
// input error (exit 2 / HTTP 400), not a runtime failure: the
// measurement itself never ran, so exit 1 would misreport a benchmark
// regression.
func LoadBaseline(path string) (*PerfBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, cli.Input(fmt.Errorf("bench baseline: %w", err))
	}
	var b PerfBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, cli.Input(fmt.Errorf("bench baseline %s: malformed or truncated JSON: %w", path, err))
	}
	if len(b.Rows) == 0 {
		return nil, cli.Input(fmt.Errorf("bench baseline %s: no measurement rows", path))
	}
	known := make(map[string]bool, len(apps.MP3DesignNames))
	for _, d := range apps.MP3DesignNames {
		known[d] = true
	}
	seen := make(map[string]bool, len(b.Rows))
	for _, r := range b.Rows {
		if !known[r.Design] {
			return nil, cli.Input(fmt.Errorf(
				"bench baseline %s: unknown design %q — baseline from a different design set?", path, r.Design))
		}
		if seen[r.Design] {
			return nil, cli.Input(fmt.Errorf("bench baseline %s: duplicate design %q", path, r.Design))
		}
		seen[r.Design] = true
		if r.Speedup < 0 || r.TreeNs < 0 || r.CompiledNs < 0 {
			return nil, cli.Input(fmt.Errorf("bench baseline %s: design %q has negative measurements", path, r.Design))
		}
	}
	return &b, nil
}

// Compare checks a fresh measurement against a committed baseline and
// returns human-readable violations (empty means the run is acceptable).
// Only machine-independent quantities are compared: simulated cycles and
// end time must match exactly when the workloads match, and the
// compiled/tree speedup must not fall below baseline*(1-tol).
func (b *PerfBench) Compare(baseline *PerfBench, tol float64) []string {
	var violations []string
	byDesign := make(map[string]PerfBenchRow, len(b.Rows))
	for _, r := range b.Rows {
		byDesign[r.Design] = r
	}
	sameWorkload := b.Frames == baseline.Frames
	for _, base := range baseline.Rows {
		cur, ok := byDesign[base.Design]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: missing from current measurement", base.Design))
			continue
		}
		if sameWorkload && (cur.SimCycles != base.SimCycles || cur.EndPs != base.EndPs) {
			violations = append(violations, fmt.Sprintf(
				"%s: simulated outputs changed: %d cycles end %d ps, baseline %d cycles end %d ps (determinism or timing-model regression)",
				base.Design, cur.SimCycles, cur.EndPs, base.SimCycles, base.EndPs))
		}
		floor := base.Speedup * (1 - tol)
		if cur.Speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: compiled/tree speedup %.2fx below %.2fx (baseline %.2fx - %.0f%% tolerance)",
				base.Design, cur.Speedup, floor, base.Speedup, 100*tol))
		}
		if base.CompiledAllocs > 0 {
			ceil := float64(base.CompiledAllocs) * (1 + tol)
			if float64(cur.CompiledAllocs) > ceil {
				violations = append(violations, fmt.Sprintf(
					"%s: compiled-engine allocations %d above %.0f (baseline %d + %.0f%% tolerance)",
					base.Design, cur.CompiledAllocs, ceil, base.CompiledAllocs, 100*tol))
			}
		}
	}
	return violations
}

// String renders the trajectory as an aligned table.
func (b *PerfBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine benchmark (timed TLM, %d frames, min of %d reps)\n", b.Frames, b.Reps)
	fmt.Fprintf(&sb, "%-6s %14s %12s %12s %8s %12s %12s %7s\n",
		"design", "sim cycles", "tree ms", "compiled ms", "speedup", "tree allocs", "comp allocs", "ratio")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-6s %14d %12.3f %12.3f %7.2fx %12d %12d %6.1fx\n",
			r.Design, r.SimCycles,
			float64(r.TreeNs)/1e6, float64(r.CompiledNs)/1e6, r.Speedup,
			r.TreeAllocs, r.CompiledAllocs, r.AllocRatio)
	}
	return sb.String()
}
