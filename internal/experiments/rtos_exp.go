package experiments

import (
	"fmt"
	"strings"

	"ese/internal/apps"
	"ese/internal/cdfg"
	"ese/internal/core"
	"ese/internal/iss"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtl"
	"ese/internal/rtos"
	"ese/internal/tlm"
)

// RTOSRow is one scheduling configuration of the consolidation study.
type RTOSRow struct {
	Label       string
	Cfg         rtos.Config
	TotalCycles uint64 // end-to-end time in CPU cycles
	DecCycles   uint64 // decoder task CPU time
	EncCycles   uint64 // encoder task CPU time
	DecWait     uint64 // decoder time spent waiting for the CPU
	EncWait     uint64
	Switches    uint64
}

// RTOSStudy is the timed-RTOS extension experiment: the MP3-like decoder
// and the JPEG-like encoder consolidated onto one processor, across RTOS
// policies and parameters.
type RTOSStudy struct {
	TwoPECycles uint64 // reference: each task on its own processor
	Rows        []RTOSRow
}

// rtosMediaDesign builds the single-CPU two-task design.
func rtosMediaDesign(s *Setup, cfg rtos.Config) (*platform.Design, error) {
	src, err := apps.MediaSource("SW", s.Eval, apps.JPEGConfig{Blocks: 12, Seed: 0xBEEF})
	if err != nil {
		return nil, err
	}
	prog, err := apps.Compile("media.c", src)
	if err != nil {
		return nil, err
	}
	mb, err := s.MB.WithCache(pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
	if err != nil {
		return nil, err
	}
	return &platform.Design{
		Name:    "media-rtos",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{{
			Name: "cpu",
			Kind: platform.Processor,
			PUM:  mb,
			Tasks: []platform.SWTask{
				{Name: "dec", Entry: "main", Priority: 5},
				{Name: "enc", Entry: "jpeg_main", Priority: 1},
			},
			RTOS: cfg,
		}},
	}, nil
}

// twoPEMediaDesign maps the two tasks to two processors (the reference).
func twoPEMediaDesign(s *Setup) (*platform.Design, error) {
	src, err := apps.MediaSource("SW", s.Eval, apps.JPEGConfig{Blocks: 12, Seed: 0xBEEF})
	if err != nil {
		return nil, err
	}
	prog, err := apps.Compile("media.c", src)
	if err != nil {
		return nil, err
	}
	mb, err := s.MB.WithCache(pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024})
	if err != nil {
		return nil, err
	}
	return &platform.Design{
		Name:    "media-2pe",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{
			{Name: "p0", Kind: platform.Processor, Entry: "main", PUM: mb},
			{Name: "p1", Kind: platform.Processor, Entry: "jpeg_main", PUM: mb},
		},
	}, nil
}

// RunRTOSStudy runs the consolidation sweep.
func RunRTOSStudy(s *Setup) (*RTOSStudy, error) {
	out := &RTOSStudy{}
	ref, err := twoPEMediaDesign(s)
	if err != nil {
		return nil, err
	}
	refRes, err := s.Pipe.RunTimed(ref)
	if err != nil {
		return nil, err
	}
	out.TwoPECycles = refRes.EndCycles(100_000_000)

	configs := []struct {
		label string
		cfg   rtos.Config
	}{
		{"cooperative", rtos.Config{Policy: rtos.Cooperative, ContextSwitchCycles: 100}},
		{"rr 10k", rtos.Config{Policy: rtos.RoundRobin, TimeSliceCycles: 10_000, ContextSwitchCycles: 100}},
		{"rr 100k", rtos.Config{Policy: rtos.RoundRobin, TimeSliceCycles: 100_000, ContextSwitchCycles: 100}},
		{"rr 1M", rtos.Config{Policy: rtos.RoundRobin, TimeSliceCycles: 1_000_000, ContextSwitchCycles: 100}},
		{"priority dec", rtos.Config{Policy: rtos.PriorityPreemptive, ContextSwitchCycles: 100}},
	}
	for _, c := range configs {
		d, err := rtosMediaDesign(s, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.Pipe.RunTimed(d)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, RTOSRow{
			Label:       c.label,
			Cfg:         c.cfg,
			TotalCycles: res.EndCycles(100_000_000),
			DecCycles:   res.CyclesByPE["cpu/dec"],
			EncCycles:   res.CyclesByPE["cpu/enc"],
			Switches:    res.SwitchesByPE["cpu"],
		})
	}
	return out, nil
}

// String renders the study.
func (r *RTOSStudy) String() string {
	var sb strings.Builder
	sb.WriteString("Extension E1: timed RTOS model — decoder + encoder on one processor\n")
	fmt.Fprintf(&sb, "reference (2 PEs): total %d cycles\n", r.TwoPECycles)
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s %10s\n", "policy", "total", "dec cpu", "enc cpu", "switches")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %12d %12d %12d %10d\n",
			row.Label, row.TotalCycles, row.DecCycles, row.EncCycles, row.Switches)
	}
	return sb.String()
}

// OverlapRow is one cache config of the overlap-compensation ablation.
type OverlapRow struct {
	Cfg        pum.CacheCfg
	Board      uint64
	Faithful   uint64 // paper's Algorithm 1 as written
	FaithErr   float64
	Overlap    uint64 // with pipeline-overlap compensation (extension)
	OverlapErr float64
}

// OverlapStudy is ablation A5: the pipeline-overlap compensation extension
// versus the paper's literal Algorithm 1, on the SW design.
type OverlapStudy struct {
	Rows                 []OverlapRow
	AvgFaith, AvgOverlap float64
}

// RunOverlapStudy measures both estimators against the board.
func RunOverlapStudy(s *Setup) (*OverlapStudy, error) {
	prog, err := apps.CompileMP3("SW", s.Eval)
	if err != nil {
		return nil, err
	}
	isa, err := iss.Generate(prog)
	if err != nil {
		return nil, err
	}
	out := &OverlapStudy{}
	for _, cc := range pum.StandardCacheConfigs {
		m := iss.NewMachine(isa)
		if err := m.Start("main"); err != nil {
			return nil, err
		}
		cpu, err := rtl.NewCPU(m, rtl.CPUConfig{
			Model:  s.MB,
			ICache: rtl.RealCacheConfig(cc.ISize),
			DCache: rtl.RealCacheConfig(cc.DSize),
		})
		if err != nil {
			return nil, err
		}
		if err := cpu.Run(0); err != nil {
			return nil, err
		}
		row := OverlapRow{Cfg: cc, Board: cpu.Cycles}

		for _, variant := range []struct {
			detail core.Detail
			cycles *uint64
			errPct *float64
		}{
			{core.FullDetail, &row.Faithful, &row.FaithErr},
			{core.OverlapDetail, &row.Overlap, &row.OverlapErr},
		} {
			d, err := apps.MP3Design("SW", s.Eval, s.MB, cc)
			if err != nil {
				return nil, err
			}
			res, err := s.Pipe.Simulate(d, tlm.Options{
				Timed:    true,
				WaitMode: tlm.WaitAtTransactions,
				Detail:   variant.detail,
			})
			if err != nil {
				return nil, err
			}
			*variant.cycles = res.CyclesByPE["mb"]
			*variant.errPct = pct(float64(*variant.cycles), float64(row.Board))
		}
		out.Rows = append(out.Rows, row)
		out.AvgFaith += abs(row.FaithErr)
		out.AvgOverlap += abs(row.OverlapErr)
	}
	out.AvgFaith /= float64(len(out.Rows))
	out.AvgOverlap /= float64(len(out.Rows))
	return out, nil
}

// String renders the study.
func (o *OverlapStudy) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation A5: pipeline-overlap compensation (extension) vs faithful Algorithm 1\n")
	fmt.Fprintf(&sb, "%-9s %12s %12s %9s %12s %9s\n",
		"I/D cache", "Board", "faithful", "err%", "overlap", "err%")
	for _, r := range o.Rows {
		fmt.Fprintf(&sb, "%-9s %12d %12d %8.2f%% %12d %8.2f%%\n",
			r.Cfg, r.Board, r.Faithful, r.FaithErr, r.Overlap, r.OverlapErr)
	}
	fmt.Fprintf(&sb, "%-9s %12s %12s %8.2f%% %12s %8.2f%%   (avg |err|)\n",
		"Average", "", "", o.AvgFaith, "", o.AvgOverlap)
	return sb.String()
}

// BlockSizeRow is one variant of the block-size ablation.
type BlockSizeRow struct {
	Label   string
	Blocks  int
	AvgOps  float64
	Board   uint64
	TLM     uint64
	Err     float64
	ErrComp float64 // with overlap compensation
}

// BlockSizeStudy is ablation A6: how the basic-block size distribution
// (raw lowering vs compiler-style CFG simplification) affects both the
// platform (fewer jumps on the board) and the estimate (fewer per-block
// scheduling boundaries).
type BlockSizeStudy struct {
	Rows []BlockSizeRow
}

// RunBlockSizeStudy measures the SW design at 8k/4k with raw and
// simplified CFGs.
func RunBlockSizeStudy(s *Setup) (*BlockSizeStudy, error) {
	cc := pum.CacheCfg{ISize: 8 * 1024, DSize: 4 * 1024}
	out := &BlockSizeStudy{}
	for _, variant := range []struct {
		label    string
		simplify bool
	}{
		{"raw lowering", false},
		{"simplified CFG", true},
	} {
		d, err := apps.MP3Design("SW", s.Eval, s.MB, cc)
		if err != nil {
			return nil, err
		}
		if variant.simplify {
			cdfg.SimplifyProgram(d.Program)
		}
		row := BlockSizeRow{Label: variant.label, Blocks: d.Program.NumBlocks()}
		row.AvgOps = float64(d.Program.NumInstrs()) / float64(d.Program.NumBlocks())

		board, err := rtl.RunBoard(d, 0)
		if err != nil {
			return nil, err
		}
		row.Board = board.PEs["mb"].Cycles

		res, err := s.Pipe.RunTimed(d)
		if err != nil {
			return nil, err
		}
		row.TLM = res.CyclesByPE["mb"]
		row.Err = pct(float64(row.TLM), float64(row.Board))

		resC, err := s.Pipe.Simulate(d, tlm.Options{
			Timed: true, WaitMode: tlm.WaitAtTransactions, Detail: core.OverlapDetail,
		})
		if err != nil {
			return nil, err
		}
		row.ErrComp = pct(float64(resC.CyclesByPE["mb"]), float64(row.Board))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the block-size study.
func (b *BlockSizeStudy) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation A6: basic-block size vs estimation error (SW design, 8k/4k)\n")
	fmt.Fprintf(&sb, "%-16s %8s %8s %12s %12s %9s %12s\n",
		"CFG", "blocks", "ops/bb", "board", "TLM", "err%", "overlap err%")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-16s %8d %8.1f %12d %12d %8.2f%% %11.2f%%\n",
			r.Label, r.Blocks, r.AvgOps, r.Board, r.TLM, r.Err, r.ErrComp)
	}
	return sb.String()
}
