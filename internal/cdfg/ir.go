// Package cdfg defines the control/data flow graph IR that the front end
// lowers C processes into, and that the estimation engine, the TLM executor
// and the ISA code generator all consume.
//
// A Program holds global variables and functions. A Function is a CFG of
// basic Blocks; each Block is a straight-line sequence of three-address
// Instrs ending in exactly one terminator (Br, Jmp or Ret). Within a block,
// BuildDFG recovers the data-flow graph that Algorithm 1 of the paper
// schedules on the processing unit model.
//
// Storage model: scalar variables are IR-level registers (one Slot each for
// locals/params, one Global each at program scope); arrays live in memory
// and are touched only by Load/Store. Expression temporaries (RefTemp) are
// virtual registers private to a function and never count as memory
// operands. This mirrors the naive (-O0 style) code the ISA backend emits,
// which keeps the estimation model and the cycle-accurate baselines
// consistent by construction.
package cdfg

import (
	"fmt"

	"ese/internal/cfront"
)

// Opcode enumerates IR operations.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Arithmetic and logic. Dst = A op B (temps/vars/consts).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // Dst = -A
	OpNot // Dst = ^A

	// Comparisons, producing 0/1.
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe

	// Data movement.
	OpMov   // Dst = A
	OpLoad  // Dst = Arr[A]
	OpStore // Arr[A] = B

	// Control flow (terminators, except OpCall).
	OpBr  // if A != 0 goto Then else Else
	OpJmp // goto Target
	OpRet // return A (A may be RefNone)

	// Calls and platform intrinsics.
	OpCall // Dst (optional) = Callee(Args...)
	OpSend // send(Chan, Arr, A words)
	OpRecv // recv(Chan, Arr, A words)
	OpOut  // out(A)
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpNeg: "neg", OpNot: "not",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpGt: "cmpgt", OpCmpGe: "cmpge",
	OpMov: "mov", OpLoad: "load", OpStore: "store",
	OpBr: "br", OpJmp: "jmp", OpRet: "ret",
	OpCall: "call", OpSend: "send", OpRecv: "recv", OpOut: "out",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool {
	return op == OpBr || op == OpJmp || op == OpRet
}

// Class groups opcodes into the operation classes that the processing unit
// model's operation mapping table is keyed by.
type Class uint8

const (
	ClassNone   Class = iota
	ClassALU          // add/sub/logic/compare/mov/neg/not
	ClassMul          // multiply
	ClassDiv          // divide/remainder
	ClassShift        // shifts
	ClassLoad         // memory read
	ClassStore        // memory write
	ClassBranch       // conditional branch
	ClassJump         // unconditional jump, return
	ClassCall         // function call
	ClassIO           // send/recv/out bookkeeping op
)

var classNames = [...]string{
	ClassNone: "none", ClassALU: "alu", ClassMul: "mul", ClassDiv: "div",
	ClassShift: "shift", ClassLoad: "load", ClassStore: "store",
	ClassBranch: "branch", ClassJump: "jump", ClassCall: "call", ClassIO: "io",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// OpClass returns the operation class of an opcode.
func OpClass(op Opcode) Class {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNeg, OpNot, OpMov,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe:
		return ClassALU
	case OpMul:
		return ClassMul
	case OpDiv, OpRem:
		return ClassDiv
	case OpShl, OpShr:
		return ClassShift
	case OpLoad:
		return ClassLoad
	case OpStore:
		return ClassStore
	case OpBr:
		return ClassBranch
	case OpJmp, OpRet:
		return ClassJump
	case OpCall:
		return ClassCall
	case OpSend, OpRecv, OpOut:
		return ClassIO
	}
	return ClassNone
}

// RefKind classifies instruction operands.
type RefKind uint8

const (
	RefNone   RefKind = iota
	RefConst          // immediate constant
	RefTemp           // function-local virtual register
	RefSlot           // scalar local/param slot, or array slot as a base
	RefGlobal         // scalar global, or global array as a base
)

// Ref is an instruction operand.
type Ref struct {
	Kind RefKind
	Val  int32 // RefConst value
	Idx  int   // temp id, slot index, or global index
}

// Const returns a constant operand.
func Const(v int32) Ref { return Ref{Kind: RefConst, Val: v} }

// Temp returns a temp operand.
func Temp(i int) Ref { return Ref{Kind: RefTemp, Idx: i} }

// SlotRef returns a slot operand.
func SlotRef(i int) Ref { return Ref{Kind: RefSlot, Idx: i} }

// GlobalRef returns a global operand.
func GlobalRef(i int) Ref { return Ref{Kind: RefGlobal, Idx: i} }

func (r Ref) String() string {
	switch r.Kind {
	case RefNone:
		return "_"
	case RefConst:
		return fmt.Sprintf("#%d", r.Val)
	case RefTemp:
		return fmt.Sprintf("t%d", r.Idx)
	case RefSlot:
		return fmt.Sprintf("s%d", r.Idx)
	case RefGlobal:
		return fmt.Sprintf("g%d", r.Idx)
	}
	return "?"
}

// Instr is one three-address IR operation.
type Instr struct {
	Op   Opcode
	Dst  Ref // result (RefTemp/RefSlot/RefGlobal), or RefNone
	A, B Ref // operands
	Arr  Ref // array base for Load/Store/Send/Recv (RefSlot or RefGlobal)

	// Control flow.
	Then, Else *Block // OpBr
	Target     *Block // OpJmp

	// Calls.
	Callee *Function
	Args   []Ref // scalar refs, or array base refs for array params

	// Intrinsics.
	Chan int // OpSend/OpRecv channel id

	Pos cfront.Pos
}

// Block is a basic block.
type Block struct {
	ID     int
	Fn     *Function
	Instrs []Instr

	// Delay is the estimated execution delay of one dynamic execution of
	// this block in PE cycles, filled in by the annotation phase.
	Delay float64
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Succs returns the successor blocks in CFG order.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Then, t.Else}
	case OpJmp:
		return []*Block{t.Target}
	}
	return nil
}

// Slot is one unit of function-local storage.
type Slot struct {
	Name    string
	IsArray bool
	Size    int32 // words; 1 for scalars, 0 for array params (unsized)
	IsParam bool
	ParamIx int     // position in the parameter list, if IsParam
	Init    []int32 // constant initializer for local arrays/scalars, optional
}

// Function is a lowered function.
type Function struct {
	Name       string
	ReturnsInt bool
	Params     []*Slot // aliases into Slots[0:len(Params)]
	Slots      []*Slot
	Blocks     []*Block
	NTemps     int
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Global is one program-scope variable.
type Global struct {
	Name    string
	IsArray bool
	Size    int32 // words
	Init    []int32
}

// Program is a lowered translation unit.
type Program struct {
	Globals []*Global
	Funcs   []*Function
	funcMap map[string]*Function
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function { return p.funcMap[name] }

// NumBlocks returns the total basic-block count, a convenient size metric.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// NumInstrs returns the total static instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
