package cdfg

import "testing"

const fpSrc = `
int work(int a[], int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i = i + 1) {
		if (a[i] > 0) {
			s = s + a[i];
		} else {
			s = s - 1;
		}
	}
	return s;
}
void main() {
	int buf[4];
	int i;
	for (i = 0; i < 4; i = i + 1) {
		buf[i] = i * 3;
	}
	out(work(buf, 4));
}
`

// TestFingerprintStableAcrossRecompilation: the same source compiled
// twice yields pairwise-equal block fingerprints despite distinct block
// pointers — the property the content-addressed cache depends on.
func TestFingerprintStableAcrossRecompilation(t *testing.T) {
	p1 := compile(t, fpSrc)
	p2 := compile(t, fpSrc)
	for i, fn := range p1.Funcs {
		fn2 := p2.Funcs[i]
		for j, b := range fn.Blocks {
			b2 := fn2.Blocks[j]
			if b == b2 {
				t.Fatalf("%s bb%d: recompilation returned the same pointer", fn.Name, b.ID)
			}
			if b.Fingerprint() != b2.Fingerprint() {
				t.Errorf("%s bb%d: fingerprints differ across recompilation", fn.Name, b.ID)
			}
		}
	}
}

// TestFingerprintIgnoresDelay: the annotation output must not feed back
// into the key, or a second annotation pass would never hit the cache.
func TestFingerprintIgnoresDelay(t *testing.T) {
	p := compile(t, fpSrc)
	b := p.Funcs[0].Blocks[0]
	before := b.Fingerprint()
	b.Delay = 123.5
	if b.Fingerprint() != before {
		t.Error("Block.Delay changed the structural fingerprint")
	}
}

// TestFingerprintSensitivity: structurally different blocks hash apart,
// and editing an instruction changes the hash.
func TestFingerprintSensitivity(t *testing.T) {
	p := compile(t, fpSrc)
	seen := make(map[Fingerprint][]*Block)
	total := 0
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			fp := b.Fingerprint()
			seen[fp] = append(seen[fp], b)
			total++
		}
	}
	if len(seen) < 2 {
		t.Fatalf("all %d blocks collided onto %d fingerprints", total, len(seen))
	}
	// Mutating an opcode must change the hash.
	var target *Block
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			if len(b.Instrs) > 0 {
				target = b
			}
		}
	}
	if target == nil {
		t.Fatal("no block with instructions")
	}
	before := target.Fingerprint()
	old := target.Instrs[0].Op
	target.Instrs[0].Op = OpMul
	if old == OpMul {
		target.Instrs[0].Op = OpAdd
	}
	if target.Fingerprint() == before {
		t.Error("changing an opcode did not change the fingerprint")
	}
}
