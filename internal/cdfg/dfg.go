package cdfg

// DFG is the data-flow graph of one basic block: Deps[i] lists the indices
// of earlier instructions that instruction i must wait for. Edges cover true
// (RAW) dependencies plus the anti/output (WAR/WAW) orderings a hardware
// scheduler must respect, with array accesses handled at whole-array
// granularity and calls/communication acting as memory barriers.
type DFG struct {
	Block *Block
	Deps  [][]int
}

// locKey identifies a scalar storage location for dependency tracking.
type locKey struct {
	kind RefKind
	idx  int
}

// BuildDFG computes the intra-block dependence graph that Algorithm 1
// schedules.
func BuildDFG(b *Block) *DFG {
	n := len(b.Instrs)
	d := &DFG{Block: b, Deps: make([][]int, n)}

	lastWrite := make(map[locKey]int)    // location -> last writer
	readsSince := make(map[locKey][]int) // location -> readers since last write
	lastStore := make(map[locKey]int)    // array -> last store
	loadsSince := make(map[locKey][]int) // array -> loads since last store
	lastBarrier := -1                    // last call/send/recv
	var memSinceBarrier []int            // loads/stores since last barrier

	addDep := func(i, j int) {
		if j < 0 || j == i {
			return
		}
		for _, e := range d.Deps[i] {
			if e == j {
				return
			}
		}
		d.Deps[i] = append(d.Deps[i], j)
	}

	readScalar := func(i int, r Ref) {
		if r.Kind != RefTemp && r.Kind != RefSlot && r.Kind != RefGlobal {
			return
		}
		k := locKey{r.Kind, r.Idx}
		if w, ok := lastWrite[k]; ok {
			addDep(i, w)
		}
		readsSince[k] = append(readsSince[k], i)
	}

	writeScalar := func(i int, r Ref) {
		if r.Kind != RefTemp && r.Kind != RefSlot && r.Kind != RefGlobal {
			return
		}
		k := locKey{r.Kind, r.Idx}
		if w, ok := lastWrite[k]; ok {
			addDep(i, w) // WAW
		}
		for _, rd := range readsSince[k] {
			addDep(i, rd) // WAR
		}
		lastWrite[k] = i
		readsSince[k] = nil
	}

	arrKey := func(r Ref) locKey { return locKey{r.Kind, r.Idx} }

	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case OpLoad:
			readScalar(i, in.A)
			k := arrKey(in.Arr)
			if s, ok := lastStore[k]; ok {
				addDep(i, s)
			}
			loadsSince[k] = append(loadsSince[k], i)
			addDep(i, lastBarrier)
			memSinceBarrier = append(memSinceBarrier, i)
			writeScalar(i, in.Dst)
		case OpStore:
			readScalar(i, in.A)
			readScalar(i, in.B)
			k := arrKey(in.Arr)
			if s, ok := lastStore[k]; ok {
				addDep(i, s) // WAW on the array
			}
			for _, l := range loadsSince[k] {
				addDep(i, l) // WAR on the array
			}
			lastStore[k] = i
			loadsSince[k] = nil
			addDep(i, lastBarrier)
			memSinceBarrier = append(memSinceBarrier, i)
		case OpCall, OpSend, OpRecv:
			readScalar(i, in.A)
			for _, a := range in.Args {
				readScalar(i, a) // array bases fall through readScalar's kind filter only for scalars
			}
			// Barrier: ordered against all memory traffic and other barriers.
			addDep(i, lastBarrier)
			for _, m := range memSinceBarrier {
				addDep(i, m)
			}
			memSinceBarrier = nil
			lastBarrier = i
			// Array stores/loads after the barrier must not float above it:
			// model by treating the barrier as a store to every array it
			// could touch. Whole-block conservatism: clear per-array state
			// so later memory ops depend on the barrier via lastBarrier.
			for k := range lastStore {
				delete(lastStore, k)
			}
			for k := range loadsSince {
				delete(loadsSince, k)
			}
			if in.Op == OpCall {
				writeScalar(i, in.Dst)
			}
		case OpOut:
			readScalar(i, in.A)
			addDep(i, lastBarrier)
			memSinceBarrier = append(memSinceBarrier, i)
		case OpBr:
			readScalar(i, in.A)
		case OpRet:
			readScalar(i, in.A)
		case OpJmp:
			// No data dependencies.
		default:
			readScalar(i, in.A)
			readScalar(i, in.B)
			writeScalar(i, in.Dst)
		}
	}
	return d
}

// NumOps returns the operation count of the block, the factor the paper's
// Algorithm 2 multiplies by the i-cache statistics ("# of BB Ops").
func NumOps(b *Block) int { return len(b.Instrs) }

// refMem reports whether reading/writing r touches data memory in the code
// model (global scalars live in memory; locals and temps are registers).
func refMem(r Ref) int {
	if r.Kind == RefGlobal {
		return 1
	}
	return 0
}

// MemOperands returns the number of data-memory operand accesses the
// instruction makes ("# of BB Operands" per Algorithm 2 accumulates this):
// one per array element load/store plus one per global-scalar read or write.
func MemOperands(in *Instr) int {
	n := 0
	switch in.Op {
	case OpLoad:
		n = 1 + refMem(in.A)
		if in.Dst.Kind == RefGlobal {
			n++
		}
	case OpStore:
		n = 1 + refMem(in.A) + refMem(in.B)
	case OpCall:
		for i, a := range in.Args {
			// Scalar argument reads; array bases are link-time constants.
			isArr := in.Callee != nil && i < len(in.Callee.Params) && in.Callee.Params[i].IsArray
			if !isArr {
				n += refMem(a)
			}
		}
		if in.Dst.Kind == RefGlobal {
			n++
		}
	case OpSend, OpRecv:
		n = refMem(in.A)
	case OpJmp:
		n = 0
	default:
		n = refMem(in.A) + refMem(in.B)
		if in.Dst.Kind == RefGlobal {
			n++
		}
	}
	return n
}

// BlockMemOperands sums MemOperands over the block.
func BlockMemOperands(b *Block) int {
	n := 0
	for i := range b.Instrs {
		n += MemOperands(&b.Instrs[i])
	}
	return n
}
