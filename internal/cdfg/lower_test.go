package cdfg

import (
	"strings"
	"testing"

	"ese/internal/cfront"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	f, err := cfront.Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u, err := cfront.Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := Lower(u)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p
}

// checkWellFormed asserts structural CFG invariants that every lowered
// function must satisfy.
func checkWellFormed(t *testing.T, p *Program) {
	t.Helper()
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			t.Fatalf("%s: no blocks", f.Name)
		}
		inFunc := make(map[*Block]bool)
		for _, b := range f.Blocks {
			inFunc[b] = true
		}
		for i, b := range f.Blocks {
			if b.ID != i {
				t.Errorf("%s: block %d has ID %d", f.Name, i, b.ID)
			}
			term := b.Terminator()
			if term == nil || !term.Op.IsTerminator() {
				t.Fatalf("%s bb%d: missing terminator\n%s", f.Name, b.ID, f.Dump())
			}
			for j := range b.Instrs[:len(b.Instrs)-1] {
				if b.Instrs[j].Op.IsTerminator() {
					t.Errorf("%s bb%d: terminator at %d is not last", f.Name, b.ID, j)
				}
			}
			for _, s := range b.Succs() {
				if !inFunc[s] {
					t.Errorf("%s bb%d: successor outside function", f.Name, b.ID)
				}
			}
		}
		// All blocks reachable from entry (lowering prunes the rest).
		seen := make(map[*Block]bool)
		var visit func(b *Block)
		visit = func(b *Block) {
			if seen[b] {
				return
			}
			seen[b] = true
			for _, s := range b.Succs() {
				visit(s)
			}
		}
		visit(f.Entry())
		if len(seen) != len(f.Blocks) {
			t.Errorf("%s: %d blocks but only %d reachable\n%s",
				f.Name, len(f.Blocks), len(seen), f.Dump())
		}
	}
}

func TestLowerWellFormed(t *testing.T) {
	p := compile(t, `
int g = 4;
int tab[8];
int f(int x, int y) {
  if (x > y && x > 0) return x;
  return y;
}
void main() {
  int i;
  for (i = 0; i < 8; i++) {
    tab[i] = f(i, g) ? i : -i;
    if (i == 5) break;
    if (i % 2) continue;
    while (tab[i] > 3) tab[i] -= 1;
  }
  do { g--; } while (g > 0 || tab[0]);
  send(1, tab, 8);
  out(g);
}`)
	checkWellFormed(t, p)
}

func TestLowerConstFolding(t *testing.T) {
	p := compile(t, `void main() { out(2 + 3 * 4); }`)
	f := p.Func("main")
	// The folded expression must appear as a single constant operand.
	found := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpOut && in.A.Kind == RefConst && in.A.Val == 14 {
				found = true
			}
			if in.Op == OpMul || in.Op == OpAdd {
				t.Errorf("constant expression not folded: %s", formatInstr(in))
			}
		}
	}
	if !found {
		t.Fatalf("folded out(#14) not found:\n%s", f.Dump())
	}
}

func TestLowerConstBranchElided(t *testing.T) {
	p := compile(t, `void main() { if (1) out(1); else out(2); }`)
	f := p.Func("main")
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpBr {
				t.Fatalf("constant condition still lowered to br:\n%s", f.Dump())
			}
			if b.Instrs[i].Op == OpOut && b.Instrs[i].A.Val == 2 {
				t.Fatalf("dead else branch survived:\n%s", f.Dump())
			}
		}
	}
}

func TestLowerBranchShape(t *testing.T) {
	p := compile(t, `
void main() {
  int x = 1;
  if (x) { out(1); } else { out(2); }
}`)
	f := p.Func("main")
	checkWellFormed(t, p)
	brs := 0
	for _, b := range f.Blocks {
		if b.Terminator().Op == OpBr {
			brs++
			if b.Terminator().Then == b.Terminator().Else {
				t.Error("br with identical targets")
			}
		}
	}
	if brs != 1 {
		t.Fatalf("branch count = %d, want 1\n%s", brs, f.Dump())
	}
}

func TestLowerShortCircuitCreatesBlocks(t *testing.T) {
	pShort := compile(t, `void main(){ int a=1; int b=2; if (a && b) out(1); }`)
	pPlain := compile(t, `void main(){ int a=1; if (a) out(1); }`)
	if len(pShort.Func("main").Blocks) <= len(pPlain.Func("main").Blocks) {
		t.Fatalf("&& did not add control flow: %d vs %d blocks",
			len(pShort.Func("main").Blocks), len(pPlain.Func("main").Blocks))
	}
}

func TestLowerSlotAssignment(t *testing.T) {
	p := compile(t, `
int helper(int a[], int n) { return a[0] + n; }
void main() { int buf[16]; out(helper(buf, 16)); }`)
	h := p.Func("helper")
	if len(h.Params) != 2 || !h.Params[0].IsArray || h.Params[1].IsArray {
		t.Fatalf("helper params: %+v", h.Params)
	}
	m := p.Func("main")
	if len(m.Slots) != 1 || !m.Slots[0].IsArray || m.Slots[0].Size != 16 {
		t.Fatalf("main slots: %+v", m.Slots[0])
	}
}

func TestLowerGlobals(t *testing.T) {
	p := compile(t, `
int a;
int b = 7;
int c[3] = {1, 2, 3};
void main() { out(a + b + c[0]); }`)
	if len(p.Globals) != 3 {
		t.Fatalf("globals = %d", len(p.Globals))
	}
	if p.Globals[1].Init[0] != 7 || p.Globals[2].Size != 3 {
		t.Fatalf("global metadata wrong: %+v %+v", p.Globals[1], p.Globals[2])
	}
}

func TestDumpIsStable(t *testing.T) {
	p := compile(t, `
int g[2];
int f(int x) { return x * 2; }
void main() { g[0] = f(3); out(g[0]); }`)
	d := p.Dump()
	for _, want := range []string{"func int f", "func void main", "mul", "call f", "store", "out"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestNumInstrsAndBlocks(t *testing.T) {
	p := compile(t, `void main() { int i; for (i = 0; i < 3; i++) out(i); }`)
	if p.NumBlocks() < 4 || p.NumInstrs() < 6 {
		t.Fatalf("blocks=%d instrs=%d, suspiciously small", p.NumBlocks(), p.NumInstrs())
	}
}

func TestOpcodeAndClassStrings(t *testing.T) {
	for op := OpNop; op <= OpOut; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", int(op))
		}
	}
	for c := ClassNone; c <= ClassIO; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", int(c))
		}
	}
	if Opcode(200).String() == "" || Class(200).String() == "" {
		t.Error("out-of-range values must still render")
	}
}

func TestRefString(t *testing.T) {
	cases := map[string]Ref{
		"#5": Const(5), "t3": Temp(3), "s1": SlotRef(1), "g0": GlobalRef(0),
		"_": {},
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("Ref %+v = %q, want %q", r, got, want)
		}
	}
}

func TestDumpShowsAnnotatedDelay(t *testing.T) {
	p := compile(t, `void main() { out(1); }`)
	b := p.Func("main").Entry()
	b.Delay = 12
	d := p.Func("main").Dump()
	if !strings.Contains(d, "delay=12") {
		t.Fatalf("dump missing delay:\n%s", d)
	}
}
