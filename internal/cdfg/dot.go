package cdfg

import (
	"fmt"
	"strings"
)

// DotCFG renders a function's control-flow graph in Graphviz dot syntax:
// one record node per basic block with its instruction listing (and the
// annotated delay when present), edges for branch and jump targets.
func (f *Function) DotCFG() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", "cfg_"+f.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for _, b := range f.Blocks {
		var lines []string
		title := fmt.Sprintf("bb%d", b.ID)
		if b.Delay > 0 {
			title += fmt.Sprintf("  (delay %.0f)", b.Delay)
		}
		lines = append(lines, title)
		for i := range b.Instrs {
			lines = append(lines, formatInstr(&b.Instrs[i]))
		}
		label := strings.Join(lines, "\\l") + "\\l"
		label = strings.ReplaceAll(label, "\"", "\\\"")
		fmt.Fprintf(&sb, "  bb%d [label=\"%s\"];\n", b.ID, label)
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpBr:
			fmt.Fprintf(&sb, "  bb%d -> bb%d [label=\"T\"];\n", b.ID, t.Then.ID)
			fmt.Fprintf(&sb, "  bb%d -> bb%d [label=\"F\"];\n", b.ID, t.Else.ID)
		case OpJmp:
			fmt.Fprintf(&sb, "  bb%d -> bb%d;\n", b.ID, t.Target.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotDFG renders one basic block's data-flow graph in dot syntax: one node
// per operation, one edge per dependency — the graph Algorithm 1 schedules.
func DotDFG(b *Block) string {
	d := BuildDFG(b)
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", fmt.Sprintf("dfg_bb%d", b.ID))
	sb.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontname=\"monospace\", fontsize=9];\n")
	for i := range b.Instrs {
		label := strings.ReplaceAll(formatInstr(&b.Instrs[i]), "\"", "\\\"")
		fmt.Fprintf(&sb, "  n%d [label=\"%d: %s\"];\n", i, i, label)
	}
	for i, deps := range d.Deps {
		for _, j := range deps {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", j, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
