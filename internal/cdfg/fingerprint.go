package cdfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is a canonical content hash of an IR artifact, used as a
// content-addressed cache key by the estimation pipeline. Fingerprints are
// stable across process runs and across recompilations: two blocks lowered
// from identical source text hash identically even though their Block
// pointers differ, which is what lets a retarget sweep reuse schedule
// results computed for an earlier compilation of the same program.
type Fingerprint [sha256.Size]byte

// String returns a short hex form for logs and debugging.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Fingerprint returns the structural hash of the block: every
// instruction's opcode, operands, control-flow targets (by block ID),
// callee signature (name plus parameter array-ness, which the operand
// counting of Algorithm 2 depends on), and channel id. The annotation
// output field Delay is deliberately excluded. Blocks with equal
// fingerprints produce identical SchedResults on any given PUM.
func (b *Block) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wRef := func(r Ref) {
		wInt(int64(r.Kind))
		wInt(int64(r.Val))
		wInt(int64(r.Idx))
	}
	wBlockID := func(t *Block) {
		if t == nil {
			wInt(-1)
			return
		}
		wInt(int64(t.ID))
	}
	wInt(int64(len(b.Instrs)))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		wInt(int64(in.Op))
		wRef(in.Dst)
		wRef(in.A)
		wRef(in.B)
		wRef(in.Arr)
		wBlockID(in.Then)
		wBlockID(in.Else)
		wBlockID(in.Target)
		if in.Callee != nil {
			wInt(int64(len(in.Callee.Name)))
			h.Write([]byte(in.Callee.Name))
			wInt(int64(len(in.Callee.Params)))
			for _, p := range in.Callee.Params {
				if p.IsArray {
					wInt(1)
				} else {
					wInt(0)
				}
			}
		} else {
			wInt(-1)
		}
		wInt(int64(in.Chan))
		wInt(int64(len(in.Args)))
		for _, a := range in.Args {
			wRef(a)
		}
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
