package cdfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is a canonical content hash of an IR artifact, used as a
// content-addressed cache key by the estimation pipeline. Fingerprints are
// stable across process runs and across recompilations: two blocks lowered
// from identical source text hash identically even though their Block
// pointers differ, which is what lets a retarget sweep reuse schedule
// results computed for an earlier compilation of the same program.
type Fingerprint [sha256.Size]byte

// String returns a short hex form for logs and debugging.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// CodeFingerprint returns the structural hash of the program's code: the
// global declarations (name and array-ness only — sizes and initializers
// are workload data, not code), and every function in full (signature,
// storage layout, and each block's Fingerprint). Two programs with equal
// CodeFingerprints execute the same instruction sequences against global
// state whose shape is resolved at run time, which is what lets an
// ahead-of-time generated engine built for one workload configuration
// serve every other configuration of the same source template (the
// bitstream contents and NGRANULES-style knobs differ only in Global
// Size/Init, which the generated code reads from the live Program).
func (p *Program) CodeFingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wBool := func(b bool) {
		if b {
			wInt(1)
		} else {
			wInt(0)
		}
	}
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}
	wInt(int64(len(p.Globals)))
	for _, g := range p.Globals {
		wStr(g.Name)
		wBool(g.IsArray)
	}
	wInt(int64(len(p.Funcs)))
	for _, fn := range p.Funcs {
		wStr(fn.Name)
		wBool(fn.ReturnsInt)
		wInt(int64(fn.NTemps))
		wInt(int64(len(fn.Params)))
		wInt(int64(len(fn.Slots)))
		for _, s := range fn.Slots {
			wStr(s.Name)
			wBool(s.IsArray)
			wInt(int64(s.Size))
			wBool(s.IsParam)
			wInt(int64(s.ParamIx))
			wInt(int64(len(s.Init)))
			for _, v := range s.Init {
				wInt(int64(v))
			}
		}
		wInt(int64(len(fn.Blocks)))
		for _, b := range fn.Blocks {
			wInt(int64(b.ID))
			bf := b.Fingerprint()
			h.Write(bf[:])
		}
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Hex returns the full hex form, the stable registry key of generated
// engines.
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// Fingerprint returns the structural hash of the block: every
// instruction's opcode, operands, control-flow targets (by block ID),
// callee signature (name plus parameter array-ness, which the operand
// counting of Algorithm 2 depends on), and channel id. The annotation
// output field Delay is deliberately excluded. Blocks with equal
// fingerprints produce identical SchedResults on any given PUM.
func (b *Block) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wRef := func(r Ref) {
		wInt(int64(r.Kind))
		wInt(int64(r.Val))
		wInt(int64(r.Idx))
	}
	wBlockID := func(t *Block) {
		if t == nil {
			wInt(-1)
			return
		}
		wInt(int64(t.ID))
	}
	wInt(int64(len(b.Instrs)))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		wInt(int64(in.Op))
		wRef(in.Dst)
		wRef(in.A)
		wRef(in.B)
		wRef(in.Arr)
		wBlockID(in.Then)
		wBlockID(in.Else)
		wBlockID(in.Target)
		if in.Callee != nil {
			wInt(int64(len(in.Callee.Name)))
			h.Write([]byte(in.Callee.Name))
			wInt(int64(len(in.Callee.Params)))
			for _, p := range in.Callee.Params {
				if p.IsArray {
					wInt(1)
				} else {
					wInt(0)
				}
			}
		} else {
			wInt(-1)
		}
		wInt(int64(in.Chan))
		wInt(int64(len(in.Args)))
		for _, a := range in.Args {
			wRef(a)
		}
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
