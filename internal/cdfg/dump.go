package cdfg

import (
	"fmt"
	"strings"
)

// Dump renders the program IR as readable text, for debugging, tests and the
// CLI tools' -dump flag.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		if g.IsArray {
			fmt.Fprintf(&sb, "global %s[%d]", g.Name, g.Size)
		} else {
			fmt.Fprintf(&sb, "global %s", g.Name)
		}
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " = %v", g.Init)
		}
		sb.WriteString("\n")
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Dump())
	}
	return sb.String()
}

// Dump renders one function.
func (f *Function) Dump() string {
	var sb strings.Builder
	ret := "void"
	if f.ReturnsInt {
		ret = "int"
	}
	var params []string
	for _, p := range f.Params {
		if p.IsArray {
			params = append(params, p.Name+"[]")
		} else {
			params = append(params, p.Name)
		}
	}
	fmt.Fprintf(&sb, "func %s %s(%s)  slots=%d temps=%d\n",
		ret, f.Name, strings.Join(params, ", "), len(f.Slots), f.NTemps)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "  bb%d:", b.ID)
		if b.Delay > 0 {
			fmt.Fprintf(&sb, "  ; delay=%.2f", b.Delay)
		}
		sb.WriteString("\n")
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", formatInstr(&b.Instrs[i]))
		}
	}
	return sb.String()
}

func formatInstr(in *Instr) string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("%s = load %s[%s]", in.Dst, in.Arr, in.A)
	case OpStore:
		return fmt.Sprintf("store %s[%s] = %s", in.Arr, in.A, in.B)
	case OpBr:
		return fmt.Sprintf("br %s, bb%d, bb%d", in.A, in.Then.ID, in.Else.ID)
	case OpJmp:
		return fmt.Sprintf("jmp bb%d", in.Target.ID)
	case OpRet:
		if in.A.Kind == RefNone {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.A)
	case OpCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, a.String())
		}
		callee := "?"
		if in.Callee != nil {
			callee = in.Callee.Name
		}
		if in.Dst.Kind == RefNone {
			return fmt.Sprintf("call %s(%s)", callee, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s = call %s(%s)", in.Dst, callee, strings.Join(args, ", "))
	case OpSend:
		return fmt.Sprintf("send ch%d, %s, %s", in.Chan, in.Arr, in.A)
	case OpRecv:
		return fmt.Sprintf("recv ch%d, %s, %s", in.Chan, in.Arr, in.A)
	case OpOut:
		return fmt.Sprintf("out %s", in.A)
	case OpMov:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case OpNeg, OpNot:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	default:
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}
