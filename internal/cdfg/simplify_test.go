package cdfg

import (
	"fmt"
	"testing"
	"time"
)

const simplifySrc = `
int a[32];
int g;
int f(int x) {
  if (x > 0 && x < 10) return x * 2;
  return -x;
}
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 32; i++) {
    a[i] = f(i) + (i % 3 == 0 ? 7 : 1);
    if (a[i] > 20) {
      s += a[i];
    } else {
      s -= a[i];
    }
  }
  g = s;
  out(s);
  out(g);
}
`

func TestSimplifyReducesBlocks(t *testing.T) {
	p := compile(t, simplifySrc)
	before := p.NumBlocks()
	SimplifyProgram(p)
	after := p.NumBlocks()
	if after >= before {
		t.Fatalf("simplify did not reduce blocks: %d -> %d", before, after)
	}
	checkWellFormed(t, p)
}

func TestSimplifyPreservesInstructionKinds(t *testing.T) {
	// Non-control instructions must survive (count invariant): simplify
	// only removes jumps and empty blocks.
	p := compile(t, simplifySrc)
	countNonJmp := func() int {
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op != OpJmp {
						n++
					}
				}
			}
		}
		return n
	}
	before := countNonJmp()
	SimplifyProgram(p)
	if got := countNonJmp(); got != before {
		t.Fatalf("non-jump instruction count changed: %d -> %d", before, got)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	p := compile(t, simplifySrc)
	SimplifyProgram(p)
	once := p.NumBlocks()
	SimplifyProgram(p)
	if p.NumBlocks() != once {
		t.Fatalf("simplify not idempotent: %d -> %d", once, p.NumBlocks())
	}
}

func TestSimplifyInfiniteLoopSafe(t *testing.T) {
	// for(;;) produces a self-jump structure; threading must not spin.
	p := compile(t, `
void main() {
  int i = 0;
  for (;;) {
    i++;
    if (i > 3) break;
  }
  out(i);
}`)
	SimplifyProgram(p)
	checkWellFormed(t, p)
}

func TestSimplifySingleBlockUntouched(t *testing.T) {
	p := compile(t, `void main() { out(1 + 2); }`)
	before := p.NumBlocks()
	SimplifyProgram(p)
	if p.NumBlocks() != before {
		t.Fatalf("straight-line program changed: %d -> %d", before, p.NumBlocks())
	}
}

func TestSimplifyGrowsAverageBlockSize(t *testing.T) {
	p := compile(t, simplifySrc)
	avg := func() float64 {
		instrs, blocks := 0, 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				instrs += len(b.Instrs)
				blocks++
			}
		}
		return float64(instrs) / float64(blocks)
	}
	before := avg()
	SimplifyProgram(p)
	if after := avg(); after <= before {
		t.Fatalf("average block size did not grow: %.2f -> %.2f", before, after)
	}
}

// ---------------------------------------------------------------------------
// Jump-threading cycle regressions. jumpOnlyTarget follows chains of
// jump-only blocks and must terminate when that chain closes into a cycle
// (a lowered `for(;;);`, or IR built by hand). These tests hand-build the
// cyclic shapes the front end can and cannot produce and lock in both
// termination and semantic preservation; mustTerminate turns a regression
// into a crisp failure instead of a suite-wide hang.

func mustTerminate(t *testing.T, what string, run func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		run()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not terminate (jump-threading cycle guard regressed)", what)
	}
}

// cycleProg builds: entry computes t0 and branches to a jump-only cycle of
// n blocks (t0 true) or to a ret block (t0 false).
func cycleProg(n int) *Program {
	f := &Function{Name: "main", NTemps: 1}
	entry := &Block{ID: 0, Fn: f}
	exit := &Block{ID: 1, Fn: f}
	exit.Instrs = []Instr{{Op: OpRet}}
	cyc := make([]*Block, n)
	for i := range cyc {
		cyc[i] = &Block{ID: 2 + i, Fn: f}
	}
	for i, b := range cyc {
		b.Instrs = []Instr{{Op: OpJmp, Target: cyc[(i+1)%n]}}
	}
	entry.Instrs = []Instr{
		{Op: OpMov, Dst: Temp(0), A: Const(0)},
		{Op: OpBr, A: Temp(0), Then: cyc[0], Else: exit},
	}
	f.Blocks = append([]*Block{entry, exit}, cyc...)
	return &Program{Funcs: []*Function{f}}
}

func TestSimplifyJumpOnlyCycles(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		p := cycleProg(n)
		mustTerminate(t, fmt.Sprintf("Simplify on a %d-block jump-only cycle", n), func() {
			SimplifyProgram(p)
		})
		f := p.Funcs[0]
		// The branch and the ret must survive: the cycle is a reachable
		// infinite loop, not dead code the pass may delete or reroute.
		var brs, rets, jmps int
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil {
				t.Fatalf("n=%d: block bb%d lost its terminator\n%s", n, b.ID, f.Dump())
			}
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case OpBr:
					brs++
				case OpRet:
					rets++
				case OpJmp:
					jmps++
				}
			}
		}
		if brs != 1 || rets != 1 {
			t.Fatalf("n=%d: semantics changed: %d branches, %d rets\n%s", n, brs, rets, f.Dump())
		}
		if jmps == 0 {
			t.Fatalf("n=%d: the reachable jump-only cycle was deleted\n%s", n, f.Dump())
		}
		// Threading across the cycle must not have created edges that leave
		// the function or dangle.
		inFunc := make(map[*Block]bool)
		for _, b := range f.Blocks {
			inFunc[b] = true
		}
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				if s == nil || !inFunc[s] {
					t.Fatalf("n=%d: bb%d has a dangling successor\n%s", n, b.ID, f.Dump())
				}
			}
		}
	}
}

func TestSimplifyUnreachableJumpCycleRemoved(t *testing.T) {
	// A jump-only cycle not reachable from entry must be dropped entirely,
	// cycles included, without spinning.
	f := &Function{Name: "main"}
	entry := &Block{ID: 0, Fn: f, Instrs: []Instr{{Op: OpRet}}}
	a := &Block{ID: 1, Fn: f}
	b := &Block{ID: 2, Fn: f}
	a.Instrs = []Instr{{Op: OpJmp, Target: b}}
	b.Instrs = []Instr{{Op: OpJmp, Target: a}}
	f.Blocks = []*Block{entry, a, b}
	p := &Program{Funcs: []*Function{f}}
	mustTerminate(t, "Simplify on an unreachable jump cycle", func() { SimplifyProgram(p) })
	if len(f.Blocks) != 1 || f.Blocks[0] != entry {
		t.Fatalf("unreachable cycle survived: %d blocks\n%s", len(f.Blocks), f.Dump())
	}
}

func TestSimplifyThreadsThroughTrampolines(t *testing.T) {
	// The classic diamond through two jump-only trampolines: threading must
	// retarget both branch arms to the join block and the cleanup must
	// leave a compact, semantically identical CFG.
	f := &Function{Name: "main", NTemps: 1}
	entry := &Block{ID: 0, Fn: f}
	j1 := &Block{ID: 1, Fn: f}
	j2 := &Block{ID: 2, Fn: f}
	join := &Block{ID: 3, Fn: f}
	join.Instrs = []Instr{{Op: OpOut, A: Temp(0)}, {Op: OpRet}}
	j1.Instrs = []Instr{{Op: OpJmp, Target: join}}
	j2.Instrs = []Instr{{Op: OpJmp, Target: join}}
	entry.Instrs = []Instr{
		{Op: OpMov, Dst: Temp(0), A: Const(7)},
		{Op: OpBr, A: Temp(0), Then: j1, Else: j2},
	}
	f.Blocks = []*Block{entry, j1, j2, join}
	p := &Program{Funcs: []*Function{f}}
	mustTerminate(t, "Simplify on a trampoline diamond", func() { SimplifyProgram(p) })
	if len(f.Blocks) != 2 {
		t.Fatalf("trampolines not threaded away: %d blocks\n%s", len(f.Blocks), f.Dump())
	}
	term := f.Entry().Terminator()
	if term.Op != OpBr || term.Then != term.Else {
		t.Fatalf("branch arms not rerouted to the join block\n%s", f.Dump())
	}
	outs := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == OpOut {
				outs++
			}
		}
	}
	if outs != 1 {
		t.Fatalf("observable instruction count changed: %d outs\n%s", outs, f.Dump())
	}
}
