package cdfg

import (
	"testing"
)

const simplifySrc = `
int a[32];
int g;
int f(int x) {
  if (x > 0 && x < 10) return x * 2;
  return -x;
}
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 32; i++) {
    a[i] = f(i) + (i % 3 == 0 ? 7 : 1);
    if (a[i] > 20) {
      s += a[i];
    } else {
      s -= a[i];
    }
  }
  g = s;
  out(s);
  out(g);
}
`

func TestSimplifyReducesBlocks(t *testing.T) {
	p := compile(t, simplifySrc)
	before := p.NumBlocks()
	SimplifyProgram(p)
	after := p.NumBlocks()
	if after >= before {
		t.Fatalf("simplify did not reduce blocks: %d -> %d", before, after)
	}
	checkWellFormed(t, p)
}

func TestSimplifyPreservesInstructionKinds(t *testing.T) {
	// Non-control instructions must survive (count invariant): simplify
	// only removes jumps and empty blocks.
	p := compile(t, simplifySrc)
	countNonJmp := func() int {
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op != OpJmp {
						n++
					}
				}
			}
		}
		return n
	}
	before := countNonJmp()
	SimplifyProgram(p)
	if got := countNonJmp(); got != before {
		t.Fatalf("non-jump instruction count changed: %d -> %d", before, got)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	p := compile(t, simplifySrc)
	SimplifyProgram(p)
	once := p.NumBlocks()
	SimplifyProgram(p)
	if p.NumBlocks() != once {
		t.Fatalf("simplify not idempotent: %d -> %d", once, p.NumBlocks())
	}
}

func TestSimplifyInfiniteLoopSafe(t *testing.T) {
	// for(;;) produces a self-jump structure; threading must not spin.
	p := compile(t, `
void main() {
  int i = 0;
  for (;;) {
    i++;
    if (i > 3) break;
  }
  out(i);
}`)
	SimplifyProgram(p)
	checkWellFormed(t, p)
}

func TestSimplifySingleBlockUntouched(t *testing.T) {
	p := compile(t, `void main() { out(1 + 2); }`)
	before := p.NumBlocks()
	SimplifyProgram(p)
	if p.NumBlocks() != before {
		t.Fatalf("straight-line program changed: %d -> %d", before, p.NumBlocks())
	}
}

func TestSimplifyGrowsAverageBlockSize(t *testing.T) {
	p := compile(t, simplifySrc)
	avg := func() float64 {
		instrs, blocks := 0, 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				instrs += len(b.Instrs)
				blocks++
			}
		}
		return float64(instrs) / float64(blocks)
	}
	before := avg()
	SimplifyProgram(p)
	if after := avg(); after <= before {
		t.Fatalf("average block size did not grow: %.2f -> %.2f", before, after)
	}
}
