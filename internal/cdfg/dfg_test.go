package cdfg

import (
	"fmt"
	"strings"
	"testing"
)

// findBlockWith returns the first block whose instruction list contains an
// instruction with the given opcode.
func findBlockWith(p *Program, fn string, op Opcode) *Block {
	f := p.Func(fn)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				return b
			}
		}
	}
	return nil
}

func hasDep(d *DFG, i, j int) bool {
	for _, e := range d.Deps[i] {
		if e == j {
			return true
		}
	}
	return false
}

// reaches reports whether j is a (transitive) dependency of i.
func reaches(d *DFG, i, j int) bool {
	seen := make(map[int]bool)
	var walk func(n int) bool
	walk = func(n int) bool {
		if n == j {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, e := range d.Deps[n] {
			if walk(e) {
				return true
			}
		}
		return false
	}
	return walk(i)
}

func TestDFGRawDependency(t *testing.T) {
	p := compile(t, `
void main() {
  int a = 2;
  int b = a * 3;
  int c = b + a;
  out(c);
}`)
	b := p.Func("main").Entry()
	d := BuildDFG(b)
	// Find the mul and the add; the add must depend on the mul through b.
	mul, add := -1, -1
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case OpMul:
			mul = i
		case OpAdd:
			add = i
		}
	}
	if mul < 0 || add < 0 {
		t.Fatalf("mul/add not found:\n%s", p.Func("main").Dump())
	}
	if !reaches(d, add, mul) {
		t.Fatalf("add does not (transitively) depend on mul: deps=%v", d.Deps)
	}
}

func TestDFGIndependentOpsHaveNoEdge(t *testing.T) {
	p := compile(t, `
void main() {
  int a = 1;
  int b = 2;
  int c = a + a;
  int e = b * b;
  out(c + e);
}`)
	b := p.Func("main").Entry()
	d := BuildDFG(b)
	add, mul := -1, -1
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case OpAdd:
			if add == -1 {
				add = i
			}
		case OpMul:
			mul = i
		}
	}
	if hasDep(d, mul, add) || hasDep(d, add, mul) {
		t.Fatalf("independent ops have an edge: add deps=%v mul deps=%v",
			d.Deps[add], d.Deps[mul])
	}
}

func TestDFGMemoryOrdering(t *testing.T) {
	p := compile(t, `
int a[4];
void main() {
  a[0] = 1;
  int x = a[0];
  a[1] = x;
  out(x);
}`)
	b := p.Func("main").Entry()
	d := BuildDFG(b)
	var store1, load, store2 = -1, -1, -1
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case OpStore:
			if store1 == -1 {
				store1 = i
			} else {
				store2 = i
			}
		case OpLoad:
			load = i
		}
	}
	if !hasDep(d, load, store1) {
		t.Errorf("load does not depend on preceding store (RAW via array)")
	}
	if !hasDep(d, store2, load) {
		t.Errorf("store does not depend on preceding load (WAR via array)")
	}
	if !hasDep(d, store2, store1) {
		t.Errorf("store does not depend on preceding store (WAW via array)")
	}
}

func TestDFGCallIsBarrier(t *testing.T) {
	p := compile(t, `
int a[4];
void touch(int b[]) { b[0] = 9; }
void main() {
  a[0] = 1;
  touch(a);
  out(a[0]);
}`)
	// The lowering may split blocks; find the block containing the call.
	b := findBlockWith(p, "main", OpCall)
	if b == nil {
		t.Fatal("no call block")
	}
	d := BuildDFG(b)
	call, store, load := -1, -1, -1
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case OpCall:
			call = i
		case OpStore:
			store = i
		case OpLoad:
			load = i
		}
	}
	if store >= 0 && call >= 0 && !hasDep(d, call, store) {
		t.Error("call does not depend on earlier store")
	}
	if load >= 0 && call >= 0 && !hasDep(d, load, call) {
		t.Error("load after call does not depend on call")
	}
}

func TestDFGAcyclic(t *testing.T) {
	p := compile(t, `
int a[16];
int f(int x) { return x + 1; }
void main() {
  int i;
  int s = 0;
  for (i = 0; i < 16; i++) {
    a[i] = f(i) * (i + 3) - a[(i + 1) % 16];
    s += a[i] >> 2;
  }
  out(s);
}`)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			d := BuildDFG(b)
			// Deps must always point backwards: edge targets < node index.
			for i, deps := range d.Deps {
				for _, j := range deps {
					if j >= i {
						t.Fatalf("%s bb%d: forward/self dep %d -> %d", f.Name, b.ID, i, j)
					}
				}
			}
		}
	}
}

func TestMemOperandCounts(t *testing.T) {
	p := compile(t, `
int g;
int a[4];
void main() {
  int x = 1;      // mov to slot: 0 mem operands
  g = x;          // mov to global: 1
  x = g;          // read global: 1
  a[0] = x;       // store: 1
  x = a[1];       // load: 1
  g = a[g];       // load with global index + global dst: 3
  out(x);
}`)
	b := p.Func("main").Entry()
	total := BlockMemOperands(b)
	if total != 7 {
		t.Fatalf("BlockMemOperands = %d, want 7\n%s", total, p.Func("main").Dump())
	}
	if NumOps(b) != len(b.Instrs) {
		t.Fatalf("NumOps mismatch")
	}
}

func TestMemOperandCountsScalarOpsOnGlobals(t *testing.T) {
	p := compile(t, `
int g1;
int g2;
void main() {
  g1 = g1 + g2; // add reads g1,g2 and writes g1: 3 accesses
}`)
	b := p.Func("main").Entry()
	// add: A=g1 B=g2 Dst=... depends on lowering: g1 = g1+g2 becomes
	// t = add g1,g2 (2) then mov g1 = t (1) -> 3 total.
	if got := BlockMemOperands(b); got != 3 {
		t.Fatalf("BlockMemOperands = %d, want 3\n%s", got, p.Func("main").Dump())
	}
}

func TestDotCFGShape(t *testing.T) {
	p := compile(t, `
void main() {
  int i;
  for (i = 0; i < 4; i++) out(i);
}`)
	f := p.Func("main")
	dot := f.DotCFG()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("not a dot graph:\n%s", dot)
	}
	// Every block appears as a node; the branch has T and F edges.
	for _, b := range f.Blocks {
		if !strings.Contains(dot, fmt.Sprintf("bb%d [label=", b.ID)) {
			t.Errorf("missing node bb%d", b.ID)
		}
	}
	if !strings.Contains(dot, `[label="T"]`) || !strings.Contains(dot, `[label="F"]`) {
		t.Error("missing branch edges")
	}
	// Edge targets are declared nodes.
	if strings.Count(dot, "->") < len(f.Blocks)-1 {
		t.Error("too few edges for a connected CFG")
	}
}

func TestDotDFGShape(t *testing.T) {
	p := compile(t, `
int a[4];
void main() {
  int x = a[0] * 3;
  a[1] = x + a[2];
  out(x);
}`)
	b := p.Func("main").Entry()
	dot := DotDFG(b)
	if strings.Count(dot, "n0 [label=") != 1 {
		t.Fatalf("missing op nodes:\n%s", dot)
	}
	d := BuildDFG(b)
	edges := 0
	for _, deps := range d.Deps {
		edges += len(deps)
	}
	if strings.Count(dot, "->") != edges {
		t.Fatalf("dot edges %d != DFG edges %d", strings.Count(dot, "->"), edges)
	}
}
