package cdfg

// Simplify performs control-flow cleanup on a function, the way a compiler
// back end would before emitting code:
//
//   - jump threading: branches and jumps that target a block containing
//     only an unconditional jump are redirected to its destination;
//   - block merging: a block ending in an unconditional jump to a block
//     with no other predecessors absorbs that block;
//   - unreachable-block removal and renumbering.
//
// The pass preserves semantics exactly (it never moves instructions across
// a conditional edge) but changes the basic-block size distribution, which
// is the knob the estimation technique is most sensitive to: fewer, larger
// blocks mean fewer per-block scheduling boundaries. SimplifyProgram runs
// it over every function.
func Simplify(f *Function) {
	changed := true
	for changed {
		changed = false
		if threadJumps(f) {
			changed = true
		}
		if mergeBlocks(f) {
			changed = true
		}
	}
	removeUnreachable(f)
}

// SimplifyProgram simplifies every function of the program.
func SimplifyProgram(p *Program) {
	for _, f := range p.Funcs {
		Simplify(f)
	}
}

// jumpOnlyTarget returns the final destination reached by following blocks
// that contain only a single unconditional jump (with cycle protection).
func jumpOnlyTarget(b *Block) *Block {
	seen := map[*Block]bool{}
	for len(b.Instrs) == 1 && b.Instrs[0].Op == OpJmp && !seen[b] {
		seen[b] = true
		b = b.Instrs[0].Target
	}
	return b
}

// threadJumps redirects edges through jump-only blocks.
func threadJumps(f *Function) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpBr:
			if nt := jumpOnlyTarget(t.Then); nt != t.Then {
				t.Then = nt
				changed = true
			}
			if nt := jumpOnlyTarget(t.Else); nt != t.Else {
				t.Else = nt
				changed = true
			}
		case OpJmp:
			if nt := jumpOnlyTarget(t.Target); nt != t.Target {
				t.Target = nt
				changed = true
			}
		}
	}
	return changed
}

// predCounts maps each block to its predecessor count (entry gets a
// virtual extra predecessor so it is never merged away).
func predCounts(f *Function) map[*Block]int {
	preds := make(map[*Block]int, len(f.Blocks))
	preds[f.Entry()]++
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s]++
		}
	}
	return preds
}

// mergeBlocks absorbs single-predecessor jump successors.
func mergeBlocks(f *Function) bool {
	changed := false
	preds := predCounts(f)
	for _, b := range f.Blocks {
		for {
			t := b.Terminator()
			if t == nil || t.Op != OpJmp {
				break
			}
			s := t.Target
			if s == b || preds[s] != 1 {
				break
			}
			// Absorb s: drop b's jump, append s's instructions.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			s.Instrs = nil // s becomes unreachable and empty
			changed = true
			// b's new terminator may enable further merging; preds of s's
			// successors are unchanged (still one edge, now from b).
		}
	}
	return changed
}

// removeUnreachable drops unreachable blocks and renumbers the rest.
func removeUnreachable(f *Function) {
	if len(f.Blocks) == 0 {
		return
	}
	seen := make(map[*Block]bool, len(f.Blocks))
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
	}
	visit(f.Entry())
	keep := f.Blocks[:0]
	for _, b := range f.Blocks {
		if seen[b] {
			b.ID = len(keep)
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
}
