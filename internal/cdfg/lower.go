package cdfg

import (
	"fmt"

	"ese/internal/cfront"
)

// Lower converts a checked translation unit into CDFG IR.
//
// Semantics fixed here (shared by all execution engines):
//   - locals without initializers start at zero (frames are zero-filled by
//     the call ABI, at no cycle cost, in every engine);
//   - an int function falling off its end returns 0;
//   - short-circuit &&/|| and ?: lower to control flow, so each basic block
//     really is branch-free straight-line code, as Algorithm 1 requires.
func Lower(u *cfront.Unit) (*Program, error) {
	p := &Program{funcMap: make(map[string]*Function)}
	globalIdx := make(map[*cfront.Symbol]int)
	for i, gs := range u.Globals {
		size := int32(1)
		if gs.IsArray {
			size = gs.Size
		}
		init := gs.InitVals
		p.Globals = append(p.Globals, &Global{
			Name:    gs.Name,
			IsArray: gs.IsArray,
			Size:    size,
			Init:    init,
		})
		globalIdx[gs] = i
	}
	// Create all function shells first so calls can reference them.
	fns := make(map[string]*Function)
	for _, fd := range u.Funcs {
		fn := &Function{Name: fd.Name, ReturnsInt: fd.ReturnsInt}
		fns[fd.Name] = fn
		p.Funcs = append(p.Funcs, fn)
		p.funcMap[fd.Name] = fn
	}
	for _, fd := range u.Funcs {
		lw := &lowerer{
			prog:      p,
			fn:        fns[fd.Name],
			fns:       fns,
			globalIdx: globalIdx,
			slotIdx:   make(map[*cfront.Symbol]int),
		}
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	return p, nil
}

type loopCtx struct {
	breakTo    *Block
	continueTo *Block
}

type lowerer struct {
	prog      *Program
	fn        *Function
	fns       map[string]*Function
	globalIdx map[*cfront.Symbol]int
	slotIdx   map[*cfront.Symbol]int
	cur       *Block
	loops     []loopCtx
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.fn.Blocks), Fn: lw.fn}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) emit(in Instr) {
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

func (lw *lowerer) newTemp() Ref {
	t := Temp(lw.fn.NTemps)
	lw.fn.NTemps++
	return t
}

// sealed reports whether the current block already has a terminator.
func (lw *lowerer) sealed() bool {
	t := lw.cur.Terminator()
	return t != nil && t.Op.IsTerminator()
}

// jumpTo terminates the current block with a jump to dst (if not already
// terminated) and makes dst current.
func (lw *lowerer) jumpTo(dst *Block) {
	if !lw.sealed() {
		lw.emit(Instr{Op: OpJmp, Target: dst})
	}
	lw.cur = dst
}

func (lw *lowerer) addSlot(sym *cfront.Symbol, isParam bool, paramIx int) int {
	size := int32(1)
	if sym.IsArray {
		size = sym.Size
	}
	s := &Slot{
		Name:    sym.Name,
		IsArray: sym.IsArray,
		Size:    size,
		IsParam: isParam,
		ParamIx: paramIx,
		Init:    sym.InitVals,
	}
	idx := len(lw.fn.Slots)
	lw.fn.Slots = append(lw.fn.Slots, s)
	lw.slotIdx[sym] = idx
	if isParam {
		lw.fn.Params = append(lw.fn.Params, s)
	}
	return idx
}

// varRef returns the operand for a resolved scalar variable or array base.
func (lw *lowerer) varRef(sym *cfront.Symbol) Ref {
	if sym.Kind == cfront.SymGlobal {
		return GlobalRef(lw.globalIdx[sym])
	}
	return SlotRef(lw.slotIdx[sym])
}

func (lw *lowerer) lowerFunc(fd *cfront.FuncDecl) error {
	for i, p := range fd.Params {
		lw.addSlot(p.Sym, true, i)
	}
	lw.cur = lw.newBlock()
	if err := lw.block(fd.Body); err != nil {
		return err
	}
	if !lw.sealed() {
		ret := Instr{Op: OpRet}
		if fd.ReturnsInt {
			ret.A = Const(0)
		}
		lw.emit(ret)
	}
	lw.removeUnreachable()
	return nil
}

// removeUnreachable drops blocks not reachable from the entry and renumbers.
func (lw *lowerer) removeUnreachable() {
	if len(lw.fn.Blocks) == 0 {
		return
	}
	seen := make(map[*Block]bool)
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
	}
	visit(lw.fn.Blocks[0])
	var keep []*Block
	for _, b := range lw.fn.Blocks {
		if seen[b] {
			b.ID = len(keep)
			keep = append(keep, b)
		}
	}
	lw.fn.Blocks = keep
}

func (lw *lowerer) block(b *cfront.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s cfront.Stmt) error {
	switch s := s.(type) {
	case *cfront.BlockStmt:
		return lw.block(s)
	case *cfront.DeclStmt:
		return lw.declStmt(s)
	case *cfront.AssignStmt:
		return lw.assign(s)
	case *cfront.IncDecStmt:
		op := cfront.TokPlusEq
		if s.Dec {
			op = cfront.TokMinusEq
		}
		return lw.assign(&cfront.AssignStmt{
			Pos: s.Pos, LHS: s.LHS, Op: op,
			RHS: &cfront.IntLit{Pos: s.Pos, Val: 1},
		})
	case *cfront.ExprStmt:
		call := s.X.(*cfront.CallExpr)
		_, err := lw.call(call, false)
		return err
	case *cfront.IfStmt:
		return lw.ifStmt(s)
	case *cfront.WhileStmt:
		return lw.whileStmt(s)
	case *cfront.DoWhileStmt:
		return lw.doWhileStmt(s)
	case *cfront.ForStmt:
		return lw.forStmt(s)
	case *cfront.BreakStmt:
		if len(lw.loops) == 0 {
			return fmt.Errorf("%s: break outside loop survived checking", s.Pos)
		}
		lw.emit(Instr{Op: OpJmp, Target: lw.loops[len(lw.loops)-1].breakTo, Pos: s.Pos})
		lw.cur = lw.newBlock() // unreachable continuation
		return nil
	case *cfront.ContinueStmt:
		if len(lw.loops) == 0 {
			return fmt.Errorf("%s: continue outside loop survived checking", s.Pos)
		}
		lw.emit(Instr{Op: OpJmp, Target: lw.loops[len(lw.loops)-1].continueTo, Pos: s.Pos})
		lw.cur = lw.newBlock()
		return nil
	case *cfront.ReturnStmt:
		in := Instr{Op: OpRet, Pos: s.Pos}
		if s.X != nil {
			r, err := lw.expr(s.X)
			if err != nil {
				return err
			}
			in.A = r
		}
		lw.emit(in)
		lw.cur = lw.newBlock()
		return nil
	}
	return fmt.Errorf("internal: unknown statement %T", s)
}

func (lw *lowerer) declStmt(s *cfront.DeclStmt) error {
	sym := s.Decl.Sym
	idx := lw.addSlot(sym, false, 0)
	// Locals are zero-initialized by the ABI; emit explicit IR only for
	// non-zero initializers so that generated code matches what a compiler
	// would emit for `int x = k;` / `int a[] = {...};`.
	if !sym.HasInit {
		if !sym.IsArray && s.Decl.Init != nil {
			// Non-constant scalar initializer: lower as an assignment.
			r, err := lw.expr(s.Decl.Init)
			if err != nil {
				return err
			}
			lw.emit(Instr{Op: OpMov, Dst: SlotRef(idx), A: r, Pos: s.Decl.Pos})
		}
		return nil
	}
	if sym.IsArray {
		for i, v := range sym.InitVals {
			if v == 0 {
				continue
			}
			lw.emit(Instr{
				Op:  OpStore,
				Arr: SlotRef(idx),
				A:   Const(int32(i)),
				B:   Const(v),
				Pos: s.Decl.Pos,
			})
		}
		return nil
	}
	lw.emit(Instr{Op: OpMov, Dst: SlotRef(idx), A: Const(sym.InitVals[0]), Pos: s.Decl.Pos})
	return nil
}

// compoundOp maps a compound-assignment token to the IR opcode.
var compoundOp = map[cfront.TokKind]Opcode{
	cfront.TokPlusEq:    OpAdd,
	cfront.TokMinusEq:   OpSub,
	cfront.TokStarEq:    OpMul,
	cfront.TokSlashEq:   OpDiv,
	cfront.TokPercentEq: OpRem,
	cfront.TokShlEq:     OpShl,
	cfront.TokShrEq:     OpShr,
	cfront.TokAmpEq:     OpAnd,
	cfront.TokPipeEq:    OpOr,
	cfront.TokCaretEq:   OpXor,
}

func (lw *lowerer) assign(s *cfront.AssignStmt) error {
	switch lhs := s.LHS.(type) {
	case *cfront.Ident:
		dst := lw.varRef(lhs.Sym)
		if s.Op == cfront.TokAssign {
			r, err := lw.expr(s.RHS)
			if err != nil {
				return err
			}
			lw.emit(Instr{Op: OpMov, Dst: dst, A: r, Pos: s.Pos})
			return nil
		}
		r, err := lw.expr(s.RHS)
		if err != nil {
			return err
		}
		lw.emit(Instr{Op: compoundOp[s.Op], Dst: dst, A: dst, B: r, Pos: s.Pos})
		return nil
	case *cfront.IndexExpr:
		arr := lw.varRef(lhs.Arr.Sym)
		idx, err := lw.expr(lhs.Index)
		if err != nil {
			return err
		}
		if s.Op == cfront.TokAssign {
			v, err := lw.expr(s.RHS)
			if err != nil {
				return err
			}
			lw.emit(Instr{Op: OpStore, Arr: arr, A: idx, B: v, Pos: s.Pos})
			return nil
		}
		// a[i] op= v evaluates the index once.
		old := lw.newTemp()
		lw.emit(Instr{Op: OpLoad, Dst: old, Arr: arr, A: idx, Pos: s.Pos})
		v, err := lw.expr(s.RHS)
		if err != nil {
			return err
		}
		res := lw.newTemp()
		lw.emit(Instr{Op: compoundOp[s.Op], Dst: res, A: old, B: v, Pos: s.Pos})
		lw.emit(Instr{Op: OpStore, Arr: arr, A: idx, B: res, Pos: s.Pos})
		return nil
	}
	return fmt.Errorf("internal: bad assign LHS %T", s.LHS)
}

func (lw *lowerer) ifStmt(s *cfront.IfStmt) error {
	thenB := lw.newBlock()
	exitB := lw.newBlock()
	elseB := exitB
	if s.Else != nil {
		elseB = lw.newBlock()
	}
	if err := lw.condBranch(s.Cond, thenB, elseB); err != nil {
		return err
	}
	lw.cur = thenB
	if err := lw.stmt(s.Then); err != nil {
		return err
	}
	lw.jumpTo(exitB)
	if s.Else != nil {
		lw.cur = elseB
		if err := lw.stmt(s.Else); err != nil {
			return err
		}
		lw.jumpTo(exitB)
	}
	lw.cur = exitB
	return nil
}

func (lw *lowerer) whileStmt(s *cfront.WhileStmt) error {
	head := lw.newBlock()
	body := lw.newBlock()
	exit := lw.newBlock()
	lw.jumpTo(head)
	if err := lw.condBranch(s.Cond, body, exit); err != nil {
		return err
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: head})
	lw.cur = body
	err := lw.stmt(s.Body)
	lw.loops = lw.loops[:len(lw.loops)-1]
	if err != nil {
		return err
	}
	lw.jumpTo(head)
	lw.cur = exit
	return nil
}

func (lw *lowerer) doWhileStmt(s *cfront.DoWhileStmt) error {
	body := lw.newBlock()
	cond := lw.newBlock()
	exit := lw.newBlock()
	lw.jumpTo(body)
	lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: cond})
	err := lw.stmt(s.Body)
	lw.loops = lw.loops[:len(lw.loops)-1]
	if err != nil {
		return err
	}
	lw.jumpTo(cond)
	if err := lw.condBranch(s.Cond, body, exit); err != nil {
		return err
	}
	lw.cur = exit
	return nil
}

func (lw *lowerer) forStmt(s *cfront.ForStmt) error {
	if s.Init != nil {
		if err := lw.stmt(s.Init); err != nil {
			return err
		}
	}
	head := lw.newBlock()
	body := lw.newBlock()
	post := lw.newBlock()
	exit := lw.newBlock()
	lw.jumpTo(head)
	if s.Cond != nil {
		if err := lw.condBranch(s.Cond, body, exit); err != nil {
			return err
		}
	} else {
		lw.jumpTo(body)
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: post})
	lw.cur = body
	err := lw.stmt(s.Body)
	lw.loops = lw.loops[:len(lw.loops)-1]
	if err != nil {
		return err
	}
	lw.jumpTo(post)
	if s.Post != nil {
		if err := lw.stmt(s.Post); err != nil {
			return err
		}
	}
	lw.jumpTo(head)
	lw.cur = exit
	return nil
}

// condBranch lowers a condition with short-circuit control flow, branching
// to thenB when the condition is non-zero and elseB otherwise. It leaves the
// current block terminated.
func (lw *lowerer) condBranch(e cfront.Expr, thenB, elseB *Block) error {
	if v, ok := cfront.EvalConst(e); ok {
		dst := elseB
		if v != 0 {
			dst = thenB
		}
		lw.emit(Instr{Op: OpJmp, Target: dst, Pos: e.NodePos()})
		lw.cur = lw.newBlock()
		return nil
	}
	switch e := e.(type) {
	case *cfront.BinaryExpr:
		switch e.Op {
		case cfront.TokAndAnd:
			mid := lw.newBlock()
			if err := lw.condBranch(e.L, mid, elseB); err != nil {
				return err
			}
			lw.cur = mid
			return lw.condBranch(e.R, thenB, elseB)
		case cfront.TokOrOr:
			mid := lw.newBlock()
			if err := lw.condBranch(e.L, thenB, mid); err != nil {
				return err
			}
			lw.cur = mid
			return lw.condBranch(e.R, thenB, elseB)
		}
	case *cfront.UnaryExpr:
		if e.Op == cfront.TokBang {
			return lw.condBranch(e.X, elseB, thenB)
		}
	}
	r, err := lw.expr(e)
	if err != nil {
		return err
	}
	lw.emit(Instr{Op: OpBr, A: r, Then: thenB, Else: elseB, Pos: e.NodePos()})
	lw.cur = lw.newBlock()
	return nil
}

var binOp = map[cfront.TokKind]Opcode{
	cfront.TokPlus: OpAdd, cfront.TokMinus: OpSub, cfront.TokStar: OpMul,
	cfront.TokSlash: OpDiv, cfront.TokPercent: OpRem,
	cfront.TokAmp: OpAnd, cfront.TokPipe: OpOr, cfront.TokCaret: OpXor,
	cfront.TokShl: OpShl, cfront.TokShr: OpShr,
	cfront.TokEq: OpCmpEq, cfront.TokNe: OpCmpNe,
	cfront.TokLt: OpCmpLt, cfront.TokLe: OpCmpLe,
	cfront.TokGt: OpCmpGt, cfront.TokGe: OpCmpGe,
}

// expr lowers an int-valued expression and returns its operand.
func (lw *lowerer) expr(e cfront.Expr) (Ref, error) {
	if v, ok := cfront.EvalConst(e); ok {
		return Const(v), nil
	}
	switch e := e.(type) {
	case *cfront.IntLit:
		return Const(e.Val), nil
	case *cfront.Ident:
		return lw.varRef(e.Sym), nil
	case *cfront.IndexExpr:
		arr := lw.varRef(e.Arr.Sym)
		idx, err := lw.expr(e.Index)
		if err != nil {
			return Ref{}, err
		}
		t := lw.newTemp()
		lw.emit(Instr{Op: OpLoad, Dst: t, Arr: arr, A: idx, Pos: e.Pos})
		return t, nil
	case *cfront.CallExpr:
		return lw.call(e, true)
	case *cfront.UnaryExpr:
		x, err := lw.expr(e.X)
		if err != nil {
			return Ref{}, err
		}
		t := lw.newTemp()
		switch e.Op {
		case cfront.TokMinus:
			lw.emit(Instr{Op: OpNeg, Dst: t, A: x, Pos: e.Pos})
		case cfront.TokTilde:
			lw.emit(Instr{Op: OpNot, Dst: t, A: x, Pos: e.Pos})
		case cfront.TokBang:
			lw.emit(Instr{Op: OpCmpEq, Dst: t, A: x, B: Const(0), Pos: e.Pos})
		default:
			return Ref{}, fmt.Errorf("internal: unary op %v", e.Op)
		}
		return t, nil
	case *cfront.BinaryExpr:
		if e.Op == cfront.TokAndAnd || e.Op == cfront.TokOrOr {
			return lw.shortCircuitValue(e)
		}
		l, err := lw.expr(e.L)
		if err != nil {
			return Ref{}, err
		}
		r, err := lw.expr(e.R)
		if err != nil {
			return Ref{}, err
		}
		t := lw.newTemp()
		lw.emit(Instr{Op: binOp[e.Op], Dst: t, A: l, B: r, Pos: e.Pos})
		return t, nil
	case *cfront.CondExpr:
		thenB := lw.newBlock()
		elseB := lw.newBlock()
		join := lw.newBlock()
		t := lw.newTemp()
		if err := lw.condBranch(e.Cond, thenB, elseB); err != nil {
			return Ref{}, err
		}
		lw.cur = thenB
		tv, err := lw.expr(e.T)
		if err != nil {
			return Ref{}, err
		}
		lw.emit(Instr{Op: OpMov, Dst: t, A: tv, Pos: e.Pos})
		lw.jumpTo(join)
		lw.cur = elseB
		fv, err := lw.expr(e.F)
		if err != nil {
			return Ref{}, err
		}
		lw.emit(Instr{Op: OpMov, Dst: t, A: fv, Pos: e.Pos})
		lw.jumpTo(join)
		lw.cur = join
		return t, nil
	}
	return Ref{}, fmt.Errorf("internal: unknown expression %T", e)
}

// shortCircuitValue materializes a && / || used as a value into a 0/1 temp.
func (lw *lowerer) shortCircuitValue(e *cfront.BinaryExpr) (Ref, error) {
	setT := lw.newBlock()
	setF := lw.newBlock()
	join := lw.newBlock()
	t := lw.newTemp()
	if err := lw.condBranch(e, setT, setF); err != nil {
		return Ref{}, err
	}
	lw.cur = setT
	lw.emit(Instr{Op: OpMov, Dst: t, A: Const(1), Pos: e.Pos})
	lw.jumpTo(join)
	lw.cur = setF
	lw.emit(Instr{Op: OpMov, Dst: t, A: Const(0), Pos: e.Pos})
	lw.jumpTo(join)
	lw.cur = join
	return t, nil
}

// call lowers a user call or intrinsic. wantValue reports whether the result
// is used.
func (lw *lowerer) call(e *cfront.CallExpr, wantValue bool) (Ref, error) {
	switch e.Name {
	case cfront.IntrinsicSend, cfront.IntrinsicRecv:
		ch, _ := cfront.EvalConst(e.Args[0])
		arrIdent := e.Args[1].(*cfront.Ident)
		arr := lw.varRef(arrIdent.Sym)
		n, err := lw.expr(e.Args[2])
		if err != nil {
			return Ref{}, err
		}
		op := OpSend
		if e.Name == cfront.IntrinsicRecv {
			op = OpRecv
		}
		lw.emit(Instr{Op: op, Arr: arr, A: n, Chan: int(ch), Pos: e.Pos})
		return Ref{}, nil
	case cfront.IntrinsicOut:
		v, err := lw.expr(e.Args[0])
		if err != nil {
			return Ref{}, err
		}
		lw.emit(Instr{Op: OpOut, A: v, Pos: e.Pos})
		return Ref{}, nil
	}
	callee := lw.fns[e.Name]
	if callee == nil {
		return Ref{}, fmt.Errorf("%s: call to unknown function %q survived checking", e.Pos, e.Name)
	}
	in := Instr{Op: OpCall, Callee: callee, Pos: e.Pos}
	for _, a := range e.Args {
		if id, ok := a.(*cfront.Ident); ok && id.Sym != nil && id.Sym.IsArray {
			in.Args = append(in.Args, lw.varRef(id.Sym))
			continue
		}
		r, err := lw.expr(a)
		if err != nil {
			return Ref{}, err
		}
		in.Args = append(in.Args, r)
	}
	if wantValue {
		in.Dst = lw.newTemp()
	}
	lw.emit(in)
	return in.Dst, nil
}
