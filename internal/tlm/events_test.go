package tlm

import (
	"encoding/json"
	"strings"
	"testing"

	"ese/internal/core"
	"ese/internal/metrics"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtos"
	"ese/internal/trace"
)

// TestTimedRunEmitsTraceEvents checks the timeline wiring end to end: a
// timed run with an Events recorder yields per-PE compute slices and bus
// transaction slices whose rendered JSON has the trace_event shape.
func TestTimedRunEmitsTraceEvents(t *testing.T) {
	d := twoPEDesign(t, pingPongSrc)
	ev := trace.NewEvents()
	reg := metrics.NewRegistry()
	res, err := Run(d, Options{
		Timed:    true,
		WaitMode: WaitAtTransactions,
		Detail:   core.FullDetail,
		Events:   ev,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ev.Len() == 0 {
		t.Fatal("no slices recorded")
	}
	data, err := ev.RenderJSON()
	if err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	tracks := map[string]bool{}
	var computes, xfers int
	var lastEnd float64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			tracks[e.Args["name"].(string)] = true
		case "X":
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("slice %q has negative ts/dur", e.Name)
			}
			if end := e.Ts + e.Dur; end > lastEnd {
				lastEnd = end
			}
			if e.Name == "compute" {
				computes++
			} else {
				xfers++
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	for _, want := range []string{"cpu", "acc", "bus"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	if computes == 0 || xfers == 0 {
		t.Fatalf("computes=%d xfers=%d, want both > 0", computes, xfers)
	}
	// The timeline must span the simulation: last slice ends at EndPs (us).
	if want := float64(res.EndPs) / 1e6; lastEnd != want {
		t.Errorf("timeline ends at %v us, simulation at %v us", lastEnd, want)
	}
	// Metrics wiring: the run's counters landed in the registry.
	snap := reg.Snapshot()
	if snap.Counters["tlm.steps"] != res.Steps {
		t.Errorf("tlm.steps = %d, want %d", snap.Counters["tlm.steps"], res.Steps)
	}
	if snap.Counters["sim.dispatches"] == 0 || snap.Gauges["sim.queue.max"] < 1 {
		t.Errorf("kernel counters missing from snapshot: %+v", snap)
	}
}

// TestRTOSRunEmitsTaskTracks checks that RTOS PEs get one track per task.
func TestRTOSRunEmitsTaskTracks(t *testing.T) {
	prog := compile(t, pingPongSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d := &platform.Design{
		Name:    "rtos",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{{
			Name: "cpu", Kind: platform.Processor, PUM: mb,
			RTOS: rtos.Config{Policy: rtos.Cooperative},
			Tasks: []platform.SWTask{
				{Name: "t0", Entry: "main"},
				{Name: "t1", Entry: "worker"},
			},
		}},
	}
	ev := trace.NewEvents()
	if _, err := Run(d, Options{
		Timed:    true,
		WaitMode: WaitAtTransactions,
		Detail:   core.FullDetail,
		Events:   ev,
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := ev.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cpu/t0"`, `"cpu/t1"`, `"run"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}
