// Package tlm builds and executes transaction-level models of a mapped
// design on the discrete-event kernel: the functional TLM (untimed), the
// timed TLM with the annotated per-block delays applied at transaction
// boundaries (the paper's generated model), and the shared abstract bus
// channel both use. The cycle-accurate board model reuses the same bus so
// that communication timing is common-mode between the estimate and the
// reference, as in the paper's methodology (ref. [16]).
package tlm

import (
	"fmt"

	"ese/internal/platform"
	"ese/internal/sim"
	"ese/internal/trace"
)

// Bus is the shared-bus instance of one simulation: rendezvous channels
// multiplexed over one arbitrated transport. A transfer occupies the bus
// for ArbCycles + words*WordCycles bus cycles, serialized against other
// transfers (non-preemptive arbitration at transaction granularity, which
// is cycle-exact for this bus protocol).
type Bus struct {
	kernel    *sim.Kernel
	cfg       platform.Bus
	periodPs  sim.Time
	busyUntil sim.Time
	channels  map[int]*channel
	timed     bool

	// Transfers counts completed transactions; Words counts payload words.
	Transfers uint64
	Words     uint64

	// Optional waveform tracing.
	vcd    *trace.VCD
	busSig *trace.Signal

	// Optional trace_event timeline: one slice per bus transaction.
	events   *trace.Events
	busTrack int
}

// WithTrace attaches a waveform dump; the bus records its busy intervals.
func (b *Bus) WithTrace(v *trace.VCD) *Bus {
	b.vcd = v
	b.busSig = v.Signal("bus_busy")
	return b
}

// WithEvents attaches a trace_event timeline; the bus records one slice
// per transaction, annotated with the channel and word count.
func (b *Bus) WithEvents(e *trace.Events) *Bus {
	b.events = e
	b.busTrack = e.Track("bus")
	return b
}

// channel is one point-to-point rendezvous channel.
type channel struct {
	id int
	// Pending sender state (set when the sender arrived first).
	sendData []int32
	sendEv   *sim.Event // woken when the transfer completes
	// Pending receiver state (set when the receiver arrived first).
	recvBuf []int32
	recvEv  *sim.Event
}

// NewBus creates the bus for one simulation run. timed=false makes every
// transfer instantaneous (functional TLM); timed=true applies arbitration
// and transfer delays.
func NewBus(k *sim.Kernel, cfg platform.Bus, timed bool) *Bus {
	return &Bus{
		kernel:   k,
		cfg:      cfg,
		periodPs: sim.Time(1_000_000_000_000 / cfg.ClockHz),
		channels: make(map[int]*channel),
		timed:    timed,
	}
}

func (b *Bus) chanFor(id int) *channel {
	c, ok := b.channels[id]
	if !ok {
		c = &channel{id: id}
		b.channels[id] = c
		c.sendEv = b.kernel.NewEvent("bus-send")
		c.recvEv = b.kernel.NewEvent("bus-recv")
	}
	return c
}

// transferDelay computes the delay from now until the transfer completes,
// including waiting for the bus to become free, and claims the bus for the
// transaction on channel ch.
func (b *Bus) transferDelay(ch, words int) sim.Time {
	if !b.timed {
		return 0
	}
	now := b.kernel.Now()
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	dur := sim.Time(b.cfg.ArbCycles+words*b.cfg.WordCycles) * b.periodPs
	b.busyUntil = start + dur
	if b.vcd != nil {
		b.vcd.Pulse(b.busSig, start, b.busyUntil)
	}
	if b.events != nil {
		b.events.SliceArgs(b.busTrack, fmt.Sprintf("ch%d", ch), start, b.busyUntil,
			map[string]any{"words": words})
	}
	return b.busyUntil - now
}

// Send transfers data over the channel, blocking until a receiver has
// arrived and the bus transfer completed. Word count mismatches between the
// two sides are tolerated by transferring min(len(send), len(recv)) words,
// mirroring the abstract channel's truncation semantics.
func (b *Bus) Send(p *sim.Process, ch int, data []int32) {
	c := b.chanFor(ch)
	if c.recvBuf != nil {
		// Receiver is waiting: this side completes the rendezvous.
		n := copyWords(c.recvBuf, data)
		c.recvBuf = nil
		d := b.transferDelay(c.id, n)
		b.account(n)
		c.recvEv.Notify(d)
		if d > 0 {
			p.Wait(d)
		}
		return
	}
	// Arrive first: publish data, wait for the receiver to complete.
	c.sendData = data
	p.WaitEvent(c.sendEv)
}

// Recv receives from the channel into buf, blocking until a sender has
// arrived and the transfer completed.
func (b *Bus) Recv(p *sim.Process, ch int, buf []int32) {
	c := b.chanFor(ch)
	if c.sendData != nil {
		n := copyWords(buf, c.sendData)
		c.sendData = nil
		d := b.transferDelay(c.id, n)
		b.account(n)
		c.sendEv.Notify(d)
		if d > 0 {
			p.Wait(d)
		}
		return
	}
	c.recvBuf = buf
	p.WaitEvent(c.recvEv)
}

func (b *Bus) account(words int) {
	b.Transfers++
	b.Words += uint64(words)
}

func copyWords(dst, src []int32) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	copy(dst[:n], src[:n])
	return n
}
