package tlm

import (
	"testing"

	"ese/internal/core"
	"ese/internal/platform"
	"ese/internal/pum"
	"ese/internal/rtos"
)

// rtosAppSrc is a two-process application: a producer generates blocks of
// work and a consumer filters them, exchanging data over channels.
const rtosAppSrc = `
int NITEMS = 6;

void producer() {
  int buf[16];
  int n;
  for (n = 0; n < NITEMS; n++) {
    int i;
    for (i = 0; i < 16; i++) {
      buf[i] = (n * 16 + i) * 3 % 101;
    }
    send(0, buf, 16);
  }
}

void consumer() {
  int buf[16];
  int n;
  int acc = 0;
  for (n = 0; n < NITEMS; n++) {
    int i;
    recv(0, buf, 16);
    for (i = 0; i < 16; i++) {
      acc += buf[i] * buf[i] % 17;
    }
    out(acc);
  }
}
`

// rtosDesign maps both processes onto one processor under the RTOS model.
func rtosDesign(t *testing.T, cfg rtos.Config) *platform.Design {
	t.Helper()
	prog := compile(t, rtosAppSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d := &platform.Design{
		Name:    "rtos-single-cpu",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{{
			Name: "cpu",
			Kind: platform.Processor,
			PUM:  mb,
			Tasks: []platform.SWTask{
				{Name: "prod", Entry: "producer", Priority: 1},
				{Name: "cons", Entry: "consumer", Priority: 2},
			},
			RTOS: cfg,
		}},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := d.ValidateChannels(); err != nil {
		t.Fatalf("ValidateChannels: %v", err)
	}
	return d
}

// twoPEReference maps the same processes onto two separate processors.
func twoPEReference(t *testing.T) *platform.Design {
	t.Helper()
	prog := compile(t, rtosAppSrc)
	mb, err := pum.MicroBlaze().WithCache(pum.CacheCfg{ISize: 8192, DSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return &platform.Design{
		Name:    "two-cpu",
		Program: prog,
		Bus:     platform.DefaultBus(),
		PEs: []*platform.PE{
			{Name: "p0", Kind: platform.Processor, Entry: "producer", PUM: mb},
			{Name: "p1", Kind: platform.Processor, Entry: "consumer", PUM: mb},
		},
	}
}

func TestRTOSFunctionalMatchesTwoPE(t *testing.T) {
	ref, err := RunFunctional(twoPEReference(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFunctional(rtosDesign(t, rtos.Config{Policy: rtos.Cooperative}), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.OutByPE["p1"]
	outs := got.OutByPE["cpu/cons"]
	if len(outs) != len(want) {
		t.Fatalf("out = %v, want %v", outs, want)
	}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("out = %v, want %v", outs, want)
		}
	}
}

func TestRTOSTimedSharedCPUSlowerThanTwoPEs(t *testing.T) {
	two, err := RunTimed(twoPEReference(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunTimed(rtosDesign(t, rtos.Config{Policy: rtos.Cooperative}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.EndPs <= two.EndPs {
		t.Fatalf("single shared CPU (%d ps) not slower than two CPUs (%d ps)",
			one.EndPs, two.EndPs)
	}
	// The shared CPU serializes everything: end time >= total busy cycles.
	busy := one.CyclesByPE["cpu"]
	if one.EndCycles(100_000_000) < busy {
		t.Fatalf("end %d cycles < busy %d cycles", one.EndCycles(100_000_000), busy)
	}
	// Per-task accounting adds up to the PE total.
	if one.CyclesByPE["cpu/prod"]+one.CyclesByPE["cpu/cons"] != busy {
		t.Fatalf("task cycles %d + %d != PE total %d",
			one.CyclesByPE["cpu/prod"], one.CyclesByPE["cpu/cons"], busy)
	}
}

func TestRTOSContextSwitchCostVisible(t *testing.T) {
	free, err := RunTimed(rtosDesign(t, rtos.Config{Policy: rtos.Cooperative}), 0)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := RunTimed(rtosDesign(t, rtos.Config{
		Policy:              rtos.Cooperative,
		ContextSwitchCycles: 500,
	}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if costly.EndPs <= free.EndPs {
		t.Fatalf("context switches added no time: %d vs %d", costly.EndPs, free.EndPs)
	}
	if costly.SwitchesByPE["cpu"] == 0 {
		t.Fatal("no switches counted")
	}
	// End-time growth matches switches * cost (each switch is 500 cycles
	// = 5_000_000 ps at 100 MHz) within one switch of slack for the final
	// idle tail.
	growth := uint64(costly.EndPs - free.EndPs)
	wantMin := (costly.SwitchesByPE["cpu"] - 1) * 500 * 10_000
	if growth < wantMin {
		t.Fatalf("growth %d ps below switch cost floor %d ps (switches=%d)",
			growth, wantMin, costly.SwitchesByPE["cpu"])
	}
}

func TestRTOSPoliciesAllFunctionallyEquivalent(t *testing.T) {
	var ref []int32
	for _, cfg := range []rtos.Config{
		{Policy: rtos.Cooperative},
		{Policy: rtos.RoundRobin, TimeSliceCycles: 1000, ContextSwitchCycles: 20},
		{Policy: rtos.PriorityPreemptive, ContextSwitchCycles: 10},
	} {
		res, err := RunTimed(rtosDesign(t, cfg), 0)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Policy, err)
		}
		outs := res.OutByPE["cpu/cons"]
		if ref == nil {
			ref = outs
			continue
		}
		if len(outs) != len(ref) {
			t.Fatalf("%v: output diverges", cfg.Policy)
		}
		for i := range ref {
			if outs[i] != ref[i] {
				t.Fatalf("%v: output diverges at %d", cfg.Policy, i)
			}
		}
	}
}

func TestRTOSPerBlockModeRuns(t *testing.T) {
	d := rtosDesign(t, rtos.Config{Policy: rtos.RoundRobin, TimeSliceCycles: 200})
	res, err := Run(d, Options{Timed: true, WaitMode: WaitPerBlock, Detail: core.FullDetail})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesByPE["cpu"] == 0 {
		t.Fatal("no cycles accumulated in per-block mode")
	}
}
